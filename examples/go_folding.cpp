// Example: Gō-model mini-protein folding with simulated tempering — the
// protein-folding workload class Anton is famous for, on the synthetic
// substrate.  Progress is scored by the fraction of native contacts.
//
//   ./go_folding --beads 24 --steps 8000
#include <cstdio>

#include "analysis/structure.hpp"
#include "ff/forcefield.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "sampling/tempering.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

namespace {

std::vector<analysis::Contact> contacts_of(const Topology& topo) {
  std::vector<analysis::Contact> out;
  for (const auto& g : topo.go_contacts()) {
    out.push_back({g.i, g.j, g.r_native});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("go_folding", "Fold a Go-model mini-protein with tempering");
  cli.add_flag("beads", "chain length", 24);
  cli.add_flag("steps", "MD steps", 8000);
  cli.add_flag("fold_temp", "folding (cold) temperature (K)", 120.0);
  cli.add_flag("tempering", "use simulated tempering", true);
  if (!cli.parse(argc, argv)) return 0;

  auto spec = build_go_protein(static_cast<size_t>(cli.get_int("beads")),
                               /*contact_epsilon=*/1.2);
  auto contacts = contacts_of(spec.topology);
  std::printf("system: %s — %zu native contacts\n", spec.name.c_str(),
              contacts.size());

  ff::NonbondedModel model;
  model.cutoff = 10.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  const double cold = cli.get_double("fold_temp");
  md::Simulation sim = md::SimulationBuilder()
                           .dt_fs(6.0)
                           .neighbor_skin(2.0)
                           .langevin(cold, 2.0)
                           .build(field, spec.positions, spec.box);

  std::unique_ptr<sampling::SimulatedTempering> st;
  if (cli.get_bool("tempering")) {
    sampling::TemperingConfig tc;
    tc.ladder = {cold, cold * 1.4, cold * 2.0, cold * 2.8};
    tc.attempt_interval = 50;
    st = std::make_unique<sampling::SimulatedTempering>(sim, tc);
  }

  const int steps = cli.get_int("steps");
  const int report = std::max(1, steps / 12);
  Table table({"step", "T rung (K)", "native contacts", "potential"});
  double initial_q = analysis::native_contact_fraction(
      sim.state().positions, contacts, sim.state().box);
  sim.add_observer(
      [&](const md::StepInfo& info) {
        double q = analysis::native_contact_fraction(sim.state().positions,
                                                     contacts,
                                                     sim.state().box);
        table.add_row({std::to_string(info.step),
                       Table::num(st ? st->current_temperature() : cold, 0),
                       Table::num(q, 2),
                       Table::num(info.potential, 1)});
      },
      report);
  if (st) st->run(static_cast<size_t>(steps));
  else sim.run(static_cast<size_t>(steps));
  std::fputs(table.render().c_str(), stdout);
  double final_q = analysis::native_contact_fraction(
      sim.state().positions, contacts, sim.state().box);
  std::printf("\nnative-contact fraction: %.2f (start) -> %.2f (end)\n",
              initial_q, final_q);
  std::printf(
      "The chain starts fully extended; native 12-10 contacts pull it "
      "toward the helical reference as the tempering walk anneals it.\n");
  return 0;
}
