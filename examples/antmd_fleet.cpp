// antmd_fleet: the fleet scheduler daemon.
//
// Consumes a run manifest (see src/fleet/manifest.hpp) and drives every
// run to a terminal state — completed, quarantined, or rejected — under
// per-run supervision and fault isolation:
//
//   # fleet.manifest
//   [fleet]
//   max_active       = 8
//   memory_budget_mb = 64
//   slice_steps      = 32
//   threads          = 2
//   checkpoint_dir   = ./fleet-ckpt
//   status_path      = fleet-status.json
//
//   [defaults]
//   system = ljfluid
//   size   = 125
//   steps  = 200
//
//   [run alpha]
//   size = 343
//   priority = 2
//
//   [run chaos]
//   fault = nan_force:50          # scoped: siblings never observe it
//
//   ./antmd_fleet fleet.manifest
//       [--status PATH] [--status-interval N] [--max-active N]
//       [--memory-mb N] [--slice N] [--threads N] [--checkpoint-dir DIR]
//       [--metrics-out PATH] [--profile] [--profile-out PATH]
//       [--prom-out PATH] [--quiet]
//
// The status file (schema "antmd.fleet.status/v1") is rewritten atomically
// every N slices, so an operator can poll one JSON document for the whole
// fleet's phase/progress/fault counters while it runs.  Under --profile
// each run additionally carries a "profile" block (modeled network seconds
// per message class), --profile-out writes the fleet-wide aggregated
// antmd.profile/v1 document, and --prom-out exposes the metrics registry
// in Prometheus text format.
//
// Exit codes: 0 every run completed; 6 at least one run quarantined or
// rejected (the status file says which and why); 2 configuration errors;
// 3 I/O errors; 1 anything else.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fleet/manifest.hpp"
#include "fleet/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/error.hpp"

using namespace antmd;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: antmd_fleet MANIFEST [--status PATH] [--status-interval N]\n"
      "                   [--max-active N] [--memory-mb N] [--slice N]\n"
      "                   [--threads N] [--checkpoint-dir DIR]\n"
      "                   [--metrics-out PATH] [--profile]\n"
      "                   [--profile-out PATH] [--prom-out PATH] [--quiet]\n");
  return 2;
}

uint64_t parse_u64_arg(const char* flag, const char* text) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "antmd_fleet: %s expects a non-negative integer, "
                         "got '%s'\n", flag, text);
    std::exit(2);
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string manifest_path;
  std::string metrics_out;
  std::string profile_out;
  std::string prom_out;
  bool profile = false;
  bool quiet = false;

  // Overrides applied after the manifest parses.
  struct {
    const char* status = nullptr;
    const char* checkpoint_dir = nullptr;
    uint64_t status_interval = 0, max_active = 0, memory_mb = 0, slice = 0;
    bool threads_set = false;
    uint64_t threads = 0;
  } over;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "antmd_fleet: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--status") over.status = value();
    else if (arg == "--status-interval") {
      over.status_interval = parse_u64_arg("--status-interval", value());
    } else if (arg == "--max-active") {
      over.max_active = parse_u64_arg("--max-active", value());
    } else if (arg == "--memory-mb") {
      over.memory_mb = parse_u64_arg("--memory-mb", value());
    } else if (arg == "--slice") {
      over.slice = parse_u64_arg("--slice", value());
    } else if (arg == "--threads") {
      over.threads = parse_u64_arg("--threads", value());
      over.threads_set = true;
    } else if (arg == "--checkpoint-dir") {
      over.checkpoint_dir = value();
    } else if (arg == "--metrics-out") {
      metrics_out = value();
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--profile-out") {
      profile_out = value();
      profile = true;
    } else if (arg == "--prom-out") {
      prom_out = value();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "antmd_fleet: unknown option %s\n", arg.c_str());
      return usage();
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      return usage();
    }
  }
  if (manifest_path.empty()) return usage();

  try {
    fleet::Manifest manifest = fleet::load_manifest(manifest_path);
    if (over.status) manifest.scheduler.status_path = over.status;
    if (over.status_interval) {
      manifest.scheduler.status_interval_slices =
          static_cast<int>(over.status_interval);
    }
    if (over.max_active) manifest.scheduler.max_active_runs = over.max_active;
    if (over.memory_mb) {
      manifest.scheduler.memory_budget_bytes = over.memory_mb * 1024 * 1024;
    }
    if (over.slice) manifest.scheduler.slice_steps = over.slice;
    if (over.threads_set) manifest.scheduler.threads = over.threads;
    if (over.checkpoint_dir) {
      manifest.scheduler.checkpoint_dir = over.checkpoint_dir;
    }

    obs::register_standard_metrics();
    obs::set_enabled(true);
    // Before any run materializes: each machine engine then gets a private
    // collector, and the scheduler folds it into the fleet-wide profile
    // when the run's driver goes away (completion, eviction, quarantine).
    if (profile) obs::set_profiling(true);

    fleet::Scheduler scheduler(manifest.scheduler);
    for (fleet::RunSpec& spec : manifest.runs) {
      scheduler.submit(std::move(spec));
    }
    fleet::FleetSummary summary = scheduler.run_to_completion();

    if (!quiet) {
      std::fputs(summary.render().c_str(), stdout);
      for (const fleet::RunStatus& s : scheduler.statuses()) {
        std::printf("  %-24s %-12s %8llu/%llu steps%s%s\n", s.name.c_str(),
                    fleet::run_phase_name(s.phase),
                    static_cast<unsigned long long>(s.steps_done),
                    static_cast<unsigned long long>(s.steps_target),
                    s.detail.empty() ? "" : "  -- ", s.detail.c_str());
      }
    }
    if (profile) {
      auto& prof = obs::Profile::global();
      prof.publish_metrics();
      if (!quiet) std::fputs(prof.render_summary().c_str(), stdout);
      if (!profile_out.empty() &&
          !obs::write_text_file(profile_out, prof.to_json())) {
        std::fprintf(stderr, "antmd_fleet: failed to write profile %s\n",
                     profile_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      obs::write_metrics_file(metrics_out,
                              obs::MetricsRegistry::global().snapshot());
    }
    if (!prom_out.empty() &&
        !obs::write_text_file(
            prom_out, obs::MetricsRegistry::global().snapshot().to_prometheus())) {
      std::fprintf(stderr, "antmd_fleet: failed to write %s\n",
                   prom_out.c_str());
    }
    return summary.completed == summary.submitted ? 0 : 6;
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "antmd_fleet: configuration error: %s\n", e.what());
    return 2;
  } catch (const IoError& e) {
    std::fprintf(stderr, "antmd_fleet: io error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "antmd_fleet: %s\n", e.what());
    return 1;
  }
}
