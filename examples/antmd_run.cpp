// antmd_run: config-file-driven simulation driver.
//
// Describes a run in a small `key = value` file and executes it on either
// the plain host engine or the modeled machine, e.g.:
//
//   # water.cfg
//   system       = water        # water | ljfluid | polymer | bilayer | dimer
//   size         = 216          # molecules/atoms (builder-specific)
//   engine       = machine      # host | machine
//   nodes        = 4            # torus edge when engine = machine
//   steps        = 500
//   dt_fs        = 2.0
//   temperature  = 300
//   thermostat   = langevin     # none | berendsen | langevin | nosehoover
//   electrostatics = gse        # none | cutoff | gse
//   cutoff       = 6.0
//   threads      = 4            # host worker threads (1 = serial, 0 = auto)
//   deterministic_reduction = true
//   xyz          = out.xyz      # optional trajectory
//
//   ./antmd_run water.cfg [--threads N]
//       [--checkpoint PATH] [--checkpoint-interval N] [--resume]
//       [--supervise] [--max-retries N] [--watchdog-ms X] [--fault SPEC]
//       [--trace-out trace.json] [--metrics-out metrics.json]
//       [--no-telemetry]
//
// Observability (command line overrides config keys `trace_out`,
// `metrics_out`, `telemetry`):
//   --trace-out PATH       record per-phase spans and write a Chrome
//                          trace_event JSON (load in chrome://tracing or
//                          ui.perfetto.dev)
//   --metrics-out PATH     dump every telemetry counter/gauge/histogram at
//                          exit (.json → JSON, else `name value` text)
//   --no-telemetry         disable all metric collection (telemetry is on
//                          by default; overhead is <2%, see DESIGN.md)
//
// Attribution profiler (config keys `profile`, `profile_out`, `prom_out`;
// machine engine; see DESIGN.md "Attribution & critical path"):
//   --profile              collect per-message-class network attribution,
//                          per-link load histograms and task-graph
//                          critical-path/slack analysis; prints the
//                          human-readable summary at exit.  Trajectories
//                          are bit-identical with profiling on or off.
//   --profile-out PATH     also write the full antmd.profile/v1 JSON
//                          document (implies --profile)
//   --prom-out PATH        write the metrics registry in Prometheus text
//                          exposition format at exit (works with or
//                          without --profile)
//
// Robustness options (command line overrides the matching config keys
// `checkpoint`, `checkpoint_interval`, `resume`, `health`):
//   --checkpoint PATH      write an atomic, CRC-verified v2 checkpoint of
//                          the simulation every checkpoint-interval steps
//   --checkpoint-interval N  snapshot cadence in steps (default 200)
//   --resume               restore from --checkpoint before running; when
//                          the primary file fails its CRC the `.bak`
//                          mirror is tried automatically; the run
//                          continues to the configured total `steps`
//   health = off|rollback|throw   numerical health guard policy; rollback
//                          restores the last good snapshot at a reduced
//                          timestep, throw aborts on the first violation
//
// Fault tolerance (config keys `supervise`, `max_retries`, `watchdog_ms`,
// `report_out`, `fault`; see DESIGN.md "Failure model & recovery"):
//   --supervise            run under resilience::Supervisor: faults are
//                          detected, classified transient/fatal, and
//                          recovered by retry/rollback/restart; recovery
//                          never changes the trajectory — a recovered run
//                          is bit-identical to the fault-free run
//   --max-retries N        recovery attempts per failure episode (default 3)
//   --watchdog-ms X        modeled per-step deadline in ms; a hung node
//                          trips it and is remapped (0 = off)
//   --fault SPEC           arm a deterministic fault for the whole run:
//                          kind[:fire_after[:count[:payload]]], e.g.
//                          link_drop:40, packet_corrupt:10:3, node_hang:25:1:5
//                          kinds: io_write_fail io_short_write nan_force
//                                 node_fail link_drop packet_corrupt node_hang
//                                 bit_flip_state bit_flip_table
//                                 bit_flip_checkpoint_buffer
//
// Integrity auditing (config keys `audit_interval`, `audit_shadow_window`,
// `scrub_interval`; requires --supervise; see DESIGN.md "Silent data
// corruption"):
//   --audit-interval N     audit the simulation state every N steps: CRC-64
//                          digests over positions/velocities/forces/
//                          energies, shadow re-execution of the trailing
//                          window, and a scrub of the static tables; a
//                          mismatch is a detected silent corruption the
//                          supervisor rolls back (0 = off)
//   --audit-shadow-window N  steps re-executed per audit (0 = the full
//                          audit interval: complete coverage, ~2x compute
//                          inside the interval)
//   --scrub-interval N     steps between static-data scrubs (0 = at every
//                          audit)
//
// Exit codes: 0 success, 1 unexpected error, 2 configuration/usage,
// 3 I/O failure, 4 numerical failure, 5 recovery exhausted (a
// RecoveryReport is written to `report_out`, default
// antmd_recovery_report.txt).
//
// --threads on the command line overrides the config file.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "ff/forcefield.hpp"
#include "ff/nonbonded_simd.hpp"
#include "io/checkpoint.hpp"
#include "io/config.hpp"
#include "io/trajectory.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "resilience/audit.hpp"
#include "resilience/health.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/table.hpp"

using namespace antmd;

namespace {

SystemSpec build_system(const io::RunConfig& cfg) {
  std::string system = cfg.require_string("system");
  auto size = static_cast<size_t>(cfg.get_int("size", 216));
  uint64_t seed = static_cast<uint64_t>(cfg.get_int("seed", 1));
  if (system == "water") {
    std::string model = cfg.get_string("water_model", "rigid3");
    WaterModel wm = WaterModel::kRigid3Site;
    if (model == "flexible3") wm = WaterModel::kFlexible3Site;
    else if (model == "rigid4") wm = WaterModel::kRigid4Site;
    else ANTMD_REQUIRE(model == "rigid3", "unknown water_model: " + model);
    return build_water_box(size, wm, seed);
  }
  if (system == "ljfluid") {
    return build_lj_fluid(size, cfg.get_double("density", 0.021), seed);
  }
  if (system == "polymer") {
    return build_polymer_in_solvent(
        static_cast<size_t>(cfg.get_int("chain_length", 20)), size, seed);
  }
  if (system == "bilayer") {
    return build_lipid_bilayer(size,
        static_cast<size_t>(cfg.get_int("water_layers", 3)), seed);
  }
  if (system == "dimer") {
    return build_dimer_in_solvent(size, cfg.get_double("separation", 5.0),
                                  seed);
  }
  throw ConfigError("unknown system: " + system);
}

ff::NonbondedModel build_model(const io::RunConfig& cfg) {
  ff::NonbondedModel model;
  model.cutoff = cfg.get_double("cutoff", 8.0);
  std::string elec = cfg.get_string("electrostatics", "gse");
  if (elec == "none") model.electrostatics = ff::Electrostatics::kNone;
  else if (elec == "cutoff") {
    model.electrostatics = ff::Electrostatics::kReactionCutoff;
  } else if (elec == "gse") {
    model.electrostatics = ff::Electrostatics::kEwaldReal;
    model.ewald_beta = cfg.get_double("ewald_beta", 0.4);
  } else {
    throw ConfigError("unknown electrostatics: " + elec);
  }
  return model;
}

md::ThermostatConfig build_thermostat(const io::RunConfig& cfg) {
  md::ThermostatConfig t;
  t.temperature_k = cfg.get_double("temperature", 300.0);
  t.gamma_per_ps = cfg.get_double("gamma", 5.0);
  t.tau_fs = cfg.get_double("tau_fs", 500.0);
  std::string kind = cfg.get_string("thermostat", "langevin");
  if (kind == "none") t.kind = md::ThermostatKind::kNone;
  else if (kind == "berendsen") t.kind = md::ThermostatKind::kBerendsen;
  else if (kind == "langevin") t.kind = md::ThermostatKind::kLangevin;
  else if (kind == "nosehoover") t.kind = md::ThermostatKind::kNoseHoover;
  else throw ConfigError("unknown thermostat: " + kind);
  return t;
}

/// Execution settings: config keys `threads` / `deterministic_reduction`,
/// with an optional --threads command-line override.
ExecutionConfig build_execution(const io::RunConfig& cfg, int cli_threads) {
  ExecutionConfig exec;
  exec.threads = static_cast<size_t>(cfg.get_int("threads", 1));
  exec.deterministic_reduction =
      cfg.get_bool("deterministic_reduction", true);
  if (cli_threads >= 0) exec.threads = static_cast<size_t>(cli_threads);
  return exec;
}

/// Strict non-negative integer parse; rejects "abc", "4x", "".
int parse_int_arg(const char* flag, const char* text) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "antmd_run: %s expects a non-negative "
                         "integer, got '%s'\n", flag, text);
    std::exit(2);  // usage errors share the configuration exit code
  }
  return static_cast<int>(value);
}

/// Strict non-negative double parse for --watchdog-ms.
double parse_double_arg(const char* flag, const char* text) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value >= 0)) {
    std::fprintf(stderr, "antmd_run: %s expects a non-negative "
                         "number, got '%s'\n", flag, text);
    std::exit(2);
  }
  return value;
}

/// Escalation signal: the supervisor exhausted its recovery budget.  Caught
/// in main() and mapped to exit code 5 (after the report was written).
struct RecoveryExhausted : Error {
  using Error::Error;
};

/// Checkpoint/health/supervision settings shared by the host and machine
/// branches.
struct RobustnessOptions {
  std::string checkpoint;        ///< empty = no on-disk checkpointing
  int checkpoint_interval = 200;
  bool resume = false;
  std::string health = "off";    ///< off | rollback | throw
  bool supervise = false;        ///< run under resilience::Supervisor
  int max_retries = 3;
  double watchdog_ms = 0.0;
  std::string report = "antmd_recovery_report.txt";
  // SDC auditing (supervised runs only; 0 = off).
  int audit_interval = 0;
  int audit_shadow_window = 2;
  int scrub_interval = 0;
  /// Static-data scrubber built by main() over the force field and
  /// topology; outlives the supervisor.  Null when auditing is off.
  resilience::Scrubber* scrubber = nullptr;
};

/// Runs `sim` to the configured total step count, optionally resuming from
/// and mirroring to a v2 checkpoint file, under the numerical health guard
/// when requested.  Returns the wall-clock seconds spent stepping (excludes
/// construction and resume I/O) for the end-of-run summary.
template <typename Sim>
double run_simulation(Sim& sim, size_t steps, const RobustnessOptions& opt) {
  size_t remaining = steps;
  if (opt.resume) {
    ANTMD_REQUIRE(!opt.checkpoint.empty(),
                  "--resume needs a checkpoint path (--checkpoint)");
    // A torn/corrupt primary (CRC mismatch) degrades to the `.bak` mirror
    // kept by the checkpointing layers; only both failing is fatal.
    std::string used =
        io::load_checkpoint_v2_or_backup(opt.checkpoint, {{"sim", &sim}});
    uint64_t done = sim.state().step;
    remaining = done >= steps ? 0 : steps - static_cast<size_t>(done);
    std::printf("resumed from %s at step %" PRIu64 " (%zu steps left)\n",
                used.c_str(), done, remaining);
  }
  md::WallTimer wall;
  if (opt.supervise) {
    resilience::SupervisorConfig sc;
    sc.max_retries = opt.max_retries;
    sc.watchdog_ms = opt.watchdog_ms;
    sc.snapshot_interval = opt.checkpoint_interval;
    sc.checkpoint_path = opt.checkpoint;
    sc.report_path = opt.report;
    sc.audit.interval = opt.audit_interval;
    sc.audit.shadow_window = opt.audit_shadow_window;
    sc.audit.scrub_interval = opt.scrub_interval;
    resilience::Supervisor<Sim> supervisor(sim, sc);
    if (opt.audit_interval > 0) supervisor.enable_audit(opt.scrubber);
    resilience::RecoveryReport report = supervisor.run(remaining);
    std::fputs(report.render().c_str(), stdout);
    if (!report.completed) {
      throw RecoveryExhausted(report.final_error);
    }
    return wall.seconds();
  }
  if (opt.checkpoint.empty() && opt.health == "off") {
    sim.run(remaining);
    return wall.seconds();
  }
  resilience::HealthConfig hc;
  if (opt.health == "throw") {
    hc.policy = resilience::HealthPolicy::kThrow;
  } else {
    ANTMD_REQUIRE(opt.health == "off" || opt.health == "rollback",
                  "unknown health policy: " + opt.health);
    hc.policy = resilience::HealthPolicy::kRollback;
  }
  hc.checkpoint_interval = opt.checkpoint_interval;
  hc.checkpoint_path = opt.checkpoint;
  resilience::HealthGuard<Sim> guard(sim, hc);
  resilience::HealthReport report = guard.run(remaining);
  if (report.violations > 0) {
    std::printf("health guard: %" PRIu64 " violation(s), %" PRIu64
                " rollback(s), final dt %.3f fs (last: %s)\n",
                report.violations, report.rollbacks, report.final_dt_fs,
                report.last_violation.c_str());
  }
  if (!opt.checkpoint.empty()) {
    std::printf("checkpoint: %s (every %d steps, policy %s)\n",
                opt.checkpoint.c_str(), hc.checkpoint_interval,
                resilience::policy_name(hc.policy));
  }
  return wall.seconds();
}

/// End-of-run summary from the telemetry registry: throughput plus the
/// instrumented-phase breakdown (percent of the time spent under a
/// *.time_ns phase counter; phases may nest/overlap across threads, so the
/// shares describe where instrumented time went, not a partition of wall
/// time).
void print_telemetry_summary(size_t steps, double dt_fs, double wall_seconds,
                             double modeled_ns_day) {
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const double steps_per_s =
      wall_seconds > 0 ? static_cast<double>(steps) / wall_seconds : 0.0;
  const double wall_ns_day =
      wall_seconds > 0
          ? static_cast<double>(steps) * dt_fs * 1e-6 * 86400.0 / wall_seconds
          : 0.0;
  std::printf("\nrun summary: %zu steps in %.3f s wall "
              "(%.1f steps/s, %.3f ns/day walltime)\n",
              steps, wall_seconds, steps_per_s, wall_ns_day);
  if (modeled_ns_day > 0) {
    std::printf("modeled machine rate: %.0f ns/day\n", modeled_ns_day);
  }
  Table table({"phase", "time (s)", "share"});
  for (const auto& p : obs::phase_breakdown(snap)) {
    if (p.seconds <= 0.0) continue;
    table.add_row({p.name, Table::num(p.seconds, 3),
                   Table::num(100.0 * p.fraction, 1) + " %"});
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const char* config_path = nullptr;
  int cli_threads = -1;  // -1 = not given
  int cli_checkpoint_interval = -1;
  const char* cli_checkpoint = nullptr;
  bool cli_resume = false;
  bool cli_supervise = false;
  int cli_max_retries = -1;
  double cli_watchdog_ms = -1.0;
  int cli_audit_interval = -1;
  int cli_audit_shadow_window = -1;
  int cli_scrub_interval = -1;
  const char* cli_fault = nullptr;
  const char* cli_trace_out = nullptr;
  const char* cli_metrics_out = nullptr;
  bool cli_no_telemetry = false;
  bool cli_profile = false;
  const char* cli_profile_out = nullptr;
  const char* cli_prom_out = nullptr;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--profile") {
      cli_profile = true;
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      cli_profile_out = argv[a] + std::strlen("--profile-out=");
    } else if (arg == "--profile-out" && a + 1 < argc) {
      cli_profile_out = argv[++a];
    } else if (arg.rfind("--prom-out=", 0) == 0) {
      cli_prom_out = argv[a] + std::strlen("--prom-out=");
    } else if (arg == "--prom-out" && a + 1 < argc) {
      cli_prom_out = argv[++a];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      cli_trace_out = argv[a] + std::strlen("--trace-out=");
    } else if (arg == "--trace-out" && a + 1 < argc) {
      cli_trace_out = argv[++a];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      cli_metrics_out = argv[a] + std::strlen("--metrics-out=");
    } else if (arg == "--metrics-out" && a + 1 < argc) {
      cli_metrics_out = argv[++a];
    } else if (arg == "--no-telemetry") {
      cli_no_telemetry = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli_threads = parse_int_arg(
          "--threads", arg.c_str() + std::strlen("--threads="));
    } else if (arg == "--threads" && a + 1 < argc) {
      cli_threads = parse_int_arg("--threads", argv[++a]);
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      cli_checkpoint_interval = parse_int_arg(
          "--checkpoint-interval",
          arg.c_str() + std::strlen("--checkpoint-interval="));
    } else if (arg == "--checkpoint-interval" && a + 1 < argc) {
      cli_checkpoint_interval = parse_int_arg("--checkpoint-interval",
                                              argv[++a]);
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      cli_checkpoint = argv[a] + std::strlen("--checkpoint=");
    } else if (arg == "--checkpoint" && a + 1 < argc) {
      cli_checkpoint = argv[++a];
    } else if (arg == "--resume") {
      cli_resume = true;
    } else if (arg == "--supervise") {
      cli_supervise = true;
    } else if (arg.rfind("--max-retries=", 0) == 0) {
      cli_max_retries = parse_int_arg(
          "--max-retries", arg.c_str() + std::strlen("--max-retries="));
    } else if (arg == "--max-retries" && a + 1 < argc) {
      cli_max_retries = parse_int_arg("--max-retries", argv[++a]);
    } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
      cli_watchdog_ms = parse_double_arg(
          "--watchdog-ms", arg.c_str() + std::strlen("--watchdog-ms="));
    } else if (arg == "--watchdog-ms" && a + 1 < argc) {
      cli_watchdog_ms = parse_double_arg("--watchdog-ms", argv[++a]);
    } else if (arg.rfind("--audit-interval=", 0) == 0) {
      cli_audit_interval = parse_int_arg(
          "--audit-interval", arg.c_str() + std::strlen("--audit-interval="));
    } else if (arg == "--audit-interval" && a + 1 < argc) {
      cli_audit_interval = parse_int_arg("--audit-interval", argv[++a]);
    } else if (arg.rfind("--audit-shadow-window=", 0) == 0) {
      cli_audit_shadow_window = parse_int_arg(
          "--audit-shadow-window",
          arg.c_str() + std::strlen("--audit-shadow-window="));
    } else if (arg == "--audit-shadow-window" && a + 1 < argc) {
      cli_audit_shadow_window =
          parse_int_arg("--audit-shadow-window", argv[++a]);
    } else if (arg.rfind("--scrub-interval=", 0) == 0) {
      cli_scrub_interval = parse_int_arg(
          "--scrub-interval", arg.c_str() + std::strlen("--scrub-interval="));
    } else if (arg == "--scrub-interval" && a + 1 < argc) {
      cli_scrub_interval = parse_int_arg("--scrub-interval", argv[++a]);
    } else if (arg.rfind("--fault=", 0) == 0) {
      cli_fault = argv[a] + std::strlen("--fault=");
    } else if (arg == "--fault" && a + 1 < argc) {
      cli_fault = argv[++a];
    } else if (!config_path) {
      config_path = argv[a];
    } else {
      config_path = nullptr;
      break;
    }
  }
  if (!config_path) {
    std::fprintf(stderr,
                 "usage: antmd_run <config-file> [--threads N] "
                 "[--checkpoint PATH] [--checkpoint-interval N] "
                 "[--resume] [--supervise] [--max-retries N] "
                 "[--watchdog-ms X] [--fault SPEC] "
                 "[--audit-interval N] [--audit-shadow-window N] "
                 "[--scrub-interval N] [--trace-out PATH] "
                 "[--metrics-out PATH] [--no-telemetry] [--profile] "
                 "[--profile-out PATH] [--prom-out PATH]\n");
    return 2;
  }
  try {
    auto cfg = io::RunConfig::from_file(config_path);

    // Telemetry is on by default; tracing rides on the same enable flag.
    const bool telemetry =
        !cli_no_telemetry && cfg.get_bool("telemetry", true);
    std::string trace_out = cfg.get_string("trace_out", "");
    std::string metrics_out = cfg.get_string("metrics_out", "");
    if (cli_trace_out) trace_out = cli_trace_out;
    if (cli_metrics_out) metrics_out = cli_metrics_out;
    obs::register_standard_metrics();
    obs::set_enabled(telemetry);
    if (!trace_out.empty() && telemetry) {
      obs::TraceSession::global().start(trace_out);
    }

    // Attribution profiler: must be switched on before the simulation is
    // constructed so its collector sees every modeled step, including the
    // initial force evaluation — that is what makes the per-class sums
    // bit-comparable to the engine's accumulated() breakdown.
    std::string profile_out = cfg.get_string("profile_out", "");
    std::string prom_out = cfg.get_string("prom_out", "");
    if (cli_profile_out) profile_out = cli_profile_out;
    if (cli_prom_out) prom_out = cli_prom_out;
    const bool profiling =
        cli_profile || cfg.get_bool("profile", false) || !profile_out.empty();
    if (profiling) obs::set_profiling(true);

    auto spec = build_system(cfg);
    auto model = build_model(cfg);
    // GSE water without charges is meaningless; drop electrostatics when
    // the system carries none.
    bool charged = false;
    for (double q : spec.topology.charges()) {
      if (q != 0.0) charged = true;
    }
    if (!charged) model.electrostatics = ff::Electrostatics::kNone;

    ForceField field(spec.topology, model);
    const int steps = cfg.get_int("steps", 200);
    const int report = std::max(1, steps / 10);
    std::unique_ptr<io::XyzWriter> xyz;
    if (cfg.has("xyz")) {
      xyz = std::make_unique<io::XyzWriter>(cfg.require_string("xyz"),
                                            spec.topology);
    }

    std::printf("system: %s — %zu atoms\n", spec.name.c_str(),
                spec.topology.atom_count());

    const ExecutionConfig exec = build_execution(cfg, cli_threads);

    RobustnessOptions robust;
    robust.checkpoint = cfg.get_string("checkpoint", "");
    robust.checkpoint_interval = cfg.get_int("checkpoint_interval", 200);
    robust.resume = cfg.get_bool("resume", false);
    robust.health = cfg.get_string("health", "off");
    robust.supervise = cfg.get_bool("supervise", false);
    robust.max_retries = cfg.get_int("max_retries", 3);
    robust.watchdog_ms = cfg.get_double("watchdog_ms", 0.0);
    robust.report = cfg.get_string("report_out", "antmd_recovery_report.txt");
    if (cli_checkpoint) robust.checkpoint = cli_checkpoint;
    if (cli_checkpoint_interval >= 0) {
      robust.checkpoint_interval = cli_checkpoint_interval;
    }
    if (cli_resume) robust.resume = true;
    if (cli_supervise) robust.supervise = true;
    if (cli_max_retries >= 0) robust.max_retries = cli_max_retries;
    if (cli_watchdog_ms >= 0) robust.watchdog_ms = cli_watchdog_ms;
    robust.audit_interval = cfg.get_int("audit_interval", 0);
    robust.audit_shadow_window = cfg.get_int("audit_shadow_window", 2);
    robust.scrub_interval = cfg.get_int("scrub_interval", 0);
    if (cli_audit_interval >= 0) robust.audit_interval = cli_audit_interval;
    if (cli_audit_shadow_window >= 0) {
      robust.audit_shadow_window = cli_audit_shadow_window;
    }
    if (cli_scrub_interval >= 0) robust.scrub_interval = cli_scrub_interval;
    ANTMD_REQUIRE(robust.audit_interval == 0 || robust.supervise,
                  "--audit-interval requires --supervise (the supervisor "
                  "performs the rollback recovery)");

    // Golden CRCs are captured now, before the run can flip any bits: the
    // scrubber covers the force field (packed spline tables + flattened
    // exclusion list) and every fixed topology array.
    resilience::Scrubber scrubber;
    if (robust.audit_interval > 0) {
      scrubber.add_object(field);
      scrubber.add_object(spec.topology);
      robust.scrubber = &scrubber;
      std::printf("audit: every %d step(s), shadow window %d, scrubbing "
                  "%zu region(s) / %zu bytes\n",
                  robust.audit_interval, robust.audit_shadow_window,
                  scrubber.region_count(), scrubber.total_bytes());
    }

    std::string fault_spec = cfg.get_string("fault", "");
    if (cli_fault) fault_spec = cli_fault;
    if (!fault_spec.empty()) {
      fault::arm(fault::parse_fault_plan(fault_spec));
      std::printf("fault armed: %s\n", fault_spec.c_str());
    }

    // Cluster-kernel ISA selection: "auto" keeps the cpuid-probed widest
    // variant (or whatever ANTMD_FORCE_ISA pinned for the process); naming
    // an ISA fails fast if this CPU/build lacks it.  Every variant is
    // bit-identical, so this only ever changes speed, never a trajectory.
    std::string simd = cfg.get_string("nonbonded_simd", "auto");
    if (simd != "auto") {
      ff::set_kernel_isa(ff::parse_kernel_isa(simd));
    }
    std::printf("nonbonded simd: %s\n",
                ff::to_string(ff::active_kernel_isa()));

    std::string engine = cfg.get_string("engine", "host");
    double run_wall_seconds = 0.0;
    double modeled_ns_day = 0.0;
    const double dt_fs = cfg.get_double("dt_fs", 2.0);
    if (engine == "machine") {
      runtime::MachineSimConfig mc;
      mc.dt_fs = cfg.get_double("dt_fs", 2.0);
      mc.kspace_interval = cfg.get_int("kspace_interval", 2);
      mc.neighbor_skin = cfg.get_double("skin", 1.0);
      mc.nonbonded_kernel = ff::parse_nonbonded_kernel(
          cfg.get_string("nonbonded_kernel", "cluster"));
      mc.init_temperature_k = cfg.get_double("temperature", 300.0);
      mc.thermostat = build_thermostat(cfg);
      mc.engine.execution = exec;
      int edge = cfg.get_int("nodes", 4);
      runtime::MachineSimulation sim(
          field, machine::anton_with_torus(edge, edge, edge), spec.positions,
          spec.box, mc);
      Table table({"step", "T (K)", "potential", "modeled ns/day"});
      sim.add_observer(
          [&](const md::StepInfo& info) {
            table.add_row({std::to_string(info.step),
                           Table::num(info.temperature, 1),
                           Table::num(info.potential, 1),
                           Table::num(sim.ns_per_day(), 0)});
            if (xyz) xyz->write_frame(sim.state());
          },
          report);
      if (telemetry) sim.add_observer(md::metrics_observer(), report);
      run_wall_seconds =
          run_simulation(sim, static_cast<size_t>(steps), robust);
      modeled_ns_day = sim.ns_per_day();
      std::fputs(table.render().c_str(), stdout);
      std::printf("modeled mean step: %.2f us on %zu nodes\n",
                  sim.mean_step_time_s() * 1e6, sim.engine().node_count());
    } else if (engine == "host") {
      std::string barostat = cfg.get_string("barostat", "none");
      md::BarostatConfig bc;
      if (barostat == "mc") {
        bc.kind = md::BarostatKind::kMonteCarlo;
      } else if (barostat == "berendsen") {
        bc.kind = md::BarostatKind::kBerendsen;
      } else if (barostat == "semiiso") {
        bc.kind = md::BarostatKind::kBerendsenSemiIso;
      } else {
        ANTMD_REQUIRE(barostat == "none", "unknown barostat: " + barostat);
      }
      bc.pressure_atm = cfg.get_double("pressure", 1.0);
      md::Simulation sim =
          md::SimulationBuilder()
              .dt_fs(cfg.get_double("dt_fs", 2.0))
              .kspace_interval(cfg.get_int("kspace_interval", 1))
              .respa_inner(cfg.get_int("respa_inner", 1))
              .neighbor_skin(cfg.get_double("skin", 1.0))
              .nonbonded_kernel(ff::parse_nonbonded_kernel(
                  cfg.get_string("nonbonded_kernel", "cluster")))
              .init_temperature(cfg.get_double("temperature", 300.0))
              .thermostat(build_thermostat(cfg))
              .barostat(bc)
              .execution(exec)
              .build(field, spec.positions, spec.box);
      Table table({"step", "T (K)", "potential", "pressure (atm)"});
      sim.add_observer(
          [&](const md::StepInfo& info) {
            table.add_row({std::to_string(info.step),
                           Table::num(info.temperature, 1),
                           Table::num(info.potential, 1),
                           Table::num(sim.pressure_atm(), 1)});
            if (xyz) xyz->write_frame(sim.state());
          },
          report);
      if (telemetry) sim.add_observer(md::metrics_observer(), report);
      run_wall_seconds =
          run_simulation(sim, static_cast<size_t>(steps), robust);
      std::fputs(table.render().c_str(), stdout);
    } else {
      throw ConfigError("unknown engine: " + engine);
    }
    if (xyz) {
      std::printf("wrote %zu frames to %s\n", xyz->frames_written(),
                  cfg.require_string("xyz").c_str());
    }
    if (telemetry) {
      print_telemetry_summary(static_cast<size_t>(steps), dt_fs,
                              run_wall_seconds, modeled_ns_day);
    }
    if (profiling) {
      auto& prof = obs::Profile::global();
      prof.publish_metrics();  // mirror into profile.* gauges pre-dump
      std::fputs(prof.render_summary().c_str(), stdout);
      if (!profile_out.empty()) {
        if (obs::write_text_file(profile_out, prof.to_json())) {
          std::printf("wrote profile: %s\n", profile_out.c_str());
        } else {
          std::fprintf(stderr, "antmd_run: failed to write profile %s\n",
                       profile_out.c_str());
        }
      }
    }
    if (!prom_out.empty()) {
      const std::string body =
          obs::MetricsRegistry::global().snapshot().to_prometheus();
      if (obs::write_text_file(prom_out, body)) {
        std::printf("wrote prometheus metrics: %s\n", prom_out.c_str());
      } else {
        std::fprintf(stderr, "antmd_run: failed to write %s\n",
                     prom_out.c_str());
      }
    }
    if (!trace_out.empty() && telemetry) {
      auto& session = obs::TraceSession::global();
      size_t events = session.event_count();
      if (session.stop()) {
        std::printf("wrote trace: %s (%zu events)\n", trace_out.c_str(),
                    events);
      } else {
        std::fprintf(stderr, "antmd_run: failed to write trace %s\n",
                     trace_out.c_str());
      }
    }
    if (!metrics_out.empty()) {
      if (obs::write_metrics_file(metrics_out,
                                  obs::MetricsRegistry::global().snapshot())) {
        std::printf("wrote metrics: %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "antmd_run: failed to write metrics %s\n",
                     metrics_out.c_str());
      }
    }
    return 0;
  } catch (const RecoveryExhausted& e) {
    std::fprintf(stderr, "antmd_run: recovery exhausted: %s\n", e.what());
    return 5;
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "antmd_run: %s\n", e.what());
    return 2;
  } catch (const IoError& e) {
    std::fprintf(stderr, "antmd_run: %s\n", e.what());
    return 3;
  } catch (const NumericalError& e) {
    std::fprintf(stderr, "antmd_run: %s\n", e.what());
    return 4;
  } catch (const Error& e) {
    std::fprintf(stderr, "antmd_run: %s\n", e.what());
    return 1;
  }
}
