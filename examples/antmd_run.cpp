// antmd_run: config-file-driven simulation driver.
//
// Describes a run in a small `key = value` file and executes it on either
// the plain host engine or the modeled machine, e.g.:
//
//   # water.cfg
//   system       = water        # water | ljfluid | polymer | bilayer | dimer
//   size         = 216          # molecules/atoms (builder-specific)
//   engine       = machine      # host | machine
//   nodes        = 4            # torus edge when engine = machine
//   steps        = 500
//   dt_fs        = 2.0
//   temperature  = 300
//   thermostat   = langevin     # none | berendsen | langevin | nosehoover
//   electrostatics = gse        # none | cutoff | gse
//   cutoff       = 6.0
//   threads      = 4            # host worker threads (1 = serial, 0 = auto)
//   deterministic_reduction = true
//   xyz          = out.xyz      # optional trajectory
//
//   ./antmd_run water.cfg [--threads N]
//
// --threads on the command line overrides the config file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "ff/forcefield.hpp"
#include "io/config.hpp"
#include "io/trajectory.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace antmd;

namespace {

SystemSpec build_system(const io::RunConfig& cfg) {
  std::string system = cfg.require_string("system");
  auto size = static_cast<size_t>(cfg.get_int("size", 216));
  uint64_t seed = static_cast<uint64_t>(cfg.get_int("seed", 1));
  if (system == "water") {
    std::string model = cfg.get_string("water_model", "rigid3");
    WaterModel wm = WaterModel::kRigid3Site;
    if (model == "flexible3") wm = WaterModel::kFlexible3Site;
    else if (model == "rigid4") wm = WaterModel::kRigid4Site;
    else ANTMD_REQUIRE(model == "rigid3", "unknown water_model: " + model);
    return build_water_box(size, wm, seed);
  }
  if (system == "ljfluid") {
    return build_lj_fluid(size, cfg.get_double("density", 0.021), seed);
  }
  if (system == "polymer") {
    return build_polymer_in_solvent(
        static_cast<size_t>(cfg.get_int("chain_length", 20)), size, seed);
  }
  if (system == "bilayer") {
    return build_lipid_bilayer(size,
        static_cast<size_t>(cfg.get_int("water_layers", 3)), seed);
  }
  if (system == "dimer") {
    return build_dimer_in_solvent(size, cfg.get_double("separation", 5.0),
                                  seed);
  }
  throw ConfigError("unknown system: " + system);
}

ff::NonbondedModel build_model(const io::RunConfig& cfg) {
  ff::NonbondedModel model;
  model.cutoff = cfg.get_double("cutoff", 8.0);
  std::string elec = cfg.get_string("electrostatics", "gse");
  if (elec == "none") model.electrostatics = ff::Electrostatics::kNone;
  else if (elec == "cutoff") {
    model.electrostatics = ff::Electrostatics::kReactionCutoff;
  } else if (elec == "gse") {
    model.electrostatics = ff::Electrostatics::kEwaldReal;
    model.ewald_beta = cfg.get_double("ewald_beta", 0.4);
  } else {
    throw ConfigError("unknown electrostatics: " + elec);
  }
  return model;
}

md::ThermostatConfig build_thermostat(const io::RunConfig& cfg) {
  md::ThermostatConfig t;
  t.temperature_k = cfg.get_double("temperature", 300.0);
  t.gamma_per_ps = cfg.get_double("gamma", 5.0);
  t.tau_fs = cfg.get_double("tau_fs", 500.0);
  std::string kind = cfg.get_string("thermostat", "langevin");
  if (kind == "none") t.kind = md::ThermostatKind::kNone;
  else if (kind == "berendsen") t.kind = md::ThermostatKind::kBerendsen;
  else if (kind == "langevin") t.kind = md::ThermostatKind::kLangevin;
  else if (kind == "nosehoover") t.kind = md::ThermostatKind::kNoseHoover;
  else throw ConfigError("unknown thermostat: " + kind);
  return t;
}

/// Execution settings: config keys `threads` / `deterministic_reduction`,
/// with an optional --threads command-line override.
ExecutionConfig build_execution(const io::RunConfig& cfg, int cli_threads) {
  ExecutionConfig exec;
  exec.threads = static_cast<size_t>(cfg.get_int("threads", 1));
  exec.deterministic_reduction =
      cfg.get_bool("deterministic_reduction", true);
  if (cli_threads >= 0) exec.threads = static_cast<size_t>(cli_threads);
  return exec;
}

/// Strict non-negative integer parse; rejects "abc", "4x", "".
int parse_threads(const char* text) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr, "antmd_run: --threads expects a non-negative "
                         "integer, got '%s'\n", text);
    std::exit(1);
  }
  return static_cast<int>(value);
}

}  // namespace

int main(int argc, char** argv) {
  const char* config_path = nullptr;
  int cli_threads = -1;  // -1 = not given
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg.rfind("--threads=", 0) == 0) {
      cli_threads = parse_threads(arg.c_str() + std::strlen("--threads="));
    } else if (arg == "--threads" && a + 1 < argc) {
      cli_threads = parse_threads(argv[++a]);
    } else if (!config_path) {
      config_path = argv[a];
    } else {
      config_path = nullptr;
      break;
    }
  }
  if (!config_path) {
    std::fprintf(stderr, "usage: antmd_run <config-file> [--threads N]\n");
    return 1;
  }
  try {
    auto cfg = io::RunConfig::from_file(config_path);
    auto spec = build_system(cfg);
    auto model = build_model(cfg);
    // GSE water without charges is meaningless; drop electrostatics when
    // the system carries none.
    bool charged = false;
    for (double q : spec.topology.charges()) {
      if (q != 0.0) charged = true;
    }
    if (!charged) model.electrostatics = ff::Electrostatics::kNone;

    ForceField field(spec.topology, model);
    const int steps = cfg.get_int("steps", 200);
    const int report = std::max(1, steps / 10);
    std::unique_ptr<io::XyzWriter> xyz;
    if (cfg.has("xyz")) {
      xyz = std::make_unique<io::XyzWriter>(cfg.require_string("xyz"),
                                            spec.topology);
    }

    std::printf("system: %s — %zu atoms\n", spec.name.c_str(),
                spec.topology.atom_count());

    const ExecutionConfig exec = build_execution(cfg, cli_threads);
    std::string engine = cfg.get_string("engine", "host");
    if (engine == "machine") {
      runtime::MachineSimConfig mc;
      mc.dt_fs = cfg.get_double("dt_fs", 2.0);
      mc.kspace_interval = cfg.get_int("kspace_interval", 2);
      mc.neighbor_skin = cfg.get_double("skin", 1.0);
      mc.init_temperature_k = cfg.get_double("temperature", 300.0);
      mc.thermostat = build_thermostat(cfg);
      mc.engine.execution = exec;
      int edge = cfg.get_int("nodes", 4);
      runtime::MachineSimulation sim(
          field, machine::anton_with_torus(edge, edge, edge), spec.positions,
          spec.box, mc);
      Table table({"step", "T (K)", "potential", "modeled ns/day"});
      sim.add_observer(
          [&](const md::StepInfo& info) {
            table.add_row({std::to_string(info.step),
                           Table::num(info.temperature, 1),
                           Table::num(info.potential, 1),
                           Table::num(sim.ns_per_day(), 0)});
            if (xyz) xyz->write_frame(sim.state());
          },
          report);
      sim.run(static_cast<size_t>(steps));
      std::fputs(table.render().c_str(), stdout);
      std::printf("modeled mean step: %.2f us on %zu nodes\n",
                  sim.mean_step_time_s() * 1e6, sim.engine().node_count());
    } else if (engine == "host") {
      std::string barostat = cfg.get_string("barostat", "none");
      md::BarostatConfig bc;
      if (barostat == "mc") {
        bc.kind = md::BarostatKind::kMonteCarlo;
      } else if (barostat == "berendsen") {
        bc.kind = md::BarostatKind::kBerendsen;
      } else if (barostat == "semiiso") {
        bc.kind = md::BarostatKind::kBerendsenSemiIso;
      } else {
        ANTMD_REQUIRE(barostat == "none", "unknown barostat: " + barostat);
      }
      bc.pressure_atm = cfg.get_double("pressure", 1.0);
      md::Simulation sim =
          md::SimulationBuilder()
              .dt_fs(cfg.get_double("dt_fs", 2.0))
              .kspace_interval(cfg.get_int("kspace_interval", 1))
              .respa_inner(cfg.get_int("respa_inner", 1))
              .neighbor_skin(cfg.get_double("skin", 1.0))
              .init_temperature(cfg.get_double("temperature", 300.0))
              .thermostat(build_thermostat(cfg))
              .barostat(bc)
              .execution(exec)
              .build(field, spec.positions, spec.box);
      Table table({"step", "T (K)", "potential", "pressure (atm)"});
      sim.add_observer(
          [&](const md::StepInfo& info) {
            table.add_row({std::to_string(info.step),
                           Table::num(info.temperature, 1),
                           Table::num(info.potential, 1),
                           Table::num(sim.pressure_atm(), 1)});
            if (xyz) xyz->write_frame(sim.state());
          },
          report);
      sim.run(static_cast<size_t>(steps));
      std::fputs(table.render().c_str(), stdout);
    } else {
      throw ConfigError("unknown engine: " + engine);
    }
    if (xyz) {
      std::printf("wrote %zu frames to %s\n", xyz->frames_written(),
                  cfg.require_string("xyz").c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "antmd_run: %s\n", e.what());
    return 1;
  }
}
