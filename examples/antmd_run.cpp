// antmd_run: config-file-driven simulation driver.
//
// Describes a run in a small `key = value` file and executes it on either
// the plain host engine or the modeled machine, e.g.:
//
//   # water.cfg
//   system       = water        # water | ljfluid | polymer | bilayer | dimer
//   size         = 216          # molecules/atoms (builder-specific)
//   engine       = machine      # host | machine
//   nodes        = 4            # torus edge when engine = machine
//   steps        = 500
//   dt_fs        = 2.0
//   temperature  = 300
//   thermostat   = langevin     # none | berendsen | langevin | nosehoover
//   electrostatics = gse        # none | cutoff | gse
//   cutoff       = 6.0
//   xyz          = out.xyz      # optional trajectory
//
//   ./antmd_run water.cfg
#include <cstdio>
#include <memory>

#include "ff/forcefield.hpp"
#include "io/config.hpp"
#include "io/trajectory.hpp"
#include "md/simulation.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace antmd;

namespace {

SystemSpec build_system(const io::RunConfig& cfg) {
  std::string system = cfg.require_string("system");
  auto size = static_cast<size_t>(cfg.get_int("size", 216));
  uint64_t seed = static_cast<uint64_t>(cfg.get_int("seed", 1));
  if (system == "water") {
    std::string model = cfg.get_string("water_model", "rigid3");
    WaterModel wm = WaterModel::kRigid3Site;
    if (model == "flexible3") wm = WaterModel::kFlexible3Site;
    else if (model == "rigid4") wm = WaterModel::kRigid4Site;
    else ANTMD_REQUIRE(model == "rigid3", "unknown water_model: " + model);
    return build_water_box(size, wm, seed);
  }
  if (system == "ljfluid") {
    return build_lj_fluid(size, cfg.get_double("density", 0.021), seed);
  }
  if (system == "polymer") {
    return build_polymer_in_solvent(
        static_cast<size_t>(cfg.get_int("chain_length", 20)), size, seed);
  }
  if (system == "bilayer") {
    return build_lipid_bilayer(size,
        static_cast<size_t>(cfg.get_int("water_layers", 3)), seed);
  }
  if (system == "dimer") {
    return build_dimer_in_solvent(size, cfg.get_double("separation", 5.0),
                                  seed);
  }
  throw ConfigError("unknown system: " + system);
}

ff::NonbondedModel build_model(const io::RunConfig& cfg) {
  ff::NonbondedModel model;
  model.cutoff = cfg.get_double("cutoff", 8.0);
  std::string elec = cfg.get_string("electrostatics", "gse");
  if (elec == "none") model.electrostatics = ff::Electrostatics::kNone;
  else if (elec == "cutoff") {
    model.electrostatics = ff::Electrostatics::kReactionCutoff;
  } else if (elec == "gse") {
    model.electrostatics = ff::Electrostatics::kEwaldReal;
    model.ewald_beta = cfg.get_double("ewald_beta", 0.4);
  } else {
    throw ConfigError("unknown electrostatics: " + elec);
  }
  return model;
}

md::ThermostatConfig build_thermostat(const io::RunConfig& cfg) {
  md::ThermostatConfig t;
  t.temperature_k = cfg.get_double("temperature", 300.0);
  t.gamma_per_ps = cfg.get_double("gamma", 5.0);
  t.tau_fs = cfg.get_double("tau_fs", 500.0);
  std::string kind = cfg.get_string("thermostat", "langevin");
  if (kind == "none") t.kind = md::ThermostatKind::kNone;
  else if (kind == "berendsen") t.kind = md::ThermostatKind::kBerendsen;
  else if (kind == "langevin") t.kind = md::ThermostatKind::kLangevin;
  else if (kind == "nosehoover") t.kind = md::ThermostatKind::kNoseHoover;
  else throw ConfigError("unknown thermostat: " + kind);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: antmd_run <config-file>\n");
    return 1;
  }
  try {
    auto cfg = io::RunConfig::from_file(argv[1]);
    auto spec = build_system(cfg);
    auto model = build_model(cfg);
    // GSE water without charges is meaningless; drop electrostatics when
    // the system carries none.
    bool charged = false;
    for (double q : spec.topology.charges()) {
      if (q != 0.0) charged = true;
    }
    if (!charged) model.electrostatics = ff::Electrostatics::kNone;

    ForceField field(spec.topology, model);
    const int steps = cfg.get_int("steps", 200);
    const int report = std::max(1, steps / 10);
    std::unique_ptr<io::XyzWriter> xyz;
    if (cfg.has("xyz")) {
      xyz = std::make_unique<io::XyzWriter>(cfg.require_string("xyz"),
                                            spec.topology);
    }

    std::printf("system: %s — %zu atoms\n", spec.name.c_str(),
                spec.topology.atom_count());

    std::string engine = cfg.get_string("engine", "host");
    if (engine == "machine") {
      runtime::MachineSimConfig mc;
      mc.dt_fs = cfg.get_double("dt_fs", 2.0);
      mc.kspace_interval = cfg.get_int("kspace_interval", 2);
      mc.neighbor_skin = cfg.get_double("skin", 1.0);
      mc.init_temperature_k = cfg.get_double("temperature", 300.0);
      mc.thermostat = build_thermostat(cfg);
      int edge = cfg.get_int("nodes", 4);
      runtime::MachineSimulation sim(
          field, machine::anton_with_torus(edge, edge, edge), spec.positions,
          spec.box, mc);
      Table table({"step", "T (K)", "potential", "modeled ns/day"});
      for (int s = 0; s < steps; ++s) {
        sim.step();
        if ((s + 1) % report == 0) {
          table.add_row({std::to_string(s + 1),
                         Table::num(sim.temperature(), 1),
                         Table::num(sim.potential_energy(), 1),
                         Table::num(sim.ns_per_day(), 0)});
          if (xyz) xyz->write_frame(sim.state());
        }
      }
      std::fputs(table.render().c_str(), stdout);
      std::printf("modeled mean step: %.2f us on %zu nodes\n",
                  sim.mean_step_time_s() * 1e6, sim.engine().node_count());
    } else if (engine == "host") {
      md::SimulationConfig hc;
      hc.dt_fs = cfg.get_double("dt_fs", 2.0);
      hc.kspace_interval = cfg.get_int("kspace_interval", 1);
      hc.respa_inner = cfg.get_int("respa_inner", 1);
      hc.neighbor_skin = cfg.get_double("skin", 1.0);
      hc.init_temperature_k = cfg.get_double("temperature", 300.0);
      hc.thermostat = build_thermostat(cfg);
      std::string barostat = cfg.get_string("barostat", "none");
      if (barostat == "mc") {
        hc.barostat.kind = md::BarostatKind::kMonteCarlo;
      } else if (barostat == "berendsen") {
        hc.barostat.kind = md::BarostatKind::kBerendsen;
      } else if (barostat == "semiiso") {
        hc.barostat.kind = md::BarostatKind::kBerendsenSemiIso;
      } else {
        ANTMD_REQUIRE(barostat == "none", "unknown barostat: " + barostat);
      }
      hc.barostat.pressure_atm = cfg.get_double("pressure", 1.0);
      md::Simulation sim(field, spec.positions, spec.box, hc);
      Table table({"step", "T (K)", "potential", "pressure (atm)"});
      for (int s = 0; s < steps; ++s) {
        sim.step();
        if ((s + 1) % report == 0) {
          table.add_row({std::to_string(s + 1),
                         Table::num(sim.temperature(), 1),
                         Table::num(sim.potential_energy(), 1),
                         Table::num(sim.pressure_atm(), 1)});
          if (xyz) xyz->write_frame(sim.state());
        }
      }
      std::fputs(table.render().c_str(), stdout);
    } else {
      throw ConfigError("unknown engine: " + engine);
    }
    if (xyz) {
      std::printf("wrote %zu frames to %s\n", xyz->frames_written(),
                  cfg.require_string("xyz").c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "antmd_run: %s\n", e.what());
    return 1;
  }
}
