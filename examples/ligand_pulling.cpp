// Example: steered-MD "ligand unbinding" — pull a dimer out of a custom
// tabulated binding well and record the pulling work (Jarzynski-style
// traces), the workload pattern behind the Shaw-group drug-unbinding
// studies the generality extensions enabled.
//
//   ./ligand_pulling --velocity 0.04 --steps 2500 --csv work.csv
#include <cstdio>

#include "ff/forcefield.hpp"
#include "io/trajectory.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "sampling/smd.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

int main(int argc, char** argv) {
  CliParser cli("ligand_pulling",
                "Steered pulling out of a tabulated binding well");
  cli.add_flag("solvent", "solvent atoms", 216);
  cli.add_flag("velocity", "anchor velocity (A per internal time)", 0.04);
  cli.add_flag("spring", "spring constant (kcal/mol/A^2)", 15.0);
  cli.add_flag("steps", "MD steps", 2500);
  cli.add_flag("csv", "work trace CSV path (empty = none)",
               std::string(""));
  if (!cli.parse(argc, argv)) return 0;

  auto spec = build_dimer_in_solvent(
      static_cast<size_t>(cli.get_int("solvent")), 4.0);

  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  // "Binding site": a 4 kcal/mol tabulated well at 4 Å between the dimer
  // partners — installed through the same custom-table path as any other
  // pair potential.
  auto well = RadialTable::from_potential(
      [](double r) { return 2.0 * (r - 4.0) * (r - 4.0) - 4.0; },
      [](double r) { return 4.0 * (r - 4.0); }, 1.2, 8.0, 2048, true);
  field.set_custom_pair_table(0, 0, std::move(well));

  size_t spring = field.add_steered_spring(
      {spec.tagged[0], spec.tagged[1], cli.get_double("spring"), 4.0,
       cli.get_double("velocity")});

  md::Simulation sim = md::SimulationBuilder()
                           .dt_fs(4.0)
                           .neighbor_skin(1.0)
                           .langevin(150.0, 1.0)
                           .build(field, spec.positions, spec.box);

  sampling::SteeredPull pull(sim, spring);
  pull.run(static_cast<size_t>(cli.get_int("steps")), 25);
  const sampling::SmdResult& res = pull.result();

  Table table({"time (internal)", "anchor (A)", "distance (A)",
               "work (kcal/mol)"});
  size_t stride = std::max<size_t>(1, res.times.size() / 12);
  for (size_t k = 0; k < res.times.size(); k += stride) {
    table.add_row({Table::num(res.times[k], 1),
                   Table::num(res.targets[k], 2),
                   Table::num(res.distances[k], 2),
                   Table::num(res.work_trace[k], 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ntotal pulling work: %.2f kcal/mol (well depth was 4.0)\n",
              res.total_work);

  if (!cli.get_string("csv").empty()) {
    io::CsvWriter csv(cli.get_string("csv"),
                      {"time", "target", "distance", "work"});
    for (size_t k = 0; k < res.times.size(); ++k) {
      csv.write_row(std::vector<double>{res.times[k], res.targets[k],
                                        res.distances[k],
                                        res.work_trace[k]});
    }
    std::printf("wrote %zu rows to %s\n", res.times.size(),
                cli.get_string("csv").c_str());
  }
  return 0;
}
