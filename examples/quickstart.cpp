// Quickstart: simulate a rigid water box on the modeled Anton-class
// machine, printing thermodynamic output and the modeled hardware
// performance every few steps.
//
//   ./quickstart --waters 216 --steps 200 --nodes 4
#include <cstdio>

#include "ff/forcefield.hpp"
#include "io/trajectory.hpp"
#include "machine/config.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

int main(int argc, char** argv) {
  CliParser cli("quickstart",
                "Rigid water MD on the modeled special-purpose machine");
  cli.add_flag("waters", "number of water molecules", 216);
  cli.add_flag("steps", "MD steps", 200);
  cli.add_flag("nodes", "torus edge (nodes = edge^3)", 4);
  cli.add_flag("temperature", "bath temperature (K)", 300.0);
  cli.add_flag("cutoff", "nonbonded cutoff (A)", 6.0);
  cli.add_flag("threads", "host worker threads (1 = serial, 0 = auto)", 1);
  cli.add_flag("xyz", "trajectory output path (empty = none)",
               std::string(""));
  if (!cli.parse(argc, argv)) return 0;

  // 1. Build a synthetic system.
  auto spec = build_water_box(static_cast<size_t>(cli.get_int("waters")),
                              WaterModel::kRigid3Site);
  std::printf("system: %s — %zu atoms, box %.1f A\n", spec.name.c_str(),
              spec.topology.atom_count(), spec.box.edges().x);

  // 2. Force field: tabulated LJ + Gaussian-split-Ewald electrostatics.
  ff::NonbondedModel model;
  model.cutoff = cli.get_double("cutoff");
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.4;
  ForceField field(spec.topology, model);

  // 3. Put it on the machine.
  int edge = cli.get_int("nodes");
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.kspace_interval = 2;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = cli.get_double("temperature");
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = cli.get_double("temperature");
  // The synthetic lattice releases several kcal/mol per molecule of
  // electrostatic cohesion as it melts; strong friction absorbs it.
  cfg.thermostat.gamma_per_ps = 10.0;
  cfg.engine.execution.threads =
      static_cast<size_t>(cli.get_int("threads"));
  runtime::MachineSimulation sim(field,
                                 machine::anton_with_torus(edge, edge, edge),
                                 spec.positions, spec.box, cfg);

  std::unique_ptr<io::XyzWriter> xyz;
  if (!cli.get_string("xyz").empty()) {
    xyz = std::make_unique<io::XyzWriter>(cli.get_string("xyz"),
                                          spec.topology);
  }

  // 4. Run, reporting from a step observer as we go.
  Table table({"step", "T (K)", "potential (kcal/mol)",
               "modeled step (us)", "modeled ns/day"});
  const int steps = cli.get_int("steps");
  const int report = std::max(1, steps / 10);
  sim.add_observer(
      [&](const md::StepInfo& info) {
        table.add_row({std::to_string(info.step),
                       Table::num(info.temperature, 1),
                       Table::num(info.potential, 1),
                       Table::num(sim.last_breakdown().total * 1e6, 2),
                       Table::num(sim.ns_per_day(), 0)});
        if (xyz) xyz->write_frame(sim.state());
      },
      report);
  sim.run(static_cast<size_t>(steps));
  std::fputs(table.render().c_str(), stdout);

  const auto& acc = sim.accumulated();
  std::printf(
      "\nmodeled hardware utilization: HTIS pipelines %.0f%%, geometry "
      "cores %.0f%%, network+sync %.0f%%\n",
      100.0 * acc.pair_phase / acc.total,
      100.0 *
          (acc.gc_force_phase + acc.update + acc.kspace_spread +
           acc.kspace_interp + acc.kspace_convolve + acc.kspace_fft_compute) /
          acc.total,
      100.0 * (acc.multicast + acc.reduce + acc.kspace_fft_comm + acc.sync) /
          acc.total);
  if (xyz) {
    std::printf("wrote %zu trajectory frames to %s\n", xyz->frames_written(),
                cli.get_string("xyz").c_str());
  }
  return 0;
}
