// Example: simulated tempering accelerates the collapse of a solvated
// "mini-protein" (bead-spring polymer with attractive beads).
//
// At the cold target temperature the chain collapses slowly; the tempering
// walk borrows high-temperature mobility.  We track the radius of gyration
// and the temperature-ladder occupancy.
//
//   ./tempering_miniprotein --beads 20 --steps 4000
#include <cmath>
#include <cstdio>

#include "ff/forcefield.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "sampling/tempering.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

namespace {

double radius_of_gyration(const md::Simulation& sim, size_t beads) {
  const auto& pos = sim.state().positions;
  const Box& box = sim.state().box;
  // Unwrap the chain relative to bead 0.
  std::vector<Vec3> chain(beads);
  chain[0] = pos[0];
  for (size_t b = 1; b < beads; ++b) {
    chain[b] = chain[b - 1] + box.min_image(pos[b], pos[b - 1]);
  }
  Vec3 com{};
  for (const auto& p : chain) com += p;
  com /= static_cast<double>(beads);
  double rg2 = 0;
  for (const auto& p : chain) rg2 += norm2(p - com);
  return std::sqrt(rg2 / static_cast<double>(beads));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("tempering_miniprotein",
                "Polymer collapse with simulated tempering");
  cli.add_flag("beads", "chain length", 20);
  cli.add_flag("solvent", "solvent atoms", 125);
  cli.add_flag("steps", "MD steps", 4000);
  cli.add_flag("cold", "target (cold) temperature (K)", 120.0);
  if (!cli.parse(argc, argv)) return 0;

  const auto beads = static_cast<size_t>(cli.get_int("beads"));
  auto spec = build_polymer_in_solvent(beads,
                                       static_cast<size_t>(
                                           cli.get_int("solvent")));
  std::printf("system: %s — %zu atoms\n", spec.name.c_str(),
              spec.topology.atom_count());

  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  const double cold = cli.get_double("cold");
  md::Simulation sim = md::SimulationBuilder()
                           .dt_fs(4.0)
                           .neighbor_skin(1.0)
                           .langevin(cold, 5.0)
                           .build(field, spec.positions, spec.box);

  // Small-system rung spacing: dT/T ~ sqrt(2/(3N)) keeps acceptance alive.
  sampling::TemperingConfig tc;
  double ratio = 1.07;
  double t = cold;
  for (int k = 0; k < 11; ++k) {
    tc.ladder.push_back(t);
    t *= ratio;
  }
  tc.attempt_interval = 20;
  tc.wl_increment = 2.0;
  sampling::SimulatedTempering st(sim, tc);

  const int steps = cli.get_int("steps");
  const int report = std::max(1, steps / 12);
  Table table({"step", "rung T (K)", "Rg (A)", "potential"});
  sim.add_observer(
      [&](const md::StepInfo& info) {
        table.add_row({std::to_string(info.step),
                       Table::num(st.current_temperature(), 0),
                       Table::num(radius_of_gyration(sim, beads), 2),
                       Table::num(info.potential, 1)});
      },
      report);
  st.run(static_cast<size_t>(steps));
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nladder occupancy:");
  for (size_t k = 0; k < st.occupancy().size(); ++k) {
    std::printf(" %.0fK:%llu", tc.ladder[k],
                static_cast<unsigned long long>(st.occupancy()[k]));
  }
  std::printf("\nexchange acceptance: %.0f%% of %llu attempts\n",
              100.0 * static_cast<double>(st.accepts()) /
                  static_cast<double>(std::max<uint64_t>(st.attempts(), 1)),
              static_cast<unsigned long long>(st.attempts()));
  std::printf(
      "The tempering walk keeps neighbour acceptance high while visiting "
      "hot rungs; over longer runs (tens of thousands of steps) the "
      "chain's Rg falls toward the collapsed globule. Compare "
      "examples/go_folding, where the native-contact funnel makes the "
      "collapse visible within the demo budget.\n");
  return 0;
}
