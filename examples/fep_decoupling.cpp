// Example: absolute solvation free energy of a LJ solute by soft-core FEP
// — each λ window is just another table in the pair pipelines.
//
//   ./fep_decoupling --windows 6 --prod 800
#include <cstdio>

#include "analysis/free_energy.hpp"
#include "sampling/fep.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

int main(int argc, char** argv) {
  CliParser cli("fep_decoupling",
                "Soft-core FEP decoupling of a dimer from a LJ bath");
  cli.add_flag("solvent", "solvent atoms", 125);
  cli.add_flag("windows", "lambda windows", 6);
  cli.add_flag("equil", "equilibration steps per window", 150);
  cli.add_flag("prod", "production steps per window", 800);
  cli.add_flag("temperature", "bath temperature (K)", 120.0);
  if (!cli.parse(argc, argv)) return 0;

  auto spec = build_dimer_in_solvent(
      static_cast<size_t>(cli.get_int("solvent")), 4.0);
  ff::NonbondedModel model;
  model.cutoff = 6.5;  // sized so cutoff+skin fits the 64-atom bath's box
  model.electrostatics = ff::Electrostatics::kNone;

  sampling::FepConfig cfg;
  cfg.lambdas.clear();
  int n_win = cli.get_int("windows");
  for (int w = 0; w < n_win; ++w) {
    cfg.lambdas.push_back(1.0 - static_cast<double>(w) /
                                    static_cast<double>(n_win - 1));
  }
  cfg.equil_steps = static_cast<size_t>(cli.get_int("equil"));
  cfg.prod_steps = static_cast<size_t>(cli.get_int("prod"));
  cfg.sample_interval = 5;
  double t = cli.get_double("temperature");
  cfg.md.dt_fs = 4.0;
  cfg.md.neighbor_skin = 0.8;
  cfg.md.init_temperature_k = t;
  cfg.md.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.md.thermostat.temperature_k = t;

  std::printf("decoupling solute type DM from %s over %d windows...\n",
              spec.name.c_str(), n_win);
  sampling::FepDecoupling fep(spec, 0, model, cfg);
  // Unified driver shape: run(steps) then result().
  fep.run(static_cast<size_t>(cli.get_int("prod")));
  const auto& result = fep.result();

  Table table({"lambda window", "dF Zwanzig (kcal/mol)", "dF BAR"});
  for (size_t w = 0; w + 1 < result.windows.size(); ++w) {
    const auto& fwd = result.windows[w].du_to_next;
    const auto& rev = result.windows[w + 1].du_to_prev;
    table.add_row({Table::num(result.windows[w].lambda, 2) + " -> " +
                       Table::num(result.windows[w + 1].lambda, 2),
                   Table::num(analysis::zwanzig_delta_f(fwd, t), 3),
                   Table::num(analysis::bar_delta_f(fwd, rev, t), 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ntotal decoupling dF: Zwanzig %.3f, BAR %.3f kcal/mol\n",
              result.delta_f_zwanzig, result.delta_f_bar);
  std::printf(
      "(-dF is the solvation free energy of the dimer pair in this bath)\n");
  return 0;
}
