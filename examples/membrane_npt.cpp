// Example: coarse-grained lipid bilayer under semi-isotropic pressure
// coupling — the membrane workload class (GPCRs, ion channels) that
// motivated several of Anton's generality extensions.
//
//   ./membrane_npt --side 4 --steps 600
#include <cstdio>

#include "analysis/structure.hpp"
#include "ff/forcefield.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

int main(int argc, char** argv) {
  CliParser cli("membrane_npt",
                "Coarse bilayer in water with semi-isotropic coupling");
  cli.add_flag("side", "lipids per leaflet edge", 4);
  cli.add_flag("steps", "MD steps", 600);
  cli.add_flag("temperature", "bath temperature (K)", 310.0);
  if (!cli.parse(argc, argv)) return 0;

  auto spec = build_lipid_bilayer(static_cast<size_t>(cli.get_int("side")),
                                  /*water_layers=*/3);
  std::printf("system: %s — %zu atoms, box %.1f x %.1f x %.1f A\n",
              spec.name.c_str(), spec.topology.atom_count(),
              spec.box.edges().x, spec.box.edges().y, spec.box.edges().z);

  // Head-bead indices (first bead of each LIP molecule).
  std::vector<uint32_t> heads;
  for (const auto& mol : spec.topology.molecules()) {
    if (mol.name == "LIP") heads.push_back(mol.first);
  }

  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.4;
  ForceField field(spec.topology, model);

  md::BarostatConfig bc;
  bc.kind = md::BarostatKind::kBerendsenSemiIso;
  bc.pressure_atm = 1.0;
  bc.interval = 20;
  md::Simulation sim = md::SimulationBuilder()
                           .dt_fs(2.0)
                           .kspace_interval(2)
                           .neighbor_skin(1.0)
                           .langevin(cli.get_double("temperature"), 10.0)
                           .barostat(bc)
                           .build(field, spec.positions, spec.box);

  const int steps = cli.get_int("steps");
  const int report = std::max(1, steps / 10);
  Table table({"step", "T (K)", "box xy (A)", "box z (A)",
               "bilayer thickness (A)"});
  sim.add_observer(
      [&](const md::StepInfo& info) {
        table.add_row(
            {std::to_string(info.step), Table::num(info.temperature, 1),
             Table::num(sim.state().box.edges().x, 2),
             Table::num(sim.state().box.edges().z, 2),
             Table::num(analysis::bilayer_thickness(sim.state().positions,
                                                    heads, sim.state().box),
                        2)});
      },
      report);
  sim.run(static_cast<size_t>(steps));
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nSemi-isotropic coupling lets the xy (membrane-plane) and z axes "
      "relax independently — the bilayer keeps its thickness while the "
      "area per lipid equilibrates.\n");
  return 0;
}
