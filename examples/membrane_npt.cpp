// Example: coarse-grained lipid bilayer under semi-isotropic pressure
// coupling — the membrane workload class (GPCRs, ion channels) that
// motivated several of Anton's generality extensions.
//
//   ./membrane_npt --side 4 --steps 600
#include <cstdio>

#include "analysis/structure.hpp"
#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace antmd;

int main(int argc, char** argv) {
  CliParser cli("membrane_npt",
                "Coarse bilayer in water with semi-isotropic coupling");
  cli.add_flag("side", "lipids per leaflet edge", 4);
  cli.add_flag("steps", "MD steps", 600);
  cli.add_flag("temperature", "bath temperature (K)", 310.0);
  if (!cli.parse(argc, argv)) return 0;

  auto spec = build_lipid_bilayer(static_cast<size_t>(cli.get_int("side")),
                                  /*water_layers=*/3);
  std::printf("system: %s — %zu atoms, box %.1f x %.1f x %.1f A\n",
              spec.name.c_str(), spec.topology.atom_count(),
              spec.box.edges().x, spec.box.edges().y, spec.box.edges().z);

  // Head-bead indices (first bead of each LIP molecule).
  std::vector<uint32_t> heads;
  for (const auto& mol : spec.topology.molecules()) {
    if (mol.name == "LIP") heads.push_back(mol.first);
  }

  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.4;
  ForceField field(spec.topology, model);

  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.kspace_interval = 2;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = cli.get_double("temperature");
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = cli.get_double("temperature");
  cfg.thermostat.gamma_per_ps = 10.0;
  cfg.barostat.kind = md::BarostatKind::kBerendsenSemiIso;
  cfg.barostat.pressure_atm = 1.0;
  cfg.barostat.interval = 20;
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  const int steps = cli.get_int("steps");
  const int report = std::max(1, steps / 10);
  Table table({"step", "T (K)", "box xy (A)", "box z (A)",
               "bilayer thickness (A)"});
  for (int s = 0; s < steps; ++s) {
    sim.step();
    if ((s + 1) % report == 0) {
      table.add_row(
          {std::to_string(s + 1), Table::num(sim.temperature(), 1),
           Table::num(sim.state().box.edges().x, 2),
           Table::num(sim.state().box.edges().z, 2),
           Table::num(analysis::bilayer_thickness(sim.state().positions,
                                                  heads, sim.state().box),
                      2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nSemi-isotropic coupling lets the xy (membrane-plane) and z axes "
      "relax independently — the bilayer keeps its thickness while the "
      "area per lipid equilibrates.\n");
  return 0;
}
