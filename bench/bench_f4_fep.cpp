// Experiment F4 — soft-core FEP λ-ladder (reconstructed; see DESIGN.md):
// per-window free-energy increments from Zwanzig and BAR for decoupling a
// LJ dimer from its solvent bath.
//
// Expected shape: smooth per-window increments, BAR and Zwanzig in
// agreement (BAR tighter), finite values even at the λ→0 end where the
// soft core removes the endpoint singularity.
#include <cstdio>

#include "analysis/free_energy.hpp"
#include "bench_common.hpp"
#include "sampling/fep.hpp"
#include "topo/builders.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "F4: soft-core FEP decoupling",
      "Dimer type decoupled from a 125-atom LJ bath; per-window dF "
      "(kcal/mol) via forward Zwanzig and BAR");

  auto spec = build_dimer_in_solvent(125, 4.0, 51);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;

  sampling::FepConfig cfg;
  cfg.lambdas = {1.0, 0.8, 0.6, 0.4, 0.2, 0.0};
  cfg.softcore_alpha = 0.5;
  cfg.equil_steps = 150;
  cfg.prod_steps = 900;
  cfg.sample_interval = 5;
  cfg.md.dt_fs = 4.0;
  cfg.md.neighbor_skin = 1.0;
  cfg.md.init_temperature_k = 120.0;
  cfg.md.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.md.thermostat.temperature_k = 120.0;
  cfg.md.thermostat.gamma_per_ps = 5.0;

  sampling::FepDecoupling fep(spec, /*solute type=*/0, model, cfg);
  fep.run(cfg.prod_steps);
  const sampling::FepResult& result = fep.result();

  Table table({"window", "samples fwd/rev", "dF Zwanzig", "dF BAR"});
  for (size_t w = 0; w + 1 < result.windows.size(); ++w) {
    const auto& fwd = result.windows[w].du_to_next;
    const auto& rev = result.windows[w + 1].du_to_prev;
    double z = analysis::zwanzig_delta_f(fwd, 120.0);
    double b = analysis::bar_delta_f(fwd, rev, 120.0);
    table.add_row({Table::num(result.windows[w].lambda, 1) + " -> " +
                       Table::num(result.windows[w + 1].lambda, 1),
                   std::to_string(fwd.size()) + "/" +
                       std::to_string(rev.size()),
                   Table::num(z, 3), Table::num(b, 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ntotal dF (decoupling): Zwanzig %.3f  BAR %.3f kcal/mol\n",
              result.delta_f_zwanzig, result.delta_f_bar);
  std::printf(
      "Shape check: increments are smooth across windows and the two "
      "estimators agree; the soft core keeps the lambda->0 end finite.\n");
  return 0;
}
