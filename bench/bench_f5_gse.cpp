// Experiment F5 — Gaussian Split Ewald cost breakdown and FFT scaling
// (reconstructed; see DESIGN.md): modeled k-space phase times vs grid size
// and node count.
//
// Expected shape: spread/interpolate dominate at few nodes (they scale with
// charges/node); the distributed FFT's all-to-all communication becomes the
// floor at large node counts — the reason Anton built a dedicated FFT
// path.
#include <cstdio>

#include "bench_common.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "F5: GSE k-space phase breakdown",
      "Modeled per-invocation k-space times (us); water systems sized to "
      "their grids");

  Table table({"grid", "charges", "nodes", "spread", "FFT compute",
               "FFT comm", "convolve", "interp", "total k-space (us)"});

  struct GridCase {
    size_t edge;
    size_t waters;
  };
  // Water boxes whose boxes produce these power-of-two grids at 1 Å.
  const std::vector<GridCase> grids = {{32, 1000}, {64, 7849}, {128, 61440}};
  const std::vector<std::array<int, 3>> layouts = {{4, 4, 4}, {8, 8, 8}};

  for (const auto& g : grids) {
    auto stats = machine::SystemStats::water(g.waters);
    for (const auto& l : layouts) {
      machine::MachineConfig cfg =
          machine::anton_with_torus(l[0], l[1], l[2]);
      machine::TimingModel model(cfg);
      machine::WorkloadParams params;
      params.cutoff = 10.0;
      auto work = machine::estimate_step_work(stats, cfg.node_count(),
                                              params);
      // Zero out the direct-space work so only the k-space phase shows.
      for (auto& n : work.nodes) {
        n.pairs = 0;
        n.gc_force_flops = 0;
        n.gc_update_flops = 0;
        n.import_bytes = 0;
        n.export_bytes = 0;
        n.messages = 0;
      }
      auto bd = model.step_time(work);
      table.add_row({std::to_string(g.edge) + "^3",
                     std::to_string(work.kspace.charges),
                     std::to_string(cfg.node_count()),
                     Table::num(bd.kspace_spread * 1e6, 2),
                     Table::num(bd.kspace_fft_compute * 1e6, 2),
                     Table::num(bd.kspace_fft_comm * 1e6, 2),
                     Table::num(bd.kspace_convolve * 1e6, 2),
                     Table::num(bd.kspace_interp * 1e6, 2),
                     Table::num(bd.kspace_total() * 1e6, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: per-node compute shrinks with node count but the FFT "
      "transpose communication does not — it is the scaling floor of the "
      "k-space phase.\n");
  return 0;
}
