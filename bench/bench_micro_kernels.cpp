// Google-benchmark microbenchmarks of the host implementation's hot
// kernels.  These measure the *simulator's* speed (useful when sizing test
// budgets), not the modeled machine — modeled times come from machine/.
#include <benchmark/benchmark.h>

#include <cmath>

#include "ewald/gse.hpp"
#include "ff/forcefield.hpp"
#include "fft/fft3d.hpp"
#include "math/rng.hpp"
#include "math/spline.hpp"
#include "md/constraints.hpp"
#include "md/neighbor.hpp"
#include "topo/builders.hpp"

namespace antmd {
namespace {

void BM_RadialTableEval(benchmark::State& state) {
  auto table = RadialTable::from_potential(
      [](double r) {
        double s6 = std::pow(3.4 / r, 6);
        return 4.0 * 0.24 * (s6 * s6 - s6);
      },
      [](double r) {
        double s6 = std::pow(3.4 / r, 6);
        return 4.0 * 0.24 * (-12 * s6 * s6 + 6 * s6) / r;
      },
      0.9, 10.0, 2048, true);
  double r2 = 20.0;
  for (auto _ : state) {
    auto e = table.evaluate(r2);
    benchmark::DoNotOptimize(e);
    r2 = 10.0 + std::fmod(r2 + 1.37, 80.0);
  }
}
BENCHMARK(BM_RadialTableEval);

void BM_PairLoop(benchmark::State& state) {
  auto spec = build_lj_fluid(static_cast<size_t>(state.range(0)), 0.021, 3);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ff::PairTableSet tables(spec.topology, model);
  md::NeighborList list(spec.topology, model.cutoff, 1.0);
  list.build(spec.positions, spec.box);
  ForceResult out(spec.topology.atom_count());
  for (auto _ : state) {
    out.reset(spec.topology.atom_count());
    ff::compute_pairs(list.pairs(), tables, spec.topology.type_ids(),
                      spec.topology.charges(), spec.positions, spec.box,
                      out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(list.pairs().size()));
}
BENCHMARK(BM_PairLoop)->Arg(512)->Arg(1728);

void BM_NeighborBuild(benchmark::State& state) {
  auto spec = build_lj_fluid(static_cast<size_t>(state.range(0)), 0.021, 5);
  md::NeighborList list(spec.topology, 8.0, 1.0);
  for (auto _ : state) {
    list.build(spec.positions, spec.box);
    benchmark::DoNotOptimize(list.pairs().size());
  }
}
BENCHMARK(BM_NeighborBuild)->Arg(1728)->Arg(4096);

void BM_Fft3d(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Grid3D grid(n, n, n);
  SequentialRng rng(7);
  for (auto& v : grid.raw()) v = {rng.uniform(-1, 1), 0.0};
  for (auto _ : state) {
    fft3d_forward(grid);
    fft3d_inverse(grid);
    benchmark::DoNotOptimize(grid.raw()[0]);
  }
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(32);

void BM_GseSolve(benchmark::State& state) {
  auto spec = build_water_box(static_cast<size_t>(state.range(0)),
                              WaterModel::kRigid3Site);
  GseParams params;
  params.beta = 0.4;
  GseSolver solver(spec.box, params);
  auto excl = spec.topology.excluded_pairs();
  ForceResult out(spec.topology.atom_count());
  for (auto _ : state) {
    out.reset(spec.topology.atom_count());
    solver.compute(spec.positions, spec.topology.charges(), excl, spec.box,
                   out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GseSolve)->Arg(125)->Arg(512);

void BM_ShakeWaterBox(benchmark::State& state) {
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  md::ConstraintSolver solver(spec.topology);
  SequentialRng rng(3);
  auto perturbed = spec.positions;
  for (auto& p : perturbed) {
    p += Vec3{rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02),
              rng.uniform(-0.02, 0.02)};
  }
  std::vector<Vec3> velocities(perturbed.size(), Vec3{});
  for (auto _ : state) {
    auto work = perturbed;
    auto stats = solver.apply_positions(spec.positions, work, velocities,
                                        0.0, spec.box);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ShakeWaterBox);

void BM_PhiloxGaussian3(benchmark::State& state) {
  CounterRng rng(42, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    auto g = rng.gaussian3(i++, 17);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_PhiloxGaussian3);

}  // namespace
}  // namespace antmd

BENCHMARK_MAIN();
