// Google-benchmark microbenchmarks of the host implementation's hot
// kernels.  These measure the *simulator's* speed (useful when sizing test
// budgets), not the modeled machine — modeled times come from machine/.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ewald/gse.hpp"
#include "ff/forcefield.hpp"
#include "ff/nonbonded_simd.hpp"
#include "fft/fft3d.hpp"
#include "math/rng.hpp"
#include "math/spline.hpp"
#include "md/constraints.hpp"
#include "md/neighbor.hpp"
#include "topo/builders.hpp"

namespace antmd {
namespace {

void BM_RadialTableEval(benchmark::State& state) {
  auto table = RadialTable::from_potential(
      [](double r) {
        double s6 = std::pow(3.4 / r, 6);
        return 4.0 * 0.24 * (s6 * s6 - s6);
      },
      [](double r) {
        double s6 = std::pow(3.4 / r, 6);
        return 4.0 * 0.24 * (-12 * s6 * s6 + 6 * s6) / r;
      },
      0.9, 10.0, 2048, true);
  double r2 = 20.0;
  for (auto _ : state) {
    auto e = table.evaluate(r2);
    benchmark::DoNotOptimize(e);
    r2 = 10.0 + std::fmod(r2 + 1.37, 80.0);
  }
}
BENCHMARK(BM_RadialTableEval);

void BM_PairLoop(benchmark::State& state) {
  auto spec = build_lj_fluid(static_cast<size_t>(state.range(0)), 0.021, 3);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ff::PairTableSet tables(spec.topology, model);
  md::NeighborList list(spec.topology, model.cutoff, 1.0);
  list.build(spec.positions, spec.box);
  ForceResult out(spec.topology.atom_count());
  for (auto _ : state) {
    out.reset(spec.topology.atom_count());
    ff::compute_pairs(list.pairs(), tables, spec.topology.type_ids(),
                      spec.topology.charges(), spec.positions, spec.box,
                      out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(list.pairs().size()));
}
BENCHMARK(BM_PairLoop)->Arg(512)->Arg(1728);

void BM_ClusterPairLoop(benchmark::State& state) {
  auto spec = build_lj_fluid(static_cast<size_t>(state.range(0)), 0.021, 3);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ff::PairTableSet tables(spec.topology, model);
  md::NeighborList list(spec.topology, model.cutoff, 1.0,
                        /*cluster_mode=*/true);
  list.build(spec.positions, spec.box);
  ForceResult out(spec.topology.atom_count());
  for (auto _ : state) {
    out.reset(spec.topology.atom_count());
    ff::compute_clusters(list.clusters(), tables, spec.positions, spec.box,
                         out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(list.clusters().real_pairs));
}
BENCHMARK(BM_ClusterPairLoop)->Arg(512)->Arg(1728);

void BM_NeighborBuild(benchmark::State& state) {
  auto spec = build_lj_fluid(static_cast<size_t>(state.range(0)), 0.021, 5);
  md::NeighborList list(spec.topology, 8.0, 1.0);
  for (auto _ : state) {
    list.build(spec.positions, spec.box);
    benchmark::DoNotOptimize(list.pairs().size());
  }
}
BENCHMARK(BM_NeighborBuild)->Arg(1728)->Arg(4096);

void BM_Fft3d(benchmark::State& state) {
  auto n = static_cast<size_t>(state.range(0));
  Grid3D grid(n, n, n);
  SequentialRng rng(7);
  for (auto& v : grid.raw()) v = {rng.uniform(-1, 1), 0.0};
  for (auto _ : state) {
    fft3d_forward(grid);
    fft3d_inverse(grid);
    benchmark::DoNotOptimize(grid.raw()[0]);
  }
}
BENCHMARK(BM_Fft3d)->Arg(16)->Arg(32);

void BM_GseSolve(benchmark::State& state) {
  auto spec = build_water_box(static_cast<size_t>(state.range(0)),
                              WaterModel::kRigid3Site);
  GseParams params;
  params.beta = 0.4;
  GseSolver solver(spec.box, params);
  auto excl = spec.topology.excluded_pairs();
  ForceResult out(spec.topology.atom_count());
  for (auto _ : state) {
    out.reset(spec.topology.atom_count());
    solver.compute(spec.positions, spec.topology.charges(), excl, spec.box,
                   out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GseSolve)->Arg(125)->Arg(512);

void BM_ShakeWaterBox(benchmark::State& state) {
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  md::ConstraintSolver solver(spec.topology);
  SequentialRng rng(3);
  auto perturbed = spec.positions;
  for (auto& p : perturbed) {
    p += Vec3{rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02),
              rng.uniform(-0.02, 0.02)};
  }
  std::vector<Vec3> velocities(perturbed.size(), Vec3{});
  for (auto _ : state) {
    auto work = perturbed;
    auto stats = solver.apply_positions(spec.positions, work, velocities,
                                        0.0, spec.box);
    benchmark::DoNotOptimize(stats);
  }
}
BENCHMARK(BM_ShakeWaterBox);

void BM_PhiloxGaussian3(benchmark::State& state) {
  CounterRng rng(42, 1);
  uint64_t i = 0;
  for (auto _ : state) {
    auto g = rng.gaussian3(i++, 17);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_PhiloxGaussian3);

// Head-to-head nonbonded throughput at the acceptance size (~12k atoms):
// both kernels over the same pair set, serial and with the worker pool,
// recorded to BENCH_micro_kernels.json so the speedup is tracked per run.
void kernel_throughput_report() {
  const size_t n_atoms = 12167;  // 23^3 LJ lattice
  auto spec = build_lj_fluid(n_atoms, 0.021, 3);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ff::PairTableSet tables(spec.topology, model);

  md::NeighborList pair_list(spec.topology, model.cutoff, 1.0);
  pair_list.build(spec.positions, spec.box);
  md::NeighborList cluster_list(spec.topology, model.cutoff, 1.0,
                                /*cluster_mode=*/true);
  cluster_list.build(spec.positions, spec.box);
  const ff::ClusterPairList& cl = cluster_list.clusters();
  const double n_pairs = static_cast<double>(pair_list.pairs().size());

  ForceResult out(n_atoms);
  auto best_eval_s = [&](auto&& body) {
    body();  // warm caches and scratch
    double best = 1e300;
    for (int rep = 0; rep < 5; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      for (int k = 0; k < 2; ++k) {
        out.reset(n_atoms);
        body();
      }
      double s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count() /
                 2.0;
      best = std::min(best, s);
    }
    return best;
  };

  const double pair_s = best_eval_s([&] {
    ff::compute_pairs(pair_list.pairs(), tables, spec.topology.type_ids(),
                      spec.topology.charges(), spec.positions, spec.box, out);
  });
  const double cluster_s = best_eval_s([&] {
    ff::compute_clusters(cl, tables, spec.positions, spec.box, out);
  });
  auto exec = ExecutionContext::create(ExecutionConfig{8});
  const double cluster8_s = best_eval_s([&] {
    ff::compute_clusters(cl, tables, spec.positions, spec.box, out, 1.0, 1.0,
                         exec.get());
  });

  std::printf("\nnonbonded kernel throughput, %zu atoms, %.0f pairs "
              "(best of 5):\n",
              n_atoms, n_pairs);
  std::printf("  pair     (serial):    %8.3f ms  %7.1f Mpairs/s\n",
              pair_s * 1e3, n_pairs / pair_s * 1e-6);
  std::printf("  cluster  (serial):    %8.3f ms  %7.1f Mpairs/s  (%.2fx)\n",
              cluster_s * 1e3, n_pairs / cluster_s * 1e-6,
              pair_s / cluster_s);
  std::printf("  cluster  (8 threads): %8.3f ms  %7.1f Mpairs/s  (%.2fx)\n",
              cluster8_s * 1e3, n_pairs / cluster8_s * 1e-6,
              pair_s / cluster8_s);
  std::printf("  tile fill ratio: %.3f (%zu tiles, streamed fill %.3f)\n",
              cl.fill_ratio(), cl.entries.size(), cl.streamed_fill_ratio());

  std::vector<std::pair<std::string, double>> metrics = {
      {"atoms", static_cast<double>(n_atoms)},
      {"pairs", n_pairs},
      {"cluster_tiles", static_cast<double>(cl.entries.size())},
      {"cluster_fill_ratio", cl.fill_ratio()},
      {"cluster_streamed_fill_ratio", cl.streamed_fill_ratio()},
      {"pair_eval_s", pair_s},
      {"cluster_eval_s", cluster_s},
      {"cluster_eval_8t_s", cluster8_s},
      {"pair_mpairs_per_s", n_pairs / pair_s * 1e-6},
      {"cluster_mpairs_per_s", n_pairs / cluster_s * 1e-6},
      {"cluster_mpairs_per_s_8t", n_pairs / cluster8_s * 1e-6},
      {"speedup_cluster_vs_pair", pair_s / cluster_s},
      {"speedup_cluster_8t_vs_pair", pair_s / cluster8_s}};

  // Cluster-kernel ISA sweep, single thread: every variant this build/CPU
  // can run, against the forced-scalar reference.  All variants are
  // bit-identical, so the speedup column is the entire story — and the
  // machine-checkable >=4x acceptance gate lives in
  // simd_best_speedup_vs_scalar below.
  const ff::KernelIsa dispatched = ff::active_kernel_isa();
  metrics.emplace_back("simd_dispatch_isa", static_cast<double>(dispatched));
  std::printf("  dispatched ISA: %s\n", ff::to_string(dispatched));
  ff::set_kernel_isa(ff::KernelIsa::kScalar);
  if (ff::active_kernel_isa() != ff::KernelIsa::kScalar) {
    std::printf("  (ANTMD_FORCE_ISA pins the ISA; skipping the sweep)\n\n");
  } else {
    double scalar_s = 0.0;
    double best_speedup = 1.0;
    for (ff::KernelIsa isa :
         {ff::KernelIsa::kScalar, ff::KernelIsa::kSse41, ff::KernelIsa::kAvx2,
          ff::KernelIsa::kAvx512}) {
      if (!ff::kernel_isa_supported(isa)) continue;
      ff::set_kernel_isa(isa);
      const double isa_s = best_eval_s([&] {
        ff::compute_clusters(cl, tables, spec.positions, spec.box, out);
      });
      if (isa == ff::KernelIsa::kScalar) scalar_s = isa_s;
      const double speedup = scalar_s / isa_s;
      best_speedup = std::max(best_speedup, speedup);
      const std::string key = std::string("simd_") + ff::to_string(isa);
      metrics.emplace_back(key + "_eval_s", isa_s);
      metrics.emplace_back(key + "_mpairs_per_s", n_pairs / isa_s * 1e-6);
      metrics.emplace_back(key + "_speedup_vs_scalar", speedup);
      std::printf("  cluster  (%-7s 1t): %8.3f ms  %7.1f Mpairs/s  "
                  "(%.2fx vs scalar)\n",
                  ff::to_string(isa), isa_s * 1e3, n_pairs / isa_s * 1e-6,
                  speedup);
    }
    metrics.emplace_back("simd_best_speedup_vs_scalar", best_speedup);
    std::printf("  best SIMD speedup vs scalar cluster: %.2fx\n\n",
                best_speedup);
    ff::set_kernel_isa(dispatched);
  }

  bench::write_json_report("micro_kernels", 1, metrics);
}

}  // namespace
}  // namespace antmd

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  antmd::kernel_throughput_report();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
