// Shared helpers for the experiment harnesses (bench_t*/bench_f*).
//
// Each harness regenerates one reconstructed table/figure from DESIGN.md.
// Absolute numbers are modeled (see machine/ and baseline/); the claims
// under test are the *shapes*: who wins, by what factor, where knees fall.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "baseline/cluster.hpp"
#include "machine/config.hpp"
#include "machine/timing.hpp"
#include "machine/workload.hpp"
#include "util/table.hpp"

namespace antmd::bench {

/// Average modeled step time with reciprocal space evaluated every
/// `kspace_interval` steps (the RESPA amortization Anton uses).
inline double amortized_step_s(const machine::TimingModel& model,
                               machine::StepWork work, int kspace_interval) {
  machine::StepWork with_k = work;
  with_k.kspace.active = true;
  machine::StepWork without_k = work;
  without_k.kspace.active = false;
  double t_with = model.step_time(with_k).total;
  double t_without = model.step_time(without_k).total;
  return (t_with + (kspace_interval - 1) * t_without) /
         static_cast<double>(kspace_interval);
}

inline double amortized_step_s(const baseline::ClusterModel& model,
                               machine::StepWork work, int kspace_interval) {
  machine::StepWork with_k = work;
  with_k.kspace.active = true;
  machine::StepWork without_k = work;
  without_k.kspace.active = false;
  double t_with = model.step_time(with_k).total;
  double t_without = model.step_time(without_k).total;
  return (t_with + (kspace_interval - 1) * t_without) /
         static_cast<double>(kspace_interval);
}

inline void print_header(const std::string& experiment,
                         const std::string& caption) {
  std::printf("\n=== %s ===\n%s\n\n", experiment.c_str(), caption.c_str());
}

/// Flattens a modeled phase breakdown into report metrics
/// (`<prefix>multicast_s`, `<prefix>interaction_s`, ...) so BENCH_*.json
/// carries the same per-phase picture the telemetry registry exposes at
/// runtime.
inline void append_breakdown(
    std::vector<std::pair<std::string, double>>& metrics,
    const machine::StepBreakdown& b, const std::string& prefix = "phase_") {
  metrics.emplace_back(prefix + "multicast_s", b.multicast);
  metrics.emplace_back(prefix + "pair_s", b.pair_phase);
  metrics.emplace_back(prefix + "pair_masked_s", b.pair_masked);
  metrics.emplace_back(prefix + "gc_force_s", b.gc_force_phase);
  metrics.emplace_back(prefix + "interaction_s", b.interaction);
  metrics.emplace_back(prefix + "reduce_s", b.reduce);
  metrics.emplace_back(prefix + "update_s", b.update);
  metrics.emplace_back(prefix + "kspace_s", b.kspace_total());
  metrics.emplace_back(prefix + "sync_s", b.sync);
  metrics.emplace_back(prefix + "total_s", b.total);
  metrics.emplace_back(prefix + "htis_utilization", b.htis_utilization());
  metrics.emplace_back(prefix + "gc_utilization", b.gc_utilization());
  metrics.emplace_back(prefix + "network_fraction", b.network_fraction());
}

/// Machine-readable result dump: writes BENCH_<name>.json in the working
/// directory.  Every report carries the host worker-thread count used so
/// wall-clock numbers can be compared across configurations.
inline void write_json_report(
    const std::string& name, size_t threads,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"threads\": %zu",
               name.c_str(), threads);
  for (const auto& [key, value] : metrics) {
    std::fprintf(f, ",\n  \"%s\": %.17g", key.c_str(), value);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace antmd::bench
