// Experiment F2 — hardware utilization split per method (reconstructed; see
// DESIGN.md): fraction of the modeled step spent in HTIS pipelines,
// geometry cores, and the network, for plain MD and for representative
// generality extensions.
//
// Expected shape: plain MD is pipeline-dominated; extension methods shift a
// few percent toward the programmable cores — the paper's argument that
// the flexible subsystem had headroom for generality.
#include <cstdio>

#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

machine::StepBreakdown run_case(const SystemSpec& spec,
                                const ff::NonbondedModel& model,
                                bool with_extensions, bool with_kspace) {
  ff::NonbondedModel m = model;
  if (with_kspace) {
    m.electrostatics = ff::Electrostatics::kEwaldReal;
    m.ewald_beta = 0.4;
  }
  ForceField field(spec.topology, m);
  if (with_extensions) {
    for (uint32_t a = 0; a + 3 < spec.topology.atom_count(); a += 97) {
      field.add_position_restraint({a, spec.positions[a], 5.0, 0.5});
    }
    ff::PairBias bias;
    bias.i = 0;
    bias.j = 1;
    bias.potential = [](double r) -> std::pair<double, double> {
      double d = r - 5.0;
      return {0.3 * d * d, 0.6 * d};
    };
    field.add_pair_bias(std::move(bias));
  }
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.5;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 200.0;
  cfg.kspace_interval = 2;
  runtime::MachineSimulation sim(field, machine::anton_with_torus(4, 4, 4),
                                 spec.positions, spec.box, cfg);
  sim.run(10);
  return sim.accumulated();
}

void add_row(Table& table, const std::string& name,
             const machine::StepBreakdown& acc) {
  double total = acc.total;
  table.add_row({name, Table::num(100.0 * acc.pair_phase / total, 1) + "%",
                 Table::num(100.0 *
                                (acc.gc_force_phase + acc.update +
                                 acc.kspace_spread + acc.kspace_interp +
                                 acc.kspace_convolve + acc.kspace_fft_compute) /
                                total,
                            1) +
                     "%",
                 Table::num(100.0 *
                                (acc.multicast + acc.reduce +
                                 acc.kspace_fft_comm + acc.sync) /
                                total,
                            1) +
                     "%"});
}

}  // namespace

int main() {
  bench::print_header(
      "F2: where the step time goes",
      "64-node machine model; share of accumulated step time in the pair "
      "pipelines (HTIS), the programmable cores (GC), and the network");

  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;

  Table table({"configuration", "HTIS pipelines", "geometry cores",
               "network+sync"});
  {
    auto spec = build_lj_fluid(4096, 0.021, 3);
    add_row(table, "LJ fluid, plain MD", run_case(spec, model, false, false));
    add_row(table, "LJ fluid + extensions",
            run_case(spec, model, true, false));
  }
  {
    auto spec = build_water_box(1000, WaterModel::kRigid3Site);
    ff::NonbondedModel wm;
    wm.cutoff = 8.0;
    add_row(table, "water + GSE k-space", run_case(spec, wm, false, true));
    add_row(table, "water + GSE + extensions",
            run_case(spec, wm, true, true));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: pair pipelines dominate plain MD; k-space and "
      "extensions move share toward the programmable cores without "
      "upsetting the balance.\n");
  return 0;
}
