// Experiment T1 — Anton vs commodity cluster: ns/day for standard MD across
// system sizes (reconstructed; see DESIGN.md).
//
// Workloads: rigid 3-site water boxes from ~11k to ~185k atoms, 10 Å
// cutoff, 2.5 fs timestep, reciprocal space every 2 steps.  Expected shape:
// roughly two orders of magnitude advantage for the special-purpose
// machine at 512 nodes/ranks.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "T1: whole-machine MD performance",
      "512-node Anton model vs 512-rank commodity-cluster model, rigid "
      "water, 10 A cutoff, dt 2.5 fs, k-space every 2 steps");

  machine::MachineConfig anton_cfg = machine::anton_full();
  machine::TimingModel anton(anton_cfg);
  baseline::ClusterModel cluster(baseline::commodity_cluster(512));

  machine::WorkloadParams params;
  params.cutoff = 10.0;

  Table table({"system", "atoms", "anton step (us)", "anton ns/day",
               "cluster step (us)", "cluster ns/day", "speedup"});

  const double dt_fs = 2.5;
  const int kspace_interval = 2;
  for (size_t waters : {3840u, 7849u, 30720u, 61440u}) {
    auto stats = machine::SystemStats::water(waters);
    auto work = machine::estimate_step_work(stats, 512, params);

    double t_anton = bench::amortized_step_s(anton, work, kspace_interval);
    double t_cluster = bench::amortized_step_s(cluster, work,
                                               kspace_interval);
    double anton_nsday = machine::ns_per_day(dt_fs, t_anton);
    double cluster_nsday = machine::ns_per_day(dt_fs, t_cluster);

    table.add_row({"water-" + std::to_string(waters),
                   std::to_string(stats.atoms),
                   Table::num(t_anton * 1e6, 2), Table::num(anton_nsday, 0),
                   Table::num(t_cluster * 1e6, 1),
                   Table::num(cluster_nsday, 1),
                   Table::num(t_cluster / t_anton, 1) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: the special-purpose machine should hold a one-to-two "
      "order-of-magnitude lead across sizes.\n");
  return 0;
}
