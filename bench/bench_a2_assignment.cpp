// Ablation A2 — pair-assignment rule (design-choice ablation from
// DESIGN.md): half-shell (owner of the first atom) vs NT-style midpoint
// assignment, measured on real decompositions by the functional engine.
//
// Expected shape: the midpoint rule balances pair work better and shrinks
// the worst-case import volume as node counts grow — the reason Anton's
// neutral-territory methods exist.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "md/neighbor.hpp"
#include "runtime/engine.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

struct Imbalance {
  double max_pairs = 0;
  double mean_pairs = 0;
  double max_import_kb = 0;
};

Imbalance measure(const SystemSpec& spec, const ff::NonbondedModel& model,
                  int edge, runtime::PairAssignment rule) {
  ForceField field(spec.topology, model);
  runtime::EngineOptions opt;
  opt.pair_rule = rule;
  runtime::DistributedEngine engine(
      field, machine::anton_with_torus(edge, edge, edge), opt);
  md::NeighborList list(spec.topology, model.cutoff, 1.0);
  auto positions = spec.positions;
  list.build(positions, spec.box);
  engine.redistribute(positions, spec.box, list.pairs());
  ForceResult out(spec.topology.atom_count());
  ForceResult kcache(spec.topology.atom_count());
  auto work = engine.evaluate(positions, spec.box, 0.0, list.pairs(), false,
                              out, kcache);
  Imbalance im;
  double total = 0;
  for (const auto& n : work.nodes) {
    im.max_pairs = std::max(im.max_pairs, static_cast<double>(n.pairs));
    im.max_import_kb = std::max(im.max_import_kb, n.import_bytes / 1024.0);
    total += static_cast<double>(n.pairs);
  }
  im.mean_pairs = total / static_cast<double>(work.nodes.size());
  return im;
}

}  // namespace

int main() {
  bench::print_header(
      "A2: pair-assignment rule ablation",
      "4096-atom LJ fluid, functional decomposition; worst-node pair count "
      "(load balance) and worst-node import volume per rule");

  auto spec = build_lj_fluid(4096, 0.021, 3);
  ff::NonbondedModel model;
  model.cutoff = 9.0;
  model.electrostatics = ff::Electrostatics::kNone;

  Table table({"nodes", "rule", "max pairs/node", "imbalance",
               "max import (KiB)"});
  for (int edge : {2, 3, 4}) {
    for (auto rule : {runtime::PairAssignment::kHomeOfFirst,
                      runtime::PairAssignment::kMidpoint}) {
      auto im = measure(spec, model, edge, rule);
      table.add_row(
          {std::to_string(edge * edge * edge),
           rule == runtime::PairAssignment::kHomeOfFirst ? "half-shell"
                                                         : "midpoint",
           Table::num(im.max_pairs, 0),
           Table::num(im.max_pairs / im.mean_pairs, 2),
           Table::num(im.max_import_kb, 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: midpoint assignment should show equal-or-better load "
      "balance (imbalance closer to 1) at every node count; both rules "
      "produce bit-identical forces (runtime_test pins that).\n");
  return 0;
}
