// Experiment T5 — decomposition-independent determinism (reconstructed;
// see DESIGN.md): trajectories must be bit-identical for every machine
// size, thanks to fixed-point positions and integer force accumulation.
//
// Also demonstrates WHY bitwise matters: a single position quantum
// (2^-21 Å) of perturbation grows to macroscopic divergence within a few
// hundred steps (Lyapunov growth), so "almost equal" arithmetic would make
// runs irreproducible across machine sizes.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

std::vector<Vec3> run_machine(const SystemSpec& spec,
                              const ff::NonbondedModel& model, int n,
                              size_t steps, double perturb = 0.0,
                              size_t threads = 1) {
  ForceField field(spec.topology, model);
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.kspace_interval = 2;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 250.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 250.0;
  cfg.engine.execution.threads = threads;
  auto positions = spec.positions;
  if (perturb != 0.0) positions[0].x += perturb;
  runtime::MachineSimulation sim(field, machine::anton_with_torus(n, n, n),
                                 positions, spec.box, cfg);
  sim.run(steps);
  return sim.state().positions;
}

bool identical(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

double max_deviation(const std::vector<Vec3>& a, const std::vector<Vec3>& b,
                     const Box& box) {
  double worst = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, norm(box.min_image(a[i], b[i])));
  }
  return worst;
}

}  // namespace

int main() {
  bench::print_header(
      "T5: bitwise determinism across machine sizes",
      "64-water box, Langevin NVT, GSE electrostatics, 40 steps; reference "
      "is the 1-node machine");

  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 5.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;

  const size_t steps = 40;
  auto reference = run_machine(spec, model, 1, steps);

  std::vector<std::pair<std::string, double>> metrics;
  Table table({"machine", "nodes", "trajectory vs 1-node", "max |dr| (A)"});
  for (int n : {2, 4, 8}) {
    auto traj = run_machine(spec, model, n, steps);
    bool same = identical(reference, traj);
    table.add_row({"anton-" + std::to_string(n * n * n),
                   std::to_string(n * n * n),
                   same ? "BIT-IDENTICAL" : "DIVERGED",
                   Table::sci(max_deviation(reference, traj, spec.box), 2)});
    metrics.emplace_back("identical_nodes_" + std::to_string(n * n * n),
                         same ? 1.0 : 0.0);
  }
  std::fputs(table.render().c_str(), stdout);

  // Thread-count invariance: the deterministic reduction must make worker
  // threads invisible, exactly like node count.
  std::printf("\nHost worker threads (64-node modeled machine):\n\n");
  auto thread_ref = run_machine(spec, model, 4, steps);
  Table tthreads({"threads", "trajectory vs 1-thread"});
  for (size_t threads : {2u, 4u, 8u}) {
    auto traj = run_machine(spec, model, 4, steps, 0.0, threads);
    bool same = identical(thread_ref, traj);
    tthreads.add_row({std::to_string(threads),
                      same ? "BIT-IDENTICAL" : "DIVERGED"});
    metrics.emplace_back("identical_threads_" + std::to_string(threads),
                         same ? 1.0 : 0.0);
  }
  std::fputs(tthreads.render().c_str(), stdout);

  std::printf(
      "\nWhy it matters — chaos amplifies any arithmetic difference.\n"
      "Perturbing ONE coordinate by one position quantum (2^-21 A):\n\n");
  Table chaos({"steps", "max |dr| vs unperturbed (A)"});
  for (size_t s : {10u, 50u, 150u, 400u}) {
    auto base = run_machine(spec, model, 1, s);
    auto pert = run_machine(spec, model, 1, s, 1.0 / 2097152.0);
    chaos.add_row({std::to_string(s),
                   Table::sci(max_deviation(base, pert, spec.box), 2)});
  }
  std::fputs(chaos.render().c_str(), stdout);
  std::printf(
      "\nShape check: all machine sizes and thread counts bit-identical; "
      "the 1-ulp perturbation grows by orders of magnitude — "
      "floating-point reductions would diverge exactly like that.\n");
  bench::write_json_report("t5_determinism", 8, metrics);
  return 0;
}
