// Experiment F3 — sampling speedup from tempering methods (reconstructed;
// see DESIGN.md): barrier-crossing counts for plain MD vs simulated
// tempering vs T-REMD on a double-well dimer in solvent.
//
// The dimer pair interacts through a *custom tabulated* double-well
// potential (the generality mechanism) with a 2 kcal/mol barrier —
// ~8.4 kT at the 120 K target but only ~3 kT at the top of the ladder.
// Ladder spacing follows the small-system rule ΔT/T ≈ sqrt(2/(3N)), which
// is what keeps neighbour acceptance healthy.  Expected shape: plain cold
// MD stays in its well; the tempering methods cross repeatedly.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "sampling/replica_exchange.hpp"
#include "sampling/tempering.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

constexpr double kWellCenter = 5.0;   // barrier location (Å)
constexpr double kWellHalf = 1.0;     // minima at 4 and 6 Å
constexpr double kBarrier = 2.0;      // kcal/mol (~8.4 kT at 120 K)
constexpr size_t kSolvent = 64;
constexpr double kCold = 120.0;

RadialTable double_well_table(double cutoff) {
  auto energy = [](double r) {
    double d = r - kWellCenter;
    double q = d * d - kWellHalf * kWellHalf;
    return kBarrier * q * q / (kWellHalf * kWellHalf * kWellHalf *
                               kWellHalf);
  };
  auto denergy = [](double r) {
    double d = r - kWellCenter;
    double q = d * d - kWellHalf * kWellHalf;
    return kBarrier * 4.0 * d * q /
           (kWellHalf * kWellHalf * kWellHalf * kWellHalf);
  };
  return RadialTable::from_potential(energy, denergy, 1.5, cutoff, 2048,
                                     true);
}

/// Hysteresis counter: a crossing is only scored when the CV commits to
/// the opposite well (below 4.5 / above 5.5), not on jitter at the top.
struct CrossingCounter {
  int side = 0;
  size_t crossings = 0;
  void update(double cv) {
    int s = side;
    if (cv < kWellCenter - 0.5) s = -1;
    if (cv > kWellCenter + 0.5) s = +1;
    if (side != 0 && s != side) ++crossings;
    side = s;
  }
};

md::SimulationConfig langevin(double t) {
  md::SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = t;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = t;
  cfg.thermostat.gamma_per_ps = 5.0;
  return cfg;
}

double dimer_cv(const md::Simulation& sim, const SystemSpec& spec) {
  const State& s = sim.state();
  return norm(s.box.min_image(s.positions[spec.tagged[0]],
                              s.positions[spec.tagged[1]]));
}

/// Geometric ladder from `lo` with `rungs` levels at the given ratio.
std::vector<double> geometric_ladder(double lo, double ratio, size_t rungs) {
  std::vector<double> out;
  double t = lo;
  for (size_t k = 0; k < rungs; ++k) {
    out.push_back(t);
    t *= ratio;
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "F3: barrier crossing with tempering methods",
      "Double-well dimer (custom tabulated potential, 2 kcal/mol barrier = "
      "8.4 kT at 120 K) in a 64-atom LJ bath; crossings over equal step "
      "budgets");

  ff::NonbondedModel model;
  model.cutoff = 6.5;
  model.electrostatics = ff::Electrostatics::kNone;
  const size_t kSteps = 24000;
  // ~66 atoms: healthy neighbour acceptance needs ΔT/T ≈ sqrt(2/(3N)) ≈ 0.10.
  auto ladder = geometric_ladder(kCold, 1.105, 12);  // 120 → ~360 K

  // Worker threads for the concurrent-replica section (each replica owns
  // its ForceField, so chunks are thread-safe and thread-count invariant).
  const size_t kRemdThreads = 2;
  std::vector<std::pair<std::string, double>> metrics;

  Table table({"method", "steps (cold ensemble)", "well-to-well crossings",
               "notes"});

  // --- plain MD at the cold temperature ------------------------------------
  {
    auto spec = build_dimer_in_solvent(kSolvent, 4.0, 41);
    ForceField field(spec.topology, model);
    field.set_custom_pair_table(0, 0, double_well_table(model.cutoff));
    md::Simulation sim(field, spec.positions, spec.box, langevin(kCold));
    CrossingCounter cc;
    sim.add_observer(
        [&](const md::StepInfo&) { cc.update(dimer_cv(sim, spec)); });
    sim.run(kSteps);
    table.add_row({"plain MD @120K", std::to_string(kSteps),
                   std::to_string(cc.crossings), "kinetically trapped"});
    metrics.emplace_back("crossings_plain_md",
                         static_cast<double>(cc.crossings));
  }

  // --- simulated tempering ---------------------------------------------------
  {
    auto spec = build_dimer_in_solvent(kSolvent, 4.0, 41);
    ForceField field(spec.topology, model);
    field.set_custom_pair_table(0, 0, double_well_table(model.cutoff));
    md::Simulation sim(field, spec.positions, spec.box, langevin(kCold));
    sampling::TemperingConfig tc;
    tc.ladder = ladder;
    tc.attempt_interval = 10;
    tc.wl_increment = 2.0;
    sampling::SimulatedTempering st(sim, tc);
    CrossingCounter cc;
    size_t cold_steps = 0;
    sim.add_observer([&](const md::StepInfo&) {
      cc.update(dimer_cv(sim, spec));
      if (st.current_level() == 0) ++cold_steps;
    });
    st.run(kSteps);
    table.add_row(
        {"simulated tempering 120-360K", std::to_string(cold_steps),
         std::to_string(cc.crossings),
         "acc " +
             Table::num(100.0 * st.accepts() /
                            std::max<uint64_t>(st.attempts(), 1),
                        0) +
             "% of " + std::to_string(st.attempts()) + " attempts"});
    metrics.emplace_back("crossings_tempering",
                         static_cast<double>(cc.crossings));
  }

  // --- temperature replica exchange -----------------------------------------
  {
    auto spec = build_dimer_in_solvent(kSolvent, 4.0, 41);
    std::vector<double> temps(ladder.begin(), ladder.begin() + 8);
    std::vector<std::unique_ptr<ForceField>> fields;
    std::vector<std::unique_ptr<md::Simulation>> sims;
    std::vector<md::Simulation*> ptrs;
    for (double t : temps) {
      fields.push_back(std::make_unique<ForceField>(spec.topology, model));
      fields.back()->set_custom_pair_table(0, 0,
                                           double_well_table(model.cutoff));
      sims.push_back(std::make_unique<md::Simulation>(
          *fields.back(), spec.positions, spec.box, langevin(t)));
      ptrs.push_back(sims.back().get());
    }
    sampling::TemperatureReplicaExchange remd(
        ptrs, temps, 20, 7, ExecutionConfig{kRemdThreads, true});
    CrossingCounter cc;
    size_t done = 0;
    // Replicas run concurrently on partitioned sub-tori (ablation A1), so
    // each gets the same wall-clock budget as the single-trajectory runs.
    const size_t budget = kSteps;
    while (done < budget) {
      remd.run(20);
      done += 20;
      cc.update(dimer_cv(*ptrs[0], spec));  // watch the cold slot
    }
    double acc = 0;
    for (size_t k = 0; k + 1 < temps.size(); ++k) {
      acc += remd.stats().acceptance(k);
    }
    acc /= static_cast<double>(temps.size() - 1);
    table.add_row({"T-REMD x8 (" + std::to_string(kRemdThreads) +
                       " host threads)",
                   std::to_string(budget),
                   std::to_string(cc.crossings) + " (cold slot)",
                   "mean exch acc " + Table::num(100 * acc, 0) + "%"});
    metrics.emplace_back("crossings_remd_cold_slot",
                         static_cast<double>(cc.crossings));
    metrics.emplace_back("remd_mean_acceptance", acc);
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: tempering methods cross the 8 kT barrier while cold "
      "MD stays trapped — the sampling win the generality extensions "
      "bought.\n");
  bench::write_json_report("f3_tempering", kRemdThreads, metrics);
  return 0;
}
