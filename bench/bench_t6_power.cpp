// Experiment T6 — performance per watt (reconstructed; see DESIGN.md):
// the abstract's first sentence claims special-purpose hardware buys both
// performance AND power efficiency; this bench quantifies simulated
// ns/day per kW for both machines on the same workloads.
//
// Expected shape: at equal node/rank counts the machine delivers several
// times more simulated time per kW; at iso-PERFORMANCE the gap is the raw
// speedup times the per-unit power ratio, i.e. the cluster would need
// 35-50x the ranks and proportionally more power to keep up.
#include <cstdio>

#include "bench_common.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "T6: performance per watt",
      "512-node machine vs 512-rank cluster; modeled ns/day per kW of wall "
      "power, dt 2.5 fs");

  machine::MachineConfig anton_cfg = machine::anton_full();
  machine::TimingModel anton(anton_cfg);
  baseline::ClusterConfig cluster_cfg = baseline::commodity_cluster(512);
  baseline::ClusterModel cluster(cluster_cfg);

  machine::WorkloadParams params;
  params.cutoff = 10.0;

  Table table({"system", "anton ns/day/kW", "cluster ns/day/kW",
               "efficiency gap"});
  for (size_t waters : {3840u, 7849u, 30720u}) {
    auto stats = machine::SystemStats::water(waters);
    auto work = machine::estimate_step_work(stats, 512, params);
    double t_a = bench::amortized_step_s(anton, work, 2);
    double t_c = bench::amortized_step_s(cluster, work, 2);
    double a_eff = machine::ns_per_day(2.5, t_a) / anton_cfg.machine_power_kw();
    double c_eff =
        machine::ns_per_day(2.5, t_c) / cluster_cfg.cluster_power_kw();
    table.add_row({"water-" + std::to_string(waters), Table::num(a_eff, 1),
                   Table::num(c_eff, 2),
                   Table::num(a_eff / c_eff, 1) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: at equal unit counts the machine wins ~5-7x per kW "
      "(modeled Anton: %.0f kW vs cluster: %.0f kW); matching Anton's "
      "absolute ns/day would take ~35-50x more cluster ranks and power — "
      "the iso-performance power gap the abstract's first sentence is "
      "about.\n",
      anton_cfg.machine_power_kw(), cluster_cfg.cluster_power_kw());
  return 0;
}
