// Ablation A1 — how should a replica ensemble use the machine?
// (design-choice ablation from DESIGN.md): partitioned sub-tori vs
// time-multiplexing the full machine, for T-REMD-style ensembles.
//
// Expected shape: small systems stop strong-scaling, so partitioning wins
// broadly; time-multiplexing only competes when a single replica still
// scales on the full machine and the ensemble is small.
#include <cstdio>

#include "bench_common.hpp"
#include "runtime/scheduler.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "A1: replica placement ablation",
      "512-node machine; ensemble throughput (replica MD steps per wall "
      "second) for partitioned vs time-multiplexed placement");

  machine::WorkloadParams params;
  params.cutoff = 10.0;

  Table table({"system", "replicas", "partitioned (steps/s)",
               "nodes/replica", "time-mux (steps/s)", "winner"});
  for (size_t waters : {3840u, 30720u}) {
    auto stats = machine::SystemStats::water(waters);
    runtime::ReplicaScheduler sched(machine::anton_full(), stats, params);
    for (size_t replicas : {4u, 16u, 64u}) {
      auto part = sched.evaluate(runtime::ReplicaPlacement::kPartitioned,
                                 replicas);
      auto mux = sched.evaluate(runtime::ReplicaPlacement::kTimeMultiplexed,
                                replicas);
      table.add_row(
          {"water-" + std::to_string(waters), std::to_string(replicas),
           Table::num(part.replica_steps_per_s, 0),
           std::to_string(part.nodes_per_replica),
           Table::num(mux.replica_steps_per_s, 0),
           part.replica_steps_per_s >= mux.replica_steps_per_s
               ? "partitioned"
               : "time-multiplexed"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: ensembles of small replicas should overwhelmingly "
      "prefer partitioned sub-tori — the strong-scaling knee makes whole-"
      "machine steps on small systems wasteful.\n");
  return 0;
}
