// Experiment T2 — cost of each generality extension (reconstructed; see
// DESIGN.md): % step-time increase over plain MD when a method is enabled.
//
// Run functionally on a solvated-polymer system with the machine model
// attached; modeled per-step times come from real workload counts.
// Expected shape: extensions that ride the hardwired pair pipelines
// (custom tabulated potentials, soft-core) cost ~nothing; geometry-core
// methods (restraints, steered springs, biases, tempering bookkeeping)
// cost low single-digit percents.
#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

struct MethodCase {
  std::string name;
  std::function<void(ForceField&, const SystemSpec&)> setup;
  /// Steps between tempering decisions (0 = none); the decision cost is
  /// paid only on attempt steps, as on the real machine.
  int tempering_attempt_interval = 0;
};

double mean_step_time(const SystemSpec& spec,
                      const ff::NonbondedModel& model, const MethodCase& mc,
                      int steps) {
  ForceField field(spec.topology, model);
  if (mc.setup) mc.setup(field, spec);
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.5;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 150.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 150.0;
  runtime::MachineSimulation sim(field, machine::anton_with_torus(4, 4, 4),
                                 spec.positions, spec.box, cfg);
  for (int s = 0; s < steps; ++s) {
    if (mc.tempering_attempt_interval > 0 &&
        s % mc.tempering_attempt_interval == 0) {
      sim.note_tempering_decision();
    }
    sim.step();
  }
  return sim.mean_step_time_s();
}

}  // namespace

int main() {
  bench::print_header(
      "T2: per-method overhead",
      "Solvated 24-bead polymer (~1.8k atoms), 64-node machine model; % "
      "modeled step-time increase vs plain MD");

  auto spec = build_polymer_in_solvent(24, 1728);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;

  std::vector<MethodCase> cases;
  cases.push_back({"plain MD (reference)", nullptr, 0});
  cases.push_back(
      {"custom tabulated pair potential",
       [](ForceField& f, const SystemSpec&) {
         auto table = RadialTable::from_potential(
             [](double r) { return 0.5 * std::cos(r) / (r * r); },
             [](double r) {
               return -0.5 * (std::sin(r) / (r * r) +
                              2.0 * std::cos(r) / (r * r * r));
             },
             0.8, 8.0, 2048, true);
         f.set_custom_pair_table(0, 0, std::move(table));
       },
       0});
  cases.push_back({"soft-core (FEP window)",
                   [&model](ForceField& f, const SystemSpec&) {
                     f.set_custom_pair_table(
                         0, 1,
                         ff::make_softcore_lj_table(3.9, 0.27, 0.5, 0.5,
                                                    model));
                   },
                   0});
  cases.push_back({"position restraints (chain)",
                   [](ForceField& f, const SystemSpec& s) {
                     for (uint32_t a = 0; a < 24; ++a) {
                       f.add_position_restraint(
                           {a, s.positions[a], 5.0, 0.5});
                     }
                   },
                   0});
  cases.push_back({"steered spring (SMD)",
                   [](ForceField& f, const SystemSpec& s) {
                     f.add_steered_spring(
                         {s.tagged[0], s.tagged[1], 10.0, 8.0, 0.02});
                   },
                   0});
  cases.push_back({"pair bias (metadynamics/TAMD)",
                   [](ForceField& f, const SystemSpec& s) {
                     ff::PairBias bias;
                     bias.i = s.tagged[0];
                     bias.j = s.tagged[1];
                     bias.potential =
                         [](double r) -> std::pair<double, double> {
                       double d = r - 6.0;
                       return {0.4 * d * d, 0.8 * d};
                     };
                     f.add_pair_bias(std::move(bias));
                   },
                   0});
  cases.push_back({"external electric field",
                   [](ForceField& f, const SystemSpec&) {
                     f.set_external_field(Vec3{0.0, 0.0, 0.05});
                   },
                   0});
  cases.push_back({"H-REMD scaling (vdw x0.9)",
                   [](ForceField& f, const SystemSpec&) {
                     f.set_vdw_scale(0.9);
                   },
                   0});
  MethodCase tempering{"simulated tempering (attempt every 25)",
                       nullptr, 25};
  cases.push_back(tempering);

  const int steps = 25;
  double reference = 0.0;
  Table table({"method", "step (us)", "overhead"});
  for (const auto& mc : cases) {
    double t = mean_step_time(spec, model, mc, steps);
    if (reference == 0.0) reference = t;
    double overhead = (t / reference - 1.0) * 100.0;
    table.add_row({mc.name, Table::num(t * 1e6, 3),
                   (overhead < 0.005 && overhead > -0.005)
                       ? "—"
                       : Table::num(overhead, 2) + "%"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: table-path methods cost ~0%%; geometry-core methods "
      "cost low single digits on this small system (smaller still at "
      "production scale).\n");
  return 0;
}
