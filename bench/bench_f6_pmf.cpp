// Experiment F6 — two routes to the same PMF (reconstructed; see
// DESIGN.md): umbrella sampling + WHAM vs well-tempered metadynamics on
// the custom double-well dimer.
//
// Expected shape: both methods recover two minima near 4 and 6 Å separated
// by a barrier near 5 Å whose height is within ~1 kcal/mol of the imposed
// 1.5 kcal/mol (solvent dressing shifts it somewhat).
#include <algorithm>
#include <cstdio>

#include "analysis/free_energy.hpp"
#include "bench_common.hpp"
#include "md/simulation.hpp"
#include "sampling/metadynamics.hpp"
#include "sampling/umbrella.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

constexpr double kCenter = 5.0, kHalf = 1.0, kBarrier = 1.5;

RadialTable double_well_table(double cutoff) {
  auto energy = [](double r) {
    double d = r - kCenter;
    double q = d * d - kHalf * kHalf;
    return kBarrier * q * q / (kHalf * kHalf * kHalf * kHalf);
  };
  auto denergy = [](double r) {
    double d = r - kCenter;
    double q = d * d - kHalf * kHalf;
    return kBarrier * 4.0 * d * q / (kHalf * kHalf * kHalf * kHalf);
  };
  return RadialTable::from_potential(energy, denergy, 1.5, cutoff, 2048,
                                     true);
}

struct Extrema {
  double min_left = 0, min_right = 0, barrier = 0;
};

Extrema extrema_of(const std::vector<std::pair<double, double>>& pmf) {
  Extrema e;
  double best_l = 1e300, best_r = 1e300, best_b = -1e300;
  for (const auto& [xi, f] : pmf) {
    if (xi > 3.4 && xi < 4.6 && f < best_l) {
      best_l = f;
      e.min_left = xi;
    }
    if (xi > 5.4 && xi < 6.6 && f < best_r) {
      best_r = f;
      e.min_right = xi;
    }
    if (xi > 4.6 && xi < 5.4 && f > best_b) {
      best_b = f;
      e.barrier = xi;
    }
  }
  return e;
}

double value_at(const std::vector<std::pair<double, double>>& pmf,
                double xi) {
  double best = 1e300, val = 0;
  for (const auto& [x, f] : pmf) {
    if (std::abs(x - xi) < best) {
      best = std::abs(x - xi);
      val = f;
    }
  }
  return val;
}

}  // namespace

int main() {
  bench::print_header(
      "F6: PMF by umbrella+WHAM vs metadynamics",
      "Double-well dimer (minima 4 & 6 A, imposed barrier 1.5 kcal/mol) in "
      "a LJ bath at 140 K");

  auto spec = build_dimer_in_solvent(125, 4.0, 61);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  auto customize = [&model](ForceField& f) {
    f.set_custom_pair_table(0, 0, double_well_table(model.cutoff));
  };

  md::SimulationConfig mdcfg;
  mdcfg.dt_fs = 4.0;
  mdcfg.neighbor_skin = 1.0;
  mdcfg.init_temperature_k = 140.0;
  mdcfg.thermostat.kind = md::ThermostatKind::kLangevin;
  mdcfg.thermostat.temperature_k = 140.0;
  mdcfg.thermostat.gamma_per_ps = 5.0;

  // --- umbrella sampling + WHAM ---------------------------------------------
  sampling::UmbrellaConfig ucfg;
  for (double c = 3.2; c <= 6.81; c += 0.4) ucfg.centers.push_back(c);
  ucfg.k = 12.0;
  ucfg.equil_steps = 150;
  ucfg.prod_steps = 700;
  ucfg.sample_interval = 4;
  ucfg.md = mdcfg;
  auto windows = sampling::run_umbrella(spec, model, spec.tagged[0],
                                        spec.tagged[1], ucfg, customize);
  auto wham = analysis::wham(windows, 140.0, 3.2, 6.8, 36);
  std::vector<std::pair<double, double>> pmf_umbrella;
  for (size_t b = 0; b < wham.xi.size(); ++b) {
    if (wham.free_energy[b] < 1e5) {
      pmf_umbrella.emplace_back(wham.xi[b], wham.free_energy[b]);
    }
  }

  // --- well-tempered metadynamics --------------------------------------------
  ForceField meta_field(spec.topology, model);
  customize(meta_field);
  md::Simulation meta_sim(meta_field, spec.positions, spec.box, mdcfg);
  sampling::MetadynamicsConfig mcfg;
  mcfg.initial_height = 0.25;
  mcfg.sigma = 0.25;
  mcfg.bias_factor = 8.0;
  mcfg.deposit_interval = 25;
  mcfg.cv_min = 3.0;
  mcfg.cv_max = 7.0;
  sampling::Metadynamics meta(meta_sim, spec.tagged[0], spec.tagged[1],
                              mcfg);
  meta.run(8000);
  auto pmf_meta_raw = meta.free_energy(36);
  std::vector<std::pair<double, double>> pmf_meta(pmf_meta_raw.begin(),
                                                  pmf_meta_raw.end());

  // --- report ------------------------------------------------------------------
  Table curve({"xi (A)", "F umbrella (kcal/mol)", "F metadynamics"});
  for (const auto& [xi, f] : pmf_umbrella) {
    curve.add_row({Table::num(xi, 2), Table::num(f, 3),
                   Table::num(value_at(pmf_meta, xi), 3)});
  }
  std::fputs(curve.render().c_str(), stdout);

  auto eu = extrema_of(pmf_umbrella);
  auto em = extrema_of(pmf_meta);
  Table summary({"method", "left min (A)", "right min (A)", "barrier pos",
                 "barrier height (kcal/mol)"});
  double hu = value_at(pmf_umbrella, eu.barrier) -
              std::min(value_at(pmf_umbrella, eu.min_left),
                       value_at(pmf_umbrella, eu.min_right));
  double hm = value_at(pmf_meta, em.barrier) -
              std::min(value_at(pmf_meta, em.min_left),
                       value_at(pmf_meta, em.min_right));
  summary.add_row({"umbrella + WHAM", Table::num(eu.min_left, 2),
                   Table::num(eu.min_right, 2), Table::num(eu.barrier, 2),
                   Table::num(hu, 2)});
  summary.add_row({"metadynamics", Table::num(em.min_left, 2),
                   Table::num(em.min_right, 2), Table::num(em.barrier, 2),
                   Table::num(hm, 2)});
  std::fputs(summary.render().c_str(), stdout);
  std::printf(
      "\nShape check: both methods find minima near 4 and 6 A and a "
      "barrier near 5 A of roughly the imposed 1.5 kcal/mol (solvent "
      "shifts it).\n");
  return 0;
}
