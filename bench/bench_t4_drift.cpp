// Experiment T4 — energy conservation with extensions active
// (reconstructed; see DESIGN.md): NVE drift for plain MD and for each
// extension that is supposed to be conservative.
//
// Expected shape: all conservative configurations drift at comparable,
// small rates; RESPA k-space reuse adds a controlled amount.
#include <cmath>
#include <cstdio>

#include "analysis/stats.hpp"
#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "math/units.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

struct DriftCase {
  std::string name;
  WaterModel water = WaterModel::kRigid3Site;
  int kspace_interval = 1;
  bool custom_table = false;
  bool restraints = false;
};

double drift_per_ns_per_atom(const DriftCase& c, size_t steps) {
  auto spec = build_water_box(125, c.water);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;
  ForceField field(spec.topology, model);
  if (c.custom_table) {
    // Re-express O-O dispersion through a user table (same physics).
    auto t = RadialTable::from_potential(
        [](double r) {
          double s6 = std::pow(3.166 / r, 6);
          return 4.0 * 0.1553 * (s6 * s6 - s6);
        },
        [](double r) {
          double s6 = std::pow(3.166 / r, 6);
          return 4.0 * 0.1553 * (-12 * s6 * s6 + 6 * s6) / r;
        },
        0.9, 6.0, 4096, true);
    field.set_custom_pair_table(0, 0, std::move(t));
  }
  if (c.restraints) {
    for (uint32_t m = 0; m < 8; ++m) {
      field.add_position_restraint({m * 3, spec.positions[m * 3], 2.0, 1.0});
    }
  }
  md::SimulationConfig cfg;
  cfg.dt_fs = c.water == WaterModel::kFlexible3Site ? 0.5 : 1.0;
  cfg.neighbor_skin = 1.0;
  cfg.kspace_interval = c.kspace_interval;
  cfg.init_temperature_k = 250.0;
  cfg.thermostat.kind = md::ThermostatKind::kNone;
  cfg.com_removal_interval = 0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(100);  // settle

  std::vector<double> t_ns, e;
  for (size_t s = 0; s < steps; ++s) {
    sim.step();
    if (s % 5 == 0) {
      t_ns.push_back(units::internal_to_ns(sim.state().time));
      e.push_back(sim.potential_energy() + sim.kinetic_energy());
    }
  }
  auto fit = analysis::linear_fit(t_ns, e);
  double kt = units::kBoltzmann * 250.0;
  return fit.slope / kt / static_cast<double>(spec.topology.atom_count());
}

}  // namespace

int main() {
  bench::print_header(
      "T4: NVE energy drift with extensions",
      "125-water box, GSE electrostatics; drift in kT/atom/ns (small = "
      "good, sign is incidental)");

  std::vector<DriftCase> cases = {
      {"rigid water, k-space every step", WaterModel::kRigid3Site, 1, false,
       false},
      {"rigid water, k-space every 2 (RESPA)", WaterModel::kRigid3Site, 2,
       false, false},
      {"rigid water, k-space every 4 (RESPA)", WaterModel::kRigid3Site, 4,
       false, false},
      {"custom tabulated O-O dispersion", WaterModel::kRigid3Site, 1, true,
       false},
      {"flat-bottom position restraints", WaterModel::kRigid3Site, 1, false,
       true},
      {"4-site water (virtual sites)", WaterModel::kRigid4Site, 1, false,
       false},
      {"flexible water (no constraints)", WaterModel::kFlexible3Site, 1,
       false, false},
  };

  Table table({"configuration", "drift (kT/atom/ns)"});
  for (const auto& c : cases) {
    double d = drift_per_ns_per_atom(c, 600);
    table.add_row({c.name, Table::num(d, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: fully conservative configurations land at small, "
      "comparable drift (|drift| ~ 1 kT/atom/ns at this run length); "
      "reusing reciprocal forces across steps raises |drift| by an order "
      "of magnitude or more — the conservation cost RESPA trades for "
      "speed. (The 2- vs 4-step ordering is below this short run's "
      "resolution.)\n");
  return 0;
}
