// Experiment F7 — where special-purpose wins: performance vs atoms/node
// (reconstructed; see DESIGN.md).
//
// A fixed ~23k-atom system is spread over more and more nodes/ranks of
// both machines.  Expected shape: the cluster's latency floor caps its
// useful parallelism far earlier, so the Anton advantage *grows* as the
// machine scales — the core argument for special-purpose networks.
#include <cstdio>

#include "bench_common.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "F7: scaling crossover vs commodity cluster",
      "Fixed 23.5k-atom water system; node/rank count sweep; dt 2.5 fs");

  auto stats = machine::SystemStats::water(7849);
  machine::WorkloadParams params;
  params.cutoff = 10.0;

  Table table({"nodes/ranks", "atoms/node", "anton ns/day",
               "cluster ns/day", "advantage"});
  const std::vector<std::array<int, 3>> layouts = {
      {1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {6, 6, 6}, {8, 8, 8}};
  for (const auto& l : layouts) {
    machine::MachineConfig cfg = machine::anton_with_torus(l[0], l[1], l[2]);
    size_t n = cfg.node_count();
    machine::TimingModel anton(cfg);
    baseline::ClusterModel cluster(baseline::commodity_cluster(n));
    auto work = machine::estimate_step_work(stats, n, params);
    double t_a = bench::amortized_step_s(anton, work, 2);
    double t_c = bench::amortized_step_s(cluster, work, 2);
    table.add_row({std::to_string(n),
                   Table::num(static_cast<double>(stats.atoms) /
                                  static_cast<double>(n),
                              0),
                   Table::num(machine::ns_per_day(2.5, t_a), 0),
                   Table::num(machine::ns_per_day(2.5, t_c), 1),
                   Table::num(t_c / t_a, 1) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: at 1 node the gap reflects raw pipeline throughput; "
      "it widens with node count because the commodity network saturates "
      "(latency floor) while the torus keeps scaling.\n");
  return 0;
}
