// Ablation A3 — hardware design space (the abstract's closing claim: the
// approach "is applicable to the hardware and software design of various
// other specialized or heterogeneous parallel computing platforms").
//
// Sweeps the machine description — pipeline count, programmable-core
// count, link bandwidth — on a fixed DHFR-class workload to show which
// resource is the binding constraint for standard MD vs extension-heavy
// runs.
#include <cstdio>

#include "bench_common.hpp"

using namespace antmd;

namespace {

double step_us(machine::MachineConfig cfg, bool extension_heavy) {
  machine::TimingModel model(cfg);
  auto stats = machine::SystemStats::water(7849);
  if (extension_heavy) {
    // A restraint/bias on every tenth atom plus tempering bookkeeping.
    stats.restraints = stats.atoms / 10;
  }
  machine::WorkloadParams params;
  params.cutoff = 10.0;
  params.tempering_decisions = extension_heavy ? 1 : 0;
  auto work = machine::estimate_step_work(stats, cfg.node_count(), params);
  return bench::amortized_step_s(model, work, 2) * 1e6;
}

}  // namespace

int main() {
  bench::print_header(
      "A3: hardware design-space sweep",
      "23.5k-atom workload on 512 nodes; modeled step time (us) as "
      "individual hardware resources are halved/doubled");

  Table table({"variant", "plain MD step (us)", "extension-heavy step (us)"});
  struct Variant {
    const char* name;
    void (*mutate)(machine::MachineConfig&);
  };
  const std::vector<Variant> variants = {
      {"baseline (anton-512)", [](machine::MachineConfig&) {}},
      {"1/2 pair pipelines",
       [](machine::MachineConfig& c) { c.ppims /= 2; }},
      {"2x pair pipelines", [](machine::MachineConfig& c) { c.ppims *= 2; }},
      {"1/2 geometry cores",
       [](machine::MachineConfig& c) { c.geometry_cores = 2; }},
      {"2x geometry cores",
       [](machine::MachineConfig& c) { c.geometry_cores = 8; }},
      {"1/2 link bandwidth",
       [](machine::MachineConfig& c) { c.link_bandwidth_Bps /= 2; }},
      {"2x link bandwidth",
       [](machine::MachineConfig& c) { c.link_bandwidth_Bps *= 2; }},
      {"10x barrier latency",
       [](machine::MachineConfig& c) { c.barrier_latency_s *= 10; }},
  };

  for (const auto& v : variants) {
    machine::MachineConfig cfg = machine::anton_full();
    v.mutate(cfg);
    table.add_row({v.name, Table::num(step_us(cfg, false), 2),
                   Table::num(step_us(cfg, true), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: at this scale the step is communication/GC-bound, so "
      "doubling pair pipelines buys little, while geometry cores and links "
      "matter — exactly the balance argument the paper makes for pairing "
      "hardwired pipelines WITH capable programmable cores.\n");
  return 0;
}
