// Experiment F1 — strong scaling on the torus: modeled step time vs node
// count for three system sizes (reconstructed; see DESIGN.md).
//
// Expected shape: near-linear scaling while each node holds thousands of
// atoms, flattening into a latency/communication floor as atoms/node drops
// into the tens (Anton's published strong-scaling behaviour).
#include <cstdio>

#include "bench_common.hpp"

using namespace antmd;

int main() {
  bench::print_header(
      "F1: strong scaling",
      "Modeled step time (us) vs torus size; water systems; dt 2.5 fs, "
      "k-space every 2 steps");

  machine::WorkloadParams params;
  params.cutoff = 10.0;

  const std::vector<size_t> waters_list = {3840, 7849, 30720};
  const std::vector<std::array<int, 3>> layouts = {
      {2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {6, 6, 6}, {8, 8, 8}};

  Table table({"nodes", "system", "atoms/node", "step (us)", "ns/day",
               "parallel eff"});
  for (size_t waters : waters_list) {
    auto stats = machine::SystemStats::water(waters);
    double t_ref = 0.0;
    size_t nodes_ref = 0;
    for (const auto& l : layouts) {
      machine::MachineConfig cfg =
          machine::anton_with_torus(l[0], l[1], l[2]);
      machine::TimingModel model(cfg);
      auto work = machine::estimate_step_work(stats, cfg.node_count(),
                                              params);
      double t = bench::amortized_step_s(model, work, 2);
      if (nodes_ref == 0) {
        t_ref = t;
        nodes_ref = cfg.node_count();
      }
      double eff = (t_ref * static_cast<double>(nodes_ref)) /
                   (t * static_cast<double>(cfg.node_count()));
      table.add_row(
          {std::to_string(cfg.node_count()),
           "water-" + std::to_string(waters),
           Table::num(static_cast<double>(stats.atoms) /
                          static_cast<double>(cfg.node_count()),
                      0),
           Table::num(t * 1e6, 2),
           Table::num(machine::ns_per_day(2.5, t), 0),
           Table::num(eff, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: efficiency stays high while atoms/node >~ 1000 and "
      "degrades as the per-node work shrinks toward the network floor.\n");
  return 0;
}
