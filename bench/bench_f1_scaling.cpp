// Experiment F1 — strong scaling on the torus: modeled step time vs node
// count for three system sizes (reconstructed; see DESIGN.md).
//
// Expected shape: near-linear scaling while each node holds thousands of
// atoms, flattening into a latency/communication floor as atoms/node drops
// into the tens (Anton's published strong-scaling behaviour).
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "ff/forcefield.hpp"
#include "ff/nonbonded_simd.hpp"
#include "md/builder.hpp"
#include "obs/profile.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"

using namespace antmd;

namespace {

using MetricList = std::vector<std::pair<std::string, double>>;

/// Host-side wall-clock scaling of the parallel execution layer: the same
/// 64-node modeled machine evaluated with 1/2/4 worker threads.  Cutoff
/// electrostatics keep the serial k-space solve out of the measurement
/// (Amdahl), so the per-node partition fan-out dominates.
void wall_clock_scaling(MetricList& report) {
  bench::print_header(
      "F1b: host wall-clock scaling",
      "Wall time for 60 steps of water-360 on a 4x4x4 modeled torus vs "
      "worker threads and nonbonded kernel (deterministic reduction; "
      "identical trajectories)");

  auto spec = build_water_box(360, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kReactionCutoff;

  const size_t hw = std::thread::hardware_concurrency();
  const std::vector<size_t> thread_counts = {1, 2, 4};
  const size_t steps = 60;
  MetricList metrics;
  Table table({"kernel", "threads", "wall (s)", "speedup"});
  for (ff::NonbondedKernel kernel :
       {ff::NonbondedKernel::kPair, ff::NonbondedKernel::kCluster}) {
    // Default-kernel (cluster) metrics keep their historical names; the
    // pair baseline rides along under a "pair_" prefix.
    const std::string kp =
        kernel == ff::NonbondedKernel::kPair ? "pair_" : "";
    double t1 = 0.0;
    for (size_t threads : thread_counts) {
      ForceField field(spec.topology, model);
      runtime::MachineSimConfig mc;
      mc.dt_fs = 2.0;
      mc.neighbor_skin = 1.0;
      mc.thermostat.kind = md::ThermostatKind::kLangevin;
      mc.thermostat.temperature_k = 300.0;
      mc.engine.execution.threads = threads;
      mc.nonbonded_kernel = kernel;
      runtime::MachineSimulation sim(field,
                                     machine::anton_with_torus(4, 4, 4),
                                     spec.positions, spec.box, mc);
      auto t_start = std::chrono::steady_clock::now();
      sim.run(steps);
      double wall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t_start)
                        .count();
      if (threads == 1) t1 = wall;
      table.add_row({ff::to_string(kernel), std::to_string(threads),
                     Table::num(wall, 3),
                     Table::num(t1 > 0 ? t1 / wall : 1.0, 2)});
      metrics.emplace_back(kp + "wall_s_" + std::to_string(threads) + "t",
                           wall);
      metrics.emplace_back(kp + "speedup_" + std::to_string(threads) + "t",
                           t1 > 0 ? t1 / wall : 1.0);
      // Modeled phase accumulation from the last (max-thread) run;
      // identical across thread counts by the determinism guarantee.
      if (threads == thread_counts.back()) {
        bench::append_breakdown(metrics, sim.accumulated(), kp + "modeled_");
        metrics.emplace_back(kp + "modeled_ns_per_day", sim.ns_per_day());
      }
    }
  }
  std::fputs(table.render().c_str(), stdout);
  if (hw < thread_counts.back()) {
    std::printf(
        "\nnote: this host exposes %zu hardware thread(s); speedups above "
        "%zu threads cannot materialize here and the numbers measure "
        "oversubscription overhead instead.\n",
        hw, hw);
  }
  metrics.emplace_back("hardware_concurrency", static_cast<double>(hw));
  report.insert(report.end(), metrics.begin(), metrics.end());
}

/// F1c: the ISSUE target workload — 12k-atom water (4096 molecules) on the
/// single-host md::Simulation with the cluster kernel and GSE k-space,
/// stepping through the phase-overlapped task graph at 1/2/4/8 threads.
/// Deterministic reduction keeps every trajectory bit-identical, so the
/// speedup column is the only thing that may vary between runs.
void host_md_scaling(MetricList& report) {
  bench::print_header(
      "F1c: 12k-atom task-graph scaling",
      "Wall time for 40 steps of water-4096 (12288 atoms, cluster kernel, "
      "GSE) on md::Simulation vs worker threads; bonded/nonbonded/kspace "
      "phases overlap on the step graph");

  auto spec = build_water_box(4096, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 9.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;

  const size_t hw = std::thread::hardware_concurrency();
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const size_t steps = 40;
  Table table({"threads", "wall (s)", "steps/s", "speedup"});
  double t1 = 0.0;
  for (size_t threads : thread_counts) {
    ForceField field(spec.topology, model);
    md::Simulation sim = md::SimulationBuilder()
                             .dt_fs(2.0)
                             .neighbor_skin(1.5)
                             .langevin(300.0, 5.0)
                             .threads(threads)
                             .build(field, spec.positions, spec.box);
    auto t_start = std::chrono::steady_clock::now();
    sim.run(steps);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t_start)
                      .count();
    if (threads == 1) t1 = wall;
    table.add_row({std::to_string(threads), Table::num(wall, 3),
                   Table::num(static_cast<double>(steps) / wall, 2),
                   Table::num(t1 > 0 ? t1 / wall : 1.0, 2)});
    report.emplace_back("md12k_wall_s_" + std::to_string(threads) + "t",
                        wall);
    report.emplace_back("md12k_speedup_" + std::to_string(threads) + "t",
                        t1 > 0 ? t1 / wall : 1.0);
  }
  std::fputs(table.render().c_str(), stdout);
  if (hw < thread_counts.back()) {
    std::printf(
        "\nnote: this host exposes %zu hardware thread(s); speedups above "
        "%zu threads cannot materialize here and the numbers measure "
        "oversubscription overhead instead.\n",
        hw, hw);
  }
}

/// F1d: per-message-class network attribution at two torus sizes.  The
/// attribution profiler decomposes the modeled network time of a real
/// water-360 run into position multicast / force reduction / k-space FFT /
/// barrier / reliability, and the class totals must reproduce the engine's
/// accumulated network time bit for bit (the same sums in the same order).
void network_attribution(MetricList& report) {
  bench::print_header(
      "F1d: network attribution",
      "Modeled network seconds per message class for 40 steps of water-360 "
      "(cluster kernel, GSE) at two torus sizes; class sums are bit-exact "
      "against the aggregate StepBreakdown network time");

  auto spec = build_water_box(360, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;

  Table table({"nodes", "class", "time (s)", "share"});
  for (int edge : {2, 4}) {
    obs::ScopedProfiling profiling_on(true);
    obs::Profile::global().reset();
    ForceField field(spec.topology, model);
    runtime::MachineSimConfig mc;
    mc.dt_fs = 2.0;
    mc.neighbor_skin = 1.0;
    mc.thermostat.kind = md::ThermostatKind::kLangevin;
    mc.thermostat.temperature_k = 300.0;
    runtime::MachineSimulation sim(
        field, machine::anton_with_torus(edge, edge, edge), spec.positions,
        spec.box, mc);
    sim.run(40);

    const auto& prof = obs::Profile::global();
    const double total = prof.network_total_s();
    const std::string prefix =
        "netattr_" + std::to_string(edge * edge * edge) + "n_";
    for (size_t c = 0; c < obs::kMessageClassCount; ++c) {
      const auto cls = static_cast<obs::MessageClass>(c);
      const obs::NetClassTotals t = prof.net(cls);
      const double share = total > 0 ? t.total_s / total : 0.0;
      table.add_row({std::to_string(edge * edge * edge),
                     obs::message_class_name(cls), Table::num(t.total_s, 9),
                     Table::num(100.0 * share, 1) + " %"});
      report.emplace_back(
          prefix + std::string(obs::message_class_name(cls)) + "_s",
          t.total_s);
      report.emplace_back(
          prefix + std::string(obs::message_class_name(cls)) + "_fraction",
          share);
    }
    report.emplace_back(prefix + "total_s", total);
    // 1.0 when the class totals reproduce the engine's aggregate modeled
    // network time bit for bit (the attribution contract).
    report.emplace_back(
        prefix + "exact",
        total == sim.accumulated().network_total() ? 1.0 : 0.0);
  }
  std::fputs(table.render().c_str(), stdout);
}

/// F1e: end-to-end single-thread MD wall time under each runnable cluster
/// kernel ISA.  Every variant produces the same trajectory bit for bit
/// (enforced by simd_kernel_test and check_kernel_equivalence.sh), so this
/// measures dispatch payoff only.  Skipped when ANTMD_FORCE_ISA pins the
/// process to one variant.
void simd_isa_scaling(MetricList& report) {
  bench::print_header(
      "F1e: cluster-kernel ISA sweep",
      "Wall time for 40 steps of water-360 (cluster kernel, reaction-field "
      "cutoff, 1 thread) under each runnable nonbonded ISA; trajectories "
      "are bit-identical across rows");

  const ff::KernelIsa dispatched = ff::active_kernel_isa();
  report.emplace_back("simd_dispatch_isa", static_cast<double>(dispatched));
  ff::set_kernel_isa(ff::KernelIsa::kScalar);
  if (ff::active_kernel_isa() != ff::KernelIsa::kScalar) {
    std::printf("(ANTMD_FORCE_ISA pins the ISA; skipping the sweep)\n");
    return;
  }

  auto spec = build_water_box(360, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kReactionCutoff;

  Table table({"isa", "wall (s)", "speedup vs scalar"});
  double t_scalar = 0.0;
  double best = 1.0;
  for (ff::KernelIsa isa :
       {ff::KernelIsa::kScalar, ff::KernelIsa::kSse41, ff::KernelIsa::kAvx2,
        ff::KernelIsa::kAvx512}) {
    if (!ff::kernel_isa_supported(isa)) continue;
    ff::set_kernel_isa(isa);
    ForceField field(spec.topology, model);
    md::Simulation sim = md::SimulationBuilder()
                             .dt_fs(2.0)
                             .neighbor_skin(1.0)
                             .langevin(300.0, 5.0)
                             .threads(1)
                             .build(field, spec.positions, spec.box);
    auto t_start = std::chrono::steady_clock::now();
    sim.run(40);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t_start)
                            .count();
    if (isa == ff::KernelIsa::kScalar) t_scalar = wall;
    const double speedup = t_scalar > 0 ? t_scalar / wall : 1.0;
    if (isa != ff::KernelIsa::kScalar && speedup > best) best = speedup;
    table.add_row({ff::to_string(isa), Table::num(wall, 3),
                   Table::num(speedup, 2)});
    const std::string kp = std::string("simd_") + ff::to_string(isa);
    report.emplace_back(kp + "_wall_s", wall);
    report.emplace_back(kp + "_speedup_vs_scalar", speedup);
  }
  report.emplace_back("simd_best_speedup_vs_scalar", best);
  ff::set_kernel_isa(dispatched);
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace

int main() {
  bench::print_header(
      "F1: strong scaling",
      "Modeled step time (us) vs torus size; water systems; dt 2.5 fs, "
      "k-space every 2 steps");

  machine::WorkloadParams params;
  params.cutoff = 10.0;

  const std::vector<size_t> waters_list = {3840, 7849, 30720};
  const std::vector<std::array<int, 3>> layouts = {
      {2, 2, 2}, {3, 3, 3}, {4, 4, 4}, {6, 6, 6}, {8, 8, 8}};

  Table table({"nodes", "system", "atoms/node", "step (us)", "ns/day",
               "parallel eff"});
  for (size_t waters : waters_list) {
    auto stats = machine::SystemStats::water(waters);
    double t_ref = 0.0;
    size_t nodes_ref = 0;
    for (const auto& l : layouts) {
      machine::MachineConfig cfg =
          machine::anton_with_torus(l[0], l[1], l[2]);
      machine::TimingModel model(cfg);
      auto work = machine::estimate_step_work(stats, cfg.node_count(),
                                              params);
      double t = bench::amortized_step_s(model, work, 2);
      if (nodes_ref == 0) {
        t_ref = t;
        nodes_ref = cfg.node_count();
      }
      double eff = (t_ref * static_cast<double>(nodes_ref)) /
                   (t * static_cast<double>(cfg.node_count()));
      table.add_row(
          {std::to_string(cfg.node_count()),
           "water-" + std::to_string(waters),
           Table::num(static_cast<double>(stats.atoms) /
                          static_cast<double>(cfg.node_count()),
                      0),
           Table::num(t * 1e6, 2),
           Table::num(machine::ns_per_day(2.5, t), 0),
           Table::num(eff, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: efficiency stays high while atoms/node >~ 1000 and "
      "degrades as the per-node work shrinks toward the network floor.\n");

  MetricList report;
  wall_clock_scaling(report);
  host_md_scaling(report);
  network_attribution(report);
  simd_isa_scaling(report);
  bench::write_json_report("f1_scaling", 8, report);
  return 0;
}
