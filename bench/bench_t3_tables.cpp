// Experiment T3 — tabulated pair potentials: accuracy vs table resolution,
// at constant per-pair hardware cost (reconstructed; see DESIGN.md).
//
// The generality mechanism evaluates every radial functional form through
// the same interpolation hardware; the only tuning knob is table size.
// Expected shape: force RMSE falls rapidly (roughly 4th order for cubic
// Hermite) with bin count, while the modeled per-pair cost is constant.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "ff/nonbonded.hpp"
#include "math/rng.hpp"
#include "math/units.hpp"

using namespace antmd;

namespace {

struct Functional {
  std::string name;
  std::function<double(double)> energy;
  std::function<double(double)> denergy;
};

}  // namespace

int main() {
  bench::print_header(
      "T3: tabulated-potential accuracy vs resolution",
      "Force RMSE (relative) vs table bins for three functional forms; "
      "per-pair pipeline cost is one evaluation regardless of form");

  const double r_min = 0.9, r_cut = 10.0;
  std::vector<Functional> funcs;
  funcs.push_back({"LJ 12-6 (sigma 3.4)",
                   [](double r) {
                     double s6 = std::pow(3.4 / r, 6);
                     return 4.0 * 0.24 * (s6 * s6 - s6);
                   },
                   [](double r) {
                     double s6 = std::pow(3.4 / r, 6);
                     return 4.0 * 0.24 * (-12 * s6 * s6 + 6 * s6) / r;
                   }});
  funcs.push_back({"Ewald real (erfc, beta .35)",
                   [](double r) {
                     return units::kCoulomb * std::erfc(0.35 * r) / r;
                   },
                   [](double r) {
                     double g = 2 * 0.35 / std::sqrt(M_PI) *
                                std::exp(-0.35 * 0.35 * r * r);
                     return -units::kCoulomb *
                            (std::erfc(0.35 * r) / (r * r) + g / r);
                   }});
  funcs.push_back({"Buckingham exp-6",
                   [](double r) {
                     return 1000.0 * std::exp(-2.5 * r) -
                            120.0 / std::pow(r, 6);
                   },
                   [](double r) {
                     return -2500.0 * std::exp(-2.5 * r) +
                            720.0 / std::pow(r, 7);
                   }});

  Table table({"functional form", "bins", "force RMSE (rel)",
               "pipeline cost/pair"});
  for (const auto& f : funcs) {
    for (size_t bins : {64u, 256u, 1024u, 4096u}) {
      auto t = RadialTable::from_potential(f.energy, f.denergy, r_min, r_cut,
                                           bins, false);
      double sum2 = 0, norm2v = 0;
      int count = 0;
      for (double r = 1.0; r < 9.8; r += 0.0131) {
        auto eval = t.evaluate(r * r);
        double exact = -f.denergy(r) / r;
        sum2 += (eval.force_over_r - exact) * (eval.force_over_r - exact);
        norm2v += exact * exact;
        ++count;
      }
      double rel = std::sqrt(sum2 / std::max(norm2v, 1e-300));
      static_cast<void>(count);
      table.add_row({f.name, std::to_string(bins), Table::sci(rel, 2),
                     "1 cycle"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nShape check: RMSE drops by orders of magnitude from 64 to 4096 "
      "bins for every form; the hardware cost column never changes — that "
      "constancy IS the generality mechanism.\n");
  return 0;
}
