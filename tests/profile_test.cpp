// Contract tests for the attribution profiler (obs::Profile).
//
// The load-bearing guarantee: the per-message-class network totals exactly
// partition the engine's aggregate modeled network time — same sums, same
// order, bit for bit.  Everything else (components, links, critical path,
// exports) is checked against its documented shape.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ff/forcefield.hpp"
#include "machine/config.hpp"
#include "md/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/task_graph.hpp"

namespace antmd {
namespace {

/// Builds a small water box on a 2x2x2 modeled torus and advances it with
/// the global profiler collecting.  Profiling is switched on before
/// construction so the collector sees every modeled step, including the
/// constructor's initial force evaluation — the precondition for the
/// bit-exact comparison against accumulated().
struct ProfiledRun {
  obs::ScopedProfiling profiling{true};
  SystemSpec spec;
  ForceField field;
  runtime::MachineSimulation sim;

  static runtime::MachineSimConfig config() {
    runtime::MachineSimConfig mc;
    mc.dt_fs = 2.0;
    mc.neighbor_skin = 1.0;
    mc.init_temperature_k = 300.0;
    mc.thermostat.kind = md::ThermostatKind::kLangevin;
    mc.thermostat.temperature_k = 300.0;
    return mc;
  }

  static ff::NonbondedModel model() {
    ff::NonbondedModel m;
    m.cutoff = 6.0;
    m.electrostatics = ff::Electrostatics::kEwaldReal;
    return m;
  }

  explicit ProfiledRun(size_t steps)
      : spec((obs::Profile::global().reset(),
              build_water_box(216, WaterModel::kRigid3Site))),
        field(spec.topology, model()),
        sim(field, machine::anton_with_torus(2, 2, 2), spec.positions,
            spec.box, config()) {
    sim.run(steps);
  }
};

TEST(Profile, ClassTotalsExactlyPartitionAggregateNetworkTime) {
  ProfiledRun run(25);
  const auto& prof = obs::Profile::global();
  const auto& acc = run.sim.accumulated();

  // Each class total reproduces its StepBreakdown field bit for bit: the
  // profiler accumulates with the same independent `+=` per field the
  // engine uses for its own aggregate.
  EXPECT_EQ(prof.net(obs::MessageClass::kPositionMulticast).total_s,
            acc.multicast);
  EXPECT_EQ(prof.net(obs::MessageClass::kForceReduction).total_s, acc.reduce);
  EXPECT_EQ(prof.net(obs::MessageClass::kKspaceFft).total_s,
            acc.kspace_fft_comm);
  EXPECT_EQ(prof.net(obs::MessageClass::kBarrierSync).total_s, acc.sync);
  EXPECT_EQ(prof.net(obs::MessageClass::kReliability).total_s,
            acc.reliability);

  // And the class sum reproduces the aggregate (same left-to-right
  // association): no double-count, no leak.
  EXPECT_EQ(prof.network_total_s(), acc.network_total());
  EXPECT_GT(prof.network_total_s(), 0.0);

  // One profile step per modeled step, including the constructor's
  // initial evaluation.
  EXPECT_EQ(prof.steps(), 25u + 1u);
}

TEST(Profile, ComponentsResumToClassTotalWithinRounding) {
  ProfiledRun run(25);
  const auto& prof = obs::Profile::global();
  for (size_t c = 0; c < obs::kMessageClassCount; ++c) {
    const obs::NetClassTotals t =
        prof.net(static_cast<obs::MessageClass>(c));
    const double components =
        t.serialization_s + t.queueing_s + t.contention_s + t.reliability_s;
    // Components come from the same model terms as the total, just summed
    // in a different association — rounding-close, not bit-equal.
    EXPECT_NEAR(components, t.total_s, 1e-9 * std::max(1.0, t.total_s))
        << "class " << obs::message_class_name(
               static_cast<obs::MessageClass>(c));
  }
}

TEST(Profile, LinkLoadsArePopulatedAndLabeled) {
  ProfiledRun run(10);
  const auto& prof = obs::Profile::global();
  const auto top = prof.top_links(5);
  ASSERT_FALSE(top.empty());
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].bytes, top[i].bytes) << "top_links must sort desc";
  }
  // Labels follow "n<id>(x,y,z).<axis><sign>".
  EXPECT_EQ(top[0].label.rfind('n', 0), 0u);
  EXPECT_NE(top[0].label.find('('), std::string::npos);
  EXPECT_TRUE(top[0].label.back() == '+' || top[0].label.back() == '-');
}

TEST(Profile, LinkHistogramEdgesAreInclusive) {
  obs::Profile p;
  // Default edges are {1e2, 1e3, ..., 1e7}; a load exactly on an edge must
  // land in that edge's bucket (inclusive upper bound), not the next one.
  p.record_links({100.0, 100.1, 1e7, 2e7, 50.0});
  const auto h = p.link_histogram();
  ASSERT_EQ(h.buckets.size(), h.edges.size() + 1);
  ASSERT_GE(h.edges.size(), 2u);
  EXPECT_EQ(h.edges.front(), 1e2);
  EXPECT_EQ(h.buckets[0], 2u);  // 50.0 and exactly-100.0
  EXPECT_EQ(h.buckets[1], 1u);  // 100.1 spills into (1e2, 1e3]
  EXPECT_EQ(h.buckets[h.edges.size() - 1], 1u);  // exactly-1e7
  EXPECT_EQ(h.buckets.back(), 1u);               // 2e7 overflows
}

TEST(Profile, ZeroLoadLinksAreNotCounted) {
  obs::Profile p;
  p.record_links({0.0, 0.0, 5.0});
  const auto h = p.link_histogram();
  uint64_t counted = 0;
  for (uint64_t b : h.buckets) counted += b;
  EXPECT_EQ(counted, 1u);  // only the one link that carried traffic
  EXPECT_EQ(p.top_links(10).size(), 1u);
}

TEST(Profile, MergeNetworkSumsTotalsAndTransport) {
  obs::Profile a;
  obs::Profile b;
  obs::NetSample s;
  s.total_s = 1.5;
  s.serialization_s = 1.0;
  s.queueing_s = 0.5;
  s.messages = 3;
  s.bytes = 4096.0;
  a.record_network(obs::MessageClass::kPositionMulticast, s);
  b.record_network(obs::MessageClass::kPositionMulticast, s);
  b.record_network(obs::MessageClass::kBarrierSync, s);
  b.record_links({10.0, 20.0});
  b.record_transport(2, 1, 0, 0);
  b.record_step();

  a.merge_network(b);
  EXPECT_EQ(a.net(obs::MessageClass::kPositionMulticast).total_s, 3.0);
  EXPECT_EQ(a.net(obs::MessageClass::kPositionMulticast).messages, 6u);
  EXPECT_EQ(a.net(obs::MessageClass::kBarrierSync).total_s, 1.5);
  EXPECT_EQ(a.steps(), 1u);
  EXPECT_EQ(a.top_links(10).size(), 2u);
}

TEST(Profile, JsonDocumentIsWellFormedAndVersioned) {
  ProfiledRun run(10);
  const std::string json = obs::Profile::global().to_json();
  EXPECT_NE(json.find("\"schema\": \"antmd.profile/v1\""), std::string::npos);
  for (const char* key :
       {"\"network\"", "\"classes\"", "\"position_multicast\"",
        "\"force_reduction\"", "\"kspace_fft\"", "\"barrier_sync\"",
        "\"reliability\"", "\"links\"", "\"histogram\"", "\"top\"",
        "\"critical_path\"", "\"transport\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Structural balance (the document quotes no braces inside strings).
  int depth = 0;
  int sq = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '[') ++sq;
    if (c == ']') --sq;
    EXPECT_GE(depth, 0);
    EXPECT_GE(sq, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(sq, 0);
}

TEST(Profile, RenderSummaryNamesClassesAndLinks) {
  ProfiledRun run(10);
  const std::string text = obs::Profile::global().render_summary();
  EXPECT_NE(text.find("position_multicast"), std::string::npos);
  EXPECT_NE(text.find("kspace_fft"), std::string::npos);
  EXPECT_NE(text.find("network_total"), std::string::npos);
  EXPECT_NE(text.find("top contended torus links"), std::string::npos);
}

TEST(Profile, PublishMetricsMirrorsClassTotalsIntoRegistry) {
  ProfiledRun run(10);
  obs::register_standard_metrics();
  obs::ScopedTelemetry telemetry(true);  // gauge writes gate on telemetry
  obs::Profile::global().publish_metrics();
  const auto snap = obs::MetricsRegistry::global().snapshot();
  bool found_total = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "profile.network.total_seconds") {
      found_total = true;
      EXPECT_EQ(value, obs::Profile::global().network_total_s());
    }
  }
  EXPECT_TRUE(found_total);
}

TEST(Profile, PrometheusExpositionHasTypedSanitizedFamilies) {
  ProfiledRun run(5);
  obs::register_standard_metrics();
  obs::ScopedTelemetry telemetry(true);
  obs::Profile::global().publish_metrics();
  const std::string prom =
      obs::MetricsRegistry::global().snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE antmd_profile_network_total_seconds gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("_bucket{le=\"+Inf\"}"), std::string::npos);
  // Every non-comment line is `name{labels} value` with a sanitized name.
  size_t pos = 0;
  while (pos < prom.size()) {
    size_t eol = prom.find('\n', pos);
    if (eol == std::string::npos) eol = prom.size();
    const std::string line = prom.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.rfind("antmd_", 0), 0u) << line;
    // Sanitization applies to the metric name (label values like
    // le="0.5" keep their dots).
    const std::string name = line.substr(0, line.find_first_of("{ "));
    EXPECT_EQ(name.find('.'), std::string::npos) << line;
  }
}

TEST(Profile, DisabledGateRecordsNothingFromTheEngine) {
  obs::ScopedProfiling off(false);
  obs::Profile::global().reset();
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  ForceField field(spec.topology, ProfiledRun::model());
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box,
                                 ProfiledRun::config());
  sim.run(5);
  EXPECT_EQ(obs::Profile::global().steps(), 0u);
  EXPECT_EQ(obs::Profile::global().network_total_s(), 0.0);
}

TEST(Profile, PerRunSinkReceivesTheFeedInsteadOfGlobal) {
  obs::ScopedProfiling on(true);
  obs::Profile mine;
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  ForceField field(spec.topology, ProfiledRun::model());
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box,
                                 ProfiledRun::config());
  sim.set_profile(&mine);
  // The constructor's initial evaluation fed the global collector (the
  // per-run sink was not installed yet); clear it so the assertion below
  // sees only post-install traffic.
  obs::Profile::global().reset();
  sim.run(5);
  EXPECT_EQ(mine.steps(), 5u);
  EXPECT_GT(mine.network_total_s(), 0.0);
  // The network feed went to the per-run sink, not the global collector
  // (the global may still see task-graph records, which always aggregate
  // process-wide).
  EXPECT_EQ(obs::Profile::global().network_total_s(), 0.0);
  sim.set_profile(nullptr);
}

TEST(Profile, CriticalPathAnalysisOnDiamondGraph) {
  obs::ScopedProfiling on(true);
  obs::Profile::global().reset();

  // a -> {b, c} -> d with b doing ~10x the work of c: the critical path is
  // a-b-d, c gets slack, and zeroing b must promise the largest saving.
  auto spin_us = [](double us) {
    const double t0 = obs::now_us();
    while (obs::now_us() - t0 < us) {
    }
  };
  util::TaskGraph g(nullptr, "profile_test.diamond");
  auto a = g.add("pt.a", [&] { spin_us(200.0); });
  auto b = g.add("pt.b", [&] { spin_us(2000.0); }, {a});
  auto c = g.add("pt.c", [&] { spin_us(200.0); }, {a});
  g.add_reduction("pt.d", [&] { spin_us(200.0); }, {b, c});
  g.run();

  const auto graphs = obs::Profile::global().graphs();
  const obs::GraphProfile* gp = nullptr;
  for (const auto& each : graphs) {
    if (each.name == "profile_test.diamond") gp = &each;
  }
  ASSERT_NE(gp, nullptr);
  EXPECT_EQ(gp->runs, 1u);
  EXPECT_GT(gp->critical_us, 0.0);
  // Total work exceeds the critical path (c runs off it).
  EXPECT_GT(gp->busy_us, gp->critical_us);

  const obs::TaskProfile* tb = nullptr;
  const obs::TaskProfile* tc = nullptr;
  for (const auto& t : gp->tasks) {
    if (t.name == "pt.b") tb = &t;
    if (t.name == "pt.c") tc = &t;
  }
  ASSERT_NE(tb, nullptr);
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tb->on_critical, 1u);  // the heavy branch carries the path
  EXPECT_EQ(tc->on_critical, 0u);
  EXPECT_GT(tc->slack_us, 0.0);              // light branch has room
  EXPECT_NEAR(tb->slack_us, 0.0, 1e-6);      // heavy branch has none
  EXPECT_GT(tb->whatif_saving_us, tc->whatif_saving_us);
  EXPECT_GE(tc->whatif_saving_us, 0.0);
}

TEST(Profile, GraphRecordsAccumulateAcrossRuns) {
  obs::ScopedProfiling on(true);
  obs::Profile::global().reset();
  util::TaskGraph g(nullptr, "profile_test.repeat");
  g.add("pt.only", [] {});
  g.run();
  g.run();
  g.run();
  for (const auto& gp : obs::Profile::global().graphs()) {
    if (gp.name == "profile_test.repeat") {
      EXPECT_EQ(gp.runs, 3u);
      ASSERT_EQ(gp.tasks.size(), 1u);
      EXPECT_EQ(gp.tasks[0].runs, 3u);
      EXPECT_EQ(gp.tasks[0].on_critical, 3u);  // alone = always critical
      return;
    }
  }
  FAIL() << "graph profile_test.repeat not recorded";
}

}  // namespace
}  // namespace antmd
