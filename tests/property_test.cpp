// Parameterized property tests: invariants swept over parameter spaces
// with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>

#include "ff/forcefield.hpp"
#include "ff/nonbonded_cluster.hpp"
#include "ff/nonbonded_simd.hpp"
#include "math/fixed.hpp"
#include "math/pbc.hpp"
#include "math/rng.hpp"
#include "math/spline.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"

namespace antmd {
namespace {

// ---------------------------------------------------------------------------
// Box properties across shapes.
// ---------------------------------------------------------------------------
class BoxShapes : public ::testing::TestWithParam<std::array<double, 3>> {};

TEST_P(BoxShapes, WrapInPrimaryCellAndMinImageBounded) {
  auto e = GetParam();
  Box box(e[0], e[1], e[2]);
  SequentialRng rng(5);
  for (int i = 0; i < 300; ++i) {
    Vec3 r{rng.uniform(-100, 100), rng.uniform(-100, 100),
           rng.uniform(-100, 100)};
    Vec3 w = box.wrap(r);
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(w[d], 0.0);
      EXPECT_LT(w[d], e[d]);
    }
    Vec3 s{rng.uniform(-100, 100), rng.uniform(-100, 100),
           rng.uniform(-100, 100)};
    Vec3 mi = box.min_image(r, s);
    for (int d = 0; d < 3; ++d) {
      EXPECT_LE(std::abs(mi[d]), e[d] / 2 + 1e-9);
    }
    // Wrapping both points leaves the minimum image unchanged.
    Vec3 mi2 = box.min_image(box.wrap(r), box.wrap(s));
    EXPECT_NEAR(mi.x, mi2.x, 1e-9);
    EXPECT_NEAR(mi.y, mi2.y, 1e-9);
    EXPECT_NEAR(mi.z, mi2.z, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoxShapes,
    ::testing::Values(std::array<double, 3>{10, 10, 10},
                      std::array<double, 3>{8, 15, 23.7},
                      std::array<double, 3>{100, 3.1, 47},
                      std::array<double, 3>{1.5, 1.5, 1.5}));

// ---------------------------------------------------------------------------
// Neighbor list equals brute force across density/cutoff combinations.
// ---------------------------------------------------------------------------
struct NeighborCase {
  size_t atoms;
  double density;
  double cutoff;
  double skin;
};

class NeighborSweep : public ::testing::TestWithParam<NeighborCase> {};

TEST_P(NeighborSweep, MatchesBruteForce) {
  auto c = GetParam();
  auto spec = build_lj_fluid(c.atoms, c.density, 7);
  md::NeighborList list(spec.topology, c.cutoff, c.skin);
  list.build(spec.positions, spec.box);
  double reach2 = (c.cutoff + c.skin) * (c.cutoff + c.skin);
  std::set<std::pair<uint32_t, uint32_t>> brute;
  for (uint32_t i = 0; i < spec.topology.atom_count(); ++i) {
    for (uint32_t j = i + 1; j < spec.topology.atom_count(); ++j) {
      if (spec.box.distance2(spec.positions[i], spec.positions[j]) <
          reach2) {
        brute.insert({i, j});
      }
    }
  }
  std::set<std::pair<uint32_t, uint32_t>> found;
  for (const auto& p : list.pairs()) found.insert({p.i, p.j});
  EXPECT_EQ(found, brute);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NeighborSweep,
    ::testing::Values(NeighborCase{125, 0.010, 6.0, 1.0},
                      NeighborCase{125, 0.021, 7.0, 0.0},
                      NeighborCase{216, 0.021, 5.0, 2.0},
                      NeighborCase{343, 0.030, 6.0, 1.5},
                      NeighborCase{512, 0.015, 9.0, 1.0}));

// ---------------------------------------------------------------------------
// Tabulated potentials reproduce their analytic form across families.
// ---------------------------------------------------------------------------
struct TableCase {
  const char* name;
  double (*energy)(double);
  double (*denergy)(double);
  double tolerance;
};

double morse_e(double r) {
  double x = 1.0 - std::exp(-1.2 * (r - 3.5));
  return 2.5 * x * x - 2.5;
}
double morse_de(double r) {
  double ex = std::exp(-1.2 * (r - 3.5));
  return 2.0 * 2.5 * (1.0 - ex) * 1.2 * ex;
}
double yukawa_e(double r) { return 12.0 * std::exp(-0.8 * r) / r; }
double yukawa_de(double r) {
  return -12.0 * std::exp(-0.8 * r) * (0.8 / r + 1.0 / (r * r));
}
double gauss_e(double r) { return -3.0 * std::exp(-(r - 4) * (r - 4)); }
double gauss_de(double r) {
  return 6.0 * (r - 4) * std::exp(-(r - 4) * (r - 4));
}

class TableFamilies : public ::testing::TestWithParam<TableCase> {};

TEST_P(TableFamilies, EnergyAndForceMatchAnalytic) {
  auto c = GetParam();
  auto table = RadialTable::from_potential(c.energy, c.denergy, 1.0, 9.0,
                                           2048, false);
  for (double r = 1.2; r < 8.8; r += 0.037) {
    auto eval = table.evaluate(r * r);
    EXPECT_NEAR(eval.energy, c.energy(r), c.tolerance) << c.name << " r=" << r;
    double exact_for = -c.denergy(r) / r;
    EXPECT_NEAR(eval.force_over_r, exact_for,
                c.tolerance * 5 * std::max(1.0, std::abs(exact_for)))
        << c.name << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, TableFamilies,
    ::testing::Values(TableCase{"morse", morse_e, morse_de, 1e-4},
                      TableCase{"yukawa", yukawa_e, yukawa_de, 1e-4},
                      TableCase{"gaussian-well", gauss_e, gauss_de, 1e-4}));

// ---------------------------------------------------------------------------
// Fixed-point accumulation is partition-independent for any node count.
// ---------------------------------------------------------------------------
class PartitionCounts : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionCounts, MergedForcesBitIdentical) {
  const size_t n_nodes = GetParam();
  const size_t n_atoms = 50;
  SequentialRng rng(n_nodes * 131 + 7);
  struct P {
    size_t i, j;
    Vec3 f;
  };
  std::vector<P> pairs;
  for (int k = 0; k < 3000; ++k) {
    size_t i = rng.uniform_int(n_atoms);
    size_t j = (i + 1 + rng.uniform_int(n_atoms - 1)) % n_atoms;
    pairs.push_back({i, j,
                     Vec3{rng.uniform(-9, 9), rng.uniform(-9, 9),
                          rng.uniform(-9, 9)}});
  }
  FixedForceArray ref(n_atoms);
  for (const auto& p : pairs) ref.add_pair(p.i, p.j, p.f);

  std::vector<FixedForceArray> parts(n_nodes, FixedForceArray(n_atoms));
  for (size_t k = 0; k < pairs.size(); ++k) {
    parts[(k * 2654435761u) % n_nodes].add_pair(pairs[k].i, pairs[k].j,
                                                pairs[k].f);
  }
  FixedForceArray merged(n_atoms);
  // Merge in reverse order for good measure.
  for (size_t n = n_nodes; n-- > 0;) merged.merge(parts[n]);
  EXPECT_EQ(ref, merged);
}

INSTANTIATE_TEST_SUITE_P(Counts, PartitionCounts,
                         ::testing::Values(2, 3, 8, 27, 64, 512));

// ---------------------------------------------------------------------------
// NVE conservation across timesteps: drift grows with dt but stays bounded.
// ---------------------------------------------------------------------------
class TimestepSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimestepSweep, LjFluidEnergyBounded) {
  double dt = GetParam();
  auto spec = build_lj_fluid(125, 0.021, 4);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = dt;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 110.0;
  cfg.thermostat.kind = md::ThermostatKind::kNone;
  cfg.com_removal_interval = 0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(50);
  double e0 = sim.potential_energy() + sim.kinetic_energy();
  sim.run(200);
  double e1 = sim.potential_energy() + sim.kinetic_energy();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_NEAR(e1, e0, 0.05 * (std::abs(e0) + 10.0)) << "dt=" << dt;
}

INSTANTIATE_TEST_SUITE_P(Dt, TimestepSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 6.0));

// ---------------------------------------------------------------------------
// Thermostats hit their target across kinds and temperatures.
// ---------------------------------------------------------------------------
struct ThermoCase {
  md::ThermostatKind kind;
  double target;
};

class ThermostatSweep : public ::testing::TestWithParam<ThermoCase> {};

TEST_P(ThermostatSweep, ReachesTarget) {
  auto c = GetParam();
  auto spec = build_lj_fluid(125, 0.021, 6);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 100.0;
  cfg.thermostat.kind = c.kind;
  cfg.thermostat.temperature_k = c.target;
  cfg.thermostat.tau_fs = 200.0;
  cfg.thermostat.gamma_per_ps = 5.0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(800);
  double t_sum = 0;
  for (int i = 0; i < 150; ++i) {
    sim.step();
    t_sum += sim.temperature();
  }
  EXPECT_NEAR(t_sum / 150, c.target, 0.2 * c.target) << "kind/temp case";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ThermostatSweep,
    ::testing::Values(ThermoCase{md::ThermostatKind::kBerendsen, 160.0},
                      ThermoCase{md::ThermostatKind::kLangevin, 160.0},
                      ThermoCase{md::ThermostatKind::kLangevin, 90.0},
                      ThermoCase{md::ThermostatKind::kNoseHoover, 140.0}));

// ---------------------------------------------------------------------------
// Soft-core tables interpolate monotonically toward full coupling at the
// cutoff-side tail for every alpha.
// ---------------------------------------------------------------------------
class SoftcoreAlphas : public ::testing::TestWithParam<double> {};

TEST_P(SoftcoreAlphas, EndpointsAndFiniteness) {
  double alpha = GetParam();
  ff::NonbondedModel model;
  model.cutoff = 9.0;
  model.table_inner = 0.3;
  auto lj = ff::make_lj_table(3.4, 0.24, model);
  auto sc1 = ff::make_softcore_lj_table(3.4, 0.24, 1.0, alpha, model);
  auto sc0 = ff::make_softcore_lj_table(3.4, 0.24, 0.0, alpha, model);
  for (double r = 3.2; r < 8.5; r += 0.33) {
    EXPECT_NEAR(sc1.evaluate(r * r).energy, lj.evaluate(r * r).energy, 1e-3)
        << "alpha=" << alpha;
    EXPECT_EQ(sc0.evaluate(r * r).energy, 0.0);
  }
  // Finite at contact for intermediate lambda.
  auto mid = ff::make_softcore_lj_table(3.4, 0.24, 0.5, alpha, model);
  EXPECT_LT(std::abs(mid.evaluate(0.09).energy), 1e3);
}

INSTANTIATE_TEST_SUITE_P(Alphas, SoftcoreAlphas,
                         ::testing::Values(0.25, 0.5, 1.0));

// ---------------------------------------------------------------------------
// Cluster-builder properties across i-widths: the tile masks are an exact
// re-encoding of the flat pair list at every supported width, and widening
// the i-side raises the useful-lane fraction a row-skipping (SIMD)
// evaluator streams.
// ---------------------------------------------------------------------------
class ClusterWidths : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ClusterWidths, MasksEncodeExactlyTheFlatPairs) {
  const uint32_t width = GetParam();
  for (uint64_t seed : {5u, 11u, 23u}) {
    auto spec = build_lj_fluid(343, 0.021, seed);
    md::NeighborList list(spec.topology, 7.0, 1.2, /*cluster_mode=*/true,
                          width);
    list.build(spec.positions, spec.box);
    const auto& cl = list.clusters();
    ASSERT_EQ(cl.width, width);

    std::set<std::pair<uint32_t, uint32_t>> flat;
    for (const auto& pr : list.pairs()) flat.insert({pr.i, pr.j});

    std::set<std::pair<uint32_t, uint32_t>> decoded;
    size_t bits_total = 0;
    size_t rows_with_bits = 0;
    for (const auto& e : cl.entries) {
      for (uint32_t a = 0; a < width; ++a) {
        const uint64_t row = (e.mask >> (a * ff::kClusterJWidth)) & 0xfull;
        if (row != 0) ++rows_with_bits;
      }
      for (uint64_t m = e.mask; m != 0; m &= m - 1) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(m));
        const uint32_t i = cl.atoms[e.ci * width + (bit >> 2)];
        const uint32_t j =
            cl.atoms[e.cj * ff::kClusterJWidth + (bit & 3)];
        ASSERT_NE(i, ff::kPadAtom) << "mask bit touches a padding slot";
        ASSERT_NE(j, ff::kPadAtom) << "mask bit touches a padding slot";
        decoded.insert({std::min(i, j), std::max(i, j)});
        ++bits_total;
      }
    }
    EXPECT_EQ(decoded, flat) << "width=" << width << " seed=" << seed;
    EXPECT_EQ(bits_total, flat.size()) << "a pair appears in two tiles";
    EXPECT_EQ(cl.real_pairs, flat.size());
    EXPECT_EQ(cl.active_rows, rows_with_bits)
        << "active_rows must count exactly the rows a row-skipping "
           "evaluator streams";
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ClusterWidths,
                         ::testing::Values(ff::kMinClusterWidth,
                                           ff::kMaxClusterWidth),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

// At production scale the 8-wide tiles must actually pay off: the lanes a
// row-skipping evaluator streams are busier than the narrow shape's, and
// far busier than the naive all-lanes figure.
TEST(ClusterBuilder, WideTilesRaiseStreamedFillAt12kAtoms) {
  auto spec = build_lj_fluid(12000, 0.021, 7);
  md::NeighborList narrow(spec.topology, 7.0, 1.0, true,
                          ff::kMinClusterWidth);
  md::NeighborList wide(spec.topology, 7.0, 1.0, true, ff::kMaxClusterWidth);
  narrow.build(spec.positions, spec.box);
  wide.build(spec.positions, spec.box);
  const auto& cn = narrow.clusters();
  const auto& cw = wide.clusters();
  // Same pair set at either width.
  EXPECT_EQ(cn.real_pairs, cw.real_pairs);
  // Row skipping beats streaming every tile lane...
  EXPECT_GT(cw.streamed_fill_ratio(), cw.fill_ratio());
  // ...and the wide shape clears the narrow baseline (~0.31 naive fill at
  // this density) by a sound margin.
  EXPECT_GT(cw.streamed_fill_ratio(), 0.45);
  EXPECT_GT(cw.streamed_fill_ratio(), cn.fill_ratio());
}

// ---------------------------------------------------------------------------
// Physics invariants hold for BOTH nonbonded kernels (flat pair list and
// blocked cluster-pair), and for the cluster kernel under every compiled
// SIMD variant — the ISA is set per test case and must reproduce the same
// physics (it is specified bit-identical, so these sweeps double as a
// sanity net under real dynamics, not just the differential fixtures).
// ---------------------------------------------------------------------------
struct KernelCase {
  ff::NonbondedKernel kernel;
  ff::KernelIsa isa;
};

class KernelSweep : public ::testing::TestWithParam<KernelCase> {
 protected:
  void SetUp() override {
    const ff::KernelIsa isa = GetParam().isa;
    if (!ff::kernel_isa_supported(isa)) {
      GTEST_SKIP() << ff::to_string(isa)
                   << " is not supported by this build/CPU";
    }
    ff::set_kernel_isa(isa);
    if (ff::active_kernel_isa() != isa) {
      GTEST_SKIP() << "ANTMD_FORCE_ISA pins the kernel ISA";
    }
  }
  void TearDown() override { ff::set_kernel_isa(ff::probe_kernel_isa()); }
};

/// Real-space nonbonded evaluation through the selected kernel, with a
/// fresh neighbor list built for the given positions/box.
ForceResult nonbonded_only(const Topology& topo, const ForceField& field,
                           ff::NonbondedKernel kernel,
                           const std::vector<Vec3>& positions,
                           const Box& box) {
  ForceResult out(topo.atom_count());
  md::NeighborList list(topo, field.model().cutoff, 1.0,
                        kernel == ff::NonbondedKernel::kCluster);
  list.build(positions, box);
  if (list.cluster_mode()) {
    field.compute_nonbonded_clusters(list.clusters(), positions, box, out);
  } else {
    field.compute_nonbonded(list.pairs(), positions, box, out);
  }
  return out;
}

// Newton's third law: pairwise forces are accumulated as +q / -q in fixed
// point, so the net force is EXACTLY zero quanta in every component.
TEST_P(KernelSweep, NewtonThirdLawNetForceExactlyZero) {
  auto spec = build_ionic_solution(125, 4, 9);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kReactionCutoff;
  ForceField field(spec.topology, model);
  ForceResult res = nonbonded_only(spec.topology, field, GetParam().kernel,
                                   spec.positions, spec.box);
  std::array<int64_t, 3> net{0, 0, 0};
  for (size_t i = 0; i < res.forces.size(); ++i) {
    auto q = res.forces.quanta(i);
    net[0] += q[0];
    net[1] += q[1];
    net[2] += q[2];
  }
  EXPECT_EQ(net[0], 0);
  EXPECT_EQ(net[1], 0);
  EXPECT_EQ(net[2], 0);
}

// Virial consistency: tr(W) = sum r.f must equal -dU/dlambda under a uniform
// scaling of box and coordinates (numerical central difference).
TEST_P(KernelSweep, VirialMatchesNumericalVolumeDerivative) {
  auto spec = build_lj_fluid(216, 0.021, 13);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  auto scaled_energy = [&](double lambda) {
    std::vector<Vec3> pos(spec.positions);
    for (auto& p : pos) p = p * lambda;
    Box box(spec.box.edges().x * lambda, spec.box.edges().y * lambda,
            spec.box.edges().z * lambda);
    ForceResult r = nonbonded_only(spec.topology, field, GetParam().kernel, pos, box);
    return r.energy.total();
  };

  ForceResult base = nonbonded_only(spec.topology, field, GetParam().kernel,
                                    spec.positions, spec.box);
  const double h = 1e-5;
  const double du_dlambda = (scaled_energy(1.0 + h) - scaled_energy(1.0 - h)) /
                            (2.0 * h);
  const double w = trace(base.virial);
  EXPECT_NEAR(w, -du_dlambda, 5e-3 * std::abs(w) + 0.1)
      << "kernel=" << ff::to_string(GetParam().kernel);
}

// Energy conservation over a long NVE trajectory through the full
// md::Simulation stack with the kernel selected via SimulationConfig.
TEST_P(KernelSweep, NveDriftBoundedOver2kSteps) {
  auto spec = build_lj_fluid(125, 0.021, 4);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 110.0;
  cfg.thermostat.kind = md::ThermostatKind::kNone;
  cfg.com_removal_interval = 0;
  cfg.nonbonded_kernel = GetParam().kernel;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(50);
  double e0 = sim.potential_energy() + sim.kinetic_energy();
  sim.run(2000);
  double e1 = sim.potential_energy() + sim.kinetic_energy();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_NEAR(e1, e0, 0.02 * (std::abs(e0) + 10.0))
      << "kernel=" << ff::to_string(GetParam().kernel);
}

// The nonbonded energy depends only on relative geometry: rigid translation
// and a cube-group rotation (90 degrees about z, which the cubic periodic
// cell maps onto itself) leave it unchanged to rounding.
TEST_P(KernelSweep, TranslationAndRotationInvariance) {
  auto spec = build_lj_fluid(216, 0.021, 17);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  const double e_ref =
      nonbonded_only(spec.topology, field, GetParam().kernel, spec.positions,
                     spec.box)
          .energy.total();
  const double tol = 1e-6 * std::abs(e_ref) + 1e-8;

  // Translation by an arbitrary vector (min-image handles unwrapped input).
  std::vector<Vec3> shifted(spec.positions);
  for (auto& p : shifted) p = p + Vec3{1.234, -2.345, 0.777};
  const double e_shift =
      nonbonded_only(spec.topology, field, GetParam().kernel, shifted, spec.box)
          .energy.total();
  EXPECT_NEAR(e_shift, e_ref, tol) << "kernel=" << ff::to_string(GetParam().kernel);

  // Rotation: (x, y, z) -> (L - y, x, z) for the cubic cell.
  const double edge = spec.box.edges().x;
  ASSERT_DOUBLE_EQ(edge, spec.box.edges().y);
  std::vector<Vec3> rotated(spec.positions);
  for (auto& p : rotated) p = Vec3{edge - p.y, p.x, p.z};
  const double e_rot =
      nonbonded_only(spec.topology, field, GetParam().kernel, rotated, spec.box)
          .energy.total();
  EXPECT_NEAR(e_rot, e_ref, tol) << "kernel=" << ff::to_string(GetParam().kernel);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelSweep,
    ::testing::Values(
        KernelCase{ff::NonbondedKernel::kPair, ff::KernelIsa::kScalar},
        KernelCase{ff::NonbondedKernel::kCluster, ff::KernelIsa::kScalar},
        KernelCase{ff::NonbondedKernel::kCluster, ff::KernelIsa::kSse41},
        KernelCase{ff::NonbondedKernel::kCluster, ff::KernelIsa::kAvx2},
        KernelCase{ff::NonbondedKernel::kCluster, ff::KernelIsa::kAvx512}),
    [](const auto& info) {
      return std::string(ff::to_string(info.param.kernel)) + "_" +
             ff::to_string(info.param.isa);
    });

}  // namespace
}  // namespace antmd
