// Fleet scheduler tests: admission control and backpressure, priority
// fair share, per-run fault isolation (a chaos schedule aimed at one
// tenant never touches its siblings), checkpoint-backed eviction with
// bit-identical rehydration, and the acceptance matrix — a 256-run mixed
// fleet whose faulted tenants recover or quarantine while every recovered
// trajectory stays bit-identical to the fault-free solo run, at aggregate
// throughput within 15% of back-to-back execution.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/manifest.hpp"
#include "fleet/run.hpp"
#include "fleet/scheduler.hpp"
#include "md/observer.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
  std::string dir = std::string("/tmp/antmd_fleet_test_") + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Small LJ host run; seeds differentiate trajectories.
fleet::RunSpec host_spec(const std::string& name, size_t size, uint64_t seed,
                         uint64_t steps = 48) {
  fleet::RunSpec s;
  s.name = name;
  s.system = "ljfluid";
  s.size = size;
  s.seed = seed;
  s.steps = steps;
  s.dt_fs = 4.0;
  s.temperature_k = 120.0;
  s.cutoff = 7.0;
  s.snapshot_interval = 16;
  return s;
}

fleet::RunSpec machine_spec(const std::string& name, uint64_t seed,
                            uint64_t steps = 24) {
  fleet::RunSpec s = host_spec(name, 125, seed, steps);
  s.engine = "machine";
  s.nodes = 2;
  s.dt_fs = 2.0;
  s.snapshot_interval = 8;
  return s;
}

/// The run executed alone, exactly as the fleet would run it (same
/// materialization path, no fault scope). The digest it ends on is the
/// bit-identity reference for the fleet-interleaved execution.
uint64_t solo_digest(const fleet::RunSpec& spec) {
  auto driver = fleet::materialize(spec, nullptr, 1, "");
  resilience::RecoveryReport report = driver->advance(spec.steps);
  EXPECT_TRUE(report.completed) << spec.name << ": " << report.final_error;
  return fleet::state_digest(driver->state());
}

TEST(FleetManifest, ParsesSectionsDefaultsAndOverrides) {
  fleet::Manifest m = fleet::parse_manifest(
      "# a fleet\n"
      "[fleet]\n"
      "max_active = 4\n"
      "memory_budget_mb = 2\n"
      "slice_steps = 8\n"
      "threads = 2\n"
      "checkpoint_dir = /tmp/ck\n"
      "status_path = s.json\n"
      "status_interval = 3\n"
      "\n"
      "[defaults]\n"
      "system = ljfluid\n"
      "size = 125\n"
      "steps = 64\n"
      "\n"
      "[run alpha]\n"
      "priority = 2        ; trailing comment\n"
      "[run beta]\n"
      "size = 216\n"
      "fault = nan_force:10\n");
  EXPECT_EQ(m.scheduler.max_active_runs, 4u);
  EXPECT_EQ(m.scheduler.memory_budget_bytes, 2u * 1024 * 1024);
  EXPECT_EQ(m.scheduler.slice_steps, 8u);
  EXPECT_EQ(m.scheduler.threads, 2u);
  EXPECT_EQ(m.scheduler.checkpoint_dir, "/tmp/ck");
  EXPECT_EQ(m.scheduler.status_path, "s.json");
  EXPECT_EQ(m.scheduler.status_interval_slices, 3);
  ASSERT_EQ(m.runs.size(), 2u);
  EXPECT_EQ(m.runs[0].name, "alpha");
  EXPECT_EQ(m.runs[0].size, 125u);  // from [defaults]
  EXPECT_EQ(m.runs[0].priority, 2);
  EXPECT_EQ(m.runs[1].name, "beta");
  EXPECT_EQ(m.runs[1].size, 216u);  // override wins
  EXPECT_EQ(m.runs[1].steps, 64u);
  EXPECT_EQ(m.runs[1].fault, "nan_force:10");
}

TEST(FleetManifest, TyposAndStructureErrorsFailLoudly) {
  EXPECT_THROW(fleet::parse_manifest("[fleet]\nmax_actve = 4\n[run a]\n"),
               ConfigError);
  EXPECT_THROW(fleet::parse_manifest("[run a]\nstepz = 10\n"), ConfigError);
  EXPECT_THROW(fleet::parse_manifest("key = before_section\n"), ConfigError);
  EXPECT_THROW(fleet::parse_manifest("[run a]\n[defaults]\nsize = 1\n"),
               ConfigError);
  EXPECT_THROW(fleet::parse_manifest("[fleet]\nmax_active = 4\n"),
               ConfigError);  // no runs
  EXPECT_THROW(fleet::parse_manifest("[run ]\n"), ConfigError);
}

TEST(FleetAdmission, BackpressureRejectsBeyondQueueBound) {
  fleet::SchedulerConfig cfg;
  cfg.max_active_runs = 1;
  cfg.max_queued_runs = 2;
  fleet::Scheduler scheduler(cfg);
  for (int i = 0; i < 4; ++i) {
    scheduler.submit(host_spec("run" + std::to_string(i), 125, i + 1, 8));
  }
  EXPECT_EQ(scheduler.status(0).phase, fleet::RunPhase::kQueued);
  EXPECT_EQ(scheduler.status(1).phase, fleet::RunPhase::kQueued);
  EXPECT_EQ(scheduler.status(2).phase, fleet::RunPhase::kRejected);
  EXPECT_NE(scheduler.status(2).detail.find("backpressure"),
            std::string::npos);
  EXPECT_EQ(scheduler.status(3).phase, fleet::RunPhase::kRejected);
  // Rejected runs are terminal; the admitted ones still complete.
  fleet::FleetSummary summary = scheduler.run_to_completion();
  EXPECT_EQ(summary.completed, 2u);
  EXPECT_EQ(summary.rejected, 2u);
}

TEST(FleetAdmission, OversizedRunAndBadSpecAreRejectedNotFatal) {
  fleet::SchedulerConfig cfg;
  cfg.memory_budget_bytes = 64 * 1024;  // far below one LJ-125 footprint
  fleet::Scheduler scheduler(cfg);
  scheduler.submit(host_spec("whale", 125, 1));
  EXPECT_EQ(scheduler.status(0).phase, fleet::RunPhase::kRejected);
  EXPECT_NE(scheduler.status(0).detail.find("memory budget"),
            std::string::npos);

  fleet::RunSpec bad = host_spec("bad", 125, 1);
  bad.engine = "quantum";
  scheduler.submit(bad);
  EXPECT_EQ(scheduler.status(1).phase, fleet::RunPhase::kRejected);

  fleet::RunSpec bad_fault = host_spec("badfault", 125, 1);
  bad_fault.fault = "meteor_strike";
  scheduler.submit(bad_fault);
  EXPECT_EQ(scheduler.status(2).phase, fleet::RunPhase::kRejected);

  EXPECT_THROW(scheduler.submit(fleet::RunSpec{}), ConfigError);  // no name
  fleet::RunSpec dup = host_spec("whale", 125, 1);
  EXPECT_THROW(scheduler.submit(dup), ConfigError);  // duplicate name
}

TEST(FleetFairShare, SlicesAreProportionalToPriority) {
  fleet::SchedulerConfig cfg;
  cfg.max_active_runs = 2;
  cfg.slice_steps = 4;
  fleet::Scheduler scheduler(cfg);
  fleet::RunSpec heavy = host_spec("heavy", 125, 1, 400);
  heavy.priority = 3;
  scheduler.submit(heavy);
  scheduler.submit(host_spec("light", 125, 2, 400));

  // Stride scheduling is deterministic: with weights 3:1 the service
  // pattern is heavy,heavy,heavy,light repeating.
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(scheduler.pump());
  EXPECT_EQ(scheduler.status(0).slices, 6u);
  EXPECT_EQ(scheduler.status(1).slices, 2u);
}

TEST(FleetIsolation, QuarantineNeverTouchesSiblings) {
  const std::string dir = temp_dir("isolation");
  fleet::SchedulerConfig cfg;
  cfg.max_active_runs = 3;
  cfg.slice_steps = 16;
  cfg.checkpoint_dir = dir;
  fleet::Scheduler scheduler(cfg);

  fleet::RunSpec poisoned = host_spec("poisoned", 125, 9);
  poisoned.fault = "nan_force:0:-1:5";  // fires on every force evaluation
  scheduler.submit(poisoned);
  scheduler.submit(host_spec("sibling", 125, 9));  // identical physics
  fleet::RunSpec other = host_spec("other", 216, 10);
  scheduler.submit(other);

  fleet::FleetSummary summary = scheduler.run_to_completion();
  EXPECT_EQ(summary.quarantined, 1u);
  EXPECT_EQ(summary.completed, 2u);

  const fleet::RunStatus& bad = scheduler.status(0);
  EXPECT_EQ(bad.phase, fleet::RunPhase::kQuarantined);
  EXPECT_FALSE(bad.detail.empty());
  EXPECT_GT(bad.faults, 0u);
  EXPECT_LT(bad.steps_done, bad.steps_target);

  // Siblings saw zero faults and ended exactly where the solo runs end.
  const fleet::RunStatus& sib = scheduler.status(1);
  EXPECT_EQ(sib.faults, 0u);
  EXPECT_EQ(sib.final_digest, solo_digest(host_spec("solo", 125, 9)));
  EXPECT_EQ(scheduler.status(2).final_digest,
            solo_digest(host_spec("solo2", 216, 10)));
  fs::remove_all(dir);
}

TEST(FleetEviction, CheckpointRoundTripIsBitIdentical) {
  const std::string dir = temp_dir("eviction");
  fleet::SchedulerConfig cfg;
  cfg.max_active_runs = 4;
  // Roughly two LJ-125 footprints: activating more forces evictions.
  cfg.memory_budget_bytes = 320 * 1024;
  cfg.slice_steps = 16;
  cfg.checkpoint_dir = dir;
  fleet::Scheduler scheduler(cfg);

  std::vector<fleet::RunSpec> specs;
  for (int i = 0; i < 6; ++i) {
    specs.push_back(host_spec("run" + std::to_string(i), 125, 20 + i, 64));
  }
  for (const auto& s : specs) scheduler.submit(s);

  fleet::FleetSummary summary = scheduler.run_to_completion();
  EXPECT_EQ(summary.completed, 6u);
  EXPECT_GT(summary.evictions, 0u);

  uint64_t evictions = 0;
  for (const auto& s : scheduler.statuses()) {
    EXPECT_EQ(s.phase, fleet::RunPhase::kCompleted) << s.name;
    evictions += s.evictions;
  }
  EXPECT_GT(evictions, 0u);

  // Parking in a checkpoint and rehydrating must not move a single bit:
  // every run ends exactly where its never-evicted solo execution ends.
  for (size_t i = 0; i < specs.size(); ++i) {
    fleet::RunSpec solo = specs[i];
    solo.name += "-solo";
    EXPECT_EQ(scheduler.status(i).final_digest, solo_digest(solo))
        << specs[i].name;
  }
  fs::remove_all(dir);
}

TEST(FleetExecution, SharedWorkerPoolKeepsDigestsIdentical) {
  // The same four specs through a serial fleet and a threads=2 fleet
  // (every engine multiplexed over one shared TaskRuntime): digests must
  // match bit for bit — parallelism and pool sharing never leak into
  // trajectories.
  std::vector<fleet::RunSpec> specs;
  for (int i = 0; i < 4; ++i) {
    specs.push_back(host_spec("run" + std::to_string(i), 216, 40 + i, 32));
  }
  std::vector<uint64_t> digests[2];
  for (int pass = 0; pass < 2; ++pass) {
    fleet::SchedulerConfig cfg;
    cfg.max_active_runs = 4;
    cfg.slice_steps = 16;
    cfg.threads = pass == 0 ? 1 : 2;
    fleet::Scheduler scheduler(cfg);
    for (const auto& s : specs) scheduler.submit(s);
    fleet::FleetSummary summary = scheduler.run_to_completion();
    EXPECT_EQ(summary.completed, specs.size());
    for (const auto& s : scheduler.statuses()) {
      digests[pass].push_back(s.final_digest);
    }
  }
  EXPECT_EQ(digests[0], digests[1]);
}

TEST(FleetStatus, StatusFileIsMachineReadableAndCurrent) {
  const std::string dir = temp_dir("status");
  fleet::SchedulerConfig cfg;
  cfg.max_active_runs = 2;
  cfg.slice_steps = 16;
  cfg.status_path = dir + "/status.json";
  cfg.status_interval_slices = 1;
  // Not created beforehand: the scheduler must make it, or every mirror
  // write fails and clean runs report phantom faults.
  cfg.checkpoint_dir = dir + "/nested/ckpt";
  fleet::Scheduler scheduler(cfg);
  scheduler.submit(host_spec("alpha", 125, 1, 32));
  scheduler.submit(host_spec("beta", 125, 2, 32));
  scheduler.run_to_completion();
  EXPECT_EQ(scheduler.status(0).faults, 0u);
  EXPECT_EQ(scheduler.status(1).faults, 0u);

  std::ifstream in(cfg.status_path);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"schema\": \"antmd.fleet.status/v1\""),
            std::string::npos);
  EXPECT_NE(body.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(body.find("\"phase\": \"completed\""), std::string::npos);
  fs::remove_all(dir);
}

// The acceptance matrix: 256 concurrent mixed-size runs — host and
// machine engines — with deterministic per-run fault schedules (force
// poisoning, failing disks, hung nodes).  Faulted runs recover or
// quarantine without affecting siblings, and every recovered trajectory
// is bit-identical to fault-free execution.
TEST(FleetAcceptance, MixedFleet256FaultContainmentAndBitIdentity) {
  const std::string dir = temp_dir("acceptance");
  fleet::SchedulerConfig cfg;
  cfg.max_active_runs = 16;
  cfg.max_queued_runs = 300;
  cfg.slice_steps = 20;
  cfg.checkpoint_dir = dir;
  fleet::Scheduler scheduler(cfg);

  size_t expected_quarantined = 0;
  std::vector<std::pair<uint64_t, uint64_t>> twins;  // (faulted, clean)

  // 96 clean + 96 chaos twins (identical physics; the chaos twin takes one
  // transient force poisoning at a per-run deterministic step).
  for (int i = 0; i < 96; ++i) {
    const size_t size = (i % 2) ? 216 : 125;
    const uint64_t clean =
        scheduler.submit(host_spec("clean-" + std::to_string(i), size, i + 1));
    fleet::RunSpec chaos = host_spec("chaos-" + std::to_string(i), size, i + 1);
    chaos.fault = "nan_force:" + std::to_string(2 + (i % 40)) + ":1:" +
                  std::to_string(i % 100);
    twins.emplace_back(scheduler.submit(chaos), clean);
  }
  // 16 runs on a failing disk: every mirror write fails, the supervisor
  // degrades the mirror, the run completes on the in-memory ring.
  std::vector<std::pair<uint64_t, fleet::RunSpec>> io_runs;
  for (int i = 0; i < 16; ++i) {
    fleet::RunSpec spec = host_spec("io-" + std::to_string(i), 125, 200 + i);
    spec.fault = "io_write_fail:0:-1";
    io_runs.emplace_back(scheduler.submit(spec), spec);
  }
  // 16 unrecoverable runs: poisoned on every force evaluation, so the
  // retry budget exhausts and the supervisor escalates -> quarantine.
  for (int i = 0; i < 16; ++i) {
    fleet::RunSpec spec = host_spec("poison-" + std::to_string(i), 125,
                                    300 + i);
    spec.fault = "nan_force:0:-1:" + std::to_string(i);
    scheduler.submit(spec);
    ++expected_quarantined;
  }
  // 16 clean machine runs + 16 twins whose node hangs mid-run: the phase
  // watchdog trips, the node is remapped bit-exactly, the run completes.
  std::vector<std::pair<uint64_t, uint64_t>> machine_twins;
  for (int i = 0; i < 16; ++i) {
    const uint64_t clean = scheduler.submit(
        machine_spec("mclean-" + std::to_string(i), 400 + i));
    fleet::RunSpec hang = machine_spec("mhang-" + std::to_string(i), 400 + i);
    hang.fault = "node_hang:" + std::to_string(3 + (i % 12)) + ":1:" +
                 std::to_string(i % 8);
    hang.watchdog_ms = 1.0;
    machine_twins.emplace_back(scheduler.submit(hang), clean);
  }

  ASSERT_EQ(scheduler.statuses().size(), 256u);
  fleet::FleetSummary summary = scheduler.run_to_completion();

  EXPECT_EQ(summary.submitted, 256u);
  EXPECT_EQ(summary.rejected, 0u);
  EXPECT_EQ(summary.quarantined, expected_quarantined);
  EXPECT_EQ(summary.completed, 256u - expected_quarantined);

  // Terminal states only — a fleet must never leave a run hung.
  for (const auto& s : scheduler.statuses()) {
    EXPECT_TRUE(s.phase == fleet::RunPhase::kCompleted ||
                s.phase == fleet::RunPhase::kQuarantined)
        << s.name << ": " << fleet::run_phase_name(s.phase);
  }

  // Recovered chaos runs are bit-identical to their fault-free twins.
  for (auto [chaos_id, clean_id] : twins) {
    const fleet::RunStatus& chaos = scheduler.status(chaos_id);
    EXPECT_EQ(chaos.phase, fleet::RunPhase::kCompleted) << chaos.name;
    EXPECT_GT(chaos.rollbacks + chaos.restarts, 0u) << chaos.name;
    EXPECT_EQ(chaos.final_digest, scheduler.status(clean_id).final_digest)
        << chaos.name;
  }
  // Mirror-degraded runs completed with their physics untouched.
  for (const auto& [id, spec] : io_runs) {
    const fleet::RunStatus& s = scheduler.status(id);
    EXPECT_EQ(s.phase, fleet::RunPhase::kCompleted) << s.name;
    EXPECT_GT(s.faults, 0u) << s.name;
    fleet::RunSpec solo = spec;
    solo.name += "-solo";
    solo.fault.clear();
    EXPECT_EQ(s.final_digest, solo_digest(solo)) << s.name;
  }
  // Hung-node runs tripped the watchdog, remapped, and still match their
  // fault-free twins bit for bit.
  for (auto [hang_id, clean_id] : machine_twins) {
    const fleet::RunStatus& hang = scheduler.status(hang_id);
    EXPECT_EQ(hang.phase, fleet::RunPhase::kCompleted) << hang.name;
    EXPECT_GT(hang.watchdog_trips, 0u) << hang.name;
    EXPECT_GT(hang.node_remaps, 0u) << hang.name;
    EXPECT_EQ(hang.final_digest, scheduler.status(clean_id).final_digest)
        << hang.name;
  }
  // Spot-check fleet-interleaved execution against solo execution.
  for (int i : {0, 31, 95}) {
    fleet::RunSpec solo =
        host_spec("spot-" + std::to_string(i), (i % 2) ? 216 : 125, i + 1);
    EXPECT_EQ(scheduler.status(static_cast<uint64_t>(2 * i)).final_digest,
              solo_digest(solo));
  }
  for (int i : {0, 15}) {
    fleet::RunSpec solo = machine_spec("mspot-" + std::to_string(i), 400 + i);
    EXPECT_EQ(scheduler.status(machine_twins[i].second).final_digest,
              solo_digest(solo));
  }
  fs::remove_all(dir);
}

// Aggregate throughput: the same batch through the fleet (time-sliced,
// supervised, scheduled) must stay within 15% of back-to-back solo
// execution — the isolation machinery may not tax the steady state.
TEST(FleetAcceptance, ThroughputWithin15PercentOfBackToBack) {
  std::vector<fleet::RunSpec> specs;
  for (int i = 0; i < 96; ++i) {
    specs.push_back(
        host_spec("run" + std::to_string(i), (i % 2) ? 216 : 125, i + 1));
  }

  const auto solo_pass = [&specs]() {
    md::WallTimer timer;
    for (const auto& s : specs) {
      auto driver = fleet::materialize(s, nullptr, 1, "");
      resilience::RecoveryReport report = driver->advance(s.steps);
      EXPECT_TRUE(report.completed);
    }
    return timer.seconds();
  };
  const auto fleet_pass = [&specs]() {
    fleet::SchedulerConfig cfg;
    cfg.max_active_runs = 16;
    cfg.slice_steps = 24;
    fleet::Scheduler scheduler(cfg);
    md::WallTimer timer;
    for (const auto& s : specs) scheduler.submit(s);
    fleet::FleetSummary summary = scheduler.run_to_completion();
    EXPECT_EQ(summary.completed, specs.size());
    return timer.seconds();
  };

  // Wall-clock comparisons flake under ctest -j load, so take the best of
  // three attempts; the 15% bound itself stays strict (+ a small absolute
  // slack so sub-second timer noise cannot flip the verdict).
  double solo_s = 0.0;
  double fleet_s = 0.0;
  bool within_bound = false;
  for (int attempt = 0; attempt < 3 && !within_bound; ++attempt) {
    solo_s = solo_pass();
    fleet_s = fleet_pass();
    within_bound = fleet_s <= solo_s * 1.15 + 0.05;
  }
  EXPECT_TRUE(within_bound)
      << "fleet " << fleet_s << " s vs back-to-back " << solo_s << " s";
}

}  // namespace
}  // namespace antmd
