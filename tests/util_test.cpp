// Unit tests for src/util: errors, CLI parsing, tables, task graph,
// execution context.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/execution.hpp"
#include "util/table.hpp"
#include "util/task_graph.hpp"

namespace antmd {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    ANTMD_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(ANTMD_REQUIRE(true, "never shown"));
}

TEST(Cli, ParsesEqualsForm) {
  CliParser cli("prog", "test");
  cli.add_flag("steps", "n steps", 100);
  cli.add_flag("dt", "timestep", 2.5);
  const char* argv[] = {"prog", "--steps=42", "--dt=1.0"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("steps"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("dt"), 1.0);
}

TEST(Cli, ParsesSpaceForm) {
  CliParser cli("prog", "test");
  cli.add_flag("name", "a name", std::string("default"));
  const char* argv[] = {"prog", "--name", "water"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_string("name"), "water");
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "chatty", false);
  cli.add_flag("steps", "n", 7);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("steps"), 7);
}

TEST(Cli, BareBooleanFlagMeansTrue) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "chatty", false);
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

TEST(Cli, MalformedNumberThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("steps", "n", 1);
  const char* argv[] = {"prog", "--steps=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(static_cast<void>(cli.get_int("steps")), ConfigError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"system", "atoms", "ns/day"});
  t.add_row({"water-11k", "11250", Table::num(123.456, 1)});
  t.add_row({"dhfr-like", "23558", Table::num(87.1, 1)});
  std::string out = t.render();
  EXPECT_NE(out.find("water-11k"), std::string::npos);
  EXPECT_NE(out.find("123.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumAndSciFormat) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

TEST(TaskRuntime, RunsAllIndices) {
  auto rt = util::TaskRuntime::create(2);
  std::vector<std::atomic<int>> hits(100);
  rt->parallel_for(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskRuntime, PropagatesExceptions) {
  auto rt = util::TaskRuntime::create(2);
  EXPECT_THROW(rt->parallel_for(
                   10,
                   [](size_t i) {
                     if (i == 5) throw Error("boom");
                   }),
               Error);
}

TEST(TaskRuntime, ZeroCountIsNoop) {
  auto rt = util::TaskRuntime::create(1);
  EXPECT_NO_THROW(rt->parallel_for(0, [](size_t) { FAIL(); }));
}

TEST(TaskRuntime, ReusableAcrossCalls) {
  auto rt = util::TaskRuntime::create(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    rt->parallel_for(64, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(TaskRuntime, MoreLanesThanItems) {
  auto rt = util::TaskRuntime::create(8);
  std::vector<std::atomic<int>> hits(3);
  rt->parallel_for(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskRuntime, UsableAfterException) {
  auto rt = util::TaskRuntime::create(2);
  EXPECT_THROW(
      rt->parallel_for(4, [](size_t) { throw Error("first call"); }),
      Error);
  std::atomic<int> count{0};
  rt->parallel_for(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(TaskRuntime, NestedParallelForRunsInlineInOrder) {
  auto rt = util::TaskRuntime::create(4);
  std::array<std::vector<size_t>, 3> inner_order;
  rt->parallel_for(3, [&](size_t outer) {
    // Re-entering the same runtime from a task body must not deadlock; it
    // runs serially in index order on the calling lane.
    rt->parallel_for(5, [&](size_t inner) {
      EXPECT_EQ(util::TaskRuntime::current_lane(), 0u);
      inner_order[outer].push_back(inner);
    });
  });
  for (const auto& order : inner_order) {
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  }
}

TEST(TaskGraph, RespectsDependencies) {
  auto rt = util::TaskRuntime::create(4);
  for (int round = 0; round < 20; ++round) {
    util::TaskGraph g(rt);
    std::atomic<int> stage{0};
    auto a = g.add("a", [&] { stage.store(1); });
    auto b = g.add_parallel(
        "b", [] { return size_t{32}; },
        [&](size_t) { EXPECT_GE(stage.load(), 1); }, {a});
    g.add_reduction("c", [&] { stage.store(2); }, {b});
    g.run();
    EXPECT_EQ(stage.load(), 2);
  }
}

TEST(TaskGraph, IndependentTasksAllRun) {
  auto rt = util::TaskRuntime::create(4);
  util::TaskGraph g(rt);
  std::vector<std::atomic<int>> hits(16);
  std::vector<util::TaskId> roots;
  for (size_t t = 0; t < hits.size(); ++t) {
    roots.push_back(g.add("root", [&hits, t] { hits[t].fetch_add(1); }));
  }
  g.add_reduction(
      "join",
      [&] {
        for (auto& h : hits) EXPECT_EQ(h.load(), 1);
      },
      roots);
  g.run();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGraph, CountProviderResolvedAtReadyTime) {
  auto rt = util::TaskRuntime::create(2);
  util::TaskGraph g(rt);
  size_t count = 0;  // written by an upstream task, read by the provider
  size_t next = 37;
  std::atomic<size_t> ran{0};
  auto resize = g.add("resize", [&] { count = next; });
  g.add_parallel(
      "body", [&count] { return count; },
      [&](size_t) { ran.fetch_add(1); }, {resize});
  g.run();
  EXPECT_EQ(ran.load(), 37u);
  // Graphs are reusable, counts re-resolve each run, and a zero-grain
  // parallel task completes vacuously without blocking downstream tasks.
  next = 0;
  ran.store(0);
  std::atomic<int> after{0};
  g.add("after", [&] { after.fetch_add(1); });
  g.run();
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(after.load(), 1);
}

TEST(TaskGraph, SerialFallbackRunsInInsertionOrder) {
  util::TaskGraph g(nullptr);  // no runtime: serial
  std::vector<int> order;
  auto a = g.add("a", [&] { order.push_back(0); });
  g.add_parallel(
      "b", [] { return size_t{3}; },
      [&](size_t i) { order.push_back(1 + static_cast<int>(i)); }, {a});
  g.add("c", [&] { order.push_back(4); });
  g.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskGraph, ExceptionCancelsAndRethrows) {
  auto rt = util::TaskRuntime::create(2);
  util::TaskGraph g(rt);
  std::atomic<int> downstream{0};
  auto boom = g.add("boom", [] { throw Error("task failed"); });
  g.add_reduction("after", [&] { downstream.fetch_add(1); }, {boom});
  EXPECT_THROW(g.run(), Error);
  EXPECT_EQ(downstream.load(), 0);
  // Scheduling state resets cleanly: a second run reproduces the result.
  EXPECT_THROW(g.run(), Error);
}

TEST(PlanChunks, MatchesBounds) {
  auto plan = util::plan_chunks(1000, 256, 16);
  EXPECT_EQ(plan.items, 1000u);
  EXPECT_EQ(plan.chunks, 4u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(plan.chunks - 1), 1000u);
  size_t covered = 0;
  for (size_t c = 0; c < plan.chunks; ++c) {
    EXPECT_GE(plan.end(c), plan.begin(c));
    covered += plan.end(c) - plan.begin(c);
  }
  EXPECT_EQ(covered, 1000u);
}

TEST(PlanChunks, CapsAtMaxChunks) {
  auto plan = util::plan_chunks(100000, 256, 16);
  EXPECT_EQ(plan.chunks, 16u);
  EXPECT_EQ(plan.end(15), 100000u);
}

TEST(PlanChunks, SmallInputsGetOneChunk) {
  auto plan = util::plan_chunks(10, 256, 16);
  EXPECT_EQ(plan.chunks, 1u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(0), 10u);
  auto empty = util::plan_chunks(0, 256, 16);
  EXPECT_EQ(empty.chunks, 0u);
}

TEST(ExecutionContext, SerialByDefault) {
  auto ctx = ExecutionContext::create({});
  ASSERT_NE(ctx, nullptr);
  EXPECT_FALSE(ctx->parallel());
  EXPECT_EQ(ctx->threads(), 1u);
  EXPECT_TRUE(ctx->deterministic_reduction());
}

TEST(ExecutionContext, SerialRunsInIndexOrder) {
  auto ctx = ExecutionContext::create({1, true});
  std::vector<size_t> order;
  ctx->parallel_for(10, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ExecutionContext, ParallelCoversAllIndices) {
  auto ctx = ExecutionContext::create({4, true});
  EXPECT_TRUE(ctx->parallel());
  EXPECT_EQ(ctx->threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  ctx->parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContext, AutoThreadsPicksAtLeastOne) {
  auto ctx = ExecutionContext::create({0, true});
  EXPECT_GE(ctx->threads(), 1u);
  std::atomic<int> count{0};
  ctx->parallel_for(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ExecutionContext, CarriesReductionFlag) {
  auto ctx = ExecutionContext::create({2, false});
  EXPECT_FALSE(ctx->deterministic_reduction());
}

}  // namespace
}  // namespace antmd
