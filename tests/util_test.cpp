// Unit tests for src/util: errors, CLI parsing, tables, thread pool,
// execution context.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/execution.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace antmd {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    ANTMD_REQUIRE(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(ANTMD_REQUIRE(true, "never shown"));
}

TEST(Cli, ParsesEqualsForm) {
  CliParser cli("prog", "test");
  cli.add_flag("steps", "n steps", 100);
  cli.add_flag("dt", "timestep", 2.5);
  const char* argv[] = {"prog", "--steps=42", "--dt=1.0"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("steps"), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("dt"), 1.0);
}

TEST(Cli, ParsesSpaceForm) {
  CliParser cli("prog", "test");
  cli.add_flag("name", "a name", std::string("default"));
  const char* argv[] = {"prog", "--name", "water"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_string("name"), "water");
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "chatty", false);
  cli.add_flag("steps", "n", 7);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("steps"), 7);
}

TEST(Cli, BareBooleanFlagMeansTrue) {
  CliParser cli("prog", "test");
  cli.add_flag("verbose", "chatty", false);
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, UnknownFlagThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), ConfigError);
}

TEST(Cli, MalformedNumberThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("steps", "n", 1);
  const char* argv[] = {"prog", "--steps=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(static_cast<void>(cli.get_int("steps")), ConfigError);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"system", "atoms", "ns/day"});
  t.add_row({"water-11k", "11250", Table::num(123.456, 1)});
  t.add_row({"dhfr-like", "23558", Table::num(87.1, 1)});
  std::string out = t.render();
  EXPECT_NE(out.find("water-11k"), std::string::npos);
  EXPECT_NE(out.find("123.5"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, NumAndSciFormat) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10,
                   [](size_t i) {
                     if (i == 5) throw Error("boom");
                   }),
               Error);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(1);
  EXPECT_NO_THROW(pool.parallel_for(0, [](size_t) { FAIL(); }));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(64, [&](size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
    EXPECT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](size_t) { throw Error("first call"); }),
      Error);
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ExecutionContext, SerialByDefault) {
  auto ctx = ExecutionContext::create({});
  ASSERT_NE(ctx, nullptr);
  EXPECT_FALSE(ctx->parallel());
  EXPECT_EQ(ctx->threads(), 1u);
  EXPECT_TRUE(ctx->deterministic_reduction());
}

TEST(ExecutionContext, SerialRunsInIndexOrder) {
  auto ctx = ExecutionContext::create({1, true});
  std::vector<size_t> order;
  ctx->parallel_for(10, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ExecutionContext, ParallelCoversAllIndices) {
  auto ctx = ExecutionContext::create({4, true});
  EXPECT_TRUE(ctx->parallel());
  EXPECT_EQ(ctx->threads(), 4u);
  std::vector<std::atomic<int>> hits(257);
  ctx->parallel_for(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutionContext, AutoThreadsPicksAtLeastOne) {
  auto ctx = ExecutionContext::create({0, true});
  EXPECT_GE(ctx->threads(), 1u);
  std::atomic<int> count{0};
  ctx->parallel_for(8, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ExecutionContext, CarriesReductionFlag) {
  auto ctx = ExecutionContext::create({2, false});
  EXPECT_FALSE(ctx->deterministic_reduction());
}

}  // namespace
}  // namespace antmd
