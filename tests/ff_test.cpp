// Tests for force kernels: bonded terms against analytic gradients,
// tabulated nonbonded pairs, soft-core potentials, restraints, virtual
// sites, and Newton's third law / momentum conservation invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ff/bonded.hpp"
#include "ff/forcefield.hpp"
#include "ff/nonbonded.hpp"
#include "ff/restraints.hpp"
#include "ff/vsites.hpp"
#include "math/rng.hpp"
#include "math/units.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

constexpr double kFdStep = 1e-5;

/// Numerical gradient check: returns analytic minus finite-difference force
/// on atom `atom`, component `dim`, for an energy functional.
template <typename EnergyFn>
double fd_force_error(EnergyFn energy, std::vector<Vec3>& pos, size_t atom,
                      int dim, double analytic_force) {
  Vec3 saved = pos[atom];
  pos[atom][dim] = saved[dim] + kFdStep;
  double ep = energy(pos);
  pos[atom][dim] = saved[dim] - kFdStep;
  double em = energy(pos);
  pos[atom] = saved;
  double fd = -(ep - em) / (2.0 * kFdStep);
  return analytic_force - fd;
}

TEST(Bonded, BondEnergyAndForce) {
  Box box = Box::cubic(50);
  std::vector<Bond> bonds = {{0, 1, 100.0, 1.5}};
  std::vector<Vec3> pos = {{0, 0, 0}, {2.0, 0, 0}};

  ForceResult out(2);
  ff::compute_bonds(bonds, pos, box, out);
  // U = 100 (2.0-1.5)^2 = 25
  EXPECT_NEAR(out.energy.bond.value(), 25.0, 1e-6);
  // dU/dr = 2*100*0.5 = 100 pulling atoms together.
  EXPECT_NEAR(out.forces.force(0).x, 100.0, 1e-5);
  EXPECT_NEAR(out.forces.force(1).x, -100.0, 1e-5);
  EXPECT_NEAR(out.forces.force(0).y, 0.0, 1e-9);
}

TEST(Bonded, BondForceMatchesFiniteDifference) {
  Box box = Box::cubic(50);
  std::vector<Bond> bonds = {{0, 1, 73.0, 1.2}};
  std::vector<Vec3> pos = {{1.0, 2.0, 3.0}, {1.9, 2.7, 2.6}};
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(2);
    ff::compute_bonds(bonds, p, box, r);
    return r.energy.bond.value();
  };
  ForceResult out(2);
  ff::compute_bonds(bonds, pos, box, out);
  for (size_t a = 0; a < 2; ++a) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(fd_force_error(energy, pos, a, d, out.forces.force(a)[d]),
                  0.0, 1e-3);
    }
  }
}

TEST(Bonded, BondRespectsMinimumImage) {
  Box box = Box::cubic(10);
  std::vector<Bond> bonds = {{0, 1, 50.0, 1.0}};
  // Atoms on opposite faces: true separation is 1.0 through the boundary.
  std::vector<Vec3> pos = {{0.5, 5, 5}, {9.5, 5, 5}};
  ForceResult out(2);
  ff::compute_bonds(bonds, pos, box, out);
  EXPECT_NEAR(out.energy.bond.value(), 0.0, 1e-9);
}

TEST(Bonded, AngleEnergyAtEquilibriumIsZero) {
  Box box = Box::cubic(50);
  double theta0 = 109.47 * M_PI / 180.0;
  std::vector<Angle> angles = {{1, 0, 2, 55.0, theta0}};
  std::vector<Vec3> pos = {
      {0, 0, 0},
      {std::sin(theta0 / 2), 0, std::cos(theta0 / 2)},
      {-std::sin(theta0 / 2), 0, std::cos(theta0 / 2)}};
  ForceResult out(3);
  ff::compute_angles(angles, pos, box, out);
  EXPECT_NEAR(out.energy.angle.value(), 0.0, 1e-9);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(norm(out.forces.force(i)), 0.0, 1e-5);
  }
}

TEST(Bonded, AngleForceMatchesFiniteDifference) {
  Box box = Box::cubic(50);
  std::vector<Angle> angles = {{0, 1, 2, 40.0, 1.8}};
  std::vector<Vec3> pos = {{1.1, 0.2, -0.3}, {0, 0, 0}, {-0.4, 1.2, 0.5}};
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(3);
    ff::compute_angles(angles, p, box, r);
    return r.energy.angle.value();
  };
  ForceResult out(3);
  ff::compute_angles(angles, pos, box, out);
  for (size_t a = 0; a < 3; ++a) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(fd_force_error(energy, pos, a, d, out.forces.force(a)[d]),
                  0.0, 2e-3);
    }
  }
}

TEST(Bonded, AngleForcesSumToZero) {
  Box box = Box::cubic(50);
  std::vector<Angle> angles = {{0, 1, 2, 40.0, 1.9}};
  std::vector<Vec3> pos = {{1.3, 0.1, 0}, {0, 0, 0}, {-0.2, 1.4, 0.7}};
  ForceResult out(3);
  ff::compute_angles(angles, pos, box, out);
  Vec3 total = out.forces.force(0) + out.forces.force(1) + out.forces.force(2);
  EXPECT_NEAR(norm(total), 0.0, 1e-6);
}

TEST(Bonded, DihedralAngleKnownGeometries) {
  Box box = Box::cubic(50);
  // cis (phi = 0)
  EXPECT_NEAR(ff::dihedral_angle({1, 1, 0}, {1, 0, 0}, {-1, 0, 0},
                                 {-1, 1, 0}, box),
              0.0, 1e-9);
  // trans (phi = pi)
  EXPECT_NEAR(std::abs(ff::dihedral_angle({1, 1, 0}, {1, 0, 0}, {-1, 0, 0},
                                          {-1, -1, 0}, box)),
              M_PI, 1e-9);
  // +90°
  EXPECT_NEAR(ff::dihedral_angle({1, 1, 0}, {1, 0, 0}, {-1, 0, 0},
                                 {-1, 0, 1}, box),
              M_PI / 2, 1e-9);
}

TEST(Bonded, DihedralForceMatchesFiniteDifference) {
  Box box = Box::cubic(50);
  std::vector<Dihedral> dihedrals = {{0, 1, 2, 3, 1.4, 3, 0.4}};
  std::vector<Vec3> pos = {
      {1.2, 1.0, 0.1}, {1.0, 0, 0}, {-1.0, 0.2, 0}, {-1.3, 1.0, 0.8}};
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(4);
    ff::compute_dihedrals(dihedrals, p, box, r);
    return r.energy.dihedral.value();
  };
  ForceResult out(4);
  ff::compute_dihedrals(dihedrals, pos, box, out);
  for (size_t a = 0; a < 4; ++a) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_NEAR(fd_force_error(energy, pos, a, d, out.forces.force(a)[d]),
                  0.0, 2e-3);
    }
  }
}

TEST(Bonded, DihedralForcesSumToZero) {
  Box box = Box::cubic(50);
  std::vector<Dihedral> dihedrals = {{0, 1, 2, 3, 2.0, 2, 1.0}};
  std::vector<Vec3> pos = {
      {1.2, 1.0, 0.1}, {1.0, 0, 0}, {-1.0, 0.2, 0}, {-1.3, 1.0, 0.8}};
  ForceResult out(4);
  ff::compute_dihedrals(dihedrals, pos, box, out);
  Vec3 total{};
  for (size_t i = 0; i < 4; ++i) total += out.forces.force(i);
  EXPECT_NEAR(norm(total), 0.0, 1e-6);
}

class PairTableFixture : public ::testing::Test {
 protected:
  PairTableFixture() {
    type_a_ = topo_.add_type("A", 3.4, 0.24);
    type_b_ = topo_.add_type("B", 3.0, 0.10);
    topo_.add_atom(type_a_, 40.0, 0.3);
    topo_.add_atom(type_b_, 40.0, -0.3);
    model_.cutoff = 9.0;
    model_.electrostatics = ff::Electrostatics::kEwaldReal;
    model_.ewald_beta = 0.35;
  }
  Topology topo_;
  uint32_t type_a_, type_b_;
  ff::NonbondedModel model_;
};

TEST_F(PairTableFixture, LorentzBerthelotCombination) {
  ff::PairTableSet tables(topo_, model_);
  // Cross pair: sigma = 3.2, eps = sqrt(0.024) — minimum at 2^(1/6) sigma.
  double sigma = 3.2;
  double eps = std::sqrt(0.24 * 0.10);
  double rmin = std::pow(2.0, 1.0 / 6.0) * sigma;
  auto eval = tables.vdw_table(type_a_, type_b_).evaluate(rmin * rmin);
  // Shifted potential: U(rmin) = -eps - U_shift, force ~ 0.
  EXPECT_NEAR(eval.force_over_r, 0.0, 1e-3);
  EXPECT_LT(eval.energy, -eps * 0.9);
}

TEST_F(PairTableFixture, PairForceMatchesAnalyticLJPlusEwald) {
  ff::PairTableSet tables(topo_, model_);
  std::vector<Vec3> pos = {{0, 0, 0}, {4.1, 0, 0}};
  Box box = Box::cubic(40);
  std::vector<ff::PairEntry> pairs = {{0, 1}};
  ForceResult out(2);
  ff::compute_pairs(pairs, tables, topo_.type_ids(), topo_.charges(), pos,
                    box, out);

  double r = 4.1, sigma = 3.2, eps = std::sqrt(0.024);
  double s6 = std::pow(sigma / r, 6);
  double f_lj = 4.0 * eps * (12.0 * s6 * s6 - 6.0 * s6) / r;
  double qq = -0.09;
  double beta = model_.ewald_beta;
  double f_coul = units::kCoulomb * qq *
                  (std::erfc(beta * r) / (r * r) +
                   2.0 * beta / std::sqrt(M_PI) * std::exp(-beta * beta * r *
                                                           r) / r);
  double f_total = f_lj + f_coul;
  EXPECT_NEAR(out.forces.force(0).x, -f_total, 5e-3 * std::abs(f_total) + 1e-4);
  EXPECT_NEAR(out.forces.force(1).x, f_total, 5e-3 * std::abs(f_total) + 1e-4);
}

TEST_F(PairTableFixture, PairsBeyondCutoffAreZero) {
  ff::PairTableSet tables(topo_, model_);
  std::vector<Vec3> pos = {{0, 0, 0}, {9.5, 0, 0}};
  Box box = Box::cubic(40);
  std::vector<ff::PairEntry> pairs = {{0, 1}};
  ForceResult out(2);
  ff::compute_pairs(pairs, tables, topo_.type_ids(), topo_.charges(), pos,
                    box, out);
  EXPECT_EQ(out.energy.vdw.value(), 0.0);
  EXPECT_EQ(norm(out.forces.force(0)), 0.0);
}

TEST_F(PairTableFixture, CustomTableOverridesLJ) {
  ff::PairTableSet tables(topo_, model_);
  // Replace A-B with a pure harmonic well centred at 5 Å.
  auto table = RadialTable::from_potential(
      [](double r) { return 2.0 * (r - 5.0) * (r - 5.0); },
      [](double r) { return 4.0 * (r - 5.0); }, 0.5, 9.0, 1024, false);
  tables.set_custom_table(type_a_, type_b_, std::move(table));
  EXPECT_TRUE(tables.is_custom(type_a_, type_b_));
  EXPECT_FALSE(tables.is_custom(type_a_, type_a_));

  std::vector<Vec3> pos = {{0, 0, 0}, {6.0, 0, 0}};
  Box box = Box::cubic(40);
  std::vector<ff::PairEntry> pairs = {{0, 1}};
  // Zero the charges so only the custom table acts.
  std::vector<double> charges = {0.0, 0.0};
  ForceResult out(2);
  ff::compute_pairs(pairs, tables, topo_.type_ids(), charges, pos, box, out);
  EXPECT_NEAR(out.energy.vdw.value(), 2.0, 1e-3);
  EXPECT_NEAR(out.forces.force(0).x, 4.0, 1e-2);  // pulled toward r=5
}

TEST_F(PairTableFixture, VdwScaleScalesEnergy) {
  ff::PairTableSet tables(topo_, model_);
  std::vector<Vec3> pos = {{0, 0, 0}, {3.8, 0, 0}};
  Box box = Box::cubic(40);
  std::vector<ff::PairEntry> pairs = {{0, 1}};
  std::vector<double> charges = {0.0, 0.0};
  ForceResult full(2), half(2);
  ff::compute_pairs(pairs, tables, topo_.type_ids(), charges, pos, box, full);
  ff::compute_pairs(pairs, tables, topo_.type_ids(), charges, pos, box, half,
                    0.5, 1.0);
  EXPECT_NEAR(half.energy.vdw.value(), 0.5 * full.energy.vdw.value(), 1e-9);
}

TEST(SoftCore, EndpointsMatchLJAndZero) {
  ff::NonbondedModel model;
  model.cutoff = 9.0;
  model.electrostatics = ff::Electrostatics::kNone;
  auto lj = ff::make_lj_table(3.4, 0.24, model);
  auto sc1 = ff::make_softcore_lj_table(3.4, 0.24, 1.0, 0.5, model);
  auto sc0 = ff::make_softcore_lj_table(3.4, 0.24, 0.0, 0.5, model);
  for (double r = 3.0; r < 8.5; r += 0.25) {
    EXPECT_NEAR(sc1.evaluate(r * r).energy, lj.evaluate(r * r).energy, 1e-4)
        << r;
    EXPECT_NEAR(sc0.evaluate(r * r).energy, 0.0, 1e-12) << r;
  }
}

TEST(SoftCore, FiniteAtContact) {
  ff::NonbondedModel model;
  model.cutoff = 9.0;
  model.table_inner = 0.3;
  auto sc = ff::make_softcore_lj_table(3.4, 0.24, 0.5, 0.5, model);
  auto eval = sc.evaluate(0.3 * 0.3);
  // Soft-core removes the r→0 singularity: energy stays modest.
  EXPECT_LT(std::abs(eval.energy), 50.0);
}

TEST(SoftCore, MonotoneInLambdaAtShortRange) {
  ff::NonbondedModel model;
  model.cutoff = 9.0;
  double prev = 0.0;
  for (double lambda : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    auto sc = ff::make_softcore_lj_table(3.4, 0.24, lambda, 0.5, model);
    double e = sc.evaluate(3.0 * 3.0).energy;  // repulsive region
    EXPECT_GE(e, prev - 1e-9) << lambda;
    prev = e;
  }
}

TEST(Restraints, PositionRestraintFlatBottom) {
  Box box = Box::cubic(30);
  std::vector<ff::PositionRestraint> r = {{0, Vec3{5, 5, 5}, 10.0, 1.0}};
  // Inside the flat region: no force.
  std::vector<Vec3> pos = {{5.5, 5, 5}};
  ForceResult out(1);
  ff::compute_position_restraints(r, pos, box, out);
  EXPECT_EQ(out.energy.restraint.value(), 0.0);
  EXPECT_EQ(norm(out.forces.force(0)), 0.0);
  // Outside: harmonic in the excess distance.
  pos[0] = {8, 5, 5};  // distance 3, excess 2
  out.reset(1);
  ff::compute_position_restraints(r, pos, box, out);
  EXPECT_NEAR(out.energy.restraint.value(), 40.0, 1e-6);
  EXPECT_NEAR(out.forces.force(0).x, -40.0, 1e-4);
}

TEST(Restraints, DistanceRestraintFlatRegion) {
  Box box = Box::cubic(30);
  std::vector<ff::DistanceRestraint> r = {{0, 1, 5.0, 4.0, 0.5}};
  std::vector<Vec3> pos = {{0, 0, 0}, {4.3, 0, 0}};  // within flat ±0.5
  ForceResult out(2);
  ff::compute_distance_restraints(r, pos, box, out);
  EXPECT_EQ(out.energy.restraint.value(), 0.0);
  pos[1] = {5.5, 0, 0};  // dev = 1.5, excess = 1.0
  out.reset(2);
  ff::compute_distance_restraints(r, pos, box, out);
  EXPECT_NEAR(out.energy.restraint.value(), 5.0, 1e-6);
}

TEST(Restraints, SteeredSpringMovesTarget) {
  Box box = Box::cubic(30);
  std::vector<ff::SteeredSpring> s = {{0, 1, 3.0, 4.0, 0.5}};
  std::vector<Vec3> pos = {{0, 0, 0}, {4.0, 0, 0}};
  ForceResult out(2);
  // At t=0 target is 4.0: no force.
  auto ext0 = ff::compute_steered_springs(s, pos, box, 0.0, out);
  EXPECT_NEAR(ext0[0], 0.0, 1e-12);
  EXPECT_NEAR(out.energy.restraint.value(), 0.0, 1e-9);
  // At t=2 target is 5.0: spring stretched by -1.
  out.reset(2);
  auto ext2 = ff::compute_steered_springs(s, pos, box, 2.0, out);
  EXPECT_NEAR(ext2[0], -1.0, 1e-12);
  EXPECT_NEAR(out.energy.restraint.value(), 3.0, 1e-6);
  // Force pushes the pair apart toward the target distance.
  EXPECT_LT(out.forces.force(0).x, 0.0);
  EXPECT_GT(out.forces.force(1).x, 0.0);
}

TEST(Restraints, ExternalFieldForcesByCharge) {
  std::vector<double> charges = {1.0, -2.0, 0.0};
  std::vector<Vec3> pos = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  ff::ExternalField field{Vec3{0, 0, 3.0}};
  ForceResult out(3);
  ff::compute_external_field(field, charges, pos, out);
  EXPECT_NEAR(out.forces.force(0).z, 3.0, 1e-6);
  EXPECT_NEAR(out.forces.force(1).z, -6.0, 1e-6);
  EXPECT_EQ(norm(out.forces.force(2)), 0.0);
}

TEST(VirtualSites, ConstructionLinear2) {
  Box box = Box::cubic(30);
  VirtualSite v;
  v.site = 2;
  v.parents[0] = 0;
  v.parents[1] = 1;
  v.kind = VirtualSite::Kind::kLinear2;
  v.a = 0.25;
  std::vector<Vec3> pos = {{1, 1, 1}, {5, 1, 1}, {0, 0, 0}};
  ff::construct_virtual_sites(std::vector<VirtualSite>{v}, pos, box);
  EXPECT_NEAR(pos[2].x, 2.0, 1e-12);
  EXPECT_NEAR(pos[2].y, 1.0, 1e-12);
}

TEST(VirtualSites, ForceSpreadingConservesTotal) {
  Box box = Box::cubic(30);
  VirtualSite v;
  v.site = 3;
  v.parents[0] = 0;
  v.parents[1] = 1;
  v.parents[2] = 2;
  v.kind = VirtualSite::Kind::kPlanar3;
  v.a = 0.128;
  v.b = 0.128;
  std::vector<Vec3> pos = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.2, 0.2, 0}};
  FixedForceArray forces(4);
  forces.add(3, Vec3{10.0, -4.0, 2.5});
  auto before = forces.quanta(3);
  ff::spread_virtual_site_forces(std::vector<VirtualSite>{v}, pos, box,
                                 forces);
  // Site force cleared, total conserved exactly in quanta.
  auto site_after = forces.quanta(3);
  EXPECT_EQ(site_after[0], 0);
  std::array<int64_t, 3> total{0, 0, 0};
  for (size_t i = 0; i < 3; ++i) {
    auto q = forces.quanta(i);
    total[0] += q[0]; total[1] += q[1]; total[2] += q[2];
  }
  EXPECT_EQ(total, before);
}

TEST(VirtualSites, TorqueFreeForCentralForce) {
  // A force along the line from the site toward a distant attractor should
  // produce the same net force after spreading (momentum) — checked above —
  // and parents must receive weights (1-a-b, a, b).
  Box box = Box::cubic(30);
  VirtualSite v;
  v.site = 2;
  v.parents[0] = 0;
  v.parents[1] = 1;
  v.kind = VirtualSite::Kind::kLinear2;
  v.a = 0.3;
  std::vector<Vec3> pos = {{0, 0, 0}, {1, 0, 0}, {0.3, 0, 0}};
  FixedForceArray forces(3);
  forces.add(2, Vec3{1.0, 0, 0});
  ff::spread_virtual_site_forces(std::vector<VirtualSite>{v}, pos, box,
                                 forces);
  EXPECT_NEAR(forces.force(0).x, 0.7, 1e-5);
  EXPECT_NEAR(forces.force(1).x, 0.3, 1e-5);
}

TEST(ForceField, ComputeAllOnWaterRunsAndIsFinite) {
  auto spec = build_water_box(27, WaterModel::kFlexible3Site);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  ForceField field(spec.topology, model);
  field.on_box_changed(spec.box);

  // Build a naive all-pairs list within cutoff.
  std::vector<ff::PairEntry> pairs;
  for (uint32_t i = 0; i < spec.topology.atom_count(); ++i) {
    for (uint32_t j = i + 1; j < spec.topology.atom_count(); ++j) {
      if (spec.topology.is_excluded(i, j)) continue;
      if (spec.box.distance2(spec.positions[i], spec.positions[j]) <
          model.cutoff * model.cutoff) {
        pairs.push_back({i, j});
      }
    }
  }
  ForceResult out(spec.topology.atom_count());
  field.compute_all(spec.positions, spec.box, 0.0, pairs, out);
  EXPECT_TRUE(std::isfinite(out.energy.total()));
  // Neutral system at liquid density: electrostatics should be cohesive.
  EXPECT_LT(out.energy.coulomb_real.value() +
                out.energy.coulomb_kspace.value() +
                out.energy.coulomb_self.value(),
            0.0);
  // Forces finite everywhere.
  for (size_t i = 0; i < spec.topology.atom_count(); ++i) {
    EXPECT_TRUE(std::isfinite(norm(out.forces.force(i))));
  }
}

TEST(ForceField, SteeredSpringRegistry) {
  auto spec = build_dimer_in_solvent(64, 5.0);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  size_t idx = field.add_steered_spring(
      {spec.tagged[0], spec.tagged[1], 2.0, 5.0, 0.1});
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(field.steered_springs().size(), 1u);
  EXPECT_THROW(field.add_steered_spring({9999, 0, 1.0, 1.0, 0.0}), Error);
}

}  // namespace
}  // namespace antmd
