// Tests for the extended functional forms and supporting machinery:
// Morse bonds, Urey–Bradley, harmonic impropers, dihedral biasing, torsion
// metadynamics, the functional distributed FFT, transport analysis, and
// the run-config parser.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/transport.hpp"
#include "ff/bias.hpp"
#include "ff/bonded.hpp"
#include "ff/forcefield.hpp"
#include "fft/distributed.hpp"
#include "io/config.hpp"
#include "math/rng.hpp"
#include "md/simulation.hpp"
#include "sampling/torsion_meta.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

constexpr double kFd = 1e-5;

template <typename EnergyFn>
void expect_gradients_match(EnergyFn energy, std::vector<Vec3>& pos,
                            const FixedForceArray& forces, double tol) {
  for (size_t a = 0; a < pos.size(); ++a) {
    for (int d = 0; d < 3; ++d) {
      Vec3 saved = pos[a];
      pos[a][d] = saved[d] + kFd;
      double ep = energy(pos);
      pos[a][d] = saved[d] - kFd;
      double em = energy(pos);
      pos[a] = saved;
      double fd = -(ep - em) / (2 * kFd);
      EXPECT_NEAR(forces.force(a)[d], fd, tol) << "atom " << a << " dim "
                                               << d;
    }
  }
}

TEST(MorseBond, EnergyAtMinimumAndDissociation) {
  Box box = Box::cubic(50);
  std::vector<MorseBond> bonds = {{0, 1, 5.0, 1.5, 2.0}};
  // At r = r0: zero energy and force.
  std::vector<Vec3> pos = {{0, 0, 0}, {2.0, 0, 0}};
  ForceResult out(2);
  ff::compute_morse_bonds(bonds, pos, box, out);
  EXPECT_NEAR(out.energy.bond.value(), 0.0, 1e-9);
  EXPECT_NEAR(norm(out.forces.force(0)), 0.0, 1e-6);
  // Far away: energy approaches the well depth D.
  pos[1] = {12.0, 0, 0};
  out.reset(2);
  ff::compute_morse_bonds(bonds, pos, box, out);
  EXPECT_NEAR(out.energy.bond.value(), 5.0, 1e-4);
}

TEST(MorseBond, ForceMatchesFiniteDifference) {
  Box box = Box::cubic(50);
  std::vector<MorseBond> bonds = {{0, 1, 4.0, 1.2, 1.8}};
  std::vector<Vec3> pos = {{0.3, -0.2, 0.5}, {2.1, 0.9, 0.1}};
  ForceResult out(2);
  ff::compute_morse_bonds(bonds, pos, box, out);
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(2);
    ff::compute_morse_bonds(bonds, p, box, r);
    return r.energy.bond.value();
  };
  expect_gradients_match(energy, pos, out.forces, 2e-4);
}

TEST(UreyBradley, ActsAsOneThreeSpring) {
  Box box = Box::cubic(50);
  std::vector<UreyBradley> terms = {{0, 2, 20.0, 3.0}};
  std::vector<Vec3> pos = {{0, 0, 0}, {1.5, 1.0, 0}, {3.5, 0, 0}};
  ForceResult out(3);
  ff::compute_urey_bradleys(terms, pos, box, out);
  // U = 20 (3.5 - 3)² = 5; middle atom untouched.
  EXPECT_NEAR(out.energy.angle.value(), 5.0, 1e-6);
  EXPECT_EQ(norm(out.forces.force(1)), 0.0);
  // Stretched beyond s0: atom 0 is pulled toward atom 2 (+x).
  EXPECT_GT(out.forces.force(0).x, 0.0);
  EXPECT_LT(out.forces.force(2).x, 0.0);
}

TEST(UreyBradley, ForceDirectionWhenStretched) {
  Box box = Box::cubic(50);
  std::vector<UreyBradley> terms = {{0, 1, 10.0, 2.0}};
  std::vector<Vec3> pos = {{0, 0, 0}, {3.0, 0, 0}};  // stretched by 1
  ForceResult out(2);
  ff::compute_urey_bradleys(terms, pos, box, out);
  EXPECT_GT(out.forces.force(0).x, 0.0);   // pulled toward partner
  EXPECT_LT(out.forces.force(1).x, 0.0);
}

TEST(Improper, RestoresPlanarity) {
  Box box = Box::cubic(50);
  std::vector<Improper> imps = {{0, 1, 2, 3, 15.0, 0.0}};
  // Planar configuration: phi = 0, no force.
  std::vector<Vec3> pos = {{1, 1, 0}, {1, 0, 0}, {-1, 0, 0}, {-1, 1, 0}};
  ForceResult out(4);
  ff::compute_impropers(imps, pos, box, out);
  EXPECT_NEAR(out.energy.dihedral.value(), 0.0, 1e-9);
  // Out-of-plane: energy grows, FD matches.
  pos[3] = {-1, 0.9, 0.5};
  out.reset(4);
  ff::compute_impropers(imps, pos, box, out);
  EXPECT_GT(out.energy.dihedral.value(), 0.01);
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(4);
    ff::compute_impropers(imps, p, box, r);
    return r.energy.dihedral.value();
  };
  expect_gradients_match(energy, pos, out.forces, 2e-3);
}

TEST(Improper, AngleDifferenceWraps) {
  Box box = Box::cubic(50);
  // phi0 near +pi and actual phi near -pi: wrapped difference is small.
  std::vector<Improper> imps = {{0, 1, 2, 3, 10.0, M_PI - 0.05}};
  std::vector<Vec3> pos = {{1, 1, 0}, {1, 0, 0}, {-1, 0, 0},
                           {-1, -1, 0.1}};  // phi ≈ -pi
  ForceResult out(4);
  ff::compute_impropers(imps, pos, box, out);
  EXPECT_LT(out.energy.dihedral.value(), 1.0);  // not ~10 (2π)² ≈ 400
}

TEST(DihedralBias, ForceMatchesFiniteDifference) {
  Box box = Box::cubic(50);
  std::vector<ff::DihedralBias> biases(1);
  biases[0].i = 0;
  biases[0].j = 1;
  biases[0].k = 2;
  biases[0].l = 3;
  biases[0].potential = [](double phi) -> std::pair<double, double> {
    return {1.7 * (1.0 + std::cos(2.0 * phi - 0.3)),
            -1.7 * 2.0 * std::sin(2.0 * phi - 0.3)};
  };
  std::vector<Vec3> pos = {
      {1.2, 1.0, 0.1}, {1.0, 0, 0}, {-1.0, 0.2, 0}, {-1.3, 1.0, 0.8}};
  ForceResult out(4);
  ff::compute_dihedral_biases(biases, pos, box, out);
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(4);
    ff::compute_dihedral_biases(biases, p, box, r);
    return r.energy.restraint.value();
  };
  expect_gradients_match(energy, pos, out.forces, 2e-3);
}

TEST(TorsionMeta, DepositsPeriodicHills) {
  auto spec = build_polymer_in_solvent(8, 125);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 150.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 150.0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  sampling::TorsionMetaConfig mc;
  mc.deposit_interval = 15;
  mc.initial_height = 0.3;
  sampling::TorsionMetadynamics meta(sim, 0, 1, 2, 3, mc);
  meta.run(300);
  EXPECT_GT(meta.hill_count(), 10u);
  // The bias is 2π-periodic by construction.
  EXPECT_NEAR(meta.bias(-M_PI + 0.01), meta.bias(M_PI + 0.01), 1e-9);
  auto fes = meta.free_energy(36);
  EXPECT_EQ(fes.size(), 36u);
  double fmin = 1e300;
  for (const auto& [phi, f] : fes) fmin = std::min(fmin, f);
  EXPECT_NEAR(fmin, 0.0, 1e-9);
}

TEST(DistributedFft, BitwiseIdenticalToSerial) {
  SequentialRng rng(3);
  for (size_t ranks : {1u, 2u, 4u, 8u}) {
    Grid3D serial(16, 8, 16);
    for (auto& v : serial.raw()) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    Grid3D dist = serial;

    fft3d_forward(serial);
    DistributedFft3d fft(16, 8, 16, ranks);
    auto log = fft.forward(dist);

    for (size_t i = 0; i < serial.raw().size(); ++i) {
      EXPECT_EQ(serial.raw()[i], dist.raw()[i]) << "ranks=" << ranks;
    }
    if (ranks > 1) {
      EXPECT_GT(log.bytes, 0.0);
      EXPECT_EQ(log.messages, 2 * ranks * (ranks - 1));
      EXPECT_EQ(log.transposes, 2u);
    } else {
      EXPECT_EQ(log.messages, 0u);
    }
  }
}

TEST(DistributedFft, RoundTripAndInverse) {
  SequentialRng rng(7);
  Grid3D grid(8, 8, 8);
  for (auto& v : grid.raw()) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto orig = grid.raw();
  DistributedFft3d fft(8, 8, 8, 4);
  fft.forward(grid);
  fft.inverse(grid);
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_NEAR(grid.raw()[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(grid.raw()[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(DistributedFft, RejectsIndivisibleRanks) {
  EXPECT_THROW(DistributedFft3d(8, 8, 8, 3), Error);
}

TEST(Transport, BallisticParticleMsdIsQuadratic) {
  // One free particle moving at constant velocity: MSD(lag) = |v|² t².
  analysis::TransportAccumulator acc({0}, 0.5);
  Box box = Box::cubic(100);
  Vec3 v{1.0, -2.0, 0.5};
  std::vector<Vec3> vel = {v};
  for (int f = 0; f < 30; ++f) {
    std::vector<Vec3> pos = {Vec3{5, 5, 5} + (0.5 * f) * v};
    acc.add_frame(pos, vel, box);
  }
  auto msd = acc.msd(10);
  for (size_t lag = 0; lag <= 10; ++lag) {
    double t = 0.5 * static_cast<double>(lag);
    EXPECT_NEAR(msd[lag], norm2(v) * t * t, 1e-9) << lag;
  }
  // VACF of constant velocity is exactly 1 at all lags.
  auto c = acc.vacf(10);
  for (double ci : c) EXPECT_NEAR(ci, 1.0, 1e-12);
}

TEST(Transport, UnwrapsThroughPeriodicBoundary) {
  analysis::TransportAccumulator acc({0}, 1.0);
  Box box = Box::cubic(10);
  std::vector<Vec3> vel = {{1, 0, 0}};
  // Particle crosses the wall: 9 -> wrapped 1 (true displacement 2).
  acc.add_frame(std::vector<Vec3>{{9, 5, 5}}, vel, box);
  acc.add_frame(std::vector<Vec3>{{1, 5, 5}}, vel, box);
  auto msd = acc.msd(1);
  EXPECT_NEAR(msd[1], 4.0, 1e-9);  // (2 Å)²
}

TEST(Transport, DiffusionOfLjFluidIsPositiveAndConsistent) {
  auto spec = build_lj_fluid(125, 0.018, 3);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 160.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 160.0;
  cfg.thermostat.gamma_per_ps = 2.0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(200);

  std::vector<uint32_t> all(125);
  for (uint32_t i = 0; i < 125; ++i) all[i] = i;
  analysis::TransportAccumulator acc(all, 5 * sim.dt_internal());
  for (int f = 0; f < 80; ++f) {
    sim.run(5);
    acc.add_frame(sim.state().positions, sim.state().velocities,
                  sim.state().box);
  }
  double d_e = acc.diffusion_einstein(40, 10);
  double d_gk = acc.diffusion_green_kubo(40);
  EXPECT_GT(d_e, 0.0);
  EXPECT_GT(d_gk, 0.0);
  // Same order of magnitude (short trajectories: loose factor).
  EXPECT_LT(std::abs(std::log10(d_e / d_gk)), 1.0);
}

TEST(RunConfigTest, ParsesTypesAndComments) {
  auto cfg = io::RunConfig::from_string(
      "# a comment\n"
      "system = water   # trailing comment\n"
      "steps=250\n"
      "dt_fs = 2.5\n"
      "verbose = true\n"
      "\n");
  EXPECT_EQ(cfg.require_string("system"), "water");
  EXPECT_EQ(cfg.get_int("steps", 0), 250);
  EXPECT_DOUBLE_EQ(cfg.get_double("dt_fs", 0), 2.5);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_EQ(cfg.get_string("missing", "fallback"), "fallback");
}

TEST(RunConfigTest, ErrorsOnBadInput) {
  EXPECT_THROW(io::RunConfig::from_string("not a key value line\n"), Error);
  EXPECT_THROW(io::RunConfig::from_string("a=1\na=2\n"), Error);
  auto cfg = io::RunConfig::from_string("steps = abc\n");
  EXPECT_THROW(static_cast<void>(cfg.get_int("steps", 0)), Error);
  EXPECT_THROW(static_cast<void>(cfg.require_string("nope")), Error);
}

TEST(ForceFieldForms, NewTermsFlowThroughComputeBonded) {
  Topology topo;
  uint32_t c = topo.add_type("C", 3.5, 0.1);
  for (int i = 0; i < 4; ++i) topo.add_atom(c, 12.0, 0.0);
  topo.add_morse_bond(0, 1, 4.0, 1.2, 1.8);
  topo.add_urey_bradley(0, 2, 10.0, 3.0);
  topo.add_improper(0, 1, 2, 3, 5.0, 0.0);
  topo.add_molecule(0, 4, "X");
  topo.build_exclusions_from_bonds();
  topo.validate();

  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(topo, model);
  std::vector<Vec3> pos = {{0, 0, 0}, {1.9, 0, 0}, {3.1, 0.4, 0},
                           {4.0, 1.0, 0.6}};
  Box box = Box::cubic(30);
  ForceResult out(4);
  field.compute_bonded(pos, box, 0.0, out);
  EXPECT_GT(out.energy.bond.value(), 0.0);      // Morse contributes
  EXPECT_GT(out.energy.angle.value(), 0.0);     // UB contributes
  EXPECT_GE(out.energy.dihedral.value(), 0.0);  // improper contributes
  // Morse 1-2 exclusion derived.
  EXPECT_TRUE(topo.is_excluded(0, 1));
}

}  // namespace
}  // namespace antmd
