// Tests for the MD engine: neighbor lists, constraints, thermostats,
// barostats, and integration-level invariants (energy conservation,
// temperature control, constraint maintenance).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <set>

#include "ff/forcefield.hpp"
#include "obs/metrics.hpp"
#include "math/units.hpp"
#include "md/constraints.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "md/state.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

using md::NeighborList;
using md::Simulation;
using md::SimulationConfig;

TEST(NeighborListTest, FindsExactlyTheBrutForcePairs) {
  auto spec = build_lj_fluid(216, 0.021, 3);
  double cutoff = 8.0, skin = 1.0;
  NeighborList list(spec.topology, cutoff, skin);
  list.build(spec.positions, spec.box);

  std::set<std::pair<uint32_t, uint32_t>> brute;
  double reach2 = (cutoff + skin) * (cutoff + skin);
  for (uint32_t i = 0; i < 216; ++i) {
    for (uint32_t j = i + 1; j < 216; ++j) {
      if (spec.box.distance2(spec.positions[i], spec.positions[j]) < reach2) {
        brute.insert({i, j});
      }
    }
  }
  std::set<std::pair<uint32_t, uint32_t>> found;
  for (const auto& p : list.pairs()) found.insert({p.i, p.j});
  EXPECT_EQ(found, brute);
}

TEST(NeighborListTest, PairsAreSortedAndUnique) {
  auto spec = build_lj_fluid(343, 0.021, 5);
  NeighborList list(spec.topology, 8.0, 1.5);
  list.build(spec.positions, spec.box);
  const auto& pairs = list.pairs();
  for (size_t k = 0; k + 1 < pairs.size(); ++k) {
    bool ordered = pairs[k].i < pairs[k + 1].i ||
                   (pairs[k].i == pairs[k + 1].i &&
                    pairs[k].j < pairs[k + 1].j);
    EXPECT_TRUE(ordered) << k;
  }
  for (const auto& p : pairs) EXPECT_LT(p.i, p.j);
}

TEST(NeighborListTest, RespectsExclusions) {
  auto spec = build_water_box(125, WaterModel::kRigid3Site);
  NeighborList list(spec.topology, 6.0, 1.0);
  list.build(spec.positions, spec.box);
  for (const auto& p : list.pairs()) {
    EXPECT_FALSE(spec.topology.is_excluded(p.i, p.j));
  }
}

TEST(NeighborListTest, SkinDelaysRebuild) {
  auto spec = build_lj_fluid(125, 0.021, 7);
  NeighborList list(spec.topology, 7.0, 2.0);
  list.build(spec.positions, spec.box);
  EXPECT_EQ(list.build_count(), 1u);

  // Tiny displacements: no rebuild.
  auto moved = spec.positions;
  for (auto& p : moved) p += Vec3{0.1, 0.0, 0.0};
  EXPECT_FALSE(list.update(moved, spec.box));
  EXPECT_EQ(list.build_count(), 1u);

  // Move one atom beyond skin/2.
  moved[3] += Vec3{1.5, 0, 0};
  EXPECT_TRUE(list.update(moved, spec.box));
  EXPECT_EQ(list.build_count(), 2u);
}

// Regression for the skin-check fast path: the raw-displacement early-out
// plus hot-atom cache must leave the rebuild DECISION identical to the
// plain exact half-skin loop, while the md.neighbor.* counters show the
// checks actually ran through the new path.
TEST(NeighborListTest, SkinCheckEarlyOutKeepsRebuildDecision) {
  obs::ScopedTelemetry telemetry(true);
  auto& checks =
      obs::MetricsRegistry::global().counter("md.neighbor.skin_check.count");
  auto& hot_hits =
      obs::MetricsRegistry::global().counter("md.neighbor.skin_check.hot_hit");
  auto& rebuilds =
      obs::MetricsRegistry::global().counter("md.neighbor.rebuild.count");

  auto spec = build_lj_fluid(125, 0.021, 7);
  const double skin = 2.0;
  NeighborList list(spec.topology, 7.0, skin);
  list.build(spec.positions, spec.box);

  const uint64_t checks0 = checks.value();
  const uint64_t rebuilds0 = rebuilds.value();

  // Drift atoms with a seeded walk; shadow the decision with the exact
  // min-image half-skin test against our own copy of the reference frame.
  SequentialRng rng(41);
  auto pos = spec.positions;
  auto ref = pos;
  const double limit2 = 0.25 * skin * skin;
  uint64_t expected_rebuilds = 0;
  for (int step = 0; step < 60; ++step) {
    for (auto& p : pos) {
      p += Vec3{rng.uniform(-0.12, 0.12), rng.uniform(-0.12, 0.12),
                rng.uniform(-0.12, 0.12)};
    }
    bool expected = false;
    for (size_t i = 0; i < pos.size(); ++i) {
      if (spec.box.distance2(pos[i], ref[i]) > limit2) {
        expected = true;
        break;
      }
    }
    EXPECT_EQ(list.update(pos, spec.box), expected) << "step " << step;
    if (expected) {
      ref = pos;
      ++expected_rebuilds;
    }
  }
  EXPECT_GT(expected_rebuilds, 0u) << "walk never tripped the skin";
  EXPECT_EQ(rebuilds.value() - rebuilds0, expected_rebuilds);
  EXPECT_EQ(checks.value() - checks0, 60u);

  // The atom that trips the check keeps drifting, so consecutive positive
  // checks on the same atom go through the O(1) hot-atom cache.
  const uint64_t hot0 = hot_hits.value();
  for (int k = 0; k < 4; ++k) {
    pos[3] += Vec3{1.5, 0, 0};
    EXPECT_TRUE(list.update(pos, spec.box));
  }
  EXPECT_GE(hot_hits.value() - hot0, 3u);
}

// The blocked cluster-pair list is a re-layout of the flat pair list: the
// tile masks must decode to EXACTLY the same {i, j} set, padding slots must
// never carry mask bits, and the bookkeeping (real_pairs, fill ratio,
// shift codes) must be consistent.
TEST(NeighborListTest, ClusterTilesEncodeExactlyTheFlatPairs) {
  auto spec = build_lj_fluid(343, 0.021, 5);
  NeighborList list(spec.topology, 8.0, 1.5, /*cluster_mode=*/true);
  list.build(spec.positions, spec.box);
  const auto& cl = list.clusters();

  ASSERT_EQ(cl.atoms.size(), cl.cluster_count() * cl.width);
  ASSERT_EQ(cl.slot_types.size(), cl.atoms.size());
  ASSERT_EQ(cl.slot_charges.size(), cl.atoms.size());

  std::set<std::pair<uint32_t, uint32_t>> flat;
  for (const auto& p : list.pairs()) flat.insert({p.i, p.j});

  std::set<std::pair<uint32_t, uint32_t>> decoded;
  size_t bits_total = 0;
  for (const auto& e : cl.entries) {
    // The i-side slot base never exceeds the j-group's last slot (the lower
    // slot of each pair takes the i side).
    ASSERT_LE(e.ci * cl.width, e.cj * ff::kClusterJWidth + 3);
    ASSERT_LT(e.shift, 27) << "shift code out of range";
    for (uint64_t m = e.mask; m != 0; m &= m - 1) {
      const unsigned bit = static_cast<unsigned>(std::countr_zero(m));
      const uint32_t i = cl.atoms[e.ci * cl.width + (bit >> 2)];
      const uint32_t j = cl.atoms[e.cj * ff::kClusterJWidth + (bit & 3)];
      ASSERT_NE(i, ff::kPadAtom) << "mask bit touches a padding slot";
      ASSERT_NE(j, ff::kPadAtom) << "mask bit touches a padding slot";
      decoded.insert({std::min(i, j), std::max(i, j)});
      ++bits_total;
    }
  }
  EXPECT_EQ(decoded, flat);
  EXPECT_EQ(bits_total, flat.size()) << "a pair appears in two tiles";
  EXPECT_EQ(cl.real_pairs, flat.size());
  EXPECT_GT(cl.fill_ratio(), 0.0);
  EXPECT_LE(cl.fill_ratio(), 1.0);
}

TEST(NeighborListTest, RejectsCutoffLargerThanHalfBox) {
  auto spec = build_lj_fluid(27, 0.021, 1);
  NeighborList list(spec.topology, spec.box.min_edge(), 1.0);
  EXPECT_THROW(list.build(spec.positions, spec.box), Error);
}

TEST(Constraints, ShakeRestoresBondLengths) {
  auto spec = build_water_box(8, WaterModel::kRigid3Site);
  md::ConstraintSolver solver(spec.topology);
  EXPECT_FALSE(solver.empty());

  // Perturb all positions, then project back.
  auto before = spec.positions;
  auto perturbed = spec.positions;
  SequentialRng rng(3);
  for (auto& p : perturbed) {
    p += Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
              rng.uniform(-0.05, 0.05)};
  }
  std::vector<Vec3> velocities(perturbed.size(), Vec3{});
  auto stats = solver.apply_positions(before, perturbed, velocities, 0.0,
                                      spec.box);
  EXPECT_LT(stats.max_violation, 1e-7);
  EXPECT_LT(solver.max_violation(perturbed, spec.box), 1e-7);
}

TEST(Constraints, RattleRemovesRelativeVelocity) {
  auto spec = build_water_box(8, WaterModel::kRigid3Site);
  md::ConstraintSolver solver(spec.topology);
  std::vector<Vec3> velocities(spec.positions.size());
  SequentialRng rng(9);
  for (auto& v : velocities) {
    v = Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  solver.apply_velocities(spec.positions, velocities, spec.box);
  for (const auto& c : spec.topology.constraints()) {
    Vec3 d = spec.box.min_image(spec.positions[c.i], spec.positions[c.j]);
    Vec3 dv = velocities[c.i] - velocities[c.j];
    EXPECT_NEAR(dot(d, dv), 0.0, 1e-6);
  }
}

TEST(StateTest, InitVelocitiesHitTargetTemperature) {
  auto spec = build_lj_fluid(216, 0.021, 11);
  State state;
  state.positions = spec.positions;
  state.box = spec.box;
  md::init_velocities(spec.topology, 250.0, 42, state);
  EXPECT_NEAR(md::temperature(spec.topology, state), 250.0, 1e-9);
  // COM momentum is zero.
  Vec3 p{};
  for (size_t i = 0; i < 216; ++i) {
    p += spec.topology.masses()[i] * state.velocities[i];
  }
  EXPECT_NEAR(norm(p), 0.0, 1e-9);
}

TEST(StateTest, InitVelocitiesDeterministicInSeed) {
  auto spec = build_lj_fluid(64, 0.021, 2);
  State a, b;
  a.positions = b.positions = spec.positions;
  a.box = b.box = spec.box;
  md::init_velocities(spec.topology, 300.0, 7, a);
  md::init_velocities(spec.topology, 300.0, 7, b);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.velocities[i], b.velocities[i]);
  }
}

SimulationConfig nve_config(double dt_fs = 2.0) {
  SimulationConfig cfg;
  cfg.dt_fs = dt_fs;
  cfg.neighbor_skin = 1.0;
  cfg.thermostat.kind = md::ThermostatKind::kNone;
  cfg.init_temperature_k = 120.0;
  cfg.com_removal_interval = 0;
  return cfg;
}

TEST(SimulationTest, LjFluidNveConservesEnergy) {
  auto spec = build_lj_fluid(125, 0.021, 4);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  Simulation sim(field, spec.positions, spec.box, nve_config(4.0));

  sim.run(50);  // settle the lattice
  double e0 = sim.potential_energy() + sim.kinetic_energy();
  sim.run(300);
  double e1 = sim.potential_energy() + sim.kinetic_energy();
  double scale = std::abs(sim.kinetic_energy()) + 1.0;
  EXPECT_NEAR(e1, e0, 0.02 * scale) << "NVE drift too large";
}

TEST(SimulationTest, FlexibleWaterNveIsStableWithSmallTimestep) {
  auto spec = build_water_box(125, WaterModel::kFlexible3Site);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;
  ForceField field(spec.topology, model);
  auto cfg = nve_config(0.5);  // flexible OH needs a small dt
  cfg.init_temperature_k = 150.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(30);
  double e0 = sim.potential_energy() + sim.kinetic_energy();
  sim.run(200);
  double e1 = sim.potential_energy() + sim.kinetic_energy();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_NEAR(e1, e0, 0.03 * (std::abs(e0) + 10.0));
}

TEST(SimulationTest, RigidWaterKeepsConstraintsUnderDynamics) {
  auto spec = build_water_box(125, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;
  ForceField field(spec.topology, model);
  auto cfg = nve_config(2.0);
  cfg.init_temperature_k = 250.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(100);
  md::ConstraintSolver check(spec.topology);
  EXPECT_LT(check.max_violation(sim.state().positions, sim.state().box),
            1e-6);
}

TEST(SimulationTest, BerendsenDrivesTemperatureToTarget) {
  auto spec = build_lj_fluid(125, 0.021, 8);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 50.0;
  cfg.thermostat.kind = md::ThermostatKind::kBerendsen;
  cfg.thermostat.temperature_k = 180.0;
  cfg.thermostat.tau_fs = 200.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(600);
  // Average over a window to smooth fluctuations.
  double t_sum = 0;
  const int window = 100;
  for (int i = 0; i < window; ++i) {
    sim.step();
    t_sum += sim.temperature();
  }
  EXPECT_NEAR(t_sum / window, 180.0, 30.0);
}

TEST(SimulationTest, LangevinSamplesCanonicalTemperature) {
  auto spec = build_lj_fluid(125, 0.021, 13);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 300.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 140.0;
  cfg.thermostat.gamma_per_ps = 5.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(500);
  double t_sum = 0;
  const int window = 200;
  for (int i = 0; i < window; ++i) {
    sim.step();
    t_sum += sim.temperature();
  }
  EXPECT_NEAR(t_sum / window, 140.0, 20.0);
}

TEST(SimulationTest, NoseHooverConservesExtendedEnergy) {
  auto spec = build_lj_fluid(64, 0.021, 17);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.com_removal_interval = 0;
  cfg.thermostat.kind = md::ThermostatKind::kNoseHoover;
  cfg.thermostat.temperature_k = 120.0;
  cfg.thermostat.tau_fs = 100.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(50);
  double c0 = sim.conserved_quantity();
  sim.run(400);
  double c1 = sim.conserved_quantity();
  EXPECT_NEAR(c1, c0, 0.05 * (std::abs(c0) + 10.0));
}

TEST(SimulationTest, KspaceIntervalCachingStaysStable) {
  auto spec = build_water_box(125, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;
  ForceField field(spec.topology, model);
  auto cfg = nve_config(2.0);
  cfg.kspace_interval = 4;  // RESPA-style slow-force reuse
  cfg.init_temperature_k = 200.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(200);
  EXPECT_TRUE(std::isfinite(sim.potential_energy()));
  EXPECT_LT(sim.temperature(), 2000.0);  // no blow-up
}

TEST(SimulationTest, MonteCarloBarostatEquilibratesPressure) {
  auto spec = build_lj_fluid(125, 0.030, 23);  // compressed start
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 130.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 130.0;
  cfg.thermostat.gamma_per_ps = 5.0;
  cfg.barostat.kind = md::BarostatKind::kMonteCarlo;
  cfg.barostat.pressure_atm = 1.0;
  cfg.barostat.interval = 20;
  cfg.barostat.temperature_k = 130.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  double v0 = sim.state().box.volume();
  sim.run(400);
  double v1 = sim.state().box.volume();
  // Compressed liquid under 1 atm should expand.
  EXPECT_GT(v1, v0 * 1.01);
  EXPECT_TRUE(std::isfinite(sim.potential_energy()));
}

TEST(SimulationTest, VirtualSiteWaterRunsStably) {
  auto spec = build_water_box(64, WaterModel::kRigid4Site);
  ff::NonbondedModel model;
  model.cutoff = 5.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;
  ForceField field(spec.topology, model);
  auto cfg = nve_config(2.0);
  cfg.init_temperature_k = 150.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(100);
  EXPECT_TRUE(std::isfinite(sim.potential_energy()));
  // M sites remain where construction puts them: 0.15 Å from O.
  const auto& pos = sim.state().positions;
  for (const auto& v : spec.topology.virtual_sites()) {
    double d = norm(sim.state().box.min_image(pos[v.site],
                                              pos[v.parents[0]]));
    EXPECT_NEAR(d, 0.15, 0.02);
  }
}

TEST(SimulationTest, EvaluatePotentialMatchesCurrentEnergy) {
  auto spec = build_lj_fluid(64, 0.021, 29);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  Simulation sim(field, spec.positions, spec.box, nve_config());
  double direct = sim.evaluate_potential(sim.state().positions,
                                         sim.state().box);
  EXPECT_NEAR(direct, sim.potential_energy(), 1e-6);
}

TEST(SimulationTest, SteeredSpringDoesWorkOnDimer) {
  auto spec = build_dimer_in_solvent(125, 5.0, 31);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  // Pull the dimer apart at 0.01 Å per internal time unit.
  field.add_steered_spring({spec.tagged[0], spec.tagged[1], 10.0, 5.0, 0.05});
  SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 120.0;
  Simulation sim(field, spec.positions, spec.box, cfg);
  double d0 = norm(sim.state().box.min_image(
      sim.state().positions[spec.tagged[0]],
      sim.state().positions[spec.tagged[1]]));
  sim.run(500);
  double d1 = norm(sim.state().box.min_image(
      sim.state().positions[spec.tagged[0]],
      sim.state().positions[spec.tagged[1]]));
  EXPECT_GT(d1, d0 + 0.5);  // the moving anchor dragged them apart
}

}  // namespace
}  // namespace antmd
