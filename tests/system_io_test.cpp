// Round-trip tests for the text system format.
#include <gtest/gtest.h>

#include <cstdio>

#include "io/system_io.hpp"
#include "sampling/common.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::io {
namespace {

void expect_equivalent(const SystemSpec& a, const SystemSpec& b) {
  const Topology& ta = a.topology;
  const Topology& tb = b.topology;
  ASSERT_EQ(ta.atom_count(), tb.atom_count());
  ASSERT_EQ(ta.type_count(), tb.type_count());
  for (size_t i = 0; i < ta.atom_count(); ++i) {
    EXPECT_EQ(ta.type_ids()[i], tb.type_ids()[i]);
    EXPECT_EQ(ta.masses()[i], tb.masses()[i]);
    EXPECT_EQ(ta.charges()[i], tb.charges()[i]);
    EXPECT_EQ(a.positions[i], b.positions[i]);  // exact: %.17g round trip
  }
  EXPECT_EQ(ta.bonds().size(), tb.bonds().size());
  EXPECT_EQ(ta.angles().size(), tb.angles().size());
  EXPECT_EQ(ta.dihedrals().size(), tb.dihedrals().size());
  EXPECT_EQ(ta.constraints().size(), tb.constraints().size());
  EXPECT_EQ(ta.virtual_sites().size(), tb.virtual_sites().size());
  EXPECT_EQ(ta.go_contacts().size(), tb.go_contacts().size());
  EXPECT_EQ(ta.molecules().size(), tb.molecules().size());
  EXPECT_EQ(ta.excluded_pairs(), tb.excluded_pairs());
  EXPECT_EQ(a.tagged, b.tagged);
  EXPECT_EQ(a.box.edges(), b.box.edges());
}

TEST(SystemIo, WaterRoundTripsExactly) {
  auto spec = build_water_box(27, WaterModel::kRigid4Site);
  auto restored = system_from_string(system_to_string(spec));
  expect_equivalent(spec, restored);
}

TEST(SystemIo, GoProteinRoundTripsWithReference) {
  auto spec = build_go_protein(16, 1.2);
  auto restored = system_from_string(system_to_string(spec));
  expect_equivalent(spec, restored);
  ASSERT_EQ(restored.reference.size(), spec.reference.size());
  for (size_t i = 0; i < spec.reference.size(); ++i) {
    EXPECT_EQ(restored.reference[i], spec.reference[i]);
  }
}

TEST(SystemIo, PolymerEnergyIdenticalAfterRoundTrip) {
  auto spec = build_polymer_in_solvent(10, 64);
  auto restored = system_from_string(system_to_string(spec));

  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField fa(spec.topology, model);
  ForceField fb(restored.topology, model);
  double ua = sampling::potential_energy(fa, spec.positions, spec.box);
  double ub = sampling::potential_energy(fb, restored.positions,
                                         restored.box);
  EXPECT_EQ(ua, ub);  // bitwise: same inputs through the same kernels
}

TEST(SystemIo, FileRoundTrip) {
  auto spec = build_lj_fluid(64, 0.021, 5);
  std::string path = "/tmp/antmd_system_io_test.sys";
  save_system(spec, path);
  auto restored = load_system(path);
  std::remove(path.c_str());
  expect_equivalent(spec, restored);
}

TEST(SystemIo, RejectsGarbage) {
  EXPECT_THROW(system_from_string("not a system file"), Error);
  EXPECT_THROW(system_from_string("antmd-system v1\nname x\nbox 1 2"),
               Error);
  EXPECT_THROW(load_system("/nonexistent/file.sys"), Error);
}

TEST(SystemIo, MoleculeNamesSurvive) {
  auto spec = build_lipid_bilayer(2, 1);
  auto restored = system_from_string(system_to_string(spec));
  ASSERT_EQ(restored.topology.molecules().size(),
            spec.topology.molecules().size());
  for (size_t m = 0; m < spec.topology.molecules().size(); ++m) {
    EXPECT_EQ(restored.topology.molecules()[m].name,
              spec.topology.molecules()[m].name);
  }
}

}  // namespace
}  // namespace antmd::io
