// Tests for topology construction, exclusions, validation, and the
// synthetic system builders.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "topo/builders.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

Topology make_butane_like() {
  // 4 beads in a chain: exercises 1-2/1-3/1-4 derivation.
  Topology t;
  uint32_t c = t.add_type("C", 3.5, 0.1);
  for (int i = 0; i < 4; ++i) t.add_atom(c, 12.0, 0.0);
  t.add_bond(0, 1, 100, 1.5);
  t.add_bond(1, 2, 100, 1.5);
  t.add_bond(2, 3, 100, 1.5);
  t.add_molecule(0, 4, "BUT");
  return t;
}

TEST(Topology, ExclusionDerivation) {
  Topology t = make_butane_like();
  t.build_exclusions_from_bonds();
  // 1-2 and 1-3 excluded.
  EXPECT_TRUE(t.is_excluded(0, 1));
  EXPECT_TRUE(t.is_excluded(1, 2));
  EXPECT_TRUE(t.is_excluded(0, 2));
  EXPECT_TRUE(t.is_excluded(1, 3));
  // 1-4 is also excluded from the main loop but listed as a scaled pair.
  EXPECT_TRUE(t.is_excluded(0, 3));
  ASSERT_EQ(t.pairs14().size(), 1u);
  EXPECT_EQ(t.pairs14()[0].i, 0u);
  EXPECT_EQ(t.pairs14()[0].j, 3u);
}

TEST(Topology, ExclusionBuildIsIdempotent) {
  Topology t = make_butane_like();
  t.build_exclusions_from_bonds();
  size_t n14 = t.pairs14().size();
  t.build_exclusions_from_bonds();
  EXPECT_EQ(t.pairs14().size(), n14);
}

TEST(Topology, ExcludedPairsSortedUnique) {
  Topology t = make_butane_like();
  t.build_exclusions_from_bonds();
  auto pairs = t.excluded_pairs();
  std::set<std::pair<uint32_t, uint32_t>> set(pairs.begin(), pairs.end());
  EXPECT_EQ(set.size(), pairs.size());
  for (const auto& [i, j] : pairs) EXPECT_LT(i, j);
}

TEST(Topology, ValidateCatchesBadIndices) {
  Topology t;
  uint32_t c = t.add_type("C", 3.5, 0.1);
  t.add_atom(c, 12.0, 0.0);
  t.add_bond(0, 5, 100, 1.5);  // atom 5 does not exist
  EXPECT_THROW(t.validate(), Error);
}

TEST(Topology, ValidateCatchesMasslessNonVsite) {
  Topology t;
  uint32_t c = t.add_type("C", 3.5, 0.1);
  t.add_atom(c, 0.0, 0.0);  // massless, no virtual site entry
  EXPECT_THROW(t.validate(), Error);
}

TEST(Topology, ValidateCatchesConstrainedVsite) {
  Topology t;
  uint32_t c = t.add_type("C", 3.5, 0.1);
  t.add_atom(c, 12.0, 0.0);
  t.add_atom(c, 12.0, 0.0);
  t.add_atom(c, 0.0, 0.0);
  VirtualSite v;
  v.site = 2;
  v.parents[0] = 0;
  v.parents[1] = 1;
  v.kind = VirtualSite::Kind::kLinear2;
  v.a = 0.5;
  t.add_virtual_site(v);
  t.add_constraint(0, 2, 1.0);  // constraining a virtual site is invalid
  EXPECT_THROW(t.validate(), Error);
}

TEST(Topology, DegreesOfFreedom) {
  Topology t = make_butane_like();
  // 4 atoms * 3 - 0 constraints - 3 COM = 9
  EXPECT_EQ(t.degrees_of_freedom(), 9u);
  t.add_constraint(0, 1, 1.5);
  EXPECT_EQ(t.degrees_of_freedom(), 8u);
}

TEST(Topology, TotalCharge) {
  Topology t;
  uint32_t c = t.add_type("Q", 1.0, 0.0);
  t.add_atom(c, 1.0, 0.5);
  t.add_atom(c, 1.0, -0.2);
  EXPECT_NEAR(t.total_charge(), 0.3, 1e-12);
}

TEST(Builders, WaterBoxFlexibleCounts) {
  auto spec = build_water_box(64, WaterModel::kFlexible3Site);
  const Topology& t = spec.topology;
  EXPECT_EQ(t.molecules().size(), 64u);
  EXPECT_EQ(t.atom_count(), 192u);
  EXPECT_EQ(t.bonds().size(), 128u);
  EXPECT_EQ(t.angles().size(), 64u);
  EXPECT_EQ(t.constraints().size(), 0u);
  EXPECT_NEAR(t.total_charge(), 0.0, 1e-9);
  EXPECT_EQ(spec.positions.size(), t.atom_count());
}

TEST(Builders, WaterBoxRigidUsesConstraints) {
  auto spec = build_water_box(27, WaterModel::kRigid3Site);
  const Topology& t = spec.topology;
  EXPECT_EQ(t.bonds().size(), 0u);
  EXPECT_EQ(t.constraints().size(), 27u * 3);
  // DoF: 3*81 - 81 constraints - 3 = 159
  EXPECT_EQ(t.degrees_of_freedom(), 159u);
}

TEST(Builders, WaterBox4SiteHasVirtualSites) {
  auto spec = build_water_box(27, WaterModel::kRigid4Site);
  const Topology& t = spec.topology;
  EXPECT_EQ(t.atom_count(), 27u * 4);
  EXPECT_EQ(t.virtual_sites().size(), 27u);
  EXPECT_NEAR(t.total_charge(), 0.0, 1e-9);
  // O carries no charge in the 4-site model; M carries it.
  EXPECT_EQ(t.charges()[0], 0.0);
  EXPECT_NE(t.charges()[3], 0.0);
  // M site should be ~0.15 Å from O initially.
  double d = norm(spec.positions[3] - spec.positions[0]);
  EXPECT_NEAR(d, 0.15, 0.05);
}

TEST(Builders, WaterDensityIsLiquidLike) {
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  double density = static_cast<double>(spec.topology.molecules().size()) /
                   spec.box.volume();
  EXPECT_NEAR(density, 0.0334, 0.001);
}

TEST(Builders, WaterGeometryIsCorrect) {
  auto spec = build_water_box(27, WaterModel::kRigid3Site);
  for (size_t m = 0; m < 27; ++m) {
    size_t o = 3 * m;
    double d1 = norm(spec.positions[o + 1] - spec.positions[o]);
    double d2 = norm(spec.positions[o + 2] - spec.positions[o]);
    EXPECT_NEAR(d1, 1.0, 1e-9);
    EXPECT_NEAR(d2, 1.0, 1e-9);
    double cosang = dot(normalized(spec.positions[o + 1] - spec.positions[o]),
                        normalized(spec.positions[o + 2] - spec.positions[o]));
    EXPECT_NEAR(std::acos(cosang) * 180.0 / M_PI, 109.47, 0.01);
  }
}

TEST(Builders, LjFluidDensity) {
  auto spec = build_lj_fluid(512, 0.021);
  EXPECT_EQ(spec.topology.atom_count(), 512u);
  double density = 512.0 / spec.box.volume();
  EXPECT_NEAR(density, 0.021, 1e-6);
}

TEST(Builders, LjFluidNoOverlaps) {
  auto spec = build_lj_fluid(343, 0.021);
  double min_d2 = 1e18;
  for (size_t i = 0; i < 343; ++i) {
    for (size_t j = i + 1; j < 343; ++j) {
      min_d2 = std::min(min_d2,
                        spec.box.distance2(spec.positions[i],
                                           spec.positions[j]));
    }
  }
  EXPECT_GT(std::sqrt(min_d2), 2.0);  // jitter is bounded by ±0.2 Å
}

TEST(Builders, PolymerConnectivity) {
  auto spec = build_polymer_in_solvent(12, 216);
  const Topology& t = spec.topology;
  EXPECT_EQ(t.bonds().size(), 11u);
  EXPECT_EQ(t.angles().size(), 10u);
  EXPECT_EQ(t.dihedrals().size(), 9u);
  ASSERT_EQ(spec.tagged.size(), 2u);
  EXPECT_EQ(spec.tagged[0], 0u);
  EXPECT_EQ(spec.tagged[1], 11u);
  // Chain has excluded 1-2 neighbours.
  EXPECT_TRUE(t.is_excluded(0, 1));
  EXPECT_FALSE(t.is_excluded(0, 5));
}

TEST(Builders, IonicSolutionIsNeutralAndTagged) {
  auto spec = build_ionic_solution(125, 4);
  EXPECT_NEAR(spec.topology.total_charge(), 0.0, 1e-9);
  EXPECT_EQ(spec.tagged.size(), 8u);  // 4 Na + 4 Cl
  EXPECT_EQ(spec.topology.molecules().size(), 125u);  // 8 ions + 117 waters
}

TEST(Builders, DimerTaggedPairSeparation) {
  auto spec = build_dimer_in_solvent(216, 6.0);
  ASSERT_EQ(spec.tagged.size(), 2u);
  double d = norm(spec.positions[spec.tagged[0]] -
                  spec.positions[spec.tagged[1]]);
  EXPECT_NEAR(d, 6.0, 1e-9);
}

TEST(Builders, DimerRejectsOversizedSeparation) {
  EXPECT_THROW(build_dimer_in_solvent(64, 1000.0), Error);
}

}  // namespace
}  // namespace antmd
