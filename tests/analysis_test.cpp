// Tests for analysis: statistics, autocorrelation, WHAM on a known
// landscape, Zwanzig/BAR on Gaussian work distributions, RDF normalization.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/free_energy.hpp"
#include "analysis/stats.hpp"
#include "math/rng.hpp"
#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd::analysis {
namespace {

TEST(Stats, MeanAndVariance) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
  EXPECT_DOUBLE_EQ(variance(x), 2.5);
  EXPECT_THROW(static_cast<void>(mean(std::vector<double>{})), Error);
}

TEST(Stats, BlockStderrMatchesIidTheory) {
  SequentialRng rng(5);
  std::vector<double> x(20000);
  for (auto& v : x) v = rng.gaussian();
  // IID: stderr ≈ 1/sqrt(N).
  double se = block_stderr(x, 20);
  EXPECT_NEAR(se, 1.0 / std::sqrt(20000.0), 0.004);
}

TEST(Stats, AutocorrelationOfAr1Process) {
  // x_{t+1} = ρ x_t + noise has ACF(τ) = ρ^τ.
  SequentialRng rng(7);
  const double rho = 0.8;
  std::vector<double> x(50000);
  x[0] = 0;
  for (size_t i = 1; i < x.size(); ++i) {
    x[i] = rho * x[i - 1] + std::sqrt(1 - rho * rho) * rng.gaussian();
  }
  EXPECT_NEAR(autocorrelation(x, 1), rho, 0.02);
  EXPECT_NEAR(autocorrelation(x, 2), rho * rho, 0.03);
  // tau_int = (1+ρ)/(1-ρ) = 9 for AR(1).
  EXPECT_NEAR(integrated_autocorrelation_time(x), 9.0, 1.5);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i - 7.0);
  }
  auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
}

TEST(Stats, HistogramDensityIntegratesToOne) {
  Histogram h(0, 10, 50);
  SequentialRng rng(3);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0, 10));
  double integral = 0;
  for (size_t b = 0; b < h.bins(); ++b) integral += h.density(b) * 0.2;
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Wham, RecoversHarmonicFreeEnergy) {
  // True PMF F(ξ) = a (ξ - ξ0)²; sample each umbrella window from the
  // exact biased Gaussian.
  const double a = 2.0, xi0 = 5.0, temperature = 300.0;
  const double kt = units::kBoltzmann * temperature;
  SequentialRng rng(11);

  std::vector<UmbrellaWindow> windows;
  for (double c = 3.0; c <= 7.01; c += 0.5) {
    UmbrellaWindow w;
    w.center = c;
    w.k = 8.0;
    // Biased distribution: exp(-(a(ξ-ξ0)² + k(ξ-c)²)/kT) is Gaussian with
    // mean (a ξ0 + k c)/(a + k) and variance kT/(2(a+k)).
    double m = (a * xi0 + w.k * c) / (a + w.k);
    double s = std::sqrt(kt / (2.0 * (a + w.k)));
    for (int i = 0; i < 4000; ++i) w.samples.push_back(m + s * rng.gaussian());
    windows.push_back(std::move(w));
  }

  auto result = wham(windows, temperature, 3.0, 7.0, 40);
  // Compare against the analytic PMF (min-shifted).
  for (size_t b = 0; b < result.xi.size(); ++b) {
    double xi = result.xi[b];
    if (xi < 3.8 || xi > 6.2) continue;  // edges are noisy
    double expected = a * (xi - xi0) * (xi - xi0);
    EXPECT_NEAR(result.free_energy[b], expected, 0.15)
        << "xi=" << xi;
  }
}

TEST(Zwanzig, GaussianWorkDistribution) {
  // For ΔU ~ N(μ, σ²): ΔF = μ - σ²/(2kT).
  const double temperature = 300.0;
  const double kt = units::kBoltzmann * temperature;
  const double mu = 1.0, sigma = 0.4;
  SequentialRng rng(13);
  std::vector<double> du(200000);
  for (auto& v : du) v = mu + sigma * rng.gaussian();
  double expected = mu - sigma * sigma / (2 * kt);
  EXPECT_NEAR(zwanzig_delta_f(du, temperature), expected, 0.02);
}

TEST(Bar, ConsistentGaussianPairRecoversDeltaF) {
  // Forward ΔU ~ N(ΔF + σ²/2kT·kT ... construct symmetric case: if
  // forward ~ N(m, s²) then a thermodynamically consistent reverse is
  // ~ N(-m + s²/kT·... Use the standard identity: for Gaussian forward
  // work with mean m and variance s², ΔF = m - s²/2kT, and the reverse
  // work distribution is N(-(m - s²/kT·kT)...). Simplest: generate both
  // from the known ΔF.
  const double temperature = 300.0;
  const double kt = units::kBoltzmann * temperature;
  const double df = 0.7;
  const double s = 0.5;
  // Gaussian forward: mean = df + s²/(2kT); reverse: mean = -df + s²/(2kT).
  SequentialRng rng(17);
  std::vector<double> fwd(100000), rev(100000);
  for (auto& v : fwd) v = df + s * s / (2 * kt) + s * rng.gaussian();
  for (auto& v : rev) v = -df + s * s / (2 * kt) + s * rng.gaussian();
  EXPECT_NEAR(bar_delta_f(fwd, rev, temperature), df, 0.01);
}

TEST(Bar, AgreesWithZwanzigOnSmallPerturbation) {
  const double temperature = 300.0;
  SequentialRng rng(19);
  std::vector<double> fwd(50000), rev(50000);
  for (auto& v : fwd) v = 0.05 + 0.05 * rng.gaussian();
  for (auto& v : rev) v = -0.05 + 0.05 * rng.gaussian();
  double z = zwanzig_delta_f(fwd, temperature);
  double b = bar_delta_f(fwd, rev, temperature);
  EXPECT_NEAR(z, b, 0.01);
}

TEST(Rdf, IdealGasIsFlatAtOne) {
  SequentialRng rng(23);
  Box box = Box::cubic(20);
  std::vector<Vec3> pos(400);
  std::vector<uint32_t> ids(400);
  for (size_t i = 0; i < pos.size(); ++i) {
    pos[i] = Vec3{rng.uniform(0, 20), rng.uniform(0, 20), rng.uniform(0, 20)};
    ids[i] = static_cast<uint32_t>(i);
  }
  auto g = rdf(pos, ids, ids, box, 8.0, 16);
  // Skip the first bins (few counts); the rest hover near 1.
  for (size_t b = 4; b < g.size(); ++b) {
    EXPECT_NEAR(g[b].second, 1.0, 0.25) << "r=" << g[b].first;
  }
}

}  // namespace
}  // namespace antmd::analysis
