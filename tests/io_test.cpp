// Tests for trajectory/CSV output and bit-exact checkpoint round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/trajectory.hpp"
#include "math/rng.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::io {
namespace {

std::string temp_path(const std::string& name) {
  return std::string("/tmp/antmd_io_test_") + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Xyz, WritesFramesWithHeaders) {
  auto spec = build_lj_fluid(27, 0.021, 1);
  State state;
  state.positions = spec.positions;
  state.velocities.assign(27, Vec3{});
  state.box = spec.box;
  state.step = 42;

  std::string path = temp_path("frame.xyz");
  {
    XyzWriter writer(path, spec.topology);
    writer.write_frame(state);
    state.step = 43;
    writer.write_frame(state);
    EXPECT_EQ(writer.frames_written(), 2u);
  }
  std::string content = slurp(path);
  EXPECT_NE(content.find("27\n"), std::string::npos);
  EXPECT_NE(content.find("step=42"), std::string::npos);
  EXPECT_NE(content.find("step=43"), std::string::npos);
  EXPECT_NE(content.find("AR "), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, HeaderAndRows) {
  std::string path = temp_path("data.csv");
  {
    CsvWriter writer(path, {"step", "energy", "temp"});
    writer.write_row(std::vector<double>{1, -503.25, 298.7});
    writer.write_row(std::vector<double>{2, -504.75, 301.2});
  }
  std::string content = slurp(path);
  EXPECT_NE(content.find("step,energy,temp"), std::string::npos);
  EXPECT_NE(content.find("-503.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RowWidthEnforced) {
  std::string path = temp_path("bad.csv");
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.write_row(std::vector<double>{1.0}), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, BitExactRoundTrip) {
  SequentialRng rng(3);
  State state;
  state.box = Box(12.5, 17.25, 9.75);
  state.time = 123.456789;
  state.step = 987654321;
  for (int i = 0; i < 100; ++i) {
    state.positions.push_back(Vec3{rng.uniform(-50, 50),
                                   rng.uniform(-50, 50),
                                   rng.uniform(-50, 50)});
    state.velocities.push_back(Vec3{rng.gaussian(), rng.gaussian(),
                                    rng.gaussian()});
  }

  std::string path = temp_path("ckpt.bin");
  save_checkpoint(path, state);
  State loaded = load_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.step, state.step);
  EXPECT_EQ(loaded.time, state.time);
  EXPECT_EQ(loaded.box.edges(), state.box.edges());
  ASSERT_EQ(loaded.positions.size(), state.positions.size());
  for (size_t i = 0; i < state.positions.size(); ++i) {
    EXPECT_EQ(loaded.positions[i], state.positions[i]);
    EXPECT_EQ(loaded.velocities[i], state.velocities[i]);
  }
}

TEST(Checkpoint, RejectsGarbageFile) {
  std::string path = temp_path("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/path/x.bin"), IoError);
}

TEST(Checkpoint, TruncatedFileThrows) {
  State state;
  state.box = Box(10, 10, 10);
  state.positions.assign(8, Vec3{1, 2, 3});
  state.velocities.assign(8, Vec3{});

  std::string path = temp_path("truncated.bin");
  save_checkpoint(path, state);
  std::string full = slurp(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(path), IoError);
  std::remove(path.c_str());
}

TEST(Xyz, UnwritablePathThrowsIoError) {
  auto spec = build_lj_fluid(8, 0.021, 1);
  EXPECT_THROW(XyzWriter("/nonexistent/dir/frames.xyz", spec.topology),
               IoError);
}

TEST(Csv, UnwritablePathThrowsIoError) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/data.csv", {"a", "b"}), IoError);
}

}  // namespace
}  // namespace antmd::io
