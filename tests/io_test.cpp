// Tests for trajectory/CSV output and bit-exact checkpoint round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ff/nonbonded_cluster.hpp"
#include "io/checkpoint.hpp"
#include "io/config.hpp"
#include "io/trajectory.hpp"
#include "math/rng.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd::io {
namespace {

std::string temp_path(const std::string& name) {
  return std::string("/tmp/antmd_io_test_") + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Xyz, WritesFramesWithHeaders) {
  auto spec = build_lj_fluid(27, 0.021, 1);
  State state;
  state.positions = spec.positions;
  state.velocities.assign(27, Vec3{});
  state.box = spec.box;
  state.step = 42;

  std::string path = temp_path("frame.xyz");
  {
    XyzWriter writer(path, spec.topology);
    writer.write_frame(state);
    state.step = 43;
    writer.write_frame(state);
    EXPECT_EQ(writer.frames_written(), 2u);
  }
  std::string content = slurp(path);
  EXPECT_NE(content.find("27\n"), std::string::npos);
  EXPECT_NE(content.find("step=42"), std::string::npos);
  EXPECT_NE(content.find("step=43"), std::string::npos);
  EXPECT_NE(content.find("AR "), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, HeaderAndRows) {
  std::string path = temp_path("data.csv");
  {
    CsvWriter writer(path, {"step", "energy", "temp"});
    writer.write_row(std::vector<double>{1, -503.25, 298.7});
    writer.write_row(std::vector<double>{2, -504.75, 301.2});
  }
  std::string content = slurp(path);
  EXPECT_NE(content.find("step,energy,temp"), std::string::npos);
  EXPECT_NE(content.find("-503.25"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, RowWidthEnforced) {
  std::string path = temp_path("bad.csv");
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.write_row(std::vector<double>{1.0}), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, BitExactRoundTrip) {
  SequentialRng rng(3);
  State state;
  state.box = Box(12.5, 17.25, 9.75);
  state.time = 123.456789;
  state.step = 987654321;
  for (int i = 0; i < 100; ++i) {
    state.positions.push_back(Vec3{rng.uniform(-50, 50),
                                   rng.uniform(-50, 50),
                                   rng.uniform(-50, 50)});
    state.velocities.push_back(Vec3{rng.gaussian(), rng.gaussian(),
                                    rng.gaussian()});
  }

  std::string path = temp_path("ckpt.bin");
  save_checkpoint(path, state);
  State loaded = load_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.step, state.step);
  EXPECT_EQ(loaded.time, state.time);
  EXPECT_EQ(loaded.box.edges(), state.box.edges());
  ASSERT_EQ(loaded.positions.size(), state.positions.size());
  for (size_t i = 0; i < state.positions.size(); ++i) {
    EXPECT_EQ(loaded.positions[i], state.positions[i]);
    EXPECT_EQ(loaded.velocities[i], state.velocities[i]);
  }
}

TEST(Checkpoint, RejectsGarbageFile) {
  std::string path = temp_path("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  EXPECT_THROW(load_checkpoint(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/path/x.bin"), IoError);
}

TEST(Checkpoint, TruncatedFileThrows) {
  State state;
  state.box = Box(10, 10, 10);
  state.positions.assign(8, Vec3{1, 2, 3});
  state.velocities.assign(8, Vec3{});

  std::string path = temp_path("truncated.bin");
  save_checkpoint(path, state);
  std::string full = slurp(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(path), IoError);
  std::remove(path.c_str());
}

TEST(Xyz, UnwritablePathThrowsIoError) {
  auto spec = build_lj_fluid(8, 0.021, 1);
  EXPECT_THROW(XyzWriter("/nonexistent/dir/frames.xyz", spec.topology),
               IoError);
}

TEST(Csv, UnwritablePathThrowsIoError) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/data.csv", {"a", "b"}), IoError);
}

TEST(Xyz, TornWriteIsDetectedAndTruncatedToLastGoodFrame) {
  auto spec = build_lj_fluid(27, 0.021, 1);
  State state;
  state.positions = spec.positions;
  state.velocities.assign(27, Vec3{});
  state.box = spec.box;
  state.step = 1;

  std::string path = temp_path("torn.xyz");
  {
    XyzWriter writer(path, spec.topology);
    writer.write_frame(state);
    state.step = 2;
    writer.write_frame(state);
    // Third frame tears mid-write: only half of it reaches the disk.
    fault::ScopedFault torn(
        {.kind = fault::FaultKind::kIoShortWrite, .fire_after = 0});
    state.step = 3;
    writer.write_frame(state);
  }
  const std::string before = slurp(path);
  EXPECT_NE(before.find("step=3"), std::string::npos);  // partial tail exists

  XyzRepair repair = repair_xyz(path);
  EXPECT_TRUE(repair.truncated());
  EXPECT_EQ(repair.frames_kept, 2u);
  EXPECT_GT(repair.bytes_removed, 0u);

  const std::string after = slurp(path);
  EXPECT_NE(after.find("step=2"), std::string::npos);
  EXPECT_EQ(after.find("step=3"), std::string::npos);  // tail gone
  EXPECT_LT(after.size(), before.size());

  // Repairing an already-clean file is a no-op.
  XyzRepair again = repair_xyz(path);
  EXPECT_FALSE(again.truncated());
  EXPECT_EQ(again.frames_kept, 2u);

  // A resumed run appends frame 3 after the repair point.
  {
    XyzWriter writer(path, spec.topology, /*append=*/true);
    state.step = 3;
    writer.write_frame(state);
  }
  XyzRepair resumed = repair_xyz(path);
  EXPECT_FALSE(resumed.truncated());
  EXPECT_EQ(resumed.frames_kept, 3u);
  std::remove(path.c_str());
}

TEST(Xyz, RepairMissingFileThrows) {
  EXPECT_THROW(repair_xyz("/nonexistent/dir/traj.xyz"), IoError);
}

TEST(CheckpointBackup, LoadFallsBackToBakWhenPrimaryCorrupt) {
  struct Blob : util::Checkpointable {
    uint64_t value = 0;
    void save_checkpoint(util::BinaryWriter& w) const override {
      w.write_u64(value);
    }
    void restore_checkpoint(util::BinaryReader& r) override {
      value = r.read_u64();
    }
  };

  std::string path = temp_path("backup.ckpt");
  Blob blob;
  blob.value = 41;
  save_checkpoint_v2(path, {{"sim", &blob}});
  rotate_backup(path);  // generation 41 now lives in the .bak mirror
  blob.value = 42;
  save_checkpoint_v2(path, {{"sim", &blob}});

  // Healthy primary wins.
  Blob loaded;
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}}), path);
  EXPECT_EQ(loaded.value, 42u);

  // Corrupt the primary (CRC mismatch): the .bak generation is restored.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    f.put('\xff');
  }
  EXPECT_THROW(load_checkpoint_v2(path, {{"sim", &loaded}}), IoError);
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}}),
            backup_path(path));
  EXPECT_EQ(loaded.value, 41u);

  // Both generations corrupt -> IoError naming both failures.
  {
    std::ofstream f(backup_path(path), std::ios::trunc);
    f << "junk";
  }
  EXPECT_THROW(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}}),
               IoError);
  std::remove(path.c_str());
  std::remove(backup_path(path).c_str());
}

// A checkpoint write that fails mid-rotation must never shadow a good
// backup with a truncated one: rotate_backup verifies the candidate's CRC
// before promoting it, deletes a torn primary outright, and replaces the
// .bak only via temp file + atomic rename.
TEST(CheckpointBackup, TornPrimaryNeverShadowsGoodBackup) {
  struct Blob : util::Checkpointable {
    uint64_t value = 0;
    void save_checkpoint(util::BinaryWriter& w) const override {
      w.write_u64(value);
    }
    void restore_checkpoint(util::BinaryReader& r) override {
      value = r.read_u64();
    }
  };

  std::string path = temp_path("torn_rotation.ckpt");
  std::remove(path.c_str());
  std::remove(backup_path(path).c_str());

  Blob blob;
  blob.value = 7;
  save_checkpoint_v2(path, {{"sim", &blob}});
  rotate_backup(path);  // generation 7 is now the .bak mirror
  ASSERT_EQ(std::ifstream(path).good(), false) << "rotation keeps primary";

  // A crash leaves a torn primary: rotating it again must not replace the
  // good .bak, and must remove the torn file so it cannot be restored.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "torn-checkpoint-garbage";
  }
  rotate_backup(path);
  EXPECT_FALSE(std::ifstream(path).good()) << "torn primary was deleted";
  Blob loaded;
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}}),
            backup_path(path));
  EXPECT_EQ(loaded.value, 7u);

  // A healthy newer primary still replaces the .bak generation.
  blob.value = 8;
  save_checkpoint_v2(path, {{"sim", &blob}});
  rotate_backup(path);
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}}),
            backup_path(path));
  EXPECT_EQ(loaded.value, 8u);

  // Rotating a missing primary is a no-op that keeps the backup.
  rotate_backup(path);
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}}),
            backup_path(path));
  EXPECT_EQ(loaded.value, 8u);

  std::remove(path.c_str());
  std::remove(backup_path(path).c_str());
}

// Durable control-plane writes: write_file_durable follows the same temp
// file + rename protocol as write_file_atomic (and additionally fsyncs),
// but never consumes fault-injection events — fleet status files must not
// eat a tenant's scheduled I/O faults.
TEST(DurableWrite, SkipsFaultInjectionAndReplacesAtomically) {
  std::string path = temp_path("durable.json");
  write_file_durable(path, "generation-1");
  EXPECT_EQ(read_file(path), "generation-1");

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kIoWriteFail;
  plan.count = -1;
  fault::ScopedFault f(plan);

  // An armed write-failure plan neither fires nor advances: the durable
  // writer is invisible to the chaos schedule.
  const uint64_t events = fault::event_count(fault::FaultKind::kIoWriteFail);
  write_file_durable(path, "generation-2");
  EXPECT_EQ(read_file(path), "generation-2");
  EXPECT_EQ(fault::fired_count(fault::FaultKind::kIoWriteFail), 0u);
  EXPECT_EQ(fault::event_count(fault::FaultKind::kIoWriteFail), events);

  // The same plan still fires for the fault-polled atomic writer, and the
  // durable generation survives the failed replacement.
  EXPECT_THROW(write_file_atomic(path, "generation-3"), IoError);
  EXPECT_EQ(read_file(path), "generation-2");
  std::remove(path.c_str());
}

// Satellite of the SDC work: when rotation rejects a corrupt primary, the
// caller learns *why* — the reason string feeds the supervisor's event log
// so "restored from backup" never hides the evidence.
TEST(CheckpointBackup, RotationAndFallbackReportWhyPrimaryWasRejected) {
  struct Blob : util::Checkpointable {
    uint64_t value = 0;
    void save_checkpoint(util::BinaryWriter& w) const override {
      w.write_u64(value);
    }
    void restore_checkpoint(util::BinaryReader& r) override {
      value = r.read_u64();
    }
  };

  std::string path = temp_path("rotation_reason.ckpt");
  std::remove(path.c_str());
  std::remove(backup_path(path).c_str());

  Blob blob;
  blob.value = 11;
  save_checkpoint_v2(path, {{"sim", &blob}});
  // A healthy rotation has nothing to report.
  EXPECT_EQ(rotate_backup(path), "");

  // A torn primary is rejected at rotation; the reason names the failure.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "torn-checkpoint-garbage";
  }
  std::string reason = rotate_backup(path);
  EXPECT_FALSE(reason.empty());
  EXPECT_FALSE(std::ifstream(path).good()) << "torn primary was deleted";

  // Fallback load surfaces the primary's verification failure through the
  // out-param, so the restart event can say what was wrong with it.
  blob.value = 12;
  save_checkpoint_v2(path, {{"sim", &blob}});
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    f.put('\xff');
  }
  Blob loaded;
  std::string primary_error;
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}},
                                         &primary_error),
            backup_path(path));
  EXPECT_EQ(loaded.value, 11u);
  EXPECT_FALSE(primary_error.empty());

  // A healthy primary leaves the out-param empty.
  save_checkpoint_v2(path, {{"sim", &blob}});
  primary_error = "stale";
  EXPECT_EQ(load_checkpoint_v2_or_backup(path, {{"sim", &loaded}},
                                         &primary_error),
            path);
  EXPECT_EQ(primary_error, "");

  std::remove(path.c_str());
  std::remove(backup_path(path).c_str());
}

// The nonbonded_kernel config knob: both spellings resolve, the default is
// cluster, and anything else is a ConfigError that names the bad value —
// exactly what the antmd_run driver does with the key.
TEST(RunConfigKernel, AcceptsPairAndClusterAndDefaultsToCluster) {
  auto cfg = RunConfig::from_string("nonbonded_kernel = pair\n");
  EXPECT_EQ(ff::parse_nonbonded_kernel(
                cfg.get_string("nonbonded_kernel", "cluster")),
            ff::NonbondedKernel::kPair);

  cfg = RunConfig::from_string("nonbonded_kernel = cluster\n");
  EXPECT_EQ(ff::parse_nonbonded_kernel(
                cfg.get_string("nonbonded_kernel", "cluster")),
            ff::NonbondedKernel::kCluster);

  cfg = RunConfig::from_string("# no kernel key\ndt_fs = 2.0\n");
  EXPECT_EQ(ff::parse_nonbonded_kernel(
                cfg.get_string("nonbonded_kernel", "cluster")),
            ff::NonbondedKernel::kCluster);
}

TEST(RunConfigKernel, RejectsUnknownKernelNames) {
  for (const char* bad : {"blocked", "Cluster", "PAIR", "clusters", ""}) {
    auto cfg = RunConfig::from_string(std::string("nonbonded_kernel = ") +
                                      bad + "\n");
    EXPECT_THROW(ff::parse_nonbonded_kernel(
                     cfg.get_string("nonbonded_kernel", "cluster")),
                 ConfigError)
        << "value '" << bad << "' should be rejected";
  }
}

}  // namespace
}  // namespace antmd::io
