// Tests for Gaussian Split Ewald: agreement with the direct k-space sum,
// the NaCl Madelung constant, force correctness, and corrections.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ewald/gse.hpp"
#include "ff/nonbonded.hpp"
#include "math/rng.hpp"
#include "math/units.hpp"
#include "topo/builders.hpp"

namespace antmd {
namespace {

/// Total Ewald electrostatic energy: real-space erfc loop over all pairs
/// (all images within cutoff) + reciprocal part from `solver`.
double total_ewald_energy(const GseSolver& solver, const Box& box,
                          std::span<const Vec3> pos,
                          std::span<const double> charges, double cutoff) {
  double beta = solver.params().beta;
  double real = 0.0;
  int shells = static_cast<int>(std::ceil(cutoff / box.min_edge()));
  for (size_t i = 0; i < pos.size(); ++i) {
    for (size_t j = i + 1; j < pos.size(); ++j) {
      for (int sx = -shells; sx <= shells; ++sx) {
        for (int sy = -shells; sy <= shells; ++sy) {
          for (int sz = -shells; sz <= shells; ++sz) {
            Vec3 shift{sx * box.edges().x, sy * box.edges().y,
                       sz * box.edges().z};
            double r = norm(pos[i] - pos[j] + shift);
            if (r < cutoff) {
              real += units::kCoulomb * charges[i] * charges[j] *
                      std::erfc(beta * r) / r;
            }
          }
        }
      }
    }
  }
  // Same-particle images.
  for (size_t i = 0; i < pos.size(); ++i) {
    for (int sx = -shells; sx <= shells; ++sx) {
      for (int sy = -shells; sy <= shells; ++sy) {
        for (int sz = -shells; sz <= shells; ++sz) {
          if (sx == 0 && sy == 0 && sz == 0) continue;
          Vec3 shift{sx * box.edges().x, sy * box.edges().y,
                     sz * box.edges().z};
          double r = norm(shift);
          if (r < cutoff) {
            real += 0.5 * units::kCoulomb * charges[i] * charges[i] *
                    std::erfc(beta * r) / r;
          }
        }
      }
    }
  }

  ForceResult recip(pos.size());
  solver.compute(pos, charges, {}, box, recip);
  return real + recip.energy.coulomb_kspace.value() +
         recip.energy.coulomb_self.value();
}

TEST(Gse, MadelungConstantNaCl) {
  // Rock-salt lattice: 8 ions in a 2a-cube (a = nearest-neighbour distance).
  const double a = 2.8;
  Box box = Box::cubic(2.0 * a);
  std::vector<Vec3> pos;
  std::vector<double> charges;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        pos.push_back(Vec3{x * a, y * a, z * a});
        charges.push_back(((x + y + z) % 2 == 0) ? 1.0 : -1.0);
      }
    }
  }
  GseParams params;
  params.beta = 0.9;          // sharp split: small real-space cutoff works
  params.grid_spacing = 0.25; // fine grid for a tight lattice
  GseSolver solver(box, params);
  double energy = total_ewald_energy(solver, box, pos, charges, 11.0);

  // Madelung: lattice energy per ion pair = -M kC q²/a with M = 1.747565,
  // so per ion it is -M kC/(2a).
  double per_ion = energy / 8.0;
  EXPECT_NEAR(per_ion, -1.747565 * units::kCoulomb / (2.0 * a), 0.35)
      << "per-ion Madelung energy";
}

TEST(Gse, MatchesDirectKspaceSum) {
  // Random small charge cloud; compare grid GSE against the O(N·K) sum.
  Box box = Box::cubic(16.0);
  SequentialRng rng(5);
  std::vector<Vec3> pos;
  std::vector<double> charges;
  double q_sum = 0;
  for (int i = 0; i < 20; ++i) {
    pos.push_back(Vec3{rng.uniform(0, 16), rng.uniform(0, 16),
                       rng.uniform(0, 16)});
    double q = (i % 2 == 0) ? 0.5 : -0.5;
    charges.push_back(q);
    q_sum += q;
  }
  ASSERT_EQ(q_sum, 0.0);

  GseParams params;
  params.beta = 0.4;
  params.grid_spacing = 0.5;
  GseSolver solver(box, params);

  ForceResult grid_result(20);
  solver.compute(pos, charges, {}, box, grid_result);
  ForceResult ref_result(20);
  GseSolver::compute_reference(pos, charges, {}, box, params.beta, 12,
                               ref_result);

  double e_grid = grid_result.energy.coulomb_kspace.value();
  double e_ref = ref_result.energy.coulomb_kspace.value();
  EXPECT_NEAR(e_grid, e_ref, 0.02 * std::abs(e_ref) + 0.05);

  // Self terms identical.
  EXPECT_NEAR(grid_result.energy.coulomb_self.value(),
              ref_result.energy.coulomb_self.value(), 1e-9);

  // Forces agree atom by atom.
  for (size_t i = 0; i < 20; ++i) {
    Vec3 fg = grid_result.forces.force(i);
    Vec3 fr = ref_result.forces.force(i);
    double scale = std::max(1.0, norm(fr));
    EXPECT_NEAR(fg.x, fr.x, 0.05 * scale) << i;
    EXPECT_NEAR(fg.y, fr.y, 0.05 * scale) << i;
    EXPECT_NEAR(fg.z, fr.z, 0.05 * scale) << i;
  }
}

TEST(Gse, ReferenceForcesMatchFiniteDifferenceOfEnergy) {
  // The direct k-space sum is a smooth function of positions (no grid), so
  // its forces must match finite differences exactly; the grid solver is
  // separately pinned to the reference in MatchesDirectKspaceSum.  (The
  // grid energy itself has tiny C⁰ discontinuities where the truncated
  // spreading stencil shifts cells, which makes naive FD on it meaningless.)
  Box box = Box::cubic(12.0);
  std::vector<Vec3> pos = {{3, 3, 3}, {6, 4, 3}, {4, 7, 5}, {8, 8, 8}};
  std::vector<double> charges = {1.0, -1.0, 0.5, -0.5};
  const double beta = 0.45;
  const int kmax = 10;

  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(4);
    GseSolver::compute_reference(p, charges, {}, box, beta, kmax, r);
    return r.energy.coulomb_kspace.value() + r.energy.coulomb_self.value();
  };

  ForceResult out(4);
  GseSolver::compute_reference(pos, charges, {}, box, beta, kmax, out);

  const double h = 1e-4;
  for (size_t a = 0; a < 4; ++a) {
    for (int d = 0; d < 3; ++d) {
      auto p = pos;
      p[a][d] += h;
      double ep = energy(p);
      p[a][d] -= 2 * h;
      double em = energy(p);
      double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(out.forces.force(a)[d], fd,
                  0.005 * std::max(1.0, std::abs(fd)))
          << "atom " << a << " dim " << d;
    }
  }
}

TEST(Gse, GridForcesTrackReferenceAcrossParameters) {
  Box box = Box::cubic(12.0);
  std::vector<Vec3> pos = {{3, 3, 3}, {6, 4, 3}, {4, 7, 5}, {8, 8, 8}};
  std::vector<double> charges = {1.0, -1.0, 0.5, -0.5};
  for (double beta : {0.35, 0.45}) {
    GseParams params;
    params.beta = beta;
    params.grid_spacing = 0.4;
    GseSolver solver(box, params);
    ForceResult grid(4), ref(4);
    solver.compute(pos, charges, {}, box, grid);
    GseSolver::compute_reference(pos, charges, {}, box, beta, 12, ref);
    for (size_t a = 0; a < 4; ++a) {
      double scale = std::max(1.0, norm(ref.forces.force(a)));
      for (int d = 0; d < 3; ++d) {
        EXPECT_NEAR(grid.forces.force(a)[d], ref.forces.force(a)[d],
                    0.05 * scale)
            << "beta " << beta << " atom " << a << " dim " << d;
      }
    }
  }
}

TEST(Gse, NetForceIsSmall) {
  // Reciprocal forces should sum to ~0 (exact in continuum; grid gives
  // small residual).
  Box box = Box::cubic(14.0);
  SequentialRng rng(77);
  std::vector<Vec3> pos;
  std::vector<double> charges;
  for (int i = 0; i < 30; ++i) {
    pos.push_back(Vec3{rng.uniform(0, 14), rng.uniform(0, 14),
                       rng.uniform(0, 14)});
    charges.push_back(i % 2 == 0 ? 0.4 : -0.4);
  }
  GseParams params;
  params.beta = 0.4;
  params.grid_spacing = 0.5;
  GseSolver solver(box, params);
  ForceResult out(30);
  solver.compute(pos, charges, {}, box, out);
  Vec3 total{};
  double fmax = 0;
  for (size_t i = 0; i < 30; ++i) {
    total += out.forces.force(i);
    fmax = std::max(fmax, norm(out.forces.force(i)));
  }
  EXPECT_LT(norm(total), 0.02 * fmax * 30);
}

TEST(Gse, ExclusionCorrectionCancelsReciprocalPair) {
  // Two opposite charges very close: with the pair excluded, the total
  // k-space + corrections energy must equal the isolated-pair k-space
  // energy minus erf/r — i.e. adding the exclusion changes the energy by
  // exactly -kC q1 q2 erf(βr)/r.
  Box box = Box::cubic(20.0);
  std::vector<Vec3> pos = {{10, 10, 10}, {11.0, 10, 10}};
  std::vector<double> charges = {0.8, -0.8};
  GseParams params;
  params.beta = 0.4;
  params.grid_spacing = 0.5;
  GseSolver solver(box, params);

  ForceResult plain(2), excluded(2);
  solver.compute(pos, charges, {}, box, plain);
  std::vector<std::pair<uint32_t, uint32_t>> excl = {{0, 1}};
  solver.compute(pos, charges, excl, box, excluded);

  double r = 1.0;
  double delta = -units::kCoulomb * charges[0] * charges[1] *
                 std::erf(params.beta * r) / r;
  double measured =
      (excluded.energy.coulomb_kspace.value() +
       excluded.energy.coulomb_self.value()) -
      (plain.energy.coulomb_kspace.value() +
       plain.energy.coulomb_self.value());
  EXPECT_NEAR(measured, delta, 1e-9);
}

TEST(Gse, ChargedSystemGetsBackgroundTerm) {
  Box box = Box::cubic(15.0);
  std::vector<Vec3> pos = {{5, 5, 5}};
  std::vector<double> charges = {1.0};
  GseParams params;
  params.beta = 0.4;
  params.grid_spacing = 0.5;
  GseSolver solver(box, params);
  ForceResult out(1);
  solver.compute(pos, charges, {}, box, out);
  double expected_bg = -units::kCoulomb * M_PI /
                       (2 * params.beta * params.beta * box.volume());
  double expected_self = -units::kCoulomb * params.beta / std::sqrt(M_PI);
  EXPECT_NEAR(out.energy.coulomb_self.value(), expected_bg + expected_self,
              1e-9);
}

TEST(Gse, GridSizesArePow2AndRebuildTracksBox) {
  GseParams params;
  params.grid_spacing = 1.0;
  GseSolver solver(Box(20, 40, 10), params);
  EXPECT_EQ(solver.nx(), 32u);
  EXPECT_EQ(solver.ny(), 64u);
  EXPECT_EQ(solver.nz(), 16u);
  solver.rebuild(Box::cubic(50));
  EXPECT_EQ(solver.nx(), 64u);
}

TEST(Gse, WorkloadReportsSensibleNumbers) {
  GseParams params;
  GseSolver solver(Box::cubic(32), params);
  auto w = solver.workload(1000);
  EXPECT_EQ(w.grid_points, solver.nx() * solver.ny() * solver.nz());
  EXPECT_GT(w.spread_stencil_points, 26u);
  EXPECT_EQ(w.charges, 1000u);
  EXPECT_GT(w.fft_flops, 0.0);
}

TEST(Gse, WaterBoxTotalElectrostaticsIsCohesive) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  GseParams params;
  params.beta = 0.35;
  GseSolver solver(spec.box, params);
  ForceResult out(spec.topology.atom_count());
  solver.compute(spec.positions, spec.topology.charges(),
                 spec.topology.excluded_pairs(), spec.box, out);
  EXPECT_TRUE(std::isfinite(out.energy.coulomb_kspace.value()));
  EXPECT_GT(out.energy.coulomb_kspace.value(), 0.0);  // recip part positive
  EXPECT_LT(out.energy.coulomb_self.value(), 0.0);    // self/excl negative
}

}  // namespace
}  // namespace antmd
