// Tests for the later-added extensions: the lipid-bilayer builder,
// semi-isotropic pressure coupling, the impulse-RESPA integrator, the
// structural observables, the Jarzynski estimator, and the replica
// placement scheduler.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/free_energy.hpp"
#include "analysis/structure.hpp"
#include "ff/forcefield.hpp"
#include "math/rng.hpp"
#include "md/barostat.hpp"
#include "md/simulation.hpp"
#include "runtime/scheduler.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

TEST(Bilayer, BuilderGeometryAndCounts) {
  auto spec = build_lipid_bilayer(3, 2);
  const Topology& t = spec.topology;
  const size_t lipids = 2 * 3 * 3;
  // Per lipid: 4 beads, 3 bonds, 2 angles.
  size_t lipid_bonds = 0;
  for (const auto& mol : t.molecules()) {
    if (mol.name == "LIP") {
      EXPECT_EQ(mol.count, 4u);
      ++lipid_bonds;
    }
  }
  EXPECT_EQ(lipid_bonds, lipids);
  EXPECT_EQ(t.bonds().size(), lipids * 3);
  EXPECT_EQ(t.angles().size(), lipids * 2);
  EXPECT_NEAR(t.total_charge(), 0.0, 1e-9);
  t.validate();

  // Leaflet structure: heads far from midplane, tails near it.
  double z_mid = spec.box.edges().z / 2.0;
  for (const auto& mol : t.molecules()) {
    if (mol.name != "LIP") continue;
    double head_d = std::abs(spec.positions[mol.first].z - z_mid);
    double tail_d = std::abs(spec.positions[mol.first + 3].z - z_mid);
    EXPECT_GT(head_d, tail_d);
  }
}

TEST(Bilayer, WaterSitsOutsideTheMembrane) {
  auto spec = build_lipid_bilayer(3, 2);
  double z_mid = spec.box.edges().z / 2.0;
  double head_extent = 4 * 3.6;  // beads_per_lipid * bead spacing
  for (const auto& mol : spec.topology.molecules()) {
    if (mol.name != "HOH") continue;
    double d = std::abs(spec.positions[mol.first].z - z_mid);
    EXPECT_GT(d, head_extent - 1.0);
  }
}

TEST(SemiIsoBarostat, ScalesAxesIndependently) {
  auto spec = build_lipid_bilayer(3, 2);
  md::BarostatConfig cfg;
  cfg.kind = md::BarostatKind::kBerendsenSemiIso;
  cfg.pressure_atm = 1.0;
  cfg.interval = 1;
  md::Barostat barostat(spec.topology, cfg, nullptr);

  State state;
  state.positions = spec.positions;
  state.velocities.assign(spec.topology.atom_count(), Vec3{});
  state.box = spec.box;
  md::init_velocities(spec.topology, 310.0, 3, state);

  // Strongly anisotropic virial: huge xy pressure, negative z pressure.
  Mat3 virial = Mat3::diagonal(5e3, 5e3, -5e3);
  double x0 = state.box.edges().x, z0 = state.box.edges().z;
  ASSERT_TRUE(barostat.maybe_apply_tensor(state, virial));
  EXPECT_GT(state.box.edges().x, x0);  // xy expands under high pressure
  EXPECT_LT(state.box.edges().z, z0);  // z shrinks under tension
  // x and y move together.
  EXPECT_NEAR(state.box.edges().x / x0, state.box.edges().y / x0, 1e-12);
}

TEST(SemiIsoBarostat, AnisotropicScalingMovesMoleculesRigidly) {
  auto spec = build_water_box(27, WaterModel::kRigid3Site);
  State state;
  state.positions = spec.positions;
  state.velocities.assign(spec.topology.atom_count(), Vec3{});
  state.box = spec.box;

  double oh_before = norm(state.positions[1] - state.positions[0]);
  md::scale_box_and_molecules(spec.topology, Vec3{1.05, 1.05, 0.97}, state);
  double oh_after = norm(state.positions[1] - state.positions[0]);
  EXPECT_NEAR(oh_after, oh_before, 1e-9);  // intramolecular geometry intact
  EXPECT_NEAR(state.box.edges().x, spec.box.edges().x * 1.05, 1e-9);
  EXPECT_NEAR(state.box.edges().z, spec.box.edges().z * 0.97, 1e-9);
}

TEST(Respa, InnerLoopConservesEnergyOnFlexibleWater) {
  auto spec = build_water_box(64, WaterModel::kFlexible3Site);
  ff::NonbondedModel model;
  model.cutoff = 5.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;       // too large for bare flexible OH...
  cfg.respa_inner = 4;   // ...but fine with 0.5 fs inner steps
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 150.0;
  cfg.thermostat.kind = md::ThermostatKind::kNone;
  cfg.com_removal_interval = 0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(30);
  double e0 = sim.potential_energy() + sim.kinetic_energy();
  sim.run(200);
  double e1 = sim.potential_energy() + sim.kinetic_energy();
  EXPECT_TRUE(std::isfinite(e1));
  EXPECT_NEAR(e1, e0, 0.05 * (std::abs(e0) + 10.0));
}

TEST(Respa, MatchesPlainVerletStatistically) {
  // Same system, same Langevin bath: RESPA and plain Verlet must sample
  // the same temperature.
  auto spec = build_lj_fluid(125, 0.021, 3);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;

  auto run_mean_t = [&](int inner) {
    ForceField field(spec.topology, model);
    md::SimulationConfig cfg;
    cfg.dt_fs = 4.0;
    cfg.respa_inner = inner;
    cfg.neighbor_skin = 1.0;
    cfg.init_temperature_k = 130.0;
    cfg.thermostat.kind = md::ThermostatKind::kLangevin;
    cfg.thermostat.temperature_k = 130.0;
    md::Simulation sim(field, spec.positions, spec.box, cfg);
    sim.run(400);
    double t = 0;
    for (int i = 0; i < 100; ++i) {
      sim.step();
      t += sim.temperature();
    }
    return t / 100;
  };
  EXPECT_NEAR(run_mean_t(1), run_mean_t(3), 25.0);
}

TEST(Structure, RadiusOfGyrationOfKnownShapes) {
  Box box = Box::cubic(100);
  // A straight trimer: Rg of {0, 1, 2} on a line = sqrt(2/3).
  std::vector<Vec3> pos = {{0, 0, 0}, {1, 0, 0}, {2, 0, 0}};
  std::vector<uint32_t> chain = {0, 1, 2};
  EXPECT_NEAR(analysis::chain_radius_of_gyration(pos, chain, box),
              std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_NEAR(analysis::chain_end_to_end(pos, chain, box), 2.0, 1e-12);
}

TEST(Structure, RgHandlesPeriodicWrap) {
  Box box = Box::cubic(10);
  // Chain crossing the boundary: 9.5 -> 0.5 is a 1 Å bond through the wall.
  std::vector<Vec3> pos = {{9.0, 5, 5}, {9.9, 5, 5}, {0.8, 5, 5}};
  std::vector<uint32_t> chain = {0, 1, 2};
  EXPECT_NEAR(analysis::chain_end_to_end(pos, chain, box), 1.8, 1e-9);
}

TEST(Structure, BilayerThicknessOnBuilderOutput) {
  auto spec = build_lipid_bilayer(3, 2);
  std::vector<uint32_t> heads;
  for (const auto& mol : spec.topology.molecules()) {
    if (mol.name == "LIP") heads.push_back(mol.first);
  }
  double t = analysis::bilayer_thickness(spec.positions, heads, spec.box);
  // Heads sit at ±(4 - 0.5) × 3.6 = ±12.6 from the midplane -> ~25 Å.
  EXPECT_NEAR(t, 25.2, 2.0);
}

TEST(Structure, NativeContactsCountFormedPairs) {
  Box box = Box::cubic(50);
  std::vector<Vec3> pos = {{0, 0, 0}, {4, 0, 0}, {20, 0, 0}};
  std::vector<analysis::Contact> contacts = {{0, 1, 4.0}, {0, 2, 4.0}};
  EXPECT_NEAR(analysis::native_contact_fraction(pos, contacts, box, 1.3),
              0.5, 1e-12);
}

TEST(Jarzynski, FastPullingOverestimatesButBoundsFreeEnergy) {
  // For Gaussian work W ~ N(ΔF + σ²/2kT · ... ): construct consistent
  // samples — identical math to the Zwanzig test, via the work alias.
  SequentialRng rng(29);
  const double t = 300.0, kt = 0.001987204259 * t;
  const double df = 2.0, s = 0.6;
  std::vector<double> work(100000);
  for (auto& w : work) w = df + s * s / (2 * kt) + s * rng.gaussian();
  EXPECT_NEAR(analysis::jarzynski_delta_f(work, t), df, 0.05);
  // Mean work exceeds ΔF (second law).
  double mean_w = 0;
  for (double w : work) mean_w += w;
  mean_w /= static_cast<double>(work.size());
  EXPECT_GT(mean_w, df);
}

TEST(Scheduler, PartitionedWinsForSmallReplicas) {
  auto stats = machine::SystemStats::water(3840);
  machine::WorkloadParams params;
  params.cutoff = 10.0;
  runtime::ReplicaScheduler sched(machine::anton_full(), stats, params);
  auto best = sched.best(16);
  EXPECT_EQ(best.placement, runtime::ReplicaPlacement::kPartitioned);
  EXPECT_EQ(best.nodes_per_replica, 27u);  // cube_floor(512/16 = 32) = 27
  EXPECT_GT(best.replica_steps_per_s, 0.0);
}

TEST(Scheduler, ThroughputGrowsWithReplicasWhenPartitioned) {
  auto stats = machine::SystemStats::water(3840);
  machine::WorkloadParams params;
  runtime::ReplicaScheduler sched(machine::anton_full(), stats, params);
  auto few = sched.evaluate(runtime::ReplicaPlacement::kPartitioned, 4);
  auto many = sched.evaluate(runtime::ReplicaPlacement::kPartitioned, 64);
  EXPECT_GT(many.replica_steps_per_s, few.replica_steps_per_s);
}

TEST(Scheduler, TimeMultiplexIncludesSwapOverhead) {
  auto stats = machine::SystemStats::water(30720);
  machine::WorkloadParams params;
  runtime::ReplicaScheduler sched(machine::anton_full(), stats, params);
  auto mux = sched.evaluate(runtime::ReplicaPlacement::kTimeMultiplexed, 8);
  EXPECT_GT(mux.swap_overhead_s, 0.0);
  EXPECT_EQ(mux.nodes_per_replica, 512u);
}

TEST(MembraneSimulation, BilayerRunsStablyUnderSemiIsoNpt) {
  auto spec = build_lipid_bilayer(3, 2);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.4;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.kspace_interval = 2;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 310.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 310.0;
  cfg.barostat.kind = md::BarostatKind::kBerendsenSemiIso;
  cfg.barostat.interval = 20;
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(80);
  EXPECT_TRUE(std::isfinite(sim.potential_energy()));
  EXPECT_LT(sim.temperature(), 2000.0);
  // The bilayer stays a bilayer (heads still split into two leaflets).
  std::vector<uint32_t> heads;
  for (const auto& mol : spec.topology.molecules()) {
    if (mol.name == "LIP") heads.push_back(mol.first);
  }
  double t = analysis::bilayer_thickness(sim.state().positions, heads,
                                         sim.state().box);
  EXPECT_GT(t, 10.0);
}

}  // namespace
}  // namespace antmd
