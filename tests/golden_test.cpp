// Golden-physics differential harness for the nonbonded kernel rewrite.
//
// Two layers of defense around the hot path:
//   1. pair vs cluster: the two kernels must agree EXACTLY (identical raw
//      fixed-point quanta per energy term and per atom force) — blocking is
//      a data-layout change, not a physics change;
//   2. vs committed goldens: per-term energies, sampled forces and the
//      virial trace must match the text fixtures in tests/golden/ to a
//      small relative tolerance (absorbing libm variation across
//      toolchains), so a silent physics change in EITHER kernel fails with
//      a per-term diff.
//
// Regenerate fixtures with scripts/regen_golden.sh (sets
// ANTMD_GOLDEN_REGEN=1; the test then rewrites the files and passes).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ff/forcefield.hpp"
#include "ff/nonbonded_cluster.hpp"
#include "md/neighbor.hpp"
#include "topo/builders.hpp"
#include "util/execution.hpp"

using namespace antmd;

#ifndef ANTMD_GOLDEN_DIR
#define ANTMD_GOLDEN_DIR "tests/golden"
#endif

namespace {

constexpr double kSkin = 1.0;
constexpr double kRelTol = 1e-8;   // vs goldens (libm headroom)
constexpr double kAbsFloor = 1e-10;

struct KernelResults {
  ForceResult pair;
  ForceResult cluster;
  const ff::ClusterPairList* clusters = nullptr;  // owned by cluster_list
  md::NeighborList pair_list;
  md::NeighborList cluster_list;

  KernelResults(const Topology& topo, double cutoff)
      : pair(topo.atom_count()),
        cluster(topo.atom_count()),
        pair_list(topo, cutoff, kSkin, /*cluster_mode=*/false),
        cluster_list(topo, cutoff, kSkin, /*cluster_mode=*/true) {}
};

/// Evaluates bonded + real-space nonbonded with both kernels.
KernelResults evaluate_both(const SystemSpec& spec, const ForceField& ffield) {
  KernelResults r(spec.topology, ffield.model().cutoff);
  r.pair_list.build(spec.positions, spec.box);
  r.cluster_list.build(spec.positions, spec.box);
  r.clusters = &r.cluster_list.clusters();

  ffield.compute_bonded(spec.positions, spec.box, 0.0, r.pair);
  ffield.compute_nonbonded(r.pair_list.pairs(), spec.positions, spec.box,
                           r.pair);

  ffield.compute_bonded(spec.positions, spec.box, 0.0, r.cluster);
  ffield.compute_nonbonded_clusters(*r.clusters, spec.positions, spec.box,
                                    r.cluster);
  return r;
}

std::vector<std::pair<std::string, const FixedScalar*>> terms_of(
    const EnergyBreakdown& e) {
  return {{"bond", &e.bond},
          {"angle", &e.angle},
          {"dihedral", &e.dihedral},
          {"vdw", &e.vdw},
          {"coulomb_real", &e.coulomb_real},
          {"pair14", &e.pair14},
          {"restraint", &e.restraint}};
}

std::vector<size_t> sample_atoms(size_t n) {
  return {0, 1, 2, 3, n / 2, n - 1};
}

std::string golden_path(const std::string& name) {
  return std::string(ANTMD_GOLDEN_DIR) + "/" + name + ".golden";
}

bool regen_requested() {
  const char* env = std::getenv("ANTMD_GOLDEN_REGEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void write_golden(const std::string& name, const ForceResult& res) {
  std::ofstream out(golden_path(name));
  ASSERT_TRUE(out.good()) << "cannot write " << golden_path(name);
  out.precision(15);
  out << std::scientific;
  out << "# antmd golden fixture: " << name << "\n";
  out << "# regenerate with scripts/regen_golden.sh\n";
  for (const auto& [term, value] : terms_of(res.energy)) {
    out << "term " << term << " " << value->value() << "\n";
  }
  for (size_t i : sample_atoms(res.forces.size())) {
    Vec3 f = res.forces.force(i);
    out << "force " << i << " " << f.x << " " << f.y << " " << f.z << "\n";
  }
  out << "virial_trace " << trace(res.virial) << "\n";
}

struct Golden {
  std::map<std::string, double> terms;
  std::map<size_t, Vec3> forces;
  double virial_trace = 0.0;
};

Golden read_golden(const std::string& name) {
  Golden g;
  std::ifstream in(golden_path(name));
  EXPECT_TRUE(in.good()) << "missing fixture " << golden_path(name)
                         << " — run scripts/regen_golden.sh";
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "term") {
      std::string term;
      double v = 0;
      ls >> term >> v;
      g.terms[term] = v;
    } else if (kind == "force") {
      size_t i = 0;
      Vec3 f;
      ls >> i >> f.x >> f.y >> f.z;
      g.forces[i] = f;
    } else if (kind == "virial_trace") {
      ls >> g.virial_trace;
    }
  }
  return g;
}

::testing::AssertionResult close_to(double got, double want,
                                    const std::string& what) {
  const double diff = std::fabs(got - want);
  const double tol = kAbsFloor + kRelTol * std::fabs(want);
  if (diff <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << what << ": got " << got << ", golden " << want << " (|diff| "
         << diff << " > tol " << tol << ")";
}

void run_golden_case(const std::string& name, const SystemSpec& spec,
                     ff::NonbondedModel model) {
  ForceField ffield(spec.topology, model);
  KernelResults r = evaluate_both(spec, ffield);

  // Structure sanity: the tile masks encode exactly the flat pair set.
  ASSERT_EQ(r.clusters->real_pairs, r.pair_list.pairs().size());
  ASSERT_GT(r.clusters->fill_ratio(), 0.0);
  ASSERT_LE(r.clusters->fill_ratio(), 1.0);

  // Layer 1 — differential: EXACT fixed-point agreement between kernels.
  auto pair_terms = terms_of(r.pair.energy);
  auto cluster_terms = terms_of(r.cluster.energy);
  for (size_t t = 0; t < pair_terms.size(); ++t) {
    EXPECT_EQ(pair_terms[t].second->raw(), cluster_terms[t].second->raw())
        << name << " term " << pair_terms[t].first
        << " differs between pair and cluster kernels: pair="
        << pair_terms[t].second->value()
        << " cluster=" << cluster_terms[t].second->value();
  }
  ASSERT_EQ(r.pair.forces.size(), r.cluster.forces.size());
  for (size_t i = 0; i < r.pair.forces.size(); ++i) {
    EXPECT_EQ(r.pair.forces.quanta(i), r.cluster.forces.quanta(i))
        << name << " force on atom " << i << " differs between kernels";
  }
  for (int k = 0; k < 9; ++k) {
    EXPECT_NEAR(r.pair.virial.m[k], r.cluster.virial.m[k],
                kAbsFloor + kRelTol * std::fabs(r.pair.virial.m[k]))
        << name << " virial component " << k;
  }

  // Layer 2 — vs committed goldens (or regenerate them).
  if (regen_requested()) {
    write_golden(name, r.pair);
    return;
  }
  Golden g = read_golden(name);
  for (const auto& [term, value] : pair_terms) {
    ASSERT_TRUE(g.terms.count(term))
        << name << ": fixture missing term " << term
        << " — run scripts/regen_golden.sh";
    EXPECT_TRUE(close_to(value->value(), g.terms.at(term),
                         name + " energy term '" + term + "'"));
  }
  for (const auto& [atom, f] : g.forces) {
    Vec3 got = r.pair.forces.force(atom);
    EXPECT_TRUE(close_to(got.x, f.x, name + " force[" +
                                         std::to_string(atom) + "].x"));
    EXPECT_TRUE(close_to(got.y, f.y, name + " force[" +
                                         std::to_string(atom) + "].y"));
    EXPECT_TRUE(close_to(got.z, f.z, name + " force[" +
                                         std::to_string(atom) + "].z"));
  }
  EXPECT_TRUE(
      close_to(trace(r.pair.virial), g.virial_trace, name + " virial trace"));
}

ff::NonbondedModel lj_model(double cutoff) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

}  // namespace

TEST(GoldenTest, LjFluid) {
  run_golden_case("lj_fluid_216", build_lj_fluid(216, 0.021, 7),
                  lj_model(8.0));
}

TEST(GoldenTest, SolvatedMiniprotein) {
  run_golden_case("miniprotein_8_216", build_polymer_in_solvent(8, 216, 7),
                  lj_model(7.0));
}

TEST(GoldenTest, IonicSolution) {
  ff::NonbondedModel m;
  m.cutoff = 6.0;
  m.electrostatics = ff::Electrostatics::kReactionCutoff;
  run_golden_case("ionic_125_4", build_ionic_solution(125, 4, 7), m);
}

// Cluster kernel bit-identity across thread counts, including the
// double-precision virial (the fixed-size chunk partition + ascending merge
// contract of ff::compute_clusters).
TEST(GoldenTest, ClusterKernelThreadInvariance) {
  SystemSpec spec = build_lj_fluid(512, 0.021, 11);
  ForceField ffield(spec.topology, lj_model(8.0));
  md::NeighborList list(spec.topology, 8.0, kSkin, /*cluster_mode=*/true);
  list.build(spec.positions, spec.box);

  auto run_with = [&](size_t threads) {
    ForceResult res(spec.topology.atom_count());
    auto exec = ExecutionContext::create(ExecutionConfig{threads});
    ffield.compute_nonbonded_clusters(list.clusters(), spec.positions,
                                      spec.box, res, exec.get());
    return res;
  };

  ForceResult t1 = run_with(1);
  for (size_t threads : {2u, 8u}) {
    ForceResult tn = run_with(threads);
    EXPECT_TRUE(t1.forces == tn.forces)
        << "forces differ at " << threads << " threads";
    EXPECT_EQ(t1.energy.vdw.raw(), tn.energy.vdw.raw());
    EXPECT_EQ(t1.energy.coulomb_real.raw(), tn.energy.coulomb_real.raw());
    for (int k = 0; k < 9; ++k) {
      EXPECT_EQ(t1.virial.m[k], tn.virial.m[k])
          << "virial component " << k << " differs at " << threads
          << " threads";
    }
  }
}
