// Cross-module integration tests: checkpoint/restart continuity, the full
// umbrella→WHAM pipeline, machine-sim + sampling interop, and the
// workload-estimator vs functional-engine consistency check.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "analysis/free_energy.hpp"
#include "ff/forcefield.hpp"
#include "io/trajectory.hpp"
#include "machine/workload.hpp"
#include "md/simulation.hpp"
#include "runtime/machine_sim.hpp"
#include "sampling/tempering.hpp"
#include "sampling/umbrella.hpp"
#include "topo/builders.hpp"

namespace antmd {
namespace {

TEST(Integration, CheckpointRestartContinuesBitExact) {
  auto spec = build_lj_fluid(125, 0.021, 7);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;

  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.thermostat.kind = md::ThermostatKind::kNone;
  cfg.com_removal_interval = 0;

  // Run 40 steps straight through.
  ForceField field_a(spec.topology, model);
  md::Simulation sim_a(field_a, spec.positions, spec.box, cfg);
  sim_a.run(40);

  // Run 20, checkpoint, restore into a fresh simulation, run 20 more.
  ForceField field_b(spec.topology, model);
  md::Simulation sim_b(field_b, spec.positions, spec.box, cfg);
  sim_b.run(20);
  std::string path = "/tmp/antmd_integration_ckpt.bin";
  io::save_checkpoint(path, sim_b.state());

  State restored = io::load_checkpoint(path);
  std::remove(path.c_str());
  ForceField field_c(spec.topology, model);
  md::SimulationConfig cfg_c = cfg;
  cfg_c.init_temperature_k = -1;  // keep restored velocities
  md::Simulation sim_c(field_c, restored.positions, restored.box, cfg_c);
  sim_c.mutable_state().velocities = restored.velocities;
  sim_c.mutable_state().time = restored.time;
  sim_c.mutable_state().step = restored.step;
  sim_c.invalidate_forces();
  sim_c.run(20);

  // Deterministic NVE dynamics: restart must match the straight run
  // bitwise (all operations are reproducible).
  for (size_t i = 0; i < spec.topology.atom_count(); ++i) {
    EXPECT_EQ(sim_a.state().positions[i], sim_c.state().positions[i]) << i;
    EXPECT_EQ(sim_a.state().velocities[i], sim_c.state().velocities[i]) << i;
  }
}

TEST(Integration, UmbrellaWhamRecoversRestraintMinimum) {
  // With a single deep harmonic well imposed via the custom table, the
  // umbrella+WHAM pipeline should put the PMF minimum at the well bottom.
  auto spec = build_dimer_in_solvent(64, 5.0, 31);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kNone;
  auto customize = [&model](ForceField& f) {
    auto t = RadialTable::from_potential(
        [](double r) { return 1.5 * (r - 5.0) * (r - 5.0); },
        [](double r) { return 3.0 * (r - 5.0); }, 1.2, 6.0, 1024, true);
    f.set_custom_pair_table(0, 0, std::move(t));
  };

  sampling::UmbrellaConfig cfg;
  cfg.centers = {4.0, 4.5, 5.0, 5.5, 6.0};
  cfg.k = 15.0;
  cfg.equil_steps = 100;
  cfg.prod_steps = 400;
  cfg.sample_interval = 4;
  cfg.md.dt_fs = 4.0;
  cfg.md.neighbor_skin = 1.0;
  cfg.md.init_temperature_k = 130.0;
  cfg.md.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.md.thermostat.temperature_k = 130.0;

  auto windows = sampling::run_umbrella(spec, model, spec.tagged[0],
                                        spec.tagged[1], cfg, customize);
  auto wham = analysis::wham(windows, 130.0, 3.8, 6.2, 24);

  double best_f = 1e300, best_xi = 0;
  for (size_t b = 0; b < wham.xi.size(); ++b) {
    if (wham.free_energy[b] < best_f) {
      best_f = wham.free_energy[b];
      best_xi = wham.xi[b];
    }
  }
  EXPECT_NEAR(best_xi, 5.0, 0.5);
}

TEST(Integration, TemperingRunsOnTopOfMachineBackedForceField) {
  // Sampling methods drive md::Simulation; the same ForceField instance can
  // simultaneously back a MachineSimulation for cost accounting.
  auto spec = build_lj_fluid(125, 0.021, 11);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  md::SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 120.0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  sampling::TemperingConfig tc;
  tc.ladder = {120, 150, 190};
  tc.attempt_interval = 20;
  sampling::SimulatedTempering st(sim, tc);
  st.run(300);
  EXPECT_GT(st.attempts(), 10u);

  // Cost of the tempering decisions on the machine model.
  runtime::MachineSimConfig mcfg;
  mcfg.dt_fs = 4.0;
  mcfg.neighbor_skin = 1.0;
  mcfg.init_temperature_k = 120.0;
  runtime::MachineSimulation msim(field, machine::anton_with_torus(2, 2, 2),
                                  spec.positions, spec.box, mcfg);
  msim.note_tempering_decision();
  msim.step();
  EXPECT_GT(msim.last_breakdown().tempering, 0.0);
  msim.step();
  EXPECT_EQ(msim.last_breakdown().tempering, 0.0);  // one-shot accounting
}

TEST(Integration, WorkloadEstimatorTracksFunctionalEngine) {
  // The analytic estimator used for paper-scale benches must agree with
  // real counts from the functional engine on a system both can handle.
  auto spec = build_water_box(512, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 8.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.4;
  ForceField field(spec.topology, model);
  field.on_box_changed(spec.box);

  const int edge = 2;
  runtime::DistributedEngine engine(
      field, machine::anton_with_torus(edge, edge, edge));
  md::NeighborList list(spec.topology, model.cutoff, 0.0);
  auto positions = spec.positions;
  list.build(positions, spec.box);
  engine.redistribute(positions, spec.box, list.pairs());
  ForceResult out(spec.topology.atom_count());
  ForceResult kcache(spec.topology.atom_count());
  auto real_work = engine.evaluate(positions, spec.box, 0.0, list.pairs(),
                                   true, out, kcache);

  auto stats = machine::SystemStats::water(512);
  machine::WorkloadParams params;
  params.cutoff = model.cutoff;
  auto est_work = machine::estimate_step_work(stats, 8, params);

  size_t real_pairs = 0, est_pairs = 0;
  double real_import = 0, est_import = 0;
  for (const auto& n : real_work.nodes) {
    real_pairs += n.pairs;
    real_import += n.import_bytes;
  }
  for (const auto& n : est_work.nodes) {
    est_pairs += n.pairs;
    est_import += n.import_bytes;
  }
  // Within ~35% is fine for an analytic estimate.
  EXPECT_NEAR(static_cast<double>(est_pairs),
              static_cast<double>(real_pairs),
              0.35 * static_cast<double>(real_pairs));
  EXPECT_GT(est_import, 0.2 * real_import);
  EXPECT_LT(est_import, 5.0 * real_import);
  // k-space grids agree.
  EXPECT_EQ(est_work.kspace.grid_points, real_work.kspace.grid_points);
}

TEST(Integration, TrajectoryWriterRoundTripsThroughSimulation) {
  auto spec = build_water_box(27, WaterModel::kFlexible3Site);
  ff::NonbondedModel model;
  model.cutoff = 4.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);
  md::SimulationConfig cfg;
  cfg.dt_fs = 0.5;
  cfg.neighbor_skin = 0.5;
  cfg.init_temperature_k = 150.0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  std::string path = "/tmp/antmd_integration_traj.xyz";
  {
    io::XyzWriter writer(path, spec.topology);
    for (int f = 0; f < 3; ++f) {
      sim.run(5);
      writer.write_frame(sim.state());
    }
    EXPECT_EQ(writer.frames_written(), 3u);
  }
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  std::remove(path.c_str());
  EXPECT_EQ(lines, 3 * (2 + spec.topology.atom_count()));
}

}  // namespace
}  // namespace antmd
