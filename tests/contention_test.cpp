// Tests for the link-level contention model of the torus multicast.
#include <gtest/gtest.h>

#include "machine/contention.hpp"
#include "machine/workload.hpp"
#include "util/error.hpp"

namespace antmd::machine {
namespace {

std::vector<NodeWork> uniform_halo(size_t nodes, double bytes) {
  std::vector<NodeWork> out(nodes);
  for (auto& n : out) n.import_bytes = bytes;
  return out;
}

TEST(Contention, NoTrafficNoTime) {
  MachineConfig cfg = anton_with_torus(2, 2, 2);
  LinkContentionModel model(cfg);
  auto result = model.multicast_time(uniform_halo(8, 0.0));
  EXPECT_EQ(result.phase_time_s, 0.0);
  EXPECT_EQ(result.links_used, 0u);
}

TEST(Contention, UniformTrafficLoadsLinksEvenly) {
  MachineConfig cfg = anton_with_torus(4, 4, 4);
  LinkContentionModel model(cfg);
  auto result = model.multicast_time(uniform_halo(64, 12000.0));
  EXPECT_GT(result.phase_time_s, 0.0);
  EXPECT_GT(result.links_used, 0u);
  // Symmetric pattern: the hottest link is close to the mean.
  EXPECT_LT(result.max_link_bytes, 1.5 * result.mean_link_bytes);
}

TEST(Contention, HotNodeCreatesHotLinks) {
  MachineConfig cfg = anton_with_torus(4, 4, 4);
  LinkContentionModel model(cfg);
  auto uniform = uniform_halo(64, 12000.0);
  auto skewed = uniform;
  skewed[0].import_bytes = 12000.0 * 20.0;  // one overloaded node
  auto r_uniform = model.multicast_time(uniform);
  auto r_skewed = model.multicast_time(skewed);
  EXPECT_GT(r_skewed.max_link_bytes, 3.0 * r_uniform.max_link_bytes);
  EXPECT_GT(r_skewed.phase_time_s, r_uniform.phase_time_s);
}

TEST(Contention, TimeScalesWithVolume) {
  MachineConfig cfg = anton_with_torus(4, 4, 4);
  LinkContentionModel model(cfg);
  auto small = model.multicast_time(uniform_halo(64, 5000.0));
  auto big = model.multicast_time(uniform_halo(64, 50000.0));
  EXPECT_GT(big.phase_time_s, 5.0 * small.phase_time_s);
}

TEST(Contention, RejectsWrongNodeCount) {
  MachineConfig cfg = anton_with_torus(2, 2, 2);
  LinkContentionModel model(cfg);
  EXPECT_THROW(static_cast<void>(model.multicast_time(uniform_halo(7, 1.0))),
               Error);
}

TEST(Contention, ComparableToInjectionModelWhenUniform) {
  // For uniform neighbour exchange the contention phase time should be in
  // the same ballpark as the simple injection-bandwidth estimate.
  MachineConfig cfg = anton_with_torus(4, 4, 4);
  LinkContentionModel model(cfg);
  const double halo = 24000.0;
  auto result = model.multicast_time(uniform_halo(64, halo));
  double inject_estimate =
      halo / (cfg.link_bandwidth_Bps * (cfg.links_per_node / 2));
  EXPECT_GT(result.phase_time_s, 0.3 * inject_estimate);
  EXPECT_LT(result.phase_time_s, 10.0 * inject_estimate);
}

}  // namespace
}  // namespace antmd::machine
