// Tier-1 determinism harness for util::TaskGraph itself (the MD-level
// trajectory checks live in parallel_determinism_test): seeded random DAG
// topologies run at 1 lane and at 8 lanes must produce bit-identical
// outputs, provided the task bodies follow the documented recipe —
// per-grain slots for order-sensitive arithmetic folded by a fixed-order
// reduction, or order-free integer accumulation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "util/task_graph.hpp"

namespace antmd {
namespace {

// Order-sensitive on purpose: double rounding makes any schedule that
// reassociates these folds diverge in the low bits.
double mix(double a, double b) { return a * 1.0000001 + std::sin(b) * 0.5; }

/// One randomly-wired graph: node i either computes serially from its
/// dependencies or fans out over per-grain slots that a paired reduction
/// folds in ascending grain order.  The topology, grain counts and all
/// arithmetic depend only on `seed`, never on the lane count.
std::vector<double> run_random_graph(
    const std::shared_ptr<util::TaskRuntime>& runtime, uint32_t seed,
    size_t n_value_nodes) {
  std::mt19937 rng(seed);
  util::TaskGraph graph(runtime, "test.random");

  struct ValueNode {
    std::vector<size_t> deps;    // earlier value-node indices
    std::vector<double> slots;   // per-grain outputs (parallel nodes)
    util::TaskId task = 0;       // task producing node_out[i]
  };
  auto nodes = std::make_shared<std::vector<ValueNode>>(n_value_nodes);
  auto out = std::make_shared<std::vector<double>>(n_value_nodes, 0.0);

  for (size_t i = 0; i < n_value_nodes; ++i) {
    ValueNode& node = (*nodes)[i];
    if (i > 0) {
      const size_t n_deps = rng() % 4;  // 0..3 draws (duplicates fine)
      for (size_t d = 0; d < n_deps; ++d) node.deps.push_back(rng() % i);
    }
    std::vector<util::TaskId> dep_tasks;
    for (size_t dep : node.deps) dep_tasks.push_back((*nodes)[dep].task);

    if (rng() % 2 == 0) {
      // Serial node: fold the dependency outputs in a fixed order.
      node.task = graph.add(
          "value",
          [nodes, out, i] {
            double acc = static_cast<double>(i) + 1.0;
            for (size_t dep : (*nodes)[i].deps) acc = mix(acc, (*out)[dep]);
            (*out)[i] = acc;
          },
          dep_tasks);
    } else {
      // Parallel node: grains write disjoint slots (any schedule), then a
      // reduction folds the slots — and the dependencies — ascending.
      const size_t grains = 1 + rng() % 97;
      node.slots.assign(grains, 0.0);
      const util::TaskId fan = graph.add_parallel(
          "fan", [nodes, i] { return (*nodes)[i].slots.size(); },
          [nodes, out, i](size_t g) {
            double acc = std::cos(static_cast<double>(g) + 0.25);
            for (size_t dep : (*nodes)[i].deps) acc = mix(acc, (*out)[dep]);
            (*nodes)[i].slots[g] = acc;
          },
          dep_tasks);
      node.task = graph.add_reduction(
          "fold",
          [nodes, out, i] {
            double acc = 0.0;
            for (double s : (*nodes)[i].slots) acc = mix(acc, s);
            (*out)[i] = acc;
          },
          {fan});
    }
  }
  graph.run();
  return *out;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &a[i], sizeof ba);
    std::memcpy(&bb, &b[i], sizeof bb);
    EXPECT_EQ(ba, bb) << "node " << i << ": " << a[i] << " vs " << b[i];
  }
}

TEST(GraphDeterminism, RandomTopologyBitIdenticalAcrossLaneCounts) {
  auto eight = util::TaskRuntime::create(8);
  auto two = util::TaskRuntime::create(2);
  for (uint32_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    const auto serial = run_random_graph(nullptr, seed, 40);
    expect_bitwise_equal(serial, run_random_graph(two, seed, 40));
    expect_bitwise_equal(serial, run_random_graph(eight, seed, 40));
  }
}

TEST(GraphDeterminism, ReusedGraphReproducesItselfEveryRun) {
  auto runtime = util::TaskRuntime::create(8);
  util::TaskGraph graph(runtime, "test.reuse");
  std::vector<double> slots(257, 0.0);
  double total = 0.0;
  const util::TaskId fan = graph.add_parallel(
      "fan", [&] { return slots.size(); },
      [&](size_t g) { slots[g] = std::sqrt(static_cast<double>(g) + 0.5); });
  graph.add_reduction(
      "fold",
      [&] {
        total = 0.0;
        for (double s : slots) total = mix(total, s);
      },
      {fan});

  graph.run();
  const double first = total;
  for (int round = 0; round < 20; ++round) {
    graph.run();
    uint64_t ba = 0, bb = 0;
    std::memcpy(&ba, &first, sizeof ba);
    std::memcpy(&bb, &total, sizeof bb);
    ASSERT_EQ(ba, bb) << "round " << round;
  }
}

TEST(GraphDeterminism, OrderFreeIntegerAccumulationMatchesSerial) {
  // The fixed-point force idiom: racing grains fold into one integer
  // accumulator; addition commutes, so any schedule gives the same bits.
  auto accumulate = [](const std::shared_ptr<util::TaskRuntime>& rt) {
    util::TaskGraph graph(rt, "test.intsum");
    std::atomic<int64_t> sum{0};
    graph.add_parallel(
        "sum", [] { return size_t{1000}; },
        [&sum](size_t g) {
          sum.fetch_add(static_cast<int64_t>(g * g * 2654435761u),
                        std::memory_order_relaxed);
        });
    graph.run();
    return sum.load();
  };
  const int64_t serial = accumulate(nullptr);
  EXPECT_EQ(serial, accumulate(util::TaskRuntime::create(2)));
  EXPECT_EQ(serial, accumulate(util::TaskRuntime::create(8)));
}

TEST(GraphDeterminism, PhaseOverlapKeepsIndependentChainsIsolated) {
  // Two independent chains (the bonded-vs-nonbonded shape) plus a joint
  // reduction: whatever interleaving the scheduler picks, each chain sees
  // only its own writes and the join folds in declaration order.
  auto run_chains = [](const std::shared_ptr<util::TaskRuntime>& rt) {
    util::TaskGraph graph(rt, "test.chains");
    double a = 0.0, b = 0.0, joint = 0.0;
    const util::TaskId a1 = graph.add("a1", [&] { a = 1.25; });
    const util::TaskId a2 =
        graph.add("a2", [&] { a = mix(a, 3.0); }, {a1});
    const util::TaskId b1 = graph.add_parallel(
        "b1", [] { return size_t{64}; },
        [&b](size_t) { /* read-only grains */ (void)b; });
    const util::TaskId b2 =
        graph.add("b2", [&] { b = mix(0.5, 7.0); }, {b1});
    graph.add_reduction("join", [&] { joint = mix(a, b); }, {a2, b2});
    graph.run();
    return joint;
  };
  const double serial = run_chains(nullptr);
  for (int round = 0; round < 10; ++round) {
    EXPECT_EQ(serial, run_chains(util::TaskRuntime::create(8)));
  }
}

}  // namespace
}  // namespace antmd
