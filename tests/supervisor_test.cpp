// resilience::Supervisor unit tests: the snapshot ring, failure
// classification, each recovery path (retry/rollback, mirror degrade, node
// remap via the phase watchdog), and the RecoveryReport contract.  The
// bit-identity acceptance matrix lives in fault_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "ff/forcefield.hpp"
#include "io/checkpoint.hpp"
#include "machine/config.hpp"
#include "md/simulation.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd {
namespace {

std::string temp_path(const std::string& name) {
  return std::string("/tmp/antmd_supervisor_test_") + name;
}

ff::NonbondedModel lj_model() {
  ff::NonbondedModel m;
  m.cutoff = 7.0;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

md::SimulationConfig host_config() {
  md::SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 120.0;
  cfg.thermostat.gamma_per_ps = 5.0;
  return cfg;
}

runtime::MachineSimConfig machine_config() {
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 120.0;
  return cfg;
}

TEST(SnapshotRing, KeepsNewestAndEvictsOldest) {
  resilience::SnapshotRing ring(2);
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.newest_step(), Error);
  EXPECT_THROW(ring.newest_blob(), Error);

  ring.push(0, "a");
  ring.push(10, "b");
  ring.push(20, "c");  // evicts step 0
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.newest_step(), 20u);
  EXPECT_EQ(ring.newest_blob(), "c");

  // Re-pushing the same step refreshes in place instead of duplicating.
  ring.push(20, "c2");
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.newest_blob(), "c2");
}

TEST(SnapshotRing, ByteBudgetEvictsBelowDepthCap) {
  // Depth alone would hold 8 entries; a 100-byte budget holds only two
  // 40-byte blobs, so old entries evict early and bytes() tracks exactly.
  resilience::SnapshotRing ring(8, 100);
  EXPECT_EQ(ring.bytes(), 0u);
  ring.push(0, std::string(40, 'a'));
  ring.push(10, std::string(40, 'b'));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.bytes(), 80u);

  ring.push(20, std::string(40, 'c'));  // 120 B > 100 B: evicts step 0
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.bytes(), 80u);
  EXPECT_EQ(ring.newest_step(), 20u);

  // Same-step refresh accounts the size delta, not a duplicate.
  ring.push(20, std::string(60, 'C'));
  EXPECT_EQ(ring.bytes(), 100u);
  EXPECT_EQ(ring.size(), 2u);

  // One blob larger than the whole budget: the newest entry always
  // survives so rollback still has a target.
  ring.push(30, std::string(500, 'd'));
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.bytes(), 500u);
  EXPECT_EQ(ring.newest_blob(), std::string(500, 'd'));
}

TEST(Supervisor, ByteBoundedRingStillRecoversAndPublishesGauge) {
  obs::ScopedTelemetry telemetry(true);
  auto spec = build_lj_fluid(125, 0.021, 11);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());

  // Budget below two serialized states: the ring holds exactly the newest
  // snapshot, yet rollback recovery still completes the faulted run.
  util::BinaryWriter probe;
  sim.save_checkpoint(probe);
  const size_t one_state = probe.buffer().size();

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 12;
  plan.payload = 17;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.snapshot_interval = 5;
  sc.snapshot_ring_depth = 8;
  sc.snapshot_ring_bytes = one_state + one_state / 2;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(30);

  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.rollbacks, 1u);
  EXPECT_GT(supervisor.snapshot_bytes(), 0u);
  EXPECT_LE(supervisor.snapshot_bytes(), sc.snapshot_ring_bytes);
  // The resident-bytes gauge tracks the ring for the fleet layer.
  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.gauge_or("resilience.supervisor.snapshot_bytes", -1.0),
            static_cast<double>(supervisor.snapshot_bytes()));
}

TEST(Supervisor, RejectsBadConfig) {
  auto spec = build_lj_fluid(125, 0.021, 1);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());

  resilience::SupervisorConfig bad;
  bad.max_retries = 0;
  EXPECT_THROW(resilience::Supervisor<md::Simulation>(sim, bad), ConfigError);
  bad = {};
  bad.snapshot_interval = 0;
  EXPECT_THROW(resilience::Supervisor<md::Simulation>(sim, bad), ConfigError);
  bad = {};
  bad.backoff_factor = 0.5;
  EXPECT_THROW(resilience::Supervisor<md::Simulation>(sim, bad), ConfigError);
}

TEST(Supervisor, CleanRunCompletesWithEmptyEventLog) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());

  resilience::SupervisorConfig sc;
  sc.snapshot_interval = 10;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(25);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.steps_delivered, 25u);
  EXPECT_EQ(report.faults_detected, 0u);
  EXPECT_TRUE(report.events.empty());
  EXPECT_GE(report.snapshots, 3u);  // step 0, 10, 20
  EXPECT_TRUE(report.final_error.empty());
  EXPECT_EQ(sim.state().step, 25u);
}

TEST(Supervisor, TransientIoErrorInStepRollsBackAndCompletes) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());
  // A trajectory writer whose disk fails exactly once: the step throws
  // IoError, the supervisor rolls back and the re-run sails past.
  bool thrown = false;
  sim.add_observer(
      [&](const md::StepInfo& info) {
        if (info.step == 7 && !thrown) {
          thrown = true;
          throw IoError("transient trajectory write failure");
        }
      },
      1);

  resilience::SupervisorConfig sc;
  sc.snapshot_interval = 5;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(20);

  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_TRUE(thrown);
  EXPECT_EQ(report.faults_detected, 1u);
  EXPECT_EQ(report.rollbacks, 1u);
  ASSERT_EQ(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].kind, resilience::FailureKind::kIo);
  EXPECT_EQ(report.events[0].action, resilience::RecoveryAction::kRollback);
  EXPECT_GT(report.events[0].backoff_s, 0.0);
  EXPECT_EQ(sim.state().step, 20u);
}

TEST(Supervisor, PersistentMirrorFailureDegradesInsteadOfAborting) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());

  // Every checkpoint write fails (disk full): the supervisor retries with
  // backoff, then drops the mirror and finishes on the in-memory ring.
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kIoWriteFail;
  plan.count = -1;
  fault::ScopedFault f(plan);

  std::string path = temp_path("mirror.ckpt");
  resilience::SupervisorConfig sc;
  sc.max_retries = 2;
  sc.snapshot_interval = 10;
  sc.checkpoint_path = path;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(25);

  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(sim.state().step, 25u);
  EXPECT_EQ(report.retries, 2u);
  bool degraded = false;
  for (const auto& e : report.events) {
    if (e.action == resilience::RecoveryAction::kDegrade &&
        e.detail.find("mirror disabled") != std::string::npos) {
      degraded = true;
    }
  }
  EXPECT_TRUE(degraded);
  std::remove(path.c_str());
}

TEST(Supervisor, WatchdogRemapsHungNodeAndRunContinues) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  ForceField field(spec.topology, lj_model());
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box, machine_config());

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNodeHang;
  plan.fire_after = 4;  // transport polls once per step
  plan.count = 1;
  plan.payload = 5;  // node that stops acking
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.watchdog_ms = 1.0;  // modeled steps are ~µs; the 5 ms hang trips this
  sc.snapshot_interval = 10;
  resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(20);

  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.watchdog_trips, 1u);
  EXPECT_EQ(report.node_remaps, 1u);
  EXPECT_TRUE(sim.engine().node_failed(5));
  EXPECT_EQ(sim.engine().alive_node_count(), 7u);
  EXPECT_EQ(sim.transport().hung_node(), machine::StepDelivery::kNoNode);
  EXPECT_EQ(sim.state().step, 20u);
  bool remap_event = false;
  for (const auto& e : report.events) {
    if (e.kind == resilience::FailureKind::kWatchdog &&
        e.action == resilience::RecoveryAction::kDegrade) {
      remap_event = true;
    }
  }
  EXPECT_TRUE(remap_event);
}

TEST(Supervisor, NodeDropoutIsObservedAsDegradeEvent) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  ForceField field(spec.topology, lj_model());
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box, machine_config());

  resilience::SupervisorConfig sc;
  sc.snapshot_interval = 10;
  resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
  supervisor.run(5);
  // A node dies mid-run; the engine remaps it silently and bit-exactly —
  // the supervisor's job is to make that visible in the report.
  sim.mutable_engine().set_node_failed(3);
  resilience::RecoveryReport report = supervisor.run(10);

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.node_remaps, 1u);
  ASSERT_GE(report.events.size(), 1u);
  EXPECT_EQ(report.events[0].kind, resilience::FailureKind::kNodeFailure);
  EXPECT_EQ(report.events[0].action, resilience::RecoveryAction::kDegrade);
}

// Transport retry-budget exhaustion: a link that drops every packet burns
// the per-message retry budget, gets down-marked, and traffic reroutes the
// long way around the torus ring.  The cost lands exclusively in the
// reliability accounting — the physics is bit-identical to the healthy run
// — and the degraded link state survives a checkpoint restart, after which
// the run continues bit-identically.
TEST(Supervisor, TransportRetryBudgetExhaustionDownMarksAndStaysBitExact) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  auto model = lj_model();
  auto cfg = machine_config();
  constexpr size_t kSteps = 20;

  ForceField field_ref(spec.topology, model);
  runtime::MachineSimulation reference(field_ref,
                                       machine::anton_with_torus(2, 2, 2),
                                       spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, model);
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box, cfg);
  std::string path = temp_path("transport_budget.ckpt");
  resilience::RecoveryReport report;
  {
    // Every send attempt on the scheduled link times out: the retry budget
    // can never succeed and the transport must escalate to a down-mark.
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::kLinkDrop;
    plan.fire_after = 0;
    plan.count = -1;
    fault::ScopedFault f(plan);

    resilience::SupervisorConfig sc;
    sc.snapshot_interval = 10;
    sc.checkpoint_path = path;
    resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
    report = supervisor.run(kSteps);
  }

  // The run completed without supervisor-level recovery: retry-budget
  // exhaustion is a transport-layer degradation, not a run failure.
  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.rollbacks, 0u);

  const machine::TransportStats& stats = sim.transport().stats();
  const int budget = sim.transport().config().retry_budget;
  EXPECT_GT(stats.drops, 0u);
  EXPECT_GE(stats.retransmits, static_cast<uint64_t>(budget));
  EXPECT_GT(stats.rerouted, 0u);
  EXPECT_GT(sim.transport().down_link_count(), 0u);
  // The protocol overhead is charged to reliability (modeled time), never
  // to physics phases — and the trajectory proves it.
  EXPECT_GT(stats.reliability_s, 0.0);
  EXPECT_GT(sim.accumulated().reliability, 0.0);
  const State& sa = reference.state();
  const State& sb = sim.state();
  ASSERT_EQ(sa.positions.size(), sb.positions.size());
  for (size_t i = 0; i < sa.positions.size(); ++i) {
    ASSERT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
    ASSERT_EQ(sa.velocities[i], sb.velocities[i]) << "atom " << i;
  }
  EXPECT_EQ(reference.potential_energy(), sim.potential_energy());

  // Restart from the supervisor's mirror: the down-marked links and the
  // cumulative reliability counters come back, and the continued run is
  // bit-identical to the uninterrupted one.
  ForceField field2(spec.topology, model);
  runtime::MachineSimulation restored(field2, machine::anton_with_torus(2, 2, 2),
                                      spec.positions, spec.box, cfg);
  io::load_checkpoint_v2_or_backup(path, {{"sim", &restored}});
  ASSERT_EQ(restored.state().step, kSteps);
  EXPECT_EQ(restored.transport().down_link_count(),
            sim.transport().down_link_count());
  EXPECT_EQ(restored.transport().stats().retransmits, stats.retransmits);
  EXPECT_EQ(restored.transport().stats().reliability_s, stats.reliability_s);

  sim.run(10);
  restored.run(10);
  for (size_t i = 0; i < sim.state().positions.size(); ++i) {
    ASSERT_EQ(sim.state().positions[i], restored.state().positions[i])
        << "atom " << i;
    ASSERT_EQ(sim.state().velocities[i], restored.state().velocities[i])
        << "atom " << i;
  }
  EXPECT_EQ(sim.potential_energy(), restored.potential_energy());
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
}

TEST(RecoveryReport, RenderAndAtomicWrite) {
  resilience::RecoveryReport report;
  report.completed = false;
  report.steps_delivered = 17;
  report.faults_detected = 3;
  report.final_error = "numerical: boom";
  report.events.push_back({12, resilience::FailureKind::kNumerical,
                           resilience::RecoveryAction::kRollback, 0.004,
                           "rolled back"});
  std::string text = report.render();
  EXPECT_NE(text.find("run abandoned"), std::string::npos);
  EXPECT_NE(text.find("numerical -> rollback"), std::string::npos);
  EXPECT_NE(text.find("backoff=0.004"), std::string::npos);
  EXPECT_NE(text.find("numerical: boom"), std::string::npos);

  std::string path = temp_path("report.txt");
  resilience::write_recovery_report(path, report);
  EXPECT_EQ(io::read_file(path), text);
  std::remove(path.c_str());

  EXPECT_STREQ(resilience::failure_kind_name(
                   resilience::FailureKind::kWatchdog), "watchdog");
  EXPECT_STREQ(resilience::recovery_action_name(
                   resilience::RecoveryAction::kEscalate), "escalate");
}

}  // namespace
}  // namespace antmd
