// Tier-2 soak: seeded random fault schedules driven through the
// supervisor.  Each schedule derives a fault kind, fire point and payload
// from a splitmix64 stream, runs a supervised machine simulation, and
// checks the two invariants that define PR 4:
//
//   1. when recovery succeeds, the trajectory is bit-identical to the
//      fault-free reference (faults cost modeled time, never physics)
//   2. when it cannot succeed, the supervisor escalates with a coherent
//      RecoveryReport instead of crashing or hanging
//
// The schedule count defaults to a CI-friendly handful; scripts/run_soak.sh
// raises it via ANTMD_SOAK_SCHEDULES for longer chaos runs.  Registered
// under the ctest label "soak" (tier 2).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "ff/forcefield.hpp"
#include "machine/config.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/fault.hpp"

namespace antmd {
namespace {

constexpr size_t kSteps = 25;

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

size_t schedule_count() {
  if (const char* env = std::getenv("ANTMD_SOAK_SCHEDULES")) {
    long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 6;
}

runtime::MachineSimConfig machine_config() {
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 120.0;
  return cfg;
}

TEST(Soak, RandomFaultSchedulesRecoverBitExactOrEscalateCleanly) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;
  auto cfg = machine_config();

  ForceField field_ref(spec.topology, model);
  runtime::MachineSimulation reference(field_ref,
                                       machine::anton_with_torus(2, 2, 2),
                                       spec.positions, spec.box, cfg);
  reference.run(kSteps);

  // Recoverable kinds only: a one-shot fault of any of these must leave
  // the trajectory untouched.  (kIoWriteFail/kIoShortWrite target the
  // checkpoint layer and are soaked separately below.)
  const fault::FaultKind kinds[] = {
      fault::FaultKind::kNanForce,
      fault::FaultKind::kLinkDrop,
      fault::FaultKind::kPacketCorrupt,
      fault::FaultKind::kNodeHang,
  };

  const size_t schedules = schedule_count();
  for (size_t s = 0; s < schedules; ++s) {
    uint64_t stream = 0x50ACED00 + s;
    const fault::FaultKind kind = kinds[splitmix64(stream) % 4];
    // Fire points stay inside the run for every kind's event cadence:
    // kNanForce/kNodeHang poll once per step, link faults many times.
    const uint64_t fire_after = splitmix64(stream) % (kSteps - 5);
    const uint64_t payload = splitmix64(stream);
    SCOPED_TRACE("schedule " + std::to_string(s) + ": kind=" +
                 std::to_string(static_cast<int>(kind)) + " fire_after=" +
                 std::to_string(fire_after));

    ForceField field(spec.topology, model);
    runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                   spec.positions, spec.box, cfg);
    fault::FaultPlan plan;
    plan.kind = kind;
    plan.fire_after = fire_after;
    plan.count = 1;
    plan.payload = payload;
    fault::ScopedFault f(plan);

    resilience::SupervisorConfig sc;
    sc.max_retries = 3;
    sc.snapshot_interval = 8;
    sc.watchdog_ms = 1.0;
    resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
    resilience::RecoveryReport report = supervisor.run(kSteps);

    ASSERT_TRUE(report.completed) << report.final_error;
    ASSERT_EQ(sim.state().step, kSteps);
    const State& sa = reference.state();
    const State& sb = sim.state();
    for (size_t i = 0; i < sa.positions.size(); ++i) {
      ASSERT_EQ(sa.positions[i], sb.positions[i])
          << "schedule " << s << " atom " << i;
      ASSERT_EQ(sa.velocities[i], sb.velocities[i])
          << "schedule " << s << " atom " << i;
    }
  }
}

TEST(Soak, UnrecoverableSchedulesEscalateWithReport) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  ff::NonbondedModel model;
  model.cutoff = 7.0;
  model.electrostatics = ff::Electrostatics::kNone;

  const size_t schedules = std::max<size_t>(2, schedule_count() / 3);
  for (size_t s = 0; s < schedules; ++s) {
    uint64_t stream = 0xDEAD0000 + s;
    SCOPED_TRACE("schedule " + std::to_string(s));
    ForceField field(spec.topology, model);
    runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                   spec.positions, spec.box,
                                   machine_config());
    // Fires on every force evaluation once eligible: no retry budget can
    // cover it, so the only acceptable outcome is a clean escalation.
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::kNanForce;
    plan.fire_after = splitmix64(stream) % 10;
    plan.count = -1;
    plan.payload = splitmix64(stream);
    fault::ScopedFault f(plan);

    resilience::SupervisorConfig sc;
    sc.max_retries = 1 + static_cast<int>(splitmix64(stream) % 3);
    sc.snapshot_interval = 8;
    resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
    resilience::RecoveryReport report = supervisor.run(kSteps);

    EXPECT_FALSE(report.completed);
    EXPECT_FALSE(report.final_error.empty());
    EXPECT_EQ(report.retries, static_cast<uint64_t>(sc.max_retries));
    ASSERT_FALSE(report.events.empty());
    EXPECT_EQ(report.events.back().action,
              resilience::RecoveryAction::kEscalate);
  }
}

}  // namespace
}  // namespace antmd
