// Unit and property tests for src/math: vectors, PBC, RNG, splines,
// radial tables, fixed-point determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "math/fixed.hpp"
#include "math/pbc.hpp"
#include "math/rng.hpp"
#include "math/spline.hpp"
#include "math/units.hpp"
#include "math/vec.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(norm(Vec3(3, 4, 0)), 5.0);
}

TEST(Vec3, NormalizedHasUnitLength) {
  Vec3 v{1.7, -2.3, 0.4};
  EXPECT_NEAR(norm(normalized(v)), 1.0, 1e-14);
}

TEST(Mat3, MatVecAndOuter) {
  Mat3 m = Mat3::diagonal(2, 3, 4);
  EXPECT_EQ(m * Vec3(1, 1, 1), Vec3(2, 3, 4));
  Mat3 o = outer(Vec3(1, 2, 3), Vec3(4, 5, 6));
  EXPECT_DOUBLE_EQ(o(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(o(2, 1), 15.0);
  EXPECT_DOUBLE_EQ(trace(m), 9.0);
}

TEST(Box, WrapMapsIntoPrimaryCell) {
  Box box(10, 20, 30);
  Vec3 w = box.wrap({-1, 25, 31});
  EXPECT_NEAR(w.x, 9, 1e-12);
  EXPECT_NEAR(w.y, 5, 1e-12);
  EXPECT_NEAR(w.z, 1, 1e-12);
}

TEST(Box, WrapIsIdempotent) {
  Box box = Box::cubic(17.3);
  SequentialRng rng(7);
  for (int i = 0; i < 200; ++i) {
    Vec3 r{rng.uniform(-100, 100), rng.uniform(-100, 100),
           rng.uniform(-100, 100)};
    Vec3 w = box.wrap(r);
    Vec3 w2 = box.wrap(w);
    EXPECT_NEAR(w.x, w2.x, 1e-12);
    EXPECT_NEAR(w.y, w2.y, 1e-12);
    EXPECT_NEAR(w.z, w2.z, 1e-12);
    EXPECT_GE(w.x, 0.0);
    EXPECT_LT(w.x, 17.3);
  }
}

TEST(Box, MinImageNeverExceedsHalfBox) {
  Box box(12, 15, 9);
  SequentialRng rng(11);
  for (int i = 0; i < 500; ++i) {
    Vec3 a{rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(-50, 50)};
    Vec3 b{rng.uniform(-50, 50), rng.uniform(-50, 50), rng.uniform(-50, 50)};
    Vec3 d = box.min_image(a, b);
    EXPECT_LE(std::abs(d.x), 6.0 + 1e-12);
    EXPECT_LE(std::abs(d.y), 7.5 + 1e-12);
    EXPECT_LE(std::abs(d.z), 4.5 + 1e-12);
  }
}

TEST(Box, MinImageAntisymmetric) {
  Box box = Box::cubic(20);
  Vec3 a{1, 2, 3}, b{18, 19, 17};
  Vec3 dab = box.min_image(a, b);
  Vec3 dba = box.min_image(b, a);
  EXPECT_NEAR(dab.x, -dba.x, 1e-12);
  EXPECT_NEAR(dab.y, -dba.y, 1e-12);
  EXPECT_NEAR(dab.z, -dba.z, 1e-12);
}

TEST(Box, InvalidEdgesThrow) {
  EXPECT_THROW(Box(0, 1, 1), Error);
  EXPECT_THROW(Box(1, -2, 1), Error);
}

TEST(CounterRng, DeterministicAcrossInstances) {
  CounterRng a(1234, 7), b(1234, 7);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform(i, 3), b.uniform(i, 3));
    EXPECT_EQ(a.gaussian(i, 3), b.gaussian(i, 3));
  }
}

TEST(CounterRng, DifferentStreamsDiffer) {
  CounterRng a(1234, 0), b(1234, 1);
  int same = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    if (a.uniform(i, 0) == b.uniform(i, 0)) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(CounterRng, UniformMomentsAreRight) {
  CounterRng rng(42, 0);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double u = rng.uniform(static_cast<uint64_t>(i), 0);
    sum += u;
    sum2 += u * u;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(CounterRng, GaussianMomentsAreRight) {
  CounterRng rng(42, 3);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.gaussian(static_cast<uint64_t>(i), 5);
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(CounterRng, Gaussian3ComponentsUncorrelated) {
  CounterRng rng(9, 0);
  double sxy = 0, sxz = 0, syz = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto g = rng.gaussian3(static_cast<uint64_t>(i), 0);
    sxy += g[0] * g[1];
    sxz += g[0] * g[2];
    syz += g[1] * g[2];
  }
  EXPECT_NEAR(sxy / n, 0.0, 0.05);
  EXPECT_NEAR(sxz / n, 0.0, 0.05);
  EXPECT_NEAR(syz / n, 0.0, 0.05);
}

TEST(CounterRng, UniformIntInRange) {
  CounterRng rng(5, 0);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(i, 0, 17), 17u);
  }
  EXPECT_THROW(static_cast<void>(rng.uniform_int(0, 0, 0)), Error);
}

TEST(SequentialRng, ReproducibleAndWellDistributed) {
  SequentialRng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  SequentialRng c(1);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += c.uniform();
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(CubicSpline, ReproducesCubicExactlyAtKnots) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    double x = i * 0.5;
    xs.push_back(x);
    ys.push_back(std::sin(x));
  }
  CubicSpline s(xs, ys);
  for (int i = 0; i <= 20; ++i) {
    EXPECT_NEAR(s.value(i * 0.5), std::sin(i * 0.5), 1e-12);
  }
  // Interior accuracy for a smooth function (natural end conditions make
  // the spline's second derivative wrong near the boundary, so stay inside).
  for (double x = 1.2; x < 8.8; x += 0.37) {
    EXPECT_NEAR(s.value(x), std::sin(x), 2e-3);
    EXPECT_NEAR(s.derivative(x), std::cos(x), 2e-2);
  }
}

TEST(CubicSpline, RejectsBadInput) {
  auto make = [](std::vector<double> x, std::vector<double> y) {
    CubicSpline s(std::move(x), std::move(y));
    return s.value(1.0);
  };
  EXPECT_THROW(make({1, 2}, {1, 2}), Error);
  EXPECT_THROW(make({1, 1, 2}, {0, 0, 0}), Error);
  EXPECT_THROW(make({1, 2, 3}, {0, 0}), Error);
}

double lj_energy(double r) {
  double s6 = std::pow(1.0 / r, 6);
  return 4.0 * (s6 * s6 - s6);
}
double lj_denergy(double r) {
  double inv = 1.0 / r;
  double s6 = std::pow(inv, 6);
  return 4.0 * (-12.0 * s6 * s6 + 6.0 * s6) * inv;
}

TEST(RadialTable, MatchesAnalyticLennardJones) {
  auto table = RadialTable::from_potential(lj_energy, lj_denergy, 0.8, 3.0,
                                           2048, /*shift=*/false);
  for (double r = 0.85; r < 2.95; r += 0.013) {
    auto e = table.evaluate(r * r);
    EXPECT_NEAR(e.energy, lj_energy(r), 2e-4) << "r=" << r;
    double f_over_r = -lj_denergy(r) / r;
    EXPECT_NEAR(e.force_over_r, f_over_r, 5e-3 * std::max(1.0, std::abs(f_over_r)))
        << "r=" << r;
  }
}

TEST(RadialTable, ZeroBeyondCutoff) {
  auto table = RadialTable::from_potential(lj_energy, lj_denergy, 0.8, 3.0,
                                           256, false);
  auto e = table.evaluate(3.01 * 3.01);
  EXPECT_EQ(e.energy, 0.0);
  EXPECT_EQ(e.force_over_r, 0.0);
}

TEST(RadialTable, ShiftMakesCutoffZero) {
  auto table = RadialTable::from_potential(lj_energy, lj_denergy, 0.8, 2.5,
                                           512, true);
  auto e = table.evaluate(2.4999 * 2.4999);
  EXPECT_NEAR(e.energy, 0.0, 1e-5);
}

TEST(RadialTable, ClampsBelowRmin) {
  auto table = RadialTable::from_potential(lj_energy, lj_denergy, 0.9, 3.0,
                                           256, false);
  auto inner = table.evaluate(0.5 * 0.5);
  auto at_min = table.evaluate(0.9 * 0.9);
  EXPECT_DOUBLE_EQ(inner.energy, at_min.energy);
}

TEST(RadialTable, AccuracyImprovesWithResolution) {
  double prev_err = 1e9;
  for (size_t bins : {64, 256, 1024}) {
    auto table = RadialTable::from_potential(lj_energy, lj_denergy, 0.8, 3.0,
                                             bins, false);
    double err = 0;
    for (double r = 0.9; r < 2.9; r += 0.009) {
      auto e = table.evaluate(r * r);
      err = std::max(err, std::abs(e.energy - lj_energy(r)));
    }
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(FixedPos, RoundTripsWithinQuantum) {
  SequentialRng rng(3);
  for (int i = 0; i < 1000; ++i) {
    Vec3 v{rng.uniform(-500, 500), rng.uniform(-500, 500),
           rng.uniform(-500, 500)};
    Vec3 back = FixedPos::from_vec(v).to_vec();
    EXPECT_NEAR(back.x, v.x, 1.0 / fixed::kPosScale);
    EXPECT_NEAR(back.y, v.y, 1.0 / fixed::kPosScale);
    EXPECT_NEAR(back.z, v.z, 1.0 / fixed::kPosScale);
  }
}

TEST(FixedPos, SnapIsIdempotent) {
  Vec3 v{1.234567890123, -9.87654321, 0.333333333};
  Vec3 once = snap_position(v);
  EXPECT_EQ(snap_position(once), once);
}

// The core determinism property: accumulating the same pair forces in any
// order, split across any number of partial accumulators, gives bit-identical
// results.
TEST(FixedForceArray, OrderAndPartitionIndependent) {
  const size_t n_atoms = 64;
  const size_t n_pairs = 5000;
  SequentialRng rng(17);
  struct Pair {
    size_t i, j;
    Vec3 f;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n_pairs);
  for (size_t k = 0; k < n_pairs; ++k) {
    size_t i = rng.uniform_int(n_atoms);
    size_t j = (i + 1 + rng.uniform_int(n_atoms - 1)) % n_atoms;
    pairs.push_back({i, j,
                     Vec3{rng.uniform(-50, 50), rng.uniform(-50, 50),
                          rng.uniform(-50, 50)}});
  }

  // Reference: sequential accumulation.
  FixedForceArray ref(n_atoms);
  for (const auto& p : pairs) ref.add_pair(p.i, p.j, p.f);

  // Shuffled order.
  std::vector<Pair> shuffled = pairs;
  std::mt19937 g(5);
  std::shuffle(shuffled.begin(), shuffled.end(), g);
  FixedForceArray out_shuffled(n_atoms);
  for (const auto& p : shuffled) out_shuffled.add_pair(p.i, p.j, p.f);
  EXPECT_EQ(ref, out_shuffled);

  // Partitioned into 7 "nodes", merged.
  for (size_t n_nodes : {2u, 7u, 16u}) {
    std::vector<FixedForceArray> parts(n_nodes, FixedForceArray(n_atoms));
    for (size_t k = 0; k < shuffled.size(); ++k) {
      parts[k % n_nodes].add_pair(shuffled[k].i, shuffled[k].j, shuffled[k].f);
    }
    FixedForceArray merged(n_atoms);
    for (const auto& p : parts) merged.merge(p);
    EXPECT_EQ(ref, merged) << n_nodes << " nodes";
  }
}

TEST(FixedForceArray, PairForcesSumToZero) {
  FixedForceArray acc(8);
  SequentialRng rng(23);
  for (int k = 0; k < 300; ++k) {
    acc.add_pair(rng.uniform_int(8), rng.uniform_int(8),
                 Vec3{rng.uniform(-3, 3), rng.uniform(-3, 3),
                      rng.uniform(-3, 3)});
  }
  Vec3 total{};
  for (size_t i = 0; i < 8; ++i) total += acc.force(i);
  EXPECT_EQ(total, Vec3(0, 0, 0));  // exact, by integer arithmetic
}

TEST(FixedScalar, OrderIndependentSum) {
  std::vector<double> values;
  SequentialRng rng(31);
  for (int i = 0; i < 2000; ++i) values.push_back(rng.uniform(-7, 7));

  FixedScalar fwd;
  for (double v : values) fwd.add(v);
  FixedScalar bwd;
  for (auto it = values.rbegin(); it != values.rend(); ++it) bwd.add(*it);
  EXPECT_EQ(fwd, bwd);
}

TEST(Units, TimeConversionRoundTrip) {
  EXPECT_NEAR(units::internal_to_fs(units::fs_to_internal(2.5)), 2.5, 1e-12);
  // 1 internal time unit is ~48.9 fs.
  EXPECT_NEAR(units::kFsPerInternalTime, 48.888, 0.01);
}

TEST(Units, ThermalEnergyAt300K) {
  // kT at 300 K should be ~0.596 kcal/mol.
  EXPECT_NEAR(units::kBoltzmann * 300.0, 0.596, 0.001);
}

}  // namespace
}  // namespace antmd
