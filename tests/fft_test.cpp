// Tests for the from-scratch FFT: round trips, known transforms, Parseval,
// 3D transforms, and the distributed-cost estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "fft/fft.hpp"
#include "fft/fft3d.hpp"
#include "math/rng.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(24));
}

TEST(Fft, RejectsNonPow2) {
  std::vector<Complex> data(24);
  EXPECT_THROW(fft_forward(data), Error);
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Complex> data(16, {0, 0});
  data[0] = {1, 0};
  fft_forward(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleModeIsDetected) {
  const size_t n = 64;
  std::vector<Complex> data(n);
  const size_t mode = 5;
  for (size_t i = 0; i < n; ++i) {
    double phase = 2.0 * M_PI * static_cast<double>(mode * i) / n;
    data[i] = {std::cos(phase), std::sin(phase)};
  }
  fft_forward(data);
  for (size_t k = 0; k < n; ++k) {
    double expected = (k == mode) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(data[k]), expected, 1e-9) << "k=" << k;
  }
}

TEST(Fft, RoundTripRestoresInput) {
  SequentialRng rng(4);
  for (size_t n : {2u, 8u, 128u, 1024u}) {
    std::vector<Complex> data(n);
    for (auto& v : data) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto orig = data;
    fft_forward(data);
    fft_inverse(data);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-10);
      EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-10);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  SequentialRng rng(9);
  const size_t n = 256;
  std::vector<Complex> data(n);
  double time_sum = 0;
  for (auto& v : data) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    time_sum += std::norm(v);
  }
  fft_forward(data);
  double freq_sum = 0;
  for (const auto& v : data) freq_sum += std::norm(v);
  EXPECT_NEAR(freq_sum, time_sum * n, 1e-8 * time_sum * n);
}

TEST(Fft, LinearityHolds) {
  SequentialRng rng(13);
  const size_t n = 64;
  std::vector<Complex> a(n), b(n), sum(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = {rng.uniform(-1, 1), 0};
    b[i] = {rng.uniform(-1, 1), 0};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft_forward(a);
  fft_forward(b);
  fft_forward(sum);
  for (size_t i = 0; i < n; ++i) {
    Complex expect = a[i] + 2.0 * b[i];
    EXPECT_NEAR(std::abs(sum[i] - expect), 0.0, 1e-10);
  }
}

TEST(Fft3d, RoundTrip) {
  Grid3D g(8, 4, 16);
  SequentialRng rng(21);
  for (auto& v : g.raw()) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto orig = g.raw();
  fft3d_forward(g);
  fft3d_inverse(g);
  for (size_t i = 0; i < orig.size(); ++i) {
    EXPECT_NEAR(g.raw()[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(g.raw()[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST(Fft3d, PlaneWaveSingleCoefficient) {
  const size_t nx = 8, ny = 8, nz = 8;
  Grid3D g(nx, ny, nz);
  const size_t mx = 2, my = 3, mz = 1;
  for (size_t z = 0; z < nz; ++z) {
    for (size_t y = 0; y < ny; ++y) {
      for (size_t x = 0; x < nx; ++x) {
        double phase = 2.0 * M_PI *
                       (static_cast<double>(mx * x) / nx +
                        static_cast<double>(my * y) / ny +
                        static_cast<double>(mz * z) / nz);
        g.at(x, y, z) = {std::cos(phase), std::sin(phase)};
      }
    }
  }
  fft3d_forward(g);
  for (size_t z = 0; z < nz; ++z) {
    for (size_t y = 0; y < ny; ++y) {
      for (size_t x = 0; x < nx; ++x) {
        double expected =
            (x == mx && y == my && z == mz) ? double(nx * ny * nz) : 0.0;
        EXPECT_NEAR(std::abs(g.at(x, y, z)), expected, 1e-8);
      }
    }
  }
}

TEST(Fft3d, RejectsNonPow2Grid) {
  EXPECT_THROW(Grid3D(7, 8, 8), Error);
}

TEST(Fft3d, CostEstimateScales) {
  auto small = estimate_fft_cost(32, 32, 32, 1);
  auto big = estimate_fft_cost(64, 64, 64, 1);
  EXPECT_GT(big.flops, 8.0 * small.flops * 0.9);
  EXPECT_EQ(small.alltoall_bytes, 0.0);  // single node: no transpose

  auto dist = estimate_fft_cost(32, 32, 32, 8);
  EXPECT_GT(dist.alltoall_bytes, 0.0);
  EXPECT_EQ(dist.messages_per_node, 14u);  // 2 transposes × 7 peers
}

}  // namespace
}  // namespace antmd
