// Tests for the sampling methods: simulated tempering, replica exchange,
// metadynamics, TAMD, FEP, umbrella sampling, steered pulling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/free_energy.hpp"
#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "sampling/common.hpp"
#include "sampling/fep.hpp"
#include "sampling/metadynamics.hpp"
#include "sampling/replica_exchange.hpp"
#include "sampling/smd.hpp"
#include "sampling/tamd.hpp"
#include "sampling/tempering.hpp"
#include "sampling/umbrella.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::sampling {
namespace {

ff::NonbondedModel lj_model(double cutoff = 7.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

md::SimulationConfig langevin_config(double temperature, double dt = 4.0) {
  md::SimulationConfig cfg;
  cfg.dt_fs = dt;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = temperature;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = temperature;
  cfg.thermostat.gamma_per_ps = 5.0;
  return cfg;
}

TEST(Common, PotentialEnergyMatchesSimulation) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto model = lj_model();
  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));
  double direct = potential_energy(field, sim.state().positions,
                                   sim.state().box);
  EXPECT_NEAR(direct, sim.potential_energy(),
              1e-9 * std::abs(sim.potential_energy()) + 1e-9);
}

TEST(Tempering, WalksTheLadder) {
  auto spec = build_lj_fluid(125, 0.021, 5);
  auto model = lj_model();
  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  TemperingConfig cfg;
  cfg.ladder = {120, 140, 165, 195};
  cfg.attempt_interval = 10;
  SimulatedTempering st(sim, cfg);
  st.run(800);

  EXPECT_GT(st.attempts(), 50u);
  EXPECT_GT(st.accepts(), 0u);
  // The walk should leave the bottom rung at least sometimes.
  size_t visited = 0;
  for (uint64_t occ : st.occupancy()) {
    if (occ > 0) ++visited;
  }
  EXPECT_GE(visited, 2u);
  // Thermostat target matches the current level.
  EXPECT_DOUBLE_EQ(sim.thermostat().temperature_k(),
                   st.current_temperature());
}

TEST(Tempering, RejectsBadConfig) {
  auto spec = build_lj_fluid(64, 0.021, 5);
  auto model = lj_model(6.0);
  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));
  TemperingConfig cfg;
  cfg.ladder = {200, 100};  // not ascending
  EXPECT_THROW(SimulatedTempering(sim, cfg), Error);
}

TEST(Tremd, NeighbourSwapsAcceptAtCloseTemperatures) {
  auto spec = build_lj_fluid(125, 0.021, 7);
  auto model = lj_model();
  std::vector<double> temps = {120, 130, 141};

  std::vector<std::unique_ptr<ForceField>> fields;
  std::vector<std::unique_ptr<md::Simulation>> sims;
  std::vector<md::Simulation*> ptrs;
  for (double t : temps) {
    fields.push_back(std::make_unique<ForceField>(spec.topology, model));
    sims.push_back(std::make_unique<md::Simulation>(
        *fields.back(), spec.positions, spec.box, langevin_config(t)));
    ptrs.push_back(sims.back().get());
  }

  TemperatureReplicaExchange remd(ptrs, temps, /*attempt_interval=*/20);
  remd.run(400);

  const auto& stats = remd.stats();
  ASSERT_EQ(stats.attempts.size(), 2u);
  EXPECT_GT(stats.attempts[0] + stats.attempts[1], 10u);
  // Close temperatures on a small system: healthy acceptance.
  double acc = static_cast<double>(stats.accepts[0] + stats.accepts[1]) /
               static_cast<double>(stats.attempts[0] + stats.attempts[1]);
  EXPECT_GT(acc, 0.1);
  // slot_to_replica is a permutation.
  auto perm = remd.slot_to_replica();
  std::sort(perm.begin(), perm.end());
  for (size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(perm[i], i);
}

TEST(Hremd, ScaledHamiltoniansExchange) {
  auto spec = build_lj_fluid(125, 0.021, 9);
  auto model = lj_model();
  std::vector<double> scales = {1.0, 0.9, 0.8};

  std::vector<std::unique_ptr<ForceField>> fields;
  std::vector<std::unique_ptr<md::Simulation>> sims;
  std::vector<md::Simulation*> ptrs;
  for (double s : scales) {
    fields.push_back(std::make_unique<ForceField>(spec.topology, model));
    fields.back()->set_vdw_scale(s);
    sims.push_back(std::make_unique<md::Simulation>(
        *fields.back(), spec.positions, spec.box, langevin_config(130)));
    ptrs.push_back(sims.back().get());
  }
  HamiltonianReplicaExchange hremd(ptrs, 130.0, 20);
  hremd.run(200);
  EXPECT_GT(hremd.stats().attempts[0] + hremd.stats().attempts[1], 4u);
  uint64_t total_accepts =
      hremd.stats().accepts[0] + hremd.stats().accepts[1];
  EXPECT_GT(total_accepts, 0u);
}

TEST(Meta, SingleHillShape) {
  auto spec = build_dimer_in_solvent(64, 5.0, 11);
  ff::NonbondedModel model = lj_model(6.0);
  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  MetadynamicsConfig cfg;
  cfg.initial_height = 0.5;
  cfg.sigma = 0.3;
  cfg.deposit_interval = 1000000;  // never auto-deposits in this test
  Metadynamics meta(sim, spec.tagged[0], spec.tagged[1], cfg);
  EXPECT_EQ(meta.hill_count(), 0u);
  EXPECT_DOUBLE_EQ(meta.bias(3.0), 0.0);
}

TEST(Meta, DepositsHillsAndBiasGrows) {
  auto spec = build_dimer_in_solvent(64, 5.0, 13);
  ff::NonbondedModel model = lj_model(6.0);
  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  MetadynamicsConfig cfg;
  cfg.initial_height = 0.4;
  cfg.sigma = 0.3;
  cfg.bias_factor = 6.0;
  cfg.deposit_interval = 20;
  cfg.cv_min = 2.0;
  cfg.cv_max = 9.0;
  Metadynamics meta(sim, spec.tagged[0], spec.tagged[1], cfg);
  meta.run(400);

  EXPECT_GT(meta.hill_count(), 10u);
  // Bias is positive where hills were deposited (near the sampled CV).
  double cv = meta.current_cv();
  EXPECT_GT(meta.bias(cv), 0.0);
  // Free-energy estimate is min-shifted to zero.
  auto fes = meta.free_energy(50);
  double fmin = 1e300;
  for (const auto& [xi, f] : fes) fmin = std::min(fmin, f);
  EXPECT_NEAR(fmin, 0.0, 1e-9);
}

TEST(Meta, WellTemperedHeightsDecay) {
  auto spec = build_dimer_in_solvent(64, 5.0, 15);
  ff::NonbondedModel model = lj_model(6.0);
  ForceField field(spec.topology, model);
  // Freeze the dimer near one CV value with a stiff restraint so hills pile
  // up in one place and the well-tempered decay is visible.
  field.add_distance_restraint({spec.tagged[0], spec.tagged[1], 50.0, 5.0,
                                0.0});
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));
  MetadynamicsConfig cfg;
  cfg.initial_height = 0.5;
  cfg.sigma = 0.4;
  cfg.bias_factor = 3.0;
  cfg.deposit_interval = 10;
  Metadynamics meta(sim, spec.tagged[0], spec.tagged[1], cfg);
  meta.run(600);
  ASSERT_GT(meta.hill_count(), 20u);
  // Bias at the trap grows sublinearly: the last hills are much smaller
  // than the first, so bias(5.0) << n_hills * h0.
  EXPECT_LT(meta.bias(5.0),
            0.6 * static_cast<double>(meta.hill_count()) * 0.5);
}

TEST(TamdTest, AuxiliaryVariableStaysBoundedAndMoves) {
  auto spec = build_dimer_in_solvent(64, 5.0, 17);
  ff::NonbondedModel model = lj_model(6.0);
  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  TamdConfig cfg;
  cfg.spring_k = 20.0;
  cfg.z_temperature_k = 2000.0;
  cfg.z_min = 2.0;
  cfg.z_max = 9.0;
  Tamd tamd(sim, spec.tagged[0], spec.tagged[1], cfg);
  double z0 = tamd.z();
  tamd.run(300);
  EXPECT_GE(tamd.z(), cfg.z_min);
  EXPECT_LE(tamd.z(), cfg.z_max);
  EXPECT_NE(tamd.z(), z0);  // the hot variable moved
  // CV follows z loosely through the spring.
  EXPECT_LT(std::abs(tamd.current_cv() - tamd.z()), 3.0);
}

TEST(Fep, LambdaOneMatchesPlainLJ) {
  auto spec = build_dimer_in_solvent(64, 4.0, 19);
  ff::NonbondedModel model = lj_model(6.0);
  FepConfig cfg;
  cfg.md = langevin_config(120);
  FepDecoupling fep(spec, /*solute type=*/0, model, cfg);

  auto coupled = fep.make_field(1.0);
  ForceField plain(spec.topology, model);
  double u_sc = potential_energy(*coupled, spec.positions, spec.box);
  double u_lj = potential_energy(plain, spec.positions, spec.box);
  EXPECT_NEAR(u_sc, u_lj, 0.02 * std::abs(u_lj) + 0.05);
}

TEST(Fep, DecouplingProducesFiniteFreeEnergy) {
  auto spec = build_dimer_in_solvent(64, 4.0, 21);
  ff::NonbondedModel model = lj_model(6.0);
  FepConfig cfg;
  cfg.lambdas = {1.0, 0.6, 0.3, 0.0};
  cfg.equil_steps = 100;
  cfg.prod_steps = 500;
  cfg.sample_interval = 5;
  cfg.md = langevin_config(120);
  FepDecoupling fep(spec, 0, model, cfg);
  auto result = fep.run();

  ASSERT_EQ(result.windows.size(), 4u);
  EXPECT_FALSE(result.windows[0].du_to_next.empty());
  EXPECT_FALSE(result.windows[3].du_to_prev.empty());
  EXPECT_TRUE(std::isfinite(result.delta_f_bar));
  EXPECT_TRUE(std::isfinite(result.delta_f_zwanzig));
  // BAR and Zwanzig should roughly agree; the test budget is tiny, so the
  // tolerance is generous (kcal/mol scale, not statistical-precision scale).
  EXPECT_NEAR(result.delta_f_bar, result.delta_f_zwanzig,
              std::max(2.5, 0.5 * std::abs(result.delta_f_bar)));
}

TEST(Umbrella, WindowsTrackTheirCenters) {
  auto spec = build_dimer_in_solvent(64, 5.0, 23);
  ff::NonbondedModel model = lj_model(6.0);
  UmbrellaConfig cfg;
  cfg.centers = {4.0, 5.0, 6.0};
  cfg.k = 25.0;  // stiff: samples hug the centers
  cfg.equil_steps = 100;
  cfg.prod_steps = 300;
  cfg.sample_interval = 5;
  cfg.md = langevin_config(120);

  auto windows = run_umbrella(spec, model, spec.tagged[0], spec.tagged[1],
                              cfg);
  ASSERT_EQ(windows.size(), 3u);
  for (size_t w = 0; w < windows.size(); ++w) {
    ASSERT_GT(windows[w].samples.size(), 20u);
    double m = 0;
    for (double s : windows[w].samples) m += s;
    m /= static_cast<double>(windows[w].samples.size());
    EXPECT_NEAR(m, cfg.centers[w], 0.6) << "window " << w;
  }
}

TEST(Smd, PullingDoesPositiveWorkAgainstAttraction) {
  auto spec = build_dimer_in_solvent(64, 4.0, 25);
  ff::NonbondedModel model = lj_model(6.0);
  ForceField field(spec.topology, model);
  // Give the dimer a deep custom well at 4 Å so pulling costs work.
  auto well = RadialTable::from_potential(
      [](double r) { return 3.0 * (r - 4.0) * (r - 4.0) - 5.0; },
      [](double r) { return 6.0 * (r - 4.0); }, 0.8, 6.0, 512, true);
  field.set_custom_pair_table(0, 0, std::move(well));
  size_t spring = field.add_steered_spring(
      {spec.tagged[0], spec.tagged[1], 15.0, 4.0, 0.02});

  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));
  SteeredPull pull(sim, spring);
  pull.run(600, 20);

  EXPECT_GT(pull.total_work(), 0.0);
  EXPECT_FALSE(pull.times().empty());
  EXPECT_EQ(pull.times().size(), pull.work_trace().size());
  // Targets move monotonically.
  for (size_t k = 1; k < pull.targets().size(); ++k) {
    EXPECT_GT(pull.targets()[k], pull.targets()[k - 1]);
  }
}

}  // namespace
}  // namespace antmd::sampling
