// Tests for the analytic workload estimator and its interaction with the
// timing model (match unit, imbalance, k-space workload).
#include <gtest/gtest.h>

#include <cmath>

#include "machine/timing.hpp"
#include "machine/workload.hpp"
#include "md/neighbor.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::machine {
namespace {

TEST(SystemStats, WaterCountsMatchBuilder) {
  auto stats = SystemStats::water(216, /*rigid=*/true);
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  EXPECT_EQ(stats.atoms, spec.topology.atom_count());
  EXPECT_EQ(stats.constraints, spec.topology.constraints().size());
  EXPECT_NEAR(stats.box_edge, spec.box.edges().x, 0.01);
  EXPECT_NEAR(stats.number_density,
              static_cast<double>(spec.topology.atom_count()) /
                  spec.box.volume(),
              1e-6);
}

TEST(SystemStats, FlexibleWaterHasBondsNotConstraints) {
  auto stats = SystemStats::water(100, /*rigid=*/false);
  EXPECT_EQ(stats.bonds, 200u);
  EXPECT_EQ(stats.angles, 100u);
  EXPECT_EQ(stats.constraints, 0u);
}

TEST(SystemStats, FourSiteWaterHasVirtualSites) {
  auto stats = SystemStats::water(50, true, /*four_site=*/true);
  EXPECT_EQ(stats.atoms, 200u);
  EXPECT_EQ(stats.virtual_sites, 50u);
  EXPECT_EQ(stats.charged_atoms, 150u);  // O is neutral in 4-site
}

TEST(SystemStats, PairsPerAtomMatchesRealNeighborList) {
  // Compare the analytic pair density against a real Verlet list (skin 0).
  auto spec = build_lj_fluid(1000, 0.021, 5);
  auto stats = SystemStats::lj_fluid(1000, 0.021);
  const double cutoff = 8.0;
  md::NeighborList list(spec.topology, cutoff, 0.0);
  list.build(spec.positions, spec.box);
  double measured =
      static_cast<double>(list.pairs().size()) / 1000.0;
  // The estimator assumes an ideal-gas g(r); the jittered lattice is
  // slightly structured, so allow a generous (but still same-ballpark)
  // tolerance.
  EXPECT_NEAR(stats.pairs_per_atom(cutoff), measured, 0.25 * measured);
}

TEST(Estimator, TotalsScaleInverselyWithNodes) {
  auto stats = SystemStats::water(7849);
  WorkloadParams params;
  auto w8 = estimate_step_work(stats, 8, params);
  auto w64 = estimate_step_work(stats, 64, params);
  // Mean per-node pairs drop by ~8x.
  double p8 = static_cast<double>(w8.nodes[1].pairs);
  double p64 = static_cast<double>(w64.nodes[1].pairs);
  EXPECT_NEAR(p8 / p64, 8.0, 0.2);
}

TEST(Estimator, ImbalanceOnlyOnBusiestNode) {
  auto stats = SystemStats::lj_fluid(4096);
  WorkloadParams params;
  params.imbalance = 1.25;
  auto w = estimate_step_work(stats, 8, params);
  EXPECT_NEAR(static_cast<double>(w.nodes[0].pairs) /
                  static_cast<double>(w.nodes[1].pairs),
              1.25, 0.01);
  for (size_t n = 2; n < 8; ++n) {
    EXPECT_EQ(w.nodes[n].pairs, w.nodes[1].pairs);
  }
}

TEST(Estimator, SingleNodeHasNoComm) {
  auto stats = SystemStats::lj_fluid(1000);
  WorkloadParams params;
  auto w = estimate_step_work(stats, 1, params);
  EXPECT_EQ(w.nodes[0].import_bytes, 0.0);
  EXPECT_EQ(w.nodes[0].messages, 0u);
}

TEST(Estimator, ImportBoundedBySystemSize) {
  // Tiny system, many nodes: the import cannot exceed what exists.
  auto stats = SystemStats::lj_fluid(216);
  WorkloadParams params;
  params.cutoff = 8.0;
  auto w = estimate_step_work(stats, 512, params);
  double atoms_per_node = 216.0 / 512.0;
  EXPECT_LE(w.nodes[1].import_bytes / 12.0,
            216.0 - atoms_per_node + 1.0);
}

TEST(Estimator, KspaceGridIsPow2AndSized) {
  auto stats = SystemStats::water(7849);  // box ~61.7 A
  WorkloadParams params;
  params.grid_spacing = 1.0;
  auto w = estimate_step_work(stats, 64, params);
  ASSERT_TRUE(w.kspace.active);
  EXPECT_EQ(w.kspace.grid_points, 64u * 64 * 64);
  EXPECT_EQ(w.kspace.charges, stats.charged_atoms);
}

TEST(Estimator, UnchargedSystemSkipsKspace) {
  auto stats = SystemStats::lj_fluid(1000);
  WorkloadParams params;
  auto w = estimate_step_work(stats, 8, params);
  EXPECT_FALSE(w.kspace.active);
}

TEST(MatchUnit, BindsWhenCandidatesDominante) {
  MachineConfig cfg = anton_with_torus(1, 1, 1);
  TimingModel model(cfg);
  StepWork w;
  w.nodes.resize(1);
  w.nodes[0].pairs = 1000;
  // 100x more candidates than matches: the 8x match rate becomes the
  // bottleneck (100000/8 > 1000/1).
  w.nodes[0].pairs_examined = 100000;
  auto bd = model.step_time(w);
  double pair_rate = cfg.ppims * cfg.pairs_per_cycle * cfg.htis_clock_hz;
  EXPECT_NEAR(bd.pair_phase, 100000.0 / (8.0 * pair_rate), 1e-12);
}

TEST(MatchUnit, IrrelevantWhenCandidatesModest) {
  MachineConfig cfg = anton_with_torus(1, 1, 1);
  TimingModel model(cfg);
  StepWork w;
  w.nodes.resize(1);
  w.nodes[0].pairs = 10000;
  w.nodes[0].pairs_examined = 14000;  // 1.4x candidates, under the 8x rate
  auto bd = model.step_time(w);
  double pair_rate = cfg.ppims * cfg.pairs_per_cycle * cfg.htis_clock_hz;
  EXPECT_NEAR(bd.pair_phase, 10000.0 / pair_rate, 1e-12);
}

TEST(Estimator, CandidateRatioFlowsThrough) {
  auto stats = SystemStats::lj_fluid(4096);
  WorkloadParams params;
  params.candidate_ratio = 2.0;
  auto w = estimate_step_work(stats, 8, params);
  EXPECT_NEAR(static_cast<double>(w.nodes[1].pairs_examined) /
                  static_cast<double>(w.nodes[1].pairs),
              2.0, 0.01);
}

TEST(Estimator, RejectsEmptySystems) {
  SystemStats empty;
  WorkloadParams params;
  EXPECT_THROW(estimate_step_work(empty, 8, params), Error);
}

}  // namespace
}  // namespace antmd::machine
