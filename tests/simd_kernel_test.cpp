// Cross-ISA differential harness for the integer-SIMD cluster kernels.
//
// The SIMD variants (ff/nonbonded_simd_{sse41,avx2,avx512}.cpp) claim
// bit-for-bit equivalence with the scalar tile loop — not "close", equal.
// This suite fuzzes that claim over ~200 seeded random systems spanning
// the kernel envelope: mixed atom types (including zero-epsilon species),
// every electrostatics mode, non-unit H-REMD scales, both cluster widths,
// varied cutoffs/skins/bin counts, non-cubic boxes, and systems small
// enough that whole tiles are padding (kPadAtom edges) or a single atom.
// Each ISA the build + CPU supports is called directly (no dispatch
// global involved) and compared against compute_cluster_entries_scalar:
//   - every atom's raw force quanta,
//   - raw vdw and coulomb_real energy quanta,
//   - all nine virial components, compared as bits (the canonical
//     8-sub-accumulator grouping makes even the double-precision virial
//     reproduce exactly).
// The flat pair kernel cross-check and the dispatcher/arena gates get
// their own cases below.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "ff/nonbonded.hpp"
#include "ff/nonbonded_cluster.hpp"
#include "ff/nonbonded_simd.hpp"
#include "md/neighbor.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"

using namespace antmd;

namespace {

struct FuzzCase {
  Topology topo;
  std::vector<Vec3> positions;
  Box box;
  double cutoff = 8.0;
  double skin = 1.0;
  uint32_t width = ff::kDefaultClusterWidth;
  ff::NonbondedModel model;
  double vdw_scale = 1.0;
  double cps = 1.0;
  std::string label;
};

FuzzCase make_case(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto uni = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto pick = [&](uint32_t n) {
    return std::uniform_int_distribution<uint32_t>(0, n - 1)(rng);
  };

  FuzzCase c;
  c.cutoff = uni(4.0, 9.0);
  c.skin = uni(0.3, 1.5);
  c.width = (pick(2) == 0) ? ff::kMinClusterWidth : ff::kMaxClusterWidth;
  const double base = 2.0 * (c.cutoff + c.skin) * (1.02 + uni(0.0, 0.5));
  const bool cubic = pick(2) == 0;
  c.box = Box(base, cubic ? base : base * uni(1.0, 1.3),
              cubic ? base : base * uni(1.0, 1.3));

  const uint32_t n_types = 1 + pick(4);
  const uint32_t elec_mode = pick(10);
  c.model.cutoff = c.cutoff;
  c.model.table_bins = std::array<size_t, 3>{64, 256, 1024}[pick(3)];
  c.model.electrostatics = elec_mode < 4 ? ff::Electrostatics::kEwaldReal
                           : elec_mode < 7
                               ? ff::Electrostatics::kReactionCutoff
                               : ff::Electrostatics::kNone;
  const bool charged = c.model.electrostatics != ff::Electrostatics::kNone;
  for (uint32_t t = 0; t < n_types; ++t) {
    // One type in four is a zero-epsilon species (zero VDW table).
    const double eps = pick(4) == 0 ? 0.0 : uni(0.05, 0.4);
    c.topo.add_type("T" + std::to_string(t), uni(2.4, 3.6), eps);
  }
  // Small systems stress padded tiles; larger ones stress full ones.
  const Vec3 edges = c.box.edges();
  const size_t n_atoms = pick(4) == 0 ? 1 + pick(24) : 40 + pick(280);
  for (size_t i = 0; i < n_atoms; ++i) {
    const double q = charged && pick(10) < 7 ? uni(-1.0, 1.0) : 0.0;
    c.topo.add_atom(pick(n_types), 12.0, q);
    c.positions.push_back(
        {uni(0.0, edges.x), uni(0.0, edges.y), uni(0.0, edges.z)});
  }
  if (pick(5) == 0) c.vdw_scale = uni(0.25, 1.75);
  if (charged && pick(5) == 0) c.cps = uni(0.25, 1.75);
  c.label = "seed=" + std::to_string(seed) + " n=" + std::to_string(n_atoms) +
            " types=" + std::to_string(n_types) +
            " w=" + std::to_string(c.width) +
            " elec=" + std::to_string(static_cast<int>(c.model.electrostatics));
  return c;
}

struct EvalOut {
  std::vector<std::array<int64_t, 3>> quanta;
  int64_t vdw_raw = 0;
  int64_t elec_raw = 0;
  Mat3 virial;
};

template <typename Fn>
EvalOut run_kernel(const FuzzCase& c, const ff::ClusterPairList& list,
                   const ff::PairTableSet& tables, Fn&& kernel) {
  const size_t n = c.topo.atom_count();
  FixedForceArray forces(n);
  EnergyBreakdown energy;
  Mat3 virial{};
  const std::span<const ff::ClusterPairEntry> entries(list.entries);
  const double vdw_scale = c.vdw_scale;
  const double cps = c.cps;
  kernel(list, entries, tables, c.box, forces, energy, virial, vdw_scale,
         cps);
  EvalOut out;
  out.quanta.reserve(n);
  for (size_t i = 0; i < n; ++i) out.quanta.push_back(forces.quanta(i));
  out.vdw_raw = energy.vdw.raw();
  out.elec_raw = energy.coulomb_real.raw();
  out.virial = virial;
  return out;
}

void expect_bit_identical(const EvalOut& ref, const EvalOut& got,
                          const std::string& what) {
  ASSERT_EQ(ref.quanta.size(), got.quanta.size()) << what;
  for (size_t i = 0; i < ref.quanta.size(); ++i) {
    ASSERT_EQ(ref.quanta[i], got.quanta[i])
        << what << ": force quanta differ at atom " << i;
  }
  EXPECT_EQ(ref.vdw_raw, got.vdw_raw) << what << ": vdw energy quanta";
  EXPECT_EQ(ref.elec_raw, got.elec_raw) << what << ": elec energy quanta";
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(std::bit_cast<uint64_t>(ref.virial.m[k]),
              std::bit_cast<uint64_t>(got.virial.m[k]))
        << what << ": virial component " << k << " differs in bits ("
        << ref.virial.m[k] << " vs " << got.virial.m[k] << ")";
  }
}

/// Every SIMD entry point this build + CPU can run, name + function.
using ClusterKernelFn = void (*)(const ff::ClusterPairList&,
                                 std::span<const ff::ClusterPairEntry>,
                                 const ff::PairTableSet&, const Box&,
                                 FixedForceArray&, EnergyBreakdown&, Mat3&,
                                 double, double);
std::vector<std::pair<std::string, ClusterKernelFn>> simd_variants() {
  std::vector<std::pair<std::string, ClusterKernelFn>> v;
#if defined(ANTMD_HAVE_SIMD_SSE41)
  if (ff::kernel_isa_supported(ff::KernelIsa::kSse41)) {
    v.emplace_back("sse41", &ff::compute_cluster_entries_sse41);
  }
#endif
#if defined(ANTMD_HAVE_SIMD_AVX2)
  if (ff::kernel_isa_supported(ff::KernelIsa::kAvx2)) {
    v.emplace_back("avx2", &ff::compute_cluster_entries_avx2);
  }
#endif
#if defined(ANTMD_HAVE_SIMD_AVX512)
  if (ff::kernel_isa_supported(ff::KernelIsa::kAvx512)) {
    v.emplace_back("avx512", &ff::compute_cluster_entries_avx512);
  }
#endif
  return v;
}

void run_differential(const FuzzCase& c) {
  ff::PairTableSet tables(c.topo, c.model);
  ASSERT_TRUE(tables.simd_arena().valid) << c.label;
  md::NeighborList nlist(c.topo, c.cutoff, c.skin, /*cluster_mode=*/true,
                         c.width);
  nlist.build(c.positions, c.box);
  const ff::ClusterPairList& list = nlist.clusters();
  ff::gather_cluster_coords(list, c.positions);

  const EvalOut ref =
      run_kernel(c, list, tables, ff::compute_cluster_entries_scalar);
  for (const auto& [name, fn] : simd_variants()) {
    expect_bit_identical(ref, run_kernel(c, list, tables, fn),
                         c.label + " isa=" + name);
  }
  // The dispatcher (whatever ISA is active) must agree too.
  expect_bit_identical(
      ref,
      run_kernel(c, list, tables,
                 [](auto&... args) { ff::compute_cluster_entries(args...); }),
      c.label + " dispatcher(" +
          std::string(ff::to_string(ff::active_kernel_isa())) + ")");
}

TEST(SimdKernel, DifferentialFuzz200Systems) {
  if (simd_variants().empty()) {
    GTEST_SKIP() << "no SIMD variant compiled in / supported on this CPU";
  }
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    run_differential(make_case(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// A custom table sharing the model's geometry keeps the arena valid and
// must stay inside the bit-identity envelope.
TEST(SimdKernel, CustomTableSameGeometryStaysSimd) {
  if (simd_variants().empty()) GTEST_SKIP();
  FuzzCase c = make_case(4242);
  ff::PairTableSet tables(c.topo, c.model);
  tables.set_custom_table(
      0, 0, ff::make_softcore_lj_table(3.1, 0.2, 0.5, 0.5, c.model));
  ASSERT_TRUE(tables.simd_arena().valid);
  md::NeighborList nlist(c.topo, c.cutoff, c.skin, true, c.width);
  nlist.build(c.positions, c.box);
  const ff::ClusterPairList& list = nlist.clusters();
  ff::gather_cluster_coords(list, c.positions);
  const EvalOut ref =
      run_kernel(c, list, tables, ff::compute_cluster_entries_scalar);
  for (const auto& [name, fn] : simd_variants()) {
    expect_bit_identical(ref, run_kernel(c, list, tables, fn),
                         "custom-table isa=" + name);
  }
}

// A single-type system with a uniformly shorter custom table gives an
// arena whose s_max lies inside the cutoff — the one configuration where
// the SIMD kernels' out-of-table blend actually fires.
TEST(SimdKernel, ShortTableExercisesRangeGuard) {
  if (simd_variants().empty()) GTEST_SKIP();
  std::mt19937_64 rng(777);
  FuzzCase c;
  c.cutoff = 8.0;
  c.skin = 1.0;
  c.model.cutoff = c.cutoff;
  c.model.table_bins = 256;
  c.model.electrostatics = ff::Electrostatics::kNone;
  c.box = Box(20.0, 20.0, 20.0);
  c.topo.add_type("A", 3.0, 0.2);
  std::uniform_real_distribution<double> u(0.0, 20.0);
  for (size_t i = 0; i < 200; ++i) {
    c.topo.add_atom(0, 12.0, 0.0);
    c.positions.push_back({u(rng), u(rng), u(rng)});
  }
  ff::PairTableSet tables(c.topo, c.model);
  // Same potential, tabulated only out to r = 6 < cutoff: pairs between 6
  // and 8 Å hit the evaluate_view range guard in both kernels.
  tables.set_custom_table(
      0, 0,
      RadialTable::from_potential(
          [](double r) {
            const double s6 = std::pow(3.0 / r, 6);
            return 4.0 * 0.2 * (s6 * s6 - s6);
          },
          [](double r) {
            const double s6 = std::pow(3.0 / r, 6);
            return 4.0 * 0.2 * (-12.0 * s6 * s6 + 6.0 * s6) / r;
          },
          c.model.table_inner, 6.0, c.model.table_bins, true));
  ASSERT_TRUE(tables.simd_arena().valid)
      << "single-type arena should stay uniform";
  ASSERT_LT(tables.simd_arena().s_max, c.cutoff * c.cutoff);
  md::NeighborList nlist(c.topo, c.cutoff, c.skin, true, c.width);
  nlist.build(c.positions, c.box);
  const ff::ClusterPairList& list = nlist.clusters();
  ff::gather_cluster_coords(list, c.positions);
  const EvalOut ref =
      run_kernel(c, list, tables, ff::compute_cluster_entries_scalar);
  EXPECT_NE(ref.vdw_raw, 0);  // guard case must still do real work
  for (const auto& [name, fn] : simd_variants()) {
    expect_bit_identical(ref, run_kernel(c, list, tables, fn),
                         "short-table isa=" + name);
  }
}

// Non-uniform table geometry invalidates the arena; the dispatcher must
// quietly take the scalar path and still produce scalar bits.
TEST(SimdKernel, ArenaFallbackOnMixedGeometry) {
  FuzzCase c = make_case(31337);
  if (c.topo.type_count() < 2) c.topo.add_type("extra", 3.0, 0.1);
  ff::PairTableSet tables(c.topo, c.model);
  ASSERT_TRUE(tables.simd_arena().valid);
  tables.set_custom_table(
      0, 1,
      RadialTable::from_potential([](double) { return 0.0; },
                                      [](double) { return 0.0; },
                                      c.model.table_inner, c.model.cutoff,
                                      c.model.table_bins / 2, false));
  EXPECT_FALSE(tables.simd_arena().valid);
  md::NeighborList nlist(c.topo, c.cutoff, c.skin, true, c.width);
  nlist.build(c.positions, c.box);
  const ff::ClusterPairList& list = nlist.clusters();
  ff::gather_cluster_coords(list, c.positions);
  const EvalOut ref =
      run_kernel(c, list, tables, ff::compute_cluster_entries_scalar);
  expect_bit_identical(
      ref,
      run_kernel(c, list, tables,
                 [](auto&... args) { ff::compute_cluster_entries(args...); }),
      "mixed-geometry fallback");
}

// Sanity on the dispatch plumbing itself (the env override is exercised
// end-to-end by scripts/check_kernel_equivalence.sh, which runs whole
// trajectories under each ANTMD_FORCE_ISA value).
TEST(SimdKernel, DispatchProbeAndNames) {
  const ff::KernelIsa active = ff::active_kernel_isa();
  EXPECT_TRUE(ff::kernel_isa_supported(active));
  EXPECT_TRUE(ff::kernel_isa_supported(ff::KernelIsa::kScalar));
  EXPECT_TRUE(ff::kernel_isa_supported(ff::probe_kernel_isa()));
  for (const char* name : {"scalar", "sse41", "avx2", "avx512"}) {
    EXPECT_STREQ(ff::to_string(ff::parse_kernel_isa(name)), name);
  }
  EXPECT_THROW(ff::parse_kernel_isa("pentium"), ConfigError);
  EXPECT_THROW(ff::parse_kernel_isa(""), ConfigError);
  // set_kernel_isa round-trip (restoring the entry value; a no-op when the
  // test runs under ANTMD_FORCE_ISA, which is exactly the contract).
  ff::set_kernel_isa(ff::KernelIsa::kScalar);
  EXPECT_TRUE(ff::kernel_isa_supported(ff::active_kernel_isa()));
  ff::set_kernel_isa(active);
  EXPECT_EQ(ff::active_kernel_isa(), active);
}

// CI smoke: the build host must actually *run* the scalar path and — since
// the repo's baseline already requires SSE4.1 — the sse41 variant.  These
// ASSERTs (not skips) catch a dispatch regression that silently drops
// variants on the machine that builds and tests every PR.
TEST(SimdKernel, DispatchSmokeScalarAndSse41RunOnBuildHost) {
  ASSERT_TRUE(ff::kernel_isa_supported(ff::KernelIsa::kScalar));
  const FuzzCase c = make_case(7);
  ff::PairTableSet tables(c.topo, c.model);
  md::NeighborList nlist(c.topo, c.cutoff, c.skin, true, c.width);
  nlist.build(c.positions, c.box);
  const ff::ClusterPairList& list = nlist.clusters();
  ff::gather_cluster_coords(list, c.positions);
  const EvalOut ref =
      run_kernel(c, list, tables, ff::compute_cluster_entries_scalar);
#if defined(ANTMD_HAVE_SIMD_SSE41)
  ASSERT_TRUE(ff::kernel_isa_supported(ff::KernelIsa::kSse41))
      << "sse41 TU is compiled in but the dispatcher refuses it here";
  expect_bit_identical(
      ref, run_kernel(c, list, tables, ff::compute_cluster_entries_sse41),
      "build-host sse41 smoke");
#else
  GTEST_FAIL() << "the sse41 kernel TU is expected in every build";
#endif
}

}  // namespace
