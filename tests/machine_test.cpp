// Tests for the machine model: torus topology, timing model phase math,
// utilization accounting, and sanity of the modeled Anton performance
// envelope.
#include <gtest/gtest.h>

#include "baseline/cluster.hpp"
#include "machine/config.hpp"
#include "machine/timing.hpp"
#include "machine/torus.hpp"
#include "util/error.hpp"

namespace antmd::machine {
namespace {

TEST(Config, AntonFullIs512Nodes) {
  MachineConfig cfg = anton_full();
  EXPECT_EQ(cfg.node_count(), 512u);
  // Machine pair rate ~ 512 × 32 × 485 MHz ≈ 7.9e12 pairs/s.
  EXPECT_NEAR(cfg.machine_pair_rate(), 7.95e12, 0.2e12);
}

TEST(Config, TorusFactoryValidates) {
  EXPECT_NO_THROW(anton_with_torus(2, 2, 2));
  EXPECT_THROW(anton_with_torus(0, 2, 2), Error);
}

TEST(Torus, CoordRoundTrip) {
  TorusTopology t(anton_with_torus(4, 3, 2));
  for (size_t id = 0; id < t.node_count(); ++id) {
    EXPECT_EQ(t.id_of(t.coord_of(id)), id);
  }
}

TEST(Torus, HopsUseWraparound) {
  TorusTopology t(anton_with_torus(8, 8, 8));
  size_t a = t.id_of({0, 0, 0});
  size_t b = t.id_of({7, 0, 0});
  EXPECT_EQ(t.hops(a, b), 1);  // wraps around
  size_t c = t.id_of({4, 4, 4});
  EXPECT_EQ(t.hops(a, c), 12);
  EXPECT_EQ(t.diameter(), 12);
}

TEST(Torus, HopsSymmetric) {
  TorusTopology t(anton_with_torus(4, 4, 4));
  for (size_t a = 0; a < 16; ++a) {
    for (size_t b = 0; b < 16; ++b) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(Torus, MeanHopsReasonable) {
  TorusTopology t(anton_with_torus(8, 8, 8));
  // Per axis mean for ring of 8 is 2; three axes -> 6.
  EXPECT_NEAR(t.mean_hops(), 6.0, 1e-12);
}

TEST(Torus, BisectionBandwidthScalesWithCrossSection) {
  MachineConfig c8 = anton_with_torus(8, 8, 8);
  MachineConfig c4 = anton_with_torus(4, 4, 4);
  TorusTopology t8(c8), t4(c4);
  EXPECT_GT(t8.bisection_bandwidth_Bps(c8),
            3.0 * t4.bisection_bandwidth_Bps(c4));
}

StepWork uniform_work(size_t nodes, size_t pairs_per_node,
                      double gcf = 1e4, double upd = 1e4,
                      double bytes = 2e4) {
  StepWork w;
  w.nodes.resize(nodes);
  for (auto& n : w.nodes) {
    n.pairs = pairs_per_node;
    n.gc_force_flops = gcf;
    n.gc_update_flops = upd;
    n.import_bytes = bytes;
    n.export_bytes = bytes;
    n.messages = 6;
  }
  return w;
}

TEST(Timing, PairPhaseMatchesThroughput) {
  MachineConfig cfg = anton_with_torus(2, 2, 2);
  TimingModel model(cfg);
  auto bd = model.step_time(uniform_work(8, 155200, 0, 0, 0));
  // 155200 pairs / (32 × 485e6) = 10 µs.
  EXPECT_NEAR(bd.pair_phase, 10e-6, 1e-8);
}

TEST(Timing, InteractionPhaseIsMaxOfOverlappedUnits) {
  MachineConfig cfg = anton_with_torus(2, 2, 2);
  TimingModel model(cfg);
  // Huge GC force work, trivial pair work: interaction = GC time.
  auto bd = model.step_time(uniform_work(8, 100, /*gcf=*/1e8));
  EXPECT_NEAR(bd.interaction, bd.gc_force_phase, 1e-12);
  EXPECT_GT(bd.gc_force_phase, bd.pair_phase);
}

TEST(Timing, StragglersSetThePace) {
  MachineConfig cfg = anton_with_torus(2, 2, 2);
  TimingModel model(cfg);
  StepWork even = uniform_work(8, 10000);
  StepWork skewed = uniform_work(8, 10000);
  skewed.nodes[3].pairs = 80000;  // one overloaded node
  auto bd_even = model.step_time(even);
  auto bd_skew = model.step_time(skewed);
  EXPECT_GT(bd_skew.pair_phase, 7.0 * bd_even.pair_phase);
}

TEST(Timing, KspacePhaseOnlyWhenActive) {
  MachineConfig cfg = anton_with_torus(4, 4, 4);
  TimingModel model(cfg);
  StepWork w = uniform_work(64, 10000);
  auto bd0 = model.step_time(w);
  EXPECT_EQ(bd0.kspace_total(), 0.0);

  w.kspace.active = true;
  w.kspace.grid_points = 64 * 64 * 64;
  w.kspace.charges = 20000;
  w.kspace.stencil_points = 729;
  w.kspace.fft_flops = 5.0 * 262144 * 18 * 2;
  auto bd1 = model.step_time(w);
  EXPECT_GT(bd1.kspace_total(), 0.0);
  EXPECT_GT(bd1.total, bd0.total);
  EXPECT_GT(bd1.kspace_fft_comm, 0.0);  // multi-node FFT has transposes
}

TEST(Timing, UtilizationFractionsAreSane) {
  MachineConfig cfg = anton_with_torus(2, 2, 2);
  TimingModel model(cfg);
  auto bd = model.step_time(uniform_work(8, 50000, 2e5, 1e5, 5e4));
  EXPECT_GT(bd.htis_utilization(), 0.0);
  EXPECT_LE(bd.htis_utilization(), 1.0);
  EXPECT_GT(bd.gc_utilization(), 0.0);
  EXPECT_GT(bd.network_fraction(), 0.0);
  EXPECT_LE(bd.network_fraction(), 1.0);
}

TEST(Timing, NsPerDayFormula) {
  // 10 µs steps at 2.5 fs: 86400/1e-5 = 8.64e9 steps/day × 2.5 fs
  // = 2.16e10 fs = 21600 ns/day.
  EXPECT_NEAR(ns_per_day(2.5, 10e-6), 21600.0, 1.0);
  EXPECT_THROW(static_cast<void>(ns_per_day(0.0, 1.0)), Error);
}

TEST(Timing, AntonEnvelopeIsRightOrderOfMagnitude) {
  // DHFR-class workload: 23k atoms, ~3.7M pairs/step on 512 nodes, ~45
  // bonded terms per node, k-space every other step (amortized here).
  MachineConfig cfg = anton_full();
  TimingModel model(cfg);
  StepWork w = uniform_work(512, 3700000 / 512, 45 * 120.0, 45 * 60.0,
                            2500 * 12.0);
  auto bd = model.step_time(w);
  // Published Anton step times for DHFR-class systems are ~10-20 µs
  // (amortized); our model should land in that decade without k-space and
  // stay under ~50 µs with it.
  EXPECT_GT(bd.total, 1e-6);
  EXPECT_LT(bd.total, 5e-5);
}

TEST(Baseline, ClusterIsOrdersOfMagnitudeSlowerOnPairs) {
  // Same workload through both models.
  StepWork w = uniform_work(512, 3700000 / 512, 45 * 120.0, 45 * 60.0,
                            2500 * 12.0);
  TimingModel anton(anton_full());
  baseline::ClusterModel cluster(baseline::commodity_cluster(512));
  auto bd_a = anton.step_time(w);
  auto bd_c = cluster.step_time(w);
  double speedup = bd_c.total / bd_a.total;
  EXPECT_GT(speedup, 20.0);
  EXPECT_LT(speedup, 2000.0);
}

TEST(Baseline, PairAndBondedSerializeOnCpu) {
  baseline::ClusterModel cluster(baseline::commodity_cluster(8));
  StepWork w = uniform_work(8, 100000, /*gcf=*/1e7);
  auto bd = cluster.step_time(w);
  EXPECT_NEAR(bd.interaction, bd.pair_phase + bd.gc_force_phase, 1e-12);
}

TEST(Baseline, SoftwareBarrierGrowsWithRanks) {
  auto small = baseline::commodity_cluster(8);
  auto big = baseline::commodity_cluster(512);
  EXPECT_GT(big.barrier_s(), small.barrier_s());
}

}  // namespace
}  // namespace antmd::machine
