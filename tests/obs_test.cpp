// Telemetry subsystem contract: sharded counters aggregate exactly under
// the deterministic execution layer, histogram bucketing honours its
// inclusive upper edges, disabled telemetry is a no-op, and the trace
// session renders well-formed Chrome trace_event JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/execution.hpp"

namespace antmd {
namespace {

TEST(Metrics, CounterAggregatesExactlyAcrossWorkerThreads) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  auto& c = reg.counter("test.parallel.count");

  constexpr size_t kTasks = 64;
  constexpr uint64_t kPerTask = 10000;
  auto exec = ExecutionContext::create({8, true});
  exec->parallel_for(kTasks, [&](size_t) {
    for (uint64_t k = 0; k < kPerTask; ++k) c.add();
  });
  EXPECT_EQ(c.value(), kTasks * kPerTask);

  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, DisabledTelemetryDropsUpdates) {
  obs::ScopedTelemetry off(false);
  obs::MetricsRegistry reg;
  auto& c = reg.counter("test.disabled.count");
  auto& h = reg.histogram("test.disabled.hist", {1.0, 2.0});
  c.add(17);
  h.observe(1.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.snapshot().histograms.at("test.disabled.hist").count, 0u);
}

TEST(Metrics, RegistryReturnsStableReferencesByName) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter("test.same.count");
  auto& b = reg.counter("test.same.count");
  EXPECT_EQ(&a, &b);
  auto& g1 = reg.gauge("test.same.gauge");
  auto& g2 = reg.gauge("test.same.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Metrics, GaugeRoundTripsDoubles) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  auto& g = reg.gauge("test.gauge");
  for (double v : {0.0, -1.5, 3.14159265358979, 1e300, -2.5e-308}) {
    g.set(v);
    EXPECT_EQ(g.value(), v);
  }
}

TEST(Metrics, HistogramBucketEdgesAreInclusiveUpperBounds) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("test.hist", {1.0, 10.0, 100.0});

  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == edge 0 -> bucket 0 (inclusive)
  h.observe(1.0001); // (1, 10]   -> bucket 1
  h.observe(10.0);   // == edge 1 -> bucket 1
  h.observe(99.9);   // (10, 100] -> bucket 2
  h.observe(100.5);  // > last    -> overflow bucket 3

  auto snap = reg.snapshot();
  const auto& v = snap.histograms.at("test.hist");
  ASSERT_EQ(v.edges.size(), 3u);
  ASSERT_EQ(v.buckets.size(), 4u);
  EXPECT_EQ(v.buckets[0], 2u);
  EXPECT_EQ(v.buckets[1], 2u);
  EXPECT_EQ(v.buckets[2], 1u);
  EXPECT_EQ(v.buckets[3], 1u);
  EXPECT_EQ(v.count, 6u);
  EXPECT_NEAR(v.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.5, 1e-9);
}

TEST(Metrics, HistogramCountsSurviveConcurrentObserves) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("test.hist.par", {10.0, 20.0});
  auto exec = ExecutionContext::create({8, true});
  constexpr size_t kTasks = 32;
  constexpr int kPerTask = 500;
  exec->parallel_for(kTasks, [&](size_t t) {
    for (int k = 0; k < kPerTask; ++k) {
      h.observe(static_cast<double>(t % 3) * 10.0 + 5.0);  // 5, 15, 25
    }
  });
  auto v = reg.snapshot().histograms.at("test.hist.par");
  EXPECT_EQ(v.count, kTasks * static_cast<uint64_t>(kPerTask));
  EXPECT_EQ(v.buckets[0] + v.buckets[1] + v.buckets[2], v.count);
}

TEST(Metrics, SnapshotAndPhaseBreakdown) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  reg.counter("test.alpha.time_ns").add(3'000'000'000ull);  // 3 s
  reg.counter("test.beta.time_ns").add(1'000'000'000ull);   // 1 s
  reg.counter("test.other.count").add(5);  // not a phase

  auto shares = obs::phase_breakdown(reg.snapshot());
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].name, "test.alpha");   // descending by time
  EXPECT_NEAR(shares[0].seconds, 3.0, 1e-12);
  EXPECT_NEAR(shares[0].fraction, 0.75, 1e-12);
  EXPECT_EQ(shares[1].name, "test.beta");
  EXPECT_NEAR(shares[1].fraction, 0.25, 1e-12);
}

TEST(Metrics, StandardSetCoversEverySubsystem) {
  obs::MetricsRegistry reg;
  obs::register_standard_metrics(reg);
  auto snap = reg.snapshot();
  for (const char* name :
       {"md.step.count", "runtime.step.count",
        "sampling.exchange.attempt.count", "resilience.health.check.count",
        "util.fault.node_fail.count"}) {
    EXPECT_TRUE(snap.counters.count(name)) << name;
  }
  for (const char* name :
       {"machine.model.ns_per_day", "machine.torus.mean_hops",
        "runtime.alive_nodes"}) {
    EXPECT_TRUE(snap.gauges.count(name)) << name;
  }
}

TEST(Metrics, JsonDumpIsBalancedAndNamesMetrics) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  reg.counter("test.json.count").add(7);
  reg.gauge("test.json.gauge").set(2.5);
  reg.histogram("test.json.hist", {1.0}).observe(0.5);
  std::string json = reg.snapshot().to_json();

  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"test.json.count\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
}

TEST(Trace, ScopedTimerAccumulatesIntoCounter) {
  obs::ScopedTelemetry on(true);
  obs::MetricsRegistry reg;
  auto& ns = reg.counter("test.timer.time_ns");
  {
    obs::ScopedTimer timer(ns);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(ns.value(), 0u);
}

TEST(Trace, SessionRendersWellFormedChromeJson) {
  obs::ScopedTelemetry on(true);
  auto& session = obs::TraceSession::global();
  session.start("");  // buffer only, no file
  session.set_track_name(1042, "node 42");
  { obs::TracePhase phase("test.span", "test"); }
  {
    obs::TracePhase phase("test.node_span", "test", nullptr,
                          /*track=*/1042, "node", 42);
  }
  session.stop();
  ASSERT_GE(session.event_count(), 2u);

  std::string json = session.to_json();
  long depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"test.node_span\""), std::string::npos);
  EXPECT_NE(json.find("node 42"), std::string::npos);  // metadata track name
  EXPECT_NE(json.find("\"X\""), std::string::npos);    // complete events
  EXPECT_NE(json.find("\"M\""), std::string::npos);    // metadata events
}

TEST(Trace, NoEventsRecordedWhenSessionStopped) {
  obs::ScopedTelemetry on(true);
  auto& session = obs::TraceSession::global();
  session.stop();
  size_t before = session.event_count();
  { obs::TracePhase phase("test.ignored", "test"); }
  EXPECT_EQ(session.event_count(), before);
}

}  // namespace
}  // namespace antmd
