// Silent-data-corruption defense tests: CRC-64 digests, the static-data
// scrubber, shadow re-execution, bit-flip injection and the supervisor's
// corruption budget.  The acceptance bar throughout is the determinism
// contract: every detected flip must be recovered such that the finished
// trajectory is bit-identical to the fault-free run.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ff/forcefield.hpp"
#include "machine/config.hpp"
#include "md/simulation.hpp"
#include "resilience/audit.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"

namespace antmd {
namespace {

ff::NonbondedModel lj_model(double cutoff = 7.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

md::SimulationConfig host_config(double temperature = 120.0) {
  md::SimulationConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = temperature;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = temperature;
  cfg.thermostat.gamma_per_ps = 5.0;
  return cfg;
}

runtime::MachineSimConfig machine_config(double temperature = 120.0) {
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = temperature;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = temperature;
  return cfg;
}

template <typename SimA, typename SimB>
void expect_bit_identical(const SimA& a, const SimB& b) {
  const State& sa = a.state();
  const State& sb = b.state();
  ASSERT_EQ(sa.step, sb.step);
  ASSERT_EQ(sa.positions.size(), sb.positions.size());
  for (size_t i = 0; i < sa.positions.size(); ++i) {
    ASSERT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
    ASSERT_EQ(sa.velocities[i], sb.velocities[i]) << "atom " << i;
  }
  EXPECT_EQ(a.potential_energy(), b.potential_energy());
}

TEST(Crc64, KnownAnswerAndIncrementalEquivalence) {
  // CRC-64/XZ check value for the standard "123456789" test vector.
  const char msg[] = "123456789";
  EXPECT_EQ(util::crc64(msg, 9), 0x995DC9BBDF1939FAull);

  // Incremental updates over arbitrary split points equal the one-shot CRC.
  const std::string data(257, 'q');
  const uint64_t whole = util::crc64(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{100}, data.size()}) {
    uint64_t c = util::crc64_init();
    c = util::crc64_update(c, data.data(), split);
    c = util::crc64_update(c, data.data() + split, data.size() - split);
    EXPECT_EQ(util::crc64_final(c), whole) << "split " << split;
  }

  // A single flipped bit anywhere changes the digest.
  std::string bad = data;
  bad[200] ^= 0x10;
  EXPECT_NE(util::crc64(bad.data(), bad.size()), whole);
}

TEST(AuditConfig, ValidateRejectsOutOfRangeFields) {
  resilience::AuditConfig cfg;
  ASSERT_NO_THROW(cfg.validate());
  cfg.interval = -1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = {};
  cfg.shadow_window = -2;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = {};
  cfg.scrub_interval = -1;
  EXPECT_THROW(cfg.validate(), ConfigError);
  cfg = {};
  cfg.max_recoveries = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Scrubber, DetectsAndRepairsFlippedBit) {
  std::vector<double> table(64, 1.25);
  const std::vector<double> pristine = table;
  resilience::Scrubber scrubber;
  scrubber.add_region("spline_table", table.data(),
                      table.size() * sizeof(double));
  EXPECT_EQ(scrubber.region_count(), 1u);
  EXPECT_EQ(scrubber.total_bytes(), table.size() * sizeof(double));

  // Clean scrub: nothing to repair.
  auto clean = scrubber.scrub();
  EXPECT_EQ(clean.repairs, 0u);
  EXPECT_EQ(clean.regions_checked, 1u);

  // One flipped bit is detected, named, and repaired from the mirror.
  EXPECT_EQ(scrubber.flip_bit(777), "spline_table");
  EXPECT_NE(std::memcmp(table.data(), pristine.data(),
                        table.size() * sizeof(double)), 0);
  auto hit = scrubber.scrub();
  EXPECT_EQ(hit.repairs, 1u);
  EXPECT_NE(hit.detail.find("spline_table"), std::string::npos);
  EXPECT_EQ(std::memcmp(table.data(), pristine.data(),
                        table.size() * sizeof(double)), 0);

  // Repair restored the golden bytes: the next scrub is clean again.
  EXPECT_EQ(scrubber.scrub().repairs, 0u);
}

TEST(Scrubber, FlipBitAddressesRegionsGloballyAndWraps) {
  std::vector<unsigned char> a(8, 0), b(8, 0);
  resilience::Scrubber scrubber;
  scrubber.add_region("a", a.data(), a.size());
  scrubber.add_region("b", b.data(), b.size());

  // Bit 64 is the first bit past region a: it lands in region b.
  EXPECT_EQ(scrubber.flip_bit(64), "b");
  EXPECT_EQ(b[0], 1);
  // Indices wrap modulo the total bit count (128): 128 -> bit 0 of a.
  EXPECT_EQ(scrubber.flip_bit(128), "a");
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(scrubber.scrub().repairs, 2u);

  resilience::Scrubber empty;
  EXPECT_EQ(empty.flip_bit(0), "");
}

TEST(ScrubObjects, ForceFieldAndTopologyExposeRegions) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  resilience::Scrubber scrubber;
  scrubber.add_object(field);
  scrubber.add_object(spec.topology);
  EXPECT_GE(scrubber.region_count(), 2u);
  EXPECT_GT(scrubber.total_bytes(), 0u);
  EXPECT_EQ(scrubber.scrub().repairs, 0u);
}

TEST(StateDigest, FlippedVelocityBitNamesTheBlock) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());
  sim.run(5);

  const resilience::StateDigest before = resilience::digest_state(sim);
  EXPECT_EQ(before.diff(before), "none");

  auto* bytes =
      reinterpret_cast<unsigned char*>(sim.mutable_state().velocities.data());
  bytes[7 * sizeof(Vec3) + 2] ^= 0x20;  // low mantissa bit of atom 7's v.x
  const resilience::StateDigest after = resilience::digest_state(sim);
  EXPECT_NE(after, before);
  EXPECT_NE(after.velocities, before.velocities);
  EXPECT_EQ(after.positions, before.positions);
  EXPECT_EQ(after.forces, before.forces);
  // diff() names velocities and the driver blob (which serializes them too).
  std::string diff = after.diff(before);
  EXPECT_NE(diff.find("velocities"), std::string::npos);
  EXPECT_EQ(diff.find("positions"), std::string::npos);
}

TEST(AuditGate, RefcountTracksLiveAuditors) {
  EXPECT_FALSE(resilience::audit_enabled());
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());
  {
    resilience::AuditConfig cfg;
    cfg.interval = 4;
    resilience::Auditor<md::Simulation> auditor(sim, cfg);
    EXPECT_TRUE(resilience::audit_enabled());
  }
  EXPECT_FALSE(resilience::audit_enabled());

  // interval = 0 means "no auditor", not "auditor that never fires".
  resilience::AuditConfig off;
  off.interval = 0;
  EXPECT_THROW(resilience::Auditor<md::Simulation> a(sim, off), ConfigError);
}

TEST(FaultInjection, InjectionPauseSuppressesWithoutCountingEvents) {
  fault::disarm_all();
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kBitFlipState;
  plan.fire_after = 1;
  plan.count = -1;
  fault::ScopedFault f(plan);

  EXPECT_FALSE(fault::should_fire(fault::FaultKind::kBitFlipState));
  const uint64_t events = fault::event_count(fault::FaultKind::kBitFlipState);
  {
    // Paused polls are invisible: no fire, and no event consumed — this is
    // what keeps the chaos schedule fixed across shadow replays.
    fault::InjectionPause pause;
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(fault::should_fire(fault::FaultKind::kBitFlipState));
    }
    EXPECT_EQ(fault::event_count(fault::FaultKind::kBitFlipState), events);
  }
  EXPECT_TRUE(fault::should_fire(fault::FaultKind::kBitFlipState));
  EXPECT_EQ(fault::event_count(fault::FaultKind::kBitFlipState), events + 1);
}

TEST(FaultInjection, ParsesBitFlipKinds) {
  EXPECT_EQ(fault::parse_fault_plan("bit_flip_state:3:1:42").kind,
            fault::FaultKind::kBitFlipState);
  EXPECT_EQ(fault::parse_fault_plan("bit_flip_table").kind,
            fault::FaultKind::kBitFlipTable);
  EXPECT_EQ(fault::parse_fault_plan("bit_flip_checkpoint_buffer").kind,
            fault::FaultKind::kBitFlipCheckpointBuffer);
}

// A state flip lands mid-interval; the full-interval shadow replay catches
// it at the next audit point, the supervisor rolls back to the verified
// ring, and honest re-execution finishes bit-identical to the fault-free
// run.  This is the tentpole acceptance criterion on the host engine.
TEST(Auditor, StateFlipDetectedAndRecoveredBitIdenticalHost) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto cfg = host_config();
  constexpr size_t kSteps = 24;

  ForceField field_ref(spec.topology, lj_model());
  md::Simulation reference(field_ref, spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kBitFlipState;
  plan.fire_after = 9;  // polled once per step: lands after step 10
  plan.count = 1;
  plan.payload = 5417;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.audit.interval = 4;
  sc.audit.shadow_window = 0;  // full-interval replay: full coverage
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(kSteps);

  EXPECT_EQ(fault::fired_count(fault::FaultKind::kBitFlipState), 1u);
  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.corruptions, 1u);
  EXPECT_GE(report.rollbacks, 1u);
  ASSERT_NE(supervisor.auditor(), nullptr);
  const resilience::AuditStats& stats = supervisor.auditor()->stats();
  EXPECT_GE(stats.audits, kSteps / 4);
  EXPECT_GE(stats.shadow_replays, 1u);
  EXPECT_EQ(stats.corruptions, 1u);

  // The corruption event localizes the divergence to an interval + blocks.
  bool found = false;
  for (const auto& e : report.events) {
    if (e.kind == resilience::FailureKind::kSilentCorruption) {
      found = true;
      EXPECT_NE(e.detail.find("shadow replay"), std::string::npos);
      EXPECT_NE(e.detail.find("diverged in blocks"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);

  expect_bit_identical(reference, sim);
}

// Same criterion on the modeled machine engine: detection, rollback, and a
// bit-identical finish — audit cost lands in modeled time, not physics.
TEST(Auditor, StateFlipDetectedAndRecoveredBitIdenticalMachine) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  auto model = lj_model();
  auto cfg = machine_config();
  constexpr size_t kSteps = 24;

  ForceField field_ref(spec.topology, model);
  runtime::MachineSimulation reference(field_ref,
                                       machine::anton_with_torus(2, 2, 2),
                                       spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, model);
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box, cfg);

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kBitFlipState;
  plan.fire_after = 6;
  plan.count = 1;
  // High-mantissa bit: the machine engine keeps positions on a fixed-point
  // grid, so a flip below the position quantum is absorbed by the next
  // update — harmless by construction, and correctly not reported.
  plan.payload = 7083;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.audit.interval = 5;
  sc.audit.shadow_window = 0;
  resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(kSteps);

  EXPECT_EQ(fault::fired_count(fault::FaultKind::kBitFlipState), 1u);
  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.corruptions, 1u);
  EXPECT_GE(report.rollbacks, 1u);
  expect_bit_identical(reference, sim);
}

// A flipped bit in a packed spline table: the scrub repairs the region from
// its golden mirror but still reports corruption, because forces computed
// while the table was corrupt have already tainted the dynamic state.
TEST(Auditor, TableFlipScrubRepairsAndRollsBack) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto cfg = host_config();
  constexpr size_t kSteps = 24;

  ForceField field_ref(spec.topology, lj_model());
  md::Simulation reference(field_ref, spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  resilience::Scrubber scrubber;
  scrubber.add_object(field);
  scrubber.add_object(spec.topology);

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kBitFlipTable;
  plan.fire_after = 5;
  plan.count = 1;
  plan.payload = 31337;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.audit.interval = 4;
  sc.audit.shadow_window = 0;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  supervisor.enable_audit(&scrubber);
  resilience::RecoveryReport report = supervisor.run(kSteps);

  EXPECT_EQ(fault::fired_count(fault::FaultKind::kBitFlipTable), 1u);
  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.corruptions, 1u);
  ASSERT_NE(supervisor.auditor(), nullptr);
  EXPECT_GE(supervisor.auditor()->stats().scrub_repairs, 1u);

  bool found = false;
  for (const auto& e : report.events) {
    if (e.kind == resilience::FailureKind::kSilentCorruption) {
      found = true;
      EXPECT_NE(e.detail.find("static data corrupt"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);

  // The table was repaired and the tainted steps re-run: bit-identical.
  expect_bit_identical(reference, sim);
}

// A flip in the auditor's own retained snapshot buffer: the stored CRC
// catches it before the buffer is ever used as a replay source, and the
// supervisor's ring (an independent, verified copy) provides recovery.
TEST(Auditor, CheckpointBufferFlipDetectedByStoredCrc) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto cfg = host_config();
  constexpr size_t kSteps = 24;

  ForceField field_ref(spec.topology, lj_model());
  md::Simulation reference(field_ref, spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kBitFlipCheckpointBuffer;
  plan.fire_after = 5;
  plan.count = 1;
  plan.payload = 2025;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.audit.interval = 4;
  sc.audit.shadow_window = 0;  // baseline retained across the whole interval
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(kSteps);

  EXPECT_EQ(fault::fired_count(fault::FaultKind::kBitFlipCheckpointBuffer),
            1u);
  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.corruptions, 1u);

  bool found = false;
  for (const auto& e : report.events) {
    if (e.kind == resilience::FailureKind::kSilentCorruption) {
      found = true;
      EXPECT_NE(e.detail.find("snapshot buffer"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);

  expect_bit_identical(reference, sim);
}

// A clean audited run is indistinguishable from an unaudited one: shadow
// replays land bitwise back on the live state, so positions, velocities and
// energies match the reference exactly — verification is invisible.
TEST(Auditor, CleanRunIsBitIdenticalToUnauditedRun) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto cfg = host_config();
  constexpr size_t kSteps = 20;

  ForceField field_ref(spec.topology, lj_model());
  md::Simulation reference(field_ref, spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, cfg);
  resilience::SupervisorConfig sc;
  sc.audit.interval = 4;
  sc.audit.shadow_window = 2;  // partial window: the cheap default
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(kSteps);

  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_EQ(report.corruptions, 0u);
  EXPECT_EQ(report.rollbacks, 0u);
  ASSERT_NE(supervisor.auditor(), nullptr);
  EXPECT_EQ(supervisor.auditor()->stats().audits, kSteps / 4);
  EXPECT_GE(supervisor.auditor()->stats().shadow_replays, 1u);
  // Every clean audit fed the ring a verified snapshot.
  EXPECT_GE(report.snapshots, 1u + kSteps / 4);

  expect_bit_identical(reference, sim);
}

// Persistent corruption (a flip every step) exhausts the corruption budget:
// the supervisor escalates with a typed error instead of looping forever,
// and the report says so in terms an operator can act on.
TEST(Auditor, CorruptionBudgetExhaustionEscalatesTyped) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, host_config());

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kBitFlipState;
  plan.count = -1;  // the "failing DIMM": a flip on every step
  plan.payload = 333;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.audit.interval = 4;
  sc.audit.shadow_window = 0;
  sc.audit.max_recoveries = 2;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(64);

  EXPECT_FALSE(report.completed);
  // Budget of 2: two recovered episodes, then the third escalates.
  EXPECT_EQ(report.corruptions, 3u);
  EXPECT_EQ(report.rollbacks, 2u);
  EXPECT_EQ(report.final_error.rfind("silent-corruption:", 0), 0u)
      << report.final_error;
  EXPECT_NE(report.final_error.find("corruption budget"), std::string::npos);
  ASSERT_FALSE(report.events.empty());
  EXPECT_EQ(report.events.back().action,
            resilience::RecoveryAction::kEscalate);
  EXPECT_EQ(report.events.back().kind,
            resilience::FailureKind::kSilentCorruption);
}

}  // namespace
}  // namespace antmd
