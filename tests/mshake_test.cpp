// Tests for the M-SHAKE (per-cluster Newton) constraint solver and its
// ablation against classic SHAKE sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "ff/forcefield.hpp"
#include "math/rng.hpp"
#include "md/constraints.hpp"
#include "md/simulation.hpp"
#include "topo/builders.hpp"

namespace antmd::md {
namespace {

TEST(MShake, RestoresWaterGeometry) {
  auto spec = build_water_box(27, WaterModel::kRigid3Site);
  ConstraintSolver solver(spec.topology, 1e-10, 100,
                          ConstraintAlgorithm::kMShake);
  auto before = spec.positions;
  auto perturbed = spec.positions;
  SequentialRng rng(5);
  for (auto& p : perturbed) {
    p += Vec3{rng.uniform(-0.08, 0.08), rng.uniform(-0.08, 0.08),
              rng.uniform(-0.08, 0.08)};
  }
  std::vector<Vec3> velocities(perturbed.size(), Vec3{});
  auto stats = solver.apply_positions(before, perturbed, velocities, 0.0,
                                      spec.box);
  EXPECT_LT(stats.max_violation, 1e-9);
}

TEST(MShake, ConvergesInFewerIterationsThanShake) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  auto before = spec.positions;
  auto perturbed = spec.positions;
  SequentialRng rng(7);
  for (auto& p : perturbed) {
    p += Vec3{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
              rng.uniform(-0.05, 0.05)};
  }
  std::vector<Vec3> v1(perturbed.size(), Vec3{});
  std::vector<Vec3> v2(perturbed.size(), Vec3{});

  ConstraintSolver shake(spec.topology, 1e-10, 500,
                         ConstraintAlgorithm::kShake);
  ConstraintSolver mshake(spec.topology, 1e-10, 500,
                          ConstraintAlgorithm::kMShake);
  auto p1 = perturbed;
  auto p2 = perturbed;
  auto s1 = shake.apply_positions(before, p1, v1, 0.0, spec.box);
  auto s2 = mshake.apply_positions(before, p2, v2, 0.0, spec.box);
  // Both converge...
  EXPECT_LT(s1.max_violation, 1e-9);
  EXPECT_LT(s2.max_violation, 1e-9);
  // ...but Newton needs fewer sweeps at tight tolerance.
  EXPECT_LT(s2.iterations, s1.iterations);
}

TEST(MShake, VelocityImpulseMatchesShakeDirection) {
  auto spec = build_water_box(8, WaterModel::kRigid3Site);
  auto before = spec.positions;
  auto perturbed = spec.positions;
  for (auto& p : perturbed) p += Vec3{0.03, -0.02, 0.01};
  perturbed[1] += Vec3{0.05, 0.05, 0.0};  // strain one molecule

  std::vector<Vec3> v_shake(perturbed.size(), Vec3{});
  std::vector<Vec3> v_mshake(perturbed.size(), Vec3{});
  double dt = 0.05;
  ConstraintSolver shake(spec.topology, 1e-10, 500,
                         ConstraintAlgorithm::kShake);
  ConstraintSolver mshake(spec.topology, 1e-10, 500,
                          ConstraintAlgorithm::kMShake);
  auto p1 = perturbed;
  auto p2 = perturbed;
  shake.apply_positions(before, p1, v_shake, dt, spec.box);
  mshake.apply_positions(before, p2, v_mshake, dt, spec.box);
  // Same constraints, same reference: final positions agree closely.
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(norm(p1[i] - p2[i]), 0.0, 1e-6) << i;
    EXPECT_NEAR(norm(v_shake[i] - v_mshake[i]), 0.0, 1e-4) << i;
  }
}

TEST(MShake, DrivesStableDynamics) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  ff::NonbondedModel model;
  model.cutoff = 5.0;
  model.electrostatics = ff::Electrostatics::kEwaldReal;
  model.ewald_beta = 0.45;
  ForceField field(spec.topology, model);
  SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 250.0;
  cfg.thermostat.kind = ThermostatKind::kNone;
  cfg.com_removal_interval = 0;
  cfg.constraint_algorithm = ConstraintAlgorithm::kMShake;
  Simulation sim(field, spec.positions, spec.box, cfg);
  sim.run(150);
  ConstraintSolver check(spec.topology);
  EXPECT_LT(check.max_violation(sim.state().positions, sim.state().box),
            1e-6);
  EXPECT_TRUE(std::isfinite(sim.potential_energy()));
}

}  // namespace
}  // namespace antmd::md
