// Fault-injection and recovery tests: torn/corrupt checkpoints are rejected
// with IoError, injected force blow-ups trip the HealthGuard (throw or
// rollback-and-retry), and dead torus nodes are remapped without changing
// the trajectory by a single bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "ff/forcefield.hpp"
#include "io/checkpoint.hpp"
#include "machine/config.hpp"
#include "md/simulation.hpp"
#include "resilience/health.hpp"
#include "resilience/supervisor.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"

namespace antmd {
namespace {

std::string temp_path(const std::string& name) {
  return std::string("/tmp/antmd_fault_test_") + name;
}

ff::NonbondedModel lj_model(double cutoff = 7.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

md::SimulationConfig langevin_config(double temperature, double dt = 4.0) {
  md::SimulationConfig cfg;
  cfg.dt_fs = dt;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = temperature;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = temperature;
  cfg.thermostat.gamma_per_ps = 5.0;
  return cfg;
}

runtime::MachineSimConfig machine_config(double temperature = 120.0) {
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = temperature;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = temperature;
  return cfg;
}

TEST(CheckpointContainer, FlippedByteFailsCrc) {
  std::string blob = io::encode_checkpoint({{"sim", std::string(256, 'x')}});
  ASSERT_NO_THROW(io::decode_checkpoint(blob));
  std::string bad = blob;
  bad[bad.size() / 2] ^= 0x01;
  EXPECT_THROW(io::decode_checkpoint(bad), IoError);
}

TEST(CheckpointContainer, TruncationRejected) {
  std::string blob = io::encode_checkpoint({{"sim", std::string(256, 'x')}});
  for (size_t keep : {size_t{0}, size_t{4}, blob.size() - 1}) {
    EXPECT_THROW(io::decode_checkpoint(blob.substr(0, keep)), IoError)
        << "kept " << keep << " bytes";
  }
}

TEST(CheckpointContainer, WrongMagicRejected) {
  std::string blob = io::encode_checkpoint({{"sim", "payload"}});
  std::string bad = blob;
  bad[0] ^= 0xFF;
  EXPECT_THROW(io::decode_checkpoint(bad), IoError);
}

TEST(FaultInjection, WriteFailureLeavesPreviousCheckpointIntact) {
  std::string path = temp_path("enospc.ckpt");
  io::write_file_atomic(path, "previous-checkpoint");
  {
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::kIoWriteFail;
    fault::ScopedFault f(plan);
    EXPECT_THROW(io::write_file_atomic(path, "replacement"), IoError);
    EXPECT_EQ(fault::fired_count(fault::FaultKind::kIoWriteFail), 1u);
  }
  // The atomic write protocol (temp file + rename) never touched the
  // previous contents.
  EXPECT_EQ(io::read_file(path), "previous-checkpoint");
  // Once disarmed, the same write succeeds.
  io::write_file_atomic(path, "replacement");
  EXPECT_EQ(io::read_file(path), "replacement");
  std::remove(path.c_str());
}

TEST(FaultInjection, ShortWriteIsCaughtByCrcOnLoad) {
  std::string path = temp_path("torn.ckpt");
  std::string blob = io::encode_checkpoint({{"sim", std::string(512, 'y')}});
  {
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::kIoShortWrite;
    fault::ScopedFault f(plan);
    io::write_file_atomic(path, blob);  // "succeeds" with a torn blob
    EXPECT_EQ(fault::fired_count(fault::FaultKind::kIoShortWrite), 1u);
  }
  std::string on_disk = io::read_file(path);
  EXPECT_LT(on_disk.size(), blob.size());
  EXPECT_THROW(io::decode_checkpoint(on_disk), IoError);
  std::remove(path.c_str());
}

TEST(HealthGuard, PoisonedForceRollsBackAndCompletes) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 25;  // let ~25 force evaluations pass first
  plan.count = 1;
  plan.payload = 7;  // atom to poison
  fault::ScopedFault f(plan);

  resilience::HealthConfig hc;
  hc.checkpoint_interval = 10;
  hc.policy = resilience::HealthPolicy::kRollback;
  hc.max_retries = 3;
  resilience::HealthGuard<md::Simulation> guard(sim, hc);
  resilience::HealthReport report = guard.run(60);

  // The poison fired, was detected, and the run still delivered all steps.
  EXPECT_EQ(fault::fired_count(fault::FaultKind::kNanForce), 1u);
  EXPECT_GE(report.violations, 1u);
  EXPECT_GE(report.rollbacks, 1u);
  EXPECT_NE(report.last_violation.find("force"), std::string::npos);
  EXPECT_EQ(sim.state().step, 60u);
  // Rollback degraded the timestep.
  EXPECT_LT(report.final_dt_fs, 4.0);
  // The final state is healthy again.
  EXPECT_TRUE(
      resilience::find_violation(sim, hc, 0.0, sim.state().step).empty());
}

TEST(HealthGuard, ThrowPolicyEscalatesImmediately) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 10;
  plan.count = 1;
  fault::ScopedFault f(plan);

  resilience::HealthConfig hc;
  hc.policy = resilience::HealthPolicy::kThrow;
  resilience::HealthGuard<md::Simulation> guard(sim, hc);
  EXPECT_THROW(guard.run(60), NumericalError);
  EXPECT_GE(guard.report().violations, 1u);
}

TEST(HealthGuard, RetryBudgetExhaustionEscalates) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  // Fires on every force evaluation once eligible: rollback can never get
  // past the poisoned step, so the retry budget runs out.
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 5;
  plan.count = -1;
  fault::ScopedFault f(plan);

  resilience::HealthConfig hc;
  hc.policy = resilience::HealthPolicy::kRollback;
  hc.max_retries = 2;
  resilience::HealthGuard<md::Simulation> guard(sim, hc);
  EXPECT_THROW(guard.run(60), NumericalError);
  EXPECT_EQ(guard.report().rollbacks, 2u);
}

TEST(HealthGuard, DiskMirrorIsLoadableV2Checkpoint) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto cfg = langevin_config(120);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  std::string path = temp_path("guard_mirror.ckpt");
  resilience::HealthConfig hc;
  hc.checkpoint_interval = 10;
  hc.checkpoint_path = path;
  resilience::HealthGuard<md::Simulation> guard(sim, hc);
  guard.run(25);
  EXPECT_EQ(guard.last_good_step(), 20u);

  ForceField field2(spec.topology, lj_model());
  md::Simulation resumed(field2, spec.positions, spec.box, cfg);
  io::load_checkpoint_v2(path, {{"sim", &resumed}});
  EXPECT_EQ(resumed.state().step, 20u);
  std::remove(path.c_str());
}

TEST(NodeFailure, RemapKeepsTrajectoryBitExact) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  auto model = lj_model();
  auto cfg = machine_config();

  ForceField field_a(spec.topology, model);
  runtime::MachineSimulation healthy(field_a,
                                     machine::anton_with_torus(2, 2, 2),
                                     spec.positions, spec.box, cfg);
  healthy.run(10);

  ForceField field_b(spec.topology, model);
  runtime::MachineSimulation degraded(field_b,
                                      machine::anton_with_torus(2, 2, 2),
                                      spec.positions, spec.box, cfg);
  degraded.mutable_engine().set_node_failed(3);
  EXPECT_TRUE(degraded.engine().node_failed(3));
  EXPECT_EQ(degraded.engine().alive_node_count(), 7u);
  degraded.run(10);

  // Work moved to surviving nodes, but integer force sums commute: the
  // trajectory and energies are identical to the last bit.
  const State& sa = healthy.state();
  const State& sb = degraded.state();
  ASSERT_EQ(sa.positions.size(), sb.positions.size());
  for (size_t i = 0; i < sa.positions.size(); ++i) {
    EXPECT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
    EXPECT_EQ(sa.velocities[i], sb.velocities[i]) << "atom " << i;
  }
  EXPECT_EQ(healthy.potential_energy(), degraded.potential_energy());
}

TEST(NodeFailure, InjectedFaultMarksNodeAndRunContinues) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  ForceField field(spec.topology, lj_model());

  // Armed before construction: node redistribution only reruns when the
  // neighbor list rebuilds, so the deterministic place to fire is the
  // initial redistribute in the constructor.
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNodeFail;
  plan.count = 1;
  plan.payload = 5;
  fault::ScopedFault f(plan);
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box, machine_config());
  sim.run(10);

  EXPECT_EQ(fault::fired_count(fault::FaultKind::kNodeFail), 1u);
  EXPECT_TRUE(sim.engine().node_failed(5));
  EXPECT_EQ(sim.engine().alive_node_count(), 7u);
  EXPECT_TRUE(std::isfinite(sim.potential_energy()));
  EXPECT_EQ(sim.state().step, 10u);
}

// The core PR-4 acceptance matrix: every recoverable fault kind, armed at
// several fire points, run under the supervisor — and in every cell the
// final state must match the fault-free reference to the last bit.  The
// fault's entire footprint is modeled time, retransmit counters and
// recovery events.
TEST(Supervisor, FaultMatrixKeepsTrajectoryBitExact) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  auto model = lj_model();
  auto cfg = machine_config();
  constexpr size_t kSteps = 30;

  ForceField field_ref(spec.topology, model);
  runtime::MachineSimulation reference(field_ref,
                                       machine::anton_with_torus(2, 2, 2),
                                       spec.positions, spec.box, cfg);
  reference.run(kSteps);

  struct Case {
    fault::FaultKind kind;
    uint64_t fire_after;  ///< qualifying events before the fault fires
    uint64_t payload;
  };
  const Case matrix[] = {
      // kNanForce counts force evaluations (one per step)
      {fault::FaultKind::kNanForce, 2, 7},
      {fault::FaultKind::kNanForce, 20, 140},
      // link faults count modeled messages (many per step)
      {fault::FaultKind::kLinkDrop, 0, 0},
      {fault::FaultKind::kLinkDrop, 50, 0},
      {fault::FaultKind::kPacketCorrupt, 0, 0},
      {fault::FaultKind::kPacketCorrupt, 50, 0},
      // kNodeHang counts steps (one transport poll per step)
      {fault::FaultKind::kNodeHang, 3, 5},
      {fault::FaultKind::kNodeHang, 12, 1},
  };

  for (const Case& c : matrix) {
    SCOPED_TRACE(std::string("kind=") +
                 std::to_string(static_cast<int>(c.kind)) +
                 " fire_after=" + std::to_string(c.fire_after));
    ForceField field(spec.topology, model);
    runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                   spec.positions, spec.box, cfg);
    // Armed after construction so fire_after counts run-time events only.
    fault::FaultPlan plan;
    plan.kind = c.kind;
    plan.fire_after = c.fire_after;
    plan.count = 1;
    plan.payload = c.payload;
    fault::ScopedFault f(plan);

    resilience::SupervisorConfig sc;
    sc.max_retries = 3;
    sc.snapshot_interval = 10;
    sc.watchdog_ms = 1.0;  // a 5 ms modeled hang trips this; normal steps not
    resilience::Supervisor<runtime::MachineSimulation> supervisor(sim, sc);
    resilience::RecoveryReport report = supervisor.run(kSteps);

    EXPECT_EQ(fault::fired_count(c.kind), 1u);
    EXPECT_TRUE(report.completed) << report.final_error;
    EXPECT_EQ(sim.state().step, kSteps);

    const State& sa = reference.state();
    const State& sb = sim.state();
    ASSERT_EQ(sa.positions.size(), sb.positions.size());
    for (size_t i = 0; i < sa.positions.size(); ++i) {
      ASSERT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
      ASSERT_EQ(sa.velocities[i], sb.velocities[i]) << "atom " << i;
    }
    EXPECT_EQ(reference.potential_energy(), sim.potential_energy());
  }
}

// When the retry budget cannot cover the failure (the fault fires on every
// attempt), the supervisor must escalate with a report that accounts for
// every decision — not crash, not loop forever.
TEST(Supervisor, ExhaustedRetryBudgetEscalatesWithAccurateReport) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 5;
  plan.count = -1;  // fires on every evaluation: retry can never succeed
  fault::ScopedFault f(plan);

  std::string report_path = temp_path("escalation.report");
  resilience::SupervisorConfig sc;
  sc.max_retries = 2;
  sc.snapshot_interval = 10;
  sc.report_path = report_path;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(60);

  EXPECT_FALSE(report.completed);
  EXPECT_LT(sim.state().step, 60u);
  // Budget of 2: two rollback attempts, then the third detection escalates.
  EXPECT_EQ(report.retries, 2u);
  EXPECT_EQ(report.rollbacks, 2u);
  EXPECT_EQ(report.faults_detected, 3u);
  EXPECT_GT(report.recovery_modeled_s, 0.0);
  EXPECT_NE(report.final_error.find("numerical"), std::string::npos);
  ASSERT_GE(report.events.size(), 3u);
  EXPECT_EQ(report.events.back().action,
            resilience::RecoveryAction::kEscalate);
  EXPECT_EQ(report.events.back().kind, resilience::FailureKind::kNumerical);

  // The written report matches the returned one.
  std::string on_disk = io::read_file(report_path);
  EXPECT_NE(on_disk.find("run abandoned"), std::string::npos);
  EXPECT_NE(on_disk.find("rollbacks:          2"), std::string::npos);
  std::remove(report_path.c_str());
}

TEST(NodeFailure, SlowNodeStretchesModeledTimeOnly) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  auto model = lj_model();
  auto cfg = machine_config();

  ForceField field_a(spec.topology, model);
  runtime::MachineSimulation fast(field_a, machine::anton_with_torus(2, 2, 2),
                                  spec.positions, spec.box, cfg);
  fast.run(5);

  ForceField field_b(spec.topology, model);
  runtime::MachineSimulation slow(field_b, machine::anton_with_torus(2, 2, 2),
                                  spec.positions, spec.box, cfg);
  slow.timing().set_node_slowdown(0, 3.0);
  EXPECT_EQ(slow.timing().node_slowdown(0), 3.0);
  slow.run(5);

  // A degraded (but alive) node inflates the modeled critical path...
  EXPECT_GT(slow.modeled_time_s(), fast.modeled_time_s());
  // ...without touching the physics.
  const State& sa = fast.state();
  const State& sb = slow.state();
  for (size_t i = 0; i < sa.positions.size(); ++i) {
    EXPECT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
  }
}

// With threads > 1 the force evaluation runs as a task graph and the
// kNanForce injection point sits in the md.reduce task — it fires on
// whichever worker lane picks that task up, not on the caller thread.
// Recovery must still be race-free and bit-identical to the fault-free
// parallel run (this case is part of the tsan sweep).
TEST(Supervisor, WorkerLaneFaultRecoveryIsBitIdentical) {
  auto spec = build_lj_fluid(216, 0.021, 7);
  auto model = lj_model();
  auto cfg = langevin_config(120);
  cfg.execution.threads = 2;
  constexpr size_t kSteps = 30;

  ForceField field_ref(spec.topology, model);
  md::Simulation reference(field_ref, spec.positions, spec.box, cfg);
  reference.run(kSteps);

  ForceField field(spec.topology, model);
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 12;  // force evaluations, counted on the worker lane
  plan.payload = 9;
  fault::ScopedFault f(plan);

  resilience::SupervisorConfig sc;
  sc.snapshot_interval = 10;
  resilience::Supervisor<md::Simulation> supervisor(sim, sc);
  resilience::RecoveryReport report = supervisor.run(kSteps);

  EXPECT_EQ(fault::fired_count(fault::FaultKind::kNanForce), 1u);
  EXPECT_TRUE(report.completed) << report.final_error;
  EXPECT_GE(report.rollbacks, 1u);

  const State& sa = reference.state();
  const State& sb = sim.state();
  ASSERT_EQ(sa.positions.size(), sb.positions.size());
  for (size_t i = 0; i < sa.positions.size(); ++i) {
    ASSERT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
    ASSERT_EQ(sa.velocities[i], sb.velocities[i]) << "atom " << i;
  }
  EXPECT_EQ(reference.potential_energy(), sim.potential_energy());
}

// Scoped plans (fleet multi-tenancy): a plan armed for one scope fires
// only while that scope is current, counts only that scope's events, and
// disarm_scope removes it without touching other tenants or the globals.
TEST(FaultScope, ScopedPlanOnlyFiresInItsScope) {
  fault::disarm_all();
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kIoWriteFail;
  plan.fire_after = 0;
  plan.count = -1;  // every eligible event
  fault::arm_scoped(7, plan);

  // Global scope: the scoped plan is invisible.
  EXPECT_FALSE(fault::should_fire(fault::FaultKind::kIoWriteFail));
  {
    fault::CurrentScope scope(7);
    EXPECT_TRUE(fault::should_fire(fault::FaultKind::kIoWriteFail));
    EXPECT_TRUE(fault::should_fire(fault::FaultKind::kIoWriteFail));
  }
  {
    fault::CurrentScope scope(8);  // a sibling tenant
    EXPECT_FALSE(fault::should_fire(fault::FaultKind::kIoWriteFail));
  }
  EXPECT_EQ(fault::fired_count_scoped(7, fault::FaultKind::kIoWriteFail), 2u);
  EXPECT_EQ(fault::fired_count_scoped(8, fault::FaultKind::kIoWriteFail), 0u);

  fault::disarm_scope(7);
  {
    fault::CurrentScope scope(7);
    EXPECT_FALSE(fault::should_fire(fault::FaultKind::kIoWriteFail));
  }
  fault::disarm_all();
}

TEST(FaultScope, ScopedEventCountingIgnoresOtherScopes) {
  fault::disarm_all();
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNanForce;
  plan.fire_after = 2;  // two qualifying events must pass in-scope first
  fault::arm_scoped(3, plan);

  // Events observed while another scope is current must not advance the
  // plan's fire_after countdown.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fault::should_fire(fault::FaultKind::kNanForce));
  }
  {
    fault::CurrentScope scope(3);
    EXPECT_FALSE(fault::should_fire(fault::FaultKind::kNanForce));
    EXPECT_FALSE(fault::should_fire(fault::FaultKind::kNanForce));
    EXPECT_TRUE(fault::should_fire(fault::FaultKind::kNanForce));
    EXPECT_FALSE(fault::should_fire(fault::FaultKind::kNanForce));
  }
  fault::disarm_all();
}

TEST(FaultScope, GlobalPlanFiresInEveryScope) {
  fault::disarm_all();
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::kNodeFail;
  plan.count = -1;
  fault::arm(plan);
  {
    fault::CurrentScope scope(42);
    EXPECT_TRUE(fault::should_fire(fault::FaultKind::kNodeFail));
  }
  EXPECT_TRUE(fault::should_fire(fault::FaultKind::kNodeFail));
  fault::disarm_all();
}

// Fault-schedule invariance under resume: checkpoint a run mid-schedule,
// note how many qualifying events the armed plan has consumed, restore into
// a fresh simulation and re-arm the remainder with
// fire_after' = fire_after - event_count.  The fault must fire at the same
// absolute step and the finished trajectory must match the uninterrupted
// run to the last bit — chaos schedules survive checkpoint/resume.
TEST(FaultSchedule, ResumeReArmsRemainingScheduleAtSameAbsoluteSteps) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto cfg = langevin_config(120);
  constexpr size_t kTotal = 60;
  constexpr size_t kSplit = 20;  // checkpoint before the fault is due
  constexpr uint64_t kFireAfter = 25;

  auto make_plan = [](uint64_t fire_after) {
    fault::FaultPlan plan;
    plan.kind = fault::FaultKind::kNanForce;
    plan.fire_after = fire_after;
    plan.count = 1;
    plan.payload = 7;
    return plan;
  };
  resilience::SupervisorConfig sc;
  sc.snapshot_interval = 10;

  // Reference: the whole schedule in one uninterrupted supervised run.
  ForceField field_ref(spec.topology, lj_model());
  md::Simulation reference(field_ref, spec.positions, spec.box, cfg);
  resilience::RecoveryReport ref_report;
  {
    fault::ScopedFault f(make_plan(kFireAfter));
    resilience::Supervisor<md::Simulation> sup(reference, sc);
    ref_report = sup.run(kTotal);
    EXPECT_TRUE(ref_report.completed) << ref_report.final_error;
    EXPECT_GE(ref_report.rollbacks, 1u);
    EXPECT_EQ(fault::fired_count(fault::FaultKind::kNanForce), 1u);
  }

  // Interrupted run: clean steps, then checkpoint + note consumed events.
  std::string path = temp_path("resume_schedule.ckpt");
  uint64_t consumed = 0;
  {
    ForceField field(spec.topology, lj_model());
    md::Simulation sim(field, spec.positions, spec.box, cfg);
    fault::ScopedFault f(make_plan(kFireAfter));
    sim.run(kSplit);
    consumed = fault::event_count(fault::FaultKind::kNanForce);
    EXPECT_GT(consumed, 0u);
    EXPECT_LT(consumed, kFireAfter);  // still mid-schedule
    util::BinaryWriter w;
    sim.save_checkpoint(w);
    io::write_file_atomic(path, io::encode_checkpoint({{"sim", w.buffer()}}));
  }

  // Resume: restore, re-arm the remaining schedule, finish supervised.
  ForceField field_res(spec.topology, lj_model());
  md::Simulation resumed(field_res, spec.positions, spec.box, cfg);
  io::load_checkpoint_v2(path, {{"sim", &resumed}});
  ASSERT_EQ(resumed.state().step, kSplit);
  {
    fault::ScopedFault f(make_plan(kFireAfter - consumed));
    resilience::Supervisor<md::Simulation> sup(resumed, sc);
    resilience::RecoveryReport report = sup.run(kTotal - kSplit);
    EXPECT_TRUE(report.completed) << report.final_error;
    EXPECT_EQ(fault::fired_count(fault::FaultKind::kNanForce), 1u);
    // Same number of recovery decisions, at the same absolute steps.
    ASSERT_EQ(report.events.size(), ref_report.events.size());
    for (size_t i = 0; i < report.events.size(); ++i) {
      EXPECT_EQ(report.events[i].step, ref_report.events[i].step) << i;
      EXPECT_EQ(report.events[i].kind, ref_report.events[i].kind) << i;
      EXPECT_EQ(report.events[i].action, ref_report.events[i].action) << i;
    }
  }

  const State& sa = reference.state();
  const State& sb = resumed.state();
  ASSERT_EQ(sb.step, kTotal);
  for (size_t i = 0; i < sa.positions.size(); ++i) {
    ASSERT_EQ(sa.positions[i], sb.positions[i]) << "atom " << i;
    ASSERT_EQ(sa.velocities[i], sb.velocities[i]) << "atom " << i;
  }
  EXPECT_EQ(reference.potential_energy(), resumed.potential_energy());
  std::remove(path.c_str());
}

TEST(FaultScope, ParseFaultPlanRoundTrips) {
  fault::FaultPlan plan = fault::parse_fault_plan("nan_force:10:2:7");
  EXPECT_EQ(plan.kind, fault::FaultKind::kNanForce);
  EXPECT_EQ(plan.fire_after, 10u);
  EXPECT_EQ(plan.count, 2);
  EXPECT_EQ(plan.payload, 7u);

  plan = fault::parse_fault_plan("node_hang");
  EXPECT_EQ(plan.kind, fault::FaultKind::kNodeHang);
  EXPECT_EQ(plan.fire_after, 0u);
  EXPECT_EQ(plan.count, 1);

  EXPECT_THROW(fault::parse_fault_plan("meteor_strike"), ConfigError);
  EXPECT_THROW(fault::parse_fault_plan("nan_force:abc"), ConfigError);
}

}  // namespace
}  // namespace antmd
