// Tests for the Gō-model substrate: builder geometry, the 12-10 contact
// kernel, exclusion bookkeeping, and an actual folding run (collapse from
// the extended state toward the native helix).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/structure.hpp"
#include "ff/bonded.hpp"
#include "ff/forcefield.hpp"
#include "md/simulation.hpp"
#include "sampling/tempering.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

TEST(GoKernel, MinimumExactlyAtNativeDistance) {
  Box box = Box::cubic(100);
  std::vector<GoContact> contacts = {{0, 1, 2.0, 5.5}};
  std::vector<Vec3> pos = {{0, 0, 0}, {5.5, 0, 0}};
  ForceResult out(2);
  ff::compute_go_contacts(contacts, pos, box, out);
  EXPECT_NEAR(out.energy.vdw.value(), -2.0, 1e-9);  // U(rn) = -ε
  EXPECT_NEAR(norm(out.forces.force(0)), 0.0, 1e-6);
}

TEST(GoKernel, ForceMatchesFiniteDifference) {
  Box box = Box::cubic(100);
  std::vector<GoContact> contacts = {{0, 1, 1.5, 6.0}};
  std::vector<Vec3> pos = {{1, 2, 3}, {5.5, 4.0, 2.1}};
  ForceResult out(2);
  ff::compute_go_contacts(contacts, pos, box, out);
  auto energy = [&](const std::vector<Vec3>& p) {
    ForceResult r(2);
    ff::compute_go_contacts(contacts, p, box, r);
    return r.energy.vdw.value();
  };
  const double h = 1e-5;
  for (size_t a = 0; a < 2; ++a) {
    for (int d = 0; d < 3; ++d) {
      auto p = pos;
      p[a][d] += h;
      double ep = energy(p);
      p[a][d] -= 2 * h;
      double em = energy(p);
      double fd = -(ep - em) / (2 * h);
      EXPECT_NEAR(out.forces.force(a)[d], fd, 1e-4);
    }
  }
}

TEST(GoBuilder, NativeGeometryAndContacts) {
  auto spec = build_go_protein(24, 1.0);
  const Topology& t = spec.topology;
  EXPECT_EQ(t.atom_count(), 24u);
  EXPECT_EQ(t.bonds().size(), 23u);
  EXPECT_EQ(t.angles().size(), 22u);
  EXPECT_FALSE(t.go_contacts().empty());
  EXPECT_EQ(spec.reference.size(), 24u);

  // Consecutive native distances ≈ 3.8 Å (helix CA geometry).
  for (size_t b = 0; b + 1 < 24; ++b) {
    EXPECT_NEAR(norm(spec.reference[b + 1] - spec.reference[b]), 3.8, 0.1);
  }
  // Contacts are |i-j| >= 3 and within 8 Å natively; each is excluded from
  // the generic pair loop.
  for (const auto& g : t.go_contacts()) {
    EXPECT_GE(static_cast<int>(g.j) - static_cast<int>(g.i), 3);
    EXPECT_LT(g.r_native, 8.0);
    EXPECT_TRUE(t.is_excluded(g.i, g.j));
  }
  // The native structure scores ~1.0 on its own contact map.
  std::vector<analysis::Contact> contacts;
  for (const auto& g : t.go_contacts()) {
    contacts.push_back({g.i, g.j, g.r_native});
  }
  EXPECT_NEAR(analysis::native_contact_fraction(spec.reference, contacts,
                                                spec.box, 1.1),
              1.0, 1e-9);
  // The extended start scores low.
  EXPECT_LT(analysis::native_contact_fraction(spec.positions, contacts,
                                              spec.box, 1.2),
            0.3);
}

TEST(GoFolding, ChainCollapsesTowardNative) {
  auto spec = build_go_protein(16, 1.5);
  ff::NonbondedModel model;
  model.cutoff = 10.0;
  model.electrostatics = ff::Electrostatics::kNone;
  ForceField field(spec.topology, model);

  md::SimulationConfig cfg;
  cfg.dt_fs = 6.0;
  cfg.neighbor_skin = 2.0;
  cfg.init_temperature_k = 140.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 140.0;
  cfg.thermostat.gamma_per_ps = 2.0;
  md::Simulation sim(field, spec.positions, spec.box, cfg);

  std::vector<analysis::Contact> contacts;
  for (const auto& g : spec.topology.go_contacts()) {
    contacts.push_back({g.i, g.j, g.r_native});
  }
  std::vector<uint32_t> chain(16);
  for (uint32_t b = 0; b < 16; ++b) chain[b] = b;

  double q0 = analysis::native_contact_fraction(sim.state().positions,
                                                contacts, sim.state().box);
  double rg0 = analysis::chain_radius_of_gyration(sim.state().positions,
                                                  chain, sim.state().box);
  sim.run(4000);
  double q1 = analysis::native_contact_fraction(sim.state().positions,
                                                contacts, sim.state().box);
  double rg1 = analysis::chain_radius_of_gyration(sim.state().positions,
                                                  chain, sim.state().box);
  EXPECT_GT(q1, q0 + 0.2) << "chain did not gain native contacts";
  EXPECT_LT(rg1, rg0) << "chain did not compact";
}

TEST(GoBuilder, RejectsTinyChains) {
  EXPECT_THROW(build_go_protein(4), Error);
}

}  // namespace
}  // namespace antmd
