// Tests for the distributed runtime: decomposition correctness, the
// bit-exact determinism contract across node counts (the paper's fixed-
// point guarantee, experiment T5), workload accounting, and agreement with
// the single-host engine.
#include <gtest/gtest.h>

#include <numeric>

#include "ff/forcefield.hpp"
#include "machine/config.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "runtime/decomposition.hpp"
#include "runtime/engine.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"

namespace antmd::runtime {
namespace {

ff::NonbondedModel lj_model(double cutoff = 7.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

ff::NonbondedModel water_model(double cutoff = 6.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kEwaldReal;
  m.ewald_beta = 0.45;
  return m;
}

TEST(Decomposition, EveryAtomOwnedExactlyOnce) {
  auto spec = build_lj_fluid(343, 0.021, 3);
  machine::TorusTopology torus(machine::anton_with_torus(2, 2, 2));
  SpatialDecomposition decomp(torus, spec.box);
  decomp.assign_atoms(spec.positions, spec.box);
  auto counts = decomp.atoms_per_node();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), size_t{0}), 343u);
  // Uniform fluid: every node owns something.
  for (size_t c : counts) EXPECT_GT(c, 0u);
}

TEST(Decomposition, OwnerMatchesSpatialCell) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  machine::TorusTopology torus(machine::anton_with_torus(3, 3, 3));
  SpatialDecomposition decomp(torus, spec.box);
  decomp.assign_atoms(spec.positions, spec.box);
  for (uint32_t i = 0; i < 216; ++i) {
    EXPECT_EQ(decomp.owner(i), decomp.node_at(spec.positions[i], spec.box));
  }
}

TEST(Decomposition, PairRulesAssignEveryPair) {
  auto spec = build_lj_fluid(216, 0.021, 5);
  machine::TorusTopology torus(machine::anton_with_torus(2, 2, 2));
  SpatialDecomposition decomp(torus, spec.box);
  decomp.assign_atoms(spec.positions, spec.box);

  md::NeighborList list(spec.topology, 7.0, 1.0);
  list.build(spec.positions, spec.box);

  for (auto rule : {PairAssignment::kHomeOfFirst, PairAssignment::kMidpoint}) {
    auto nodes = decomp.assign_pairs(list.pairs(), spec.positions, spec.box,
                                     rule);
    ASSERT_EQ(nodes.size(), list.pairs().size());
    for (uint32_t n : nodes) EXPECT_LT(n, 8u);
  }
}

TEST(Engine, ForcesBitIdenticalAcrossNodeCounts) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  auto model = water_model(5.0);

  std::vector<std::array<int, 3>> layouts = {
      {1, 1, 1}, {2, 2, 2}, {4, 4, 4}, {8, 8, 8}};
  std::vector<ForceResult> results;
  for (const auto& dims : layouts) {
    ForceField field(spec.topology, model);
    field.on_box_changed(spec.box);
    DistributedEngine engine(
        field, machine::anton_with_torus(dims[0], dims[1], dims[2]));
    md::NeighborList list(spec.topology, model.cutoff, 1.0);
    auto positions = spec.positions;
    list.build(positions, spec.box);
    engine.redistribute(positions, spec.box, list.pairs());

    ForceResult out(spec.topology.atom_count());
    ForceResult kcache(spec.topology.atom_count());
    engine.evaluate(positions, spec.box, 0.0, list.pairs(), true, out,
                    kcache);
    results.push_back(std::move(out));
  }
  for (size_t k = 1; k < results.size(); ++k) {
    EXPECT_EQ(results[0].forces, results[k].forces)
        << "forces differ between layouts 0 and " << k;
    EXPECT_EQ(results[0].energy.vdw, results[k].energy.vdw);
    EXPECT_EQ(results[0].energy.coulomb_real, results[k].energy.coulomb_real);
    EXPECT_EQ(results[0].energy.bond, results[k].energy.bond);
  }
}

TEST(Engine, MidpointRuleAlsoDeterministic) {
  auto spec = build_lj_fluid(216, 0.021, 9);
  auto model = lj_model();
  EngineOptions opt;
  opt.pair_rule = PairAssignment::kMidpoint;

  std::vector<ForceResult> results;
  for (int n : {1, 4}) {
    ForceField field(spec.topology, model);
    DistributedEngine engine(field, machine::anton_with_torus(n, n, n), opt);
    md::NeighborList list(spec.topology, model.cutoff, 1.0);
    auto positions = spec.positions;
    list.build(positions, spec.box);
    engine.redistribute(positions, spec.box, list.pairs());
    ForceResult out(216), kcache(216);
    engine.evaluate(positions, spec.box, 0.0, list.pairs(), true, out,
                    kcache);
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0].forces, results[1].forces);
}

TEST(Engine, WorkloadCountsCoverAllPairs) {
  auto spec = build_lj_fluid(216, 0.021, 11);
  auto model = lj_model();
  ForceField field(spec.topology, model);
  DistributedEngine engine(field, machine::anton_with_torus(2, 2, 2));
  md::NeighborList list(spec.topology, model.cutoff, 1.0);
  auto positions = spec.positions;
  list.build(positions, spec.box);
  engine.redistribute(positions, spec.box, list.pairs());
  ForceResult out(216), kcache(216);
  auto work = engine.evaluate(positions, spec.box, 0.0, list.pairs(), true,
                              out, kcache);
  size_t total_pairs = 0;
  for (const auto& n : work.nodes) total_pairs += n.pairs;
  EXPECT_EQ(total_pairs, list.pairs().size());
  // Multi-node decomposition of a dense fluid must import something.
  double total_import = 0;
  for (const auto& n : work.nodes) total_import += n.import_bytes;
  EXPECT_GT(total_import, 0.0);
}

TEST(Engine, SingleNodeImportsNothing) {
  auto spec = build_lj_fluid(125, 0.021, 13);
  auto model = lj_model();
  ForceField field(spec.topology, model);
  DistributedEngine engine(field, machine::anton_with_torus(1, 1, 1));
  md::NeighborList list(spec.topology, model.cutoff, 1.0);
  auto positions = spec.positions;
  list.build(positions, spec.box);
  engine.redistribute(positions, spec.box, list.pairs());
  ForceResult out(125), kcache(125);
  auto work = engine.evaluate(positions, spec.box, 0.0, list.pairs(), true,
                              out, kcache);
  ASSERT_EQ(work.nodes.size(), 1u);
  EXPECT_EQ(work.nodes[0].import_bytes, 0.0);
  EXPECT_EQ(work.nodes[0].messages, 0u);
}

TEST(MachineSim, TrajectoryBitIdenticalAcrossNodeCounts) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  auto model = water_model(5.0);

  auto run_traj = [&](int n) {
    ForceField field(spec.topology, model);
    MachineSimConfig cfg;
    cfg.dt_fs = 2.0;
    cfg.kspace_interval = 2;
    cfg.neighbor_skin = 1.0;
    cfg.init_temperature_k = 250.0;
    cfg.thermostat.kind = md::ThermostatKind::kLangevin;
    cfg.thermostat.temperature_k = 250.0;
    MachineSimulation sim(field, machine::anton_with_torus(n, n, n),
                          spec.positions, spec.box, cfg);
    sim.run(25);
    return sim.state().positions;
  };

  auto p1 = run_traj(1);
  auto p2 = run_traj(2);
  auto p4 = run_traj(4);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i], p2[i]) << "atom " << i << " differs (1 vs 8 nodes)";
    EXPECT_EQ(p1[i], p4[i]) << "atom " << i << " differs (1 vs 64 nodes)";
  }
}

TEST(MachineSim, EnergyAgreesWithHostSimulation) {
  // The machine path quantizes positions through the wire format, so it is
  // not bitwise-equal to md::Simulation — but energies must agree closely.
  auto spec = build_lj_fluid(125, 0.021, 17);
  auto model = lj_model();

  ForceField field_host(spec.topology, model);
  md::SimulationConfig host_cfg;
  host_cfg.dt_fs = 2.0;
  host_cfg.neighbor_skin = 1.0;
  host_cfg.init_temperature_k = 120.0;
  host_cfg.com_removal_interval = 0;
  md::Simulation host(field_host, spec.positions, spec.box, host_cfg);

  ForceField field_machine(spec.topology, model);
  MachineSimConfig mc;
  mc.dt_fs = 2.0;
  mc.neighbor_skin = 1.0;
  mc.init_temperature_k = 120.0;
  mc.velocity_seed = host_cfg.velocity_seed;
  mc.thermostat.kind = md::ThermostatKind::kNone;
  MachineSimulation machine_sim(field_machine,
                                machine::anton_with_torus(2, 2, 2),
                                spec.positions, spec.box, mc);

  EXPECT_NEAR(machine_sim.potential_energy(), host.potential_energy(),
              1e-3 * std::abs(host.potential_energy()) + 1e-3);
  host.run(20);
  machine_sim.run(20);
  EXPECT_NEAR(machine_sim.potential_energy(), host.potential_energy(),
              2e-2 * std::abs(host.potential_energy()) + 0.5);
}

TEST(MachineSim, ModeledTimeAccumulates) {
  auto spec = build_lj_fluid(216, 0.021, 19);
  auto model = lj_model();
  ForceField field(spec.topology, model);
  MachineSimConfig cfg;
  cfg.dt_fs = 2.5;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 120.0;
  MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                        spec.positions, spec.box, cfg);
  sim.run(10);
  EXPECT_GT(sim.modeled_time_s(), 0.0);
  EXPECT_GT(sim.mean_step_time_s(), 0.0);
  EXPECT_GT(sim.ns_per_day(), 0.0);
  EXPECT_GT(sim.last_breakdown().total, 0.0);
  // Accumulated totals exceed any single step.
  EXPECT_GE(sim.accumulated().total, sim.last_breakdown().total);
}

TEST(MachineSim, MoreNodesMeansFasterSteps) {
  auto spec = build_water_box(216, WaterModel::kRigid3Site);
  auto model = water_model(6.0);

  auto mean_step = [&](int n) {
    ForceField field(spec.topology, model);
    MachineSimConfig cfg;
    cfg.dt_fs = 2.0;
    cfg.neighbor_skin = 1.0;
    cfg.init_temperature_k = 250.0;
    MachineSimulation sim(field, machine::anton_with_torus(n, n, n),
                          spec.positions, spec.box, cfg);
    sim.run(5);
    return sim.mean_step_time_s();
  };
  double t1 = mean_step(1);
  double t4 = mean_step(4);
  EXPECT_LT(t4, t1);  // 64 nodes beat 1 node on a 216-water box
}

}  // namespace
}  // namespace antmd::runtime
