// Tier-1 contract for the parallel execution layer: worker threads must be
// invisible in the results.  With deterministic reduction (the default) a
// trajectory is bit-identical at any thread count, because forces and
// energies accumulate in order-independent fixed point and the per-node
// partials (including the double-precision virial) are merged in fixed
// node-index order.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ff/forcefield.hpp"
#include "machine/config.hpp"
#include "md/builder.hpp"
#include "md/neighbor.hpp"
#include "md/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runtime/machine_sim.hpp"
#include "sampling/replica_exchange.hpp"
#include "topo/builders.hpp"
#include "util/execution.hpp"

namespace antmd {
namespace {

// Miniprotein workload: 20-bead polymer in a 125-atom solvent bath, long
// enough (500 steps) that any scheduling-dependent arithmetic would be
// amplified by Lyapunov growth into visible divergence.
constexpr size_t kSteps = 500;

ff::NonbondedModel polymer_model() {
  ff::NonbondedModel m;
  m.cutoff = 8.0;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

void expect_bitwise_equal(const std::vector<Vec3>& a,
                          const std::vector<Vec3>& b, size_t threads) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i] == b[i])
        << "atom " << i << " diverged at " << threads << " threads";
  }
}

std::vector<Vec3> run_host(size_t threads) {
  auto spec = build_polymer_in_solvent(20, 125);
  ForceField field(spec.topology, polymer_model());
  md::Simulation sim = md::SimulationBuilder()
                           .dt_fs(4.0)
                           .neighbor_skin(1.0)
                           .langevin(150.0, 5.0)
                           .threads(threads)
                           .build(field, spec.positions, spec.box);
  sim.run(kSteps);
  return sim.state().positions;
}

std::vector<Vec3> run_machine(size_t threads) {
  auto spec = build_polymer_in_solvent(20, 125);
  ForceField field(spec.topology, polymer_model());
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 4.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 150.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 150.0;
  cfg.engine.execution.threads = threads;
  runtime::MachineSimulation sim(field, machine::anton_with_torus(2, 2, 2),
                                 spec.positions, spec.box, cfg);
  sim.run(kSteps);
  return sim.state().positions;
}

TEST(ParallelDeterminism, HostSimulationBitIdenticalAcrossThreadCounts) {
  auto reference = run_host(1);
  for (size_t threads : {2u, 4u, 8u}) {
    expect_bitwise_equal(reference, run_host(threads), threads);
  }
}

TEST(ParallelDeterminism, MachineEngineBitIdenticalAcrossThreadCounts) {
  auto reference = run_machine(1);
  for (size_t threads : {2u, 4u, 8u}) {
    expect_bitwise_equal(reference, run_machine(threads), threads);
  }
}

// Telemetry must be write-only with respect to the physics: the same run
// with metrics + tracing enabled has to reproduce the reference trajectory
// bit for bit (ISSUE: "telemetry changes no trajectory bit").
TEST(ParallelDeterminism, TelemetryAndTracingChangeNoTrajectoryBit) {
  auto reference_host = run_host(4);
  auto reference_machine = run_machine(4);

  obs::ScopedTelemetry telemetry(true);
  obs::TraceSession::global().start("");  // record to the in-memory buffer
  auto traced_host = run_host(4);
  auto traced_machine = run_machine(4);
  obs::TraceSession::global().stop();

  EXPECT_GT(obs::TraceSession::global().event_count(), 0u);
  expect_bitwise_equal(reference_host, traced_host, 4);
  expect_bitwise_equal(reference_machine, traced_machine, 4);
}

// The attribution profiler shares the telemetry contract: collection is
// read-only with respect to the physics, so the same run with profiling
// enabled must reproduce the reference trajectory bit for bit, serial and
// threaded, on both engines.
TEST(ParallelDeterminism, AttributionProfilingChangesNoTrajectoryBit) {
  auto reference_host_1 = run_host(1);
  auto reference_host_4 = run_host(4);
  auto reference_machine_1 = run_machine(1);
  auto reference_machine_4 = run_machine(4);

  obs::ScopedProfiling profiling(true);
  obs::Profile::global().reset();
  expect_bitwise_equal(reference_host_1, run_host(1), 1);
  expect_bitwise_equal(reference_host_4, run_host(4), 4);
  expect_bitwise_equal(reference_machine_1, run_machine(1), 1);
  expect_bitwise_equal(reference_machine_4, run_machine(4), 4);
  // The profiler did collect: modeled network time for the machine runs.
  EXPECT_GT(obs::Profile::global().network_total_s(), 0.0);
  obs::Profile::global().reset();
}

TEST(ParallelDeterminism, NeighborListPairsMatchSerialBuild) {
  auto spec = build_polymer_in_solvent(20, 125);
  md::NeighborList serial(spec.topology, 8.0, 1.0);
  serial.build(spec.positions, spec.box);

  md::NeighborList parallel(spec.topology, 8.0, 1.0);
  parallel.set_execution(ExecutionContext::create({4, true}));
  parallel.build(spec.positions, spec.box);

  ASSERT_EQ(serial.pairs().size(), parallel.pairs().size());
  for (size_t k = 0; k < serial.pairs().size(); ++k) {
    EXPECT_EQ(serial.pairs()[k].i, parallel.pairs()[k].i);
    EXPECT_EQ(serial.pairs()[k].j, parallel.pairs()[k].j);
  }
}

// Phase overlap: rigid water turns on every concurrent phase at once —
// k-space recompute (overlapped with the nonbonded tiles by the step
// graph), SHAKE constraints, and the neighbor-list early-out.  The
// trajectory must stay byte-identical across thread counts for both
// nonbonded kernels.
TEST(ParallelDeterminism, PhaseOverlapWithKspaceAndConstraints) {
  auto run_water = [](size_t threads, ff::NonbondedKernel kernel) {
    auto spec = build_water_box(125, WaterModel::kRigid3Site);
    ff::NonbondedModel model;
    model.cutoff = 6.0;
    model.electrostatics = ff::Electrostatics::kEwaldReal;
    model.ewald_beta = 0.45;
    ForceField field(spec.topology, model);
    md::Simulation sim = md::SimulationBuilder()
                             .dt_fs(2.0)
                             .neighbor_skin(1.0)
                             .kspace_interval(2)  // due and not-due steps
                             .langevin(250.0, 5.0)
                             .nonbonded_kernel(kernel)
                             .threads(threads)
                             .build(field, spec.positions, spec.box);
    sim.run(200);
    md::ConstraintSolver check(spec.topology);
    EXPECT_LT(check.max_violation(sim.state().positions, sim.state().box),
              1e-6);
    return sim.state().positions;
  };

  for (auto kernel :
       {ff::NonbondedKernel::kCluster, ff::NonbondedKernel::kPair}) {
    auto reference = run_water(1, kernel);
    for (size_t threads : {2u, 8u}) {
      expect_bitwise_equal(reference, run_water(threads, kernel), threads);
    }
  }
}

TEST(ParallelDeterminism, ReplicaExchangeThreadCountInvariant) {
  auto spec = build_polymer_in_solvent(12, 125);
  const std::vector<double> temps = {140.0, 160.0, 180.0, 200.0};

  auto run_remd = [&](size_t threads) {
    std::vector<std::unique_ptr<ForceField>> fields;
    std::vector<std::unique_ptr<md::Simulation>> sims;
    std::vector<md::Simulation*> ptrs;
    for (double t : temps) {
      fields.push_back(
          std::make_unique<ForceField>(spec.topology, polymer_model()));
      md::SimulationConfig cfg;
      cfg.dt_fs = 4.0;
      cfg.neighbor_skin = 1.0;
      cfg.init_temperature_k = t;
      cfg.thermostat.kind = md::ThermostatKind::kLangevin;
      cfg.thermostat.temperature_k = t;
      cfg.thermostat.gamma_per_ps = 5.0;
      sims.push_back(std::make_unique<md::Simulation>(
          *fields.back(), spec.positions, spec.box, cfg));
      ptrs.push_back(sims.back().get());
    }
    sampling::TemperatureReplicaExchange remd(ptrs, temps, 20, 11,
                                              ExecutionConfig{threads, true});
    remd.run(200);
    std::vector<std::vector<Vec3>> out;
    for (auto* sim : ptrs) out.push_back(sim->state().positions);
    return out;
  };

  auto reference = run_remd(1);
  for (size_t threads : {2u, 4u}) {
    auto traj = run_remd(threads);
    ASSERT_EQ(traj.size(), reference.size());
    for (size_t r = 0; r < traj.size(); ++r) {
      expect_bitwise_equal(reference[r], traj[r], threads);
    }
  }
}

}  // namespace
}  // namespace antmd
