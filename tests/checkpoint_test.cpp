// Bit-exact checkpoint/restart tests.
//
// The contract under test (util::Checkpointable): run N steps uninterrupted;
// separately run N/2 steps, save a checkpoint, restore it into a FRESHLY
// constructed object (same constructor arguments) and run the remaining N/2
// steps — every position, velocity, the clock and the fixed-point energies
// must match the uninterrupted run exactly, not approximately.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "ff/forcefield.hpp"
#include "ff/nonbonded_simd.hpp"
#include "io/checkpoint.hpp"
#include "machine/config.hpp"
#include "md/simulation.hpp"
#include "runtime/machine_sim.hpp"
#include "sampling/fep.hpp"
#include "sampling/metadynamics.hpp"
#include "sampling/replica_exchange.hpp"
#include "sampling/tempering.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace antmd {
namespace {

ff::NonbondedModel lj_model(double cutoff = 7.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kNone;
  return m;
}

ff::NonbondedModel water_model(double cutoff = 6.0) {
  ff::NonbondedModel m;
  m.cutoff = cutoff;
  m.electrostatics = ff::Electrostatics::kEwaldReal;
  m.ewald_beta = 0.45;
  return m;
}

md::SimulationConfig langevin_config(double temperature, double dt = 4.0) {
  md::SimulationConfig cfg;
  cfg.dt_fs = dt;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = temperature;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = temperature;
  cfg.thermostat.gamma_per_ps = 5.0;
  return cfg;
}

std::string save(const util::Checkpointable& c) {
  util::BinaryWriter w;
  c.save_checkpoint(w);
  return w.buffer();
}

void restore(util::Checkpointable& c, const std::string& blob) {
  util::BinaryReader r(blob);
  c.restore_checkpoint(r);
}

void expect_state_eq(const State& resumed, const State& reference) {
  EXPECT_EQ(resumed.step, reference.step);
  EXPECT_EQ(resumed.time, reference.time);
  EXPECT_EQ(resumed.box.edges(), reference.box.edges());
  ASSERT_EQ(resumed.positions.size(), reference.positions.size());
  ASSERT_EQ(resumed.velocities.size(), reference.velocities.size());
  for (size_t i = 0; i < reference.positions.size(); ++i) {
    EXPECT_EQ(resumed.positions[i], reference.positions[i]) << "atom " << i;
    EXPECT_EQ(resumed.velocities[i], reference.velocities[i]) << "atom " << i;
  }
}

TEST(CheckpointResume, LjLangevinBitExact) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto model = lj_model();
  auto cfg = langevin_config(120);

  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(40);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(20);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(20);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
  EXPECT_EQ(c.kinetic_energy(), a.kinetic_energy());
}

TEST(CheckpointResume, WaterKspaceCacheNoseHooverBitExact) {
  // kspace_interval = 2 and an odd split point: the reciprocal-space cache
  // in the checkpoint was computed at *older* positions, so this split only
  // reproduces the uninterrupted run if the cache itself is serialized.
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  auto model = water_model(5.0);
  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.kspace_interval = 2;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 250.0;
  cfg.thermostat.kind = md::ThermostatKind::kNoseHoover;
  cfg.thermostat.temperature_k = 300.0;

  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(30);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(15);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(15);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
}

TEST(CheckpointResume, RespaInnerLoopBitExact) {
  auto spec = build_water_box(64, WaterModel::kFlexible3Site);
  ff::NonbondedModel model;
  model.cutoff = 5.0;
  model.electrostatics = ff::Electrostatics::kNone;
  md::SimulationConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.respa_inner = 4;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 150.0;
  cfg.com_removal_interval = 0;
  cfg.thermostat.kind = md::ThermostatKind::kNoseHoover;
  cfg.thermostat.temperature_k = 150.0;

  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(24);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(12);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(12);

  expect_state_eq(c.state(), a.state());
}

TEST(CheckpointResume, MonteCarloBarostatBitExact) {
  // The MC barostat draws from its own RNG and mutates the box; both the
  // RNG position and the accept/attempt counters ride in the checkpoint.
  auto spec = build_lj_fluid(125, 0.030, 23);
  auto model = lj_model();
  auto cfg = langevin_config(130);
  cfg.barostat.kind = md::BarostatKind::kMonteCarlo;
  cfg.barostat.interval = 20;
  cfg.barostat.temperature_k = 130.0;

  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(80);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(40);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(40);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
}

TEST(CheckpointResume, MachineSimulationBitExact) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  auto model = water_model(5.0);
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.kspace_interval = 2;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 250.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 250.0;

  ForceField field_a(spec.topology, model);
  runtime::MachineSimulation a(field_a, machine::anton_with_torus(2, 2, 2),
                               spec.positions, spec.box, cfg);
  a.run(20);

  ForceField field_b(spec.topology, model);
  runtime::MachineSimulation b(field_b, machine::anton_with_torus(2, 2, 2),
                               spec.positions, spec.box, cfg);
  b.run(10);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  runtime::MachineSimulation c(field_c, machine::anton_with_torus(2, 2, 2),
                               spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(10);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
  // The modeled-time accumulators resume too (same additions, same order).
  EXPECT_EQ(c.modeled_time_s(), a.modeled_time_s());
  EXPECT_EQ(c.mean_step_time_s(), a.mean_step_time_s());
}

// Cluster-list state is NOT serialized: restore rebuilds the neighbor list
// (and with it the tiles) deterministically from the restored positions.
// This must still give a bit-exact resume with the cluster kernel selected,
// and the reconstruction itself must be deterministic tile-for-tile.
TEST(CheckpointResume, ClusterKernelResumeBitExact) {
  auto spec = build_ionic_solution(125, 4, 5);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kReactionCutoff;
  auto cfg = langevin_config(160, 2.0);
  cfg.nonbonded_kernel = ff::NonbondedKernel::kCluster;

  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(40);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(20);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(20);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
  EXPECT_EQ(c.kinetic_energy(), a.kinetic_energy());

  // Rebuilding from the same positions reproduces the cluster layout
  // tile-for-tile — the property the no-serialization design relies on.
  ASSERT_TRUE(c.neighbor_list().cluster_mode());
  md::NeighborList x(spec.topology, model.cutoff, cfg.neighbor_skin, true);
  md::NeighborList y(spec.topology, model.cutoff, cfg.neighbor_skin, true);
  x.build(c.state().positions, c.state().box);
  y.build(c.state().positions, c.state().box);
  ASSERT_EQ(x.clusters().atoms, y.clusters().atoms);
  ASSERT_EQ(x.clusters().entries.size(), y.clusters().entries.size());
  for (size_t k = 0; k < x.clusters().entries.size(); ++k) {
    const auto& ex = x.clusters().entries[k];
    const auto& ey = y.clusters().entries[k];
    EXPECT_EQ(ex.ci, ey.ci);
    EXPECT_EQ(ex.cj, ey.cj);
    EXPECT_EQ(ex.mask, ey.mask);
    EXPECT_EQ(ex.shift, ey.shift);
  }
  EXPECT_EQ(x.clusters().real_pairs, y.clusters().real_pairs);
}

// A checkpoint written under one kernel ISA must resume bit-identically
// under another: the SIMD variants are specified bit-identical to scalar,
// and the checkpoint carries no kernel state, so the dispatched ISA is a
// pure speed knob.  This is the software model of swapping the machine's
// pipeline revision mid-run without perturbing a trajectory.
TEST(CheckpointResume, CrossIsaResumeBitExact) {
  const ff::KernelIsa widest = ff::probe_kernel_isa();
  if (widest == ff::KernelIsa::kScalar) {
    GTEST_SKIP() << "no SIMD variant compiled/supported on this host";
  }
  ff::set_kernel_isa(widest);
  if (ff::active_kernel_isa() != widest) {
    GTEST_SKIP() << "ANTMD_FORCE_ISA pins the ISA for this process";
  }

  auto spec = build_ionic_solution(125, 4, 5);
  ff::NonbondedModel model;
  model.cutoff = 6.0;
  model.electrostatics = ff::Electrostatics::kReactionCutoff;
  auto cfg = langevin_config(160, 2.0);
  cfg.nonbonded_kernel = ff::NonbondedKernel::kCluster;

  // Reference: the whole run under the widest SIMD variant.
  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(40);

  // First half under forced scalar, checkpoint...
  ff::set_kernel_isa(ff::KernelIsa::kScalar);
  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(20);
  std::string blob = save(b);

  // ...second half back under the SIMD variant.
  ff::set_kernel_isa(widest);
  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(20);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
  EXPECT_EQ(c.kinetic_energy(), a.kinetic_energy());
}

// The flat-pair kernel stays checkpoint-safe too now that cluster is the
// default: exercise the explicit opt-out through the machine model.
TEST(CheckpointResume, MachinePairKernelResumeBitExact) {
  auto spec = build_water_box(64, WaterModel::kRigid3Site);
  auto model = water_model(5.0);
  runtime::MachineSimConfig cfg;
  cfg.dt_fs = 2.0;
  cfg.neighbor_skin = 1.0;
  cfg.init_temperature_k = 250.0;
  cfg.thermostat.kind = md::ThermostatKind::kLangevin;
  cfg.thermostat.temperature_k = 250.0;
  cfg.nonbonded_kernel = ff::NonbondedKernel::kPair;

  ForceField field_a(spec.topology, model);
  runtime::MachineSimulation a(field_a, machine::anton_with_torus(2, 2, 2),
                               spec.positions, spec.box, cfg);
  a.run(20);

  ForceField field_b(spec.topology, model);
  runtime::MachineSimulation b(field_b, machine::anton_with_torus(2, 2, 2),
                               spec.positions, spec.box, cfg);
  b.run(10);
  std::string blob = save(b);

  ForceField field_c(spec.topology, model);
  runtime::MachineSimulation c(field_c, machine::anton_with_torus(2, 2, 2),
                               spec.positions, spec.box, cfg);
  restore(c, blob);
  c.run(10);

  expect_state_eq(c.state(), a.state());
  EXPECT_EQ(c.potential_energy(), a.potential_energy());
  EXPECT_EQ(c.modeled_time_s(), a.modeled_time_s());
}

TEST(CheckpointResume, V2FileRoundTripAndMissingSection) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto model = lj_model();
  auto cfg = langevin_config(120);

  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(40);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  b.run(20);
  std::string path = "/tmp/antmd_checkpoint_test_v2.ckpt";
  io::save_checkpoint_v2(path, {{"sim", &b}});

  ForceField field_c(spec.topology, model);
  md::Simulation c(field_c, spec.positions, spec.box, cfg);
  io::load_checkpoint_v2(path, {{"sim", &c}});
  c.run(20);
  expect_state_eq(c.state(), a.state());

  // Asking for a section the file does not contain is an IoError, not a
  // silent no-op.
  EXPECT_THROW(io::load_checkpoint_v2(path, {{"tempering", &c}}), IoError);
  std::remove(path.c_str());
}

TEST(CheckpointResume, AtomCountMismatchThrows) {
  auto model = lj_model();
  auto cfg = langevin_config(120);
  auto spec_big = build_lj_fluid(125, 0.021, 3);
  ForceField field_big(spec_big.topology, model);
  md::Simulation big(field_big, spec_big.positions, spec_big.box, cfg);
  big.run(5);
  std::string blob = save(big);

  auto spec_small = build_lj_fluid(216, 0.021, 3);
  ForceField field_small(spec_small.topology, model);
  md::Simulation small(field_small, spec_small.positions, spec_small.box,
                       cfg);
  EXPECT_THROW(restore(small, blob), IoError);
}

TEST(CheckpointResume, TruncatedPayloadThrows) {
  auto spec = build_lj_fluid(125, 0.021, 3);
  auto model = lj_model();
  auto cfg = langevin_config(120);
  ForceField field_a(spec.topology, model);
  md::Simulation a(field_a, spec.positions, spec.box, cfg);
  a.run(5);
  std::string blob = save(a);

  ForceField field_b(spec.topology, model);
  md::Simulation b(field_b, spec.positions, spec.box, cfg);
  EXPECT_THROW(restore(b, blob.substr(0, blob.size() / 2)), IoError);
}

TEST(CheckpointResume, SimulatedTemperingBitExact) {
  auto spec = build_lj_fluid(125, 0.021, 5);
  auto model = lj_model();
  auto cfg = langevin_config(120);
  sampling::TemperingConfig tc;
  tc.ladder = {120, 130, 141};
  tc.attempt_interval = 20;

  ForceField field_a(spec.topology, model);
  md::Simulation sim_a(field_a, spec.positions, spec.box, cfg);
  sampling::SimulatedTempering st_a(sim_a, tc);
  st_a.run(400);

  ForceField field_b(spec.topology, model);
  md::Simulation sim_b(field_b, spec.positions, spec.box, cfg);
  sampling::SimulatedTempering st_b(sim_b, tc);
  st_b.run(200);
  std::string sim_blob = save(sim_b);
  std::string st_blob = save(st_b);

  ForceField field_c(spec.topology, model);
  md::Simulation sim_c(field_c, spec.positions, spec.box, cfg);
  sampling::SimulatedTempering st_c(sim_c, tc);
  restore(sim_c, sim_blob);
  restore(st_c, st_blob);
  st_c.run(200);

  expect_state_eq(sim_c.state(), sim_a.state());
  EXPECT_EQ(st_c.attempts(), st_a.attempts());
  EXPECT_EQ(st_c.accepts(), st_a.accepts());
  EXPECT_EQ(st_c.occupancy(), st_a.occupancy());
  EXPECT_EQ(st_c.current_temperature(), st_a.current_temperature());
  EXPECT_EQ(sim_c.thermostat().temperature_k(), st_c.current_temperature());
}

TEST(CheckpointResume, MetadynamicsBitExact) {
  auto spec = build_dimer_in_solvent(64, 5.0, 13);
  auto model = lj_model(6.0);
  auto cfg = langevin_config(120);
  sampling::MetadynamicsConfig mc;
  mc.initial_height = 0.4;
  mc.sigma = 0.3;
  mc.bias_factor = 6.0;
  mc.deposit_interval = 20;
  mc.cv_min = 2.0;
  mc.cv_max = 9.0;

  ForceField field_a(spec.topology, model);
  md::Simulation sim_a(field_a, spec.positions, spec.box, cfg);
  sampling::Metadynamics meta_a(sim_a, spec.tagged[0], spec.tagged[1], mc);
  meta_a.run(400);

  ForceField field_b(spec.topology, model);
  md::Simulation sim_b(field_b, spec.positions, spec.box, cfg);
  sampling::Metadynamics meta_b(sim_b, spec.tagged[0], spec.tagged[1], mc);
  meta_b.run(200);
  std::string sim_blob = save(sim_b);
  std::string meta_blob = save(meta_b);

  ForceField field_c(spec.topology, model);
  md::Simulation sim_c(field_c, spec.positions, spec.box, cfg);
  sampling::Metadynamics meta_c(sim_c, spec.tagged[0], spec.tagged[1], mc);
  // Hills first: the simulation restore recomputes forces through the live
  // bias closure, which must already see the restored hill list.
  restore(meta_c, meta_blob);
  restore(sim_c, sim_blob);
  meta_c.run(200);

  expect_state_eq(sim_c.state(), sim_a.state());
  EXPECT_EQ(meta_c.hill_count(), meta_a.hill_count());
  EXPECT_EQ(meta_c.bias(5.0), meta_a.bias(5.0));
}

TEST(CheckpointResume, ReplicaExchangeBitExact) {
  auto spec = build_lj_fluid(125, 0.021, 7);
  auto model = lj_model();
  std::vector<double> temps = {120, 130, 141};

  auto make_ladder = [&](std::vector<std::unique_ptr<ForceField>>& fields,
                         std::vector<std::unique_ptr<md::Simulation>>& sims,
                         std::vector<md::Simulation*>& ptrs) {
    for (double t : temps) {
      fields.push_back(std::make_unique<ForceField>(spec.topology, model));
      sims.push_back(std::make_unique<md::Simulation>(
          *fields.back(), spec.positions, spec.box, langevin_config(t)));
      ptrs.push_back(sims.back().get());
    }
  };

  std::vector<std::unique_ptr<ForceField>> fields_a;
  std::vector<std::unique_ptr<md::Simulation>> sims_a;
  std::vector<md::Simulation*> ptrs_a;
  make_ladder(fields_a, sims_a, ptrs_a);
  sampling::TemperatureReplicaExchange remd_a(ptrs_a, temps, 20);
  remd_a.run(200);

  std::vector<std::unique_ptr<ForceField>> fields_b;
  std::vector<std::unique_ptr<md::Simulation>> sims_b;
  std::vector<md::Simulation*> ptrs_b;
  make_ladder(fields_b, sims_b, ptrs_b);
  sampling::TemperatureReplicaExchange remd_b(ptrs_b, temps, 20);
  remd_b.run(100);
  std::vector<std::string> replica_blobs;
  for (auto& s : sims_b) replica_blobs.push_back(save(*s));
  std::string remd_blob = save(remd_b);

  std::vector<std::unique_ptr<ForceField>> fields_c;
  std::vector<std::unique_ptr<md::Simulation>> sims_c;
  std::vector<md::Simulation*> ptrs_c;
  make_ladder(fields_c, sims_c, ptrs_c);
  sampling::TemperatureReplicaExchange remd_c(ptrs_c, temps, 20);
  for (size_t i = 0; i < sims_c.size(); ++i) {
    restore(*sims_c[i], replica_blobs[i]);
  }
  restore(remd_c, remd_blob);
  remd_c.run(100);

  for (size_t i = 0; i < sims_c.size(); ++i) {
    expect_state_eq(sims_c[i]->state(), sims_a[i]->state());
  }
  EXPECT_EQ(remd_c.stats().attempts, remd_a.stats().attempts);
  EXPECT_EQ(remd_c.stats().accepts, remd_a.stats().accepts);
  EXPECT_EQ(remd_c.slot_to_replica(), remd_a.slot_to_replica());
}

TEST(CheckpointResume, FepWindowLadderResumes) {
  auto spec = build_dimer_in_solvent(64, 4.0, 21);
  auto model = lj_model(6.0);
  sampling::FepConfig fc;
  fc.lambdas = {1.0, 0.6, 0.3, 0.0};
  fc.equil_steps = 50;
  fc.prod_steps = 150;
  fc.sample_interval = 5;
  fc.md = langevin_config(120);

  sampling::FepDecoupling fep_a(spec, 0, model, fc);
  EXPECT_EQ(fep_a.run_windows(4), 4u);
  auto result_a = fep_a.finalize();

  sampling::FepDecoupling fep_b(spec, 0, model, fc);
  EXPECT_EQ(fep_b.run_windows(2), 2u);
  std::string blob = save(fep_b);

  sampling::FepDecoupling fep_c(spec, 0, model, fc);
  restore(fep_c, blob);
  EXPECT_EQ(fep_c.windows_done(), 2u);
  EXPECT_EQ(fep_c.run_windows(10), 2u);  // only two windows remain
  auto result_c = fep_c.finalize();

  ASSERT_EQ(result_c.windows.size(), result_a.windows.size());
  for (size_t w = 0; w < result_a.windows.size(); ++w) {
    EXPECT_EQ(result_c.windows[w].lambda, result_a.windows[w].lambda);
    EXPECT_EQ(result_c.windows[w].du_to_next, result_a.windows[w].du_to_next);
    EXPECT_EQ(result_c.windows[w].du_to_prev, result_a.windows[w].du_to_prev);
  }
  EXPECT_EQ(result_c.delta_f_bar, result_a.delta_f_bar);
  EXPECT_EQ(result_c.delta_f_zwanzig, result_a.delta_f_zwanzig);
}

TEST(ConfigValidation, RejectsOutOfRangeFields) {
  md::SimulationConfig cfg;
  EXPECT_NO_THROW(cfg.validate());

  cfg = {};
  cfg.dt_fs = 0.0;
  EXPECT_THROW(cfg.validate(), ConfigError);

  cfg = {};
  cfg.respa_inner = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);

  cfg = {};
  cfg.kspace_interval = 0;
  EXPECT_THROW(cfg.validate(), ConfigError);

  cfg = {};
  cfg.neighbor_skin = -0.5;
  EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(ConfigValidation, SimulationConstructorValidates) {
  auto spec = build_lj_fluid(125, 0.021, 1);
  ForceField field(spec.topology, lj_model());
  auto cfg = langevin_config(120);
  cfg.dt_fs = -1.0;
  EXPECT_THROW(md::Simulation(field, spec.positions, spec.box, cfg),
               ConfigError);
}

TEST(ConfigValidation, SetTimestepRejectsNonPositive) {
  auto spec = build_lj_fluid(125, 0.021, 1);
  ForceField field(spec.topology, lj_model());
  md::Simulation sim(field, spec.positions, spec.box, langevin_config(120));
  EXPECT_THROW(sim.set_timestep_fs(0.0), ConfigError);
  EXPECT_THROW(sim.set_timestep_fs(-2.0), ConfigError);
  sim.set_timestep_fs(1.0);
  EXPECT_EQ(sim.timestep_fs(), 1.0);
}

}  // namespace
}  // namespace antmd
