// One tenant of the fleet scheduler: its spec, lifecycle phase, public
// status record, and the type-erased engine driver the scheduler advances.
//
// A RunSpec is a complete, self-contained recipe — synthetic system, engine
// choice (host md::Simulation or modeled runtime::MachineSimulation),
// integration parameters, supervision limits and an optional per-run fault
// schedule.  Because every builder is deterministic given the seed, a spec
// can be re-materialized at any time: that is what makes checkpoint-backed
// eviction cheap (drop the engine, keep the spec + a v2 checkpoint) and
// what makes rehydration bit-identical (rebuild from the spec, then restore
// the checkpoint, exactly like a supervisor restart).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "md/state.hpp"
#include "obs/profile.hpp"
#include "resilience/supervisor.hpp"
#include "util/serialize.hpp"
#include "util/task_graph.hpp"

namespace antmd::fleet {

/// Lifecycle of one run inside the scheduler.
///
///   kQueued ----> kRunning ----> kCompleted
///      ^             |    \----> kQuarantined   (recovery exhausted)
///      |             v
///      +--------- kEvicted                      (checkpointed to disk)
///
///   kRejected is terminal at admission time (backpressure / budget).
enum class RunPhase {
  kQueued,       ///< admitted, waiting for an active slot
  kRunning,      ///< engine materialized, receiving time slices
  kEvicted,      ///< engine freed, state parked in a v2 checkpoint
  kQuarantined,  ///< supervisor escalated; siblings unaffected
  kCompleted,    ///< delivered every requested step
  kRejected,     ///< admission control refused it
};

[[nodiscard]] const char* run_phase_name(RunPhase phase);
/// True for phases the scheduler will never advance again.
[[nodiscard]] bool run_phase_terminal(RunPhase phase);

/// Complete recipe for one fleet tenant.  Field defaults are a small,
/// fast LJ run so manifests only state what differs.
struct RunSpec {
  std::string name;
  /// Synthetic system: ljfluid | water | polymer | dimer | bilayer.
  std::string system = "ljfluid";
  /// Builder size argument (atoms, molecules, lipids — builder-specific).
  size_t size = 125;
  uint64_t seed = 1;
  double density = 0.021;        ///< ljfluid only
  std::string water_model = "rigid3";  ///< water only
  size_t chain_length = 20;      ///< polymer only
  double separation = 5.0;       ///< dimer only

  /// Engine: "host" (md::Simulation) or "machine"
  /// (runtime::MachineSimulation on an N×N×N modeled torus).
  std::string engine = "host";
  int nodes = 2;  ///< machine engine: torus edge length

  uint64_t steps = 100;  ///< total steps the fleet owes this run
  double dt_fs = 1.0;
  double temperature_k = 300.0;
  /// none | berendsen | langevin | nosehoover
  std::string thermostat = "langevin";
  double gamma_per_ps = 5.0;
  double cutoff = 6.0;
  /// none | cutoff | gse
  std::string electrostatics = "none";

  /// Fair-share weight (>= 1): a priority-2 run receives twice the slices
  /// of a priority-1 sibling under contention.
  int priority = 1;

  /// Optional fault schedule, fault::parse_fault_plan syntax
  /// ("kind[:fire_after[:count[:payload]]]").  Armed in this run's private
  /// scope: siblings never observe it.
  std::string fault;

  // Supervision (resilience::SupervisorConfig subset).
  int max_retries = 3;
  int snapshot_interval = 64;
  size_t snapshot_ring_bytes = 0;
  double watchdog_ms = 0.0;  ///< machine engine only; 0 disables

  // SDC auditing (resilience::AuditConfig subset).  audit_interval = 0
  // leaves auditing off; > 0 audits every N steps and attaches a static-
  // data scrubber covering the run's spline tables, topology arrays and
  // exclusion list.  audit_max_recoveries is the per-run corruption
  // budget: a run that keeps flipping bits is quarantined (escalation),
  // not retried forever — repeat corruption points at failing hardware.
  int audit_interval = 0;
  int audit_shadow_window = 2;   ///< 0 = replay the full audit interval
  int scrub_interval = 0;        ///< 0 = scrub at every audit
  int audit_max_recoveries = 3;  ///< corruption episodes before quarantine

  /// Throws ConfigError on an unbuildable spec (admission-time check).
  void validate() const;
};

/// Order-independent digest of the full dynamic state (positions,
/// velocities, box, time, step), for bit-identity assertions after a run's
/// engine is gone.  FNV-1a over the exact bytes: two states digest equal
/// iff the trajectories are bit-identical.
[[nodiscard]] uint64_t state_digest(const State& state);

/// Public, copyable status record for one run (also what the status file
/// serializes).  Counters aggregate over the run's whole life, including
/// across evictions.
struct RunStatus {
  uint64_t id = 0;
  std::string name;
  RunPhase phase = RunPhase::kQueued;
  std::string engine;
  int priority = 1;
  uint64_t steps_done = 0;
  uint64_t steps_target = 0;
  uint64_t slices = 0;
  uint64_t faults = 0;
  uint64_t retries = 0;
  uint64_t rollbacks = 0;
  uint64_t restarts = 0;
  uint64_t node_remaps = 0;
  uint64_t watchdog_trips = 0;
  uint64_t corruptions = 0;  ///< silent-corruption episodes detected
  uint64_t evictions = 0;
  double recovery_modeled_s = 0.0;
  /// Modeled resident footprint while running (0 once the engine is gone).
  size_t resident_bytes = 0;
  /// Why the run was quarantined / rejected; empty otherwise.
  std::string detail;
  /// Digest + observables of the terminal state (completed runs only).
  uint64_t final_digest = 0;
  double final_potential_energy = 0.0;
  double final_temperature = 0.0;
  /// Attribution-profiler rollup (machine engine under
  /// obs::profiling_enabled only).  Modeled network seconds per message
  /// class, whole-life like the counters above: survives eviction because
  /// each activation's per-run collector is folded onto counters_base.
  bool has_profile = false;
  std::array<double, obs::kMessageClassCount> profile_net_s{};
  double profile_net_total_s = 0.0;
};

/// Type-erased engine under supervision.  One Driver owns the whole
/// materialized stack for a run — SystemSpec, ForceField, engine,
/// Supervisor — so destroying it releases every byte the run held.
class Driver {
 public:
  virtual ~Driver() = default;

  /// Advances up to `steps` under supervision; the report says what
  /// actually happened (report.completed == false means escalation).
  virtual resilience::RecoveryReport advance(size_t steps) = 0;

  [[nodiscard]] virtual const State& state() const = 0;
  [[nodiscard]] virtual size_t atom_count() const = 0;
  [[nodiscard]] virtual double potential_energy() const = 0;
  [[nodiscard]] virtual double temperature() const = 0;
  /// Bytes resident in the supervisor's snapshot ring right now.
  [[nodiscard]] virtual size_t snapshot_bytes() const = 0;
  /// The engine as a checkpoint section source/sink (eviction/rehydration).
  [[nodiscard]] virtual util::Checkpointable& checkpointable() = 0;
  /// This run's private attribution collector, or nullptr when the engine
  /// has none (host engine, or profiling disabled at materialization).
  /// The scheduler folds it into obs::Profile::global() before the driver
  /// is destroyed, so fleet-wide attribution survives eviction.
  [[nodiscard]] virtual const obs::Profile* profile() const {
    return nullptr;
  }
};

/// Builds the full engine stack for a spec.  `shared_runtime` (may be
/// null) and `threads` feed the engine's ExecutionConfig so every fleet
/// engine multiplexes over one worker pool instead of spawning its own.
/// `checkpoint_path` ("" = none) becomes the supervisor's on-disk mirror.
/// Throws ConfigError on a bad spec.
[[nodiscard]] std::unique_ptr<Driver> materialize(
    const RunSpec& spec, std::shared_ptr<util::TaskRuntime> shared_runtime,
    size_t threads, const std::string& checkpoint_path);

/// Modeled resident footprint of a spec once materialized: state + force
/// field working set, linear in atoms, plus the snapshot ring it may grow.
/// Used by admission control before the engine exists.
[[nodiscard]] size_t estimate_resident_bytes(const RunSpec& spec);

/// Atom count the spec's builder would produce (admission-time estimate;
/// exact, because builders are deterministic).
[[nodiscard]] size_t estimate_atom_count(const RunSpec& spec);

}  // namespace antmd::fleet
