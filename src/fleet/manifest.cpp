#include "fleet/manifest.hpp"

#include <cstdlib>
#include <sstream>

#include "io/checkpoint.hpp"
#include "util/error.hpp"

namespace antmd::fleet {

namespace {

std::string trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

uint64_t parse_u64(const std::string& key, const std::string& value) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("manifest key '" + key + "': expected an integer, got '" +
                      value + "'");
  }
  return static_cast<uint64_t>(v);
}

int parse_int(const std::string& key, const std::string& value) {
  char* end = nullptr;
  long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("manifest key '" + key + "': expected an integer, got '" +
                      value + "'");
  }
  return static_cast<int>(v);
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw ConfigError("manifest key '" + key + "': expected a number, got '" +
                      value + "'");
  }
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw ConfigError("manifest key '" + key + "': expected a boolean, got '" +
                    value + "'");
}

void apply_fleet_key(SchedulerConfig& cfg, const std::string& key,
                     const std::string& value) {
  if (key == "max_active") {
    cfg.max_active_runs = parse_u64(key, value);
  } else if (key == "max_queued") {
    cfg.max_queued_runs = parse_u64(key, value);
  } else if (key == "memory_budget_mb") {
    cfg.memory_budget_bytes = parse_u64(key, value) * 1024 * 1024;
  } else if (key == "memory_budget_bytes") {
    cfg.memory_budget_bytes = parse_u64(key, value);
  } else if (key == "slice_steps") {
    cfg.slice_steps = parse_u64(key, value);
  } else if (key == "threads") {
    cfg.threads = parse_u64(key, value);
  } else if (key == "checkpoint_dir") {
    cfg.checkpoint_dir = value;
  } else if (key == "status_path") {
    cfg.status_path = value;
  } else if (key == "status_interval") {
    cfg.status_interval_slices = parse_int(key, value);
  } else if (key == "retain_final_state") {
    cfg.retain_final_state = parse_bool(key, value);
  } else if (key == "nonbonded_simd") {
    cfg.nonbonded_simd = value;
  } else {
    throw ConfigError("unknown [fleet] key: " + key);
  }
}

void apply_run_key(RunSpec& spec, const std::string& key,
                   const std::string& value) {
  if (key == "system") spec.system = value;
  else if (key == "size") spec.size = parse_u64(key, value);
  else if (key == "seed") spec.seed = parse_u64(key, value);
  else if (key == "density") spec.density = parse_double(key, value);
  else if (key == "water_model") spec.water_model = value;
  else if (key == "chain_length") spec.chain_length = parse_u64(key, value);
  else if (key == "separation") spec.separation = parse_double(key, value);
  else if (key == "engine") spec.engine = value;
  else if (key == "nodes") spec.nodes = parse_int(key, value);
  else if (key == "steps") spec.steps = parse_u64(key, value);
  else if (key == "dt_fs") spec.dt_fs = parse_double(key, value);
  else if (key == "temperature") spec.temperature_k = parse_double(key, value);
  else if (key == "thermostat") spec.thermostat = value;
  else if (key == "gamma") spec.gamma_per_ps = parse_double(key, value);
  else if (key == "cutoff") spec.cutoff = parse_double(key, value);
  else if (key == "electrostatics") spec.electrostatics = value;
  else if (key == "priority") spec.priority = parse_int(key, value);
  else if (key == "fault") spec.fault = value;
  else if (key == "max_retries") spec.max_retries = parse_int(key, value);
  else if (key == "snapshot_interval") {
    spec.snapshot_interval = parse_int(key, value);
  } else if (key == "snapshot_ring_bytes") {
    spec.snapshot_ring_bytes = parse_u64(key, value);
  } else if (key == "watchdog_ms") {
    spec.watchdog_ms = parse_double(key, value);
  } else if (key == "audit_interval") {
    spec.audit_interval = parse_int(key, value);
  } else if (key == "audit_shadow_window") {
    spec.audit_shadow_window = parse_int(key, value);
  } else if (key == "scrub_interval") {
    spec.scrub_interval = parse_int(key, value);
  } else if (key == "audit_max_recoveries") {
    spec.audit_max_recoveries = parse_int(key, value);
  } else {
    throw ConfigError("unknown run key: " + key);
  }
}

}  // namespace

Manifest parse_manifest(const std::string& text) {
  Manifest manifest;
  RunSpec defaults;
  enum class Section { kNone, kFleet, kDefaults, kRun };
  Section section = Section::kNone;
  RunSpec* current_run = nullptr;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = raw;
    if (auto hash = line.find_first_of("#;"); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    try {
      if (line.front() == '[') {
        if (line.back() != ']') throw ConfigError("unterminated section");
        std::string header = trim(line.substr(1, line.size() - 2));
        if (header == "fleet") {
          section = Section::kFleet;
        } else if (header == "defaults") {
          if (!manifest.runs.empty()) {
            throw ConfigError("[defaults] must precede every [run] section");
          }
          section = Section::kDefaults;
        } else if (header.rfind("run ", 0) == 0) {
          std::string name = trim(header.substr(4));
          if (name.empty()) throw ConfigError("run section needs a name");
          manifest.runs.push_back(defaults);
          manifest.runs.back().name = name;
          current_run = &manifest.runs.back();
          section = Section::kRun;
        } else {
          throw ConfigError("unknown section [" + header + "]");
        }
        continue;
      }

      auto eq = line.find('=');
      if (eq == std::string::npos) {
        throw ConfigError("expected 'key = value'");
      }
      std::string key = trim(line.substr(0, eq));
      std::string value = trim(line.substr(eq + 1));
      if (key.empty()) throw ConfigError("empty key");
      switch (section) {
        case Section::kNone:
          throw ConfigError("key before any section header");
        case Section::kFleet:
          apply_fleet_key(manifest.scheduler, key, value);
          break;
        case Section::kDefaults:
          if (key == "name") {
            throw ConfigError("'name' is not a [defaults] key");
          }
          apply_run_key(defaults, key, value);
          break;
        case Section::kRun:
          if (key == "name") {
            throw ConfigError("run names come from the section header");
          }
          apply_run_key(*current_run, key, value);
          break;
      }
    } catch (const ConfigError& e) {
      throw ConfigError("manifest line " + std::to_string(line_no) + " ('" +
                        trim(raw) + "'): " + e.what());
    }
  }
  if (manifest.runs.empty()) {
    throw ConfigError("manifest defines no [run NAME] sections");
  }
  return manifest;
}

Manifest load_manifest(const std::string& path) {
  return parse_manifest(io::read_file(path));
}

}  // namespace antmd::fleet
