// Fleet manifest: one file describing a whole fleet.
//
// INI-style sections:
//
//   [fleet]              scheduler settings (SchedulerConfig)
//   [defaults]           RunSpec keys applied to every run first
//   [run NAME]           one run; keys override the defaults
//
// Example:
//
//   [fleet]
//   max_active = 8
//   memory_budget_mb = 64
//   slice_steps = 32
//   threads = 2
//   checkpoint_dir = /tmp/fleet-ckpt
//   status_path = fleet-status.json
//
//   [defaults]
//   system = ljfluid
//   size = 125
//   steps = 200
//
//   [run alpha]
//   size = 343
//   priority = 2
//
//   [run chaos]
//   fault = nan_force:50
//
// `#` and `;` start comments; keys are `key = value`.  Unknown keys and
// malformed lines are ConfigErrors — a fleet manifest is an operator
// contract, so typos fail loudly instead of silently running defaults.
#pragma once

#include <string>
#include <vector>

#include "fleet/run.hpp"
#include "fleet/scheduler.hpp"

namespace antmd::fleet {

struct Manifest {
  SchedulerConfig scheduler;
  std::vector<RunSpec> runs;
};

/// Parses manifest text; throws ConfigError with the offending line.
[[nodiscard]] Manifest parse_manifest(const std::string& text);

/// Reads and parses a manifest file; throws ConfigError / IoError.
[[nodiscard]] Manifest load_manifest(const std::string& path);

}  // namespace antmd::fleet
