#include "fleet/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ff/nonbonded_simd.hpp"
#include "io/checkpoint.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd::fleet {

namespace {

/// Per-run fault scope: scope 0 is global, so tenant ids start at 1.
fault::ScopeId run_scope(uint64_t id) { return id + 1; }

struct FleetMetrics {
  obs::Counter& submits;
  obs::Counter& rejects;
  obs::Counter& completes;
  obs::Counter& quarantines;
  obs::Counter& evictions;
  obs::Counter& rehydrations;
  obs::Counter& slices;
  obs::Gauge& active_runs;
  obs::Gauge& queued_runs;
  obs::Gauge& resident_bytes;
};

FleetMetrics& fleet_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static FleetMetrics m{reg.counter("fleet.submit.count"),
                        reg.counter("fleet.reject.count"),
                        reg.counter("fleet.complete.count"),
                        reg.counter("fleet.quarantine.count"),
                        reg.counter("fleet.evict.count"),
                        reg.counter("fleet.rehydrate.count"),
                        reg.counter("fleet.slice.count"),
                        reg.gauge("fleet.active_runs"),
                        reg.gauge("fleet.queued_runs"),
                        reg.gauge("fleet.resident_bytes")};
  return m;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string FleetSummary::render() const {
  std::ostringstream os;
  os << "fleet summary: " << submitted << " submitted, " << completed
     << " completed, " << quarantined << " quarantined, " << rejected
     << " rejected; " << slices << " slices, " << evictions << " evictions, "
     << steps_delivered << " steps delivered\n";
  return std::move(os).str();
}

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config)) {
  if (config_.max_active_runs < 1) {
    throw ConfigError("fleet max_active_runs must be >= 1");
  }
  if (config_.slice_steps < 1) {
    throw ConfigError("fleet slice_steps must be >= 1");
  }
  if (config_.status_interval_slices < 1) {
    throw ConfigError("fleet status_interval_slices must be >= 1");
  }
  if (!config_.checkpoint_dir.empty()) {
    // A missing directory would otherwise fail every supervisor mirror
    // write (silent per-run degrade) and turn every eviction into a
    // quarantine.
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    if (ec) {
      throw IoError("fleet checkpoint_dir '" + config_.checkpoint_dir +
                    "': " + ec.message());
    }
  }
  if (config_.nonbonded_simd != "auto") {
    ff::set_kernel_isa(ff::parse_kernel_isa(config_.nonbonded_simd));
  }
  if (config_.threads > 1) {
    runtime_ = util::TaskRuntime::create(config_.threads);
  }
}

Scheduler::~Scheduler() {
  // A scheduler torn down mid-fleet must not leak tenant fault plans into
  // whatever the process does next.
  for (Record& r : runs_) {
    if (r.fault_armed) fault::disarm_scope(run_scope(r.status.id));
  }
}

uint64_t Scheduler::submit(RunSpec spec) {
  if (spec.name.empty()) throw ConfigError("run spec needs a name");
  for (const Record& r : runs_) {
    if (r.spec.name == spec.name) {
      throw ConfigError("duplicate run name: " + spec.name);
    }
  }
  const uint64_t id = runs_.size();
  runs_.emplace_back();
  Record& r = runs_.back();
  r.spec = std::move(spec);
  r.status.id = id;
  r.status.name = r.spec.name;
  r.status.engine = r.spec.engine;
  r.status.priority = r.spec.priority;
  r.status.steps_target = r.spec.steps;
  fleet_metrics().submits.add();

  auto reject = [&](std::string why) {
    r.status.phase = RunPhase::kRejected;
    r.status.detail = std::move(why);
    fleet_metrics().rejects.add();
    refresh_gauges();
    return id;
  };

  try {
    r.spec.validate();
    if (queue_.size() >= config_.max_queued_runs) {
      return reject("queue full (backpressure: max_queued_runs=" +
                    std::to_string(config_.max_queued_runs) + ")");
    }
    if (config_.memory_budget_bytes) {
      const size_t estimate = estimate_resident_bytes(r.spec);
      if (estimate > config_.memory_budget_bytes) {
        return reject("modeled footprint " + std::to_string(estimate) +
                      " B exceeds fleet memory budget " +
                      std::to_string(config_.memory_budget_bytes) + " B");
      }
    }
    if (!r.spec.fault.empty()) {
      fault::arm_scoped(run_scope(id), fault::parse_fault_plan(r.spec.fault));
      r.fault_armed = true;
    }
  } catch (const ConfigError& e) {
    return reject(e.what());
  }

  r.status.phase = RunPhase::kQueued;
  queue_.push_back(id);
  refresh_gauges();
  return id;
}

std::string Scheduler::checkpoint_path(const Record& r) const {
  if (config_.checkpoint_dir.empty()) return {};
  return config_.checkpoint_dir + "/" + r.spec.name + ".ckpt";
}

bool Scheduler::activate(Record& r) {
  const bool rehydrating = r.has_checkpoint;
  try {
    r.driver = materialize(r.spec, runtime_, config_.threads,
                           checkpoint_path(r));
    if (r.has_checkpoint) {
      io::load_checkpoint_v2_or_backup(checkpoint_path(r),
                                       {{"sim", &r.driver->checkpointable()}});
    }
  } catch (const Error& e) {
    finish(r, RunPhase::kQuarantined,
           std::string(rehydrating ? "rehydration failed: "
                                   : "materialization failed: ") +
               e.what());
    return false;
  }
  r.status.phase = RunPhase::kRunning;
  r.status.steps_done = r.driver->state().step;
  r.steps_at_activation = r.status.steps_done;
  r.credit = 0;
  // Counter baseline: each activation gets a fresh Supervisor whose report
  // starts at zero, so slice accounting adds report values onto this copy.
  r.counters_base = r.status;
  r.status.resident_bytes =
      r.driver->atom_count() * 768 + r.driver->snapshot_bytes();
  active_.push_back(r.status.id);
  if (rehydrating) fleet_metrics().rehydrations.add();
  return true;
}

void Scheduler::activate_from_queue() {
  while (!queue_.empty() && active_.size() < config_.max_active_runs) {
    Record& r = runs_[queue_.front()];
    if (config_.memory_budget_bytes) {
      const size_t estimate = estimate_resident_bytes(r.spec);
      while (resident_bytes() + estimate > config_.memory_budget_bytes &&
             !active_.empty()) {
        Record* victim = pick_victim();
        if (!victim || !evict(*victim)) break;
      }
      // Progress guarantee: with nothing active, the front run is admitted
      // even over budget — its estimate passed admission alone, and an
      // empty fleet that refuses to start anything would be a livelock.
      if (resident_bytes() + estimate > config_.memory_budget_bytes &&
          !active_.empty()) {
        break;  // wait for active runs to finish or become evictable
      }
    }
    queue_.pop_front();
    activate(r);  // on failure the run is quarantined; keep draining
  }
}

void Scheduler::run_slice(Record& r) {
  const uint64_t target = r.spec.steps;
  const uint64_t remaining = target - r.status.steps_done;
  const size_t slice =
      std::min<uint64_t>(config_.slice_steps, remaining);

  resilience::RecoveryReport report;
  {
    // Everything this run executes — its step graph on the worker lanes,
    // its supervisor's checkpoint mirror — runs under its private fault
    // scope, so an armed chaos schedule hits this tenant alone.  The trace
    // scope mirrors it (same id convention): any spans the slice emits land
    // under this run's process with namespaced synthetic tracks.
    fault::CurrentScope scope(run_scope(r.status.id));
    obs::TraceRunScope trace_scope(
        static_cast<uint32_t>(run_scope(r.status.id)), r.spec.name);
    report = r.driver->advance(slice);
  }

  r.status.steps_done = r.driver->state().step;
  ++r.status.slices;
  fleet_metrics().slices.add();
  r.status.faults = r.counters_base.faults + report.faults_detected;
  r.status.retries = r.counters_base.retries + report.retries;
  r.status.rollbacks = r.counters_base.rollbacks + report.rollbacks;
  r.status.restarts = r.counters_base.restarts + report.restarts;
  r.status.node_remaps = r.counters_base.node_remaps + report.node_remaps;
  r.status.watchdog_trips =
      r.counters_base.watchdog_trips + report.watchdog_trips;
  r.status.corruptions = r.counters_base.corruptions + report.corruptions;
  r.status.recovery_modeled_s =
      r.counters_base.recovery_modeled_s + report.recovery_modeled_s;
  r.status.resident_bytes =
      r.driver->atom_count() * 768 + r.driver->snapshot_bytes();
  // Like the counters above: the per-run collector starts at zero each
  // activation, so its totals sit on top of the baseline captured then.
  if (const obs::Profile* p = r.driver->profile()) {
    r.status.has_profile = true;
    for (size_t c = 0; c < obs::kMessageClassCount; ++c) {
      r.status.profile_net_s[c] =
          r.counters_base.profile_net_s[c] +
          p->net(static_cast<obs::MessageClass>(c)).total_s;
    }
    r.status.profile_net_total_s =
        r.counters_base.profile_net_total_s + p->network_total_s();
  }

  if (!report.completed) {
    finish(r, RunPhase::kQuarantined,
           report.final_error.empty() ? "supervisor escalated"
                                      : report.final_error);
    return;
  }
  if (r.status.steps_done >= target) {
    r.status.final_digest = state_digest(r.driver->state());
    r.status.final_potential_energy = r.driver->potential_energy();
    r.status.final_temperature = r.driver->temperature();
    if (config_.retain_final_state && !config_.checkpoint_dir.empty()) {
      try {
        io::save_checkpoint_v2(config_.checkpoint_dir + "/" + r.spec.name +
                                   ".final",
                               {{"sim", &r.driver->checkpointable()}});
      } catch (const IoError&) {
        // Final-state retention is advisory; the run still completed.
      }
    }
    finish(r, RunPhase::kCompleted, {});
  }
}

void Scheduler::finish(Record& r, RunPhase phase, std::string detail) {
  r.status.phase = phase;
  r.status.detail = std::move(detail);
  r.status.resident_bytes = 0;
  // Fold the run's attribution into the fleet-wide profile before its
  // collector dies with the driver.
  if (r.driver) {
    if (const obs::Profile* p = r.driver->profile()) {
      obs::Profile::global().merge_network(*p);
    }
  }
  r.driver.reset();
  remove_active(r.status.id);
  if (r.fault_armed) {
    fault::disarm_scope(run_scope(r.status.id));
    r.fault_armed = false;
  }
  if (phase == RunPhase::kCompleted) fleet_metrics().completes.add();
  if (phase == RunPhase::kQuarantined) fleet_metrics().quarantines.add();
}

bool Scheduler::evict(Record& r) {
  if (!r.driver) return false;
  const std::string path = checkpoint_path(r);
  if (path.empty()) return false;  // nowhere to park
  try {
    io::rotate_backup(path);
    io::save_checkpoint_v2(path, {{"sim", &r.driver->checkpointable()}});
  } catch (const IoError& e) {
    // A run that can neither stay resident nor be parked is quarantined
    // with the reason; its siblings keep their budget headroom.
    finish(r, RunPhase::kQuarantined,
           std::string("eviction checkpoint failed: ") + e.what());
    return true;  // the budget pressure is relieved either way
  }
  r.has_checkpoint = true;
  r.status.phase = RunPhase::kEvicted;
  r.status.resident_bytes = 0;
  ++r.status.evictions;
  ++evictions_;
  if (const obs::Profile* p = r.driver->profile()) {
    obs::Profile::global().merge_network(*p);
  }
  r.driver.reset();
  remove_active(r.status.id);
  queue_.push_back(r.status.id);
  fleet_metrics().evictions.add();
  return true;
}

void Scheduler::enforce_memory_budget() {
  if (!config_.memory_budget_bytes) return;
  while (resident_bytes() > config_.memory_budget_bytes &&
         active_.size() > 1) {
    Record* victim = pick_victim();
    if (!victim || !evict(*victim)) return;
  }
}

Scheduler::Record* Scheduler::pick_victim() {
  // The victim has made the most progress since activation: it amortized
  // its materialization cost best and can best afford the round trip.
  // Ties prefer lower priority, then the younger run.  Runs that have not
  // progressed since activation are not evictable — every activation gets
  // at least one slice, which rules out admission/eviction livelock.
  Record* best = nullptr;
  uint64_t best_progress = 0;
  for (uint64_t id : active_) {
    Record& r = runs_[id];
    if (!r.driver) continue;
    const uint64_t progress = r.status.steps_done - r.steps_at_activation;
    if (progress == 0) continue;
    if (!best || progress > best_progress ||
        (progress == best_progress &&
         (r.spec.priority < best->spec.priority ||
          (r.spec.priority == best->spec.priority &&
           r.status.id > best->status.id)))) {
      best = &r;
      best_progress = progress;
    }
  }
  return best;
}

void Scheduler::remove_active(uint64_t id) {
  active_.erase(std::remove(active_.begin(), active_.end(), id),
                active_.end());
}

size_t Scheduler::resident_bytes() const {
  size_t total = 0;
  for (uint64_t id : active_) total += runs_[id].status.resident_bytes;
  return total;
}

bool Scheduler::pump() {
  activate_from_queue();
  if (!active_.empty()) {
    // Stride scheduling: credit grows with priority each round; the
    // richest run gets the slice and pays the round's total back, so
    // long-term slice share converges to priority share and every run's
    // credit keeps growing until served (no starvation).
    uint64_t round_total = 0;
    Record* chosen = nullptr;
    for (uint64_t id : active_) {
      Record& r = runs_[id];
      r.credit += static_cast<uint64_t>(r.spec.priority);
      round_total += static_cast<uint64_t>(r.spec.priority);
      if (!chosen || r.credit > chosen->credit ||
          (r.credit == chosen->credit && r.status.id < chosen->status.id)) {
        chosen = &r;
      }
    }
    chosen->credit -= std::min(chosen->credit, round_total);
    run_slice(*chosen);
    enforce_memory_budget();
    ++slices_;
    maybe_write_status();
  }
  refresh_gauges();
  if (!active_.empty() || !queue_.empty()) return true;
  return false;
}

FleetSummary Scheduler::run_to_completion() {
  while (pump()) {
  }
  FleetSummary summary;
  summary.submitted = runs_.size();
  summary.slices = slices_;
  summary.evictions = evictions_;
  for (const Record& r : runs_) {
    summary.steps_delivered += r.status.steps_done;
    switch (r.status.phase) {
      case RunPhase::kCompleted: ++summary.completed; break;
      case RunPhase::kQuarantined: ++summary.quarantined; break;
      case RunPhase::kRejected: ++summary.rejected; break;
      default: break;
    }
  }
  if (!config_.status_path.empty()) write_status_file();
  refresh_gauges();
  return summary;
}

const RunStatus& Scheduler::status(uint64_t id) const {
  if (id >= runs_.size()) {
    throw ConfigError("unknown run id: " + std::to_string(id));
  }
  return runs_[id].status;
}

std::vector<RunStatus> Scheduler::statuses() const {
  std::vector<RunStatus> out;
  out.reserve(runs_.size());
  for (const Record& r : runs_) out.push_back(r.status);
  return out;
}

std::string Scheduler::status_json() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"antmd.fleet.status/v1\",\n";
  os << "  \"slices\": " << slices_ << ",\n";
  os << "  \"active\": " << active_.size() << ",\n";
  os << "  \"queued\": " << queue_.size() << ",\n";
  os << "  \"resident_bytes\": " << resident_bytes() << ",\n";
  os << "  \"runs\": [\n";
  for (size_t i = 0; i < runs_.size(); ++i) {
    const RunStatus& s = runs_[i].status;
    os << "    {\"id\": " << s.id << ", \"name\": \"";
    json_escape(os, s.name);
    os << "\", \"phase\": \"" << run_phase_name(s.phase) << "\", \"engine\": \""
       << s.engine << "\", \"priority\": " << s.priority
       << ", \"steps_done\": " << s.steps_done
       << ", \"steps_target\": " << s.steps_target
       << ", \"slices\": " << s.slices << ", \"faults\": " << s.faults
       << ", \"retries\": " << s.retries << ", \"rollbacks\": " << s.rollbacks
       << ", \"restarts\": " << s.restarts
       << ", \"node_remaps\": " << s.node_remaps
       << ", \"watchdog_trips\": " << s.watchdog_trips
       << ", \"corruptions\": " << s.corruptions
       << ", \"evictions\": " << s.evictions
       << ", \"recovery_modeled_s\": " << s.recovery_modeled_s
       << ", \"resident_bytes\": " << s.resident_bytes
       << ", \"final_digest\": " << s.final_digest << ", \"detail\": \"";
    json_escape(os, s.detail);
    os << "\"";
    if (s.has_profile) {
      auto num = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return std::string(buf);
      };
      os << ", \"profile\": {\"network_total_s\": "
         << num(s.profile_net_total_s) << ", \"classes\": {";
      for (size_t c = 0; c < obs::kMessageClassCount; ++c) {
        if (c) os << ", ";
        os << "\"" << obs::message_class_name(static_cast<obs::MessageClass>(c))
           << "\": " << num(s.profile_net_s[c]);
      }
      os << "}}";
    }
    os << "}";
    if (i + 1 < runs_.size()) os << ",";
    os << "\n";
  }
  os << "  ]\n}\n";
  return std::move(os).str();
}

void Scheduler::write_status_file() const {
  if (config_.status_path.empty()) return;
  // write_file_durable: tmp + fsync + rename + dir fsync, with no
  // fault-injection polling — the control plane must not consume fault
  // events armed against tenants, and an operator restarting the host
  // after power loss must see the last status actually written, not a
  // file the page cache never persisted.
  try {
    io::write_file_durable(config_.status_path, status_json());
  } catch (const IoError&) {
    // status is advisory; a full disk must not stop the fleet
  }
}

void Scheduler::maybe_write_status() {
  if (config_.status_path.empty()) return;
  if (slices_ % static_cast<uint64_t>(config_.status_interval_slices) == 0) {
    write_status_file();
  }
}

void Scheduler::refresh_gauges() {
  auto& m = fleet_metrics();
  m.active_runs.set(static_cast<double>(active_.size()));
  m.queued_runs.set(static_cast<double>(queue_.size()));
  m.resident_bytes.set(static_cast<double>(resident_bytes()));
}

}  // namespace antmd::fleet
