#include "fleet/run.hpp"

#include <cstring>
#include <optional>
#include <utility>

#include "ff/forcefield.hpp"
#include "machine/config.hpp"
#include "md/builder.hpp"
#include "md/simulation.hpp"
#include "runtime/machine_sim.hpp"
#include "topo/builders.hpp"
#include "util/error.hpp"

namespace antmd::fleet {

const char* run_phase_name(RunPhase phase) {
  switch (phase) {
    case RunPhase::kQueued:
      return "queued";
    case RunPhase::kRunning:
      return "running";
    case RunPhase::kEvicted:
      return "evicted";
    case RunPhase::kQuarantined:
      return "quarantined";
    case RunPhase::kCompleted:
      return "completed";
    case RunPhase::kRejected:
      return "rejected";
  }
  return "unknown";
}

bool run_phase_terminal(RunPhase phase) {
  return phase == RunPhase::kQuarantined || phase == RunPhase::kCompleted ||
         phase == RunPhase::kRejected;
}

void RunSpec::validate() const {
  if (name.empty()) throw ConfigError("run spec needs a name");
  if (steps == 0) throw ConfigError("run '" + name + "': steps must be >= 1");
  if (priority < 1) {
    throw ConfigError("run '" + name + "': priority must be >= 1");
  }
  if (engine != "host" && engine != "machine") {
    throw ConfigError("run '" + name + "': unknown engine '" + engine +
                      "' (host | machine)");
  }
  if (engine == "machine" && nodes < 1) {
    throw ConfigError("run '" + name + "': nodes must be >= 1");
  }
  if (system != "ljfluid" && system != "water" && system != "polymer" &&
      system != "dimer" && system != "bilayer") {
    throw ConfigError("run '" + name + "': unknown system '" + system + "'");
  }
  if (max_retries < 1) {
    throw ConfigError("run '" + name + "': max_retries must be >= 1");
  }
  if (snapshot_interval < 1) {
    throw ConfigError("run '" + name + "': snapshot_interval must be >= 1");
  }
  resilience::AuditConfig audit;
  audit.interval = audit_interval;
  audit.shadow_window = audit_shadow_window;
  audit.scrub_interval = scrub_interval;
  audit.max_recoveries = audit_max_recoveries;
  try {
    audit.validate();
  } catch (const ConfigError& e) {
    throw ConfigError("run '" + name + "': " + e.what());
  }
}

namespace {

uint64_t fnv1a(const void* data, size_t n, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

SystemSpec build_system_spec(const RunSpec& spec) {
  if (spec.system == "ljfluid") {
    return build_lj_fluid(spec.size, spec.density, spec.seed);
  }
  if (spec.system == "water") {
    WaterModel wm = WaterModel::kRigid3Site;
    if (spec.water_model == "flexible3") wm = WaterModel::kFlexible3Site;
    else if (spec.water_model == "rigid4") wm = WaterModel::kRigid4Site;
    else if (spec.water_model != "rigid3") {
      throw ConfigError("run '" + spec.name + "': unknown water_model '" +
                        spec.water_model + "'");
    }
    return build_water_box(spec.size, wm, spec.seed);
  }
  if (spec.system == "polymer") {
    return build_polymer_in_solvent(spec.chain_length, spec.size, spec.seed);
  }
  if (spec.system == "dimer") {
    return build_dimer_in_solvent(spec.size, spec.separation, spec.seed);
  }
  if (spec.system == "bilayer") {
    return build_lipid_bilayer(spec.size, 3, spec.seed);
  }
  throw ConfigError("run '" + spec.name + "': unknown system '" + spec.system +
                    "'");
}

ff::NonbondedModel build_model(const RunSpec& spec, const SystemSpec& system) {
  ff::NonbondedModel model;
  model.cutoff = spec.cutoff;
  if (spec.electrostatics == "none") {
    model.electrostatics = ff::Electrostatics::kNone;
  } else if (spec.electrostatics == "cutoff") {
    model.electrostatics = ff::Electrostatics::kReactionCutoff;
  } else if (spec.electrostatics == "gse") {
    model.electrostatics = ff::Electrostatics::kEwaldReal;
    model.ewald_beta = 0.4;
  } else {
    throw ConfigError("run '" + spec.name + "': unknown electrostatics '" +
                      spec.electrostatics + "'");
  }
  // Electrostatics on an uncharged system is meaningless; drop it so the
  // manifest default can stay "none"-agnostic across systems.
  bool charged = false;
  for (double q : system.topology.charges()) {
    if (q != 0.0) {
      charged = true;
      break;
    }
  }
  if (!charged) model.electrostatics = ff::Electrostatics::kNone;
  return model;
}

md::ThermostatConfig build_thermostat(const RunSpec& spec) {
  md::ThermostatConfig t;
  t.temperature_k = spec.temperature_k;
  t.gamma_per_ps = spec.gamma_per_ps;
  if (spec.thermostat == "none") t.kind = md::ThermostatKind::kNone;
  else if (spec.thermostat == "berendsen") {
    t.kind = md::ThermostatKind::kBerendsen;
  } else if (spec.thermostat == "langevin") {
    t.kind = md::ThermostatKind::kLangevin;
  } else if (spec.thermostat == "nosehoover") {
    t.kind = md::ThermostatKind::kNoseHoover;
  } else {
    throw ConfigError("run '" + spec.name + "': unknown thermostat '" +
                      spec.thermostat + "'");
  }
  return t;
}

resilience::SupervisorConfig build_supervision(
    const RunSpec& spec, const std::string& checkpoint_path) {
  resilience::SupervisorConfig sup;
  sup.max_retries = spec.max_retries;
  sup.snapshot_interval = spec.snapshot_interval;
  sup.snapshot_ring_bytes = spec.snapshot_ring_bytes;
  sup.checkpoint_path = checkpoint_path;
  sup.watchdog_ms = spec.watchdog_ms;
  sup.audit.interval = spec.audit_interval;
  sup.audit.shadow_window = spec.audit_shadow_window;
  sup.audit.scrub_interval = spec.scrub_interval;
  sup.audit.max_recoveries = spec.audit_max_recoveries;
  return sup;
}

/// Owns one run's whole materialized stack in dependency order: the
/// SystemSpec (topology + coordinates), the ForceField built on its
/// topology, the engine built on the field, and the Supervisor wrapping
/// the engine.  Destruction releases everything the run held.
template <md::EngineApi Sim>
class EngineDriver final : public Driver {
 public:
  EngineDriver(SystemSpec system, const ff::NonbondedModel& model)
      : system_(std::move(system)), field_(system_.topology, model) {}

  [[nodiscard]] ForceField& field() { return field_; }
  [[nodiscard]] const SystemSpec& system() const { return system_; }

  void install(std::unique_ptr<Sim> sim,
               resilience::SupervisorConfig supervision) {
    sim_ = std::move(sim);
    // Engines that support profile routing (machine) get a private
    // collector, so multiplexed tenants never mix their attribution.
    // Checked at materialization: flipping profiling mid-fleet does not
    // retroactively create collectors.
    if constexpr (requires { sim_->set_profile(profile_.get()); }) {
      if (obs::profiling_enabled()) {
        profile_ = std::make_unique<obs::Profile>();
        sim_->set_profile(profile_.get());
      }
    }
    const bool audit = supervision.audit.interval > 0;
    supervisor_.emplace(*sim_, std::move(supervision));
    if (audit) {
      // Golden CRCs are captured here, at materialization, before any
      // per-run bit-flip plan can fire: the scrubber covers the force
      // field (packed spline tables + flattened exclusion list) and the
      // topology arrays the engine reads every step.
      scrubber_.add_object(field_);
      scrubber_.add_object(system_.topology);
      supervisor_->enable_audit(&scrubber_);
    }
  }

  resilience::RecoveryReport advance(size_t steps) override {
    return supervisor_->run(steps);
  }
  [[nodiscard]] const State& state() const override { return sim_->state(); }
  [[nodiscard]] size_t atom_count() const override {
    return system_.topology.atom_count();
  }
  [[nodiscard]] double potential_energy() const override {
    return sim_->potential_energy();
  }
  [[nodiscard]] double temperature() const override {
    return sim_->temperature();
  }
  [[nodiscard]] size_t snapshot_bytes() const override {
    return supervisor_->snapshot_bytes();
  }
  [[nodiscard]] util::Checkpointable& checkpointable() override {
    return *sim_;
  }
  [[nodiscard]] const obs::Profile* profile() const override {
    return profile_.get();
  }

 private:
  SystemSpec system_;
  ForceField field_;
  /// Declared before sim_ so the sim's profile pointer never dangles.
  std::unique_ptr<obs::Profile> profile_;
  /// Declared before supervisor_: the supervisor's auditor holds a
  /// pointer to the scrubber for the supervisor's whole lifetime.
  resilience::Scrubber scrubber_;
  std::unique_ptr<Sim> sim_;
  std::optional<resilience::Supervisor<Sim>> supervisor_;
};

}  // namespace

uint64_t state_digest(const State& state) {
  uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(state.positions.data(), state.positions.size() * sizeof(Vec3), h);
  h = fnv1a(state.velocities.data(), state.velocities.size() * sizeof(Vec3),
            h);
  const Vec3 edges = state.box.edges();
  h = fnv1a(&edges, sizeof(edges), h);
  h = fnv1a(&state.time, sizeof(state.time), h);
  h = fnv1a(&state.step, sizeof(state.step), h);
  return h;
}

std::unique_ptr<Driver> materialize(
    const RunSpec& spec, std::shared_ptr<util::TaskRuntime> shared_runtime,
    size_t threads, const std::string& checkpoint_path) {
  spec.validate();
  SystemSpec system = build_system_spec(spec);
  const ff::NonbondedModel model = build_model(spec, system);
  const md::ThermostatConfig thermostat = build_thermostat(spec);

  ExecutionConfig exec;
  exec.threads = threads ? threads : 1;
  exec.shared_runtime = std::move(shared_runtime);

  if (spec.engine == "host") {
    auto driver = std::make_unique<EngineDriver<md::Simulation>>(
        std::move(system), model);
    md::SimulationBuilder builder;
    builder.dt_fs(spec.dt_fs)
        .thermostat(thermostat)
        .init_temperature(spec.temperature_k)
        .velocity_seed(spec.seed)
        .execution(exec);
    driver->install(builder.build_unique(driver->field(),
                                         driver->system().positions,
                                         driver->system().box),
                    build_supervision(spec, checkpoint_path));
    return driver;
  }

  auto driver = std::make_unique<EngineDriver<runtime::MachineSimulation>>(
      std::move(system), model);
  runtime::MachineSimConfig config;
  config.dt_fs = spec.dt_fs;
  config.thermostat = thermostat;
  config.init_temperature_k = spec.temperature_k;
  config.velocity_seed = spec.seed;
  config.engine.execution = exec;
  driver->install(std::make_unique<runtime::MachineSimulation>(
                      driver->field(),
                      machine::anton_with_torus(spec.nodes, spec.nodes,
                                                spec.nodes),
                      driver->system().positions, driver->system().box,
                      config),
                  build_supervision(spec, checkpoint_path));
  return driver;
}

size_t estimate_atom_count(const RunSpec& spec) {
  // Builders are deterministic and O(atoms); building the topology once at
  // admission time is the exact answer, not an approximation.
  return build_system_spec(spec).topology.atom_count();
}

size_t estimate_resident_bytes(const RunSpec& spec) {
  const size_t atoms = estimate_atom_count(spec);
  // Engine working set (state, forces, tables, neighbor/cluster lists) is
  // linear in atoms; 768 B/atom brackets the host and machine engines
  // across the synthetic systems, which is the fidelity admission needs.
  const size_t engine = atoms * 768;
  // Snapshot ring: the explicit byte budget when set, else the default
  // ring depth times one serialized state (~72 B/atom + fixed extras).
  const size_t per_snapshot = atoms * 72 + 4096;
  const size_t ring = spec.snapshot_ring_bytes
                          ? spec.snapshot_ring_bytes
                          : resilience::SupervisorConfig{}.snapshot_ring_depth *
                                per_snapshot;
  return engine + ring;
}

}  // namespace antmd::fleet
