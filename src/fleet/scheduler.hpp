// Fleet scheduler: a fault-isolated multi-run service over one worker pool.
//
// The scheduler multiplexes hundreds of concurrent simulations — each a
// RunSpec-described tenant — over a single shared util::TaskRuntime.  Runs
// advance in priority-weighted time slices on the scheduler thread (one run
// is in flight at a time; its step graph fans out over the shared lanes),
// which is what makes the strong isolation properties cheap:
//
//   admission     submit() rejects work the fleet cannot hold — a queue
//                 past max_queued_runs (backpressure) or a run whose
//                 modeled footprint exceeds the whole memory budget.
//   containment   every run advances inside its own resilience::Supervisor
//                 and its own fault-injection scope; a transient failure
//                 rolls back or restarts that run alone, a fatal one
//                 quarantines it with a typed RecoveryReport.  Siblings
//                 never observe either.
//   fair share    stride scheduling over spec.priority: under contention a
//                 priority-2 run receives twice the slices of a priority-1
//                 sibling, and every active run's credit grows each round,
//                 so nothing starves.
//   eviction      when the resident-byte budget is hit, the victim (most
//                 progress since activation — it can best afford the round
//                 trip) is parked in a crash-safe v2 checkpoint, its engine
//                 freed, and it re-queues; rehydration rebuilds the engine
//                 from the spec and restores the checkpoint bit-exactly.
//
// Determinism: scheduling decisions are pure functions of (specs, config,
// submission order) — no wall-clock, no thread identity — so a fleet run
// is reproducible end to end, and every run's trajectory is bit-identical
// to executing its spec alone (the T5 contract extended to multi-tenancy).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fleet/run.hpp"
#include "obs/metrics.hpp"
#include "util/task_graph.hpp"

namespace antmd::fleet {

struct SchedulerConfig {
  /// Materialized engines resident at once (the rest queue or park).
  size_t max_active_runs = 8;
  /// Admission control: submissions past this many waiting runs are
  /// rejected (backpressure), never silently dropped.
  size_t max_queued_runs = 1024;
  /// Modeled resident-byte budget across all active runs (0 = unbounded).
  /// A single run whose estimate exceeds it is rejected at admission;
  /// pressure during execution evicts victims to checkpoints instead.
  size_t memory_budget_bytes = 0;
  /// Steps per time slice.  Smaller slices interleave tenants more finely
  /// (tighter fairness, faster status updates) at more supervisor
  /// snapshot overhead per delivered step.
  size_t slice_steps = 32;
  /// Worker lanes in the shared TaskRuntime every engine multiplexes over
  /// (1 = serial engines, no pool).
  size_t threads = 1;
  /// Directory for per-run checkpoints (supervisor mirrors + eviction
  /// parking).  "" disables both: eviction then quarantines the victim
  /// instead of parking it, so set this for any real fleet.
  std::string checkpoint_dir;
  /// Machine-readable JSON status file ("" = none), rewritten atomically
  /// every status_interval_slices slices and at run_to_completion exit.
  std::string status_path;
  int status_interval_slices = 16;
  /// Keep each completed run's final state as <checkpoint_dir>/<name>.final
  /// (v2 container) for collection by the operator.
  bool retain_final_state = false;
  /// Cluster-kernel ISA for every tenant ("auto" = cpuid probe; or
  /// scalar | sse41 | avx2 | avx512).  Process-global — kernel dispatch is
  /// shared state, so it is a fleet key, not a per-run key.  All variants
  /// are bit-identical; this only changes speed.
  std::string nonbonded_simd = "auto";
};

/// Aggregate outcome of run_to_completion().
struct FleetSummary {
  size_t submitted = 0;
  size_t completed = 0;
  size_t quarantined = 0;
  size_t rejected = 0;
  uint64_t slices = 0;
  uint64_t evictions = 0;
  uint64_t steps_delivered = 0;
  [[nodiscard]] std::string render() const;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission control.  Always returns the run's id; inspect
  /// status(id).phase — kQueued means admitted, kRejected means refused
  /// (status(id).detail says why).  Throws ConfigError only on a spec that
  /// cannot be described at all (empty name, duplicate name).
  uint64_t submit(RunSpec spec);

  /// One scheduling round: activate/rehydrate what fits, advance the
  /// fair-share winner by one slice, handle its outcome, enforce the
  /// memory budget.  Returns false when no non-terminal runs remain.
  bool pump();

  /// Pumps until every run is terminal; returns the tally.
  FleetSummary run_to_completion();

  [[nodiscard]] const RunStatus& status(uint64_t id) const;
  [[nodiscard]] std::vector<RunStatus> statuses() const;
  [[nodiscard]] size_t active_count() const { return active_.size(); }
  [[nodiscard]] size_t queued_count() const { return queue_.size(); }
  /// Modeled resident bytes across all active runs right now.
  [[nodiscard]] size_t resident_bytes() const;

  /// Status document, schema "antmd.fleet.status/v1".
  [[nodiscard]] std::string status_json() const;
  /// Writes status_json() to config.status_path via temp file + rename.
  /// Plain I/O, no fault-injection polling: a chaos schedule aimed at a
  /// tenant's checkpoints must not be consumed by the control plane.
  void write_status_file() const;

 private:
  struct Record {
    RunSpec spec;
    RunStatus status;
    std::unique_ptr<Driver> driver;  ///< live only while kRunning
    uint64_t steps_at_activation = 0;
    uint64_t credit = 0;  ///< stride-scheduling account
    /// Counter snapshot taken at activation: each activation gets a fresh
    /// Supervisor (report starts at zero), so slice accounting adds the
    /// live report onto this baseline.
    RunStatus counters_base;
    bool has_checkpoint = false;
    bool fault_armed = false;
  };

  void activate_from_queue();
  bool activate(Record& r);
  void run_slice(Record& r);
  void finish(Record& r, RunPhase phase, std::string detail);
  bool evict(Record& r);
  void enforce_memory_budget();
  void deactivate(Record& r);
  void remove_active(uint64_t id);
  [[nodiscard]] Record* pick_victim();
  [[nodiscard]] std::string checkpoint_path(const Record& r) const;
  void refresh_gauges();
  void maybe_write_status();

  SchedulerConfig config_;
  std::shared_ptr<util::TaskRuntime> runtime_;  ///< null when threads <= 1
  std::deque<Record> runs_;                     ///< indexed by run id
  std::deque<uint64_t> queue_;                  ///< FIFO of waiting run ids
  std::vector<uint64_t> active_;               ///< ids with live drivers
  uint64_t slices_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace antmd::fleet
