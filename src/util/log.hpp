// Minimal leveled logger. Output goes to stderr; the level is a process-wide
// setting so examples/benches can silence progress chatter.
#pragma once

#include <sstream>
#include <string>

namespace antmd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: ANTMD_LOG(kInfo) << "step " << n;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace antmd

#define ANTMD_LOG(level) \
  ::antmd::LogLine(::antmd::LogLevel::level)
