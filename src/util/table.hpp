// ASCII table printer used by the bench harnesses to emit paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace antmd {

/// Accumulates rows of strings and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);
  static std::string sci(double value, int precision = 2);

  [[nodiscard]] std::string render() const;

  [[nodiscard]] size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace antmd
