#include "util/serialize.hpp"

#include <array>

namespace antmd::util {
namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::array<uint64_t, 256> make_crc64_table() {
  std::array<uint64_t, 256> table{};
  for (uint64_t i = 0; i < 256; ++i) {
    uint64_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xC96C5795D7870F42ull ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t crc64_update(uint64_t crc, const void* data, size_t size) {
  static const std::array<uint64_t, 256> table = make_crc64_table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint64_t crc64(const void* data, size_t size) {
  return crc64_final(crc64_update(crc64_init(), data, size));
}

}  // namespace antmd::util
