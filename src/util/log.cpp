#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>

namespace antmd {
namespace {

/// Initial level: ANTMD_LOG_LEVEL=debug|info|warn|error|off (case-insensitive)
/// overrides the kInfo default; set_log_level() still wins afterwards.
LogLevel initial_level() {
  const char* env = std::getenv("ANTMD_LOG_LEVEL");
  if (!env || !*env) return LogLevel::kInfo;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "off" || v == "none" || v == "4") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

/// Small sequential per-thread id (main thread is t00): stable across the
/// process and far more readable than the 16-hex-digit std::thread::id.
uint32_t thread_label() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  // Wall-clock timestamp with millisecond resolution, local time.
  const auto now = std::chrono::system_clock::now();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[antmd %s %s.%03d t%02u] %s\n", level_name(level),
               stamp, static_cast<int>(ms), thread_label(), message.c_str());
}

}  // namespace detail
}  // namespace antmd
