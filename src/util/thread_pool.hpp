// Fixed-size thread pool with a parallel_for helper.
//
// The machine model is a *simulation*, so most work is single-threaded and
// deterministic; the pool is used only for embarrassingly parallel sweeps in
// benches (independent replicas) where result ordering is preserved by index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace antmd {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] size_t size() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until done.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace antmd
