// Tiny command-line flag parser used by examples and bench harnesses.
//
//   CliParser cli("quickstart", "Run a short water-box simulation");
//   cli.add_flag("steps", "number of MD steps", 1000);
//   cli.add_flag("box", "box edge in Angstrom", 24.0);
//   cli.parse(argc, argv);
//   int steps = cli.get_int("steps");
//
// Accepts --name=value and --name value forms, plus --help.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace antmd {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);
  void add_flag(const std::string& name, const std::string& help,
                double default_value);
  void add_flag(const std::string& name, const std::string& help,
                int default_value);
  void add_flag(const std::string& name, const std::string& help,
                bool default_value);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws ConfigError on unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string help;
    std::string value;  // current (default or parsed) textual value
    std::string default_value;
  };

  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace antmd
