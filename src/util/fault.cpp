#include "util/fault.hpp"

#include <array>
#include <cstddef>

#include "obs/metrics.hpp"

using std::size_t;

namespace antmd::fault {
namespace {

struct Slot {
  FaultPlan plan;
  bool active = false;
  uint64_t events = 0;  ///< qualifying events seen since arm()
  uint64_t fired = 0;
  uint64_t rng = 0;     ///< splitmix64 state for probabilistic plans
};

std::array<Slot, static_cast<size_t>(FaultKind::kCount)>& slots() {
  static std::array<Slot, static_cast<size_t>(FaultKind::kCount)> s;
  return s;
}

Slot& slot(FaultKind kind) { return slots()[static_cast<size_t>(kind)]; }

// One telemetry counter per injectable fault kind (util.fault.*.count), so
// resilience experiments can cross-check "faults injected" against
// "rollbacks/retries observed" from a single metrics dump.
obs::Counter& fired_counter(FaultKind kind) {
  auto& reg = obs::MetricsRegistry::global();
  static std::array<obs::Counter*,
                    static_cast<size_t>(FaultKind::kCount)>
      counters{&reg.counter("util.fault.io_write_fail.count"),
               &reg.counter("util.fault.io_short_write.count"),
               &reg.counter("util.fault.nan_force.count"),
               &reg.counter("util.fault.node_fail.count"),
               &reg.counter("util.fault.link_drop.count"),
               &reg.counter("util.fault.packet_corrupt.count"),
               &reg.counter("util.fault.node_hang.count")};
  return *counters[static_cast<size_t>(kind)];
}

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void arm(const FaultPlan& plan) {
  Slot& s = slot(plan.kind);
  s.plan = plan;
  s.active = true;
  s.events = 0;
  s.fired = 0;
  s.rng = plan.seed * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull;
}

void disarm(FaultKind kind) { slot(kind) = Slot{}; }

void disarm_all() {
  for (auto& s : slots()) s = Slot{};
}

bool armed(FaultKind kind) { return slot(kind).active; }

bool should_fire(FaultKind kind, uint64_t* payload) {
  Slot& s = slot(kind);
  if (!s.active) return false;
  const uint64_t event = s.events++;
  if (event < s.plan.fire_after) return false;
  if (s.plan.count >= 0 &&
      s.fired >= static_cast<uint64_t>(s.plan.count)) {
    return false;
  }
  if (s.plan.probability < 1.0) {
    constexpr double kInv2Pow64 = 1.0 / 18446744073709551616.0;
    double u = static_cast<double>(splitmix64(s.rng)) * kInv2Pow64;
    if (u >= s.plan.probability) return false;
  }
  ++s.fired;
  fired_counter(kind).add();
  if (payload) *payload = s.plan.payload;
  return true;
}

uint64_t fired_count(FaultKind kind) { return slot(kind).fired; }

}  // namespace antmd::fault
