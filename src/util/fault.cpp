#include "util/fault.hpp"

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <map>
#include <mutex>

#include "obs/metrics.hpp"
#include "util/error.hpp"

using std::size_t;

namespace antmd::fault {
namespace {

struct Slot {
  FaultPlan plan;
  bool active = false;
  uint64_t events = 0;  ///< qualifying events seen since arm()
  uint64_t fired = 0;
  uint64_t rng = 0;     ///< splitmix64 state for probabilistic plans
};

using SlotArray = std::array<Slot, static_cast<size_t>(FaultKind::kCount)>;

// Registry state.  All mutation happens under `mutex()`; `armed_plans()` is
// the lock-free fast path that keeps an idle should_fire() at one relaxed
// load even when polled from task-graph worker lanes.
std::mutex& mutex() {
  static std::mutex m;
  return m;
}

std::atomic<uint32_t>& armed_plans() {
  static std::atomic<uint32_t> n{0};
  return n;
}

std::atomic<ScopeId>& scope_now() {
  static std::atomic<ScopeId> s{kGlobalScope};
  return s;
}

SlotArray& global_slots() {
  static SlotArray s;
  return s;
}

std::map<ScopeId, SlotArray>& scoped_slots() {
  static std::map<ScopeId, SlotArray> s;
  return s;
}

// One telemetry counter per injectable fault kind (util.fault.*.count), so
// resilience experiments can cross-check "faults injected" against
// "rollbacks/retries observed" from a single metrics dump.
obs::Counter& fired_counter(FaultKind kind) {
  auto& reg = obs::MetricsRegistry::global();
  static std::array<obs::Counter*,
                    static_cast<size_t>(FaultKind::kCount)>
      counters{&reg.counter("util.fault.io_write_fail.count"),
               &reg.counter("util.fault.io_short_write.count"),
               &reg.counter("util.fault.nan_force.count"),
               &reg.counter("util.fault.node_fail.count"),
               &reg.counter("util.fault.link_drop.count"),
               &reg.counter("util.fault.packet_corrupt.count"),
               &reg.counter("util.fault.node_hang.count"),
               &reg.counter("util.fault.bit_flip_state.count"),
               &reg.counter("util.fault.bit_flip_table.count"),
               &reg.counter("util.fault.bit_flip_checkpoint_buffer.count")};
  return *counters[static_cast<size_t>(kind)];
}

// Live InjectionPause count.  Non-zero makes every should_fire() a no-op
// that does not consume events; checked after the armed-plan fast path so
// the idle cost stays one relaxed load.
std::atomic<uint32_t>& pause_depth() {
  static std::atomic<uint32_t> n{0};
  return n;
}

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void arm_slot(Slot& s, const FaultPlan& plan) {
  if (!s.active) armed_plans().fetch_add(1, std::memory_order_relaxed);
  s.plan = plan;
  s.active = true;
  s.events = 0;
  s.fired = 0;
  s.rng = plan.seed * 0x2545F4914F6CDD1Dull + 0x9E3779B97F4A7C15ull;
}

void disarm_slot(Slot& s) {
  if (s.active) armed_plans().fetch_sub(1, std::memory_order_relaxed);
  s = Slot{};
}

/// Counts the event against an armed slot and decides whether it fires.
bool slot_fires(Slot& s, uint64_t* payload) {
  if (!s.active) return false;
  const uint64_t event = s.events++;
  if (event < s.plan.fire_after) return false;
  if (s.plan.count >= 0 &&
      s.fired >= static_cast<uint64_t>(s.plan.count)) {
    return false;
  }
  if (s.plan.probability < 1.0) {
    constexpr double kInv2Pow64 = 1.0 / 18446744073709551616.0;
    double u = static_cast<double>(splitmix64(s.rng)) * kInv2Pow64;
    if (u >= s.plan.probability) return false;
  }
  ++s.fired;
  if (payload) *payload = s.plan.payload;
  return true;
}

}  // namespace

void arm(const FaultPlan& plan) { arm_scoped(kGlobalScope, plan); }

void arm_scoped(ScopeId scope, const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex());
  SlotArray& slots = scope == kGlobalScope ? global_slots()
                                           : scoped_slots()[scope];
  arm_slot(slots[static_cast<size_t>(plan.kind)], plan);
}

void disarm(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex());
  disarm_slot(global_slots()[static_cast<size_t>(kind)]);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(mutex());
  for (auto& s : global_slots()) disarm_slot(s);
  for (auto& [scope, slots] : scoped_slots()) {
    for (auto& s : slots) disarm_slot(s);
  }
  scoped_slots().clear();
}

void disarm_scope(ScopeId scope) {
  if (scope == kGlobalScope) return;
  std::lock_guard<std::mutex> lock(mutex());
  auto it = scoped_slots().find(scope);
  if (it == scoped_slots().end()) return;
  for (auto& s : it->second) disarm_slot(s);
  scoped_slots().erase(it);
}

void set_current_scope(ScopeId scope) {
  scope_now().store(scope, std::memory_order_relaxed);
}

ScopeId current_scope() {
  return scope_now().load(std::memory_order_relaxed);
}

bool armed(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex());
  return global_slots()[static_cast<size_t>(kind)].active;
}

bool should_fire(FaultKind kind, uint64_t* payload) {
  if (armed_plans().load(std::memory_order_relaxed) == 0) return false;
  if (pause_depth().load(std::memory_order_relaxed) != 0) return false;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex());
    // The current scope's plan is the more specific match, so it decides
    // first; the global plan still counts the qualifying event either way
    // (it observes all traffic, scoped plans only their tenant's).
    const ScopeId scope = current_scope();
    if (scope != kGlobalScope) {
      auto it = scoped_slots().find(scope);
      if (it != scoped_slots().end()) {
        fire = slot_fires(it->second[static_cast<size_t>(kind)], payload);
      }
    }
    Slot& global = global_slots()[static_cast<size_t>(kind)];
    if (fire) {
      if (global.active) ++global.events;
    } else {
      fire = slot_fires(global, payload);
    }
  }
  if (fire) fired_counter(kind).add();
  return fire;
}

uint64_t fired_count(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex());
  return global_slots()[static_cast<size_t>(kind)].fired;
}

uint64_t fired_count_scoped(ScopeId scope, FaultKind kind) {
  if (scope == kGlobalScope) return fired_count(kind);
  std::lock_guard<std::mutex> lock(mutex());
  auto it = scoped_slots().find(scope);
  if (it == scoped_slots().end()) return 0;
  return it->second[static_cast<size_t>(kind)].fired;
}

uint64_t event_count(FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex());
  return global_slots()[static_cast<size_t>(kind)].events;
}

InjectionPause::InjectionPause() {
  pause_depth().fetch_add(1, std::memory_order_relaxed);
}

InjectionPause::~InjectionPause() {
  pause_depth().fetch_sub(1, std::memory_order_relaxed);
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::string kind = spec;
  std::string rest;
  if (auto colon = spec.find(':'); colon != std::string::npos) {
    kind = spec.substr(0, colon);
    rest = spec.substr(colon + 1);
  }
  if (kind == "io_write_fail") plan.kind = FaultKind::kIoWriteFail;
  else if (kind == "io_short_write") plan.kind = FaultKind::kIoShortWrite;
  else if (kind == "nan_force") plan.kind = FaultKind::kNanForce;
  else if (kind == "node_fail") plan.kind = FaultKind::kNodeFail;
  else if (kind == "link_drop") plan.kind = FaultKind::kLinkDrop;
  else if (kind == "packet_corrupt") plan.kind = FaultKind::kPacketCorrupt;
  else if (kind == "node_hang") plan.kind = FaultKind::kNodeHang;
  else if (kind == "bit_flip_state") plan.kind = FaultKind::kBitFlipState;
  else if (kind == "bit_flip_table") plan.kind = FaultKind::kBitFlipTable;
  else if (kind == "bit_flip_checkpoint_buffer") {
    plan.kind = FaultKind::kBitFlipCheckpointBuffer;
  } else {
    throw ConfigError("unknown fault kind: " + kind);
  }
  uint64_t* fields[] = {&plan.fire_after, nullptr, &plan.payload};
  int64_t count = plan.count;
  for (int f = 0; !rest.empty() && f < 3; ++f) {
    std::string tok = rest;
    if (auto colon = rest.find(':'); colon != std::string::npos) {
      tok = rest.substr(0, colon);
      rest = rest.substr(colon + 1);
    } else {
      rest.clear();
    }
    char* end = nullptr;
    long long value = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') {
      throw ConfigError("bad fault spec field '" + tok + "' in: " + spec);
    }
    if (f == 1) count = value;
    else *fields[f] = static_cast<uint64_t>(value);
  }
  plan.count = count;
  return plan;
}

}  // namespace antmd::fault
