// Deterministic task-graph execution: the one parallel entry point.
//
// The step of an MD engine is not a sequence of barriers, it is a DAG:
// bonded, nonbonded tiles and kspace are independent once positions are
// final, and only the reduction that folds their partial results needs an
// order.  TaskGraph lets callers say exactly that — named tasks with
// explicit dependencies plus a fixed-order reduction slot — and a
// persistent TaskRuntime executes ready tasks work-stealing-style across
// worker lanes.
//
// Determinism contract (what keeps trajectories bit-identical at any lane
// count; gated by graph_determinism_test and parallel_determinism_test):
//   * Task *scheduling* is unordered, so task bodies may only write
//     disjoint state: per-lane accumulators (indexed by
//     TaskRuntime::current_lane()), per-grain slots, or order-independent
//     fixed-point sums.
//   * All order-sensitive arithmetic (double-precision virial, gauge
//     updates) happens in reduction tasks, which are ordinary tasks whose
//     dependencies force them to run alone after the fan-out; they fold
//     partials in a fixed (ascending) index order.
//   * Parallel tasks resolve their grain count through a callable *when
//     the task becomes ready* (upstream tasks may grow or shrink the work,
//     e.g. a neighbor-list rebuild changing the tile count), and the grain
//     partition must be a function of the data only — never of the lane
//     count.  plan_chunks() is the shared helper for that.
//
// Execution model: TaskRuntime keeps `lanes-1` persistent worker threads
// that spin briefly between runs and then park on a condition variable;
// the calling thread participates as lane 0, so a serial runtime is just
// the caller.  A graph whose task bodies re-enter the same runtime (e.g. a
// neighbor-list rebuild calling parallel_for inside a step graph) runs the
// nested work inline and serially on the calling lane — re-entry never
// deadlocks and never changes results, it only forgoes nested parallelism.
//
// Telemetry: when obs telemetry is enabled, parallel runs publish
// md.exec.* metrics (task/grain/steal/idle counters, busy and
// critical-path share gauges) and emit one Chrome-trace span per task per
// lane.  Task names must be string literals (stored by pointer, like
// obs::TracePhase).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace antmd::util {

/// Deterministic chunk partition: splits `items` into at most `max_chunks`
/// chunks of at least `min_per_chunk` items (except possibly the last).
/// The partition is a function of the arguments only — never of the lane
/// count — so per-chunk partials always have the same boundaries and a
/// fixed-order reduction over them is bit-stable at any thread count.
struct ChunkPlan {
  size_t items = 0;
  size_t chunks = 0;
  size_t chunk_len = 0;

  [[nodiscard]] size_t begin(size_t c) const { return c * chunk_len; }
  [[nodiscard]] size_t end(size_t c) const {
    const size_t e = (c + 1) * chunk_len;
    return e < items ? e : items;
  }
};

[[nodiscard]] ChunkPlan plan_chunks(size_t items, size_t min_per_chunk,
                                    size_t max_chunks);

class TaskGraph;

/// Persistent worker pool shared by every graph of one simulation.  One per
/// ExecutionContext; cheap to share via shared_ptr between an engine and
/// its neighbor list.  `lanes` counts the calling thread, so lanes == 1
/// spawns no workers at all.
class TaskRuntime : public std::enable_shared_from_this<TaskRuntime> {
 public:
  /// `lanes` == 0 uses hardware_concurrency (min 1).
  explicit TaskRuntime(size_t lanes = 0);
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;

  static std::shared_ptr<TaskRuntime> create(size_t lanes = 0);

  [[nodiscard]] size_t lanes() const { return lanes_; }
  [[nodiscard]] bool parallel() const { return lanes_ > 1; }

  /// Lane of the calling thread while it executes graph work on some
  /// runtime: in [0, lanes) there, 0 everywhere else.  Task bodies index
  /// per-lane accumulators with this.
  [[nodiscard]] static size_t current_lane();

  /// True when the calling thread is already executing work on this
  /// runtime.  Nested graphs detect this and fall back to the serial
  /// schedule instead of deadlocking on the run lock.
  [[nodiscard]] bool is_current() const;

  /// One-shot collective: runs fn(i) for i in [0, count) and blocks until
  /// done (a single-parallel-task graph).  Serial runtimes — and calls
  /// that re-enter the runtime from inside a task body — run in index
  /// order on the calling thread.  The first exception is rethrown after
  /// all lanes quiesce.
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

 private:
  friend class TaskGraph;

  /// Executes a prepared graph to completion; returns with all lanes out.
  void run_prepared(TaskGraph& graph);
  void worker_loop(size_t lane);

  size_t lanes_ = 1;
  std::vector<std::thread> workers_;
  std::atomic<TaskGraph*> active_{nullptr};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint32_t> inside_{0};  ///< workers currently touching active_
  std::atomic<uint32_t> parked_{0};
  std::atomic<bool> stop_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::mutex run_mutex_;  ///< serializes top-level run() calls
};

using TaskId = uint32_t;

/// A reusable DAG of named tasks.  Build once (add tasks, wire deps), run
/// every step; per-run scheduling state is reset by run().  Dependencies
/// must point at already-added tasks, so insertion order is a topological
/// order — the serial fallback simply runs tasks in insertion order, which
/// is also the arithmetic the parallel run must reproduce bitwise.
///
/// Not thread-safe: build and run from one thread at a time.  Task bodies
/// are retained until the graph is destroyed; captured references must
/// outlive it.
class TaskGraph {
 public:
  /// A null runtime (or a 1-lane one) makes run() execute serially.
  explicit TaskGraph(std::shared_ptr<TaskRuntime> runtime = nullptr,
                     const char* name = "task_graph");

  /// Adds a serial task.  `name` must be a string literal.
  TaskId add(const char* name, std::function<void()> fn,
             std::vector<TaskId> deps = {});

  /// Adds a parallel task: when every dependency has finished, `count()`
  /// is invoked once (single-threaded) and body(g) runs for every grain
  /// g in [0, count) across all idle lanes.  The grain partition seen by
  /// `body` must not depend on the lane count.
  TaskId add_parallel(const char* name, std::function<size_t()> count,
                      std::function<void(size_t)> body,
                      std::vector<TaskId> deps = {});

  /// Adds the fixed-order reduction slot: an ordinary serial task whose
  /// dependencies make it run after the fan-out it folds.  Kept as a
  /// distinct verb so call sites document where the order-sensitive
  /// arithmetic lives.
  TaskId add_reduction(const char* name, std::function<void()> fn,
                       std::vector<TaskId> deps);

  /// Executes the graph to completion and rethrows the first task
  /// exception (remaining tasks are cancelled, not torn mid-body).  A
  /// graph may be run any number of times.
  void run();

  [[nodiscard]] size_t task_count() const { return nodes_.size(); }
  [[nodiscard]] size_t lanes() const;
  [[nodiscard]] bool parallel() const;

 private:
  friend class TaskRuntime;

  struct SpinLock {
    void lock() {
      while (flag_.test_and_set(std::memory_order_acquire)) pause();
    }
    void unlock() { flag_.clear(std::memory_order_release); }
    static void pause();
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  struct Node {
    const char* name = "";
    std::function<void()> fn;          ///< serial body (null for parallel)
    std::function<size_t()> count_fn;  ///< parallel grain count provider
    std::function<void(size_t)> body;  ///< parallel grain body
    std::vector<TaskId> children;
    uint32_t n_deps = 0;
    // Per-run scheduling state (reset by prepare()).
    std::atomic<uint32_t> pending{0};
    std::atomic<size_t> cursor{0};
    std::atomic<size_t> done_grains{0};
    size_t grains = 0;  ///< resolved at ready time; fixed while scheduled
    std::atomic<int32_t> first_lane{-1};
    /// Work attributed to this task this run (grains sum over lanes);
    /// collected only under attribution profiling.
    std::atomic<uint64_t> busy_ns{0};
  };

  TaskId add_node(const char* name, std::vector<TaskId> deps);
  void run_serial();
  void prepare();
  void work(size_t lane);        ///< participate until every task is done
  bool execute_one(size_t lane); ///< pop + run one ready entry
  void drain_grains(Node& node, uint32_t id, size_t lane);
  void run_serial_body(Node& node, size_t lane);
  void on_node_done(Node& node);
  void make_ready(uint32_t id);
  void push_ready(uint32_t id);
  void record_error();
  void finish(double wall_us);  ///< metrics + rethrow after lanes quiesce
  /// Critical-path analysis over this run's per-task busy durations: DAG
  /// longest path, per-task slack and what-if savings, reported to
  /// obs::Profile::global().  Runs once per graph run under profiling.
  void record_profile();

  const char* name_;
  std::shared_ptr<TaskRuntime> runtime_;

  std::deque<Node> nodes_;  ///< deque: stable addresses, non-movable Nodes

  // Per-run scheduling state.
  std::atomic<uint32_t> completed_{0};
  std::atomic<bool> cancelled_{false};
  SpinLock ready_lock_;
  std::vector<uint32_t> ready_;
  size_t ready_head_ = 0;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;

  // Per-run telemetry (collected only while obs telemetry is enabled).
  bool stats_on_ = false;
  /// Attribution profiling (obs::profiling_enabled at prepare time):
  /// per-task durations + critical-path analysis.
  bool prof_on_ = false;
  std::vector<double> lane_busy_us_;
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> idle_polls_{0};
};

}  // namespace antmd::util
