// Deterministic parallel execution layer — compatibility shim.
//
// ExecutionConfig describes how much host parallelism a simulation may use.
// ExecutionContext is now a thin facade over util::TaskRuntime (the
// persistent worker pool behind util::TaskGraph): parallel_for runs as a
// one-task graph, and graph-aware subsystems reach the shared runtime via
// runtime() so an engine, its neighbor list and its step graph all reuse
// one pool.  The contract every caller relies on is unchanged: with
// deterministic reduction enabled (the default), results are bit-identical
// at any thread count, because all shared accumulations are either
// order-independent fixed-point sums or are merged in a fixed index order
// after the parallel region.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "util/task_graph.hpp"

namespace antmd {

struct ExecutionConfig {
  /// Worker lanes for the hot loops (step task graphs, node-partition force
  /// evaluation, neighbor-list rebuild, replica chunks).  1 = fully serial
  /// (no workers are spawned); 0 = use hardware_concurrency.
  size_t threads = 1;
  /// Merge per-node partial forces in fixed node-index order so the virial
  /// (double precision) matches the serial path bitwise too.  Disabling it
  /// merges partials as they complete; fixed-point forces and energies stay
  /// bit-identical either way, only the virial's fp summation order varies.
  bool deterministic_reduction = true;
  /// Optional externally owned worker pool.  When set (and parallel), the
  /// ExecutionContext reuses it instead of spawning its own workers — this
  /// is how the fleet scheduler multiplexes hundreds of engines over one
  /// TaskRuntime without a thread explosion.  Null (the default) keeps the
  /// one-pool-per-engine behavior.  Results are unaffected: the grain
  /// partition is a function of `threads`, never of the pool identity.
  std::shared_ptr<util::TaskRuntime> shared_runtime;
};

/// Shared parallel context.  One per Simulation/engine; cheap to share via
/// shared_ptr between an engine and its neighbor list so they reuse one
/// worker pool.
class ExecutionContext {
 public:
  explicit ExecutionContext(ExecutionConfig config);

  /// Never returns null: threads <= 1 yields a serial context.
  static std::shared_ptr<ExecutionContext> create(ExecutionConfig config);

  /// Effective worker count (>= 1).
  [[nodiscard]] size_t threads() const { return threads_; }
  [[nodiscard]] bool deterministic_reduction() const {
    return config_.deterministic_reduction;
  }
  /// True when worker lanes exist and parallel_for actually fans out.
  [[nodiscard]] bool parallel() const {
    return runtime_ && runtime_->parallel();
  }

  /// The persistent worker pool backing this context, for callers that
  /// build real task graphs instead of flat loops.  Null when serial.
  [[nodiscard]] const std::shared_ptr<util::TaskRuntime>& runtime() const {
    return runtime_;
  }

  /// Runs fn(i) for i in [0, count).  Serial contexts run in index order on
  /// the calling thread; parallel contexts make no ordering promise, so the
  /// caller must keep per-index outputs disjoint and reduce afterwards.
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

 private:
  ExecutionConfig config_;
  size_t threads_ = 1;
  std::shared_ptr<util::TaskRuntime> runtime_;  ///< null when threads_ == 1
};

}  // namespace antmd
