// Deterministic parallel execution layer.
//
// ExecutionConfig describes how much host parallelism a simulation may use;
// ExecutionContext owns the ThreadPool (if any) and exposes parallel_for
// with a serial in-order fallback.  The contract every caller relies on:
// with deterministic reduction enabled (the default), results are
// bit-identical at any thread count, because all shared accumulations are
// either order-independent fixed-point sums or are merged in a fixed index
// order after the parallel region.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "util/thread_pool.hpp"

namespace antmd {

struct ExecutionConfig {
  /// Worker threads for the hot loops (node-partition force evaluation,
  /// neighbor-list rebuild, replica chunks).  1 = fully serial (no pool is
  /// created); 0 = use hardware_concurrency.
  size_t threads = 1;
  /// Merge per-node partial forces in fixed node-index order so the virial
  /// (double precision) matches the serial path bitwise too.  Disabling it
  /// merges partials as they complete; fixed-point forces and energies stay
  /// bit-identical either way, only the virial's fp summation order varies.
  bool deterministic_reduction = true;
};

/// Shared parallel context.  One per Simulation/engine; cheap to share via
/// shared_ptr between an engine and its neighbor list so they reuse one
/// pool.
class ExecutionContext {
 public:
  explicit ExecutionContext(ExecutionConfig config);

  /// Never returns null: threads <= 1 yields a serial context.
  static std::shared_ptr<ExecutionContext> create(ExecutionConfig config);

  /// Effective worker count (>= 1).
  [[nodiscard]] size_t threads() const { return threads_; }
  [[nodiscard]] bool deterministic_reduction() const {
    return config_.deterministic_reduction;
  }
  /// True when a pool exists and parallel_for actually fans out.
  [[nodiscard]] bool parallel() const { return pool_ != nullptr; }

  /// Runs fn(i) for i in [0, count).  Serial contexts run in index order on
  /// the calling thread; parallel contexts make no ordering promise, so the
  /// caller must keep per-index outputs disjoint and reduce afterwards.
  void parallel_for(size_t count, const std::function<void(size_t)>& fn);

 private:
  ExecutionConfig config_;
  size_t threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  ///< null when threads_ == 1
};

}  // namespace antmd
