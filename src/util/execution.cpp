#include "util/execution.hpp"

#include <thread>

namespace antmd {

ExecutionContext::ExecutionContext(ExecutionConfig config) : config_(config) {
  size_t n = config.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  threads_ = n;
  if (threads_ > 1) {
    runtime_ = config.shared_runtime ? config.shared_runtime
                                     : util::TaskRuntime::create(threads_);
  }
}

std::shared_ptr<ExecutionContext> ExecutionContext::create(
    ExecutionConfig config) {
  return std::make_shared<ExecutionContext>(config);
}

void ExecutionContext::parallel_for(size_t count,
                                    const std::function<void(size_t)>& fn) {
  if (!runtime_) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  runtime_->parallel_for(count, fn);
}

}  // namespace antmd
