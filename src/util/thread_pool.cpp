#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace antmd {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

/// Shared work-stealing context; tasks hold it by shared_ptr so stale queue
/// entries that run after parallel_for has returned are harmless no-ops.
struct ForContext {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t count = 0;
  std::function<void(size_t)> fn;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  void drain() {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == count) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(size_t count,
                              const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  auto ctx = std::make_shared<ForContext>();
  ctx->count = count;
  ctx->fn = fn;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t t = 0; t < workers_.size(); ++t) {
      tasks_.push([ctx] { ctx->drain(); });
    }
  }
  cv_.notify_all();

  // The calling thread participates so a single-core host still progresses.
  ctx->drain();

  {
    std::unique_lock<std::mutex> lock(ctx->done_mutex);
    ctx->done_cv.wait(lock, [&] { return ctx->done.load() >= count; });
  }
  if (ctx->first_error) std::rethrow_exception(ctx->first_error);
}

}  // namespace antmd
