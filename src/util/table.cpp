#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace antmd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ANTMD_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  ANTMD_REQUIRE(cells.size() == headers_.size(),
                "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row,
                      std::ostringstream& os) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(headers_, os);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

}  // namespace antmd
