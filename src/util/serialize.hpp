// Binary serialization primitives for checkpointing.
//
// BinaryWriter appends little-endian PODs to an in-memory buffer;
// BinaryReader is the bounds-checked inverse and throws IoError on any
// overrun, so truncated or corrupt checkpoint payloads surface as typed
// errors instead of silently garbage state.  Checkpointable is the
// interface every resumable driver (md::Simulation, MachineSimulation, the
// sampling methods) implements; the on-disk container lives in
// io/checkpoint.hpp.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace antmd::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte range.
[[nodiscard]] uint32_t crc32(const void* data, size_t size);

/// CRC-64 (ECMA-182, reflected polynomial 0xC96C5795D7870F42) over a byte
/// range.  The 64-bit width is what the SDC audit layer digests state
/// blocks with: at fleet scale a 32-bit check collides often enough to
/// matter, a 64-bit one does not.
[[nodiscard]] uint64_t crc64(const void* data, size_t size);

/// Incremental CRC-64: fold `size` bytes into a running digest.  Start
/// from crc64_init() and finish with crc64_final() — equivalent to one
/// crc64() call over the concatenated ranges.
[[nodiscard]] constexpr uint64_t crc64_init() { return ~uint64_t{0}; }
[[nodiscard]] uint64_t crc64_update(uint64_t crc, const void* data,
                                    size_t size);
[[nodiscard]] constexpr uint64_t crc64_final(uint64_t crc) { return ~crc; }

/// Append-only little-endian binary buffer.
class BinaryWriter {
 public:
  void write_bytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "write_pod needs a trivially copyable type");
    write_bytes(&v, sizeof(T));
  }

  void write_u32(uint32_t v) { write_pod(v); }
  void write_u64(uint64_t v) { write_pod(v); }
  void write_i64(int64_t v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }
  void write_bool(bool v) { write_pod(static_cast<uint8_t>(v ? 1 : 0)); }

  void write_string(std::string_view s) {
    write_u64(s.size());
    write_bytes(s.data(), s.size());
  }

  template <typename T>
  void write_pod_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "write_pod_vector needs a trivially copyable type");
    write_u64(v.size());
    if (!v.empty()) write_bytes(v.data(), v.size() * sizeof(T));
  }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a serialized byte range (not owning).
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : buf_(data) {}

  void read_bytes(void* out, size_t size) {
    if (size > remaining()) {
      throw IoError("serialized data truncated: wanted " +
                    std::to_string(size) + " bytes, have " +
                    std::to_string(remaining()));
    }
    std::memcpy(out, buf_.data() + pos_, size);
    pos_ += size;
  }

  template <typename T>
  [[nodiscard]] T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "read_pod needs a trivially copyable type");
    T v;
    read_bytes(&v, sizeof(T));
    return v;
  }

  [[nodiscard]] uint32_t read_u32() { return read_pod<uint32_t>(); }
  [[nodiscard]] uint64_t read_u64() { return read_pod<uint64_t>(); }
  [[nodiscard]] int64_t read_i64() { return read_pod<int64_t>(); }
  [[nodiscard]] double read_f64() { return read_pod<double>(); }
  [[nodiscard]] bool read_bool() { return read_pod<uint8_t>() != 0; }

  [[nodiscard]] std::string read_string() {
    uint64_t n = read_u64();
    check_count(n, 1);
    std::string s(n, '\0');
    read_bytes(s.data(), n);
    return s;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> read_pod_vector() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "read_pod_vector needs a trivially copyable type");
    uint64_t n = read_u64();
    check_count(n, sizeof(T));
    std::vector<T> v(n);
    if (n) read_bytes(v.data(), n * sizeof(T));
    return v;
  }

  [[nodiscard]] size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] size_t position() const { return pos_; }

 private:
  /// Element counts are validated against the remaining bytes before any
  /// allocation, so a corrupt length field cannot trigger a huge alloc.
  void check_count(uint64_t count, size_t elem_size) const {
    if (count * elem_size > remaining()) {
      throw IoError("serialized data truncated: count " +
                    std::to_string(count) + " exceeds remaining bytes");
    }
  }

  std::string_view buf_;
  size_t pos_ = 0;
};

/// A component whose full dynamic state can round-trip through a binary
/// checkpoint.  The contract is bit-exact resume: restoring into a freshly
/// constructed object (same constructor arguments) and continuing must
/// reproduce the uninterrupted run exactly.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes everything needed to resume into `out`.
  virtual void save_checkpoint(BinaryWriter& out) const = 0;

  /// Inverse of save_checkpoint.  Throws IoError on malformed payloads and
  /// Error when the payload is incompatible (e.g. atom-count mismatch).
  virtual void restore_checkpoint(BinaryReader& in) = 0;
};

}  // namespace antmd::util
