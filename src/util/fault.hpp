// Deterministic fault injection for robustness testing.
//
// Long production runs die from exactly the failures that never happen in
// short CI runs: full disks, torn checkpoint writes, numerical blow-ups,
// dead torus nodes.  This registry lets tests (and chaos-style soak runs)
// arm those failures deterministically — a fault fires after a fixed number
// of qualifying events, or with a seed-driven probability per event — so
// every recovery path in io/, md/ and runtime/ is exercisable from CI with
// reproducible schedules.
//
// Injection points poll should_fire(kind) at the site where the real
// failure would occur:
//   kIoWriteFail   io::checkpoint atomic write    -> throws IoError (ENOSPC)
//   kIoShortWrite  io::checkpoint atomic write    -> truncated blob is
//                  renamed into place (a torn write the CRC must catch);
//                  also polled by io::XyzWriter::write_frame, where half a
//                  trajectory frame reaches the disk and io::repair_xyz
//                  must truncate back to the last complete frame
//   kNanForce      Simulation/MachineSimulation   -> poisons one atom's
//                  force accumulator with kPoisonQuanta
//   kNodeFail      DistributedEngine::redistribute -> marks a torus node
//                  failed; its work is remapped to surviving nodes
//   kLinkDrop      machine::ReliableTransport      -> a message is dropped
//                  on its torus link; the ack times out and the transport
//                  retransmits with exponential backoff, down-marking the
//                  link when the retry budget runs out
//   kPacketCorrupt machine::ReliableTransport      -> a message payload is
//                  bit-flipped in flight; the per-message CRC-32 rejects it
//                  and the receiver nacks for a retransmit
//   kNodeHang      machine::ReliableTransport      -> a node stops acking
//                  for a modeled interval; the step stalls until the
//                  supervisor's phase watchdog fires and remaps the node
//   kBitFlipState  resilience::Auditor (per step)  -> flips one bit of the
//                  dynamic fixed-point state (positions/velocities); no
//                  exception fires — only the audit digest/shadow-replay
//                  path can see it.  payload selects the bit (see
//                  resilience/audit.hpp)
//   kBitFlipTable  resilience::Auditor (per step)  -> flips one bit of a
//                  registered static region (packed Hermite tables,
//                  topology arrays, exclusion lists); the scrubber must
//                  detect and repair it from the golden mirror
//   kBitFlipCheckpointBuffer resilience::Auditor   -> flips one bit of the
//                  retained audit snapshot buffer, exercising the
//                  "recovery source itself corrupted" path
//
// The injector is process-global and thread-safe: injection points may sit
// inside task-graph worker lanes (the cluster-kernel force poison fires
// from the step DAG's reduction task, on whichever lane picks it up), so
// every registry operation synchronizes on an internal lock behind a
// relaxed armed-plan fast path — when nothing is armed, should_fire() is a
// single atomic load.  Event/fire counts stay deterministic because the
// *sites* poll deterministically; which thread polls never matters.
//
// Scopes (fleet multi-tenancy): a plan armed with arm_scoped(scope, plan)
// fires only while that scope is current (fault::CurrentScope RAII, set by
// the fleet scheduler around one run's time slice), and counts qualifying
// events only while current.  Scope 0 is the global scope: plans armed with
// plain arm() behave exactly as before and fire regardless of the current
// scope.  This is what lets a chaos schedule target one tenant of a
// 256-run fleet without its siblings ever observing a fault.
//
// Tests use ScopedFault so a failing test cannot leak an armed fault into
// the next one.
#pragma once

#include <cstdint>
#include <string>

namespace antmd::fault {

enum class FaultKind : uint32_t {
  kIoWriteFail = 0,   ///< checkpoint write throws IoError (disk full)
  kIoShortWrite = 1,  ///< checkpoint blob is truncated but "succeeds"
  kNanForce = 2,      ///< one atom's force result is poisoned
  kNodeFail = 3,      ///< a modeled torus node drops out
  kLinkDrop = 4,      ///< a torus link silently drops a modeled message
  kPacketCorrupt = 5, ///< a modeled message payload is corrupted in flight
  kNodeHang = 6,      ///< a modeled node stops responding for an interval
  kBitFlipState = 7,  ///< one bit of dynamic fixed-point state flips
  kBitFlipTable = 8,  ///< one bit of a static table/topology region flips
  kBitFlipCheckpointBuffer = 9,  ///< one bit of a retained snapshot flips
  kCount = 10,
};

/// Sentinel force quanta injected by kNanForce: dequantizes to ~±5.5e11
/// kcal/mol/Å, far beyond any physical force, so health checks treat it
/// like a non-finite value.
inline constexpr int64_t kPoisonQuanta = int64_t{1} << 53;

struct FaultPlan {
  FaultKind kind = FaultKind::kIoWriteFail;
  /// Number of qualifying events to let pass before the fault can fire.
  uint64_t fire_after = 0;
  /// How many times to fire once eligible (-1 = every eligible event).
  int64_t count = 1;
  /// If in (0, 1), each eligible event fires with this probability using a
  /// splitmix64 stream keyed by `seed` (deterministic across runs/threads).
  double probability = 1.0;
  uint64_t seed = 0;
  /// Kind-specific payload (kNodeFail: node id; kNanForce: atom index;
  /// kNodeHang: node id; kLinkDrop/kPacketCorrupt: unused — the fault hits
  /// whichever message polls the injection point).
  uint64_t payload = 0;
};

/// Tenancy scope for fault plans.  0 is the global scope (plain arm()).
using ScopeId = uint64_t;
inline constexpr ScopeId kGlobalScope = 0;

/// Arms a fault in the global scope (replacing any armed global plan of the
/// same kind).
void arm(const FaultPlan& plan);

/// Arms a fault visible only while `scope` is current (replacing any armed
/// plan of the same kind in that scope).  scope == kGlobalScope is arm().
void arm_scoped(ScopeId scope, const FaultPlan& plan);

/// Disarms one kind / all kinds in the global scope.
void disarm(FaultKind kind);
void disarm_all();

/// Disarms every plan of one scope (fleet teardown of a finished tenant).
void disarm_scope(ScopeId scope);

/// Sets/reads the current tenancy scope.  Scoped plans only see events that
/// occur while their scope is current; the global scope's plans see all.
void set_current_scope(ScopeId scope);
[[nodiscard]] ScopeId current_scope();

/// RAII current-scope switch (fleet scheduler around one run's time slice).
class CurrentScope {
 public:
  explicit CurrentScope(ScopeId scope) : previous_(current_scope()) {
    set_current_scope(scope);
  }
  ~CurrentScope() { set_current_scope(previous_); }
  CurrentScope(const CurrentScope&) = delete;
  CurrentScope& operator=(const CurrentScope&) = delete;

 private:
  ScopeId previous_;
};

/// True if a plan (possibly exhausted) is armed for `kind` globally.
[[nodiscard]] bool armed(FaultKind kind);

/// Polls the injection point: counts the event, decides deterministically
/// whether the fault fires now, and if so copies the plan's payload out.
/// The current scope's plan (if any) takes precedence over a global plan.
/// Never fires when nothing is armed (the zero-overhead common case).
[[nodiscard]] bool should_fire(FaultKind kind, uint64_t* payload = nullptr);

/// Number of times `kind` actually fired since it was last armed (global
/// scope; the scoped variant reports one tenant's schedule).
[[nodiscard]] uint64_t fired_count(FaultKind kind);
[[nodiscard]] uint64_t fired_count_scoped(ScopeId scope, FaultKind kind);

/// Number of qualifying events `kind`'s global plan has counted since it
/// was armed.  Checkpoint/resume flows use this to re-arm the remaining
/// schedule at the same absolute events: re-arming with
/// fire_after' = fire_after - event_count(kind) keeps the fault firing at
/// the same absolute step after a resume.
[[nodiscard]] uint64_t event_count(FaultKind kind);

/// Suspends all fault injection while at least one pause is live:
/// should_fire() returns false WITHOUT counting the event, so a paused
/// region is invisible to every armed schedule.  The audit layer's shadow
/// re-execution wraps itself in this — replayed steps must not consume
/// fault events, or the chaos schedule would drift relative to the
/// uninterrupted run.  Process-global (injection points poll from
/// task-graph worker lanes, so a thread-local pause would miss them);
/// nestable.
class InjectionPause {
 public:
  InjectionPause();
  ~InjectionPause();
  InjectionPause(const InjectionPause&) = delete;
  InjectionPause& operator=(const InjectionPause&) = delete;
};

/// Parses a fault spec `kind[:fire_after[:count[:payload]]]` — e.g.
/// "link_drop:40", "nan_force:10:1", "node_hang:25:1:5" — into a plan.
/// Kinds: io_write_fail io_short_write nan_force node_fail link_drop
/// packet_corrupt node_hang bit_flip_state bit_flip_table
/// bit_flip_checkpoint_buffer.  Throws ConfigError on a malformed spec.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// RAII arm/disarm for tests: disarms the plan's kind on scope exit.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) : kind_(plan.kind) {
    arm(plan);
  }
  ~ScopedFault() { disarm(kind_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  FaultKind kind_;
};

}  // namespace antmd::fault
