#include "util/task_graph.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace antmd::util {

namespace {

/// Lane identity of the calling thread.  Worker threads pin theirs for
/// life; the thread driving a run (or a nested serial region) scopes it.
thread_local TaskRuntime* tl_runtime = nullptr;
thread_local size_t tl_lane = 0;

struct LaneScope {
  LaneScope(TaskRuntime* runtime, size_t lane)
      : saved_runtime_(tl_runtime), saved_lane_(tl_lane) {
    tl_runtime = runtime;
    tl_lane = lane;
  }
  ~LaneScope() {
    tl_runtime = saved_runtime_;
    tl_lane = saved_lane_;
  }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;

 private:
  TaskRuntime* saved_runtime_;
  size_t saved_lane_;
};

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Spin iterations before a worker parks between runs.  Short on purpose:
/// the step phases that follow each other within microseconds stay in the
/// spin window, while an idle simulation (or an oversubscribed host) gets
/// its cores back quickly.
constexpr int kSpinIters = 4096;

struct ExecMetrics {
  obs::Counter& runs;
  obs::Counter& tasks;
  obs::Counter& grains;
  obs::Counter& steals;
  obs::Counter& idle_polls;
  obs::Counter& busy_ns;
  obs::Gauge& lanes;
  obs::Gauge& busy_share;
  obs::Gauge& critical_path_share;
};

ExecMetrics& exec_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static ExecMetrics m{reg.counter("md.exec.run.count"),
                       reg.counter("md.exec.task.count"),
                       reg.counter("md.exec.grain.count"),
                       reg.counter("md.exec.steal.count"),
                       reg.counter("md.exec.idle.count"),
                       reg.counter("md.exec.busy.time_ns"),
                       reg.gauge("md.exec.lanes"),
                       reg.gauge("md.exec.busy_share"),
                       reg.gauge("md.exec.critical_path_share")};
  return m;
}

}  // namespace

void TaskGraph::SpinLock::pause() { cpu_pause(); }

// ---------------------------------------------------------------------------
// ChunkPlan

ChunkPlan plan_chunks(size_t items, size_t min_per_chunk, size_t max_chunks) {
  ChunkPlan plan;
  plan.items = items;
  if (items == 0) return plan;
  ANTMD_REQUIRE(min_per_chunk > 0 && max_chunks > 0,
                "plan_chunks needs positive bounds");
  const size_t want = (items + min_per_chunk - 1) / min_per_chunk;
  plan.chunk_len = (items + std::min(want, max_chunks) - 1) /
                   std::min(want, max_chunks);
  plan.chunks = (items + plan.chunk_len - 1) / plan.chunk_len;
  return plan;
}

// ---------------------------------------------------------------------------
// TaskRuntime

TaskRuntime::TaskRuntime(size_t lanes) {
  if (lanes == 0) {
    lanes = std::thread::hardware_concurrency();
    if (lanes == 0) lanes = 1;
  }
  lanes_ = lanes;
  workers_.reserve(lanes_ - 1);
  for (size_t lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

TaskRuntime::~TaskRuntime() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_ptr<TaskRuntime> TaskRuntime::create(size_t lanes) {
  return std::make_shared<TaskRuntime>(lanes);
}

size_t TaskRuntime::current_lane() { return tl_lane; }

bool TaskRuntime::is_current() const { return tl_runtime == this; }

void TaskRuntime::worker_loop(size_t lane) {
  tl_runtime = this;
  tl_lane = lane;
  uint64_t seen = 0;
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      bool advanced = false;
      for (int spin = 0; spin < kSpinIters; ++spin) {
        e = epoch_.load(std::memory_order_acquire);
        if (e != seen || stop_.load(std::memory_order_relaxed)) {
          advanced = true;
          break;
        }
        if ((spin & 63) == 63) {
          std::this_thread::yield();
        } else {
          cpu_pause();
        }
      }
      if (!advanced) {
        std::unique_lock<std::mutex> lock(park_mutex_);
        parked_.fetch_add(1, std::memory_order_relaxed);
        park_cv_.wait(lock, [&] {
          return epoch_.load(std::memory_order_relaxed) != seen ||
                 stop_.load(std::memory_order_relaxed);
        });
        parked_.fetch_sub(1, std::memory_order_relaxed);
      }
      continue;
    }
    seen = e;
    // Register before reading active_: run_prepared() clears active_ first
    // and then waits for inside_ == 0, so any worker that observed a live
    // graph is counted until it lets go of it.
    inside_.fetch_add(1, std::memory_order_acq_rel);
    TaskGraph* graph = active_.load(std::memory_order_acquire);
    if (graph != nullptr) graph->work(lane);
    inside_.fetch_sub(1, std::memory_order_release);
  }
}

void TaskRuntime::run_prepared(TaskGraph& graph) {
  std::lock_guard<std::mutex> serial(run_mutex_);
  active_.store(&graph, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  if (parked_.load(std::memory_order_relaxed) > 0) {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
    }
    park_cv_.notify_all();
  }
  {
    LaneScope scope(this, 0);
    graph.work(0);
  }
  active_.store(nullptr, std::memory_order_release);
  // Workers drain within a few instructions normally, but on an
  // oversubscribed host one may be descheduled mid-graph: yield rather
  // than burning the caller's whole quantum pausing.
  int spins = 0;
  while (inside_.load(std::memory_order_acquire) != 0) {
    if ((++spins & 63) == 0) {
      std::this_thread::yield();
    } else {
      cpu_pause();
    }
  }
}

void TaskRuntime::parallel_for(size_t count,
                               const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (lanes_ <= 1 || tl_runtime == this) {
    // Serial runtime, or re-entry from inside one of our own task bodies:
    // run inline, in index order, as lane 0 of a nested serial region.
    LaneScope scope(tl_runtime, 0);
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  TaskGraph graph(shared_from_this(), "util.parallel_for");
  graph.add_parallel(
      "util.parallel_for", [count] { return count; },
      [&fn](size_t i) { fn(i); });
  graph.run();
}

// ---------------------------------------------------------------------------
// TaskGraph

TaskGraph::TaskGraph(std::shared_ptr<TaskRuntime> runtime, const char* name)
    : name_(name), runtime_(std::move(runtime)) {}

size_t TaskGraph::lanes() const {
  return runtime_ ? runtime_->lanes() : size_t{1};
}

bool TaskGraph::parallel() const { return runtime_ && runtime_->parallel(); }

TaskId TaskGraph::add_node(const char* name, std::vector<TaskId> deps) {
  const auto id = static_cast<TaskId>(nodes_.size());
  Node& node = nodes_.emplace_back();
  node.name = name;
  for (TaskId dep : deps) {
    ANTMD_REQUIRE(dep < id, "task dependency must reference an earlier task");
    nodes_[dep].children.push_back(id);
  }
  node.n_deps = static_cast<uint32_t>(deps.size());
  return id;
}

TaskId TaskGraph::add(const char* name, std::function<void()> fn,
                      std::vector<TaskId> deps) {
  ANTMD_REQUIRE(fn != nullptr, "task body must not be null");
  const TaskId id = add_node(name, std::move(deps));
  nodes_[id].fn = std::move(fn);
  return id;
}

TaskId TaskGraph::add_parallel(const char* name, std::function<size_t()> count,
                               std::function<void(size_t)> body,
                               std::vector<TaskId> deps) {
  ANTMD_REQUIRE(count != nullptr && body != nullptr,
                "parallel task needs a count provider and a body");
  const TaskId id = add_node(name, std::move(deps));
  nodes_[id].count_fn = std::move(count);
  nodes_[id].body = std::move(body);
  return id;
}

TaskId TaskGraph::add_reduction(const char* name, std::function<void()> fn,
                                std::vector<TaskId> deps) {
  ANTMD_REQUIRE(!deps.empty(), "a reduction folds something: deps required");
  return add(name, std::move(fn), std::move(deps));
}

void TaskGraph::run() {
  if (nodes_.empty()) return;
  if (!parallel() || runtime_->is_current()) {
    // Serial runtime, or a nested graph on a runtime this thread is
    // already working for: the serial schedule is the same arithmetic.
    run_serial();
    return;
  }
  const bool stats = obs::enabled();
  const double t0 = stats ? obs::now_us() : 0.0;
  prepare();
  if (completed_.load(std::memory_order_relaxed) <
      static_cast<uint32_t>(nodes_.size())) {
    runtime_->run_prepared(*this);
  }
  finish(stats ? obs::now_us() - t0 : 0.0);
}

void TaskGraph::run_serial() {
  // Insertion order is a topological order (add() enforces dep < id), and
  // it is exactly the arithmetic the parallel run reproduces bitwise.
  LaneScope scope(tl_runtime, 0);
  prof_on_ = obs::profiling_enabled();
  for (Node& node : nodes_) {
    obs::TracePhase span(node.name, "exec");
    const double t0 = prof_on_ ? obs::now_us() : 0.0;
    if (node.body) {
      const size_t grains = node.count_fn();
      for (size_t g = 0; g < grains; ++g) node.body(g);
    } else {
      node.fn();
    }
    if (prof_on_) {
      node.busy_ns.store(
          static_cast<uint64_t>((obs::now_us() - t0) * 1e3),
          std::memory_order_relaxed);
    }
  }
  // The serial schedule profiles through the same analysis: the critical
  // path is a property of the DAG and the durations, not of the lane count.
  if (prof_on_) record_profile();
}

void TaskGraph::prepare() {
  completed_.store(0, std::memory_order_relaxed);
  cancelled_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  ready_.clear();
  ready_head_ = 0;
  stats_on_ = obs::enabled();
  prof_on_ = obs::profiling_enabled();
  steals_.store(0, std::memory_order_relaxed);
  idle_polls_.store(0, std::memory_order_relaxed);
  if (stats_on_) lane_busy_us_.assign(lanes(), 0.0);
  for (Node& node : nodes_) {
    node.pending.store(node.n_deps, std::memory_order_relaxed);
    node.first_lane.store(-1, std::memory_order_relaxed);
    if (prof_on_) node.busy_ns.store(0, std::memory_order_relaxed);
  }
  for (uint32_t id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].n_deps == 0) make_ready(id);
  }
}

void TaskGraph::push_ready(uint32_t id) {
  ready_lock_.lock();
  ready_.push_back(id);
  ready_lock_.unlock();
}

void TaskGraph::make_ready(uint32_t id) {
  Node& node = nodes_[id];
  if (node.body) {
    // Resolve the grain count exactly once, single-threaded: only the lane
    // that completed the last dependency reaches this point.
    size_t grains = 0;
    if (!cancelled_.load(std::memory_order_relaxed)) {
      try {
        grains = node.count_fn();
      } catch (...) {
        record_error();
      }
    }
    node.grains = grains;
    if (grains == 0) {
      on_node_done(node);
      return;
    }
    node.cursor.store(0, std::memory_order_relaxed);
    node.done_grains.store(0, std::memory_order_relaxed);
  }
  push_ready(id);
}

void TaskGraph::on_node_done(Node& node) {
  completed_.fetch_add(1, std::memory_order_acq_rel);
  for (TaskId child : node.children) {
    if (nodes_[child].pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      make_ready(child);
    }
  }
}

void TaskGraph::work(size_t lane) {
  const auto total = static_cast<uint32_t>(nodes_.size());
  int idle = 0;
  while (completed_.load(std::memory_order_acquire) < total) {
    if (execute_one(lane)) {
      idle = 0;
      continue;
    }
    if (stats_on_) idle_polls_.fetch_add(1, std::memory_order_relaxed);
    ++idle;
    if (idle >= 4096) {
      // Long idle stretch (another lane owns a serial task, or the host
      // is oversubscribed): sleep instead of yield-spinning.  A yielding
      // lane still shares the core roughly evenly under CFS, which on an
      // oversubscribed host steals half the cycles from the lane doing
      // real work; 50us naps cost at most that latency per wake-up.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else if ((idle & 63) == 0) {
      std::this_thread::yield();
    } else {
      cpu_pause();
    }
  }
}

bool TaskGraph::execute_one(size_t lane) {
  uint32_t id;
  {
    ready_lock_.lock();
    if (ready_head_ >= ready_.size()) {
      ready_lock_.unlock();
      return false;
    }
    id = ready_[ready_head_++];
    ready_lock_.unlock();
  }
  Node& node = nodes_[id];
  if (node.body) {
    drain_grains(node, id, lane);
  } else {
    run_serial_body(node, lane);
    on_node_done(node);
  }
  return true;
}

void TaskGraph::run_serial_body(Node& node, size_t lane) {
  if (cancelled_.load(std::memory_order_relaxed)) return;
  const bool timed = stats_on_ || prof_on_;
  const double t0 = timed ? obs::now_us() : 0.0;
  {
    obs::TracePhase span(node.name, "exec");
    try {
      node.fn();
    } catch (...) {
      record_error();
    }
  }
  if (timed) {
    const double dur_us = obs::now_us() - t0;
    if (stats_on_) lane_busy_us_[lane] += dur_us;
    if (prof_on_) {
      node.busy_ns.fetch_add(static_cast<uint64_t>(dur_us * 1e3),
                             std::memory_order_relaxed);
    }
  }
}

void TaskGraph::drain_grains(Node& node, uint32_t id, size_t lane) {
  if (stats_on_) {
    int32_t expected = -1;
    if (!node.first_lane.compare_exchange_strong(
            expected, static_cast<int32_t>(lane),
            std::memory_order_relaxed) &&
        expected != static_cast<int32_t>(lane)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool timed = stats_on_ || prof_on_;
  const double t0 = timed ? obs::now_us() : 0.0;
  bool republished = false;
  size_t ran = 0;
  {
    obs::TracePhase span(node.name, "exec");
    const bool skip = cancelled_.load(std::memory_order_relaxed);
    for (;;) {
      const size_t g = node.cursor.fetch_add(1, std::memory_order_relaxed);
      if (g >= node.grains) break;
      // Leave one breadcrumb in the ready list so idle lanes can join this
      // node's remaining grains; stale breadcrumbs after exhaustion are
      // harmless no-ops.
      if (!republished && g + 1 < node.grains) {
        push_ready(id);
        republished = true;
      }
      if (!skip) {
        try {
          node.body(g);
        } catch (...) {
          record_error();
        }
      }
      ++ran;
      if (node.done_grains.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          node.grains) {
        on_node_done(node);
        break;
      }
    }
  }
  if (timed && ran > 0) {
    const double dur_us = obs::now_us() - t0;
    if (stats_on_) lane_busy_us_[lane] += dur_us;
    if (prof_on_) {
      // Summed over every lane that drained grains: the task's total work.
      node.busy_ns.fetch_add(static_cast<uint64_t>(dur_us * 1e3),
                             std::memory_order_relaxed);
    }
  }
}

void TaskGraph::record_error() {
  cancelled_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(error_mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void TaskGraph::finish(double wall_us) {
  if (stats_on_) {
    auto& m = exec_metrics();
    m.runs.add(1);
    m.tasks.add(nodes_.size());
    uint64_t grains = 0;
    for (const Node& node : nodes_) {
      if (node.body) grains += node.grains;
    }
    m.grains.add(grains);
    m.steals.add(steals_.load(std::memory_order_relaxed));
    m.idle_polls.add(idle_polls_.load(std::memory_order_relaxed));
    double busy_us = 0.0;
    double max_lane_us = 0.0;
    for (double b : lane_busy_us_) {
      busy_us += b;
      max_lane_us = std::max(max_lane_us, b);
    }
    m.busy_ns.add(static_cast<uint64_t>(busy_us * 1e3));
    m.lanes.set(static_cast<double>(lanes()));
    if (wall_us > 0.0) {
      m.busy_share.set(busy_us / (wall_us * static_cast<double>(lanes())));
      m.critical_path_share.set(max_lane_us / wall_us);
    }
  }
  if (prof_on_ && !first_error_) record_profile();
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void TaskGraph::record_profile() {
  const size_t n = nodes_.size();
  if (n == 0) return;
  // Durations are each task's total work (grains summed over lanes), so the
  // serial and parallel schedules analyze the same quantity; the critical
  // path is then the DAG's lower bound on step latency under perfect
  // parallelism, and slack/what-if quantify the overlap opportunities.
  std::vector<double> dur(n), in_ef(n, 0.0), ef(n), tail(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    dur[i] = static_cast<double>(
                 nodes_[i].busy_ns.load(std::memory_order_relaxed)) *
             1e-3;  // ns -> us
  }
  // Forward pass over insertion order (a topological order): earliest
  // finish of each task given its dependencies.
  double critical = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ef[i] = in_ef[i] + dur[i];
    critical = std::max(critical, ef[i]);
    for (TaskId c : nodes_[i].children) in_ef[c] = std::max(in_ef[c], ef[i]);
  }
  // Backward pass: longest downstream chain hanging off each task.
  for (size_t i = n; i-- > 0;) {
    double down = 0.0;
    for (TaskId c : nodes_[i].children) down = std::max(down, tail[c]);
    tail[i] = dur[i] + down;
  }
  double busy = 0.0;
  for (double d : dur) busy += d;

  // What-if: critical path with one task's duration zeroed — the most a
  // perfect optimization of that task could shorten the step.
  auto critical_without = [&](size_t skip) {
    std::vector<double> in(n, 0.0);
    double longest = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double fin = in[i] + (i == skip ? 0.0 : dur[i]);
      longest = std::max(longest, fin);
      for (TaskId c : nodes_[i].children) in[c] = std::max(in[c], fin);
    }
    return longest;
  };

  const double eps = critical * 1e-12;
  std::vector<obs::TaskSpan> spans(n);
  for (size_t i = 0; i < n; ++i) {
    const double through = in_ef[i] + tail[i];  // longest path through i
    spans[i].name = nodes_[i].name;
    spans[i].busy_us = dur[i];
    spans[i].slack_us = std::max(0.0, critical - through);
    spans[i].whatif_saving_us = critical - critical_without(i);
    spans[i].on_critical_path = through >= critical - eps;
  }
  obs::Profile::global().record_graph(name_, critical, busy, spans);
}

}  // namespace antmd::util
