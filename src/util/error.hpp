// Error handling primitives for antmd.
//
// All recoverable failures are reported with antmd::Error (derived from
// std::runtime_error); precondition violations use ANTMD_REQUIRE which
// throws with file/line context so tests can assert on failure behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace antmd {

/// Base class for all antmd exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied configuration is invalid.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge or produces
/// out-of-range values (e.g. SHAKE non-convergence, particle blow-up).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures: unopenable files, short/failed writes, and
/// missing, truncated, or corrupt (wrong magic / CRC mismatch) checkpoint
/// and trajectory files.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* expr, const char* file,
                                        int line, const std::string& msg);
}  // namespace detail

}  // namespace antmd

/// Precondition check: throws antmd::Error with context when `expr` is false.
#define ANTMD_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::antmd::detail::throw_require_failure(#expr, __FILE__, __LINE__,   \
                                             (msg));                      \
    }                                                                     \
  } while (false)
