#include "util/cli.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace antmd {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         const std::string& default_value) {
  ANTMD_REQUIRE(!flags_.count(name), "duplicate flag --" + name);
  flags_[name] = Flag{help, default_value, default_value};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         double default_value) {
  std::ostringstream os;
  os << default_value;
  add_flag(name, help, os.str());
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         int default_value) {
  add_flag(name, help, std::to_string(default_value));
}

void CliParser::add_flag(const std::string& name, const std::string& help,
                         bool default_value) {
  add_flag(name, help, std::string(default_value ? "true" : "false"));
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw ConfigError("unexpected positional argument: " + arg);
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) throw ConfigError("unknown flag --" + name);
      // Bare boolean flag means "true"; otherwise consume the next token.
      if (it->second.default_value == "true" ||
          it->second.default_value == "false") {
        value = "true";
      } else {
        ANTMD_REQUIRE(i + 1 < argc, "flag --" + name + " needs a value");
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) throw ConfigError("unknown flag --" + name);
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  ANTMD_REQUIRE(it != flags_.end(), "flag --" + name + " was never declared");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  return find(name).value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    size_t pos = 0;
    double d = std::stod(v, &pos);
    ANTMD_REQUIRE(pos == v.size(), "trailing characters");
    return d;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects a number, got '" + v + "'");
  }
}

int CliParser::get_int(const std::string& name) const {
  const std::string& v = find(name).value;
  try {
    size_t pos = 0;
    int i = std::stoi(v, &pos);
    ANTMD_REQUIRE(pos == v.size(), "trailing characters");
    return i;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" + v +
                      "'");
  }
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = find(name).value;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ConfigError("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << "  " << f.help << " (default: " << f.default_value
       << ")\n";
  }
  return os.str();
}

}  // namespace antmd
