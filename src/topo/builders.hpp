// Synthetic system builders.
//
// The paper's benchmarks ran production biomolecular systems; we substitute
// synthetic systems whose performance-relevant statistics (density, pairs
// within cutoff, bonded terms per atom, charge structure) match, as recorded
// in DESIGN.md.  All builders are deterministic given a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "math/pbc.hpp"
#include "math/vec.hpp"
#include "topo/topology.hpp"

namespace antmd {

/// A built system: static topology plus initial coordinates and box.
struct SystemSpec {
  std::string name;
  Topology topology;
  std::vector<Vec3> positions;
  Box box;
  /// Builder-specific tagged atoms (e.g. the dimer pair, ligand index).
  std::vector<uint32_t> tagged;
  /// Reference (native) coordinates where a builder defines them
  /// (Gō-model proteins); empty otherwise.
  std::vector<Vec3> reference;
};

/// Water models for build_water_box.
enum class WaterModel {
  kFlexible3Site,  ///< SPC/E charges with harmonic bonds/angle
  kRigid3Site,     ///< SPC/E geometry enforced by distance constraints
  kRigid4Site,     ///< TIP4P-style: rigid 3-site + massless M virtual site
};

/// Cubic water box with approximately n_molecules waters at liquid density
/// (0.0334 molecules/Å³). Actual count is the largest perfect-cube lattice
/// that fits; query spec.topology.molecules().size().
SystemSpec build_water_box(size_t n_molecules, WaterModel model,
                           uint64_t seed = 1);

/// Monatomic Lennard-Jones fluid (argon-like) at the given number density
/// (atoms/Å³); n is rounded down to a perfect cube lattice.
SystemSpec build_lj_fluid(size_t n_atoms, double density = 0.021,
                          uint64_t seed = 1);

/// A bead-spring polymer ("mini-protein") of chain_length beads solvated in
/// a LJ bath.  The chain has bonds, angles and a 3-fold dihedral; bead-bead
/// LJ attraction drives collapse at low temperature (tempering benchmark).
/// tagged = {first bead, last bead}.
SystemSpec build_polymer_in_solvent(size_t chain_length, size_t n_solvent,
                                    uint64_t seed = 1);

/// Water box with dissolved ion pairs (+1/-1), for electrostatics tests.
SystemSpec build_ionic_solution(size_t n_water, size_t n_ion_pairs,
                                uint64_t seed = 1);

/// Gō-model mini-protein in vacuum (implicit solvent): an α-helix-like
/// native structure defines 12-10 native-contact attractions; all other
/// bead pairs are (nearly) purely repulsive.  The returned positions are an
/// extended (unfolded) conformation; spec.reference holds the native one.
/// Fold it with a Langevin bath ± tempering and score progress with
/// analysis::native_contact_fraction over topology.go_contacts().
/// tagged = {first bead, last bead}.
SystemSpec build_go_protein(size_t n_beads, double contact_epsilon = 1.0,
                            uint64_t seed = 1);

/// Coarse-grained lipid bilayer in water: each lipid is a 4-bead chain
/// (1 charged head + 3 apolar tail beads, harmonic bonds + angle) arranged
/// as two leaflets in the xy plane, solvated above and below by rigid
/// 3-site water.  Exercises the membrane workloads (semi-isotropic
/// pressure coupling, anisotropic boxes) behind Anton's GPCR studies.
/// tagged = {first head bead of each leaflet}.
SystemSpec build_lipid_bilayer(size_t lipids_per_leaflet_side,
                               size_t water_layers = 3, uint64_t seed = 1);

/// LJ bath containing two tagged "dimer" atoms intended to interact through
/// a user-supplied tabulated pair potential (the generality-extension demo
/// used by the PMF and steered-MD experiments). tagged = {a, b}.
SystemSpec build_dimer_in_solvent(size_t n_solvent, double initial_separation,
                                  uint64_t seed = 1);

}  // namespace antmd
