// Molecular topology: atoms, connectivity, exclusions, constraints,
// virtual sites.  This is the static description of a system; dynamic state
// (positions/velocities/box) lives in md::State.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "math/vec.hpp"

namespace antmd {

/// Harmonic bond U = k (r - r0)^2 (note: k includes the conventional 1/2
/// only if the caller folds it in; antmd uses U = k (r-r0)^2 throughout).
struct Bond {
  uint32_t i = 0, j = 0;
  double k = 0.0;   ///< kcal/mol/Å²
  double r0 = 0.0;  ///< Å
};

/// Harmonic angle U = k (theta - theta0)^2.
struct Angle {
  uint32_t i = 0, j = 0, k_atom = 0;  ///< j is the apex
  double k = 0.0;       ///< kcal/mol/rad²
  double theta0 = 0.0;  ///< radians
};

/// Periodic (proper) dihedral U = k (1 + cos(n phi - phi0)).
struct Dihedral {
  uint32_t i = 0, j = 0, k_atom = 0, l = 0;
  double k = 0.0;     ///< kcal/mol
  int n = 1;          ///< multiplicity
  double phi0 = 0.0;  ///< radians
};

/// Morse bond U = D (1 - exp(-a (r - r0)))².
struct MorseBond {
  uint32_t i = 0, j = 0;
  double depth = 0.0;  ///< D, kcal/mol
  double a = 0.0;      ///< Å⁻¹
  double r0 = 0.0;     ///< Å
};

/// Urey–Bradley 1-3 term: harmonic in the i..k distance of an angle.
struct UreyBradley {
  uint32_t i = 0, k = 0;
  double kub = 0.0;  ///< kcal/mol/Å²
  double s0 = 0.0;   ///< Å
};

/// Harmonic improper dihedral U = k (phi - phi0)² (planarity restraint).
struct Improper {
  uint32_t i = 0, j = 0, k_atom = 0, l = 0;
  double k = 0.0;
  double phi0 = 0.0;
};

/// Gō-model native contact: a 12-10 attractive well at the native
/// separation, evaluated outside the generic pair loop (the pair itself is
/// excluded there so the bead-bead repulsion is not double counted).
struct GoContact {
  uint32_t i = 0, j = 0;
  double epsilon = 0.0;   ///< well depth (kcal/mol)
  double r_native = 0.0;  ///< native separation (Å)
};

/// Holonomic distance constraint |r_i - r_j| = r0 (SHAKE/M-SHAKE).
struct DistanceConstraint {
  uint32_t i = 0, j = 0;
  double r0 = 0.0;
};

/// Virtual interaction site whose position is constructed from parents each
/// step and whose force is redistributed back onto the parents.
struct VirtualSite {
  enum class Kind {
    kLinear2,   ///< r = (1-a) r_p0 + a r_p1
    kPlanar3,   ///< TIP4P-style: r = r_p0 + a (r_p1 - r_p0) + b (r_p2 - r_p0)
  };
  uint32_t site = 0;
  uint32_t parents[3] = {0, 0, 0};  ///< kLinear2 uses the first two
  Kind kind = Kind::kLinear2;
  double a = 0.0;
  double b = 0.0;
};

/// A contiguous range of atoms forming one molecule.
struct Molecule {
  uint32_t first = 0;
  uint32_t count = 0;
  std::string name;
};

/// Scaled 1-4 nonbonded pair (excluded from the normal pair loop, evaluated
/// separately with scale factors).
struct Pair14 {
  uint32_t i = 0, j = 0;
  double lj_scale = 0.5;
  double coulomb_scale = 0.8333333333;
};

/// Per-atom-type Lennard-Jones parameters; pair parameters are produced
/// with Lorentz–Berthelot combination rules unless overridden.
struct LjType {
  std::string name;
  double sigma = 0.0;    ///< Å
  double epsilon = 0.0;  ///< kcal/mol
};

class Topology {
 public:
  // --- construction -------------------------------------------------------
  /// Registers an atom type; returns its id.
  uint32_t add_type(const std::string& name, double sigma, double epsilon);
  /// Adds an atom; returns its index.
  uint32_t add_atom(uint32_t type, double mass, double charge);

  void add_bond(uint32_t i, uint32_t j, double k, double r0);
  void add_angle(uint32_t i, uint32_t j, uint32_t k_atom, double k,
                 double theta0);
  void add_dihedral(uint32_t i, uint32_t j, uint32_t k_atom, uint32_t l,
                    double k, int n, double phi0);
  void add_morse_bond(uint32_t i, uint32_t j, double depth, double a,
                      double r0);
  void add_urey_bradley(uint32_t i, uint32_t k, double kub, double s0);
  void add_improper(uint32_t i, uint32_t j, uint32_t k_atom, uint32_t l,
                    double k, double phi0);
  /// Adds a native contact and excludes the pair from the generic loop.
  void add_go_contact(uint32_t i, uint32_t j, double epsilon,
                      double r_native);
  void add_constraint(uint32_t i, uint32_t j, double r0);
  void add_virtual_site(const VirtualSite& v);
  void add_pair14(uint32_t i, uint32_t j, double lj_scale,
                  double coulomb_scale);
  void add_exclusion(uint32_t i, uint32_t j);
  /// Marks [first, first+count) as one molecule.
  void add_molecule(uint32_t first, uint32_t count, std::string name);

  /// Derives exclusions from connectivity: excludes 1-2 and 1-3 neighbours,
  /// and registers 1-4 neighbours as scaled pairs (also excluded from the
  /// main loop).  Idempotent.
  void build_exclusions_from_bonds(double lj14_scale = 0.5,
                                   double coulomb14_scale = 0.8333333333);

  /// Validates invariants (indices in range, masses positive, constrained
  /// atoms not also virtual sites, ...). Throws ConfigError on violation.
  void validate() const;

  // --- access --------------------------------------------------------------
  [[nodiscard]] size_t atom_count() const { return masses_.size(); }
  [[nodiscard]] size_t type_count() const { return types_.size(); }

  [[nodiscard]] const std::vector<double>& masses() const { return masses_; }
  [[nodiscard]] const std::vector<double>& charges() const { return charges_; }
  [[nodiscard]] std::vector<double>& mutable_charges() { return charges_; }
  [[nodiscard]] const std::vector<uint32_t>& type_ids() const {
    return type_ids_;
  }
  [[nodiscard]] const std::vector<LjType>& types() const { return types_; }
  [[nodiscard]] const std::vector<Bond>& bonds() const { return bonds_; }
  [[nodiscard]] const std::vector<Angle>& angles() const { return angles_; }
  [[nodiscard]] const std::vector<Dihedral>& dihedrals() const {
    return dihedrals_;
  }
  [[nodiscard]] const std::vector<MorseBond>& morse_bonds() const {
    return morse_bonds_;
  }
  [[nodiscard]] const std::vector<UreyBradley>& urey_bradleys() const {
    return urey_bradleys_;
  }
  [[nodiscard]] const std::vector<Improper>& impropers() const {
    return impropers_;
  }
  [[nodiscard]] const std::vector<GoContact>& go_contacts() const {
    return go_contacts_;
  }
  [[nodiscard]] const std::vector<DistanceConstraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::vector<VirtualSite>& virtual_sites() const {
    return virtual_sites_;
  }
  [[nodiscard]] const std::vector<Pair14>& pairs14() const { return pairs14_; }
  [[nodiscard]] const std::vector<Molecule>& molecules() const {
    return molecules_;
  }

  /// True if the unordered pair (i, j) is excluded from the nonbonded loop.
  [[nodiscard]] bool is_excluded(uint32_t i, uint32_t j) const;
  /// All excluded pairs (i < j), for Ewald exclusion corrections.
  [[nodiscard]] std::vector<std::pair<uint32_t, uint32_t>> excluded_pairs()
      const;

  /// Total charge of the system (e).
  [[nodiscard]] double total_charge() const;
  /// Number of degrees of freedom: 3N - n_constraints - 3 (COM) and virtual
  /// sites contribute none.
  [[nodiscard]] size_t degrees_of_freedom() const;
  /// True if atom i is a virtual site (massless, position constructed).
  [[nodiscard]] bool is_virtual_site(uint32_t i) const;

  /// Visits the contiguous POD arrays a step reads — per-atom parameters,
  /// bonded term lists, constraints, virtual sites, 1-4 pairs — as
  /// fn(name, data, bytes) with mutable pointers, for SDC scrub
  /// registration.  The string-bearing containers (types_, molecules_) and
  /// the exclusion hash set are not visitable as raw bytes; the flattened
  /// exclusion list is covered via ForceField::visit_scrub_regions instead.
  template <typename Fn>
  void visit_scrub_regions(Fn&& fn) {
    auto emit = [&](const char* name, auto& v) {
      using T = typename std::remove_reference_t<decltype(v)>::value_type;
      fn(name, static_cast<void*>(v.data()), v.size() * sizeof(T));
    };
    emit("topo.type_ids", type_ids_);
    emit("topo.masses", masses_);
    emit("topo.charges", charges_);
    emit("topo.bonds", bonds_);
    emit("topo.angles", angles_);
    emit("topo.dihedrals", dihedrals_);
    emit("topo.morse_bonds", morse_bonds_);
    emit("topo.urey_bradleys", urey_bradleys_);
    emit("topo.impropers", impropers_);
    emit("topo.go_contacts", go_contacts_);
    emit("topo.constraints", constraints_);
    emit("topo.virtual_sites", virtual_sites_);
    emit("topo.pairs14", pairs14_);
  }

 private:
  static uint64_t pair_key(uint32_t i, uint32_t j) {
    if (i > j) std::swap(i, j);
    return (static_cast<uint64_t>(i) << 32) | j;
  }

  std::vector<LjType> types_;
  std::vector<uint32_t> type_ids_;
  std::vector<double> masses_;
  std::vector<double> charges_;
  std::vector<Bond> bonds_;
  std::vector<Angle> angles_;
  std::vector<Dihedral> dihedrals_;
  std::vector<MorseBond> morse_bonds_;
  std::vector<UreyBradley> urey_bradleys_;
  std::vector<Improper> impropers_;
  std::vector<GoContact> go_contacts_;
  std::vector<DistanceConstraint> constraints_;
  std::vector<VirtualSite> virtual_sites_;
  std::vector<Pair14> pairs14_;
  std::vector<Molecule> molecules_;
  std::unordered_set<uint64_t> exclusions_;
  bool exclusions_built_ = false;
};

}  // namespace antmd
