#include "topo/builders.hpp"

#include <algorithm>
#include <cmath>

#include "math/rng.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

// SPC/E-like 3-site water parameters.
constexpr double kWaterOH = 1.0;                  // Å
constexpr double kWaterAngle = 109.47 * M_PI / 180.0;
constexpr double kWaterQO = -0.8476;
constexpr double kWaterQH = 0.4238;
constexpr double kWaterSigmaO = 3.166;
constexpr double kWaterEpsO = 0.1553;
constexpr double kWaterMassO = 15.9994;
constexpr double kWaterMassH = 1.008;
constexpr double kWaterBondK = 450.0;    // kcal/mol/Å² (U = k dx²)
constexpr double kWaterAngleK = 55.0;    // kcal/mol/rad²
constexpr double kWaterDensity = 0.0334; // molecules/Å³

// TIP4P-style M-site placement coefficient: r_M = r_O + a (r_H1 - r_O)
// + a (r_H2 - r_O) with a chosen to put M 0.15 Å from O along the bisector.
constexpr double kMSiteA = 0.1280;

/// Largest n with n³ <= count.
size_t cube_side(size_t count) {
  auto side = static_cast<size_t>(std::cbrt(static_cast<double>(count)));
  while ((side + 1) * (side + 1) * (side + 1) <= count) ++side;
  while (side > 0 && side * side * side > count) --side;
  return side;
}

/// Three water-site offsets (O at origin, H's in the xz plane), randomly
/// rotated about z per molecule so the lattice is not perfectly ordered.
void water_geometry(SequentialRng& rng, Vec3 center, Vec3& o, Vec3& h1,
                    Vec3& h2) {
  double phi = rng.uniform(0.0, 2.0 * M_PI);
  double half = kWaterAngle / 2.0;
  Vec3 d1{std::sin(half), 0.0, std::cos(half)};
  Vec3 d2{-std::sin(half), 0.0, std::cos(half)};
  auto rot = [&](const Vec3& v) {
    return Vec3{v.x * std::cos(phi) - v.y * std::sin(phi),
                v.x * std::sin(phi) + v.y * std::cos(phi), v.z};
  };
  o = center;
  h1 = center + kWaterOH * rot(d1);
  h2 = center + kWaterOH * rot(d2);
}

}  // namespace

SystemSpec build_water_box(size_t n_molecules, WaterModel model,
                           uint64_t seed) {
  ANTMD_REQUIRE(n_molecules >= 8, "need at least 8 water molecules");
  const size_t side = cube_side(n_molecules);
  const size_t n = side * side * side;
  const double volume = static_cast<double>(n) / kWaterDensity;
  const double edge = std::cbrt(volume);
  const double spacing = edge / static_cast<double>(side);

  SystemSpec spec;
  spec.name = "water-" + std::to_string(n);
  spec.box = Box::cubic(edge);

  Topology& topo = spec.topology;
  const uint32_t type_o = topo.add_type("OW", kWaterSigmaO, kWaterEpsO);
  const uint32_t type_h = topo.add_type("HW", 0.0, 0.0);
  const uint32_t type_m =
      model == WaterModel::kRigid4Site ? topo.add_type("MW", 0.0, 0.0) : 0;

  SequentialRng rng(seed);
  const double hh = 2.0 * kWaterOH * std::sin(kWaterAngle / 2.0);

  for (size_t ix = 0; ix < side; ++ix) {
    for (size_t iy = 0; iy < side; ++iy) {
      for (size_t iz = 0; iz < side; ++iz) {
        Vec3 center{(static_cast<double>(ix) + 0.5) * spacing,
                    (static_cast<double>(iy) + 0.5) * spacing,
                    (static_cast<double>(iz) + 0.5) * spacing};
        // Small jitter so the lattice melts quickly but never overlaps.
        center += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                       rng.uniform(-0.3, 0.3)};
        Vec3 o, h1, h2;
        water_geometry(rng, center, o, h1, h2);

        const bool four_site = model == WaterModel::kRigid4Site;
        // In 4-site water the O carries no charge; the M site does.
        const double qo = four_site ? 0.0 : kWaterQO;
        uint32_t ao = topo.add_atom(type_o, kWaterMassO, qo);
        uint32_t ah1 = topo.add_atom(type_h, kWaterMassH, kWaterQH);
        uint32_t ah2 = topo.add_atom(type_h, kWaterMassH, kWaterQH);
        spec.positions.push_back(o);
        spec.positions.push_back(h1);
        spec.positions.push_back(h2);

        uint32_t count = 3;
        if (model == WaterModel::kFlexible3Site) {
          topo.add_bond(ao, ah1, kWaterBondK, kWaterOH);
          topo.add_bond(ao, ah2, kWaterBondK, kWaterOH);
          topo.add_angle(ah1, ao, ah2, kWaterAngleK, kWaterAngle);
        } else {
          topo.add_constraint(ao, ah1, kWaterOH);
          topo.add_constraint(ao, ah2, kWaterOH);
          topo.add_constraint(ah1, ah2, hh);
        }
        if (four_site) {
          uint32_t am = topo.add_atom(type_m, 0.0, kWaterQO);
          Vec3 m = o + kMSiteA * (h1 - o) + kMSiteA * (h2 - o);
          spec.positions.push_back(m);
          VirtualSite v;
          v.site = am;
          v.parents[0] = ao;
          v.parents[1] = ah1;
          v.parents[2] = ah2;
          v.kind = VirtualSite::Kind::kPlanar3;
          v.a = kMSiteA;
          v.b = kMSiteA;
          topo.add_virtual_site(v);
          count = 4;
        }
        topo.add_molecule(ao, count, "HOH");
      }
    }
  }
  topo.build_exclusions_from_bonds();
  topo.validate();
  return spec;
}

SystemSpec build_lj_fluid(size_t n_atoms, double density, uint64_t seed) {
  ANTMD_REQUIRE(n_atoms >= 8, "need at least 8 atoms");
  ANTMD_REQUIRE(density > 0.0, "density must be positive");
  const size_t side = cube_side(n_atoms);
  const size_t n = side * side * side;
  const double edge = std::cbrt(static_cast<double>(n) / density);
  const double spacing = edge / static_cast<double>(side);

  SystemSpec spec;
  spec.name = "ljfluid-" + std::to_string(n);
  spec.box = Box::cubic(edge);

  Topology& topo = spec.topology;
  const uint32_t type_ar = topo.add_type("AR", 3.4, 0.238);
  SequentialRng rng(seed);

  for (size_t ix = 0; ix < side; ++ix) {
    for (size_t iy = 0; iy < side; ++iy) {
      for (size_t iz = 0; iz < side; ++iz) {
        uint32_t a = topo.add_atom(type_ar, 39.948, 0.0);
        Vec3 p{(static_cast<double>(ix) + 0.5) * spacing,
               (static_cast<double>(iy) + 0.5) * spacing,
               (static_cast<double>(iz) + 0.5) * spacing};
        p += Vec3{rng.uniform(-0.2, 0.2), rng.uniform(-0.2, 0.2),
                  rng.uniform(-0.2, 0.2)};
        spec.positions.push_back(p);
        topo.add_molecule(a, 1, "AR");
      }
    }
  }
  topo.build_exclusions_from_bonds();
  topo.validate();
  return spec;
}

SystemSpec build_polymer_in_solvent(size_t chain_length, size_t n_solvent,
                                    uint64_t seed) {
  ANTMD_REQUIRE(chain_length >= 4, "chain needs at least 4 beads");
  // Start from a LJ bath and carve a cavity: solvent sites overlapping the
  // inserted chain are dropped (steric clashes at lattice spacing would
  // otherwise blow up the first few steps).
  SystemSpec bath = build_lj_fluid(n_solvent, 0.018, seed);
  constexpr double kCavity = 3.4;  // Å exclusion radius around solute sites

  SystemSpec spec;
  spec.name = "polymer" + std::to_string(chain_length) + "-solv" +
              std::to_string(bath.topology.atom_count());
  spec.box = bath.box;

  Topology& topo = spec.topology;
  const uint32_t type_bead = topo.add_type("CB", 4.5, 0.40);
  const uint32_t type_sol = topo.add_type("SOL", 3.4, 0.18);

  // Chain beads first, laid out as a loose helix in the box centre.
  const double bond_r0 = 3.8;
  const Vec3 center = 0.5 * spec.box.edges();
  std::vector<uint32_t> beads;
  for (size_t b = 0; b < chain_length; ++b) {
    uint32_t a = topo.add_atom(type_bead, 50.0, 0.0);
    beads.push_back(a);
    double t = static_cast<double>(b);
    spec.positions.push_back(center + Vec3{4.0 * std::cos(0.7 * t),
                                           4.0 * std::sin(0.7 * t),
                                           (t - chain_length / 2.0) * 2.9});
  }
  topo.add_molecule(beads.front(), static_cast<uint32_t>(chain_length),
                    "CHAIN");
  for (size_t b = 0; b + 1 < chain_length; ++b) {
    topo.add_bond(beads[b], beads[b + 1], 100.0, bond_r0);
  }
  for (size_t b = 0; b + 2 < chain_length; ++b) {
    topo.add_angle(beads[b], beads[b + 1], beads[b + 2], 10.0,
                   110.0 * M_PI / 180.0);
  }
  for (size_t b = 0; b + 3 < chain_length; ++b) {
    topo.add_dihedral(beads[b], beads[b + 1], beads[b + 2], beads[b + 3], 1.2,
                      3, 0.0);
  }

  // Solvent from the bath (re-typed), skipping the chain's cavity.
  for (size_t i = 0; i < bath.topology.atom_count(); ++i) {
    bool clashes = false;
    for (size_t b = 0; b < chain_length && !clashes; ++b) {
      clashes = spec.box.distance2(bath.positions[i], spec.positions[b]) <
                kCavity * kCavity;
    }
    if (clashes) continue;
    uint32_t a = topo.add_atom(type_sol, 39.948, 0.0);
    spec.positions.push_back(bath.positions[i]);
    topo.add_molecule(a, 1, "SOL");
  }

  topo.build_exclusions_from_bonds();
  topo.validate();
  spec.tagged = {beads.front(), beads.back()};
  return spec;
}

SystemSpec build_ionic_solution(size_t n_water, size_t n_ion_pairs,
                                uint64_t seed) {
  SystemSpec spec = build_water_box(n_water, WaterModel::kRigid3Site, seed);
  ANTMD_REQUIRE(spec.topology.molecules().size() >= 2 * n_ion_pairs,
                "not enough waters to replace with ions");
  // Replace the first 2*n_ion_pairs water molecules' oxygens with ions by
  // rebuilding: simpler and safer than in-place surgery.
  const size_t n_keep = spec.topology.molecules().size() - 2 * n_ion_pairs;

  SystemSpec out;
  out.name = "ions" + std::to_string(n_ion_pairs) + "-water" +
             std::to_string(n_keep);
  out.box = spec.box;
  Topology& topo = out.topology;
  const uint32_t type_o = topo.add_type("OW", kWaterSigmaO, kWaterEpsO);
  const uint32_t type_h = topo.add_type("HW", 0.0, 0.0);
  const uint32_t type_na = topo.add_type("NA", 2.35, 0.13);
  const uint32_t type_cl = topo.add_type("CL", 4.40, 0.10);
  const double hh = 2.0 * kWaterOH * std::sin(kWaterAngle / 2.0);

  const auto& mols = spec.topology.molecules();
  for (size_t m = 0; m < mols.size(); ++m) {
    const Vec3& o_pos = spec.positions[mols[m].first];
    if (m < n_ion_pairs) {
      uint32_t a = topo.add_atom(type_na, 22.99, +1.0);
      out.positions.push_back(o_pos);
      topo.add_molecule(a, 1, "NA");
      out.tagged.push_back(a);
    } else if (m < 2 * n_ion_pairs) {
      uint32_t a = topo.add_atom(type_cl, 35.45, -1.0);
      out.positions.push_back(o_pos);
      topo.add_molecule(a, 1, "CL");
      out.tagged.push_back(a);
    } else {
      uint32_t ao = topo.add_atom(type_o, kWaterMassO, kWaterQO);
      uint32_t ah1 = topo.add_atom(type_h, kWaterMassH, kWaterQH);
      uint32_t ah2 = topo.add_atom(type_h, kWaterMassH, kWaterQH);
      out.positions.push_back(o_pos);
      out.positions.push_back(spec.positions[mols[m].first + 1]);
      out.positions.push_back(spec.positions[mols[m].first + 2]);
      topo.add_constraint(ao, ah1, kWaterOH);
      topo.add_constraint(ao, ah2, kWaterOH);
      topo.add_constraint(ah1, ah2, hh);
      topo.add_molecule(ao, 3, "HOH");
    }
  }
  topo.build_exclusions_from_bonds();
  topo.validate();
  return out;
}



SystemSpec build_go_protein(size_t n_beads, double contact_epsilon,
                            uint64_t seed) {
  ANTMD_REQUIRE(n_beads >= 8, "Go protein needs at least 8 beads");
  static_cast<void>(seed);  // construction is fully deterministic

  // Native structure: an alpha-helix-like curve (CA geometry: 1.5 Å rise,
  // 100° turn, 2.3 Å radius -> 3.8 Å consecutive distance).
  std::vector<Vec3> native(n_beads);
  const double rise = 1.5, radius = 2.3, turn = 100.0 * M_PI / 180.0;
  for (size_t b = 0; b < n_beads; ++b) {
    double t = static_cast<double>(b);
    native[b] = Vec3{radius * std::cos(turn * t),
                     radius * std::sin(turn * t), rise * t};
  }

  // Box: fits the extended chain with generous margin (vacuum run).
  const double bond_len = norm(native[1] - native[0]);
  const double edge = bond_len * static_cast<double>(n_beads) + 24.0;
  SystemSpec spec;
  spec.name = "go-protein-" + std::to_string(n_beads);
  spec.box = Box::cubic(edge);

  Topology& topo = spec.topology;
  // Nearly pure repulsion between non-native pairs (tiny epsilon).
  const uint32_t type_bead = topo.add_type("GO", 4.0, 0.01);
  const Vec3 center = 0.5 * spec.box.edges();

  std::vector<uint32_t> beads;
  for (size_t b = 0; b < n_beads; ++b) {
    beads.push_back(topo.add_atom(type_bead, 40.0, 0.0));
    // Extended (unfolded) start: straight line through the box centre.
    double offset = (static_cast<double>(b) -
                     static_cast<double>(n_beads) / 2.0) * bond_len;
    spec.positions.push_back(center + Vec3{offset, 0.0, 0.0});
  }
  topo.add_molecule(beads.front(), static_cast<uint32_t>(n_beads), "GOP");

  // Backbone terms from the native geometry.
  for (size_t b = 0; b + 1 < n_beads; ++b) {
    topo.add_bond(beads[b], beads[b + 1], 100.0,
                  norm(native[b + 1] - native[b]));
  }
  for (size_t b = 0; b + 2 < n_beads; ++b) {
    Vec3 r1 = native[b] - native[b + 1];
    Vec3 r2 = native[b + 2] - native[b + 1];
    double theta = std::acos(std::clamp(
        dot(r1, r2) / (norm(r1) * norm(r2)), -1.0, 1.0));
    topo.add_angle(beads[b], beads[b + 1], beads[b + 2], 15.0, theta);
  }

  // Native contacts: |i-j| >= 3 within 8 Å in the native structure.
  for (size_t i = 0; i < n_beads; ++i) {
    for (size_t j = i + 3; j < n_beads; ++j) {
      double r = norm(native[j] - native[i]);
      if (r < 8.0) {
        topo.add_go_contact(beads[i], beads[j], contact_epsilon, r);
      }
    }
  }

  topo.build_exclusions_from_bonds();
  topo.validate();
  spec.tagged = {beads.front(), beads.back()};
  spec.reference.resize(n_beads);
  for (size_t b = 0; b < n_beads; ++b) spec.reference[b] = center + native[b];
  return spec;
}

SystemSpec build_lipid_bilayer(size_t lipids_per_leaflet_side,
                               size_t water_layers, uint64_t seed) {
  ANTMD_REQUIRE(lipids_per_leaflet_side >= 2, "need at least a 2x2 leaflet");
  const size_t side = lipids_per_leaflet_side;
  const double spacing = 8.0;        // Å between lipids (area ~64 Å²/lipid)
  const double bead_z = 3.6;         // Å between beads along the chain
  const size_t beads_per_lipid = 4;  // 1 head + 3 tail
  const double lx = static_cast<double>(side) * spacing;

  // z layout: water slab / heads / tails | tails / heads / water slab.
  const double half_leaflet = static_cast<double>(beads_per_lipid) * bead_z;
  // Water layers are 3.1 Å thick and filled at liquid density.
  const size_t waters_per_layer =
      static_cast<size_t>(lx * lx * 3.1 * kWaterDensity);
  const size_t n_water = 2 * water_layers * waters_per_layer;
  const double slab_thickness =
      static_cast<double>(water_layers) * 3.1;
  const double lz = 2.0 * (half_leaflet + slab_thickness) + 2.0;

  SystemSpec spec;
  spec.name = "bilayer-" + std::to_string(2 * side * side) + "lipids";
  spec.box = Box(lx, lx, lz);

  Topology& topo = spec.topology;
  const uint32_t type_head = topo.add_type("LH", 5.0, 0.30);
  const uint32_t type_tail = topo.add_type("LT", 4.5, 0.40);
  const uint32_t type_o = topo.add_type("OW", kWaterSigmaO, kWaterEpsO);
  const uint32_t type_h = topo.add_type("HW", 0.0, 0.0);

  SequentialRng rng(seed);
  const double z_mid = lz / 2.0;

  auto add_lipid = [&](double x, double y, int leaflet_sign) {
    std::vector<uint32_t> beads;
    for (size_t b = 0; b < beads_per_lipid; ++b) {
      bool is_head = b == 0;
      uint32_t a = topo.add_atom(is_head ? type_head : type_tail, 72.0, 0.0);
      beads.push_back(a);
      // Head farthest from the midplane; tails point inward.
      double z = z_mid +
                 leaflet_sign * (half_leaflet -
                                 (static_cast<double>(b) + 0.5) * bead_z);
      spec.positions.push_back(Vec3{x + rng.uniform(-0.4, 0.4),
                                    y + rng.uniform(-0.4, 0.4), z});
    }
    topo.add_molecule(beads.front(),
                      static_cast<uint32_t>(beads_per_lipid), "LIP");
    for (size_t b = 0; b + 1 < beads_per_lipid; ++b) {
      topo.add_bond(beads[b], beads[b + 1], 50.0, bead_z);
    }
    for (size_t b = 0; b + 2 < beads_per_lipid; ++b) {
      topo.add_angle(beads[b], beads[b + 1], beads[b + 2], 8.0, M_PI);
    }
    return beads.front();
  };

  // Two leaflets.
  for (int leaflet : {+1, -1}) {
    for (size_t ix = 0; ix < side; ++ix) {
      for (size_t iy = 0; iy < side; ++iy) {
        double x = (static_cast<double>(ix) + 0.5) * spacing;
        double y = (static_cast<double>(iy) + 0.5) * spacing;
        uint32_t head = add_lipid(x, y, leaflet);
        if (ix == 0 && iy == 0) spec.tagged.push_back(head);
      }
    }
  }

  // Water slabs above and below the bilayer.
  const double hh = 2.0 * kWaterOH * std::sin(kWaterAngle / 2.0);
  size_t placed = 0;
  const auto per_side = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(waters_per_layer))));
  const double wspace = lx / static_cast<double>(per_side);
  for (int slab : {+1, -1}) {
    for (size_t layer = 0; layer < water_layers; ++layer) {
      double z = z_mid + slab * (half_leaflet + 1.5 +
                                 (static_cast<double>(layer) + 0.25) * 3.1);
      for (size_t ix = 0; ix < per_side; ++ix) {
        for (size_t iy = 0; iy < per_side && placed < n_water; ++iy) {
          Vec3 center{(static_cast<double>(ix) + 0.5) * wspace,
                      (static_cast<double>(iy) + 0.5) * wspace, z};
          center += Vec3{rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                         rng.uniform(-0.3, 0.3)};
          Vec3 o, h1, h2;
          water_geometry(rng, center, o, h1, h2);
          uint32_t ao = topo.add_atom(type_o, kWaterMassO, kWaterQO);
          uint32_t ah1 = topo.add_atom(type_h, kWaterMassH, kWaterQH);
          uint32_t ah2 = topo.add_atom(type_h, kWaterMassH, kWaterQH);
          spec.positions.push_back(o);
          spec.positions.push_back(h1);
          spec.positions.push_back(h2);
          topo.add_constraint(ao, ah1, kWaterOH);
          topo.add_constraint(ao, ah2, kWaterOH);
          topo.add_constraint(ah1, ah2, hh);
          topo.add_molecule(ao, 3, "HOH");
          ++placed;
        }
      }
    }
  }

  topo.build_exclusions_from_bonds();
  topo.validate();
  return spec;
}

SystemSpec build_dimer_in_solvent(size_t n_solvent, double initial_separation,
                                  uint64_t seed) {
  SystemSpec bath = build_lj_fluid(n_solvent, 0.018, seed);
  ANTMD_REQUIRE(initial_separation > 0 &&
                    initial_separation < 0.4 * bath.box.min_edge(),
                "dimer separation must fit inside the box");

  SystemSpec spec;
  spec.name = "dimer-solv" + std::to_string(bath.topology.atom_count());
  spec.box = bath.box;
  Topology& topo = spec.topology;
  const uint32_t type_dimer = topo.add_type("DM", 3.8, 0.25);
  const uint32_t type_sol = topo.add_type("SOL", 3.4, 0.18);

  const Vec3 center = 0.5 * spec.box.edges();
  const Vec3 half{initial_separation / 2.0, 0.0, 0.0};
  uint32_t a = topo.add_atom(type_dimer, 40.0, 0.0);
  uint32_t b = topo.add_atom(type_dimer, 40.0, 0.0);
  spec.positions.push_back(center - half);
  spec.positions.push_back(center + half);
  topo.add_molecule(a, 1, "DMA");
  topo.add_molecule(b, 1, "DMB");

  constexpr double kCavity = 3.4;  // Å exclusion radius around the dimer
  for (size_t i = 0; i < bath.topology.atom_count(); ++i) {
    if (spec.box.distance2(bath.positions[i], spec.positions[a]) <
            kCavity * kCavity ||
        spec.box.distance2(bath.positions[i], spec.positions[b]) <
            kCavity * kCavity) {
      continue;
    }
    uint32_t s = topo.add_atom(type_sol, 39.948, 0.0);
    spec.positions.push_back(bath.positions[i]);
    topo.add_molecule(s, 1, "SOL");
  }
  topo.build_exclusions_from_bonds();
  topo.validate();
  spec.tagged = {a, b};
  return spec;
}

}  // namespace antmd
