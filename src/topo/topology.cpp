#include "topo/topology.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace antmd {

uint32_t Topology::add_type(const std::string& name, double sigma,
                            double epsilon) {
  ANTMD_REQUIRE(sigma >= 0.0 && epsilon >= 0.0,
                "LJ parameters must be non-negative");
  types_.push_back(LjType{name, sigma, epsilon});
  return static_cast<uint32_t>(types_.size() - 1);
}

uint32_t Topology::add_atom(uint32_t type, double mass, double charge) {
  ANTMD_REQUIRE(type < types_.size(), "unknown atom type");
  ANTMD_REQUIRE(mass >= 0.0, "mass must be non-negative");
  type_ids_.push_back(type);
  masses_.push_back(mass);
  charges_.push_back(charge);
  return static_cast<uint32_t>(masses_.size() - 1);
}

void Topology::add_bond(uint32_t i, uint32_t j, double k, double r0) {
  ANTMD_REQUIRE(i != j, "bond endpoints must differ");
  bonds_.push_back(Bond{i, j, k, r0});
}

void Topology::add_angle(uint32_t i, uint32_t j, uint32_t k_atom, double k,
                         double theta0) {
  ANTMD_REQUIRE(i != j && j != k_atom && i != k_atom,
                "angle atoms must be distinct");
  angles_.push_back(Angle{i, j, k_atom, k, theta0});
}

void Topology::add_dihedral(uint32_t i, uint32_t j, uint32_t k_atom,
                            uint32_t l, double k, int n, double phi0) {
  ANTMD_REQUIRE(n >= 1, "dihedral multiplicity must be >= 1");
  dihedrals_.push_back(Dihedral{i, j, k_atom, l, k, n, phi0});
}

void Topology::add_morse_bond(uint32_t i, uint32_t j, double depth,
                              double a, double r0) {
  ANTMD_REQUIRE(i != j, "bond endpoints must differ");
  ANTMD_REQUIRE(depth > 0 && a > 0 && r0 > 0, "bad Morse parameters");
  morse_bonds_.push_back(MorseBond{i, j, depth, a, r0});
}

void Topology::add_urey_bradley(uint32_t i, uint32_t k, double kub,
                                double s0) {
  ANTMD_REQUIRE(i != k, "Urey-Bradley endpoints must differ");
  urey_bradleys_.push_back(UreyBradley{i, k, kub, s0});
}

void Topology::add_improper(uint32_t i, uint32_t j, uint32_t k_atom,
                            uint32_t l, double k, double phi0) {
  impropers_.push_back(Improper{i, j, k_atom, l, k, phi0});
}

void Topology::add_go_contact(uint32_t i, uint32_t j, double epsilon,
                              double r_native) {
  ANTMD_REQUIRE(i != j, "contact endpoints must differ");
  ANTMD_REQUIRE(epsilon > 0 && r_native > 0, "bad Go-contact parameters");
  go_contacts_.push_back(GoContact{i, j, epsilon, r_native});
  exclusions_.insert(pair_key(i, j));
}

void Topology::add_constraint(uint32_t i, uint32_t j, double r0) {
  ANTMD_REQUIRE(i != j, "constraint endpoints must differ");
  ANTMD_REQUIRE(r0 > 0.0, "constraint length must be positive");
  constraints_.push_back(DistanceConstraint{i, j, r0});
}

void Topology::add_virtual_site(const VirtualSite& v) {
  virtual_sites_.push_back(v);
}

void Topology::add_pair14(uint32_t i, uint32_t j, double lj_scale,
                          double coulomb_scale) {
  pairs14_.push_back(Pair14{i, j, lj_scale, coulomb_scale});
  exclusions_.insert(pair_key(i, j));
}

void Topology::add_exclusion(uint32_t i, uint32_t j) {
  ANTMD_REQUIRE(i != j, "cannot exclude an atom from itself");
  exclusions_.insert(pair_key(i, j));
}

void Topology::add_molecule(uint32_t first, uint32_t count, std::string name) {
  molecules_.push_back(Molecule{first, count, std::move(name)});
}

void Topology::build_exclusions_from_bonds(double lj14_scale,
                                           double coulomb14_scale) {
  if (exclusions_built_) return;
  exclusions_built_ = true;

  std::map<uint32_t, std::set<uint32_t>> adj;
  auto connect = [&](uint32_t a, uint32_t b) {
    adj[a].insert(b);
    adj[b].insert(a);
  };
  for (const auto& b : bonds_) connect(b.i, b.j);
  for (const auto& b : morse_bonds_) connect(b.i, b.j);
  // Constraints are chemical bonds too (rigid water has no Bond entries).
  for (const auto& c : constraints_) connect(c.i, c.j);
  // Virtual sites inherit the exclusions of their first parent by being
  // "bonded" to all parents.
  for (const auto& v : virtual_sites_) {
    connect(v.site, v.parents[0]);
    if (v.kind == VirtualSite::Kind::kPlanar3) {
      connect(v.site, v.parents[1]);
      connect(v.site, v.parents[2]);
    } else {
      connect(v.site, v.parents[1]);
    }
  }

  std::set<uint64_t> seen14;
  for (const auto& [a, nbrs1] : adj) {
    for (uint32_t b : nbrs1) {
      exclusions_.insert(pair_key(a, b));  // 1-2
      for (uint32_t c : adj[b]) {
        if (c == a) continue;
        exclusions_.insert(pair_key(a, c));  // 1-3
        for (uint32_t d : adj[c]) {
          if (d == a || d == b) continue;
          uint64_t key = pair_key(a, d);
          if (exclusions_.count(key)) continue;
          if (seen14.insert(key).second) {
            pairs14_.push_back(
                Pair14{std::min(a, d), std::max(a, d), lj14_scale,
                       coulomb14_scale});
          }
        }
      }
    }
  }
  // 1-4 pairs are excluded from the main loop (they are evaluated scaled).
  for (const auto& p : pairs14_) exclusions_.insert(pair_key(p.i, p.j));
}

void Topology::validate() const {
  const auto n = static_cast<uint32_t>(atom_count());
  auto check_index = [&](uint32_t idx, const char* what) {
    ANTMD_REQUIRE(idx < n, std::string("atom index out of range in ") + what);
  };
  for (const auto& b : bonds_) {
    check_index(b.i, "bond");
    check_index(b.j, "bond");
    ANTMD_REQUIRE(b.k >= 0 && b.r0 > 0, "bad bond parameters");
  }
  for (const auto& a : angles_) {
    check_index(a.i, "angle");
    check_index(a.j, "angle");
    check_index(a.k_atom, "angle");
    ANTMD_REQUIRE(a.theta0 > 0 && a.theta0 <= M_PI, "bad angle theta0");
  }
  for (const auto& d : dihedrals_) {
    check_index(d.i, "dihedral");
    check_index(d.j, "dihedral");
    check_index(d.k_atom, "dihedral");
    check_index(d.l, "dihedral");
  }
  for (const auto& b : morse_bonds_) {
    check_index(b.i, "morse bond");
    check_index(b.j, "morse bond");
  }
  for (const auto& u : urey_bradleys_) {
    check_index(u.i, "urey-bradley");
    check_index(u.k, "urey-bradley");
  }
  for (const auto& d : impropers_) {
    check_index(d.i, "improper");
    check_index(d.j, "improper");
    check_index(d.k_atom, "improper");
    check_index(d.l, "improper");
  }
  for (const auto& g : go_contacts_) {
    check_index(g.i, "go contact");
    check_index(g.j, "go contact");
  }
  for (const auto& c : constraints_) {
    check_index(c.i, "constraint");
    check_index(c.j, "constraint");
    ANTMD_REQUIRE(masses_[c.i] > 0 && masses_[c.j] > 0,
                  "constrained atoms must have mass");
  }
  for (const auto& v : virtual_sites_) {
    check_index(v.site, "virtual site");
    check_index(v.parents[0], "virtual site parent");
    check_index(v.parents[1], "virtual site parent");
    if (v.kind == VirtualSite::Kind::kPlanar3) {
      check_index(v.parents[2], "virtual site parent");
    }
    ANTMD_REQUIRE(masses_[v.site] == 0.0, "virtual sites must be massless");
    for (const auto& c : constraints_) {
      ANTMD_REQUIRE(c.i != v.site && c.j != v.site,
                    "virtual sites cannot be constrained");
    }
  }
  for (const auto& m : molecules_) {
    ANTMD_REQUIRE(m.first + m.count <= n, "molecule range out of bounds");
  }
  for (size_t i = 0; i < masses_.size(); ++i) {
    if (masses_[i] == 0.0) {
      bool is_site = is_virtual_site(static_cast<uint32_t>(i));
      ANTMD_REQUIRE(is_site, "massless atom that is not a virtual site");
    }
  }
}

bool Topology::is_excluded(uint32_t i, uint32_t j) const {
  return exclusions_.count(pair_key(i, j)) > 0;
}

std::vector<std::pair<uint32_t, uint32_t>> Topology::excluded_pairs() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(exclusions_.size());
  for (uint64_t key : exclusions_) {
    out.emplace_back(static_cast<uint32_t>(key >> 32),
                     static_cast<uint32_t>(key & 0xFFFFFFFFu));
  }
  std::sort(out.begin(), out.end());
  return out;
}

double Topology::total_charge() const {
  double q = 0.0;
  for (double c : charges_) q += c;
  return q;
}

size_t Topology::degrees_of_freedom() const {
  size_t massless = 0;
  for (double m : masses_) {
    if (m == 0.0) ++massless;
  }
  size_t dof = 3 * (atom_count() - massless);
  dof -= constraints_.size();
  dof -= 3;  // centre-of-mass momentum is removed
  return dof;
}

bool Topology::is_virtual_site(uint32_t i) const {
  return std::any_of(virtual_sites_.begin(), virtual_sites_.end(),
                     [i](const VirtualSite& v) { return v.site == i; });
}

}  // namespace antmd
