// Attribution profiler: who is spending the modeled machine's time.
//
// The metrics registry answers "how much" (one aggregate network fraction,
// per-phase counters); this collector answers "where and why": which message
// class (position multicast, force reduction, kspace/FFT aggregation,
// barrier, ack/retransmit reliability), which torus links, and which tasks
// on the step's critical path.  machine::TimingModel + ReliableTransport
// feed the network side; util::TaskGraph feeds per-task spans, critical
// path, slack and what-if savings.
//
// Contract (mirrors the metrics layer's):
//   * Gated on a process-wide profiling flag, independent of the telemetry
//     flag and off by default.  Every hot-path caller checks
//     profiling_enabled() — a single relaxed atomic load — before doing any
//     work, so profiling-off costs nothing per message, task or step.
//   * Collection never touches simulation state: profiling on vs off is
//     trajectory-bit-identical (guarded by parallel_determinism_test).
//   * Bit-exact accounting: each message class maps 1:1 onto one
//     StepBreakdown network field and is accumulated with the same `+=`
//     sequence the simulation uses for its own aggregate, so the per-class
//     sums reproduce StepBreakdown::network_total() exactly — no
//     double-count, no leak (guarded by profile_test).
//   * Feeds are step-scale (one call per step / per graph run), so a plain
//     mutex is fine; there is no per-message locking anywhere.
//
// Export: to_json() renders the versioned "antmd.profile/v1" document,
// render_summary() the human end-of-run table (top links, per-class
// fractions, critical-path bottlenecks).  See DESIGN.md "Attribution &
// critical path" for the schema.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace antmd::obs {

namespace detail {

inline std::atomic<bool>& profiling_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

}  // namespace detail

/// Process-wide attribution-profiling switch; off by default.
inline bool profiling_enabled() {
  return detail::profiling_flag().load(std::memory_order_relaxed);
}
inline void set_profiling(bool on) {
  detail::profiling_flag().store(on, std::memory_order_relaxed);
}

/// RAII enable/restore for tests and drivers.
class ScopedProfiling {
 public:
  explicit ScopedProfiling(bool on) : previous_(profiling_enabled()) {
    set_profiling(on);
  }
  ~ScopedProfiling() { set_profiling(previous_); }
  ScopedProfiling(const ScopedProfiling&) = delete;
  ScopedProfiling& operator=(const ScopedProfiling&) = delete;

 private:
  bool previous_;
};

/// Message classes on the modeled network.  Each maps 1:1 onto one
/// StepBreakdown field (the comment), which is what makes the per-class
/// accounting exactly partition the aggregate network time.
enum class MessageClass : int {
  kPositionMulticast = 0,  ///< StepBreakdown::multicast
  kForceReduction = 1,     ///< StepBreakdown::reduce
  kKspaceFft = 2,          ///< StepBreakdown::kspace_fft_comm
  kBarrierSync = 3,        ///< StepBreakdown::sync
  kReliability = 4,        ///< StepBreakdown::reliability
};
inline constexpr size_t kMessageClassCount = 5;

[[nodiscard]] const char* message_class_name(MessageClass c);

/// One step's contribution for one message class.  `total_s` must equal the
/// matching StepBreakdown field exactly; the component fields decompose it
/// (serialization = bytes over bandwidth, queueing = per-message injection
/// overhead, contention = hop-latency / bisection / barrier terms,
/// reliability = retransmit protocol overhead).  Components are computed
/// from the same model terms as the total, so they re-sum to it to within
/// floating-point rounding — the bit-exact guarantee rides on `total_s`.
struct NetSample {
  double total_s = 0.0;
  double serialization_s = 0.0;
  double queueing_s = 0.0;
  double contention_s = 0.0;
  double reliability_s = 0.0;
  uint64_t messages = 0;
  double bytes = 0.0;
};

/// Accumulated per-class totals (same shape as NetSample).
using NetClassTotals = NetSample;

/// One task's span within one graph run (fed by util::TaskGraph).
struct TaskSpan {
  const char* name = "";
  double busy_us = 0.0;   ///< total work attributed to the task this run
  double slack_us = 0.0;  ///< how much it could grow without moving the CP
  /// Critical-path shortening if this task were free (what-if analysis).
  double whatif_saving_us = 0.0;
  bool on_critical_path = false;
};

/// Aggregated per-task record (public query shape).
struct TaskProfile {
  std::string name;
  uint64_t runs = 0;
  double busy_us = 0.0;
  double slack_us = 0.0;
  double whatif_saving_us = 0.0;
  uint64_t on_critical = 0;  ///< runs in which the task sat on the CP
};

/// Aggregated per-graph record (public query shape).
struct GraphProfile {
  std::string name;
  uint64_t runs = 0;
  double critical_us = 0.0;  ///< summed critical-path length
  double busy_us = 0.0;      ///< summed total work
  std::vector<TaskProfile> tasks;
};

/// One torus link's accumulated load (public query shape).
struct LinkLoad {
  size_t link = 0;
  std::string label;   ///< "n<id>(x,y,z).<axis><sign>", empty if unlabeled
  double bytes = 0.0;  ///< total bytes routed over the link
  uint64_t steps = 0;  ///< steps in which it carried traffic
};

class Profile {
 public:
  Profile();

  /// The process-wide collector antmd_run and the task runtime feed.
  /// Fleet runs install per-run instances instead (Driver::profile()).
  static Profile& global();

  // --- network feed (one call per class per step) ---------------------------
  void record_network(MessageClass c, const NetSample& s);
  /// Per-directed-link byte loads for the step (index = torus link id).
  void record_links(const std::vector<double>& link_bytes);
  /// Link id -> human label; only the first non-empty set sticks.
  void set_link_labels(std::vector<std::string> labels);
  /// Reliability protocol event counts (ReliableTransport delivery record).
  void record_transport(uint64_t retransmits, uint64_t reroutes,
                        uint64_t crc_detected, uint64_t drops);
  void record_step() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++steps_;
  }

  // --- task-graph feed (one call per graph run) -----------------------------
  void record_graph(const char* graph, double critical_us, double busy_us,
                    const std::vector<TaskSpan>& spans);

  // --- queries --------------------------------------------------------------
  [[nodiscard]] uint64_t steps() const;
  [[nodiscard]] NetClassTotals net(MessageClass c) const;
  /// Fixed left-to-right sum over classes in enum order — the same
  /// association as StepBreakdown::network_total(), hence bit-comparable.
  [[nodiscard]] double network_total_s() const;
  [[nodiscard]] std::vector<LinkLoad> top_links(size_t n) const;
  struct LinkHistogram {
    std::vector<double> edges;      ///< bucket i counts loads <= edges[i]
    std::vector<uint64_t> buckets;  ///< size edges+1, last = overflow
  };
  [[nodiscard]] LinkHistogram link_histogram() const;
  [[nodiscard]] std::vector<GraphProfile> graphs() const;

  // --- export ---------------------------------------------------------------
  /// Versioned "antmd.profile/v1" JSON document.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable end-of-run table: per-class network fractions with the
  /// serialization/queueing/contention split, top-N contended links, and
  /// the per-graph critical-path bottleneck/what-if report.
  [[nodiscard]] std::string render_summary(size_t top_n = 5) const;
  /// Folds another profile's network/link/transport totals into this one
  /// (fleet aggregation; task-graph records stay with the global profile).
  void merge_network(const Profile& other);
  /// Mirrors the per-class totals into the registry's profile.* gauges so
  /// metrics dumps (JSON / Prometheus) carry the attribution too.
  void publish_metrics() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  uint64_t steps_ = 0;
  std::array<NetClassTotals, kMessageClassCount> net_{};
  std::vector<double> link_bytes_;
  std::vector<uint64_t> link_steps_;
  std::vector<std::string> link_labels_;
  std::vector<double> hist_edges_;
  std::vector<uint64_t> hist_buckets_;  ///< edges+1, last = overflow
  uint64_t retransmits_ = 0;
  uint64_t reroutes_ = 0;
  uint64_t crc_detected_ = 0;
  uint64_t drops_ = 0;

  struct TaskAccum {
    uint64_t runs = 0;
    double busy_us = 0.0;
    double slack_us = 0.0;
    double whatif_saving_us = 0.0;
    uint64_t on_critical = 0;
  };
  struct GraphAccum {
    uint64_t runs = 0;
    double critical_us = 0.0;
    double busy_us = 0.0;
    std::map<std::string, TaskAccum> tasks;
  };
  std::map<std::string, GraphAccum> graphs_;
};

}  // namespace antmd::obs
