// Per-kernel phase tracing in Chrome trace_event format.
//
// TracePhase is the RAII unit of instrumentation: construct it at the top
// of a phase and the destructor (a) adds the elapsed nanoseconds to an
// optional Counter — feeding the metrics registry's phase breakdown even
// when no trace file is being written — and (b) appends a complete event
// ("ph":"X") to the global TraceSession when one is recording.  Load the
// resulting file in chrome://tracing or https://ui.perfetto.dev.
//
// Tracks: by default an event lands on the calling thread's track (a small
// stable per-thread id).  Passing an explicit `track` id instead puts it on
// a synthetic track — the engine uses 1000+node for per-node force
// evaluation and the sampling drivers 2000+replica — so per-node/per-replica
// timelines render separately no matter which worker thread ran the work.
//
// Costs: with telemetry disabled a TracePhase is two relaxed atomic loads;
// enabled but not recording adds two steady_clock reads and a counter add;
// recording appends one small struct under a mutex.  Phases are step-scale
// (>> microseconds), so none of this is measurable on the hot path — the
// budget is enforced by scripts/check_metrics_overhead.sh.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace antmd::obs {

/// Microseconds since the process-wide steady-clock epoch (first use).
double now_us();

/// Synthetic track ids start here (engine: 1000+node, sampling drivers:
/// 2000+replica); smaller tids are per-thread tracks.  Only synthetic
/// tracks are namespaced per fleet run — worker threads are shared.
inline constexpr uint32_t kSyntheticTrackBase = 1000;

/// Stride between two fleet runs' synthetic track ranges.  Without it two
/// multiplexed machine runs would interleave spans on the same 1000+node
/// track; with it run R's node n renders as tid 1000+n+R*stride under
/// process R (see TraceSession::set_active_run).
inline constexpr uint32_t kRunTidStride = 100000;

class TraceSession {
 public:
  /// The process-wide session every TracePhase reports to.
  static TraceSession& global();

  /// Begins recording; events are buffered in memory until stop().
  /// `path` may be empty (buffer only — to_json() still works; tests).
  void start(std::string path);

  /// Stops recording and, when a path was given, writes the JSON file.
  /// Returns false if the file could not be written.  Idempotent.
  bool stop();

  [[nodiscard]] bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Appends one complete event.  `name`/`cat`/`arg_name` must be string
  /// literals (stored by pointer).  tid selects the track; pass
  /// arg_name == nullptr for no args object.
  void emit_complete(const char* name, const char* cat, double ts_us,
                     double dur_us, uint32_t tid,
                     const char* arg_name = nullptr, int64_t arg = 0);

  /// Names a track (rendered by Chrome as the thread name).  Idempotent.
  void set_track_name(uint32_t tid, const std::string& name);

  /// Scopes subsequent events to fleet run `index` (0 = the default solo
  /// process): events carry pid = index, synthetic tids (>=
  /// kSyntheticTrackBase) shift by index * kRunTidStride, and a non-empty
  /// `name` becomes the run's process_name metadata.  A relaxed store —
  /// safe to call per scheduler slice whether or not a trace is recording.
  void set_active_run(uint32_t index, const std::string& name = {});
  [[nodiscard]] uint32_t active_run() const {
    return run_index_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] size_t event_count() const;
  /// Events discarded after the in-memory cap was hit.
  [[nodiscard]] size_t dropped_count() const;

  /// Renders the buffered events as a Chrome trace JSON document.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    double ts_us;
    double dur_us;
    uint32_t pid;  ///< fleet run index (0 = solo process)
    uint32_t tid;
    const char* arg_name;  ///< nullptr = no args
    int64_t arg;
  };

  /// Buffered-event cap (~56 MB); beyond it events are counted, not kept.
  static constexpr size_t kMaxEvents = size_t{1} << 20;

  /// Renders the trace document; caller holds mutex_.
  [[nodiscard]] std::string render_locked() const;

  std::atomic<bool> recording_{false};
  std::atomic<uint32_t> run_index_{0};
  mutable std::mutex mutex_;
  std::string path_;
  std::vector<Event> events_;
  /// (pid, tid) -> name; pid keys the fleet run the name belongs to.
  std::map<std::pair<uint32_t, uint32_t>, std::string> track_names_;
  std::map<uint32_t, std::string> process_names_;
  size_t dropped_ = 0;
};

/// RAII run scope for the fleet scheduler: activates run `index` for the
/// current slice and restores the previous run on exit.
class TraceRunScope {
 public:
  TraceRunScope(uint32_t index, const std::string& name)
      : previous_(TraceSession::global().active_run()) {
    TraceSession::global().set_active_run(index, name);
  }
  ~TraceRunScope() { TraceSession::global().set_active_run(previous_); }
  TraceRunScope(const TraceRunScope&) = delete;
  TraceRunScope& operator=(const TraceRunScope&) = delete;

 private:
  uint32_t previous_;
};

/// RAII phase scope: times [construction, destruction), accumulates into
/// `accum_ns` (nanoseconds) and emits a trace event when recording.
/// `track` < 0 uses the calling thread's track.
class TracePhase {
 public:
  explicit TracePhase(const char* name, const char* cat = "antmd",
                      Counter* accum_ns = nullptr, int64_t track = -1,
                      const char* arg_name = nullptr, int64_t arg = 0)
      : name_(name),
        cat_(cat),
        accum_(accum_ns),
        track_(track),
        arg_name_(arg_name),
        arg_(arg),
        live_(enabled()) {
    if (live_) start_us_ = now_us();
  }

  ~TracePhase() {
    if (!live_) return;
    const double end_us = now_us();
    const double dur_us = end_us - start_us_;
    if (accum_) {
      accum_->add(static_cast<uint64_t>(dur_us * 1e3));
    }
    TraceSession& session = TraceSession::global();
    if (session.recording()) {
      uint32_t tid = track_ >= 0 ? static_cast<uint32_t>(track_)
                                 : static_cast<uint32_t>(
                                       detail::thread_index());
      session.emit_complete(name_, cat_, start_us_, dur_us, tid, arg_name_,
                            arg_);
    }
  }

  TracePhase(const TracePhase&) = delete;
  TracePhase& operator=(const TracePhase&) = delete;

 private:
  const char* name_;
  const char* cat_;
  Counter* accum_;
  int64_t track_;
  const char* arg_name_;
  int64_t arg_;
  bool live_;
  double start_us_ = 0.0;
};

/// RAII timer that only accumulates nanoseconds into a Counter (no trace
/// event) — for spots too hot or too numerous to appear on a timeline.
class ScopedTimer {
 public:
  explicit ScopedTimer(Counter& accum_ns)
      : accum_(&accum_ns), live_(enabled()) {
    if (live_) start_us_ = now_us();
  }
  ~ScopedTimer() {
    if (live_) accum_->add(static_cast<uint64_t>((now_us() - start_us_) * 1e3));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter* accum_;
  bool live_;
  double start_us_ = 0.0;
};

}  // namespace antmd::obs
