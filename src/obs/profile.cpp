#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace antmd::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Link-load histogram edges: bytes carried by one directed link in one
/// step, decade-spaced.  Bucket i counts loads <= edges[i] (inclusive upper
/// bounds, same convention as obs::Histogram); the extra bucket overflows.
const std::vector<double>& default_link_edges() {
  static const std::vector<double> edges = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
  return edges;
}

}  // namespace

const char* message_class_name(MessageClass c) {
  switch (c) {
    case MessageClass::kPositionMulticast: return "position_multicast";
    case MessageClass::kForceReduction: return "force_reduction";
    case MessageClass::kKspaceFft: return "kspace_fft";
    case MessageClass::kBarrierSync: return "barrier_sync";
    case MessageClass::kReliability: return "reliability";
  }
  return "unknown";
}

Profile::Profile()
    : hist_edges_(default_link_edges()),
      hist_buckets_(default_link_edges().size() + 1, 0) {}

Profile& Profile::global() {
  static Profile profile;
  return profile;
}

void Profile::record_network(MessageClass c, const NetSample& s) {
  std::lock_guard<std::mutex> lock(mutex_);
  NetClassTotals& t = net_[static_cast<size_t>(c)];
  // Accumulated exactly like the simulation's own StepBreakdown aggregate:
  // one += of the per-step value per field — the bit-exactness contract.
  t.total_s += s.total_s;
  t.serialization_s += s.serialization_s;
  t.queueing_s += s.queueing_s;
  t.contention_s += s.contention_s;
  t.reliability_s += s.reliability_s;
  t.messages += s.messages;
  t.bytes += s.bytes;
}

void Profile::record_links(const std::vector<double>& link_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (link_bytes_.size() < link_bytes.size()) {
    link_bytes_.resize(link_bytes.size(), 0.0);
    link_steps_.resize(link_bytes.size(), 0);
  }
  for (size_t l = 0; l < link_bytes.size(); ++l) {
    const double b = link_bytes[l];
    if (b <= 0.0) continue;
    link_bytes_[l] += b;
    ++link_steps_[l];
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(hist_edges_.begin(), hist_edges_.end(), b) -
        hist_edges_.begin());
    ++hist_buckets_[bucket];
  }
}

void Profile::set_link_labels(std::vector<std::string> labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (link_labels_.empty() && !labels.empty()) {
    link_labels_ = std::move(labels);
  }
}

void Profile::record_transport(uint64_t retransmits, uint64_t reroutes,
                               uint64_t crc_detected, uint64_t drops) {
  std::lock_guard<std::mutex> lock(mutex_);
  retransmits_ += retransmits;
  reroutes_ += reroutes;
  crc_detected_ += crc_detected;
  drops_ += drops;
}

void Profile::record_graph(const char* graph, double critical_us,
                           double busy_us, const std::vector<TaskSpan>& spans) {
  std::lock_guard<std::mutex> lock(mutex_);
  GraphAccum& g = graphs_[graph];
  ++g.runs;
  g.critical_us += critical_us;
  g.busy_us += busy_us;
  for (const TaskSpan& s : spans) {
    TaskAccum& t = g.tasks[s.name];
    ++t.runs;
    t.busy_us += s.busy_us;
    t.slack_us += s.slack_us;
    t.whatif_saving_us += s.whatif_saving_us;
    if (s.on_critical_path) ++t.on_critical;
  }
}

uint64_t Profile::steps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return steps_;
}

NetClassTotals Profile::net(MessageClass c) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return net_[static_cast<size_t>(c)];
}

double Profile::network_total_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Left-to-right in enum order: the same association as
  // StepBreakdown::network_total(), so the comparison can be exact.
  double total = 0.0;
  for (const NetClassTotals& t : net_) total += t.total_s;
  return total;
}

std::vector<LinkLoad> Profile::top_links(size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<LinkLoad> loads;
  for (size_t l = 0; l < link_bytes_.size(); ++l) {
    if (link_bytes_[l] <= 0.0) continue;
    LinkLoad load;
    load.link = l;
    if (l < link_labels_.size()) load.label = link_labels_[l];
    load.bytes = link_bytes_[l];
    load.steps = link_steps_[l];
    loads.push_back(std::move(load));
  }
  std::sort(loads.begin(), loads.end(),
            [](const LinkLoad& a, const LinkLoad& b) {
              return a.bytes != b.bytes ? a.bytes > b.bytes : a.link < b.link;
            });
  if (loads.size() > n) loads.resize(n);
  return loads;
}

Profile::LinkHistogram Profile::link_histogram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hist_edges_, hist_buckets_};
}

std::vector<GraphProfile> Profile::graphs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GraphProfile> out;
  out.reserve(graphs_.size());
  for (const auto& [name, g] : graphs_) {
    GraphProfile gp;
    gp.name = name;
    gp.runs = g.runs;
    gp.critical_us = g.critical_us;
    gp.busy_us = g.busy_us;
    for (const auto& [task, t] : g.tasks) {
      gp.tasks.push_back({task, t.runs, t.busy_us, t.slack_us,
                          t.whatif_saving_us, t.on_critical});
    }
    // Heaviest tasks first: that is the order every report wants.
    std::sort(gp.tasks.begin(), gp.tasks.end(),
              [](const TaskProfile& a, const TaskProfile& b) {
                return a.busy_us != b.busy_us ? a.busy_us > b.busy_us
                                              : a.name < b.name;
              });
    out.push_back(std::move(gp));
  }
  return out;
}

std::string Profile::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const NetClassTotals& t : net_) total += t.total_s;

  std::string out = "{\n  \"schema\": \"antmd.profile/v1\",\n";
  out += "  \"steps\": " + std::to_string(steps_) + ",\n";

  out += "  \"network\": {\n    \"total_s\": " + fmt_double(total) +
         ",\n    \"classes\": {";
  for (size_t c = 0; c < kMessageClassCount; ++c) {
    const NetClassTotals& t = net_[c];
    out += c ? ",\n" : "\n";
    out += "      \"";
    out += message_class_name(static_cast<MessageClass>(c));
    out += "\": {\"total_s\": " + fmt_double(t.total_s) +
           ", \"serialization_s\": " + fmt_double(t.serialization_s) +
           ", \"queueing_s\": " + fmt_double(t.queueing_s) +
           ", \"contention_s\": " + fmt_double(t.contention_s) +
           ", \"reliability_s\": " + fmt_double(t.reliability_s) +
           ", \"messages\": " + std::to_string(t.messages) +
           ", \"bytes\": " + fmt_double(t.bytes) +
           ", \"fraction\": " + fmt_double(total > 0 ? t.total_s / total : 0.0) +
           "}";
  }
  out += "\n    },\n    \"transport\": {\"retransmits\": " +
         std::to_string(retransmits_) +
         ", \"reroutes\": " + std::to_string(reroutes_) +
         ", \"crc_detected\": " + std::to_string(crc_detected_) +
         ", \"drops\": " + std::to_string(drops_) + "}\n  },\n";

  out += "  \"links\": {\n    \"histogram\": {\"edges\": [";
  for (size_t i = 0; i < hist_edges_.size(); ++i) {
    if (i) out += ", ";
    out += fmt_double(hist_edges_[i]);
  }
  out += "], \"buckets\": [";
  for (size_t i = 0; i < hist_buckets_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(hist_buckets_[i]);
  }
  out += "]},\n    \"top\": [";
  // Inline top-10 without re-locking (mutex_ is already held).
  {
    std::vector<size_t> order;
    for (size_t l = 0; l < link_bytes_.size(); ++l) {
      if (link_bytes_[l] > 0.0) order.push_back(l);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return link_bytes_[a] != link_bytes_[b] ? link_bytes_[a] > link_bytes_[b]
                                              : a < b;
    });
    if (order.size() > 10) order.resize(10);
    for (size_t i = 0; i < order.size(); ++i) {
      const size_t l = order[i];
      out += i ? ",\n            " : "\n            ";
      out += "{\"link\": " + std::to_string(l) + ", \"label\": \"" +
             json_escape(l < link_labels_.size() ? link_labels_[l] : "") +
             "\", \"bytes\": " + fmt_double(link_bytes_[l]) +
             ", \"steps\": " + std::to_string(link_steps_[l]) + "}";
    }
  }
  out += "]\n  },\n";

  out += "  \"critical_path\": {\n    \"graphs\": [";
  bool first_graph = true;
  for (const auto& [name, g] : graphs_) {
    out += first_graph ? "\n" : ",\n";
    first_graph = false;
    const double runs = g.runs > 0 ? static_cast<double>(g.runs) : 1.0;
    out += "      {\"name\": \"" + json_escape(name) +
           "\", \"runs\": " + std::to_string(g.runs) +
           ", \"critical_s\": " + fmt_double(g.critical_us * 1e-6) +
           ", \"busy_s\": " + fmt_double(g.busy_us * 1e-6) +
           ", \"parallelism\": " +
           fmt_double(g.critical_us > 0 ? g.busy_us / g.critical_us : 0.0) +
           ",\n       \"tasks\": [";
    bool first_task = true;
    for (const auto& [task, t] : g.tasks) {
      out += first_task ? "\n" : ",\n";
      first_task = false;
      out += "         {\"name\": \"" + json_escape(task) +
             "\", \"busy_s\": " + fmt_double(t.busy_us * 1e-6) +
             ", \"busy_share\": " +
             fmt_double(g.busy_us > 0 ? t.busy_us / g.busy_us : 0.0) +
             ", \"critical_share\": " +
             fmt_double(static_cast<double>(t.on_critical) / runs) +
             ", \"mean_slack_us\": " +
             fmt_double(t.slack_us / static_cast<double>(t.runs ? t.runs : 1)) +
             ", \"whatif_saving_s\": " +
             fmt_double(t.whatif_saving_us * 1e-6) + "}";
    }
    out += "]}";
  }
  out += "\n    ]\n  }\n}\n";
  return out;
}

std::string Profile::render_summary(size_t top_n) const {
  std::string out;
  char buf[256];
  const uint64_t n_steps = steps();

  std::snprintf(buf, sizeof(buf),
                "profile: modeled network attribution (%llu steps)\n",
                static_cast<unsigned long long>(n_steps));
  out += buf;
  const double total = network_total_s();
  std::snprintf(buf, sizeof(buf),
                "  %-20s %12s %7s %10s %10s %10s\n", "class", "time_s",
                "share", "serial_s", "queue_s", "contend_s");
  out += buf;
  for (size_t c = 0; c < kMessageClassCount; ++c) {
    const NetClassTotals t = net(static_cast<MessageClass>(c));
    std::snprintf(buf, sizeof(buf),
                  "  %-20s %12.6g %6.1f%% %10.4g %10.4g %10.4g\n",
                  message_class_name(static_cast<MessageClass>(c)), t.total_s,
                  total > 0 ? 100.0 * t.total_s / total : 0.0,
                  t.serialization_s, t.queueing_s, t.contention_s);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  %-20s %12.6g\n", "network_total", total);
  out += buf;

  const std::vector<LinkLoad> links = top_links(top_n);
  if (!links.empty()) {
    out += "top contended torus links:\n";
    for (const LinkLoad& l : links) {
      std::snprintf(buf, sizeof(buf), "  %-24s %14.6g bytes over %llu steps\n",
                    l.label.empty() ? ("link#" + std::to_string(l.link)).c_str()
                                    : l.label.c_str(),
                    l.bytes, static_cast<unsigned long long>(l.steps));
      out += buf;
    }
  }

  for (const GraphProfile& g : graphs()) {
    const double runs = g.runs > 0 ? static_cast<double>(g.runs) : 1.0;
    std::snprintf(buf, sizeof(buf),
                  "critical path [%s]: %llu runs, parallelism %.2fx\n",
                  g.name.c_str(), static_cast<unsigned long long>(g.runs),
                  g.critical_us > 0 ? g.busy_us / g.critical_us : 0.0);
    out += buf;
    size_t shown = 0;
    for (const TaskProfile& t : g.tasks) {
      if (shown++ >= top_n) break;
      std::snprintf(
          buf, sizeof(buf),
          "  %-28s busy %5.1f%%  on-CP %5.1f%%  slack %9.3g us  "
          "what-if saves %0.3g us/run\n",
          t.name.c_str(), g.busy_us > 0 ? 100.0 * t.busy_us / g.busy_us : 0.0,
          100.0 * static_cast<double>(t.on_critical) / runs,
          t.slack_us / static_cast<double>(t.runs ? t.runs : 1),
          t.whatif_saving_us / runs);
      out += buf;
    }
  }
  return out;
}

void Profile::merge_network(const Profile& other) {
  // Snapshot the source outside our own lock (no lock ordering issues).
  std::array<NetClassTotals, kMessageClassCount> net;
  std::vector<double> bytes;
  std::vector<uint64_t> steps;
  std::vector<std::string> labels;
  std::vector<uint64_t> buckets;
  uint64_t n_steps, retrans, reroutes, crc, drops;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    net = other.net_;
    bytes = other.link_bytes_;
    steps = other.link_steps_;
    labels = other.link_labels_;
    buckets = other.hist_buckets_;
    n_steps = other.steps_;
    retrans = other.retransmits_;
    reroutes = other.reroutes_;
    crc = other.crc_detected_;
    drops = other.drops_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t c = 0; c < kMessageClassCount; ++c) {
    net_[c].total_s += net[c].total_s;
    net_[c].serialization_s += net[c].serialization_s;
    net_[c].queueing_s += net[c].queueing_s;
    net_[c].contention_s += net[c].contention_s;
    net_[c].reliability_s += net[c].reliability_s;
    net_[c].messages += net[c].messages;
    net_[c].bytes += net[c].bytes;
  }
  if (link_bytes_.size() < bytes.size()) {
    link_bytes_.resize(bytes.size(), 0.0);
    link_steps_.resize(bytes.size(), 0);
  }
  for (size_t l = 0; l < bytes.size(); ++l) {
    link_bytes_[l] += bytes[l];
    link_steps_[l] += steps[l];
  }
  if (link_labels_.empty()) link_labels_ = std::move(labels);
  for (size_t b = 0; b < buckets.size() && b < hist_buckets_.size(); ++b) {
    hist_buckets_[b] += buckets[b];
  }
  steps_ += n_steps;
  retransmits_ += retrans;
  reroutes_ += reroutes;
  crc_detected_ += crc;
  drops_ += drops;
}

void Profile::publish_metrics() const {
  auto& reg = MetricsRegistry::global();
  reg.gauge("profile.network.total_seconds").set(network_total_s());
  for (size_t c = 0; c < kMessageClassCount; ++c) {
    const auto cls = static_cast<MessageClass>(c);
    const NetClassTotals t = net(cls);
    std::string base = std::string("profile.network.") +
                       message_class_name(cls);
    reg.gauge(base + ".seconds").set(t.total_s);
    reg.gauge(base + ".serialization_seconds").set(t.serialization_s);
    reg.gauge(base + ".queueing_seconds").set(t.queueing_s);
    reg.gauge(base + ".contention_seconds").set(t.contention_s);
  }
}

void Profile::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  steps_ = 0;
  net_ = {};
  link_bytes_.clear();
  link_steps_.clear();
  link_labels_.clear();
  std::fill(hist_buckets_.begin(), hist_buckets_.end(), 0);
  retransmits_ = reroutes_ = crc_detected_ = drops_ = 0;
  graphs_.clear();
}

}  // namespace antmd::obs
