#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace antmd::obs {

namespace detail {

size_t thread_index() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

namespace {

uint64_t double_bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Relaxed atomic double accumulation via CAS on the bit pattern.
void atomic_add_double(std::atomic<uint64_t>& bits, double delta) {
  uint64_t observed = bits.load(std::memory_order_relaxed);
  uint64_t desired;
  do {
    desired = double_bits(bits_double(observed) + delta);
  } while (!bits.compare_exchange_weak(observed, desired,
                                       std::memory_order_relaxed));
}

/// Shortest round-trippable double for JSON/text output.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Escapes a metric name for embedding in a JSON string literal.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace
}  // namespace detail

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (edges_.empty()) edges_.push_back(0.0);
  std::sort(edges_.begin(), edges_.end());
  for (Shard& s : shards_) {
    s.counts = std::make_unique<std::atomic<uint64_t>[]>(edges_.size() + 1);
  }
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  // First edge >= v; v beyond every edge lands in the overflow bucket.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  Shard& shard = shards_[detail::shard_index()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(shard.sum_bits, v);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(edges_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < out.size(); ++b) {
      out[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (uint64_t c : bucket_counts()) total += c;
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += detail::bits_double(s.sum_bits.load(std::memory_order_relaxed));
  }
  return total;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < edges_.size() + 1; ++b) {
      s.counts[b].store(0, std::memory_order_relaxed);
    }
    s.sum_bits.store(detail::double_bits(0.0), std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(edges)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.edges = h->edges();
    hv.buckets = h->bucket_counts();
    for (uint64_t b : hv.buckets) hv.count += b;
    hv.sum = h->sum();
    snap.histograms[name] = std::move(hv);
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + detail::json_escape(name) +
           "\": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + detail::json_escape(name) +
           "\": " + detail::format_double(value);
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + detail::json_escape(name) + "\": {\"edges\": [";
    for (size_t i = 0; i < h.edges.size(); ++i) {
      if (i) out += ", ";
      out += detail::format_double(h.edges[i]);
    }
    out += "], \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "], \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + detail::format_double(h.sum) + "}";
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + detail::format_double(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name + ".count " + std::to_string(h.count) + "\n";
    out += name + ".sum " + detail::format_double(h.sum) + "\n";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      std::string edge = i < h.edges.size()
                             ? "le_" + detail::format_double(h.edges[i])
                             : "overflow";
      out += name + ".bucket." + edge + " " + std::to_string(h.buckets[i]) +
             "\n";
    }
  }
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  // Metric names use dots (subsystem.phase.metric); Prometheus only allows
  // [a-zA-Z0-9_:].  Map everything else to '_' and prefix the namespace.
  auto sanitize = [](const std::string& name) {
    std::string out = "antmd_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + detail::format_double(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string n = sanitize(name);
    out += "# TYPE " + n + " histogram\n";
    // Prometheus buckets are cumulative; ours are per-bin.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.edges.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      out += n + "_bucket{le=\"" + detail::format_double(h.edges[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + detail::format_double(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::vector<PhaseShare> phase_breakdown(const MetricsSnapshot& snapshot) {
  constexpr std::string_view kSuffix = ".time_ns";
  std::vector<PhaseShare> phases;
  double total = 0.0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
            0) {
      continue;
    }
    PhaseShare p;
    p.name = name.substr(0, name.size() - kSuffix.size());
    p.seconds = static_cast<double>(value) * 1e-9;
    total += p.seconds;
    phases.push_back(std::move(p));
  }
  if (total > 0) {
    for (PhaseShare& p : phases) p.fraction = p.seconds / total;
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseShare& a, const PhaseShare& b) {
              return a.seconds > b.seconds;
            });
  return phases;
}

void register_standard_metrics(MetricsRegistry& registry) {
  // md: the functional engine's phases and cadence.
  for (const char* name :
       {"md.bonded.time_ns", "md.nonbonded.time_ns", "md.kspace.time_ns",
        "md.constraints.time_ns", "md.integrate.time_ns",
        "md.neighbor.time_ns", "md.step.count", "md.neighbor.rebuild.count"}) {
    registry.counter(name);
  }
  // runtime: the machine-mapped engine.
  for (const char* name :
       {"runtime.evaluate.time_ns", "runtime.node_eval.time_ns",
        "runtime.node_eval.count",
        "runtime.redistribute.time_ns", "runtime.redistribute.count",
        "runtime.remap.count", "runtime.step.count",
        "runtime.constraints.time_ns", "runtime.integrate.time_ns",
        "runtime.kspace.time_ns"}) {
    registry.counter(name);
  }
  registry.gauge("runtime.alive_nodes");
  // machine: the modeled hardware's counters.
  for (const char* name :
       {"machine.model.step_seconds", "machine.model.total_seconds",
        "machine.model.ns_per_day", "machine.model.htis_utilization",
        "machine.model.gc_utilization", "machine.model.network_fraction",
        "machine.torus.mean_hops", "machine.torus.diameter",
        "machine.contention.multicast_seconds",
        "machine.contention.max_link_bytes"}) {
    registry.gauge(name);
  }
  // sampling: enhanced-sampling drivers.
  for (const char* name :
       {"sampling.tempering.attempt.count", "sampling.tempering.accept.count",
        "sampling.exchange.attempt.count", "sampling.exchange.accept.count",
        "sampling.metadynamics.hill.count", "sampling.fep.window.count",
        "sampling.fep.sample.count"}) {
    registry.counter(name);
  }
  registry.gauge("sampling.fep.windows_done");
  // resilience + fault injection.
  for (const char* name :
       {"resilience.health.check.count", "resilience.health.violation.count",
        "resilience.health.rollback.count",
        "resilience.health.snapshot.count", "util.fault.io_write_fail.count",
        "util.fault.io_short_write.count", "util.fault.nan_force.count",
        "util.fault.node_fail.count"}) {
    registry.counter(name);
  }
  registry.gauge("resilience.supervisor.snapshot_bytes");
  // fleet: the multi-run scheduler.
  for (const char* name :
       {"fleet.submit.count", "fleet.reject.count", "fleet.complete.count",
        "fleet.quarantine.count", "fleet.evict.count",
        "fleet.rehydrate.count", "fleet.slice.count"}) {
    registry.counter(name);
  }
  registry.gauge("fleet.active_runs");
  registry.gauge("fleet.queued_runs");
  registry.gauge("fleet.resident_bytes");
  // profile: the attribution profiler's per-class network split (populated
  // only when obs::set_profiling(true); see obs/profile.hpp).  Class names
  // follow obs::message_class_name.
  registry.gauge("profile.network.total_seconds");
  for (const char* cls :
       {"position_multicast", "force_reduction", "kspace_fft", "barrier_sync",
        "reliability"}) {
    const std::string base = std::string("profile.network.") + cls;
    registry.gauge(base + ".seconds");
    registry.gauge(base + ".serialization_seconds");
    registry.gauge(base + ".queueing_seconds");
    registry.gauge(base + ".contention_seconds");
  }
  // Per-directed-link bytes routed in one multicast step (contention model).
  registry.histogram("machine.link.step_bytes",
                     {1e2, 1e3, 1e4, 1e5, 1e6, 1e7});
}

bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot) {
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  return write_text_file(path, json ? snapshot.to_json() : snapshot.to_text());
}

bool write_text_file(const std::string& path, const std::string& body) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int rc = std::fclose(f);
  return written == body.size() && rc == 0;
}

}  // namespace antmd::obs
