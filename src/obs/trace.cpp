#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>

namespace antmd::obs {

double now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

TraceSession& TraceSession::global() {
  static TraceSession session;
  return session;
}

void TraceSession::start(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  events_.clear();
  events_.reserve(4096);
  dropped_ = 0;
  recording_.store(true, std::memory_order_relaxed);
}

bool TraceSession::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!recording_.load(std::memory_order_relaxed)) return true;
  recording_.store(false, std::memory_order_relaxed);
  if (path_.empty()) return true;
  std::string body = render_locked();
  FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) return false;
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int rc = std::fclose(f);
  return written == body.size() && rc == 0;
}

void TraceSession::emit_complete(const char* name, const char* cat,
                                 double ts_us, double dur_us, uint32_t tid,
                                 const char* arg_name, int64_t arg) {
  const uint32_t run = run_index_.load(std::memory_order_relaxed);
  if (tid >= kSyntheticTrackBase) tid += run * kRunTidStride;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!recording_.load(std::memory_order_relaxed)) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back({name, cat, ts_us, dur_us, run, tid, arg_name, arg});
}

void TraceSession::set_track_name(uint32_t tid, const std::string& name) {
  const uint32_t run = run_index_.load(std::memory_order_relaxed);
  if (tid >= kSyntheticTrackBase) tid += run * kRunTidStride;
  std::lock_guard<std::mutex> lock(mutex_);
  track_names_[{run, tid}] = name;
}

void TraceSession::set_active_run(uint32_t index, const std::string& name) {
  run_index_.store(index, std::memory_order_relaxed);
  if (!name.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    process_names_[index] = name;
  }
}

size_t TraceSession::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t TraceSession::dropped_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceSession::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return render_locked();
}

std::string TraceSession::render_locked() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char buf[256];
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\": \"process_name\", \"ph\": \"M\", "
                  "\"pid\": %u, \"tid\": 0, \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ",", pid, name.c_str());
    out += buf;
    first = false;
  }
  for (const auto& [key, name] : track_names_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %u, "
                  "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                  first ? "" : ",", key.first, key.second, name.c_str());
    out += buf;
    first = false;
  }
  for (const Event& e : events_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, \"tid\": %u",
                  first ? "" : ",", e.name, e.cat, e.ts_us, e.dur_us, e.pid,
                  e.tid);
    out += buf;
    if (e.arg_name) {
      std::snprintf(buf, sizeof(buf), ", \"args\": {\"%s\": %lld}",
                    e.arg_name, static_cast<long long>(e.arg));
      out += buf;
    }
    out += "}";
    first = false;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace antmd::obs
