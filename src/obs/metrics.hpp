// Telemetry metrics registry: named counters, gauges and fixed-bucket
// histograms shared by every subsystem.
//
// Contract (the reason this lives in its own dependency-free library):
//   * Hot-path updates are lock-free.  Counters and histograms stripe their
//     state across cache-line-padded atomic shards indexed by a stable
//     per-thread id, so worker threads in the execution layer never contend
//     on one cache line; gauges are a single relaxed atomic store.
//   * Registration (name -> metric lookup) takes a mutex, so callers cache
//     the returned reference once — typically in a function-local static —
//     and never pay the lookup on the hot path.  Metric objects are stable:
//     references stay valid for the life of the registry.
//   * The whole layer is gated on a process-wide enabled flag (off by
//     default).  When disabled every update is a single relaxed atomic load
//     and instrumentation is unobservable; enabling it must never perturb
//     simulation results — telemetry reads clocks and bumps integers, it
//     never touches simulation state (guarded by parallel_determinism_test).
//
// Naming scheme (see DESIGN.md "Observability"): subsystem.phase.metric,
// e.g. md.bonded.time_ns, runtime.redistribute.count, machine.model.ns_per_day.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace antmd::obs {

namespace detail {

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

/// Shard count for striped counters/histograms (power of two).
inline constexpr size_t kShards = 16;

/// Stable small id for the calling thread (assigned on first use).
size_t thread_index();

/// thread_index() folded into [0, kShards).
inline size_t shard_index() { return thread_index() & (kShards - 1); }

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace detail

/// Process-wide telemetry switch; off by default.
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// RAII enable/restore for tests and drivers.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(bool on) : previous_(enabled()) { set_enabled(on); }
  ~ScopedTelemetry() { set_enabled(previous_); }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  bool previous_;
};

/// Monotonic event/time accumulator (uint64).
class Counter {
 public:
  void add(uint64_t n = 1) {
    if (!enabled()) return;
    cells_[detail::shard_index()].value.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  /// Sum over shards (safe to call concurrently with add()).
  [[nodiscard]] uint64_t value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) {
      total += c.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (auto& c : cells_) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::ShardCell, detail::kShards> cells_;
};

/// Last-written double value (e.g. modeled ns/day, alive node count).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    bits_.store(encode(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return decode(bits_.load(std::memory_order_relaxed));
  }
  void reset() { bits_.store(encode(0.0), std::memory_order_relaxed); }

 private:
  static uint64_t encode(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double decode(uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};  // bit pattern of 0.0
};

/// Fixed-bucket histogram: bucket i counts observations v <= edges[i]
/// (first matching edge); one overflow bucket catches v > edges.back().
/// Per-shard bucket arrays keep observe() lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
  /// Per-bucket counts (size edges()+1; last = overflow), summed over shards.
  [[nodiscard]] std::vector<uint64_t> bucket_counts() const;
  [[nodiscard]] uint64_t count() const;
  [[nodiscard]] double sum() const;
  void reset();

 private:
  struct Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> counts;  ///< edges+1 buckets
    alignas(64) std::atomic<uint64_t> sum_bits{0};    // double bit pattern
  };

  std::vector<double> edges_;
  std::array<Shard, detail::kShards> shards_;
};

/// Snapshot of every registered metric at one instant.  Values come from
/// relaxed loads, so a snapshot taken while workers run is approximate; a
/// snapshot taken at a quiescent point (end of run) is exact.
struct MetricsSnapshot {
  struct HistogramValue {
    std::vector<double> edges;
    std::vector<uint64_t> buckets;  ///< size edges+1, last = overflow
    uint64_t count = 0;
    double sum = 0.0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;

  [[nodiscard]] uint64_t counter_or(const std::string& name,
                                    uint64_t fallback = 0) const {
    auto it = counters.find(name);
    return it == counters.end() ? fallback : it->second;
  }
  [[nodiscard]] double gauge_or(const std::string& name,
                                double fallback = 0.0) const {
    auto it = gauges.find(name);
    return it == gauges.end() ? fallback : it->second;
  }

  /// Machine-readable dump ({"counters": {...}, "gauges": {...}, ...}).
  [[nodiscard]] std::string to_json() const;
  /// Line-oriented `name value` dump (greppable).
  [[nodiscard]] std::string to_text() const;
  /// Prometheus text exposition (version 0.0.4): names sanitized to
  /// [a-zA-Z0-9_] with an `antmd_` prefix, `# TYPE` lines per family,
  /// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
  /// `_count`.  Scrape target for fleet aggregation.
  [[nodiscard]] std::string to_prometheus() const;
};

/// One phase's share of the instrumented time (from *.time_ns counters).
struct PhaseShare {
  std::string name;     ///< subsystem.phase (".time_ns" stripped)
  double seconds = 0.0;
  double fraction = 0.0;  ///< of the total instrumented time
};

/// Extracts every `*.time_ns` counter from a snapshot as (phase, seconds,
/// fraction-of-instrumented-total), descending by time.
[[nodiscard]] std::vector<PhaseShare> phase_breakdown(
    const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  /// The process-wide registry every subsystem instruments against.
  static MetricsRegistry& global();

  /// Finds or creates; the reference is stable for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Edges must be ascending and non-empty; a second call with the same
  /// name returns the existing histogram (edges argument ignored).
  Histogram& histogram(std::string_view name, std::vector<double> edges);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric value, keeping all registered objects (and thus
  /// every cached reference) valid.  Test/bench isolation hook.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Pre-registers the canonical metric set (DESIGN.md "Observability") so an
/// exported dump covers every subsystem even when a feature saw no traffic
/// this run — e.g. resilience counters stay visible, at zero, in a healthy
/// run.
void register_standard_metrics(MetricsRegistry& registry =
                                   MetricsRegistry::global());

/// Writes snapshot.to_json() (path ending in .json) or to_text() to `path`.
/// Returns false (and leaves no file guarantees) on I/O failure.
bool write_metrics_file(const std::string& path,
                        const MetricsSnapshot& snapshot);

/// Writes `body` verbatim to `path`; false on I/O failure.  Shared by the
/// CLIs for profile / Prometheus dumps.
bool write_text_file(const std::string& path, const std::string& body);

}  // namespace antmd::obs
