#include "runtime/machine_sim.hpp"

#include <memory>
#include <string>

#include "ff/nonbonded_simd.hpp"
#include "math/units.hpp"
#include "md/engine_api.hpp"
#include "md/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd::runtime {

// The machine-mapped driver and the reference md::Simulation present one
// engine surface; generic layers constrain on it instead of special-casing.
static_assert(md::EngineApi<MachineSimulation>);
namespace {

struct MachineMetrics {
  obs::Counter& steps;
  obs::Counter& integrate_ns;
  obs::Counter& constraints_ns;
  obs::Gauge& step_seconds;
  obs::Gauge& total_seconds;
  obs::Gauge& ns_day;
  obs::Gauge& htis_util;
  obs::Gauge& gc_util;
  obs::Gauge& net_fraction;
  obs::Gauge& cluster_fill;
  obs::Gauge& pair_masked_s;
  obs::Gauge& nonbonded_isa;  ///< dispatched ff::KernelIsa (0 = scalar)
  obs::Gauge& torus_mean_hops;
  obs::Gauge& torus_diameter;
  obs::Gauge& contention_multicast_s;
  obs::Gauge& contention_max_link_bytes;
  obs::Counter& transport_messages;
  obs::Counter& transport_retransmits;
  obs::Counter& transport_corrupt;
  obs::Counter& transport_drops;
  obs::Counter& transport_rerouted;
  obs::Gauge& transport_links_down;
  obs::Gauge& transport_reliability_s;
};

MachineMetrics& machine_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static MachineMetrics m{reg.counter("runtime.step.count"),
                          reg.counter("runtime.integrate.time_ns"),
                          reg.counter("runtime.constraints.time_ns"),
                          reg.gauge("machine.model.step_seconds"),
                          reg.gauge("machine.model.total_seconds"),
                          reg.gauge("machine.model.ns_per_day"),
                          reg.gauge("machine.model.htis_utilization"),
                          reg.gauge("machine.model.gc_utilization"),
                          reg.gauge("machine.model.network_fraction"),
                          reg.gauge("machine.model.cluster_fill"),
                          reg.gauge("machine.model.pair_masked_seconds"),
                          reg.gauge("machine.model.nonbonded_isa"),
                          reg.gauge("machine.torus.mean_hops"),
                          reg.gauge("machine.torus.diameter"),
                          reg.gauge("machine.contention.multicast_seconds"),
                          reg.gauge("machine.contention.max_link_bytes"),
                          reg.counter("machine.transport.message.count"),
                          reg.counter("machine.transport.retransmit.count"),
                          reg.counter("machine.transport.corrupt.count"),
                          reg.counter("machine.transport.drop.count"),
                          reg.counter("machine.transport.reroute.count"),
                          reg.gauge("machine.transport.links_down"),
                          reg.gauge("machine.transport.reliability_seconds")};
  return m;
}

void accumulate(machine::StepBreakdown& acc,
                const machine::StepBreakdown& step) {
  acc.multicast += step.multicast;
  acc.pair_phase += step.pair_phase;
  acc.pair_masked += step.pair_masked;
  acc.gc_force_phase += step.gc_force_phase;
  acc.interaction += step.interaction;
  acc.reduce += step.reduce;
  acc.update += step.update;
  acc.kspace_spread += step.kspace_spread;
  acc.kspace_fft_compute += step.kspace_fft_compute;
  acc.kspace_fft_comm += step.kspace_fft_comm;
  acc.kspace_convolve += step.kspace_convolve;
  acc.kspace_interp += step.kspace_interp;
  acc.tempering += step.tempering;
  acc.sync += step.sync;
  acc.reliability += step.reliability;
  acc.total += step.total;
}

}  // namespace

MachineSimulation::MachineSimulation(ForceField& ff,
                                     machine::MachineConfig machine_cfg,
                                     std::vector<Vec3> positions, Box box,
                                     MachineSimConfig config)
    : ff_(&ff),
      config_(config),
      timing_(machine_cfg),
      transport_(machine_cfg, config.transport),
      engine_(ff, machine_cfg, config.engine),
      dt_(units::fs_to_internal(config.dt_fs)),
      nlist_(ff.topology(), ff.model().cutoff, config.neighbor_skin,
             config.nonbonded_kernel == ff::NonbondedKernel::kCluster,
             config.cluster_width),
      constraints_(ff.topology(), 1e-8, 500,
                   config.constraint_algorithm),
      thermostat_(ff.topology(), config.thermostat),
      current_(positions.size()),
      kspace_cache_(positions.size()) {
  const Topology& topo = ff.topology();
  ANTMD_REQUIRE(positions.size() == topo.atom_count(),
                "positions/topology size mismatch");
  ANTMD_REQUIRE(config.kspace_interval >= 1, "kspace interval must be >= 1");

  state_.positions = std::move(positions);
  state_.box = box;
  state_.velocities.assign(topo.atom_count(), Vec3{});
  if (config.init_temperature_k >= 0) {
    md::init_velocities(topo, config.init_temperature_k,
                        config.velocity_seed, state_);
  }
  ff_->on_box_changed(state_.box);
  nlist_.set_execution(engine_.execution());
  nlist_.build(state_.positions, state_.box);
  engine_.redistribute(state_.positions, state_.box, nlist_.pairs(),
                       cluster_arg());
  evaluate_forces(/*kspace_due=*/true);
}

void MachineSimulation::evaluate_forces(bool kspace_due) {
  machine::StepWork work =
      engine_.evaluate(state_.positions, state_.box, state_.time,
                       nlist_.pairs(), kspace_due, current_, kspace_cache_);
  work.tempering_decisions = pending_tempering_decisions_;
  pending_tempering_decisions_ = 0;
  const bool profiling = obs::profiling_enabled();
  machine::NetworkAttribution attr;
  last_breakdown_ = timing_.step_time(work, profiling ? &attr : nullptr);
  // Reliability protocol: every modeled message rides the transport, and
  // any retransmit/backoff/reroute/hang cost lands in the step breakdown —
  // modeled time only, never the physics.
  last_delivery_ = transport_.deliver(work);
  last_breakdown_.reliability = last_delivery_.extra_s;
  last_breakdown_.total += last_delivery_.extra_s;
  accumulate(accumulated_, last_breakdown_);
  modeled_time_s_ += last_breakdown_.total;
  ++steps_timed_;

  if (obs::enabled() || profiling) {
    publish_model_metrics(work, profiling ? &attr : nullptr);
  }

  uint64_t poison_atom = 0;
  if (fault::should_fire(fault::FaultKind::kNanForce, &poison_atom)) {
    current_.forces.set_quanta(
        poison_atom % current_.forces.size(),
        {fault::kPoisonQuanta, fault::kPoisonQuanta, fault::kPoisonQuanta});
  }
}

// Publishes the modeled-performance picture for the step just timed.  Reads
// only derived quantities (breakdowns, torus geometry, link loads) — never
// writes back into the simulation, so telemetry cannot change a trajectory.
// `attr` is non-null only under attribution profiling; one contention pass
// serves both the gauges and the profiler's per-link feed.
void MachineSimulation::publish_model_metrics(
    const machine::StepWork& work, const machine::NetworkAttribution* attr) {
  auto& m = machine_metrics();
  m.step_seconds.set(last_breakdown_.total);
  m.total_seconds.set(modeled_time_s_);
  m.ns_day.set(ns_per_day());
  m.htis_util.set(last_breakdown_.htis_utilization());
  m.gc_util.set(last_breakdown_.gc_utilization());
  m.net_fraction.set(last_breakdown_.network_fraction());
  if (nlist_.cluster_mode()) {
    m.cluster_fill.set(nlist_.clusters().fill_ratio());
    m.pair_masked_s.set(last_breakdown_.pair_masked);
    m.nonbonded_isa.set(static_cast<double>(ff::active_kernel_isa()));
  }

  const auto& torus = engine_.torus();
  if (torus_mean_hops_ < 0) torus_mean_hops_ = torus.mean_hops();
  m.torus_mean_hops.set(torus_mean_hops_);
  m.torus_diameter.set(static_cast<double>(torus.diameter()));

  if (!contention_model_) {
    contention_model_ =
        std::make_unique<machine::LinkContentionModel>(timing_.config());
  }
  // Degraded links reroute in the contention picture too.
  contention_model_->set_down_links(transport_.down_links());
  auto contention = contention_model_->multicast_time(
      work.nodes, attr ? &link_scratch_ : nullptr);
  m.contention_multicast_s.set(contention.phase_time_s);
  m.contention_max_link_bytes.set(contention.max_link_bytes);

  if (attr) feed_profile(*attr);

  const auto& ts = transport_.stats();
  m.transport_messages.add(last_delivery_.messages);
  m.transport_retransmits.add(last_delivery_.retransmits);
  m.transport_corrupt.add(last_delivery_.corrupt_detected);
  m.transport_drops.add(last_delivery_.drops);
  m.transport_rerouted.add(last_delivery_.rerouted);
  m.transport_links_down.set(
      static_cast<double>(transport_.down_link_count()));
  m.transport_reliability_s.set(ts.reliability_s);
}

// Feeds the attribution profiler for the step just timed (profiling only).
// Each message class mirrors its StepBreakdown field with the same per-step
// `+=` sequence the aggregate uses, so class sums stay bit-exact against
// accumulated().network_total() (profile_test).
void MachineSimulation::feed_profile(const machine::NetworkAttribution& attr) {
  obs::Profile& p = profile_ ? *profile_ : obs::Profile::global();

  obs::NetSample s;
  s.total_s = last_breakdown_.multicast;
  s.serialization_s = attr.multicast.serialization;
  s.queueing_s = attr.multicast.queueing;
  s.contention_s = attr.multicast.contention;
  s.messages = attr.multicast_messages;
  s.bytes = attr.multicast_bytes;
  p.record_network(obs::MessageClass::kPositionMulticast, s);

  s = {};
  s.total_s = last_breakdown_.reduce;
  s.serialization_s = attr.reduce.serialization;
  s.queueing_s = attr.reduce.queueing;
  s.contention_s = attr.reduce.contention;
  s.bytes = attr.reduce_bytes;
  p.record_network(obs::MessageClass::kForceReduction, s);

  s = {};
  s.total_s = last_breakdown_.kspace_fft_comm;
  s.serialization_s = attr.kspace_fft.serialization;
  s.queueing_s = attr.kspace_fft.queueing;
  s.contention_s = attr.kspace_fft.contention;
  s.messages = attr.kspace_messages;
  s.bytes = attr.kspace_bytes;
  p.record_network(obs::MessageClass::kKspaceFft, s);

  // The barrier is pure topology latency; the reliability class is pure
  // protocol overhead (its retransmitted bytes are already charged there).
  s = {};
  s.total_s = last_breakdown_.sync;
  s.contention_s = last_breakdown_.sync;
  p.record_network(obs::MessageClass::kBarrierSync, s);

  s = {};
  s.total_s = last_breakdown_.reliability;
  s.reliability_s = last_breakdown_.reliability;
  s.messages = last_delivery_.retransmits + last_delivery_.rerouted;
  p.record_network(obs::MessageClass::kReliability, s);

  p.record_transport(last_delivery_.retransmits, last_delivery_.rerouted,
                     last_delivery_.corrupt_detected, last_delivery_.drops);

  const auto& torus = engine_.torus();
  if (link_scratch_.size() == torus.link_count()) {
    static obs::Histogram& link_hist = obs::MetricsRegistry::global().histogram(
        "machine.link.step_bytes", {1e2, 1e3, 1e4, 1e5, 1e6, 1e7});
    for (double b : link_scratch_) {
      if (b > 0.0) link_hist.observe(b);
    }
    p.record_links(link_scratch_);
    if (!link_labels_fed_) {
      link_labels_fed_ = true;
      std::vector<std::string> labels(torus.link_count());
      for (size_t l = 0; l < labels.size(); ++l) {
        const size_t src = torus.link_source(l);
        const auto c = torus.coord_of(src);
        labels[l] = "n" + std::to_string(src) + "(" + std::to_string(c[0]) +
                    "," + std::to_string(c[1]) + "," + std::to_string(c[2]) +
                    ")." + "xyz"[torus.link_axis(l)] +
                    (torus.link_sign(l) > 0 ? "+" : "-");
      }
      p.set_link_labels(std::move(labels));
    }
  }
  p.record_step();
}

void MachineSimulation::step() {
  const Topology& topo = ff_->topology();
  const size_t n = topo.atom_count();
  const auto& masses = topo.masses();
  machine_metrics().steps.add();

  {
    obs::ScopedTimer integrate_timer(machine_metrics().integrate_ns);
    for (size_t i = 0; i < n; ++i) {
      if (masses[i] == 0.0) continue;
      state_.velocities[i] += (dt_ / (2.0 * masses[i])) *
                              current_.forces.force(i);
    }
    scratch_before_ = state_.positions;
    for (size_t i = 0; i < n; ++i) {
      if (masses[i] == 0.0) continue;
      state_.positions[i] += dt_ * state_.velocities[i];
    }
  }
  if (!constraints_.empty()) {
    obs::TracePhase phase("runtime.constraints", "runtime",
                          &machine_metrics().constraints_ns);
    constraints_.apply_positions(scratch_before_, state_.positions,
                                 state_.velocities, dt_, state_.box);
  }

  if (nlist_.update(state_.positions, state_.box)) {
    engine_.redistribute(state_.positions, state_.box, nlist_.pairs(),
                         cluster_arg());
  }
  const bool kspace_due =
      (state_.step + 1) % static_cast<uint64_t>(config_.kspace_interval) == 0;
  evaluate_forces(kspace_due);

  {
    obs::ScopedTimer integrate_timer(machine_metrics().integrate_ns);
    for (size_t i = 0; i < n; ++i) {
      if (masses[i] == 0.0) continue;
      state_.velocities[i] += (dt_ / (2.0 * masses[i])) *
                              current_.forces.force(i);
    }
  }
  if (!constraints_.empty()) {
    obs::TracePhase phase("runtime.constraints", "runtime",
                          &machine_metrics().constraints_ns);
    constraints_.apply_velocities(state_.positions, state_.velocities,
                                  state_.box);
  }

  state_.step += 1;
  state_.time += dt_;
  thermostat_.apply(state_, dt_);

  if (config_.com_removal_interval > 0 &&
      state_.step % static_cast<uint64_t>(config_.com_removal_interval) ==
          0) {
    md::remove_com_momentum(topo, state_);
  }
  notify_observers();
}

void MachineSimulation::notify_observers() {
  md::notify_step(*this, observers_, wall_);
}

void MachineSimulation::run(size_t n) {
  for (size_t i = 0; i < n; ++i) step();
}

void MachineSimulation::set_timestep_fs(double dt_fs) {
  if (!(dt_fs > 0)) {
    throw ConfigError("timestep must be positive, got dt_fs=" +
                      std::to_string(dt_fs));
  }
  config_.dt_fs = dt_fs;
  dt_ = units::fs_to_internal(dt_fs);
}

void MachineSimulation::save_physics_checkpoint(
    util::BinaryWriter& out) const {
  md::write_state(out, state_);
  out.write_f64(dt_);
  thermostat_.save_state(out);
  md::write_force_result(out, kspace_cache_);
}

void MachineSimulation::save_checkpoint(util::BinaryWriter& out) const {
  save_physics_checkpoint(out);
  // Modeled-performance accumulators, so a resumed run reports the same
  // totals as an uninterrupted one.  The audit bucket is excluded: it holds
  // *wall* time (nondeterministic), and the SDC auditor digests this exact
  // blob — any nondeterministic byte here would make every shadow replay
  // look like corruption.
  out.write_f64(modeled_time_s_);
  out.write_u64(steps_timed_);
  machine::StepBreakdown acc = accumulated_;
  machine::StepBreakdown last = last_breakdown_;
  acc.audit = 0.0;
  last.audit = 0.0;
  out.write_pod(acc);
  out.write_pod(last);
  // Transport reliability state: down-marked links persist (a dead wire
  // stays dead across a restart) and the cumulative protocol counters keep
  // the resumed run's reliability picture identical to an uninterrupted one.
  std::vector<char> down;
  machine::TransportStats tstats;
  transport_.save_state(down, tstats);
  out.write_pod_vector(down);
  out.write_pod(tstats);
}

void MachineSimulation::restore_checkpoint(util::BinaryReader& in) {
  const Topology& topo = ff_->topology();
  State restored = md::read_state(in);
  if (restored.positions.size() != topo.atom_count()) {
    throw IoError("checkpoint was written for a different system: " +
                  std::to_string(restored.positions.size()) + " atoms vs " +
                  std::to_string(topo.atom_count()) + " in topology");
  }
  state_ = std::move(restored);
  dt_ = in.read_f64();
  config_.dt_fs = units::internal_to_fs(dt_);
  thermostat_.restore_state(in);
  md::read_force_result(in, kspace_cache_);
  if (kspace_cache_.forces.size() != topo.atom_count()) {
    throw IoError("checkpoint k-space cache has wrong atom count");
  }
  modeled_time_s_ = in.read_f64();
  steps_timed_ = in.read_u64();
  // Audit wall-time survives the restore: the work was really done even if
  // the trajectory it verified (or the replay that consumed it) is gone.
  const double audit_acc = accumulated_.audit;
  const double audit_last = last_breakdown_.audit;
  accumulated_ = in.read_pod<machine::StepBreakdown>();
  last_breakdown_ = in.read_pod<machine::StepBreakdown>();
  accumulated_.audit = audit_acc;
  last_breakdown_.audit = audit_last;
  std::vector<char> down = in.read_pod_vector<char>();
  auto tstats = in.read_pod<machine::TransportStats>();
  transport_.restore_state(std::move(down), tstats);
  last_delivery_ = machine::StepDelivery{};

  // Rebuild the distributed picture at the restored positions and recompute
  // forces directly through the engine: bit-exact for the same reason as in
  // md::Simulation (beyond-cutoff pairs contribute exactly zero, the k-space
  // term comes from the restored cache), and free of modeled-time charges so
  // the performance accumulators stay faithful to the original run.
  ff_->on_box_changed(state_.box);
  nlist_.build(state_.positions, state_.box);
  engine_.redistribute(state_.positions, state_.box, nlist_.pairs(),
                       cluster_arg());
  engine_.evaluate(state_.positions, state_.box, state_.time, nlist_.pairs(),
                   /*kspace_due=*/false, current_, kspace_cache_);
}

double MachineSimulation::ns_per_day() const {
  double mean = mean_step_time_s();
  if (mean <= 0) return 0.0;
  return machine::ns_per_day(config_.dt_fs, mean);
}

}  // namespace antmd::runtime
