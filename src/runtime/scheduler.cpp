#include "runtime/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace antmd::runtime {
namespace {

/// Largest cube count <= n (partitions are cubic sub-tori).
size_t cube_floor(size_t n) {
  auto side = static_cast<size_t>(std::cbrt(static_cast<double>(n)));
  while ((side + 1) * (side + 1) * (side + 1) <= n) ++side;
  return std::max<size_t>(side * side * side, 1);
}

}  // namespace

ReplicaScheduler::ReplicaScheduler(machine::MachineConfig machine,
                                   machine::SystemStats stats,
                                   machine::WorkloadParams params)
    : machine_(std::move(machine)), stats_(stats), params_(params) {
  machine_.validate();
}

ReplicaScheduleResult ReplicaScheduler::evaluate(ReplicaPlacement placement,
                                                 size_t replicas) const {
  ANTMD_REQUIRE(replicas >= 1, "need at least one replica");
  const size_t total_nodes = machine_.node_count();
  ReplicaScheduleResult out;
  out.placement = placement;
  out.replicas = replicas;

  machine::TimingModel timing(machine_);

  switch (placement) {
    case ReplicaPlacement::kPartitioned: {
      size_t share = cube_floor(std::max<size_t>(total_nodes / replicas, 1));
      out.nodes_per_replica = share;
      auto work = machine::estimate_step_work(stats_, share, params_);
      out.step_time_s = timing.step_time(work).total;
      // All replicas run concurrently.
      out.replica_steps_per_s =
          static_cast<double>(replicas) / out.step_time_s;
      break;
    }
    case ReplicaPlacement::kTimeMultiplexed: {
      out.nodes_per_replica = total_nodes;
      auto work = machine::estimate_step_work(stats_, total_nodes, params_);
      out.step_time_s = timing.step_time(work).total;
      // Swapping a replica in/out: full dynamic state (positions +
      // velocities, 24 B each as fixed point) over the injection links,
      // plus a barrier.
      double state_bytes = static_cast<double>(stats_.atoms) * 24.0 * 2.0;
      double inject_bw = machine_.link_bandwidth_Bps *
                         std::max(1, machine_.links_per_node / 2) *
                         static_cast<double>(total_nodes);
      out.swap_overhead_s =
          state_bytes / inject_bw + machine_.barrier_latency_s;
      // Round-robin: each wall second advances the ensemble by
      // 1/(t_step + t_swap) steps distributed over all replicas.
      out.replica_steps_per_s =
          1.0 / (out.step_time_s + out.swap_overhead_s);
      break;
    }
  }
  return out;
}

ReplicaScheduleResult ReplicaScheduler::best(size_t replicas) const {
  auto a = evaluate(ReplicaPlacement::kPartitioned, replicas);
  auto b = evaluate(ReplicaPlacement::kTimeMultiplexed, replicas);
  return a.replica_steps_per_s >= b.replica_steps_per_s ? a : b;
}

}  // namespace antmd::runtime
