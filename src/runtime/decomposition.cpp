#include "runtime/decomposition.hpp"

#include <cmath>

#include "util/error.hpp"

namespace antmd::runtime {

SpatialDecomposition::SpatialDecomposition(
    const machine::TorusTopology& torus, const Box& /*box*/)
    : torus_(&torus) {}

uint32_t SpatialDecomposition::node_at(const Vec3& p, const Box& box) const {
  Vec3 w = box.wrap(p);
  const auto& dims = torus_->dims();
  auto cell = [&](double x, double l, int n) {
    int c = static_cast<int>(x / l * n);
    return std::min(c, n - 1);
  };
  machine::NodeCoord coord = {cell(w.x, box.edges().x, dims[0]),
                              cell(w.y, box.edges().y, dims[1]),
                              cell(w.z, box.edges().z, dims[2])};
  return static_cast<uint32_t>(torus_->id_of(coord));
}

void SpatialDecomposition::assign_atoms(std::span<const Vec3> positions,
                                        const Box& box) {
  owner_.resize(positions.size());
  for (uint32_t i = 0; i < positions.size(); ++i) {
    owner_[i] = node_at(positions[i], box);
  }
}

std::vector<size_t> SpatialDecomposition::atoms_per_node() const {
  std::vector<size_t> counts(node_count(), 0);
  for (uint32_t o : owner_) ++counts[o];
  return counts;
}

std::vector<uint32_t> SpatialDecomposition::assign_pairs(
    std::span<const ff::PairEntry> pairs, std::span<const Vec3> positions,
    const Box& box, PairAssignment rule) const {
  ANTMD_REQUIRE(!owner_.empty(), "assign_atoms must be called first");
  std::vector<uint32_t> out(pairs.size());
  switch (rule) {
    case PairAssignment::kHomeOfFirst:
      for (size_t k = 0; k < pairs.size(); ++k) {
        out[k] = owner_[pairs[k].i];
      }
      break;
    case PairAssignment::kMidpoint:
      for (size_t k = 0; k < pairs.size(); ++k) {
        const Vec3& a = positions[pairs[k].i];
        Vec3 d = box.min_image(positions[pairs[k].j], a);
        out[k] = node_at(a + 0.5 * d, box);
      }
      break;
  }
  return out;
}

}  // namespace antmd::runtime
