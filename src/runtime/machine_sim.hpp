// MachineSimulation: MD on the modeled Anton-class machine.
//
// Functionally it advances the same velocity-Verlet + constraints +
// thermostat sequence as md::Simulation, but forces come from the
// DistributedEngine (partitioned across modeled nodes, fixed-point wire
// format) and every step also produces a modeled StepBreakdown from the
// timing model.  Trajectories are bit-identical for any machine size — the
// determinism experiment (T5) — and the accumulated modeled time drives the
// performance experiments (T1, F1, T2, F2, F5, F7).
#pragma once

#include <memory>
#include <vector>

#include "machine/contention.hpp"
#include "machine/timing.hpp"
#include "machine/transport.hpp"
#include "obs/profile.hpp"
#include "md/constraints.hpp"
#include "md/neighbor.hpp"
#include "md/observer.hpp"
#include "md/state.hpp"
#include "md/thermostat.hpp"
#include "runtime/engine.hpp"
#include "util/serialize.hpp"

namespace antmd::runtime {

struct MachineSimConfig {
  double dt_fs = 2.5;
  int kspace_interval = 2;  ///< RESPA: reciprocal forces every N steps
  double neighbor_skin = 2.0;
  md::ThermostatConfig thermostat;
  md::ConstraintAlgorithm constraint_algorithm =
      md::ConstraintAlgorithm::kShake;
  double init_temperature_k = 300.0;
  uint64_t velocity_seed = 1234;
  int com_removal_interval = 0;
  /// Same knob as md::SimulationConfig::nonbonded_kernel; cluster mode also
  /// switches the timing model to per-tile-lane HTIS accounting.
  ff::NonbondedKernel nonbonded_kernel = ff::NonbondedKernel::kCluster;
  /// Atoms per cluster for the tiled kernel: 4 or 8.
  uint32_t cluster_width = ff::kDefaultClusterWidth;
  EngineOptions engine;
  machine::TransportConfig transport;
};

class MachineSimulation : public util::Checkpointable {
 public:
  MachineSimulation(ForceField& ff, machine::MachineConfig machine,
                    std::vector<Vec3> positions, Box box,
                    MachineSimConfig config);

  void step();
  void run(size_t n);

  [[nodiscard]] const State& state() const { return state_; }
  /// Direct mutable access to the dynamic state, mirroring
  /// md::Simulation::mutable_state().  External state surgery (replica
  /// exchange, SDC bit-flip injection in tests) goes through here; call
  /// invalidate-style paths or rely on the next step's force evaluation to
  /// pick the change up.
  [[nodiscard]] State& mutable_state() { return state_; }
  [[nodiscard]] const ForceResult& forces() const { return current_; }
  [[nodiscard]] double potential_energy() const {
    return current_.energy.total();
  }
  [[nodiscard]] double kinetic_energy() const {
    return md::kinetic_energy(ff_->topology(), state_);
  }
  [[nodiscard]] double temperature() const {
    return md::temperature(ff_->topology(), state_);
  }

  // --- modeled performance -----------------------------------------------------
  [[nodiscard]] const machine::StepBreakdown& last_breakdown() const {
    return last_breakdown_;
  }
  /// Sum of modeled step times since construction (seconds).
  [[nodiscard]] double modeled_time_s() const { return modeled_time_s_; }
  [[nodiscard]] double mean_step_time_s() const {
    return steps_timed_ ? modeled_time_s_ / static_cast<double>(steps_timed_)
                        : 0.0;
  }
  /// Phase sums over all steps so far.
  [[nodiscard]] const machine::StepBreakdown& accumulated() const {
    return accumulated_;
  }
  /// Modeled simulation rate in ns/day at the configured timestep.
  [[nodiscard]] double ns_per_day() const;

  [[nodiscard]] const DistributedEngine& engine() const { return engine_; }
  [[nodiscard]] DistributedEngine& mutable_engine() { return engine_; }
  [[nodiscard]] machine::TimingModel& timing() { return timing_; }
  /// Reliability protocol state: retransmit/CRC/link-down counters and the
  /// node-hang handshake the supervisor's watchdog consumes.
  [[nodiscard]] const machine::ReliableTransport& transport() const {
    return transport_;
  }
  [[nodiscard]] machine::ReliableTransport& mutable_transport() {
    return transport_;
  }
  /// Delivery record of the most recent force evaluation.
  [[nodiscard]] const machine::StepDelivery& last_delivery() const {
    return last_delivery_;
  }
  /// Re-runs the node redistribution at the current positions (supervisor
  /// recovery path after marking nodes failed).  Bit-exact; charges no
  /// modeled time, like the restore path.
  void rebuild_distribution() {
    engine_.redistribute(state_.positions, state_.box, nlist_.pairs(),
                         cluster_arg());
  }
  [[nodiscard]] ForceField& force_field() { return *ff_; }
  [[nodiscard]] md::Thermostat& thermostat() { return thermostat_; }
  [[nodiscard]] const md::ConstraintSolver& constraints() const {
    return constraints_;
  }

  /// Retargets the outer timestep mid-run (HealthGuard degradation path).
  void set_timestep_fs(double dt_fs);
  [[nodiscard]] double timestep_fs() const { return config_.dt_fs; }

  // --- checkpoint / restart ---------------------------------------------------
  /// Same contract as md::Simulation: dynamic state, timestep, thermostat,
  /// the reciprocal-space cache, plus the modeled-time accumulators.
  /// Restore rebuilds the neighbor list, re-runs the node redistribution and
  /// recomputes forces (bit-exact; no modeled time is charged for it).
  void save_checkpoint(util::BinaryWriter& out) const override;
  void restore_checkpoint(util::BinaryReader& in) override;

  /// The determinism-contract prefix of the checkpoint: dynamic state,
  /// timestep, thermostat RNG and the k-space cache — everything that can
  /// influence future trajectory bits.  The SDC auditor digests this
  /// instead of the full blob because the performance accounting that
  /// follows (modeled time, transport counters) legitimately differs
  /// between a live path and a replay: a restore rebuilds the neighbor
  /// list, shifting the rebuild cadence and with it redistribute costs,
  /// without moving the trajectory by a single bit.
  void save_physics_checkpoint(util::BinaryWriter& out) const;

  /// Marks a tempering/exchange decision in the next step's workload
  /// (cost accounting for sampling methods driven on top of this engine).
  void note_tempering_decision() { ++pending_tempering_decisions_; }

  /// Same step-observation contract as md::Simulation::add_observer.
  void add_observer(md::StepObserver obs, int interval = 1) {
    observers_.add(std::move(obs), interval);
  }

  /// Suspends/resumes step observers (SDC shadow replay: re-executed steps
  /// must not re-fire trajectory writers or metrics samplers).
  void set_observers_enabled(bool enabled) {
    observers_.set_enabled(enabled);
  }

  /// Charges `seconds` of audit work against the last step's breakdown.
  /// Like pair_masked the field is informational — it is never added to
  /// `total`, so audit time cannot masquerade as physics or trip the
  /// supervisor watchdog.
  void charge_audit(double seconds) {
    last_breakdown_.audit += seconds;
    accumulated_.audit += seconds;
  }

  /// Routes attribution-profiler feeds to `profile` instead of
  /// obs::Profile::global() (fleet: one collector per run).  nullptr
  /// restores the global sink.  Profiler data only flows while
  /// obs::profiling_enabled(); like all telemetry it never touches the
  /// physics.
  void set_profile(obs::Profile* profile) {
    profile_ = profile;
    link_labels_fed_ = false;  // the new sink needs its own labels
  }

 private:
  void evaluate_forces(bool kspace_due);
  void notify_observers();
  void publish_model_metrics(const machine::StepWork& work,
                             const machine::NetworkAttribution* attr);
  void feed_profile(const machine::NetworkAttribution& attr);
  /// The engine's cluster-list argument: the live tile list in cluster
  /// mode, null in pair mode.
  [[nodiscard]] const ff::ClusterPairList* cluster_arg() const {
    return nlist_.cluster_mode() ? &nlist_.clusters() : nullptr;
  }

  ForceField* ff_;
  MachineSimConfig config_;
  machine::TimingModel timing_;
  machine::ReliableTransport transport_;
  machine::StepDelivery last_delivery_;
  DistributedEngine engine_;
  State state_;
  double dt_;
  md::NeighborList nlist_;
  md::ConstraintSolver constraints_;
  md::Thermostat thermostat_;
  ForceResult current_;
  ForceResult kspace_cache_;
  std::vector<Vec3> scratch_before_;
  machine::StepBreakdown last_breakdown_;
  machine::StepBreakdown accumulated_;
  double modeled_time_s_ = 0.0;
  uint64_t steps_timed_ = 0;
  size_t pending_tempering_decisions_ = 0;
  md::ObserverList observers_;
  md::WallTimer wall_;
  // Telemetry-only state: built lazily the first time metrics are enabled;
  // never read by the physics, so it cannot perturb trajectories.
  std::unique_ptr<machine::LinkContentionModel> contention_model_;
  double torus_mean_hops_ = -1.0;  ///< cached, O(nodes²) to compute
  obs::Profile* profile_ = nullptr;   ///< nullptr = obs::Profile::global()
  std::vector<double> link_scratch_;  ///< per-link bytes, profiling only
  bool link_labels_fed_ = false;      ///< link labels built once per sink
};

}  // namespace antmd::runtime
