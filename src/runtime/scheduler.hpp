// ReplicaScheduler: models how a replica ensemble (T-REMD, H-REMD,
// multiple independent trajectories) maps onto the machine.
//
// Two strategies the software stack can choose between:
//   * kPartitioned — carve the torus into R sub-machines, one replica
//     each; replicas step concurrently but each on fewer nodes.
//   * kTimeMultiplexed — the full machine runs replicas round-robin;
//     each step is fastest-possible but replica state must be swapped in
//     and out of the nodes between turns.
// The right answer depends on system size and replica count (small systems
// stop scaling, so partitions win; huge systems want the whole machine) —
// an ablation the bench_a1_replica harness sweeps.
#pragma once

#include <cstddef>

#include "machine/config.hpp"
#include "machine/timing.hpp"
#include "machine/workload.hpp"

namespace antmd::runtime {

enum class ReplicaPlacement { kPartitioned, kTimeMultiplexed };

struct ReplicaScheduleResult {
  ReplicaPlacement placement{};
  size_t replicas = 0;
  size_t nodes_per_replica = 0;   ///< partitioned: torus share per replica
  double step_time_s = 0.0;       ///< modeled MD step on its node share
  double swap_overhead_s = 0.0;   ///< time-multiplexed: state in/out
  /// Aggregate ensemble progress: replica-steps per wall second.
  double replica_steps_per_s = 0.0;
};

class ReplicaScheduler {
 public:
  ReplicaScheduler(machine::MachineConfig machine,
                   machine::SystemStats stats,
                   machine::WorkloadParams params);

  /// Evaluates one placement strategy for `replicas` replicas.
  [[nodiscard]] ReplicaScheduleResult evaluate(ReplicaPlacement placement,
                                               size_t replicas) const;

  /// Picks the faster of the two placements.
  [[nodiscard]] ReplicaScheduleResult best(size_t replicas) const;

 private:
  machine::MachineConfig machine_;
  machine::SystemStats stats_;
  machine::WorkloadParams params_;
};

}  // namespace antmd::runtime
