// DistributedEngine: evaluates forces exactly as the single-host ForceField
// does, but partitioned across the modeled machine's nodes, producing (a) a
// bit-identical ForceResult regardless of node count — the determinism the
// real machine's fixed-point arithmetic guarantees — and (b) per-node
// workload counts for the timing model.
//
// Kernel → hardware-unit mapping (the paper's central design point):
//   tabulated pair interactions  → HTIS pairwise pipelines
//   bonded terms, 1-4 pairs, restraints, steered springs, external fields,
//   constraints, virtual sites, integration, tempering decisions
//                                → programmable geometry cores
//   k-space (spread/FFT/convolve/interpolate)
//                                → geometry cores + all-to-all transposes
#pragma once

#include <memory>
#include <vector>

#include "ff/forcefield.hpp"
#include "machine/timing.hpp"
#include "runtime/decomposition.hpp"
#include "util/execution.hpp"

namespace antmd::runtime {

struct EngineOptions {
  PairAssignment pair_rule = PairAssignment::kHomeOfFirst;
  /// Snap positions through the 32-bit fixed-point wire format before force
  /// evaluation (what the position multicast does on the real machine).
  bool quantize_positions = true;
  /// Host-thread parallelism for per-node partition evaluation.  With
  /// deterministic_reduction (the default) per-node partials are merged in
  /// ascending node index order, so the trajectory — including the
  /// double-precision virial — is bit-identical to the serial path at any
  /// thread count.
  ExecutionConfig execution;
};

class DistributedEngine {
 public:
  DistributedEngine(ForceField& ff, const machine::MachineConfig& config,
                    EngineOptions options = {});

  /// Reassigns atoms and work to nodes; call whenever the global neighbor
  /// list was rebuilt (atom migration happens at list rebuilds on Anton
  /// too).  When `clusters` is non-null the engine partitions and evaluates
  /// the blocked cluster-pair tiles instead of the flat pairs (the tile
  /// list must stay alive until the next redistribute) and charges the
  /// timing model per streamed tile lane.
  void redistribute(std::span<const Vec3> positions, const Box& box,
                    std::span<const ff::PairEntry> pairs,
                    const ff::ClusterPairList* clusters = nullptr);

  /// Evaluates all forces.  `kspace_cache` is reused when !kspace_due.
  /// Returns the machine-wide workload of this step for the timing model.
  machine::StepWork evaluate(std::span<Vec3> positions, const Box& box,
                             double time,
                             std::span<const ff::PairEntry> pairs,
                             bool kspace_due, ForceResult& out,
                             ForceResult& kspace_cache) const;

  [[nodiscard]] const SpatialDecomposition& decomposition() const {
    return decomp_;
  }
  [[nodiscard]] size_t node_count() const { return torus_.node_count(); }

  // --- fault tolerance --------------------------------------------------------
  /// Marks a modeled node as failed.  Its work (atoms, pairs, bonded terms)
  /// is remapped to the next alive node in index order at the next
  /// redistribute().  Because the fixed-point force and energy sums are
  /// order- and grouping-independent, the trajectory is bit-identical to the
  /// healthy machine; only the timing (and the double-precision virial, in
  /// its last ulp) can change.  The kNodeFail fault point fires this
  /// automatically inside redistribute().
  void set_node_failed(size_t node, bool failed = true);
  [[nodiscard]] bool node_failed(size_t node) const {
    return node < failed_.size() && failed_[node];
  }
  [[nodiscard]] size_t alive_node_count() const;
  [[nodiscard]] const EngineOptions& options() const { return options_; }
  [[nodiscard]] const machine::TorusTopology& torus() const { return torus_; }
  /// Shared so the surrounding driver (MachineSimulation) can reuse the
  /// same pool for neighbor-list rebuilds.
  [[nodiscard]] const std::shared_ptr<ExecutionContext>& execution() const {
    return exec_;
  }

 private:
  struct NodePartition {
    std::vector<ff::PairEntry> pairs;
    /// Cluster mode: this node's tile slice (pairs stays empty) plus its
    /// real-pair mask popcount for workload accounting.
    std::vector<ff::ClusterPairEntry> cluster_entries;
    size_t cluster_real_pairs = 0;
    std::vector<Bond> bonds;
    std::vector<Angle> angles;
    std::vector<Dihedral> dihedrals;
    std::vector<MorseBond> morse_bonds;
    std::vector<UreyBradley> urey_bradleys;
    std::vector<Improper> impropers;
    std::vector<GoContact> go_contacts;
    std::vector<Pair14> pairs14;
    std::vector<ff::PositionRestraint> pos_restraints;
    std::vector<ff::DistanceRestraint> dist_restraints;
    std::vector<ff::SteeredSpring> springs;
    std::vector<ff::PairBias> biases;
    std::vector<ff::DihedralBias> dihedral_biases;
    std::vector<uint32_t> owned_atoms;
    std::vector<VirtualSite> vsites;
    size_t constraint_count = 0;
    // Communication accounting (bytes per step, fixed-point wire format).
    double import_bytes = 0.0;
    double export_bytes = 0.0;
    size_t messages = 0;
  };

  void fill_comm_counts(std::span<const Vec3> positions, const Box& box);
  /// Owner of `atom` after remapping away from failed nodes.
  [[nodiscard]] size_t effective_node(size_t node) const;
  void evaluate_node(const NodePartition& part, std::span<const Vec3> positions,
                     const Box& box, double time, ForceResult& partial,
                     machine::NodeWork& nw) const;
  /// Wires the per-evaluate DAG: node kernels ∥ kspace → parallel atom-range
  /// force fold → ascending-node energy/virial merge + vsite spread.
  void build_eval_graph() const;
  /// Reciprocal-space recompute (when due) plus its workload accounting;
  /// the cache merge stays with the caller's reduction.
  void kspace_phase(std::span<const Vec3> positions, const Box& box,
                    bool kspace_due, ForceResult& kspace_cache,
                    machine::StepWork& work) const;

  ForceField* ff_;
  machine::TorusTopology torus_;
  EngineOptions options_;
  SpatialDecomposition decomp_;
  std::vector<NodePartition> parts_;
  /// Non-null between a cluster-mode redistribute and the next one; owned
  /// by the caller (the neighbor list object outlives its rebuilds).
  const ff::ClusterPairList* clusters_ = nullptr;
  std::vector<char> failed_;  ///< per-node failure flags (empty = all alive)
  machine::GcCosts costs_;
  std::shared_ptr<ExecutionContext> exec_;
  /// Per-node ForceResult scratch reused across steps (parallel path only).
  mutable std::vector<ForceResult> partials_scratch_;

  /// Per-evaluate task graph (built lazily; parallel deterministic path
  /// only) plus the per-call parameters its task bodies read.  Mutable for
  /// the same reason as the scratch: evaluation is logically const.
  struct EvalCall {
    std::span<const Vec3> positions;
    const Box* box = nullptr;
    double time = 0.0;
    bool kspace_due = false;
    ForceResult* out = nullptr;
    ForceResult* kspace_cache = nullptr;
    machine::StepWork* work = nullptr;
  };
  mutable std::unique_ptr<util::TaskGraph> eval_graph_;
  mutable util::ChunkPlan fold_plan_;
  mutable EvalCall call_;
};

}  // namespace antmd::runtime
