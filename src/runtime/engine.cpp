#include "runtime/engine.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <string>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd::runtime {

namespace {

// Registry lookups go through a mutex; resolve the handles once and reuse
// them on every step.
struct EngineMetrics {
  obs::Counter& evaluate_ns;
  obs::Counter& redistribute_ns;
  obs::Counter& kspace_ns;
  obs::Counter& node_eval_ns;
  obs::Counter& node_evals;
  obs::Counter& redistributes;
  obs::Counter& remaps;
  obs::Gauge& alive_nodes;
};

EngineMetrics& engine_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static EngineMetrics m{reg.counter("runtime.evaluate.time_ns"),
                         reg.counter("runtime.redistribute.time_ns"),
                         reg.counter("runtime.kspace.time_ns"),
                         reg.counter("runtime.node_eval.time_ns"),
                         reg.counter("runtime.node_eval.count"),
                         reg.counter("runtime.redistribute.count"),
                         reg.counter("runtime.remap.count"),
                         reg.gauge("runtime.alive_nodes")};
  return m;
}

// Trace-track id space: worker threads use their thread index, engine nodes
// live at kSyntheticTrackBase+node so Chrome renders one row per modeled
// node; TraceSession namespaces these per fleet run (obs/trace.hpp).
constexpr uint32_t kNodeTrackBase = obs::kSyntheticTrackBase;

}  // namespace

DistributedEngine::DistributedEngine(ForceField& ff,
                                     const machine::MachineConfig& config,
                                     EngineOptions options)
    : ff_(&ff),
      torus_(config),
      options_(options),
      decomp_(torus_, Box()),
      exec_(ExecutionContext::create(options.execution)) {}

void DistributedEngine::redistribute(std::span<const Vec3> positions,
                                     const Box& box,
                                     std::span<const ff::PairEntry> pairs,
                                     const ff::ClusterPairList* clusters) {
  obs::TracePhase phase("runtime.redistribute", "runtime",
                        &engine_metrics().redistribute_ns);
  engine_metrics().redistributes.add();

  // Fault point: a node may die right before migration; its work lands on
  // the next alive node below.
  uint64_t dead = 0;
  if (fault::should_fire(fault::FaultKind::kNodeFail, &dead)) {
    set_node_failed(dead % torus_.node_count());
    engine_metrics().remaps.add();
  }

  const Topology& topo = ff_->topology();
  decomp_.assign_atoms(positions, box);

  parts_.assign(torus_.node_count(), NodePartition{});
  const auto& owners = decomp_.owners();
  // All work routed through the failure remap (identity when all alive).
  auto owner = [&](uint32_t atom) { return effective_node(owners[atom]); };

  clusters_ = clusters;
  if (clusters_ != nullptr) {
    // One tile lives on the node owning its lead cluster's lead atom (the
    // whole-cluster analogue of kHomeOfFirst); the flat pairs are not
    // partitioned — the tiles carry the full pair set.
    for (const ff::ClusterPairEntry& e : clusters_->entries) {
      NodePartition& part = parts_[effective_node(
          owners[clusters_->atoms[static_cast<size_t>(e.ci) *
                                  clusters_->width]])];
      part.cluster_entries.push_back(e);
      part.cluster_real_pairs += static_cast<size_t>(std::popcount(e.mask));
    }
  } else {
    auto pair_nodes = decomp_.assign_pairs(pairs, positions, box,
                                           options_.pair_rule);
    for (size_t k = 0; k < pairs.size(); ++k) {
      parts_[effective_node(pair_nodes[k])].pairs.push_back(pairs[k]);
    }
  }
  for (const Bond& b : topo.bonds()) parts_[owner(b.i)].bonds.push_back(b);
  for (const Angle& a : topo.angles()) {
    parts_[owner(a.j)].angles.push_back(a);
  }
  for (const Dihedral& d : topo.dihedrals()) {
    parts_[owner(d.j)].dihedrals.push_back(d);
  }
  for (const MorseBond& b : topo.morse_bonds()) {
    parts_[owner(b.i)].morse_bonds.push_back(b);
  }
  for (const UreyBradley& u : topo.urey_bradleys()) {
    parts_[owner(u.i)].urey_bradleys.push_back(u);
  }
  for (const Improper& d : topo.impropers()) {
    parts_[owner(d.j)].impropers.push_back(d);
  }
  for (const GoContact& g : topo.go_contacts()) {
    parts_[owner(g.i)].go_contacts.push_back(g);
  }
  for (const Pair14& p : topo.pairs14()) {
    parts_[owner(p.i)].pairs14.push_back(p);
  }
  for (const auto& r : ff_->position_restraints()) {
    parts_[owner(r.atom)].pos_restraints.push_back(r);
  }
  for (const auto& r : ff_->distance_restraints()) {
    parts_[owner(r.i)].dist_restraints.push_back(r);
  }
  for (const auto& s : ff_->steered_springs()) {
    parts_[owner(s.i)].springs.push_back(s);
  }
  for (const auto& b : ff_->pair_biases()) {
    parts_[owner(b.i)].biases.push_back(b);
  }
  for (const auto& b : ff_->dihedral_biases()) {
    parts_[owner(b.j)].dihedral_biases.push_back(b);
  }
  for (const auto& v : topo.virtual_sites()) {
    parts_[owner(v.parents[0])].vsites.push_back(v);
  }
  for (const auto& c : topo.constraints()) {
    ++parts_[owner(c.i)].constraint_count;
  }
  for (uint32_t i = 0; i < topo.atom_count(); ++i) {
    parts_[owner(i)].owned_atoms.push_back(i);
  }

  fill_comm_counts(positions, box);

  if (obs::enabled()) {
    engine_metrics().alive_nodes.set(
        static_cast<double>(alive_node_count()));
    if (obs::TraceSession::global().recording()) {
      for (size_t n = 0; n < parts_.size(); ++n) {
        obs::TraceSession::global().set_track_name(
            kNodeTrackBase + static_cast<uint32_t>(n),
            "node " + std::to_string(n));
      }
    }
  }
}

void DistributedEngine::fill_comm_counts(std::span<const Vec3> /*positions*/,
                                         const Box& /*box*/) {
  const auto& owners = decomp_.owners();
  auto owner = [&](uint32_t atom) { return effective_node(owners[atom]); };
  constexpr double kPosBytes = 12.0;    // 3 × int32 fixed-point position
  constexpr double kForceBytes = 12.0;  // 3 × int32 force quanta

  for (size_t n = 0; n < parts_.size(); ++n) {
    NodePartition& part = parts_[n];
    std::unordered_set<uint32_t> imported;
    std::unordered_set<uint32_t> sources;
    auto need = [&](uint32_t atom) {
      if (owner(atom) != n && imported.insert(atom).second) {
        sources.insert(owner(atom));
      }
    };
    for (const auto& p : part.pairs) { need(p.i); need(p.j); }
    // Cluster tiles import whole clusters: the hardware multicasts all of a
    // cluster's positions to the evaluating node whether or not every lane
    // is masked in (that coarsening is the import cost of blocking).
    for (const auto& e : part.cluster_entries) {
      for (unsigned k = 0; k < clusters_->width; ++k) {
        uint32_t ai =
            clusters_->atoms[static_cast<size_t>(e.ci) * clusters_->width + k];
        if (ai != ff::kPadAtom) need(ai);
      }
      for (unsigned k = 0; k < ff::kClusterJWidth; ++k) {
        uint32_t aj = clusters_->atoms[static_cast<size_t>(e.cj) *
                                           ff::kClusterJWidth +
                                       k];
        if (aj != ff::kPadAtom) need(aj);
      }
    }
    for (const auto& b : part.bonds) { need(b.i); need(b.j); }
    for (const auto& a : part.angles) { need(a.i); need(a.j); need(a.k_atom); }
    for (const auto& d : part.dihedrals) {
      need(d.i); need(d.j); need(d.k_atom); need(d.l);
    }
    for (const auto& b : part.morse_bonds) { need(b.i); need(b.j); }
    for (const auto& g : part.go_contacts) { need(g.i); need(g.j); }
    for (const auto& u : part.urey_bradleys) { need(u.i); need(u.k); }
    for (const auto& d : part.impropers) {
      need(d.i); need(d.j); need(d.k_atom); need(d.l);
    }
    for (const auto& b : part.dihedral_biases) {
      need(b.i); need(b.j); need(b.k); need(b.l);
    }
    for (const auto& p : part.pairs14) { need(p.i); need(p.j); }
    for (const auto& s : part.springs) { need(s.i); need(s.j); }
    for (const auto& b : part.biases) { need(b.i); need(b.j); }
    for (const auto& r : part.dist_restraints) { need(r.i); need(r.j); }
    for (const auto& v : part.vsites) {
      need(v.site); need(v.parents[0]); need(v.parents[1]);
      if (v.kind == VirtualSite::Kind::kPlanar3) need(v.parents[2]);
    }
    part.import_bytes = static_cast<double>(imported.size()) * kPosBytes;
    // Forces computed here for non-owned atoms travel back.
    part.export_bytes = static_cast<double>(imported.size()) * kForceBytes;
    part.messages = sources.size();
  }
}

void DistributedEngine::evaluate_node(const NodePartition& part,
                                      std::span<const Vec3> positions,
                                      const Box& box, double time,
                                      ForceResult& partial,
                                      machine::NodeWork& nw) const {
  const Topology& topo = ff_->topology();
  const auto& tables = ff_->tables();

  ff::compute_bonds(part.bonds, positions, box, partial);
  ff::compute_angles(part.angles, positions, box, partial);
  ff::compute_dihedrals(part.dihedrals, positions, box, partial);
  ff::compute_morse_bonds(part.morse_bonds, positions, box, partial);
  ff::compute_urey_bradleys(part.urey_bradleys, positions, box, partial);
  ff::compute_impropers(part.impropers, positions, box, partial);
  ff::compute_go_contacts(part.go_contacts, positions, box, partial);
  ff::compute_pairs14(part.pairs14, tables, topo.type_ids(),
                      topo.charges(), positions, box, partial);
  ff::compute_position_restraints(part.pos_restraints, positions, box,
                                  partial);
  ff::compute_distance_restraints(part.dist_restraints, positions, box,
                                  partial);
  if (!part.springs.empty()) {
    ff::compute_steered_springs(part.springs, positions, box, time,
                                partial);
  }
  if (!part.biases.empty()) {
    ff::compute_pair_biases(part.biases, positions, box, partial);
  }
  if (!part.dihedral_biases.empty()) {
    ff::compute_dihedral_biases(part.dihedral_biases, positions, box,
                                partial);
  }
  if (ff_->external_field()) {
    // Field force on owned atoms only (a strictly per-atom term).
    for (uint32_t atom : part.owned_atoms) {
      double q = topo.charges()[atom];
      if (q == 0.0) continue;
      partial.forces.add(atom, q * ff_->external_field()->field);
      partial.energy.external.add(
          -q * dot(ff_->external_field()->field, positions[atom]));
    }
  }
  if (clusters_ != nullptr) {
    // Gather already ran once in evaluate(); per-node virials accumulate
    // sequentially within the node, and the ascending-node merge keeps the
    // total thread-invariant.
    ff::compute_cluster_entries(*clusters_, part.cluster_entries, tables, box,
                                partial.forces, partial.energy, partial.virial,
                                ff_->vdw_scale(),
                                ff_->charge_product_scale());
  } else {
    ff::compute_pairs(part.pairs, tables, topo.type_ids(), topo.charges(),
                      positions, box, partial, ff_->vdw_scale(),
                      ff_->charge_product_scale());
  }

  // --- workload accounting -------------------------------------------------
  if (clusters_ != nullptr) {
    nw.pairs = part.cluster_real_pairs;
    nw.pairs_examined = part.cluster_real_pairs;
    nw.cluster_tiles = part.cluster_entries.size();
    nw.cluster_lanes = part.cluster_entries.size() * clusters_->width *
                       ff::kClusterJWidth;
  } else {
    nw.pairs = part.pairs.size();
    nw.pairs_examined = part.pairs.size();
  }
  nw.gc_force_flops =
      part.bonds.size() * costs_.bond + part.angles.size() * costs_.angle +
      part.dihedrals.size() * costs_.dihedral +
      part.morse_bonds.size() * costs_.bond +
      part.urey_bradleys.size() * costs_.bond +
      part.impropers.size() * costs_.dihedral +
      part.go_contacts.size() * costs_.pair14 +
      part.dihedral_biases.size() * costs_.dihedral +
      part.pairs14.size() * costs_.pair14 +
      part.pos_restraints.size() * costs_.restraint +
      part.dist_restraints.size() * costs_.restraint +
      part.springs.size() * costs_.steered_spring +
      part.biases.size() * costs_.steered_spring +
      (ff_->external_field()
           ? part.owned_atoms.size() * costs_.external_field_atom
           : 0.0) +
      part.vsites.size() * costs_.vsite_construct;
  // Update phase: integration + thermostat + constraints + vsite spread.
  nw.gc_update_flops =
      part.owned_atoms.size() *
          (costs_.integrate_atom + costs_.thermostat_atom) +
      part.constraint_count * 3.0 * costs_.constraint_iteration +
      part.vsites.size() * costs_.vsite_spread;
  nw.import_bytes = part.import_bytes;
  nw.export_bytes = part.export_bytes;
  nw.messages = part.messages;
}

void DistributedEngine::set_node_failed(size_t node, bool failed) {
  ANTMD_REQUIRE(node < torus_.node_count(), "node index out of range");
  if (failed_.empty()) failed_.assign(torus_.node_count(), 0);
  failed_[node] = failed ? 1 : 0;
  ANTMD_REQUIRE(alive_node_count() > 0, "cannot fail every node");
}

size_t DistributedEngine::alive_node_count() const {
  if (failed_.empty()) return torus_.node_count();
  size_t alive = 0;
  for (char f : failed_) {
    if (!f) ++alive;
  }
  return alive;
}

size_t DistributedEngine::effective_node(size_t node) const {
  if (failed_.empty() || !failed_[node]) return node;
  const size_t n = torus_.node_count();
  for (size_t d = 1; d < n; ++d) {
    size_t cand = (node + d) % n;
    if (!failed_[cand]) return cand;
  }
  return node;  // unreachable: set_node_failed keeps at least one node alive
}

machine::StepWork DistributedEngine::evaluate(
    std::span<Vec3> positions, const Box& box, double time,
    std::span<const ff::PairEntry> pairs, bool kspace_due, ForceResult& out,
    ForceResult& kspace_cache) const {
  ANTMD_REQUIRE(!parts_.empty(), "redistribute() must run before evaluate()");
  obs::TracePhase eval_phase("runtime.evaluate", "runtime",
                             &engine_metrics().evaluate_ns);
  static_cast<void>(pairs);  // partitioned copies are authoritative
  const Topology& topo = ff_->topology();
  const size_t n_atoms = topo.atom_count();

  // Position multicast: every consumer sees the fixed-point wire format.
  if (options_.quantize_positions) {
    for (auto& p : positions) p = snap_position(p);
  }

  ff::construct_virtual_sites(topo.virtual_sites(), positions, box);
  // One SoA gather serves every node's tile slice this step.
  if (clusters_ != nullptr) ff::gather_cluster_coords(*clusters_, positions);

  out.reset(n_atoms);
  machine::StepWork work;
  work.nodes.resize(parts_.size());

  if (exec_->parallel() && exec_->deterministic_reduction() &&
      parts_.size() > 1) {
    // Phase-overlapped path: per-node kernels and the reciprocal-space
    // solve run concurrently; forces fold in parallel over disjoint atom
    // ranges (order-free integer adds); energies and the double-precision
    // virial merge in ascending node order inside the reduction task —
    // bit-identical to the serial loop below.
    if (!eval_graph_) build_eval_graph();
    partials_scratch_.resize(parts_.size());
    call_ = EvalCall{positions, &box,           time, kspace_due,
                     &out,      &kspace_cache, &work};
    eval_graph_->run();
    call_ = EvalCall{};
    return work;
  }

  if (exec_->parallel() && parts_.size() > 1) {
    // Opted out of deterministic reduction: per-node kernels still run
    // concurrently, and partials merge in completion order (deterministic
    // in forces/energy thanks to fixed-point accumulation; the virial may
    // differ in the last ulp).
    partials_scratch_.resize(parts_.size());
    std::mutex merge_mutex;
    exec_->parallel_for(parts_.size(), [&](size_t n) {
      obs::TracePhase node_phase("runtime.node_eval", "runtime",
                                 &engine_metrics().node_eval_ns, /*track=*/
                                 kNodeTrackBase + static_cast<int64_t>(n),
                                 "node", static_cast<int64_t>(n));
      engine_metrics().node_evals.add();
      partials_scratch_[n].reset(n_atoms);
      evaluate_node(parts_[n], positions, box, time, partials_scratch_[n],
                    work.nodes[n]);
      std::lock_guard<std::mutex> lock(merge_mutex);
      out.merge(partials_scratch_[n]);
    });
  } else {
    for (size_t n = 0; n < parts_.size(); ++n) {
      obs::TracePhase node_phase("runtime.node_eval", "runtime",
                                 &engine_metrics().node_eval_ns, /*track=*/
                                 kNodeTrackBase + static_cast<int64_t>(n),
                                 "node", static_cast<int64_t>(n));
      engine_metrics().node_evals.add();
      ForceResult partial(n_atoms);
      evaluate_node(parts_[n], positions, box, time, partial, work.nodes[n]);
      out.merge(partial);  // the modeled force reduction
    }
  }

  if (ff_->has_kspace()) {
    kspace_phase(positions, box, kspace_due, kspace_cache, work);
    out.merge(kspace_cache);
  }

  ff::spread_virtual_site_forces(topo.virtual_sites(), positions, box,
                                 out.forces);
  return work;
}

void DistributedEngine::kspace_phase(std::span<const Vec3> positions,
                                     const Box& box, bool kspace_due,
                                     ForceResult& kspace_cache,
                                     machine::StepWork& work) const {
  if (!ff_->has_kspace() || !kspace_due) return;
  obs::TracePhase phase("runtime.kspace", "runtime",
                        &engine_metrics().kspace_ns);
  kspace_cache.reset(ff_->topology().atom_count());
  ff_->compute_kspace(positions, box, kspace_cache);
  size_t charged = 0;
  for (double q : ff_->topology().charges()) {
    if (q != 0.0) ++charged;
  }
  auto gw = ff_->gse()->workload(charged);
  work.kspace.active = true;
  work.kspace.grid_points = gw.grid_points;
  work.kspace.charges = gw.charges;
  work.kspace.stencil_points = gw.spread_stencil_points;
  work.kspace.fft_flops = gw.fft_flops;
}

void DistributedEngine::build_eval_graph() const {
  const size_t n_atoms = ff_->topology().atom_count();
  // The fold partition is a function of the atom count alone; the fold is
  // an order-free integer add, so its granularity cannot change any bit.
  fold_plan_ = util::plan_chunks(n_atoms, 1024, 32);
  eval_graph_ =
      std::make_unique<util::TaskGraph>(exec_->runtime(), "runtime.evaluate");
  util::TaskGraph& g = *eval_graph_;

  const util::TaskId t_nodes = g.add_parallel(
      "runtime.node_eval", [this] { return parts_.size(); },
      [this](size_t n) {
        obs::TracePhase node_phase("runtime.node_eval", "runtime",
                                   &engine_metrics().node_eval_ns, /*track=*/
                                   kNodeTrackBase + static_cast<int64_t>(n),
                                   "node", static_cast<int64_t>(n));
        engine_metrics().node_evals.add();
        partials_scratch_[n].reset(call_.positions.size());
        evaluate_node(parts_[n], call_.positions, *call_.box, call_.time,
                      partials_scratch_[n], call_.work->nodes[n]);
      });

  const util::TaskId t_kspace = g.add("runtime.kspace", [this] {
    kspace_phase(call_.positions, *call_.box, call_.kspace_due,
                 *call_.kspace_cache, *call_.work);
  });

  const util::TaskId t_fold = g.add_parallel(
      "runtime.force_fold", [this] { return fold_plan_.chunks; },
      [this](size_t c) {
        const size_t lo = fold_plan_.begin(c);
        const size_t hi = fold_plan_.end(c);
        for (size_t n = 0; n < parts_.size(); ++n) {
          call_.out->forces.accumulate_range(partials_scratch_[n].forces, lo,
                                             hi);
        }
      },
      {t_nodes});

  g.add_reduction(
      "runtime.reduce",
      [this] {
        // Ascending node order for the scalar partials: the same summation
        // grouping as the serial loop, bit-for-bit, including the
        // double-precision virial.
        for (size_t n = 0; n < parts_.size(); ++n) {
          call_.out->energy.merge(partials_scratch_[n].energy);
          call_.out->virial += partials_scratch_[n].virial;
        }
        if (ff_->has_kspace()) call_.out->merge(*call_.kspace_cache);
        ff::spread_virtual_site_forces(ff_->topology().virtual_sites(),
                                       call_.positions, *call_.box,
                                       call_.out->forces);
      },
      {t_fold, t_kspace});
}

}  // namespace antmd::runtime
