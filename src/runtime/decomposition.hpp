// Spatial decomposition of atoms and work onto the machine's torus.
//
// Each node owns a rectangular "home box" of space; atoms are assigned by
// position, pair interactions by an assignment rule (half-shell or an
// NT-method-style midpoint rule), and bonded/update work by the owner of
// the first atom.  The decomposition also counts the communication volume
// each node incurs (position import, force return), which feeds the timing
// model.  Functional results never depend on the decomposition — that is
// the determinism contract tested in runtime_test / experiment T5.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ff/nonbonded.hpp"
#include "machine/torus.hpp"
#include "math/pbc.hpp"
#include "topo/topology.hpp"

namespace antmd::runtime {

/// How pair interactions are assigned to nodes.
enum class PairAssignment {
  kHomeOfFirst,  ///< half-shell: the owner of the lower-indexed atom
  kMidpoint,     ///< NT-style: the node whose home box contains the pair
                 ///< midpoint — halves import asymmetry for large cutoffs
};

class SpatialDecomposition {
 public:
  SpatialDecomposition(const machine::TorusTopology& torus, const Box& box);

  /// (Re)assigns atoms to home nodes from current positions.
  void assign_atoms(std::span<const Vec3> positions, const Box& box);

  [[nodiscard]] size_t node_count() const { return torus_->node_count(); }
  [[nodiscard]] uint32_t owner(uint32_t atom) const { return owner_[atom]; }
  [[nodiscard]] const std::vector<uint32_t>& owners() const { return owner_; }
  /// Number of atoms each node owns.
  [[nodiscard]] std::vector<size_t> atoms_per_node() const;

  /// Node that owns spatial point p (wrapped into the box).
  [[nodiscard]] uint32_t node_at(const Vec3& p, const Box& box) const;

  /// Assigns each pair to a node under the given rule.
  [[nodiscard]] std::vector<uint32_t> assign_pairs(
      std::span<const ff::PairEntry> pairs, std::span<const Vec3> positions,
      const Box& box, PairAssignment rule) const;

 private:
  const machine::TorusTopology* torus_;
  std::vector<uint32_t> owner_;
};

}  // namespace antmd::runtime
