#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace antmd::analysis {

double mean(std::span<const double> x) {
  ANTMD_REQUIRE(!x.empty(), "mean of empty series");
  double s = 0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  ANTMD_REQUIRE(x.size() >= 2, "variance needs >= 2 samples");
  double m = mean(x);
  double s = 0;
  for (double v : x) s += (v - m) * (v - m);
  return s / static_cast<double>(x.size() - 1);
}

double block_stderr(std::span<const double> x, size_t blocks) {
  ANTMD_REQUIRE(blocks >= 2 && x.size() >= blocks,
                "need at least 2 blocks of data");
  size_t block_len = x.size() / blocks;
  std::vector<double> block_means;
  block_means.reserve(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    auto sub = x.subspan(b * block_len, block_len);
    block_means.push_back(mean(sub));
  }
  return std::sqrt(variance(block_means) / static_cast<double>(blocks));
}

double autocorrelation(std::span<const double> x, size_t lag) {
  ANTMD_REQUIRE(x.size() > lag + 1, "series too short for this lag");
  double m = mean(x);
  double num = 0, den = 0;
  for (size_t i = 0; i + lag < x.size(); ++i) {
    num += (x[i] - m) * (x[i + lag] - m);
  }
  for (size_t i = 0; i < x.size(); ++i) den += (x[i] - m) * (x[i] - m);
  if (den == 0) return 0.0;
  return num / den;
}

double integrated_autocorrelation_time(std::span<const double> x) {
  double tau = 0.5;  // lag-0 contributes 1/2
  for (size_t lag = 1; lag < x.size() / 2; ++lag) {
    double c = autocorrelation(x, lag);
    if (c <= 0.0) break;
    tau += c;
  }
  return 2.0 * tau;  // conventional normalization: tau_int >= 1
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  ANTMD_REQUIRE(x.size() == y.size() && x.size() >= 2, "bad fit input");
  double mx = mean(x), my = mean(y);
  double sxx = 0, sxy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  ANTMD_REQUIRE(sxx > 0, "degenerate x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  ANTMD_REQUIRE(hi > lo && bins > 0, "bad histogram range");
}

void Histogram::add(double x, double weight) {
  if (x < lo_ || x >= hi_) return;
  auto b = static_cast<size_t>((x - lo_) / width_);
  if (b >= counts_.size()) b = counts_.size() - 1;
  counts_[b] += weight;
  total_ += weight;
}

double Histogram::bin_center(size_t b) const {
  return lo_ + (static_cast<double>(b) + 0.5) * width_;
}

double Histogram::density(size_t b) const {
  if (total_ == 0) return 0.0;
  return counts_[b] / (total_ * width_);
}

}  // namespace antmd::analysis
