// Free-energy estimators: WHAM for umbrella sampling, exponential averaging
// (Zwanzig) and Bennett acceptance ratio (BAR) for FEP windows, and a
// radial-distribution-function helper.
#pragma once

#include <span>
#include <vector>

#include "math/pbc.hpp"
#include "math/vec.hpp"

namespace antmd::analysis {

/// One umbrella window: harmonic bias U_b(ξ) = k (ξ - center)² and the
/// sampled reaction-coordinate series.
struct UmbrellaWindow {
  double center = 0.0;
  double k = 0.0;  ///< same convention as DistanceRestraint: U = k Δ²
  std::vector<double> samples;
};

struct WhamResult {
  std::vector<double> xi;        ///< bin centers
  std::vector<double> free_energy;  ///< PMF in kcal/mol, min shifted to 0
};

/// Standard self-consistent WHAM over the given windows.
[[nodiscard]] WhamResult wham(std::span<const UmbrellaWindow> windows,
                              double temperature_k, double xi_min,
                              double xi_max, size_t bins,
                              size_t max_iterations = 5000,
                              double tolerance = 1e-7);

/// Zwanzig / exponential averaging: ΔF(A→B) from samples of U_B - U_A drawn
/// in state A.  delta_u in kcal/mol.
[[nodiscard]] double zwanzig_delta_f(std::span<const double> delta_u,
                                     double temperature_k);

/// Bennett acceptance ratio: ΔF(A→B) from forward samples (U_B - U_A in A)
/// and reverse samples (U_A - U_B in B).  Solved by bisection.
[[nodiscard]] double bar_delta_f(std::span<const double> forward,
                                 std::span<const double> reverse,
                                 double temperature_k,
                                 size_t max_iterations = 200);

/// Jarzynski equality: ΔF = -kT ln <exp(-W/kT)> over repeated
/// nonequilibrium pulls (work samples in kcal/mol).
[[nodiscard]] double jarzynski_delta_f(std::span<const double> work,
                                       double temperature_k);

/// Radial distribution function g(r) between two index sets.
[[nodiscard]] std::vector<std::pair<double, double>> rdf(
    std::span<const Vec3> positions, std::span<const uint32_t> group_a,
    std::span<const uint32_t> group_b, const Box& box, double r_max,
    size_t bins);

}  // namespace antmd::analysis
