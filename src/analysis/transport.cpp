#include "analysis/transport.hpp"

#include "analysis/stats.hpp"
#include "util/error.hpp"

namespace antmd::analysis {

TransportAccumulator::TransportAccumulator(std::vector<uint32_t> atoms,
                                           double frame_dt)
    : atoms_(std::move(atoms)), dt_(frame_dt) {
  ANTMD_REQUIRE(!atoms_.empty(), "no atoms to track");
  ANTMD_REQUIRE(frame_dt > 0, "frame spacing must be positive");
}

void TransportAccumulator::add_frame(std::span<const Vec3> positions,
                                     std::span<const Vec3> velocities,
                                     const Box& box) {
  std::vector<Vec3> r(atoms_.size());
  std::vector<Vec3> v(atoms_.size());
  for (size_t a = 0; a < atoms_.size(); ++a) {
    v[a] = velocities[atoms_[a]];
  }
  if (frames_r_.empty()) {
    last_wrapped_.resize(atoms_.size());
    for (size_t a = 0; a < atoms_.size(); ++a) {
      last_wrapped_[a] = positions[atoms_[a]];
      r[a] = last_wrapped_[a];
    }
  } else {
    const auto& prev = frames_r_.back();
    for (size_t a = 0; a < atoms_.size(); ++a) {
      Vec3 step = box.min_image(positions[atoms_[a]], last_wrapped_[a]);
      r[a] = prev[a] + step;
      last_wrapped_[a] = positions[atoms_[a]];
    }
  }
  frames_r_.push_back(std::move(r));
  frames_v_.push_back(std::move(v));
}

std::vector<double> TransportAccumulator::msd(size_t max_lag) const {
  ANTMD_REQUIRE(frames_r_.size() > max_lag, "not enough frames for this lag");
  std::vector<double> out(max_lag + 1, 0.0);
  for (size_t lag = 0; lag <= max_lag; ++lag) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t t0 = 0; t0 + lag < frames_r_.size(); ++t0) {
      const auto& a = frames_r_[t0];
      const auto& b = frames_r_[t0 + lag];
      for (size_t k = 0; k < atoms_.size(); ++k) {
        sum += norm2(b[k] - a[k]);
        ++count;
      }
    }
    out[lag] = count ? sum / static_cast<double>(count) : 0.0;
  }
  return out;
}

std::vector<double> TransportAccumulator::vacf(size_t max_lag) const {
  ANTMD_REQUIRE(frames_v_.size() > max_lag, "not enough frames for this lag");
  std::vector<double> out(max_lag + 1, 0.0);
  for (size_t lag = 0; lag <= max_lag; ++lag) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t t0 = 0; t0 + lag < frames_v_.size(); ++t0) {
      const auto& a = frames_v_[t0];
      const auto& b = frames_v_[t0 + lag];
      for (size_t k = 0; k < atoms_.size(); ++k) {
        sum += dot(a[k], b[k]);
        ++count;
      }
    }
    out[lag] = count ? sum / static_cast<double>(count) : 0.0;
  }
  if (out[0] > 0) {
    double c0 = out[0];
    for (double& c : out) c /= c0;
  }
  return out;
}

double TransportAccumulator::diffusion_einstein(size_t max_lag,
                                                size_t fit_from) const {
  ANTMD_REQUIRE(fit_from < max_lag, "fit window is empty");
  auto m = msd(max_lag);
  std::vector<double> t, y;
  for (size_t lag = fit_from; lag <= max_lag; ++lag) {
    t.push_back(static_cast<double>(lag) * dt_);
    y.push_back(m[lag]);
  }
  return linear_fit(t, y).slope / 6.0;
}

double TransportAccumulator::diffusion_green_kubo(size_t max_lag) const {
  ANTMD_REQUIRE(frames_v_.size() > max_lag, "not enough frames");
  // Un-normalized VACF via the same averaging, integrated by trapezoid.
  std::vector<double> c(max_lag + 1, 0.0);
  for (size_t lag = 0; lag <= max_lag; ++lag) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t t0 = 0; t0 + lag < frames_v_.size(); ++t0) {
      for (size_t k = 0; k < atoms_.size(); ++k) {
        sum += dot(frames_v_[t0][k], frames_v_[t0 + lag][k]);
        ++count;
      }
    }
    c[lag] = sum / static_cast<double>(count);
  }
  double integral = 0.0;
  for (size_t lag = 0; lag < max_lag; ++lag) {
    integral += 0.5 * (c[lag] + c[lag + 1]) * dt_;
  }
  return integral / 3.0;
}

}  // namespace antmd::analysis
