// Structural observables: chain radius of gyration, end-to-end distance,
// membrane thickness — used by the tempering and membrane examples/benches.
#pragma once

#include <cstdint>
#include <span>

#include "math/pbc.hpp"
#include "math/vec.hpp"

namespace antmd::analysis {

/// Radius of gyration of a bonded chain of consecutive atom indices.
/// The chain is unwrapped bond-by-bond before the COM is computed, so the
/// result is correct even when the chain straddles the periodic boundary.
[[nodiscard]] double chain_radius_of_gyration(std::span<const Vec3> positions,
                                              std::span<const uint32_t> chain,
                                              const Box& box);

/// End-to-end distance of a bonded chain (unwrapped).
[[nodiscard]] double chain_end_to_end(std::span<const Vec3> positions,
                                      std::span<const uint32_t> chain,
                                      const Box& box);

/// Bilayer thickness: twice the mean |z - z_mid| of the given head-bead
/// indices, where z_mid is the mean head z (wrapped into the box first).
[[nodiscard]] double bilayer_thickness(std::span<const Vec3> positions,
                                       std::span<const uint32_t> heads,
                                       const Box& box);

/// Fraction of "native contacts" currently formed: pairs from `contacts`
/// count as formed when within `factor` × their reference distance.
struct Contact {
  uint32_t i = 0, j = 0;
  double reference = 0.0;
};

[[nodiscard]] double native_contact_fraction(std::span<const Vec3> positions,
                                             std::span<const Contact>
                                                 contacts,
                                             const Box& box,
                                             double factor = 1.3);

}  // namespace antmd::analysis
