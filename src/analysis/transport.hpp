// Transport observables from trajectories: mean-squared displacement,
// velocity autocorrelation, and self-diffusion coefficients via both the
// Einstein relation and Green–Kubo integration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/pbc.hpp"
#include "math/vec.hpp"

namespace antmd::analysis {

/// Accumulates trajectory snapshots for a subset of atoms; positions are
/// unwrapped frame-to-frame (minimum-image increments) so MSD is not
/// confused by periodic wrapping. Frames must be added at a fixed time
/// spacing `dt` (internal units).
class TransportAccumulator {
 public:
  TransportAccumulator(std::vector<uint32_t> atoms, double frame_dt);

  void add_frame(std::span<const Vec3> positions,
                 std::span<const Vec3> velocities, const Box& box);

  [[nodiscard]] size_t frame_count() const { return frames_r_.size(); }
  [[nodiscard]] double frame_dt() const { return dt_; }

  /// MSD(lag) averaged over atoms and time origins (Å²).
  [[nodiscard]] std::vector<double> msd(size_t max_lag) const;

  /// Normalized velocity autocorrelation C(lag)/C(0).
  [[nodiscard]] std::vector<double> vacf(size_t max_lag) const;

  /// D from the Einstein relation: slope of MSD over [fit_from, max_lag]
  /// divided by 6 (Å²/internal time).
  [[nodiscard]] double diffusion_einstein(size_t max_lag,
                                          size_t fit_from) const;

  /// D from Green–Kubo: (1/3) ∫ <v(0)·v(t)> dt (trapezoidal, un-normalized
  /// VACF), in Å²/internal time.
  [[nodiscard]] double diffusion_green_kubo(size_t max_lag) const;

 private:
  std::vector<uint32_t> atoms_;
  double dt_;
  std::vector<std::vector<Vec3>> frames_r_;  ///< unwrapped positions
  std::vector<std::vector<Vec3>> frames_v_;
  std::vector<Vec3> last_wrapped_;
};

}  // namespace antmd::analysis
