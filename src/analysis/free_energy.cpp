#include "analysis/free_energy.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"
#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd::analysis {

WhamResult wham(std::span<const UmbrellaWindow> windows, double temperature_k,
                double xi_min, double xi_max, size_t bins,
                size_t max_iterations, double tolerance) {
  ANTMD_REQUIRE(!windows.empty(), "WHAM needs at least one window");
  const double kt = units::kBoltzmann * temperature_k;
  const double beta = 1.0 / kt;
  const size_t n_win = windows.size();
  const double width = (xi_max - xi_min) / static_cast<double>(bins);

  // Histograms per window.
  std::vector<std::vector<double>> hist(n_win, std::vector<double>(bins, 0));
  std::vector<double> n_samples(n_win, 0.0);
  for (size_t w = 0; w < n_win; ++w) {
    for (double s : windows[w].samples) {
      if (s < xi_min || s >= xi_max) continue;
      auto b = static_cast<size_t>((s - xi_min) / width);
      if (b >= bins) b = bins - 1;
      hist[w][b] += 1.0;
      n_samples[w] += 1.0;
    }
    ANTMD_REQUIRE(n_samples[w] > 0,
                  "umbrella window has no samples in range");
  }

  // Bias energies at bin centers.
  std::vector<std::vector<double>> bias(n_win, std::vector<double>(bins));
  std::vector<double> centers(bins);
  for (size_t b = 0; b < bins; ++b) {
    centers[b] = xi_min + (static_cast<double>(b) + 0.5) * width;
    for (size_t w = 0; w < n_win; ++w) {
      double d = centers[b] - windows[w].center;
      bias[w][b] = windows[w].k * d * d;
    }
  }

  // Self-consistent iteration for the window free energies f_w.
  std::vector<double> f(n_win, 0.0);
  std::vector<double> p(bins, 0.0);
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    // Unbiased probability estimate.
    for (size_t b = 0; b < bins; ++b) {
      double num = 0.0, den = 0.0;
      for (size_t w = 0; w < n_win; ++w) {
        num += hist[w][b];
        den += n_samples[w] * std::exp(-beta * (bias[w][b] - f[w]));
      }
      p[b] = den > 0 ? num / den : 0.0;
    }
    // Update window free energies.
    double max_change = 0.0;
    for (size_t w = 0; w < n_win; ++w) {
      double z = 0.0;
      for (size_t b = 0; b < bins; ++b) {
        z += p[b] * std::exp(-beta * bias[w][b]);
      }
      double f_new = -kt * std::log(std::max(z, 1e-300));
      max_change = std::max(max_change, std::abs(f_new - f[w]));
      f[w] = f_new;
    }
    if (max_change < tolerance) break;
  }

  WhamResult result;
  result.xi = centers;
  result.free_energy.resize(bins);
  double fmin = 1e300;
  for (size_t b = 0; b < bins; ++b) {
    result.free_energy[b] =
        p[b] > 0 ? -kt * std::log(p[b]) : 1e6;  // empty bins -> high plateau
    if (p[b] > 0) fmin = std::min(fmin, result.free_energy[b]);
  }
  for (double& v : result.free_energy) {
    if (v < 1e6) v -= fmin;
  }
  return result;
}

double zwanzig_delta_f(std::span<const double> delta_u,
                       double temperature_k) {
  ANTMD_REQUIRE(!delta_u.empty(), "no samples");
  const double kt = units::kBoltzmann * temperature_k;
  // Log-sum-exp for numerical stability.
  double m = *std::min_element(delta_u.begin(), delta_u.end());
  double s = 0;
  for (double du : delta_u) s += std::exp(-(du - m) / kt);
  return m - kt * std::log(s / static_cast<double>(delta_u.size()));
}

double bar_delta_f(std::span<const double> forward,
                   std::span<const double> reverse, double temperature_k,
                   size_t max_iterations) {
  ANTMD_REQUIRE(!forward.empty() && !reverse.empty(), "need both directions");
  const double kt = units::kBoltzmann * temperature_k;
  const double log_ratio =
      std::log(static_cast<double>(forward.size()) /
               static_cast<double>(reverse.size()));

  // Solve the implicit BAR equation by bisection on ΔF.
  auto objective = [&](double df) {
    // Σ_F fermi(+(du - df)/kT) - Σ_R fermi(-(du + df)/kT) balance:
    double sf = 0;
    for (double du : forward) {
      sf += 1.0 / (1.0 + std::exp(log_ratio + (du - df) / kt));
    }
    double sr = 0;
    for (double du : reverse) {
      sr += 1.0 / (1.0 + std::exp(-log_ratio + (du + df) / kt));
    }
    return sf - sr;
  };

  double lo = zwanzig_delta_f(forward, temperature_k) - 50.0 * kt;
  double hi = -zwanzig_delta_f(reverse, temperature_k) + 50.0 * kt;
  if (lo > hi) std::swap(lo, hi);
  double flo = objective(lo);
  for (size_t i = 0; i < max_iterations; ++i) {
    double mid = 0.5 * (lo + hi);
    double fm = objective(mid);
    if ((fm > 0) == (flo > 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-9) break;
  }
  return 0.5 * (lo + hi);
}

double jarzynski_delta_f(std::span<const double> work,
                         double temperature_k) {
  // Mathematically identical to exponential averaging of ΔU samples.
  return zwanzig_delta_f(work, temperature_k);
}

std::vector<std::pair<double, double>> rdf(std::span<const Vec3> positions,
                                           std::span<const uint32_t> group_a,
                                           std::span<const uint32_t> group_b,
                                           const Box& box, double r_max,
                                           size_t bins) {
  ANTMD_REQUIRE(!group_a.empty() && !group_b.empty(), "empty RDF groups");
  Histogram h(0.0, r_max, bins);
  size_t pair_count = 0;
  for (uint32_t a : group_a) {
    for (uint32_t b : group_b) {
      if (a == b) continue;
      double r = std::sqrt(box.distance2(positions[a], positions[b]));
      h.add(r);
      ++pair_count;
    }
  }
  // Normalize by ideal-gas shell counts.
  const double rho_pairs =
      static_cast<double>(pair_count) / box.volume();
  std::vector<std::pair<double, double>> out;
  out.reserve(bins);
  const double width = r_max / static_cast<double>(bins);
  for (size_t b = 0; b < bins; ++b) {
    double r_lo = static_cast<double>(b) * width;
    double r_hi = r_lo + width;
    double shell = 4.0 / 3.0 * M_PI * (r_hi * r_hi * r_hi - r_lo * r_lo *
                                       r_lo);
    double ideal = rho_pairs * shell;
    double g = ideal > 0 ? h.count(b) / ideal : 0.0;
    out.emplace_back(h.bin_center(b), g);
  }
  return out;
}

}  // namespace antmd::analysis
