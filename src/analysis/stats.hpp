// Time-series statistics: means, block-averaged error bars, autocorrelation
// times, and linear drift fits (used by the energy-conservation experiment).
#pragma once

#include <span>
#include <vector>

namespace antmd::analysis {

[[nodiscard]] double mean(std::span<const double> x);
[[nodiscard]] double variance(std::span<const double> x);  ///< unbiased

/// Standard error of the mean from block averaging (robust to correlation):
/// the series is split into `blocks` contiguous blocks.
[[nodiscard]] double block_stderr(std::span<const double> x, size_t blocks);

/// Normalized autocorrelation function at the given lag.
[[nodiscard]] double autocorrelation(std::span<const double> x, size_t lag);

/// Integrated autocorrelation time (sum of the ACF until its first
/// non-positive value, the standard windowing heuristic).
[[nodiscard]] double integrated_autocorrelation_time(
    std::span<const double> x);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
};

/// Least-squares fit y = slope * x + intercept.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x,
                                   std::span<const double> y);

/// Histogram with fixed bin width over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void add(double x, double weight = 1.0);
  [[nodiscard]] size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_center(size_t b) const;
  [[nodiscard]] double count(size_t b) const { return counts_[b]; }
  [[nodiscard]] double total() const { return total_; }
  /// Probability density estimate in bin b.
  [[nodiscard]] double density(size_t b) const;
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace antmd::analysis
