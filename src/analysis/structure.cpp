#include "analysis/structure.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace antmd::analysis {
namespace {

std::vector<Vec3> unwrap_chain(std::span<const Vec3> positions,
                               std::span<const uint32_t> chain,
                               const Box& box) {
  ANTMD_REQUIRE(chain.size() >= 2, "chain needs at least 2 atoms");
  std::vector<Vec3> out(chain.size());
  out[0] = positions[chain[0]];
  for (size_t k = 1; k < chain.size(); ++k) {
    out[k] = out[k - 1] +
             box.min_image(positions[chain[k]], positions[chain[k - 1]]);
  }
  return out;
}

}  // namespace

double chain_radius_of_gyration(std::span<const Vec3> positions,
                                std::span<const uint32_t> chain,
                                const Box& box) {
  auto unwrapped = unwrap_chain(positions, chain, box);
  Vec3 com{};
  for (const auto& p : unwrapped) com += p;
  com /= static_cast<double>(unwrapped.size());
  double rg2 = 0;
  for (const auto& p : unwrapped) rg2 += norm2(p - com);
  return std::sqrt(rg2 / static_cast<double>(unwrapped.size()));
}

double chain_end_to_end(std::span<const Vec3> positions,
                        std::span<const uint32_t> chain, const Box& box) {
  auto unwrapped = unwrap_chain(positions, chain, box);
  return norm(unwrapped.back() - unwrapped.front());
}

double bilayer_thickness(std::span<const Vec3> positions,
                         std::span<const uint32_t> heads, const Box& box) {
  ANTMD_REQUIRE(!heads.empty(), "no head beads given");
  double z_sum = 0;
  std::vector<double> zs;
  zs.reserve(heads.size());
  for (uint32_t h : heads) {
    double z = box.wrap(positions[h]).z;
    zs.push_back(z);
    z_sum += z;
  }
  double z_mid = z_sum / static_cast<double>(zs.size());
  double dev = 0;
  for (double z : zs) dev += std::abs(z - z_mid);
  return 2.0 * dev / static_cast<double>(zs.size());
}

double native_contact_fraction(std::span<const Vec3> positions,
                               std::span<const Contact> contacts,
                               const Box& box, double factor) {
  ANTMD_REQUIRE(!contacts.empty(), "no contacts given");
  size_t formed = 0;
  for (const auto& c : contacts) {
    double r = std::sqrt(box.distance2(positions[c.i], positions[c.j]));
    if (r <= factor * c.reference) ++formed;
  }
  return static_cast<double>(formed) / static_cast<double>(contacts.size());
}

}  // namespace antmd::analysis
