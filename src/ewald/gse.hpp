// Gaussian Split Ewald (GSE) — the long-range electrostatics method Anton
// uses (Shan, Klepeis, Eastwood, Dror, Shaw, J. Chem. Phys. 122, 054101).
//
// The Ewald Gaussian of width 1/(2β) is split: part of the smearing is
// applied by spreading charges onto a regular grid with a Gaussian of
// variance σ_s², the rest is folded into the reciprocal-space convolution
// kernel, and the same Gaussian is reused to interpolate forces off the
// grid.  The k-space solve is a dense 3D FFT (fft/).
//
// Correctness contract: real-space kernel (ff::Electrostatics::kEwaldReal
// with the same β) + this reciprocal part + self/exclusion/background
// corrections reproduces full Ewald electrostatics; the Madelung-constant
// test in tests/ewald_test.cpp pins this down.
#pragma once

#include <span>
#include <vector>

#include "fft/fft3d.hpp"
#include "ff/energy.hpp"
#include "math/pbc.hpp"

namespace antmd {

struct GseParams {
  double beta = 0.35;          ///< Ewald splitting parameter (Å⁻¹)
  double grid_spacing = 1.0;   ///< target grid spacing (Å); grid dims are
                               ///< rounded up to powers of two
  double sigma_split = 0.5;    ///< fraction of the total Gaussian variance
                               ///< assigned to spreading (0 < f < 1)
  double stencil_sigmas = 4.0; ///< spreading support radius in units of σ_s
                               ///< (the truncated tail gives the grid energy
                               ///< tiny C⁰ steps when the stencil shifts; 4σ
                               ///< keeps them ~1e-4 of the peak weight)
};

/// Workload statistics from one reciprocal-space evaluation, consumed by the
/// machine timing model (experiment F5).
struct GseWorkload {
  size_t grid_points = 0;
  size_t spread_stencil_points = 0;  ///< per charge
  size_t charges = 0;
  double fft_flops = 0.0;
};

class GseSolver {
 public:
  GseSolver(const Box& box, GseParams params);

  /// Recomputes grid dimensions after a box change (barostat).
  void rebuild(const Box& box);

  /// Adds reciprocal-space forces and energy for the given charges.
  /// Also adds the self-energy, neutralizing-background and excluded-pair
  /// corrections so that (real-space erfc loop + this) == full Ewald.
  void compute(std::span<const Vec3> pos, std::span<const double> charges,
               std::span<const std::pair<uint32_t, uint32_t>> excluded_pairs,
               const Box& box, ForceResult& out) const;

  [[nodiscard]] const GseParams& params() const { return params_; }
  [[nodiscard]] size_t nx() const { return nx_; }
  [[nodiscard]] size_t ny() const { return ny_; }
  [[nodiscard]] size_t nz() const { return nz_; }
  [[nodiscard]] GseWorkload workload(size_t n_charges) const;

  /// Direct (non-grid) reciprocal-space Ewald sum for validation; O(N·K).
  /// Includes the same self/background/exclusion corrections.
  static void compute_reference(std::span<const Vec3> pos,
                                std::span<const double> charges,
                                std::span<const std::pair<uint32_t, uint32_t>>
                                    excluded_pairs,
                                const Box& box, double beta, int kmax,
                                ForceResult& out);

 private:
  void corrections(std::span<const Vec3> pos, std::span<const double> charges,
                   std::span<const std::pair<uint32_t, uint32_t>>
                       excluded_pairs,
                   const Box& box, ForceResult& out) const;

  GseParams params_;
  size_t nx_ = 0, ny_ = 0, nz_ = 0;
  double sigma_s_ = 0.0;   ///< spreading Gaussian std-dev (Å)
  int support_ = 0;        ///< stencil half-width in cells
};

}  // namespace antmd
