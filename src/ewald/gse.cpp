#include "ewald/gse.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd {
namespace {

size_t next_pow2(double x) {
  size_t n = 1;
  while (static_cast<double>(n) < x) n <<= 1;
  return n;
}

/// Wraps a (possibly negative) grid index into [0, n).
inline size_t wrap_index(long i, long n) {
  long m = i % n;
  if (m < 0) m += n;
  return static_cast<size_t>(m);
}

}  // namespace

GseSolver::GseSolver(const Box& box, GseParams params)
    : params_(params) {
  ANTMD_REQUIRE(params_.beta > 0, "beta must be positive");
  ANTMD_REQUIRE(params_.sigma_split > 0 && params_.sigma_split < 1,
                "sigma_split must be in (0, 1)");
  rebuild(box);
}

void GseSolver::rebuild(const Box& box) {
  nx_ = next_pow2(box.edges().x / params_.grid_spacing);
  ny_ = next_pow2(box.edges().y / params_.grid_spacing);
  nz_ = next_pow2(box.edges().z / params_.grid_spacing);
  // Total reciprocal Gaussian variance α = 1/(4β²); σ_s² takes a fraction.
  const double alpha = 1.0 / (4.0 * params_.beta * params_.beta);
  sigma_s_ = std::sqrt(params_.sigma_split * alpha);
  const double h_max =
      std::max({box.edges().x / static_cast<double>(nx_),
                box.edges().y / static_cast<double>(ny_),
                box.edges().z / static_cast<double>(nz_)});
  support_ = static_cast<int>(
      std::ceil(params_.stencil_sigmas * sigma_s_ / h_max));
  ANTMD_REQUIRE(support_ >= 1, "spreading support collapsed to zero");
  ANTMD_REQUIRE(2 * support_ + 1 <= static_cast<int>(std::min({nx_, ny_, nz_})),
                "grid too small for the spreading stencil");
}

GseWorkload GseSolver::workload(size_t n_charges) const {
  GseWorkload w;
  w.grid_points = nx_ * ny_ * nz_;
  size_t stencil = static_cast<size_t>(2 * support_ + 1);
  w.spread_stencil_points = stencil * stencil * stencil;
  w.charges = n_charges;
  w.fft_flops = 2.0 * estimate_fft_cost(nx_, ny_, nz_, 1).flops;  // fwd+inv
  return w;
}

void GseSolver::compute(
    std::span<const Vec3> pos, std::span<const double> charges,
    std::span<const std::pair<uint32_t, uint32_t>> excluded_pairs,
    const Box& box, ForceResult& out) const {
  const size_t n = pos.size();
  ANTMD_REQUIRE(charges.size() == n, "positions/charges size mismatch");

  const double hx = box.edges().x / static_cast<double>(nx_);
  const double hy = box.edges().y / static_cast<double>(ny_);
  const double hz = box.edges().z / static_cast<double>(nz_);
  const double cell_volume = hx * hy * hz;
  const double volume = box.volume();
  const double alpha = 1.0 / (4.0 * params_.beta * params_.beta);
  const double sigma2 = sigma_s_ * sigma_s_;
  const double kernel_alpha = alpha - sigma2;  // remaining variance
  const double gauss_norm =
      std::pow(2.0 * M_PI * sigma2, -1.5);  // 3D Gaussian normalization

  // --- spread charges -------------------------------------------------------
  Grid3D grid(nx_, ny_, nz_);
  grid.fill({0.0, 0.0});
  const int sup = support_;
  const size_t stencil = static_cast<size_t>(2 * sup + 1);
  std::vector<double> wx(stencil), wy(stencil), wz(stencil);

  for (size_t i = 0; i < n; ++i) {
    if (charges[i] == 0.0) continue;
    Vec3 r = box.wrap(pos[i]);
    long cx = static_cast<long>(std::floor(r.x / hx));
    long cy = static_cast<long>(std::floor(r.y / hy));
    long cz = static_cast<long>(std::floor(r.z / hz));
    for (int o = -sup; o <= sup; ++o) {
      double dx = r.x - static_cast<double>(cx + o) * hx;
      double dy = r.y - static_cast<double>(cy + o) * hy;
      double dz = r.z - static_cast<double>(cz + o) * hz;
      wx[static_cast<size_t>(o + sup)] = std::exp(-dx * dx / (2.0 * sigma2));
      wy[static_cast<size_t>(o + sup)] = std::exp(-dy * dy / (2.0 * sigma2));
      wz[static_cast<size_t>(o + sup)] = std::exp(-dz * dz / (2.0 * sigma2));
    }
    for (int oz = -sup; oz <= sup; ++oz) {
      size_t gz = wrap_index(cz + oz, static_cast<long>(nz_));
      for (int oy = -sup; oy <= sup; ++oy) {
        size_t gy = wrap_index(cy + oy, static_cast<long>(ny_));
        double wyz = wy[static_cast<size_t>(oy + sup)] *
                     wz[static_cast<size_t>(oz + sup)];
        for (int ox = -sup; ox <= sup; ++ox) {
          size_t gx = wrap_index(cx + ox, static_cast<long>(nx_));
          double w = gauss_norm * wx[static_cast<size_t>(ox + sup)] * wyz;
          grid.at(gx, gy, gz) += Complex(charges[i] * w, 0.0);
        }
      }
    }
  }

  // --- k-space convolution ---------------------------------------------------
  fft3d_forward(grid);

  const double two_pi = 2.0 * M_PI;
  double energy = 0.0;
  Mat3 virial{};
  for (size_t iz = 0; iz < nz_; ++iz) {
    long mz = static_cast<long>(iz);
    if (mz > static_cast<long>(nz_ / 2)) mz -= static_cast<long>(nz_);
    double kz = two_pi * static_cast<double>(mz) / box.edges().z;
    for (size_t iy = 0; iy < ny_; ++iy) {
      long my = static_cast<long>(iy);
      if (my > static_cast<long>(ny_ / 2)) my -= static_cast<long>(ny_);
      double ky = two_pi * static_cast<double>(my) / box.edges().y;
      for (size_t ix = 0; ix < nx_; ++ix) {
        long mx = static_cast<long>(ix);
        if (mx > static_cast<long>(nx_ / 2)) mx -= static_cast<long>(nx_);
        double kx = two_pi * static_cast<double>(mx) / box.edges().x;
        double k2 = kx * kx + ky * ky + kz * kz;
        Complex& g = grid.at(ix, iy, iz);
        if (k2 == 0.0) {
          g = {0.0, 0.0};  // tinfoil boundary conditions
          continue;
        }
        double green = 4.0 * M_PI * units::kCoulomb / k2 *
                       std::exp(-kernel_alpha * k2);
        // Energy via Parseval on the DFT coefficients:
        // rho_hat(k) = F * cell_volume; E = 1/(2V) Σ G |rho_hat|² / kC...
        double f2 = std::norm(g) * cell_volume * cell_volume;
        double e_k = 0.5 / volume * green * f2;
        energy += e_k;
        double vfac = 2.0 * (1.0 / k2 + alpha);
        virial(0, 0) += e_k * (1.0 - vfac * kx * kx);
        virial(1, 1) += e_k * (1.0 - vfac * ky * ky);
        virial(2, 2) += e_k * (1.0 - vfac * kz * kz);
        virial(0, 1) += e_k * (-vfac * kx * ky);
        virial(0, 2) += e_k * (-vfac * kx * kz);
        virial(1, 2) += e_k * (-vfac * ky * kz);
        g *= green;
      }
    }
  }
  virial(1, 0) = virial(0, 1);
  virial(2, 0) = virial(0, 2);
  virial(2, 1) = virial(1, 2);

  fft3d_inverse(grid);  // grid now holds the (smeared) potential φ

  // --- interpolate forces off the grid --------------------------------------
  for (size_t i = 0; i < n; ++i) {
    if (charges[i] == 0.0) continue;
    Vec3 r = box.wrap(pos[i]);
    long cx = static_cast<long>(std::floor(r.x / hx));
    long cy = static_cast<long>(std::floor(r.y / hy));
    long cz = static_cast<long>(std::floor(r.z / hz));
    Vec3 f{};
    for (int oz = -sup; oz <= sup; ++oz) {
      size_t gz = wrap_index(cz + oz, static_cast<long>(nz_));
      double dz = r.z - static_cast<double>(cz + oz) * hz;
      double wzv = std::exp(-dz * dz / (2.0 * sigma2));
      for (int oy = -sup; oy <= sup; ++oy) {
        size_t gy = wrap_index(cy + oy, static_cast<long>(ny_));
        double dy = r.y - static_cast<double>(cy + oy) * hy;
        double wyv = std::exp(-dy * dy / (2.0 * sigma2));
        for (int ox = -sup; ox <= sup; ++ox) {
          size_t gx = wrap_index(cx + ox, static_cast<long>(nx_));
          double dx = r.x - static_cast<double>(cx + ox) * hx;
          double wxv = std::exp(-dx * dx / (2.0 * sigma2));
          double w = gauss_norm * wxv * wyv * wzv;
          double phi = grid.at(gx, gy, gz).real();
          // f = -q ∇φ_interp; ∇W = -d/σ² W  (d = r_atom - r_cell)
          double coeff = charges[i] * phi * cell_volume * w / sigma2;
          f += coeff * Vec3{dx, dy, dz};
        }
      }
    }
    out.forces.add(i, f);
  }

  out.energy.coulomb_kspace.add(energy);
  out.virial += virial;

  corrections(pos, charges, excluded_pairs, box, out);
}

void GseSolver::corrections(
    std::span<const Vec3> pos, std::span<const double> charges,
    std::span<const std::pair<uint32_t, uint32_t>> excluded_pairs,
    const Box& box, ForceResult& out) const {
  const double beta = params_.beta;
  double q2_sum = 0.0;
  double q_sum = 0.0;
  for (double q : charges) {
    q2_sum += q * q;
    q_sum += q;
  }
  // Point self-interaction removed from the reciprocal sum.
  double self_energy = -units::kCoulomb * beta / std::sqrt(M_PI) * q2_sum;
  // Neutralizing background for non-neutral systems.
  double bg_energy = -units::kCoulomb * M_PI /
                     (2.0 * beta * beta * box.volume()) * q_sum * q_sum;
  out.energy.coulomb_self.add(self_energy + bg_energy);
  out.virial += Mat3::diagonal(bg_energy, bg_energy, bg_energy);

  // Excluded pairs: the reciprocal sum contains their full (smeared)
  // interaction; remove the erf(βr)/r piece so excluded pairs feel nothing.
  const double two_beta_over_sqrt_pi = 2.0 * beta / std::sqrt(M_PI);
  for (const auto& [i, j] : excluded_pairs) {
    double qq = charges[i] * charges[j];
    if (qq == 0.0) continue;
    Vec3 d = box.min_image(pos[i], pos[j]);
    double r2 = norm2(d);
    double r = std::sqrt(r2);
    double erf_term = std::erf(beta * r);
    double gauss = two_beta_over_sqrt_pi * std::exp(-beta * beta * r2);
    double energy = -units::kCoulomb * qq * erf_term / r;
    // f_over_r for U = -kC qq erf(βr)/r:
    double f_over_r =
        units::kCoulomb * qq * (gauss / r2 - erf_term / (r2 * r));
    Vec3 f = f_over_r * d;
    out.forces.add_pair(i, j, f);
    out.energy.coulomb_self.add(energy);
    out.virial += outer(d, f);
  }
}

void GseSolver::compute_reference(
    std::span<const Vec3> pos, std::span<const double> charges,
    std::span<const std::pair<uint32_t, uint32_t>> excluded_pairs,
    const Box& box, double beta, int kmax, ForceResult& out) {
  const size_t n = pos.size();
  const double volume = box.volume();
  const double alpha = 1.0 / (4.0 * beta * beta);
  const double two_pi = 2.0 * M_PI;

  double energy = 0.0;
  for (int mx = -kmax; mx <= kmax; ++mx) {
    for (int my = -kmax; my <= kmax; ++my) {
      for (int mz = -kmax; mz <= kmax; ++mz) {
        if (mx == 0 && my == 0 && mz == 0) continue;
        Vec3 k{two_pi * mx / box.edges().x, two_pi * my / box.edges().y,
               two_pi * mz / box.edges().z};
        double k2 = norm2(k);
        double green =
            4.0 * M_PI * units::kCoulomb / k2 * std::exp(-alpha * k2);
        double re = 0.0, im = 0.0;  // S(k)
        for (size_t i = 0; i < n; ++i) {
          double phase = dot(k, pos[i]);
          re += charges[i] * std::cos(phase);
          im += charges[i] * std::sin(phase);
        }
        energy += 0.5 / volume * green * (re * re + im * im);
        for (size_t i = 0; i < n; ++i) {
          double phase = dot(k, pos[i]);
          double c = std::cos(phase), s = std::sin(phase);
          // f_i = -(1/V) G q_i k (c·Im S - s·Re S)
          double coeff =
              -green / volume * charges[i] * (c * im - s * re);
          out.forces.add(i, coeff * k);
        }
      }
    }
  }
  out.energy.coulomb_kspace.add(energy);

  GseParams p;
  p.beta = beta;
  GseSolver solver(box, p);
  solver.corrections(pos, charges, excluded_pairs, box, out);
}

}  // namespace antmd
