#include "md/barostat.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "md/serialize.hpp"
#include "util/error.hpp"

namespace antmd::md {

void scale_box_and_molecules(const Topology& topo, double factor,
                             State& state) {
  scale_box_and_molecules(topo, Vec3{factor, factor, factor}, state);
}

void scale_box_and_molecules(const Topology& topo, const Vec3& factors,
                             State& state) {
  Box new_box = state.box.scaled(factors.x, factors.y, factors.z);
  for (const Molecule& mol : topo.molecules()) {
    // Molecule centre of mass (using unwrapped relative geometry).
    Vec3 ref = state.positions[mol.first];
    Vec3 com{};
    double mass = 0.0;
    for (uint32_t a = mol.first; a < mol.first + mol.count; ++a) {
      Vec3 rel = state.box.min_image(state.positions[a], ref);
      double m = std::max(topo.masses()[a], 1e-9);
      com += m * (ref + rel);
      mass += m;
    }
    com /= mass;
    Vec3 shift{(factors.x - 1.0) * com.x, (factors.y - 1.0) * com.y,
               (factors.z - 1.0) * com.z};
    for (uint32_t a = mol.first; a < mol.first + mol.count; ++a) {
      state.positions[a] += shift;
    }
  }
  state.box = new_box;
}

Barostat::Barostat(const Topology& topo, BarostatConfig config,
                   PotentialFn potential_energy)
    : topo_(&topo),
      config_(config),
      potential_(std::move(potential_energy)),
      rng_(config.seed) {
  if (config_.kind == BarostatKind::kMonteCarlo) {
    ANTMD_REQUIRE(potential_ != nullptr,
                  "MC barostat needs a potential-energy callback");
  }
}

bool Barostat::maybe_apply(State& state, double virial_trace) {
  if (config_.kind == BarostatKind::kNone) return false;
  if (config_.interval > 1 &&
      state.step % static_cast<uint64_t>(config_.interval) != 0) {
    return false;
  }
  switch (config_.kind) {
    case BarostatKind::kBerendsen: return apply_berendsen(state, virial_trace);
    case BarostatKind::kMonteCarlo: return apply_monte_carlo(state);
    case BarostatKind::kBerendsenSemiIso:
      ANTMD_REQUIRE(false,
                    "semi-isotropic barostat needs maybe_apply_tensor");
    case BarostatKind::kNone: break;
  }
  return false;
}

bool Barostat::maybe_apply_tensor(State& state, const Mat3& virial) {
  if (config_.kind != BarostatKind::kBerendsenSemiIso) {
    return maybe_apply(state, trace(virial));
  }
  if (config_.interval > 1 &&
      state.step % static_cast<uint64_t>(config_.interval) != 0) {
    return false;
  }
  return apply_berendsen_semi_iso(state, virial);
}

bool Barostat::apply_berendsen_semi_iso(State& state, const Mat3& virial) {
  // Per-axis instantaneous pressures from the kinetic tensor approximated
  // isotropically (adequate for weak coupling) plus the virial diagonal.
  double ke = kinetic_energy(*topo_, state);
  double volume = state.box.volume();
  auto p_axis = [&](int a) {
    double p_internal = (2.0 * ke / 3.0 + virial(a, a)) / volume;
    return p_internal * units::kAtmPerInternalPressure;
  };
  double p_xy = 0.5 * (p_axis(0) + p_axis(1));
  double p_z = p_axis(2);

  double tau = units::fs_to_internal(config_.tau_fs);
  double dt_eff = tau / 100.0 * config_.interval;
  auto mu_for = [&](double p) {
    double mu3 = 1.0 - dt_eff / tau * config_.compressibility *
                           (config_.pressure_atm - p);
    return std::cbrt(std::clamp(mu3, 0.98, 1.02));
  };
  double mu_xy = mu_for(p_xy);
  double mu_z = mu_for(p_z);
  if (mu_xy == 1.0 && mu_z == 1.0) return false;
  scale_box_and_molecules(*topo_, Vec3{mu_xy, mu_xy, mu_z}, state);
  return true;
}

bool Barostat::apply_berendsen(State& state, double virial_trace) {
  double p = pressure_atm(*topo_, state, virial_trace);
  double tau = units::fs_to_internal(config_.tau_fs);
  // Effective dt is interval steps; callers tick every step.
  double dt_eff = tau / 100.0 * config_.interval;  // conservative smoothing
  double mu3 = 1.0 - dt_eff / tau * config_.compressibility *
                         (config_.pressure_atm - p);
  double mu = std::cbrt(std::clamp(mu3, 0.98, 1.02));
  if (mu == 1.0) return false;
  scale_box_and_molecules(*topo_, mu, state);
  return true;
}

bool Barostat::apply_monte_carlo(State& state) {
  ++mc_attempts_;
  const double kt = units::kBoltzmann * config_.temperature_k;
  const double v_old = state.box.volume();
  const double u_old = potential_(state.positions, state.box);

  double dv = (2.0 * rng_.uniform() - 1.0) * config_.mc_max_dv_fraction *
              v_old;
  double v_new = v_old + dv;
  double factor = std::cbrt(v_new / v_old);

  State trial = state;
  scale_box_and_molecules(*topo_, factor, trial);
  double u_new = potential_(trial.positions, trial.box);

  // NPT acceptance: ΔU + P ΔV - N_mol kT ln(V'/V)
  const double p_internal =
      config_.pressure_atm / units::kAtmPerInternalPressure;
  const double n_mol = static_cast<double>(topo_->molecules().size());
  double arg = (u_new - u_old) + p_internal * dv -
               n_mol * kt * std::log(v_new / v_old);
  bool accept = arg <= 0.0 || rng_.uniform() < std::exp(-arg / kt);
  if (accept) {
    state.positions = std::move(trial.positions);
    state.box = trial.box;
    ++mc_accepts_;
    return true;
  }
  return false;
}

void Barostat::save_state(util::BinaryWriter& out) const {
  out.write_u64(mc_attempts_);
  out.write_u64(mc_accepts_);
  write_rng(out, rng_);
}

void Barostat::restore_state(util::BinaryReader& in) {
  mc_attempts_ = in.read_u64();
  mc_accepts_ = in.read_u64();
  read_rng(in, rng_);
}

}  // namespace antmd::md
