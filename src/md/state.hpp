// Dynamic simulation state and kinetic-energy helpers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "math/pbc.hpp"
#include "math/vec.hpp"
#include "topo/topology.hpp"

namespace antmd {

/// Positions, velocities, box and clock. Positions are unwrapped only
/// transiently; callers should treat them as residing near the primary cell.
struct State {
  std::vector<Vec3> positions;
  std::vector<Vec3> velocities;
  Box box;
  double time = 0.0;  ///< internal time units
  uint64_t step = 0;
};

namespace md {

/// Draws Maxwell–Boltzmann velocities at temperature_k using the
/// decomposition-independent counter RNG (stream = seed, index = atom,
/// step = 0), zeroes virtual-site velocities, removes COM drift, and
/// rescales to exactly the target temperature.
void init_velocities(const Topology& topo, double temperature_k,
                     uint64_t seed, State& state);

/// Sum of m v²/2 (kcal/mol). Virtual sites (massless) contribute zero.
[[nodiscard]] double kinetic_energy(const Topology& topo, const State& state);

/// Instantaneous temperature from equipartition over the topology's DoF.
[[nodiscard]] double temperature(const Topology& topo, const State& state);

/// Removes centre-of-mass momentum.
void remove_com_momentum(const Topology& topo, State& state);

/// Instantaneous pressure (atm) from kinetic energy and the virial trace.
[[nodiscard]] double pressure_atm(const Topology& topo, const State& state,
                                  double virial_trace);

}  // namespace md
}  // namespace antmd
