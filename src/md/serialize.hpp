// Checkpoint serializers for the core dynamic types (State, ForceResult,
// SequentialRng snapshots).  Shared by md::Simulation, the machine runtime
// and the sampling drivers so every Checkpointable speaks the same layout.
#pragma once

#include "ff/energy.hpp"
#include "math/rng.hpp"
#include "md/state.hpp"
#include "util/serialize.hpp"

namespace antmd::md {

/// Positions, velocities, box edges, clock and step counter.
void write_state(util::BinaryWriter& out, const State& state);
[[nodiscard]] State read_state(util::BinaryReader& in);

/// Full force result: per-atom integer force quanta, fixed-point energy
/// breakdown and the double-precision virial.  Needed for bit-exact RESPA /
/// k-space cache resume (the cached forces were computed at *earlier*
/// positions, so they cannot be recomputed at restore time).
void write_force_result(util::BinaryWriter& out, const ForceResult& res);
void read_force_result(util::BinaryReader& in, ForceResult& res);

void write_rng(util::BinaryWriter& out, const SequentialRng& rng);
void read_rng(util::BinaryReader& in, SequentialRng& rng);

}  // namespace antmd::md
