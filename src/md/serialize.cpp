#include "md/serialize.hpp"

namespace antmd::md {

void write_state(util::BinaryWriter& out, const State& state) {
  Vec3 edges = state.box.edges();
  out.write_pod(edges);
  out.write_f64(state.time);
  out.write_u64(state.step);
  out.write_pod_vector(state.positions);
  out.write_pod_vector(state.velocities);
}

State read_state(util::BinaryReader& in) {
  State state;
  Vec3 edges = in.read_pod<Vec3>();
  state.box = Box(edges.x, edges.y, edges.z);
  state.time = in.read_f64();
  state.step = in.read_u64();
  state.positions = in.read_pod_vector<Vec3>();
  state.velocities = in.read_pod_vector<Vec3>();
  if (state.velocities.size() != state.positions.size()) {
    throw IoError("checkpoint state malformed: " +
                        std::to_string(state.positions.size()) +
                        " positions vs " +
                        std::to_string(state.velocities.size()) +
                        " velocities");
  }
  return state;
}

void write_force_result(util::BinaryWriter& out, const ForceResult& res) {
  out.write_u64(res.forces.size());
  for (size_t i = 0; i < res.forces.size(); ++i) {
    out.write_pod(res.forces.quanta(i));
  }
  const EnergyBreakdown& e = res.energy;
  for (const auto* term :
       {&e.bond, &e.angle, &e.dihedral, &e.vdw, &e.coulomb_real,
        &e.coulomb_kspace, &e.coulomb_self, &e.pair14, &e.restraint,
        &e.external}) {
    out.write_i64(term->raw());
  }
  out.write_pod(res.virial);
}

void read_force_result(util::BinaryReader& in, ForceResult& res) {
  uint64_t n = in.read_u64();
  res.reset(n);
  for (size_t i = 0; i < n; ++i) {
    res.forces.set_quanta(i, in.read_pod<std::array<int64_t, 3>>());
  }
  EnergyBreakdown& e = res.energy;
  for (auto* term :
       {&e.bond, &e.angle, &e.dihedral, &e.vdw, &e.coulomb_real,
        &e.coulomb_kspace, &e.coulomb_self, &e.pair14, &e.restraint,
        &e.external}) {
    term->set_raw(in.read_i64());
  }
  res.virial = in.read_pod<Mat3>();
}

void write_rng(util::BinaryWriter& out, const SequentialRng& rng) {
  SequentialRng::Snapshot snap = rng.snapshot();
  out.write_pod(snap.state);
  out.write_bool(snap.have_spare);
  out.write_f64(snap.spare);
}

void read_rng(util::BinaryReader& in, SequentialRng& rng) {
  SequentialRng::Snapshot snap;
  snap.state = in.read_pod<std::array<uint64_t, 4>>();
  snap.have_spare = in.read_bool();
  snap.spare = in.read_f64();
  rng.restore(snap);
}

}  // namespace antmd::md
