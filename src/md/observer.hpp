// Step-observation callback API shared by md::Simulation and
// runtime::MachineSimulation.
//
// Callers that previously polled `sim.state()` (or worse, mutable_state())
// from hand-rolled loops register a StepObserver instead; the driver
// invokes it after each completed step with a read-only summary, computing
// the O(N) kinetic/temperature reductions only when at least one observer
// is due.  Observers must outlive the simulation they are registered on
// (or at least every step() call made while they are registered).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace antmd::md {

/// Read-only summary of a completed MD step.
struct StepInfo {
  uint64_t step = 0;        ///< step index after the advance (1-based)
  double time = 0.0;        ///< simulation time, internal units
  double potential = 0.0;   ///< kcal/mol
  double kinetic = 0.0;     ///< kcal/mol
  double temperature = 0.0; ///< K
  double wall_seconds = 0.0;///< wall-clock time since the driver was built
};

using StepObserver = std::function<void(const StepInfo&)>;

/// Interval-filtered observer registry.
class ObserverList {
 public:
  /// Invokes `obs` whenever step % interval == 0 (interval clamped to >=1).
  void add(StepObserver obs, int interval = 1) {
    entries_.push_back({interval < 1 ? uint64_t{1}
                                     : static_cast<uint64_t>(interval),
                        std::move(obs)});
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// True when at least one observer fires at this step (lets the caller
  /// skip building a StepInfo — and its O(N) reductions — otherwise).
  [[nodiscard]] bool due(uint64_t step) const {
    for (const auto& e : entries_) {
      if (step % e.interval == 0) return true;
    }
    return false;
  }

  void notify(const StepInfo& info) const {
    for (const auto& e : entries_) {
      if (info.step % e.interval == 0) e.fn(info);
    }
  }

 private:
  struct Entry {
    uint64_t interval;
    StepObserver fn;
  };
  std::vector<Entry> entries_;
};

/// Wall clock used for StepInfo::wall_seconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace antmd::md
