// Step-observation callback API shared by md::Simulation and
// runtime::MachineSimulation.
//
// Callers that previously polled `sim.state()` (or worse, mutable_state())
// from hand-rolled loops register a StepObserver instead; the driver
// invokes it after each completed step with a read-only summary, computing
// the O(N) kinetic/temperature reductions only when at least one observer
// is due.  Observers must outlive the simulation they are registered on
// (or at least every step() call made while they are registered).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace antmd::md {

/// Read-only summary of a completed MD step.
struct StepInfo {
  uint64_t step = 0;        ///< step index after the advance (1-based)
  double time = 0.0;        ///< simulation time, internal units
  double potential = 0.0;   ///< kcal/mol
  double kinetic = 0.0;     ///< kcal/mol
  double temperature = 0.0; ///< K
  double wall_seconds = 0.0;///< wall-clock time since the driver was built
};

using StepObserver = std::function<void(const StepInfo&)>;

/// Interval-filtered observer registry.
class ObserverList {
 public:
  /// Invokes `obs` whenever step % interval == 0 (interval clamped to >=1).
  void add(StepObserver obs, int interval = 1) {
    const uint64_t iv =
        interval < 1 ? uint64_t{1} : static_cast<uint64_t>(interval);
    entries_.push_back({iv, std::move(obs)});
    // An observer fires only at multiples of its interval, hence only at
    // multiples of the gcd of all intervals: maintaining the gcd on add()
    // lets due()/notify() reject most steps with one modulo instead of an
    // O(observers) scan.
    interval_gcd_ = interval_gcd_ == 0 ? iv : std::gcd(interval_gcd_, iv);
  }

  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Suspends (false) or resumes (true) all notifications.  The SDC audit
  /// layer disables observers while it re-executes steps during shadow
  /// verification: replayed steps already happened from the observers'
  /// point of view, so firing them again would duplicate trajectory
  /// frames, table rows and metrics samples.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True when at least one observer fires at this step (lets the caller
  /// skip building a StepInfo — and its O(N) reductions — otherwise).
  [[nodiscard]] bool due(uint64_t step) const {
    if (!enabled_ || entries_.empty() || step % interval_gcd_ != 0) {
      return false;
    }
    for (const auto& e : entries_) {
      if (step % e.interval == 0) return true;
    }
    return false;
  }

  void notify(const StepInfo& info) const {
    if (!enabled_ || entries_.empty() || info.step % interval_gcd_ != 0) {
      return;
    }
    for (const auto& e : entries_) {
      if (info.step % e.interval == 0) e.fn(info);
    }
  }

 private:
  struct Entry {
    uint64_t interval;
    StepObserver fn;
  };
  std::vector<Entry> entries_;
  uint64_t interval_gcd_ = 0;  ///< 0 until the first add()
  bool enabled_ = true;
};

/// MetricsObserver: a StepObserver publishing the step summary into the
/// telemetry registry as gauges (md.sim.*).  Register it at a sampling
/// interval via add_observer(metrics_observer(), interval) to get periodic
/// simulation-health readings in every metrics dump.
inline StepObserver metrics_observer(
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global()) {
  struct Gauges {
    obs::Gauge& step;
    obs::Gauge& time;
    obs::Gauge& potential;
    obs::Gauge& kinetic;
    obs::Gauge& temperature;
    obs::Gauge& wall_seconds;
  };
  auto gauges = std::make_shared<Gauges>(Gauges{
      registry.gauge("md.sim.step"), registry.gauge("md.sim.time"),
      registry.gauge("md.sim.potential"), registry.gauge("md.sim.kinetic"),
      registry.gauge("md.sim.temperature_k"),
      registry.gauge("md.sim.wall_seconds")});
  return [gauges](const StepInfo& info) {
    gauges->step.set(static_cast<double>(info.step));
    gauges->time.set(info.time);
    gauges->potential.set(info.potential);
    gauges->kinetic.set(info.kinetic);
    gauges->temperature.set(info.temperature);
    gauges->wall_seconds.set(info.wall_seconds);
  };
}

/// Wall clock used for StepInfo::wall_seconds.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace antmd::md
