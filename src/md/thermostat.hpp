// Thermostats: Berendsen (weak coupling), Langevin (stochastic, using the
// decomposition-independent counter RNG), and a Nosé–Hoover chain.
//
// Supporting several temperature-control schemes — and in particular the
// per-step velocity manipulations tempering methods need — was one of the
// generality extensions; all of these run on the programmable cores in the
// machine model.
#pragma once

#include <cstdint>

#include "math/rng.hpp"
#include "md/state.hpp"
#include "topo/topology.hpp"
#include "util/serialize.hpp"

namespace antmd::md {

enum class ThermostatKind { kNone, kBerendsen, kLangevin, kNoseHoover };

struct ThermostatConfig {
  ThermostatKind kind = ThermostatKind::kNone;
  double temperature_k = 300.0;
  double tau_fs = 500.0;     ///< coupling time (Berendsen/Nosé–Hoover)
  double gamma_per_ps = 1.0; ///< friction (Langevin)
  uint64_t seed = 2027;      ///< Langevin noise stream
};

/// Stateful thermostat applied once per outer MD step.
class Thermostat {
 public:
  Thermostat(const Topology& topo, ThermostatConfig config);

  /// Applies the thermostat over timestep dt (internal units).
  void apply(State& state, double dt);

  /// Allows tempering methods to retarget the bath temperature mid-run.
  void set_temperature(double temperature_k) {
    config_.temperature_k = temperature_k;
  }
  [[nodiscard]] double temperature_k() const { return config_.temperature_k; }
  [[nodiscard]] ThermostatKind kind() const { return config_.kind; }

  /// Energy of the extended (Nosé–Hoover) variables, for conserved-quantity
  /// diagnostics. Zero for other kinds.
  [[nodiscard]] double reservoir_energy() const;

  /// Checkpoint support.  The Langevin noise stream is a counter RNG keyed
  /// by the step number and needs no state; only the (possibly retargeted)
  /// bath temperature and the Nosé–Hoover chain variables are serialized.
  void save_state(util::BinaryWriter& out) const;
  void restore_state(util::BinaryReader& in);

 private:
  void apply_berendsen(State& state, double dt);
  void apply_langevin(State& state, double dt);
  void apply_nose_hoover(State& state, double dt);

  const Topology* topo_;
  ThermostatConfig config_;
  CounterRng rng_;
  // Nosé–Hoover chain (length 2) state.
  double xi1_ = 0.0, xi2_ = 0.0;    ///< thermostat "velocities"
  double eta1_ = 0.0, eta2_ = 0.0;  ///< thermostat "positions"
};

}  // namespace antmd::md
