#include "md/thermostat.hpp"

#include <algorithm>
#include <cmath>

#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd::md {

Thermostat::Thermostat(const Topology& topo, ThermostatConfig config)
    : topo_(&topo), config_(config), rng_(config.seed, /*stream=*/0x7E49ull) {
  ANTMD_REQUIRE(config_.temperature_k > 0, "temperature must be positive");
  ANTMD_REQUIRE(config_.tau_fs > 0, "tau must be positive");
  ANTMD_REQUIRE(config_.gamma_per_ps >= 0, "gamma must be non-negative");
}

void Thermostat::apply(State& state, double dt) {
  switch (config_.kind) {
    case ThermostatKind::kNone: return;
    case ThermostatKind::kBerendsen: return apply_berendsen(state, dt);
    case ThermostatKind::kLangevin: return apply_langevin(state, dt);
    case ThermostatKind::kNoseHoover: return apply_nose_hoover(state, dt);
  }
}

void Thermostat::apply_berendsen(State& state, double dt) {
  double t = temperature(*topo_, state);
  if (t <= 0.0) return;
  double tau = units::fs_to_internal(config_.tau_fs);
  double lambda2 = 1.0 + dt / tau * (config_.temperature_k / t - 1.0);
  double lambda = std::sqrt(std::max(lambda2, 0.0));
  // Cap the rescale per step, as production codes do, to stay stable when
  // far from equilibrium.
  lambda = std::clamp(lambda, 0.8, 1.25);
  for (auto& v : state.velocities) v *= lambda;
}

void Thermostat::apply_langevin(State& state, double dt) {
  // Ornstein–Uhlenbeck velocity update (the "O" piece of BAOAB):
  //   v <- c v + sqrt(1 - c²) sqrt(kT/m) ξ,   c = exp(-γ dt)
  // Noise is addressed by (atom, step) so the kick sequence is independent
  // of how atoms are distributed across nodes.
  const double gamma =
      config_.gamma_per_ps / (1000.0 / units::kFsPerInternalTime);
  const double c = std::exp(-gamma * dt);
  const double s = std::sqrt(1.0 - c * c);
  const double kt = units::kBoltzmann * config_.temperature_k;
  for (size_t i = 0; i < topo_->atom_count(); ++i) {
    double m = topo_->masses()[i];
    if (m == 0.0) continue;
    auto g = rng_.gaussian3(i, state.step);
    double sigma = std::sqrt(kt / m);
    Vec3& v = state.velocities[i];
    v = c * v + (s * sigma) * Vec3{g[0], g[1], g[2]};
  }
}

void Thermostat::apply_nose_hoover(State& state, double dt) {
  // Two-thermostat chain, velocity-scaling formulation (Martyna et al.).
  const double kt = units::kBoltzmann * config_.temperature_k;
  const double dof = static_cast<double>(topo_->degrees_of_freedom());
  const double tau = units::fs_to_internal(config_.tau_fs);
  const double q1 = dof * kt * tau * tau;
  const double q2 = kt * tau * tau;

  double ke2 = 2.0 * kinetic_energy(*topo_, state);
  const double dt2 = dt / 2.0;
  const double dt4 = dt / 4.0;

  // Half update of the chain, scale velocities, half update again.
  auto chain_half = [&](double& scale) {
    double g2 = (q1 * xi1_ * xi1_ - kt) / q2;
    xi2_ += g2 * dt4;
    xi1_ *= std::exp(-xi2_ * dt2 / 4.0);
    double g1 = (ke2 - dof * kt) / q1;
    xi1_ += g1 * dt4;
    xi1_ *= std::exp(-xi2_ * dt2 / 4.0);
    eta1_ += xi1_ * dt2;
    eta2_ += xi2_ * dt2;
    double s = std::exp(-xi1_ * dt2);
    scale *= s;
    ke2 *= s * s;
    g1 = (ke2 - dof * kt) / q1;
    xi1_ *= std::exp(-xi2_ * dt2 / 4.0);
    xi1_ += g1 * dt4;
    xi1_ *= std::exp(-xi2_ * dt2 / 4.0);
    g2 = (q1 * xi1_ * xi1_ - kt) / q2;
    xi2_ += g2 * dt4;
  };

  double scale = 1.0;
  chain_half(scale);
  for (auto& v : state.velocities) v *= scale;
}

void Thermostat::save_state(util::BinaryWriter& out) const {
  out.write_f64(config_.temperature_k);
  out.write_f64(xi1_);
  out.write_f64(xi2_);
  out.write_f64(eta1_);
  out.write_f64(eta2_);
}

void Thermostat::restore_state(util::BinaryReader& in) {
  config_.temperature_k = in.read_f64();
  xi1_ = in.read_f64();
  xi2_ = in.read_f64();
  eta1_ = in.read_f64();
  eta2_ = in.read_f64();
}

double Thermostat::reservoir_energy() const {
  if (config_.kind != ThermostatKind::kNoseHoover) return 0.0;
  const double kt = units::kBoltzmann * config_.temperature_k;
  const double dof = static_cast<double>(topo_->degrees_of_freedom());
  const double tau = units::fs_to_internal(config_.tau_fs);
  const double q1 = dof * kt * tau * tau;
  const double q2 = kt * tau * tau;
  return 0.5 * q1 * xi1_ * xi1_ + 0.5 * q2 * xi2_ * xi2_ +
         dof * kt * eta1_ + kt * eta2_;
}

}  // namespace antmd::md
