#include "md/simulation.hpp"

#include <cmath>
#include <string>

#include "ff/nonbonded_simd.hpp"
#include "math/units.hpp"
#include "md/engine_api.hpp"
#include "md/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace antmd::md {

// The reference engine must itself honor the contract generic layers
// (Supervisor, observer plumbing) constrain on.
static_assert(EngineApi<Simulation>);

namespace {

// Cached registry handles for the per-phase instrumentation (the name
// lookup takes a mutex; the handles themselves are lock-free).
struct MdMetrics {
  obs::Counter& bonded_ns;
  obs::Counter& nonbonded_ns;
  obs::Counter& kspace_ns;
  obs::Counter& constraints_ns;
  obs::Counter& integrate_ns;
  obs::Counter& steps;
  obs::Histogram& step_us;
  obs::Gauge& nonbonded_kernel;  ///< 0 = pair, 1 = cluster
  obs::Gauge& cluster_fill;      ///< useful-lane fraction of the tile list
  obs::Gauge& nonbonded_isa;     ///< dispatched ff::KernelIsa (0 = scalar)
};

MdMetrics& md_metrics() {
  auto& reg = obs::MetricsRegistry::global();
  static MdMetrics m{
      reg.counter("md.bonded.time_ns"),
      reg.counter("md.nonbonded.time_ns"),
      reg.counter("md.kspace.time_ns"),
      reg.counter("md.constraints.time_ns"),
      reg.counter("md.integrate.time_ns"),
      reg.counter("md.step.count"),
      reg.histogram("md.step.wall_us",
                    {10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000,
                     300000, 1000000}),
      reg.gauge("md.sim.nonbonded.kernel"),
      reg.gauge("md.sim.nonbonded.cluster_fill"),
      reg.gauge("md.sim.nonbonded.isa")};
  return m;
}

}  // namespace

void SimulationConfig::validate() const {
  if (!(dt_fs > 0)) {
    throw ConfigError("timestep must be positive, got dt_fs=" +
                            std::to_string(dt_fs));
  }
  if (respa_inner < 1) {
    throw ConfigError("respa_inner must be >= 1, got " +
                            std::to_string(respa_inner));
  }
  if (kspace_interval < 1) {
    throw ConfigError("kspace_interval must be >= 1, got " +
                            std::to_string(kspace_interval));
  }
  if (!(neighbor_skin >= 0)) {
    throw ConfigError("neighbor_skin must be >= 0, got " +
                            std::to_string(neighbor_skin));
  }
  if (!ff::cluster_width_supported(cluster_width)) {
    throw ConfigError("cluster_width must be 4 or 8, got " +
                      std::to_string(cluster_width));
  }
}

Simulation::Simulation(ForceField& ff, std::vector<Vec3> positions, Box box,
                       SimulationConfig config)
    // validate() before any member uses config fields (neighbor list, dt).
    : ff_((config.validate(), &ff)),
      config_(config),
      dt_(units::fs_to_internal(config.dt_fs)),
      nlist_(ff.topology(), ff.model().cutoff, config.neighbor_skin,
             config.nonbonded_kernel == ff::NonbondedKernel::kCluster,
             config.cluster_width),
      constraints_(ff.topology(), 1e-8, 500,
                   config.constraint_algorithm),
      thermostat_(ff.topology(), config.thermostat),
      current_(positions.size()),
      kspace_cache_(positions.size()),
      exec_(ExecutionContext::create(config.execution)) {
  const Topology& topo = ff.topology();
  ANTMD_REQUIRE(positions.size() == topo.atom_count(),
                "positions/topology size mismatch");

  state_.positions = std::move(positions);
  state_.box = box;
  state_.velocities.assign(topo.atom_count(), Vec3{});
  if (config.init_temperature_k >= 0) {
    init_velocities(topo, config.init_temperature_k, config.velocity_seed,
                    state_);
  }

  ff_->on_box_changed(state_.box);
  if (config.barostat.kind != BarostatKind::kNone) {
    barostat_.emplace(topo, config.barostat,
                      [this](std::span<const Vec3> pos, const Box& b) {
                        return evaluate_potential(pos, b);
                      });
  }

  ff::construct_virtual_sites(topo.virtual_sites(), state_.positions,
                              state_.box);
  nlist_.set_execution(exec_);
  nlist_.build(state_.positions, state_.box);
  if (nlist_.cluster_mode()) build_step_graph();
  compute_forces(/*kspace_due=*/true);
}

void Simulation::build_step_graph() {
  // The step's force work as a DAG.  Dependency structure encodes the data
  // flow: bonded and kspace only need final positions (virtual sites), the
  // tile kernel also needs the neighbor list; so on rebuild steps bonded and
  // kspace overlap the rebuild instead of waiting behind it.  All
  // order-sensitive arithmetic — ascending-chunk virial merge, kspace cache
  // fold, virtual-site force spread — lives in the single reduction task,
  // which is why the result is bit-identical at any lane count *and* to the
  // sequential compute_forces() path used by recompute callers.
  step_graph_ = std::make_unique<util::TaskGraph>(exec_->runtime(), "md.step");
  util::TaskGraph& g = *step_graph_;
  const bool have_vsites = !ff_->topology().virtual_sites().empty();

  const util::TaskId t_nlist = g.add("md.nlist", [this] {
    nlist_.update(state_.positions, state_.box);
  });
  // Tasks that read final positions: behind vsite construction when there
  // are virtual sites (which must in turn see the neighbor list's view of
  // the previous vsite positions, as the sequential path does), unblocked
  // from the start otherwise.
  std::vector<util::TaskId> after_pos;
  util::TaskId t_list_ready = t_nlist;
  if (have_vsites) {
    const util::TaskId t_vsites = g.add(
        "md.vsites",
        [this] {
          ff::construct_virtual_sites(ff_->topology().virtual_sites(),
                                      state_.positions, state_.box);
        },
        {t_nlist});
    after_pos = {t_vsites};
    t_list_ready = t_vsites;
  }

  const util::TaskId t_bonded = g.add(
      "md.bonded",
      [this] {
        if (!graph_include_bonded_) return;
        obs::ScopedTimer timer(md_metrics().bonded_ns);
        ff_->compute_bonded(state_.positions, state_.box, state_.time,
                            *graph_sink_);
      },
      after_pos);

  const util::TaskId t_kspace = g.add(
      "md.kspace",
      [this] {
        if (!graph_kspace_due_ || !ff_->has_kspace()) return;
        obs::ScopedTimer timer(md_metrics().kspace_ns);
        kspace_cache_.reset(ff_->topology().atom_count());
        ff_->compute_kspace(state_.positions, state_.box, kspace_cache_);
      },
      after_pos);

  const util::TaskId t_gather = g.add(
      "md.nb.gather",
      [this] {
        obs::ScopedTimer timer(md_metrics().nonbonded_ns);
        const ff::ClusterPairList& list = nlist_.clusters();
        ff::gather_cluster_coords(list, state_.positions);
        nb_plan_ = ff::cluster_chunk_plan(list);
        ff::prepare_cluster_scratch(list, step_graph_->lanes(),
                                    ff_->topology().atom_count(), nb_plan_);
      },
      {t_list_ready});

  const util::TaskId t_nb = g.add_parallel(
      "md.nonbonded", [this] { return nb_plan_.chunks; },
      [this](size_t chunk) {
        obs::ScopedTimer timer(md_metrics().nonbonded_ns);
        ff::compute_clusters_chunk(nlist_.clusters(), ff_->tables(),
                                   state_.box, nb_plan_, chunk,
                                   util::TaskRuntime::current_lane(),
                                   ff_->vdw_scale(),
                                   ff_->charge_product_scale());
      },
      {t_gather});

  g.add_reduction(
      "md.reduce",
      [this] {
        ff::reduce_cluster_chunks(nlist_.clusters(), nb_plan_, *graph_sink_);
        graph_sink_->merge(kspace_cache_);
        ff::spread_virtual_site_forces(ff_->topology().virtual_sites(),
                                       state_.positions, state_.box,
                                       graph_sink_->forces);
        // Force-poison injection point, deliberately inside the graph: the
        // reduction runs on whichever lane picks it up, so a kNanForce plan
        // fires from a worker thread — the fault registry's thread-safety
        // contract — while the one-poll-per-evaluation cadence matches the
        // sequential compute_forces() path exactly.
        uint64_t poison_atom = 0;
        if (fault::should_fire(fault::FaultKind::kNanForce, &poison_atom)) {
          const size_t n = ff_->topology().atom_count();
          graph_sink_->forces.set_quanta(
              poison_atom % n, {fault::kPoisonQuanta, fault::kPoisonQuanta,
                                fault::kPoisonQuanta});
        }
        if (obs::enabled()) {
          md_metrics().nonbonded_kernel.set(1.0);
          md_metrics().cluster_fill.set(nlist_.clusters().fill_ratio());
        }
      },
      {t_bonded, t_nb, t_kspace});
}

void Simulation::run_force_graph(ForceResult& sink, bool include_bonded,
                                 bool kspace_due) {
  const size_t n = ff_->topology().atom_count();
  graph_sink_ = &sink;
  graph_include_bonded_ = include_bonded;
  graph_kspace_due_ = kspace_due;
  sink.reset(n);
  step_graph_->run();
}

void Simulation::notify_observers() { notify_step(*this, observers_, wall_); }

void Simulation::compute_nonbonded_into(ForceResult& out) {
  if (nlist_.cluster_mode()) {
    ff_->compute_nonbonded_clusters(nlist_.clusters(), state_.positions,
                                    state_.box, out, exec_.get());
  } else {
    ff_->compute_nonbonded(nlist_.pairs(), state_.positions, state_.box, out);
  }
  if (obs::enabled()) {
    md_metrics().nonbonded_kernel.set(nlist_.cluster_mode() ? 1.0 : 0.0);
    if (nlist_.cluster_mode()) {
      md_metrics().cluster_fill.set(nlist_.clusters().fill_ratio());
      md_metrics().nonbonded_isa.set(
          static_cast<double>(ff::active_kernel_isa()));
    }
  }
}

void Simulation::compute_forces(bool kspace_due) {
  const Topology& topo = ff_->topology();
  const size_t n = topo.atom_count();

  ff::construct_virtual_sites(topo.virtual_sites(), state_.positions,
                              state_.box);
  current_.reset(n);
  {
    obs::TracePhase phase("md.bonded", "md", &md_metrics().bonded_ns);
    ff_->compute_bonded(state_.positions, state_.box, state_.time, current_);
  }
  {
    obs::TracePhase phase("md.nonbonded", "md", &md_metrics().nonbonded_ns);
    compute_nonbonded_into(current_);
  }
  if (kspace_due && ff_->has_kspace()) {
    obs::TracePhase phase("md.kspace", "md", &md_metrics().kspace_ns);
    kspace_cache_.reset(n);
    ff_->compute_kspace(state_.positions, state_.box, kspace_cache_);
  }
  current_.merge(kspace_cache_);
  ff::spread_virtual_site_forces(topo.virtual_sites(), state_.positions,
                                 state_.box, current_.forces);

  uint64_t poison_atom = 0;
  if (fault::should_fire(fault::FaultKind::kNanForce, &poison_atom)) {
    current_.forces.set_quanta(
        poison_atom % n,
        {fault::kPoisonQuanta, fault::kPoisonQuanta, fault::kPoisonQuanta});
  }
}

void Simulation::compute_fast_forces() {
  const Topology& topo = ff_->topology();
  ff::construct_virtual_sites(topo.virtual_sites(), state_.positions,
                              state_.box);
  fast_.reset(topo.atom_count());
  {
    obs::TracePhase phase("md.bonded", "md", &md_metrics().bonded_ns);
    ff_->compute_bonded(state_.positions, state_.box, state_.time, fast_);
  }
  ff::spread_virtual_site_forces(topo.virtual_sites(), state_.positions,
                                 state_.box, fast_.forces);
}

void Simulation::compute_slow_forces(bool kspace_due) {
  const Topology& topo = ff_->topology();
  ff::construct_virtual_sites(topo.virtual_sites(), state_.positions,
                              state_.box);
  slow_.reset(topo.atom_count());
  {
    obs::TracePhase phase("md.nonbonded", "md", &md_metrics().nonbonded_ns);
    compute_nonbonded_into(slow_);
  }
  if (kspace_due && ff_->has_kspace()) {
    obs::TracePhase phase("md.kspace", "md", &md_metrics().kspace_ns);
    kspace_cache_.reset(topo.atom_count());
    ff_->compute_kspace(state_.positions, state_.box, kspace_cache_);
  }
  slow_.merge(kspace_cache_);
  ff::spread_virtual_site_forces(topo.virtual_sites(), state_.positions,
                                 state_.box, slow_.forces);

  uint64_t poison_atom = 0;
  if (fault::should_fire(fault::FaultKind::kNanForce, &poison_atom)) {
    slow_.forces.set_quanta(
        poison_atom % topo.atom_count(),
        {fault::kPoisonQuanta, fault::kPoisonQuanta, fault::kPoisonQuanta});
  }
}

void Simulation::step_respa() {
  const Topology& topo = ff_->topology();
  const size_t n = topo.atom_count();
  const auto& masses = topo.masses();
  const int n_inner = config_.respa_inner;
  const double dtf = dt_ / static_cast<double>(n_inner);

  // Slow and fast forces at the current positions (slow_ is maintained
  // across steps; fast_ is refreshed by the inner loop's last iteration).
  // Outer half kick with the slow forces.
  {
    obs::ScopedTimer timer(md_metrics().integrate_ns);
    for (size_t i = 0; i < n; ++i) {
      if (masses[i] == 0.0) continue;
      state_.velocities[i] +=
          (dt_ / (2.0 * masses[i])) * slow_.forces.force(i);
    }
  }

  // Inner velocity-Verlet loop with the fast (bonded) forces.
  for (int k = 0; k < n_inner; ++k) {
    {
      obs::ScopedTimer timer(md_metrics().integrate_ns);
      for (size_t i = 0; i < n; ++i) {
        if (masses[i] == 0.0) continue;
        state_.velocities[i] +=
            (dtf / (2.0 * masses[i])) * fast_.forces.force(i);
      }
      scratch_before_ = state_.positions;
      for (size_t i = 0; i < n; ++i) {
        if (masses[i] == 0.0) continue;
        state_.positions[i] += dtf * state_.velocities[i];
      }
    }
    if (!constraints_.empty()) {
      obs::TracePhase phase("md.constraints", "md",
                            &md_metrics().constraints_ns);
      constraints_.apply_positions(scratch_before_, state_.positions,
                                   state_.velocities, dtf, state_.box);
    }
    compute_fast_forces();
    {
      obs::ScopedTimer timer(md_metrics().integrate_ns);
      for (size_t i = 0; i < n; ++i) {
        if (masses[i] == 0.0) continue;
        state_.velocities[i] +=
            (dtf / (2.0 * masses[i])) * fast_.forces.force(i);
      }
    }
    if (!constraints_.empty()) {
      obs::TracePhase phase("md.constraints", "md",
                            &md_metrics().constraints_ns);
      constraints_.apply_velocities(state_.positions, state_.velocities,
                                    state_.box);
    }
  }

  // Slow forces at the new positions; outer half kick.
  const bool kspace_due =
      (state_.step + 1) % static_cast<uint64_t>(config_.kspace_interval) == 0;
  if (step_graph_) {
    run_force_graph(slow_, /*include_bonded=*/false, kspace_due);
  } else {
    nlist_.update(state_.positions, state_.box);
    compute_slow_forces(kspace_due);
  }
  {
    obs::ScopedTimer timer(md_metrics().integrate_ns);
    for (size_t i = 0; i < n; ++i) {
      if (masses[i] == 0.0) continue;
      state_.velocities[i] +=
          (dt_ / (2.0 * masses[i])) * slow_.forces.force(i);
    }
  }
  if (!constraints_.empty()) {
    obs::TracePhase phase("md.constraints", "md",
                          &md_metrics().constraints_ns);
    constraints_.apply_velocities(state_.positions, state_.velocities,
                                  state_.box);
  }

  // Combined result for observers.
  current_.reset(n);
  current_.merge(fast_);
  current_.merge(slow_);

  state_.step += 1;
  state_.time += dt_;
  thermostat_.apply(state_, dt_);
  if (config_.com_removal_interval > 0 &&
      state_.step % static_cast<uint64_t>(config_.com_removal_interval) ==
          0) {
    remove_com_momentum(topo, state_);
  }
  notify_observers();
}

void Simulation::step() {
  const double step_start_us = obs::enabled() ? obs::now_us() : 0.0;
  if (config_.respa_inner > 1) {
    // Lazily seed the split caches on first use.
    if (fast_.forces.size() != ff_->topology().atom_count()) {
      compute_fast_forces();
      compute_slow_forces(true);
    }
    step_respa();
    md_metrics().steps.add();
    if (obs::enabled()) {
      md_metrics().step_us.observe(obs::now_us() - step_start_us);
    }
    return;
  }
  const Topology& topo = ff_->topology();
  const size_t n = topo.atom_count();
  const auto& masses = topo.masses();

  // Half kick + drift.
  {
    obs::ScopedTimer timer(md_metrics().integrate_ns);
    for (size_t i = 0; i < n; ++i) {
      double m = masses[i];
      if (m == 0.0) continue;
      state_.velocities[i] += (dt_ / (2.0 * m)) * current_.forces.force(i);
    }
    scratch_before_ = state_.positions;
    for (size_t i = 0; i < n; ++i) {
      if (masses[i] == 0.0) continue;
      state_.positions[i] += dt_ * state_.velocities[i];
    }
  }

  // Constrain positions (and fold the impulse into velocities).
  if (!constraints_.empty()) {
    obs::TracePhase phase("md.constraints", "md",
                          &md_metrics().constraints_ns);
    constraints_.apply_positions(scratch_before_, state_.positions,
                                 state_.velocities, dt_, state_.box);
  }

  // Neighbor list & forces at the new positions.  Cluster mode runs the
  // phase-overlapped step graph (bit-identical to the sequential path); the
  // reference pair kernel keeps the sequential orchestration.
  const bool kspace_due =
      (state_.step + 1) % static_cast<uint64_t>(config_.kspace_interval) == 0;
  if (step_graph_) {
    run_force_graph(current_, /*include_bonded=*/true, kspace_due);
  } else {
    nlist_.update(state_.positions, state_.box);
    compute_forces(kspace_due);
  }

  // Second half kick.
  {
    obs::ScopedTimer timer(md_metrics().integrate_ns);
    for (size_t i = 0; i < n; ++i) {
      double m = masses[i];
      if (m == 0.0) continue;
      state_.velocities[i] += (dt_ / (2.0 * m)) * current_.forces.force(i);
    }
  }
  if (!constraints_.empty()) {
    obs::TracePhase phase("md.constraints", "md",
                          &md_metrics().constraints_ns);
    constraints_.apply_velocities(state_.positions, state_.velocities,
                                  state_.box);
  }

  state_.step += 1;
  state_.time += dt_;

  thermostat_.apply(state_, dt_);

  if (barostat_) {
    if (barostat_->maybe_apply_tensor(state_, current_.virial)) {
      ff_->on_box_changed(state_.box);
      nlist_.build(state_.positions, state_.box);
      compute_forces(/*kspace_due=*/true);
    }
  }

  if (config_.com_removal_interval > 0 &&
      state_.step % static_cast<uint64_t>(config_.com_removal_interval) ==
          0) {
    remove_com_momentum(topo, state_);
  }
  md_metrics().steps.add();
  if (obs::enabled()) {
    md_metrics().step_us.observe(obs::now_us() - step_start_us);
  }
  notify_observers();
}

void Simulation::run(size_t n) {
  for (size_t i = 0; i < n; ++i) step();
}

double Simulation::conserved_quantity() const {
  return potential_energy() + kinetic_energy() +
         thermostat_.reservoir_energy();
}

double Simulation::pressure_atm() const {
  return md::pressure_atm(ff_->topology(), state_, trace(current_.virial));
}

double Simulation::evaluate_potential(std::span<const Vec3> positions,
                                      const Box& box) const {
  const Topology& topo = ff_->topology();
  std::vector<Vec3> pos(positions.begin(), positions.end());
  ff::construct_virtual_sites(topo.virtual_sites(), pos, box);

  NeighborList list(topo, ff_->model().cutoff, 0.0);
  list.build(pos, box);

  ForceResult res(topo.atom_count());
  ff_->compute_bonded(pos, box, state_.time, res);
  ff_->compute_nonbonded(list.pairs(), pos, box, res);
  if (ff_->has_kspace()) {
    // A changed box needs a re-gridded solver; keep `this` logically const
    // by evaluating through a temporary solver when the box differs.
    if (box.edges() == state_.box.edges()) {
      ff_->compute_kspace(pos, box, res);
    } else {
      GseSolver solver(box, ff_->gse()->params());
      solver.compute(pos, topo.charges(), topo.excluded_pairs(), box, res);
    }
  }
  return res.energy.total();
}

void Simulation::rescale_velocities(double factor) {
  for (auto& v : state_.velocities) v *= factor;
}

void Simulation::invalidate_forces() {
  ff_->on_box_changed(state_.box);
  nlist_.build(state_.positions, state_.box);
  compute_forces(/*kspace_due=*/true);
}

void Simulation::set_timestep_fs(double dt_fs) {
  if (!(dt_fs > 0)) {
    throw ConfigError("timestep must be positive, got dt_fs=" +
                            std::to_string(dt_fs));
  }
  config_.dt_fs = dt_fs;
  dt_ = units::fs_to_internal(dt_fs);
}

void Simulation::save_checkpoint(util::BinaryWriter& out) const {
  write_state(out, state_);
  out.write_f64(dt_);
  thermostat_.save_state(out);
  out.write_bool(barostat_.has_value());
  if (barostat_) barostat_->save_state(out);
  write_force_result(out, kspace_cache_);
}

void Simulation::restore_checkpoint(util::BinaryReader& in) {
  const Topology& topo = ff_->topology();
  State restored = read_state(in);
  if (restored.positions.size() != topo.atom_count()) {
    throw IoError(
        "checkpoint was written for a different system: " +
        std::to_string(restored.positions.size()) + " atoms vs " +
        std::to_string(topo.atom_count()) + " in topology");
  }
  double dt = in.read_f64();
  thermostat_.restore_state(in);
  bool has_barostat = in.read_bool();
  if (has_barostat != barostat_.has_value()) {
    throw IoError("checkpoint barostat state does not match config");
  }
  if (barostat_) barostat_->restore_state(in);
  read_force_result(in, kspace_cache_);
  if (kspace_cache_.forces.size() != topo.atom_count()) {
    throw IoError("checkpoint k-space cache has wrong atom count");
  }

  state_ = std::move(restored);
  dt_ = dt;
  config_.dt_fs = units::internal_to_fs(dt);

  // Rebuild everything derived from positions/box.  Forces are recomputed
  // rather than stored: the nonbonded kernel zeroes beyond-cutoff pairs, so
  // a freshly built neighbor list gives bit-identical sums, and the k-space
  // term comes from the restored cache (kspace_due=false).
  ff_->on_box_changed(state_.box);
  nlist_.build(state_.positions, state_.box);
  if (config_.respa_inner > 1) {
    // Re-seed the RESPA split caches exactly as they stood after the last
    // completed outer step.
    compute_fast_forces();
    compute_slow_forces(/*kspace_due=*/false);
    current_.reset(topo.atom_count());
    current_.merge(fast_);
    current_.merge(slow_);
  } else {
    compute_forces(/*kspace_due=*/false);
  }
}

}  // namespace antmd::md
