#include "md/state.hpp"

#include <cmath>

#include "math/rng.hpp"
#include "math/units.hpp"
#include "util/error.hpp"

namespace antmd::md {

void init_velocities(const Topology& topo, double temperature_k,
                     uint64_t seed, State& state) {
  const size_t n = topo.atom_count();
  ANTMD_REQUIRE(state.positions.size() == n, "state/topology size mismatch");
  state.velocities.assign(n, Vec3{});
  CounterRng rng(seed, /*stream=*/0xBEEFull);
  for (size_t i = 0; i < n; ++i) {
    double m = topo.masses()[i];
    if (m == 0.0) continue;  // virtual site
    double sigma = std::sqrt(units::kBoltzmann * temperature_k / m);
    auto g = rng.gaussian3(i, 0);
    state.velocities[i] = Vec3{sigma * g[0], sigma * g[1], sigma * g[2]};
  }
  remove_com_momentum(topo, state);
  // Exact rescale to the target temperature.
  double t = temperature(topo, state);
  if (t > 0.0) {
    double s = std::sqrt(temperature_k / t);
    for (auto& v : state.velocities) v *= s;
  }
}

double kinetic_energy(const Topology& topo, const State& state) {
  double ke = 0.0;
  for (size_t i = 0; i < topo.atom_count(); ++i) {
    ke += 0.5 * topo.masses()[i] * norm2(state.velocities[i]);
  }
  return ke;
}

double temperature(const Topology& topo, const State& state) {
  const double dof = static_cast<double>(topo.degrees_of_freedom());
  if (dof <= 0.0) return 0.0;
  return 2.0 * kinetic_energy(topo, state) / (dof * units::kBoltzmann);
}

void remove_com_momentum(const Topology& topo, State& state) {
  Vec3 p{};
  double mass = 0.0;
  for (size_t i = 0; i < topo.atom_count(); ++i) {
    p += topo.masses()[i] * state.velocities[i];
    mass += topo.masses()[i];
  }
  if (mass == 0.0) return;
  Vec3 v_com = p / mass;
  for (size_t i = 0; i < topo.atom_count(); ++i) {
    if (topo.masses()[i] > 0.0) state.velocities[i] -= v_com;
  }
}

double pressure_atm(const Topology& topo, const State& state,
                    double virial_trace) {
  double ke = kinetic_energy(topo, state);
  double p_internal = (2.0 * ke + virial_trace) / (3.0 * state.box.volume());
  return p_internal * units::kAtmPerInternalPressure;
}

}  // namespace antmd::md
