// Barostats: Berendsen weak-coupling (virial-based) and a Monte Carlo
// volume barostat (energy-based, no virial needed).
#pragma once

#include <cstdint>
#include <functional>

#include "math/rng.hpp"
#include "md/state.hpp"
#include "topo/topology.hpp"
#include "util/serialize.hpp"

namespace antmd::md {

enum class BarostatKind {
  kNone,
  kBerendsen,          ///< isotropic weak coupling
  kBerendsenSemiIso,   ///< xy (membrane plane) and z coupled separately
  kMonteCarlo,         ///< isotropic MC volume moves
};

struct BarostatConfig {
  BarostatKind kind = BarostatKind::kNone;
  double pressure_atm = 1.0;
  double tau_fs = 2000.0;             ///< Berendsen coupling time
  double compressibility = 4.5e-5;    ///< atm⁻¹, water-like
  int interval = 25;                  ///< steps between barostat attempts
  double mc_max_dv_fraction = 0.02;   ///< MC: max relative volume change
  uint64_t seed = 11;
  double temperature_k = 300.0;       ///< MC acceptance temperature
};

/// Scales box and molecule centres-of-mass (atoms within a molecule move
/// rigidly so constraints/bonds are not stretched by the scaling).
void scale_box_and_molecules(const Topology& topo, double factor,
                             State& state);

/// Anisotropic variant: per-axis scale factors (membrane simulations).
void scale_box_and_molecules(const Topology& topo, const Vec3& factors,
                             State& state);

class Barostat {
 public:
  /// `potential_energy` is used by the MC barostat to evaluate trial
  /// volumes; it must recompute the full potential for given
  /// (positions, box).
  using PotentialFn =
      std::function<double(std::span<const Vec3>, const Box&)>;

  Barostat(const Topology& topo, BarostatConfig config,
           PotentialFn potential_energy);

  /// Called once per step; acts only every config.interval steps.
  /// `virial_trace` is from the most recent force evaluation.
  /// Returns true if the box changed.
  /// For the semi-isotropic kind, pass the full virial tensor via
  /// maybe_apply_tensor instead.
  bool maybe_apply(State& state, double virial_trace);

  /// Semi-isotropic path: needs the diagonal of the virial tensor.
  bool maybe_apply_tensor(State& state, const Mat3& virial);

  [[nodiscard]] uint64_t mc_attempts() const { return mc_attempts_; }
  [[nodiscard]] uint64_t mc_accepts() const { return mc_accepts_; }

  /// Checkpoint support: MC move counters and the sequential RNG stream
  /// position (Berendsen kinds are stateless but share the same layout).
  void save_state(util::BinaryWriter& out) const;
  void restore_state(util::BinaryReader& in);

 private:
  bool apply_berendsen(State& state, double virial_trace);
  bool apply_berendsen_semi_iso(State& state, const Mat3& virial);
  bool apply_monte_carlo(State& state);

  const Topology* topo_;
  BarostatConfig config_;
  PotentialFn potential_;
  SequentialRng rng_;
  uint64_t mc_attempts_ = 0;
  uint64_t mc_accepts_ = 0;
};

}  // namespace antmd::md
