// Holonomic constraint solvers: SHAKE (positions) and RATTLE-style velocity
// projection.  Rigid 3-site water is three coupled distance constraints per
// molecule; the solver clusters constraints by connectivity and iterates
// each cluster to convergence, which is exactly M-SHAKE's fixed point.
//
// On Anton, constraints run on the geometry cores each step; the machine
// model charges them accordingly.
#pragma once

#include <span>
#include <vector>

#include "math/pbc.hpp"
#include "topo/topology.hpp"

namespace antmd::md {

struct ConstraintStats {
  size_t iterations = 0;      ///< total sweeps in the last apply()
  double max_violation = 0.0; ///< |r - r0| / r0 after convergence
};

/// Position-constraint algorithm.
enum class ConstraintAlgorithm {
  kShake,   ///< classic per-constraint Gauss–Seidel sweeps
  kMShake,  ///< per-cluster Newton iteration on the coupled multipliers
            ///< (what Anton's geometry cores run); quadratic convergence
};

class ConstraintSolver {
 public:
  /// tolerance is relative: ||r|-r0|/r0 below tolerance counts as converged.
  ConstraintSolver(const Topology& topo, double tolerance = 1e-8,
                   size_t max_iterations = 500,
                   ConstraintAlgorithm algorithm =
                       ConstraintAlgorithm::kShake);

  [[nodiscard]] bool empty() const { return clusters_.empty(); }

  /// SHAKE: corrects `positions` so all constraints hold, given the
  /// positions `before` the unconstrained update (used for the direction of
  /// the correction), and updates velocities by the implied impulse /dt.
  /// Pass dt <= 0 to skip the velocity update.
  ConstraintStats apply_positions(std::span<const Vec3> before,
                                  std::span<Vec3> positions,
                                  std::span<Vec3> velocities, double dt,
                                  const Box& box) const;

  /// RATTLE velocity stage: removes relative velocity components along each
  /// constraint direction.
  void apply_velocities(std::span<const Vec3> positions,
                        std::span<Vec3> velocities, const Box& box) const;

  /// Largest relative violation of any constraint at these positions.
  [[nodiscard]] double max_violation(std::span<const Vec3> positions,
                                     const Box& box) const;

  [[nodiscard]] ConstraintAlgorithm algorithm() const { return algorithm_; }

 private:
  struct Cluster {
    std::vector<DistanceConstraint> constraints;
  };

  ConstraintStats apply_shake(std::span<const Vec3> before,
                              std::span<Vec3> positions,
                              std::span<Vec3> velocities, double dt,
                              const Box& box) const;
  ConstraintStats apply_mshake(std::span<const Vec3> before,
                               std::span<Vec3> positions,
                               std::span<Vec3> velocities, double dt,
                               const Box& box) const;

  const Topology* topo_;
  double tolerance_;
  size_t max_iterations_;
  ConstraintAlgorithm algorithm_;
  std::vector<Cluster> clusters_;
};

}  // namespace antmd::md
