// Cell list and Verlet neighbor list.
//
// The list produces a deterministic, sorted (i < j, lexicographic) pair
// vector; the distributed runtime re-partitions exactly this vector across
// nodes, which together with fixed-point accumulation gives bit-identical
// forces at any node count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ff/nonbonded.hpp"
#include "ff/nonbonded_cluster.hpp"
#include "math/pbc.hpp"
#include "topo/topology.hpp"
#include "util/execution.hpp"

namespace antmd::md {

/// Uniform spatial binning over the box.
class CellList {
 public:
  /// cell_size is a lower bound on the actual cell edge (cells evenly
  /// divide the box).
  CellList(const Box& box, double cell_size);

  void assign(std::span<const Vec3> positions, const Box& box);

  [[nodiscard]] size_t cell_count() const {
    return static_cast<size_t>(nx_) * ny_ * nz_;
  }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  [[nodiscard]] int nz() const { return nz_; }

  /// Atoms in cell (cx, cy, cz) (unwrapped indices are taken modulo dims).
  [[nodiscard]] const std::vector<uint32_t>& cell(int cx, int cy,
                                                  int cz) const;
  /// Cell coordinates of atom i from the last assign().
  [[nodiscard]] std::array<int, 3> cell_of(uint32_t atom) const;

 private:
  [[nodiscard]] size_t index(int cx, int cy, int cz) const;

  int nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<std::vector<uint32_t>> cells_;
  std::vector<std::array<int, 3>> atom_cells_;
};

/// Verlet list with a skin: rebuilt only when some atom has moved more than
/// half the skin since the last build.
class NeighborList {
 public:
  /// cluster_mode additionally derives a blocked cluster-pair list from
  /// every rebuild (see ff::ClusterPairList); the flat pair vector is still
  /// produced and stays the source of truth for the pair set.
  /// cluster_width picks the tile shape (4 or 8 atoms per cluster; see
  /// ff::cluster_width_supported).
  NeighborList(const Topology& topo, double cutoff, double skin,
               bool cluster_mode = false,
               uint32_t cluster_width = ff::kDefaultClusterWidth);

  /// Rebuilds unconditionally.
  void build(std::span<const Vec3> positions, const Box& box);

  /// Rebuilds only if needed; returns true if a rebuild happened.
  bool update(std::span<const Vec3> positions, const Box& box);

  [[nodiscard]] const std::vector<ff::PairEntry>& pairs() const {
    return pairs_;
  }
  [[nodiscard]] bool cluster_mode() const { return cluster_mode_; }
  [[nodiscard]] uint32_t cluster_width() const { return cluster_width_; }
  /// Blocked tile view of pairs(); empty unless cluster_mode is on.
  [[nodiscard]] const ff::ClusterPairList& clusters() const {
    return clusters_;
  }
  [[nodiscard]] double cutoff() const { return cutoff_; }
  [[nodiscard]] double skin() const { return skin_; }
  [[nodiscard]] uint64_t build_count() const { return build_count_; }

  /// Opts the list into threaded rebuilds.  Cell slices are enumerated
  /// concurrently and concatenated in slice order; the final sort makes the
  /// pair vector identical to the serial build regardless of thread count.
  void set_execution(std::shared_ptr<ExecutionContext> exec) {
    exec_ = std::move(exec);
  }

 private:
  [[nodiscard]] bool needs_rebuild(std::span<const Vec3> positions,
                                   const Box& box) const;
  void build_clusters(const CellList& cells,
                      std::span<const Vec3> positions, const Box& box);

  const Topology* topo_;
  double cutoff_;
  double skin_;
  bool cluster_mode_ = false;
  uint32_t cluster_width_ = ff::kDefaultClusterWidth;
  std::vector<ff::PairEntry> pairs_;
  ff::ClusterPairList clusters_;
  std::vector<Vec3> reference_positions_;
  uint64_t build_count_ = 0;
  std::shared_ptr<ExecutionContext> exec_;  ///< null = serial build
  /// Last atom seen beyond half-skin: checked first for an O(1) positive
  /// skin-check exit while that atom keeps drifting.
  mutable uint32_t hot_atom_ = 0;
};

}  // namespace antmd::md
