// EngineApi: the step-driver contract every engine in the repo satisfies
// (md::Simulation, runtime::MachineSimulation, and any future driver).
//
// The repo grew three step loops with structurally identical surfaces —
// advance, observe, checkpoint — that generic layers (Supervisor, the
// observer plumbing, example drivers) consumed by duck typing, silently
// special-casing each engine.  This concept names the contract once:
// generic code constrains on EngineApi and any drift in an engine's
// surface becomes a compile error at the definition, not a template
// instantiation stack three layers deep.
#pragma once

#include <concepts>
#include <cstddef>
#include <utility>

#include "md/observer.hpp"
#include "md/state.hpp"
#include "util/serialize.hpp"

namespace antmd::md {

/// A steppable MD engine: advances state, exposes the energetic summary
/// observers and supervisors read, and checkpoints bit-exactly.
template <typename Sim>
concept EngineApi =
    std::derived_from<Sim, util::Checkpointable> &&
    requires(Sim& s, const Sim& cs, StepObserver obs, size_t n, double dt) {
      s.step();
      s.run(n);
      { cs.state() } -> std::convertible_to<const State&>;
      { cs.potential_energy() } -> std::convertible_to<double>;
      { cs.kinetic_energy() } -> std::convertible_to<double>;
      { cs.temperature() } -> std::convertible_to<double>;
      s.add_observer(std::move(obs), 1);
      s.set_timestep_fs(dt);
    };

/// Shared post-step observer notification: builds the StepInfo — and pays
/// its O(N) kinetic/temperature reductions — only when an observer is due.
/// Engines call this from their step() epilogue instead of each keeping a
/// private copy of the same loop.
template <typename Sim>
  requires requires(const Sim& cs) {
    { cs.state() } -> std::convertible_to<const State&>;
    { cs.potential_energy() } -> std::convertible_to<double>;
    { cs.kinetic_energy() } -> std::convertible_to<double>;
    { cs.temperature() } -> std::convertible_to<double>;
  }
void notify_step(const Sim& sim, const ObserverList& observers,
                 const WallTimer& wall) {
  const State& state = sim.state();
  if (observers.empty() || !observers.due(state.step)) return;
  StepInfo info;
  info.step = state.step;
  info.time = state.time;
  info.potential = sim.potential_energy();
  info.kinetic = sim.kinetic_energy();
  info.temperature = sim.temperature();
  info.wall_seconds = wall.seconds();
  observers.notify(info);
}

}  // namespace antmd::md
