// Single-host MD driver: velocity Verlet with RESPA-style k-space reuse,
// constraints, thermostats, barostats and virtual sites.
//
// This is the *functional* engine.  The machine-mapped runtime
// (runtime::DistributedEngine) evaluates the same kernels partitioned across
// modeled nodes and must produce bit-identical trajectories; md::Simulation
// is both the reference implementation and the workhorse for the sampling
// methods in sampling/.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "ff/forcefield.hpp"
#include "md/barostat.hpp"
#include "md/constraints.hpp"
#include "md/neighbor.hpp"
#include "md/observer.hpp"
#include "md/state.hpp"
#include "md/thermostat.hpp"
#include "util/execution.hpp"
#include "util/serialize.hpp"

namespace antmd::md {

struct SimulationConfig {
  double dt_fs = 2.0;
  /// Recompute reciprocal-space forces every N steps and reuse between
  /// (RESPA-style slow-force caching; 1 = every step).
  int kspace_interval = 1;
  /// Impulse-RESPA inner substeps: bonded (fast) forces are integrated at
  /// dt/respa_inner while nonbonded/k-space kicks bracket the outer step.
  /// 1 = plain velocity Verlet.
  int respa_inner = 1;
  double neighbor_skin = 2.0;  ///< Å
  int com_removal_interval = 200;
  ConstraintAlgorithm constraint_algorithm = ConstraintAlgorithm::kShake;
  ThermostatConfig thermostat;
  BarostatConfig barostat;
  /// If >= 0, draw Maxwell–Boltzmann velocities at this temperature.
  double init_temperature_k = 300.0;
  uint64_t velocity_seed = 1234;
  /// Real-space nonbonded hot path: flat pair loop or blocked cluster-pair
  /// tiles.  Bit-identical results either way (the golden and equivalence
  /// tests enforce it); cluster is the fast default.
  ff::NonbondedKernel nonbonded_kernel = ff::NonbondedKernel::kCluster;
  /// Atoms per cluster for the tiled kernel: 4 or 8 (8 feeds 8-wide SIMD).
  uint32_t cluster_width = ff::kDefaultClusterWidth;
  /// Host parallelism (neighbor-list rebuilds here; force partitions in the
  /// machine runtime).  Defaults to fully serial.
  ExecutionConfig execution;

  /// Throws ConfigError if any field is out of range (dt_fs > 0,
  /// respa_inner >= 1, kspace_interval >= 1, neighbor_skin >= 0).  Called by
  /// the Simulation constructor and SimulationBuilder::build().
  void validate() const;
};

class Simulation : public util::Checkpointable {
 public:
  /// The force field (and the topology it references) must outlive the
  /// simulation. Initial positions/box come from the caller.
  /// Prefer SimulationBuilder (md/builder.hpp) in new code; this
  /// constructor remains as the builder's target.
  Simulation(ForceField& ff, std::vector<Vec3> positions, Box box,
             SimulationConfig config);

  /// Advances one outer timestep.
  void step();
  /// Advances n steps.
  void run(size_t n);

  // --- observation -----------------------------------------------------------
  [[nodiscard]] const State& state() const { return state_; }
  [[nodiscard]] State& mutable_state() { return state_; }
  [[nodiscard]] const ForceResult& forces() const { return current_; }
  [[nodiscard]] double potential_energy() const {
    return current_.energy.total();
  }
  [[nodiscard]] double kinetic_energy() const {
    return md::kinetic_energy(ff_->topology(), state_);
  }
  [[nodiscard]] double temperature() const {
    return md::temperature(ff_->topology(), state_);
  }
  /// Potential + kinetic + thermostat reservoir (drift diagnostic).
  [[nodiscard]] double conserved_quantity() const;
  [[nodiscard]] double pressure_atm() const;
  [[nodiscard]] const NeighborList& neighbor_list() const { return nlist_; }
  [[nodiscard]] ForceField& force_field() { return *ff_; }
  [[nodiscard]] const ForceField& force_field() const { return *ff_; }
  [[nodiscard]] Thermostat& thermostat() { return thermostat_; }
  [[nodiscard]] const ConstraintSolver& constraints() const {
    return constraints_;
  }
  [[nodiscard]] double dt_internal() const { return dt_; }
  [[nodiscard]] double timestep_fs() const { return config_.dt_fs; }
  [[nodiscard]] const SimulationConfig& config() const { return config_; }

  /// Retargets the outer timestep mid-run (HealthGuard degradation path).
  void set_timestep_fs(double dt_fs);

  // --- checkpoint / restart ---------------------------------------------------
  /// Serializes everything needed for a bit-exact resume: dynamic state,
  /// timestep, thermostat/barostat internals and the reciprocal-space force
  /// cache (which was computed at *older* positions when kspace_interval > 1
  /// and therefore cannot be recomputed at restore time).
  void save_checkpoint(util::BinaryWriter& out) const override;
  /// Restores into a simulation constructed with the same topology, force
  /// field and config.  Rebuilds the neighbor list and recomputes forces at
  /// the restored positions; throws IoError on a size or barostat
  /// mismatch with the checkpoint.
  void restore_checkpoint(util::BinaryReader& in) override;

  /// Full potential energy for arbitrary (positions, box): used by the MC
  /// barostat and by sampling methods evaluating trial states.
  [[nodiscard]] double evaluate_potential(std::span<const Vec3> positions,
                                          const Box& box) const;

  /// Reseeds stochastic elements (used by replica-exchange drivers).
  void rescale_velocities(double factor);

  /// Forces an immediate full force recomputation (after external state
  /// surgery, e.g. replica exchange or λ switching).
  void invalidate_forces();

  // --- step observation -------------------------------------------------------
  /// Registers a callback fired after each completed step where
  /// step % interval == 0.  The observer (and anything it captures) must
  /// outlive every step() made while registered.
  void add_observer(StepObserver obs, int interval = 1) {
    observers_.add(std::move(obs), interval);
  }

  /// Suspends/resumes step observers (SDC shadow replay: re-executed steps
  /// must not re-fire trajectory writers or metrics samplers).
  void set_observers_enabled(bool enabled) {
    observers_.set_enabled(enabled);
  }

  [[nodiscard]] const ExecutionConfig& execution() const {
    return config_.execution;
  }

 private:
  void compute_forces(bool kspace_due);
  void compute_nonbonded_into(ForceResult& out);
  void step_respa();
  void compute_fast_forces();
  void compute_slow_forces(bool kspace_due);
  void notify_observers();
  /// Wires the per-step force DAG (cluster kernel only): neighbor update →
  /// vsites → {bonded ∥ nonbonded tiles ∥ kspace} → fixed-order reduce.
  void build_step_graph();
  /// Runs the step graph into `sink` (current_ for Verlet, slow_ for the
  /// RESPA outer kick, which excludes bonded).
  void run_force_graph(ForceResult& sink, bool include_bonded,
                       bool kspace_due);

  ForceField* ff_;
  SimulationConfig config_;
  State state_;
  double dt_;
  NeighborList nlist_;
  ConstraintSolver constraints_;
  Thermostat thermostat_;
  std::optional<Barostat> barostat_;
  ForceResult current_;        ///< latest total forces/energy
  ForceResult kspace_cache_;   ///< latest reciprocal-space contribution
  ForceResult fast_;           ///< bonded forces (RESPA inner loop)
  ForceResult slow_;           ///< nonbonded + k-space (RESPA outer kicks)
  std::vector<Vec3> scratch_before_;
  std::shared_ptr<ExecutionContext> exec_;
  // Per-step force DAG (null in pair-kernel mode).  The graph is built once
  // and rerun every step; these flags parameterize one run.
  std::unique_ptr<util::TaskGraph> step_graph_;
  util::ChunkPlan nb_plan_;  ///< tile chunk partition, refreshed per run
  ForceResult* graph_sink_ = nullptr;
  bool graph_include_bonded_ = true;
  bool graph_kspace_due_ = false;
  ObserverList observers_;
  WallTimer wall_;
};

}  // namespace antmd::md
