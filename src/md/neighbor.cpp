#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace antmd::md {

CellList::CellList(const Box& box, double cell_size) {
  ANTMD_REQUIRE(cell_size > 0, "cell size must be positive");
  nx_ = std::max(1, static_cast<int>(box.edges().x / cell_size));
  ny_ = std::max(1, static_cast<int>(box.edges().y / cell_size));
  nz_ = std::max(1, static_cast<int>(box.edges().z / cell_size));
  cells_.resize(cell_count());
}

size_t CellList::index(int cx, int cy, int cz) const {
  auto wrap = [](int c, int n) {
    int m = c % n;
    return m < 0 ? m + n : m;
  };
  return static_cast<size_t>(wrap(cx, nx_)) +
         static_cast<size_t>(nx_) *
             (static_cast<size_t>(wrap(cy, ny_)) +
              static_cast<size_t>(ny_) * static_cast<size_t>(wrap(cz, nz_)));
}

void CellList::assign(std::span<const Vec3> positions, const Box& box) {
  for (auto& c : cells_) c.clear();
  atom_cells_.resize(positions.size());
  for (uint32_t i = 0; i < positions.size(); ++i) {
    Vec3 w = box.wrap(positions[i]);
    int cx = std::min(nx_ - 1,
                      static_cast<int>(w.x / box.edges().x * nx_));
    int cy = std::min(ny_ - 1,
                      static_cast<int>(w.y / box.edges().y * ny_));
    int cz = std::min(nz_ - 1,
                      static_cast<int>(w.z / box.edges().z * nz_));
    atom_cells_[i] = {cx, cy, cz};
    cells_[index(cx, cy, cz)].push_back(i);
  }
}

const std::vector<uint32_t>& CellList::cell(int cx, int cy, int cz) const {
  return cells_[index(cx, cy, cz)];
}

std::array<int, 3> CellList::cell_of(uint32_t atom) const {
  return atom_cells_[atom];
}

NeighborList::NeighborList(const Topology& topo, double cutoff, double skin)
    : topo_(&topo), cutoff_(cutoff), skin_(skin) {
  ANTMD_REQUIRE(cutoff > 0 && skin >= 0, "bad neighbor-list parameters");
}

void NeighborList::build(std::span<const Vec3> positions, const Box& box) {
  static auto& rebuild_count =
      obs::MetricsRegistry::global().counter("md.neighbor.rebuild.count");
  static auto& rebuild_ns =
      obs::MetricsRegistry::global().counter("md.neighbor.time_ns");
  obs::TracePhase phase("md.neighbor.rebuild", "md", &rebuild_ns);
  rebuild_count.add();
  const double reach = cutoff_ + skin_;
  ANTMD_REQUIRE(2.0 * reach <= box.min_edge(),
                "cutoff+skin exceeds half the smallest box edge");
  CellList cells(box, reach);
  cells.assign(positions, box);
  const double reach2 = reach * reach;

  pairs_.clear();
  // Half-stencil enumeration so each unordered pair is visited once when
  // the cell grid is at least 3 cells wide on each axis; fall back to the
  // full stencil with i<j filtering for small grids.
  const bool small_grid =
      cells.nx() < 3 || cells.ny() < 3 || cells.nz() < 3;

  auto enumerate_slice = [&](int cz, std::vector<ff::PairEntry>& out) {
    for (int cy = 0; cy < cells.ny(); ++cy) {
      for (int cx = 0; cx < cells.nx(); ++cx) {
        const auto& home = cells.cell(cx, cy, cz);
        // Pairs within the home cell.
        for (size_t a = 0; a < home.size(); ++a) {
          for (size_t b = a + 1; b < home.size(); ++b) {
            uint32_t i = std::min(home[a], home[b]);
            uint32_t j = std::max(home[a], home[b]);
            if (box.distance2(positions[i], positions[j]) >= reach2) continue;
            if (topo_->is_excluded(i, j)) continue;
            out.push_back({i, j});
          }
        }
        // Pairs with neighbouring cells.
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              // Half stencil: take only the lexicographically positive
              // offsets so each cell pair is visited once.
              if (!small_grid) {
                if (dz < 0) continue;
                if (dz == 0 && dy < 0) continue;
                if (dz == 0 && dy == 0 && dx < 0) continue;
              }
              const auto& other = cells.cell(cx + dx, cy + dy, cz + dz);
              for (uint32_t ai : home) {
                for (uint32_t bj : other) {
                  if (small_grid && ai >= bj) continue;
                  uint32_t i = std::min(ai, bj);
                  uint32_t j = std::max(ai, bj);
                  if (box.distance2(positions[i], positions[j]) >= reach2) {
                    continue;
                  }
                  if (topo_->is_excluded(i, j)) continue;
                  out.push_back({i, j});
                }
              }
            }
          }
        }
      }
    }
  };

  if (exec_ && exec_->parallel() && cells.nz() > 1) {
    // Each z-slice fills its own vector; concatenation in ascending slice
    // order plus the final sort below leaves pairs_ independent of thread
    // scheduling (the sort alone already guarantees that, the fixed order
    // just keeps intermediate state reproducible too).
    std::vector<std::vector<ff::PairEntry>> slices(
        static_cast<size_t>(cells.nz()));
    exec_->parallel_for(slices.size(), [&](size_t cz) {
      enumerate_slice(static_cast<int>(cz), slices[cz]);
    });
    size_t total = 0;
    for (const auto& s : slices) total += s.size();
    pairs_.reserve(total);
    for (const auto& s : slices) {
      pairs_.insert(pairs_.end(), s.begin(), s.end());
    }
  } else {
    for (int cz = 0; cz < cells.nz(); ++cz) enumerate_slice(cz, pairs_);
  }

  std::sort(pairs_.begin(), pairs_.end(),
            [](const ff::PairEntry& a, const ff::PairEntry& b) {
              return a.i != b.i ? a.i < b.i : a.j < b.j;
            });
  // With a small grid the same cell pair can be visited through two
  // different wrap-around offsets; dedupe to keep the contract exact.
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                           [](const ff::PairEntry& a, const ff::PairEntry& b) {
                             return a.i == b.i && a.j == b.j;
                           }),
               pairs_.end());

  reference_positions_.assign(positions.begin(), positions.end());
  ++build_count_;
}

bool NeighborList::needs_rebuild(std::span<const Vec3> positions,
                                 const Box& box) const {
  if (reference_positions_.size() != positions.size()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  for (size_t i = 0; i < positions.size(); ++i) {
    if (box.distance2(positions[i], reference_positions_[i]) > limit2) {
      return true;
    }
  }
  return false;
}

bool NeighborList::update(std::span<const Vec3> positions, const Box& box) {
  if (!needs_rebuild(positions, box)) return false;
  build(positions, box);
  return true;
}

}  // namespace antmd::md
