#include "md/neighbor.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace antmd::md {

CellList::CellList(const Box& box, double cell_size) {
  ANTMD_REQUIRE(cell_size > 0, "cell size must be positive");
  nx_ = std::max(1, static_cast<int>(box.edges().x / cell_size));
  ny_ = std::max(1, static_cast<int>(box.edges().y / cell_size));
  nz_ = std::max(1, static_cast<int>(box.edges().z / cell_size));
  cells_.resize(cell_count());
}

size_t CellList::index(int cx, int cy, int cz) const {
  auto wrap = [](int c, int n) {
    int m = c % n;
    return m < 0 ? m + n : m;
  };
  return static_cast<size_t>(wrap(cx, nx_)) +
         static_cast<size_t>(nx_) *
             (static_cast<size_t>(wrap(cy, ny_)) +
              static_cast<size_t>(ny_) * static_cast<size_t>(wrap(cz, nz_)));
}

void CellList::assign(std::span<const Vec3> positions, const Box& box) {
  for (auto& c : cells_) c.clear();
  atom_cells_.resize(positions.size());
  for (uint32_t i = 0; i < positions.size(); ++i) {
    Vec3 w = box.wrap(positions[i]);
    int cx = std::min(nx_ - 1,
                      static_cast<int>(w.x / box.edges().x * nx_));
    int cy = std::min(ny_ - 1,
                      static_cast<int>(w.y / box.edges().y * ny_));
    int cz = std::min(nz_ - 1,
                      static_cast<int>(w.z / box.edges().z * nz_));
    atom_cells_[i] = {cx, cy, cz};
    cells_[index(cx, cy, cz)].push_back(i);
  }
}

const std::vector<uint32_t>& CellList::cell(int cx, int cy, int cz) const {
  return cells_[index(cx, cy, cz)];
}

std::array<int, 3> CellList::cell_of(uint32_t atom) const {
  return atom_cells_[atom];
}

NeighborList::NeighborList(const Topology& topo, double cutoff, double skin,
                           bool cluster_mode, uint32_t cluster_width)
    : topo_(&topo),
      cutoff_(cutoff),
      skin_(skin),
      cluster_mode_(cluster_mode),
      cluster_width_(cluster_width) {
  ANTMD_REQUIRE(cutoff > 0 && skin >= 0, "bad neighbor-list parameters");
  ANTMD_REQUIRE(ff::cluster_width_supported(cluster_width),
                "cluster width must be 4 or 8");
}

void NeighborList::build(std::span<const Vec3> positions, const Box& box) {
  static auto& rebuild_count =
      obs::MetricsRegistry::global().counter("md.neighbor.rebuild.count");
  static auto& rebuild_ns =
      obs::MetricsRegistry::global().counter("md.neighbor.time_ns");
  obs::TracePhase phase("md.neighbor.rebuild", "md", &rebuild_ns);
  rebuild_count.add();
  const double reach = cutoff_ + skin_;
  ANTMD_REQUIRE(2.0 * reach <= box.min_edge(),
                "cutoff+skin exceeds half the smallest box edge");
  CellList cells(box, reach);
  cells.assign(positions, box);
  const double reach2 = reach * reach;

  pairs_.clear();
  // Half-stencil enumeration so each unordered pair is visited once when
  // the cell grid is at least 3 cells wide on each axis; fall back to the
  // full stencil with i<j filtering for small grids.
  const bool small_grid =
      cells.nx() < 3 || cells.ny() < 3 || cells.nz() < 3;

  auto enumerate_slice = [&](int cz, std::vector<ff::PairEntry>& out) {
    for (int cy = 0; cy < cells.ny(); ++cy) {
      for (int cx = 0; cx < cells.nx(); ++cx) {
        const auto& home = cells.cell(cx, cy, cz);
        // Pairs within the home cell.
        for (size_t a = 0; a < home.size(); ++a) {
          for (size_t b = a + 1; b < home.size(); ++b) {
            uint32_t i = std::min(home[a], home[b]);
            uint32_t j = std::max(home[a], home[b]);
            if (box.distance2(positions[i], positions[j]) >= reach2) continue;
            if (topo_->is_excluded(i, j)) continue;
            out.push_back({i, j});
          }
        }
        // Pairs with neighbouring cells.
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              if (dx == 0 && dy == 0 && dz == 0) continue;
              // Half stencil: take only the lexicographically positive
              // offsets so each cell pair is visited once.
              if (!small_grid) {
                if (dz < 0) continue;
                if (dz == 0 && dy < 0) continue;
                if (dz == 0 && dy == 0 && dx < 0) continue;
              }
              const auto& other = cells.cell(cx + dx, cy + dy, cz + dz);
              for (uint32_t ai : home) {
                for (uint32_t bj : other) {
                  if (small_grid && ai >= bj) continue;
                  uint32_t i = std::min(ai, bj);
                  uint32_t j = std::max(ai, bj);
                  if (box.distance2(positions[i], positions[j]) >= reach2) {
                    continue;
                  }
                  if (topo_->is_excluded(i, j)) continue;
                  out.push_back({i, j});
                }
              }
            }
          }
        }
      }
    }
  };

  if (exec_ && exec_->parallel() && cells.nz() > 1) {
    // Each z-slice fills its own vector; concatenation in ascending slice
    // order plus the final sort below leaves pairs_ independent of thread
    // scheduling (the sort alone already guarantees that, the fixed order
    // just keeps intermediate state reproducible too).
    std::vector<std::vector<ff::PairEntry>> slices(
        static_cast<size_t>(cells.nz()));
    exec_->parallel_for(slices.size(), [&](size_t cz) {
      enumerate_slice(static_cast<int>(cz), slices[cz]);
    });
    size_t total = 0;
    for (const auto& s : slices) total += s.size();
    pairs_.reserve(total);
    for (const auto& s : slices) {
      pairs_.insert(pairs_.end(), s.begin(), s.end());
    }
  } else {
    for (int cz = 0; cz < cells.nz(); ++cz) enumerate_slice(cz, pairs_);
  }

  std::sort(pairs_.begin(), pairs_.end(),
            [](const ff::PairEntry& a, const ff::PairEntry& b) {
              return a.i != b.i ? a.i < b.i : a.j < b.j;
            });
  // With a small grid the same cell pair can be visited through two
  // different wrap-around offsets; dedupe to keep the contract exact.
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end(),
                           [](const ff::PairEntry& a, const ff::PairEntry& b) {
                             return a.i == b.i && a.j == b.j;
                           }),
               pairs_.end());

  reference_positions_.assign(positions.begin(), positions.end());
  if (cluster_mode_) build_clusters(cells, positions, box);
  ++build_count_;
}

void NeighborList::build_clusters(const CellList& cells,
                                  std::span<const Vec3> positions,
                                  const Box& box) {
  ff::ClusterPairList& cl = clusters_;
  const uint32_t w = cluster_width_;
  const size_t atom_count = positions.size();

  // Fine-grid atom order: bin atoms on a grid sized so each cell holds
  // ~width atoms (much finer than the reach-sized build cells) and emit
  // cell-major, ascending atom index within a cell.  Consecutive slots are
  // then spatially adjacent at the *cluster* scale, so width×width tiles
  // stay densely masked — with reach-sized cells a width-8 cluster would
  // span unrelated corners of a cell and the masks go sparse.
  const double target_edge =
      std::cbrt(box.volume() * static_cast<double>(w) /
                std::max<double>(1.0, static_cast<double>(atom_count)));
  CellList fine(box, std::max(target_edge, 1e-6));
  fine.assign(positions, box);
  std::vector<uint32_t> order;
  order.reserve(atom_count);
  for (int cz = 0; cz < fine.nz(); ++cz) {
    for (int cy = 0; cy < fine.ny(); ++cy) {
      for (int cx = 0; cx < fine.nx(); ++cx) {
        const auto& c = fine.cell(cx, cy, cz);
        order.insert(order.end(), c.begin(), c.end());
      }
    }
  }

  const size_t n_clusters = (atom_count + w - 1) / w;
  const size_t slots = n_clusters * w;
  cl.width = w;
  cl.atoms.assign(slots, ff::kPadAtom);
  cl.slot_types.assign(slots, 0);
  cl.slot_charges.assign(slots, 0.0);
  const auto type_ids = topo_->type_ids();
  const auto charges = topo_->charges();
  std::vector<uint32_t> slot_of(atom_count);
  for (size_t s = 0; s < order.size(); ++s) {
    const uint32_t atom = order[s];
    cl.atoms[s] = atom;
    cl.slot_types[s] = type_ids[atom];
    cl.slot_charges[s] = charges[atom];
    slot_of[atom] = static_cast<uint32_t>(s);
  }

  // Every flat pair becomes exactly one mask bit of its (ci, cj) tile, so
  // the tile list encodes the flat pair set by construction — the kernels
  // compute identical interactions and the equivalence tests can assert
  // exact pair-count accounting.
  // Canonical orientation: the lower slot takes the i side.  ci indexes
  // width-slot i-clusters, cj indexes 4-slot j-groups (ff::kClusterJWidth),
  // so each unordered pair lands in exactly one tile bit.
  std::vector<std::pair<uint64_t, uint64_t>> keyed;
  keyed.reserve(pairs_.size());
  constexpr uint32_t jw = ff::kClusterJWidth;
  for (const ff::PairEntry& p : pairs_) {
    uint32_t si = slot_of[p.i];
    uint32_t sj = slot_of[p.j];
    if (si > sj) std::swap(si, sj);
    const uint32_t ci = si / w;
    const uint32_t cj = sj / jw;
    const uint32_t a = si % w;
    const uint32_t b = sj % jw;
    keyed.emplace_back((static_cast<uint64_t>(ci) << 32) | cj,
                       uint64_t{1} << (a * jw + b));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  // Advisory periodic shift of cj relative to ci, from the cells of the
  // clusters' lead atoms (a cluster can straddle a cell boundary; anything
  // that is not a clean one-cell wrap is recorded as "no wrap").
  auto shift_code = [&](uint32_t ci, uint32_t cj) {
    const auto cell_i = cells.cell_of(cl.atoms[ci * w]);
    const auto cell_j = cells.cell_of(cl.atoms[cj * jw]);
    const int dims[3] = {cells.nx(), cells.ny(), cells.nz()};
    int code = 0;
    int mult = 1;
    for (int ax = 0; ax < 3; ++ax) {
      const int d = cell_j[ax] - cell_i[ax];
      int s = 0;
      if (d > dims[ax] / 2) {
        s = -1;
      } else if (d < -(dims[ax] / 2)) {
        s = 1;
      }
      code += (s + 1) * mult;
      mult *= 3;
    }
    return static_cast<uint16_t>(code);
  };

  cl.entries.clear();
  cl.real_pairs = pairs_.size();
  cl.active_rows = 0;
  for (size_t k = 0; k < keyed.size();) {
    const uint64_t key = keyed[k].first;
    uint64_t mask = 0;
    while (k < keyed.size() && keyed[k].first == key) mask |= keyed[k++].second;
    ff::ClusterPairEntry e;
    e.ci = static_cast<uint32_t>(key >> 32);
    e.cj = static_cast<uint32_t>(key & 0xffffffffu);
    e.mask = mask;
    e.shift = shift_code(e.ci, e.cj);
    cl.entries.push_back(e);
    for (uint32_t a = 0; a < w; ++a) {
      if ((mask >> (ff::kClusterJWidth * a)) & 0xfu) ++cl.active_rows;
    }
  }
}

bool NeighborList::needs_rebuild(std::span<const Vec3> positions,
                                 const Box& box) const {
  static auto& check_count =
      obs::MetricsRegistry::global().counter("md.neighbor.skin_check.count");
  static auto& hot_hits =
      obs::MetricsRegistry::global().counter("md.neighbor.skin_check.hot_hit");
  check_count.add();
  if (reference_positions_.size() != positions.size()) return true;
  const double limit2 = 0.25 * skin_ * skin_;
  auto exceeds = [&](size_t i) {
    // Raw displacement bounds the minimum-image displacement from above
    // (the per-axis wrap never increases a component's magnitude), so a
    // small raw distance proves the atom is inside the half-skin without
    // paying the three divisions inside Box::min_image.  Only atoms past
    // the raw bound — in practice none until a rebuild is due — fall
    // through to the exact check, which keeps the rebuild decision
    // identical to the plain loop.
    const Vec3 d = positions[i] - reference_positions_[i];
    if (norm2(d) <= limit2) return false;
    return box.distance2(positions[i], reference_positions_[i]) > limit2;
  };
  // The atom that tripped the previous check keeps drifting until the next
  // rebuild resets its reference, so testing it first turns the positive
  // case into O(1).
  if (hot_atom_ < positions.size() && exceeds(hot_atom_)) {
    hot_hits.add();
    return true;
  }
  for (size_t i = 0; i < positions.size(); ++i) {
    if (exceeds(i)) {
      hot_atom_ = static_cast<uint32_t>(i);
      return true;
    }
  }
  return false;
}

bool NeighborList::update(std::span<const Vec3> positions, const Box& box) {
  if (!needs_rebuild(positions, box)) return false;
  build(positions, box);
  return true;
}

}  // namespace antmd::md
