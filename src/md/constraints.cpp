#include "md/constraints.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numeric>

#include "util/error.hpp"

namespace antmd::md {

ConstraintSolver::ConstraintSolver(const Topology& topo, double tolerance,
                                   size_t max_iterations,
                                   ConstraintAlgorithm algorithm)
    : topo_(&topo),
      tolerance_(tolerance),
      max_iterations_(max_iterations),
      algorithm_(algorithm) {
  // Union-find over constraint endpoints to form clusters.
  const auto& cons = topo.constraints();
  if (cons.empty()) return;

  std::map<uint32_t, uint32_t> parent;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    uint32_t root = find(it->second);
    parent[x] = root;
    return root;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    uint32_t ra = find(a), rb = find(b);
    parent.try_emplace(ra, ra);
    parent.try_emplace(rb, rb);
    if (ra != rb) parent[rb] = ra;
  };
  for (const auto& c : cons) unite(c.i, c.j);

  std::map<uint32_t, size_t> root_to_cluster;
  for (const auto& c : cons) {
    uint32_t root = find(c.i);
    auto [it, inserted] =
        root_to_cluster.try_emplace(root, clusters_.size());
    if (inserted) clusters_.emplace_back();
    clusters_[it->second].constraints.push_back(c);
  }
}

ConstraintStats ConstraintSolver::apply_positions(std::span<const Vec3> before,
                                                  std::span<Vec3> positions,
                                                  std::span<Vec3> velocities,
                                                  double dt,
                                                  const Box& box) const {
  if (algorithm_ == ConstraintAlgorithm::kMShake) {
    return apply_mshake(before, positions, velocities, dt, box);
  }
  return apply_shake(before, positions, velocities, dt, box);
}

ConstraintStats ConstraintSolver::apply_shake(std::span<const Vec3> before,
                                              std::span<Vec3> positions,
                                              std::span<Vec3> velocities,
                                              double dt,
                                              const Box& box) const {
  ConstraintStats stats;
  const auto& masses = topo_->masses();
  for (const Cluster& cluster : clusters_) {
    for (size_t iter = 0; iter < max_iterations_; ++iter) {
      double worst = 0.0;
      for (const auto& c : cluster.constraints) {
        Vec3 d = box.min_image(positions[c.i], positions[c.j]);
        double r2 = norm2(d);
        double diff = r2 - c.r0 * c.r0;
        worst = std::max(worst, std::abs(std::sqrt(r2) - c.r0) / c.r0);
        if (std::abs(diff) < 2.0 * tolerance_ * c.r0 * c.r0) continue;

        // Classic SHAKE update along the *reference* bond direction.
        Vec3 s = box.min_image(before[c.i], before[c.j]);
        double inv_mi = 1.0 / masses[c.i];
        double inv_mj = 1.0 / masses[c.j];
        double denom = 2.0 * (inv_mi + inv_mj) * dot(s, d);
        if (std::abs(denom) < 1e-12) denom = std::copysign(1e-12, denom);
        double g = diff / denom;
        Vec3 corr = g * s;
        positions[c.i] -= inv_mi * corr;
        positions[c.j] += inv_mj * corr;
        if (dt > 0.0) {
          velocities[c.i] -= (inv_mi / dt) * corr;
          velocities[c.j] += (inv_mj / dt) * corr;
        }
      }
      ++stats.iterations;
      if (worst < tolerance_) break;
      ANTMD_REQUIRE(iter + 1 < max_iterations_,
                    "SHAKE failed to converge — system is likely unstable");
    }
  }
  stats.max_violation = max_violation(positions, box);
  return stats;
}


namespace {

/// Solves the dense n×n system A x = b in place by Gaussian elimination
/// with partial pivoting (clusters are tiny: water is 3×3).
bool solve_dense(std::vector<double>& a, std::vector<double>& b, size_t n) {
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-14) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    double inv = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      double f = a[r * n + col] * inv;
      if (f == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (size_t col = n; col-- > 0;) {
    double sum = b[col];
    for (size_t c = col + 1; c < n; ++c) sum -= a[col * n + c] * b[c];
    b[col] = sum / a[col * n + col];
  }
  return true;
}

}  // namespace

ConstraintStats ConstraintSolver::apply_mshake(std::span<const Vec3> before,
                                               std::span<Vec3> positions,
                                               std::span<Vec3> velocities,
                                               double dt,
                                               const Box& box) const {
  ConstraintStats stats;
  const auto& masses = topo_->masses();
  // Clusters larger than this fall back to Gauss–Seidel sweeps (the dense
  // solve stops paying off).
  constexpr size_t kMaxDense = 12;

  for (const Cluster& cluster : clusters_) {
    const size_t n = cluster.constraints.size();
    if (n > kMaxDense) {
      // Delegate this cluster to plain SHAKE logic by running the global
      // SHAKE pass once over just this cluster's constraints.
      ConstraintSolver shake_like(*topo_, tolerance_, max_iterations_,
                                  ConstraintAlgorithm::kShake);
      // Cheap correctness-preserving fallback: reuse the full SHAKE apply.
      auto sub = shake_like.apply_shake(before, positions, velocities, dt,
                                        box);
      stats.iterations += sub.iterations;
      continue;
    }

    // Reference bond vectors (pre-update geometry).
    std::vector<Vec3> s_ref(n);
    for (size_t c = 0; c < n; ++c) {
      const auto& con = cluster.constraints[c];
      s_ref[c] = box.min_image(before[con.i], before[con.j]);
    }

    std::vector<double> a(n * n), g(n);
    for (size_t iter = 0; iter < max_iterations_; ++iter) {
      // Residuals g_c = |r_c|² - d².
      double worst = 0.0;
      std::vector<Vec3> r_cur(n);
      for (size_t c = 0; c < n; ++c) {
        const auto& con = cluster.constraints[c];
        r_cur[c] = box.min_image(positions[con.i], positions[con.j]);
        g[c] = norm2(r_cur[c]) - con.r0 * con.r0;
        worst = std::max(worst,
                         std::abs(std::sqrt(norm2(r_cur[c])) - con.r0) /
                             con.r0);
      }
      ++stats.iterations;
      if (worst < tolerance_) break;
      ANTMD_REQUIRE(iter + 1 < max_iterations_,
                    "M-SHAKE failed to converge");

      // Jacobian A_{cd} = dg_c/dλ_d with the update
      // pos_i -= λ_d s_d / m_i, pos_j += λ_d s_d / m_j for constraint d.
      for (size_t c = 0; c < n; ++c) {
        const auto& cc = cluster.constraints[c];
        for (size_t d = 0; d < n; ++d) {
          const auto& cd = cluster.constraints[d];
          double w = 0.0;
          if (cc.i == cd.i) w += 1.0 / masses[cc.i];
          if (cc.i == cd.j) w -= 1.0 / masses[cc.i];
          if (cc.j == cd.i) w -= 1.0 / masses[cc.j];
          if (cc.j == cd.j) w += 1.0 / masses[cc.j];
          a[c * n + d] = 2.0 * w * dot(r_cur[c], s_ref[d]);
        }
      }
      std::vector<double> lambda = g;
      if (!solve_dense(a, lambda, n)) {
        // Degenerate geometry: one Gauss–Seidel style relaxation instead.
        for (size_t c = 0; c < n; ++c) {
          const auto& con = cluster.constraints[c];
          double inv_mi = 1.0 / masses[con.i];
          double inv_mj = 1.0 / masses[con.j];
          double denom = 2.0 * (inv_mi + inv_mj) * dot(s_ref[c], r_cur[c]);
          if (std::abs(denom) < 1e-12) denom = std::copysign(1e-12, denom);
          double lam = g[c] / denom;
          positions[con.i] -= inv_mi * lam * s_ref[c];
          positions[con.j] += inv_mj * lam * s_ref[c];
          if (dt > 0.0) {
            velocities[con.i] -= (inv_mi / dt) * lam * s_ref[c];
            velocities[con.j] += (inv_mj / dt) * lam * s_ref[c];
          }
        }
        continue;
      }
      for (size_t c = 0; c < n; ++c) {
        const auto& con = cluster.constraints[c];
        Vec3 corr = lambda[c] * s_ref[c];
        double inv_mi = 1.0 / masses[con.i];
        double inv_mj = 1.0 / masses[con.j];
        positions[con.i] -= inv_mi * corr;
        positions[con.j] += inv_mj * corr;
        if (dt > 0.0) {
          velocities[con.i] -= (inv_mi / dt) * corr;
          velocities[con.j] += (inv_mj / dt) * corr;
        }
      }
    }
  }
  stats.max_violation = max_violation(positions, box);
  return stats;
}

void ConstraintSolver::apply_velocities(std::span<const Vec3> positions,
                                        std::span<Vec3> velocities,
                                        const Box& box) const {
  const auto& masses = topo_->masses();
  for (const Cluster& cluster : clusters_) {
    for (size_t iter = 0; iter < max_iterations_; ++iter) {
      double worst = 0.0;
      for (const auto& c : cluster.constraints) {
        Vec3 d = box.min_image(positions[c.i], positions[c.j]);
        Vec3 dv = velocities[c.i] - velocities[c.j];
        double rv = dot(d, dv);
        double r2 = norm2(d);
        worst = std::max(worst, std::abs(rv) / (c.r0 * c.r0));
        double inv_mi = 1.0 / masses[c.i];
        double inv_mj = 1.0 / masses[c.j];
        double k = rv / (r2 * (inv_mi + inv_mj));
        velocities[c.i] -= k * inv_mi * d;
        velocities[c.j] += k * inv_mj * d;
      }
      if (worst < tolerance_) break;
      ANTMD_REQUIRE(iter + 1 < max_iterations_,
                    "RATTLE velocity stage failed to converge");
    }
  }
}

double ConstraintSolver::max_violation(std::span<const Vec3> positions,
                                       const Box& box) const {
  double worst = 0.0;
  for (const Cluster& cluster : clusters_) {
    for (const auto& c : cluster.constraints) {
      double r = norm(box.min_image(positions[c.i], positions[c.j]));
      worst = std::max(worst, std::abs(r - c.r0) / c.r0);
    }
  }
  return worst;
}

}  // namespace antmd::md
