// SimulationBuilder: fluent construction of md::Simulation.
//
// Preferred over filling a SimulationConfig and calling the 4-argument
// Simulation constructor by hand (which stays available but is considered
// legacy in docs/examples):
//
//   md::Simulation sim = md::SimulationBuilder()
//                            .dt_fs(2.0)
//                            .neighbor_skin(1.0)
//                            .langevin(300.0, 5.0)
//                            .threads(4)
//                            .build(field, spec.positions, spec.box);
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "md/engine_api.hpp"
#include "md/simulation.hpp"

namespace antmd::md {

// What build() hands back is a full engine: anything written against the
// EngineApi concept (Supervisor, observers, generic drivers) accepts it.
static_assert(EngineApi<Simulation>);

class SimulationBuilder {
 public:
  SimulationBuilder() = default;
  /// Starts from an existing config (e.g. a method's stored defaults).
  explicit SimulationBuilder(SimulationConfig base) : config_(base) {}

  SimulationBuilder& dt_fs(double v) { config_.dt_fs = v; return *this; }
  SimulationBuilder& kspace_interval(int v) {
    config_.kspace_interval = v; return *this;
  }
  SimulationBuilder& respa_inner(int v) {
    config_.respa_inner = v; return *this;
  }
  SimulationBuilder& neighbor_skin(double v) {
    config_.neighbor_skin = v; return *this;
  }
  SimulationBuilder& com_removal_interval(int v) {
    config_.com_removal_interval = v; return *this;
  }
  SimulationBuilder& constraint_algorithm(ConstraintAlgorithm v) {
    config_.constraint_algorithm = v; return *this;
  }
  SimulationBuilder& thermostat(const ThermostatConfig& v) {
    config_.thermostat = v; return *this;
  }
  /// Langevin bath shortcut; also seeds velocities at the same temperature.
  SimulationBuilder& langevin(double temperature_k, double gamma_per_ps) {
    config_.thermostat.kind = ThermostatKind::kLangevin;
    config_.thermostat.temperature_k = temperature_k;
    config_.thermostat.gamma_per_ps = gamma_per_ps;
    config_.init_temperature_k = temperature_k;
    return *this;
  }
  SimulationBuilder& barostat(const BarostatConfig& v) {
    config_.barostat = v; return *this;
  }
  SimulationBuilder& init_temperature(double temperature_k) {
    config_.init_temperature_k = temperature_k; return *this;
  }
  SimulationBuilder& velocity_seed(uint64_t seed) {
    config_.velocity_seed = seed; return *this;
  }
  SimulationBuilder& nonbonded_kernel(ff::NonbondedKernel kernel) {
    config_.nonbonded_kernel = kernel; return *this;
  }
  SimulationBuilder& cluster_width(uint32_t width) {
    config_.cluster_width = width; return *this;
  }
  /// Host threads for the parallel execution layer (1 = serial, 0 = auto).
  SimulationBuilder& threads(size_t n) {
    config_.execution.threads = n; return *this;
  }
  SimulationBuilder& deterministic_reduction(bool on) {
    config_.execution.deterministic_reduction = on; return *this;
  }
  SimulationBuilder& execution(const ExecutionConfig& v) {
    config_.execution = v; return *this;
  }

  [[nodiscard]] const SimulationConfig& config() const { return config_; }

  /// Builds in place (guaranteed copy elision: the Simulation is
  /// constructed directly in the caller's storage, so the barostat's
  /// self-referential callback stays valid).
  [[nodiscard]] Simulation build(ForceField& ff, std::vector<Vec3> positions,
                                 Box box) const {
    config_.validate();  // fail before touching the force field
    return Simulation(ff, std::move(positions), box, config_);
  }

  /// Heap variant for ensembles (replica-exchange ladders).
  [[nodiscard]] std::unique_ptr<Simulation> build_unique(
      ForceField& ff, std::vector<Vec3> positions, Box box) const {
    config_.validate();
    return std::make_unique<Simulation>(ff, std::move(positions), box,
                                        config_);
  }

 private:
  SimulationConfig config_;
};

}  // namespace antmd::md
